//===- Syntax.cpp - The L language of Section 6 ---------------------------===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "lcalc/Syntax.h"

#include <sstream>
#include <unordered_map>

using namespace levity;
using namespace levity::lcalc;

LContext::LContext() {
  (void)errorType();
  // Seal the built-in Int declaration: constructor I# (tag 0), one
  // strict Int# field, valued at the IntType singleton.
  IntDecl.Name = sym("Int");
  IntDecl.Ty = intTy();
  LDataCon IHash;
  IHash.Name = sym("I#");
  IHash.Fields = {intHashTy()};
  IHash.FieldReps = {ConcreteRep::I};
  IntDecl.Cons.push_back(std::move(IHash));
}

std::optional<ConcreteRep> lcalc::dataFieldRep(const Type *T) {
  switch (T->kind()) {
  case Type::TypeKind::Int:
  case Type::TypeKind::Arrow:
  case Type::TypeKind::Data:
    return ConcreteRep::P;
  case Type::TypeKind::IntHash:
    return ConcreteRep::I;
  case Type::TypeKind::DoubleHash:
    return ConcreteRep::D;
  case Type::TypeKind::ForAll:
    // T_ALLTY: the forall's kind is its body's kind (type erasure).
    return dataFieldRep(cast<ForAllType>(T)->body());
  case Type::TypeKind::ForAllRep:
    return dataFieldRep(cast<ForAllRepType>(T)->body());
  case Type::TypeKind::Var:
    // Field types must be closed; a free variable's rep is unknown.
    return std::nullopt;
  }
  return std::nullopt;
}

LDataDecl *LContext::declareData(Symbol Name) {
  assert(!DataDecls.count(Name) && "data type name already declared");
  DataDeclStorage.push_back(std::make_unique<LDataDecl>(Name));
  LDataDecl *Decl = DataDeclStorage.back().get();
  Decl->Ty = Mem.create<DataType>(Decl);
  DataDecls.emplace(Name, Decl);
  return Decl;
}

bool LContext::addDataCon(LDataDecl *Decl, Symbol ConName,
                          std::span<const Type *const> Fields) {
  LDataCon Con;
  Con.Name = ConName;
  for (const Type *F : Fields) {
    std::optional<ConcreteRep> R = dataFieldRep(F);
    if (!R)
      return false;
    Con.Fields.push_back(F);
    Con.FieldReps.push_back(*R);
  }
  Decl->Cons.push_back(std::move(Con));
  return true;
}

const LDataDecl *LContext::lookupData(Symbol Name) const {
  auto It = DataDecls.find(Name);
  return It == DataDecls.end() ? nullptr : It->second;
}

std::string RuntimeRep::str() const {
  if (isVar())
    return std::string(Var.str());
  switch (Concrete) {
  case ConcreteRep::P:
    return "P";
  case ConcreteRep::I:
    return "I";
  case ConcreteRep::D:
    return "D";
  }
  return "?";
}

std::string LKind::str() const { return "TYPE " + Rep.str(); }

//===----------------------------------------------------------------------===//
// Pretty printing
//===----------------------------------------------------------------------===//

namespace {

/// Precedence levels for parenthesization.
enum Prec { PrecTop = 0, PrecArrow = 1, PrecApp = 2, PrecAtom = 3 };

void printType(std::ostringstream &OS, const Type *T, int Prec) {
  switch (T->kind()) {
  case Type::TypeKind::Int:
    OS << "Int";
    return;
  case Type::TypeKind::IntHash:
    OS << "Int#";
    return;
  case Type::TypeKind::DoubleHash:
    OS << "Double#";
    return;
  case Type::TypeKind::Var:
    OS << cast<VarType>(T)->name().str();
    return;
  case Type::TypeKind::Data:
    OS << cast<DataType>(T)->decl()->name().str();
    return;
  case Type::TypeKind::Arrow: {
    const auto *A = cast<ArrowType>(T);
    if (Prec > PrecArrow)
      OS << "(";
    printType(OS, A->param(), PrecArrow + 1);
    OS << " -> ";
    printType(OS, A->result(), PrecArrow);
    if (Prec > PrecArrow)
      OS << ")";
    return;
  }
  case Type::TypeKind::ForAll: {
    const auto *F = cast<ForAllType>(T);
    if (Prec > PrecTop)
      OS << "(";
    OS << "forall " << F->var().str() << ":" << F->varKind().str() << ". ";
    printType(OS, F->body(), PrecTop);
    if (Prec > PrecTop)
      OS << ")";
    return;
  }
  case Type::TypeKind::ForAllRep: {
    const auto *F = cast<ForAllRepType>(T);
    if (Prec > PrecTop)
      OS << "(";
    OS << "forall " << F->repVar().str() << ". ";
    printType(OS, F->body(), PrecTop);
    if (Prec > PrecTop)
      OS << ")";
    return;
  }
  }
}

void printExpr(std::ostringstream &OS, const Expr *E, int Prec) {
  switch (E->kind()) {
  case Expr::ExprKind::Var:
    OS << cast<VarExpr>(E)->name().str();
    return;
  case Expr::ExprKind::IntLit:
    OS << cast<IntLitExpr>(E)->value();
    return;
  case Expr::ExprKind::DoubleLit:
    OS << cast<DoubleLitExpr>(E)->value() << "##";
    return;
  case Expr::ExprKind::Error:
    OS << "error";
    return;
  case Expr::ExprKind::App: {
    const auto *A = cast<AppExpr>(E);
    if (Prec > PrecApp)
      OS << "(";
    printExpr(OS, A->fn(), PrecApp);
    OS << " ";
    printExpr(OS, A->arg(), PrecApp + 1);
    if (Prec > PrecApp)
      OS << ")";
    return;
  }
  case Expr::ExprKind::TyApp: {
    const auto *A = cast<TyAppExpr>(E);
    if (Prec > PrecApp)
      OS << "(";
    printExpr(OS, A->fn(), PrecApp);
    OS << " @";
    printType(OS, A->tyArg(), PrecAtom);
    if (Prec > PrecApp)
      OS << ")";
    return;
  }
  case Expr::ExprKind::RepApp: {
    const auto *A = cast<RepAppExpr>(E);
    if (Prec > PrecApp)
      OS << "(";
    printExpr(OS, A->fn(), PrecApp);
    OS << " @@" << A->repArg().str();
    if (Prec > PrecApp)
      OS << ")";
    return;
  }
  case Expr::ExprKind::Lam: {
    const auto *L = cast<LamExpr>(E);
    if (Prec > PrecTop)
      OS << "(";
    OS << "\\" << L->var().str() << ":";
    printType(OS, L->varType(), PrecAtom);
    OS << ". ";
    printExpr(OS, L->body(), PrecTop);
    if (Prec > PrecTop)
      OS << ")";
    return;
  }
  case Expr::ExprKind::TyLam: {
    const auto *L = cast<TyLamExpr>(E);
    if (Prec > PrecTop)
      OS << "(";
    OS << "/\\" << L->var().str() << ":" << L->varKind().str() << ". ";
    printExpr(OS, L->body(), PrecTop);
    if (Prec > PrecTop)
      OS << ")";
    return;
  }
  case Expr::ExprKind::RepLam: {
    const auto *L = cast<RepLamExpr>(E);
    if (Prec > PrecTop)
      OS << "(";
    OS << "/\\" << L->repVar().str() << ". ";
    printExpr(OS, L->body(), PrecTop);
    if (Prec > PrecTop)
      OS << ")";
    return;
  }
  case Expr::ExprKind::Con: {
    const auto *C = cast<ConExpr>(E);
    OS << C->decl()->con(C->tag()).Name.str();
    if (!C->args().empty()) {
      OS << "[";
      bool First = true;
      for (const Expr *A : C->args()) {
        if (!First)
          OS << ", ";
        First = false;
        printExpr(OS, A, PrecTop);
      }
      OS << "]";
    }
    return;
  }
  case Expr::ExprKind::Case: {
    const auto *C = cast<CaseExpr>(E);
    if (Prec > PrecTop)
      OS << "(";
    OS << "case ";
    printExpr(OS, C->scrut(), PrecTop);
    OS << " of ";
    // The paper's one-armed unboxing case prints in its Figure 2 shape;
    // everything else gets the braced multi-alternative form.
    if (C->decl() && C->alts().size() == 1 && !C->defaultRhs() &&
        C->alts()[0].Pat == LAlt::PatKind::Con &&
        C->alts()[0].Binders.size() == 1) {
      const LAlt &A = C->alts()[0];
      OS << C->decl()->con(A.Tag).Name.str() << "["
         << A.Binders[0].str() << "] -> ";
      printExpr(OS, A.Rhs, PrecTop);
    } else {
      OS << "{ ";
      bool First = true;
      for (const LAlt &A : C->alts()) {
        if (!First)
          OS << " ; ";
        First = false;
        switch (A.Pat) {
        case LAlt::PatKind::Con: {
          OS << C->decl()->con(A.Tag).Name.str();
          if (!A.Binders.empty()) {
            OS << "[";
            bool FirstB = true;
            for (Symbol B : A.Binders) {
              if (!FirstB)
                OS << ", ";
              FirstB = false;
              OS << B.str();
            }
            OS << "]";
          }
          break;
        }
        case LAlt::PatKind::Int:
          OS << A.IntVal;
          break;
        case LAlt::PatKind::Dbl:
          OS << A.DblVal << "##";
          break;
        }
        OS << " -> ";
        printExpr(OS, A.Rhs, PrecTop);
      }
      if (C->defaultRhs()) {
        if (!First)
          OS << " ; ";
        OS << "_ -> ";
        printExpr(OS, C->defaultRhs(), PrecTop);
      }
      OS << " }";
    }
    if (Prec > PrecTop)
      OS << ")";
    return;
  }
  case Expr::ExprKind::Prim: {
    const auto *P = cast<PrimExpr>(E);
    if (Prec > PrecArrow)
      OS << "(";
    printExpr(OS, P->lhs(), PrecApp);
    OS << " " << lPrimName(P->op()) << " ";
    printExpr(OS, P->rhs(), PrecApp);
    if (Prec > PrecArrow)
      OS << ")";
    return;
  }
  case Expr::ExprKind::If0: {
    const auto *I = cast<If0Expr>(E);
    if (Prec > PrecTop)
      OS << "(";
    OS << "if0 ";
    printExpr(OS, I->scrut(), PrecApp);
    OS << " then ";
    printExpr(OS, I->thenBranch(), PrecTop);
    OS << " else ";
    printExpr(OS, I->elseBranch(), PrecTop);
    if (Prec > PrecTop)
      OS << ")";
    return;
  }
  case Expr::ExprKind::Fix: {
    const auto *F = cast<FixExpr>(E);
    if (Prec > PrecTop)
      OS << "(";
    OS << "fix " << F->var().str() << ":";
    printType(OS, F->varType(), PrecAtom);
    OS << ". ";
    printExpr(OS, F->body(), PrecTop);
    if (Prec > PrecTop)
      OS << ")";
    return;
  }
  }
}

} // namespace

std::string Type::str() const {
  std::ostringstream OS;
  printType(OS, this, PrecTop);
  return OS.str();
}

std::string Expr::str() const {
  std::ostringstream OS;
  printExpr(OS, this, PrecTop);
  return OS.str();
}

std::string_view lcalc::lPrimName(LPrim Op) {
  switch (Op) {
  case LPrim::Add:
    return "+#";
  case LPrim::Sub:
    return "-#";
  case LPrim::Mul:
    return "*#";
  case LPrim::Quot:
    return "quot#";
  case LPrim::Rem:
    return "rem#";
  case LPrim::Lt:
    return "<#";
  case LPrim::Le:
    return "<=#";
  case LPrim::Gt:
    return ">#";
  case LPrim::Ge:
    return ">=#";
  case LPrim::Eq:
    return "==#";
  case LPrim::Ne:
    return "/=#";
  case LPrim::DAdd:
    return "+##";
  case LPrim::DSub:
    return "-##";
  case LPrim::DMul:
    return "*##";
  case LPrim::DDiv:
    return "/##";
  case LPrim::DLt:
    return "<##";
  case LPrim::DLe:
    return "<=##";
  case LPrim::DGt:
    return ">##";
  case LPrim::DGe:
    return ">=##";
  case LPrim::DEq:
    return "==##";
  case LPrim::DNe:
    return "/=##";
  }
  assert(false && "unknown primop");
  return "?#";
}

bool lcalc::lPrimTakesDouble(LPrim Op) {
  switch (Op) {
  case LPrim::DAdd:
  case LPrim::DSub:
  case LPrim::DMul:
  case LPrim::DDiv:
  case LPrim::DLt:
  case LPrim::DLe:
  case LPrim::DGt:
  case LPrim::DGe:
  case LPrim::DEq:
  case LPrim::DNe:
    return true;
  default:
    return false;
  }
}

bool lcalc::lPrimReturnsDouble(LPrim Op) {
  switch (Op) {
  case LPrim::DAdd:
  case LPrim::DSub:
  case LPrim::DMul:
  case LPrim::DDiv:
    return true;
  default:
    return false;
  }
}

int64_t lcalc::evalLPrim(LPrim Op, int64_t Lhs, int64_t Rhs) {
  switch (Op) {
  case LPrim::Add:
    return Lhs + Rhs;
  case LPrim::Sub:
    return Lhs - Rhs;
  case LPrim::Mul:
    return Lhs * Rhs;
  case LPrim::Quot:
    // Callers (S_PRIMOP, the machine's PRIM rule) reject zero divisors
    // before evaluating; a zero here is a caller bug, not a semantics.
    assert(Rhs != 0 && "quot# by zero must be rejected by the caller");
    return Lhs / Rhs;
  case LPrim::Rem:
    assert(Rhs != 0 && "rem# by zero must be rejected by the caller");
    return Lhs % Rhs;
  case LPrim::Lt:
    return Lhs < Rhs ? 1 : 0;
  case LPrim::Le:
    return Lhs <= Rhs ? 1 : 0;
  case LPrim::Gt:
    return Lhs > Rhs ? 1 : 0;
  case LPrim::Ge:
    return Lhs >= Rhs ? 1 : 0;
  case LPrim::Eq:
    return Lhs == Rhs ? 1 : 0;
  case LPrim::Ne:
    return Lhs != Rhs ? 1 : 0;
  default:
    break;
  }
  assert(false && "not an Int# primop");
  return 0;
}

double lcalc::evalLPrimDD(LPrim Op, double Lhs, double Rhs) {
  switch (Op) {
  case LPrim::DAdd:
    return Lhs + Rhs;
  case LPrim::DSub:
    return Lhs - Rhs;
  case LPrim::DMul:
    return Lhs * Rhs;
  case LPrim::DDiv:
    return Lhs / Rhs;
  default:
    break;
  }
  assert(false && "not a Double#-result primop");
  return 0;
}

int64_t lcalc::evalLPrimDI(LPrim Op, double Lhs, double Rhs) {
  switch (Op) {
  case LPrim::DLt:
    return Lhs < Rhs ? 1 : 0;
  case LPrim::DLe:
    return Lhs <= Rhs ? 1 : 0;
  case LPrim::DGt:
    return Lhs > Rhs ? 1 : 0;
  case LPrim::DGe:
    return Lhs >= Rhs ? 1 : 0;
  case LPrim::DEq:
    return Lhs == Rhs ? 1 : 0;
  case LPrim::DNe:
    return Lhs != Rhs ? 1 : 0;
  default:
    break;
  }
  assert(false && "not a Double# comparison");
  return 0;
}

const Type *LContext::errorType() {
  if (ErrorTypeCache)
    return ErrorTypeCache;
  Symbol R = sym("r");
  Symbol A = sym("a");
  ErrorTypeCache = forAllRepTy(
      R, forAllTy(A, LKind::typeVar(R), arrowTy(intTy(), varTy(A))));
  return ErrorTypeCache;
}

//===----------------------------------------------------------------------===//
// Alpha-equivalence of types
//===----------------------------------------------------------------------===//

namespace {

/// Maps bound variables of A to those of B (and vice versa implicitly by
/// checking both directions through one map keyed on A's names).
struct AlphaEnv {
  std::unordered_map<Symbol, Symbol, SymbolHash> AtoB;
  std::unordered_map<Symbol, Symbol, SymbolHash> BtoA;

  void bind(Symbol A, Symbol B) {
    AtoB[A] = B;
    BtoA[B] = A;
  }

  bool varsEqual(Symbol A, Symbol B) const {
    auto ItA = AtoB.find(A);
    auto ItB = BtoA.find(B);
    // Both free: names must match. Both bound: must map to each other.
    if (ItA == AtoB.end() && ItB == BtoA.end())
      return A == B;
    if (ItA == AtoB.end() || ItB == BtoA.end())
      return false;
    return ItA->second == B && ItB->second == A;
  }
};

bool repsAlphaEqual(RuntimeRep A, RuntimeRep B, const AlphaEnv &Env) {
  if (A.isConcrete() != B.isConcrete())
    return false;
  if (A.isConcrete())
    return A.rep() == B.rep();
  return Env.varsEqual(A.varName(), B.varName());
}

bool typesAlphaEqual(const Type *A, const Type *B, AlphaEnv &Env) {
  if (A->kind() != B->kind())
    return false;
  switch (A->kind()) {
  case Type::TypeKind::Int:
  case Type::TypeKind::IntHash:
  case Type::TypeKind::DoubleHash:
    return true;
  case Type::TypeKind::Data:
    // Decls are interned per context; across contexts, names identify.
    return cast<DataType>(A)->decl() == cast<DataType>(B)->decl() ||
           cast<DataType>(A)->decl()->name() ==
               cast<DataType>(B)->decl()->name();
  case Type::TypeKind::Var:
    return Env.varsEqual(cast<VarType>(A)->name(), cast<VarType>(B)->name());
  case Type::TypeKind::Arrow: {
    const auto *AA = cast<ArrowType>(A);
    const auto *BA = cast<ArrowType>(B);
    return typesAlphaEqual(AA->param(), BA->param(), Env) &&
           typesAlphaEqual(AA->result(), BA->result(), Env);
  }
  case Type::TypeKind::ForAll: {
    const auto *AF = cast<ForAllType>(A);
    const auto *BF = cast<ForAllType>(B);
    if (!repsAlphaEqual(AF->varKind().rep(), BF->varKind().rep(), Env))
      return false;
    AlphaEnv Inner = Env;
    Inner.bind(AF->var(), BF->var());
    return typesAlphaEqual(AF->body(), BF->body(), Inner);
  }
  case Type::TypeKind::ForAllRep: {
    const auto *AF = cast<ForAllRepType>(A);
    const auto *BF = cast<ForAllRepType>(B);
    AlphaEnv Inner = Env;
    Inner.bind(AF->repVar(), BF->repVar());
    return typesAlphaEqual(AF->body(), BF->body(), Inner);
  }
  }
  return false;
}

} // namespace

bool lcalc::typeEqual(const Type *A, const Type *B) {
  if (A == B)
    return true;
  AlphaEnv Env;
  return typesAlphaEqual(A, B, Env);
}

bool lcalc::isValue(const Expr *E) {
  switch (E->kind()) {
  case Expr::ExprKind::Lam:
  case Expr::ExprKind::IntLit:
  case Expr::ExprKind::DoubleLit:
    return true;
  case Expr::ExprKind::TyLam:
    return isValue(cast<TyLamExpr>(E)->body());
  case Expr::ExprKind::RepLam:
    return isValue(cast<RepLamExpr>(E)->body());
  case Expr::ExprKind::Con: {
    // Constructors are strict in unboxed fields only; pointer fields are
    // lazy (substituted unevaluated, like S_BETAPTR arguments).
    const auto *C = cast<ConExpr>(E);
    const LDataCon &Con = C->decl()->con(C->tag());
    for (size_t I = 0; I != C->args().size(); ++I)
      if (Con.FieldReps[I] != ConcreteRep::P && !isValue(C->args()[I]))
        return false;
    return true;
  }
  default:
    return false;
  }
}
