//===- Subst.h - Capture-avoiding substitution for L ------------*- C++ -*-===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Capture-avoiding substitution over L types and expressions, in all three
/// variable categories (term, type, rep), plus free-variable queries. The
/// small-step rules S_BETAPTR, S_BETAUNBOXED, S_TBETA, S_RBETA and S_MATCH
/// are implemented with these. Substitution shares unchanged subtrees.
///
//===----------------------------------------------------------------------===//

#ifndef LEVITY_LCALC_SUBST_H
#define LEVITY_LCALC_SUBST_H

#include "lcalc/Syntax.h"

#include <unordered_set>

namespace levity {
namespace lcalc {

using SymbolSet = std::unordered_set<Symbol, SymbolHash>;

/// Free term variables of \p E.
void freeTermVars(const Expr *E, SymbolSet &Out);

/// Free type variables of \p T / \p E.
void freeTypeVars(const Type *T, SymbolSet &Out);
void freeTypeVars(const Expr *E, SymbolSet &Out);

/// Free rep variables of \p T / \p E (kinds included).
void freeRepVars(const Type *T, SymbolSet &Out);
void freeRepVars(const Expr *E, SymbolSet &Out);

/// \returns true iff \p E has no free variables of any category.
bool isClosed(const Expr *E);

/// ρ[Rep/RepVar] and κ[Rep/RepVar].
RuntimeRep substRep(RuntimeRep R, Symbol RepVar, RuntimeRep Rep);
LKind substRep(LKind K, Symbol RepVar, RuntimeRep Rep);

/// τ[Replacement/Var] — substitutes a type for a type variable.
const Type *substTypeInType(LContext &Ctx, const Type *T, Symbol Var,
                            const Type *Replacement);

/// τ[Rep/RepVar] — substitutes a rep for a rep variable in a type.
const Type *substRepInType(LContext &Ctx, const Type *T, Symbol RepVar,
                           RuntimeRep Rep);

/// e[Replacement/Var] — substitutes an expression for a term variable.
const Expr *substExprInExpr(LContext &Ctx, const Expr *E, Symbol Var,
                            const Expr *Replacement);

/// e[Replacement/Var] — substitutes a type for a type variable.
const Expr *substTypeInExpr(LContext &Ctx, const Expr *E, Symbol Var,
                            const Type *Replacement);

/// e[Rep/RepVar] — substitutes a rep for a rep variable.
const Expr *substRepInExpr(LContext &Ctx, const Expr *E, Symbol RepVar,
                           RuntimeRep Rep);

} // namespace lcalc
} // namespace levity

#endif // LEVITY_LCALC_SUBST_H
