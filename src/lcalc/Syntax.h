//===- Syntax.h - The L language of Section 6 (Figure 2) --------*- C++ -*-===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Abstract syntax for L, the paper's System F variant with levity
/// polymorphism (Figure 2), plus the executable extensions the driver's
/// core→L lowering rides:
///
/// \code
///   υ ::= P | I | D                  concrete reps
///   ρ ::= r | υ                      runtime reps
///   κ ::= TYPE ρ                     kinds
///   B ::= Int | Int# | Double#       base types
///   τ ::= B | τ1 → τ2 | α | ∀α:κ. τ | ∀r. τ
///   e ::= x | e1 e2 | λx:τ. e | Λα:κ. e | e τ | Λr. e | e ρ
///       | I#[e] | case e1 of I#[x] → e2 | n | d | error
///       | e1 ⊕# e2 | if0 e1 then e2 else e3 | fix x:τ. e
///   v ::= λx:τ. e | Λα:κ. v | Λr. v | I#[v] | n | d
/// \endcode
///
/// The extensions beyond Figure 2 — Double# (a second unboxed literal
/// sort with its own register class D), binary primops over both unboxed
/// sorts (arithmetic and comparisons; comparisons return Int# 0/1), an
/// `if0` branch on an Int# scrutinee, and a `fix` recursion form at
/// lifted (TYPE P) types — are all representation-monomorphic, so they
/// interact with neither levity polymorphism nor the E_LAM/E_APP
/// restrictions.
///
/// Nodes are immutable and arena-allocated by an LContext. Variables are
/// named Symbols (as in the paper's presentation); substitution is
/// capture-avoiding (see Subst.h). Note that values are recursive under Λ:
/// L evaluates under type/rep abstractions to support type erasure
/// (Section 6.1).
///
//===----------------------------------------------------------------------===//

#ifndef LEVITY_LCALC_SYNTAX_H
#define LEVITY_LCALC_SYNTAX_H

#include "support/Arena.h"
#include "support/Symbol.h"

#include <cassert>
#include <cstdint>
#include <string>

namespace levity {
namespace lcalc {

//===----------------------------------------------------------------------===//
// Runtime reps and kinds
//===----------------------------------------------------------------------===//

/// υ — a fully concrete representation: pointer, integer, or double
/// register.
enum class ConcreteRep : uint8_t {
  P, ///< Boxed and lifted; passed in a pointer register, call-by-need.
  I, ///< Unboxed integer; passed in an integer register, call-by-value.
  D  ///< Unboxed double; passed in a float register, call-by-value.
};

/// ρ — a runtime rep: either concrete (υ) or a rep variable (r).
class RuntimeRep {
public:
  static RuntimeRep concrete(ConcreteRep R) { return RuntimeRep(R); }
  static RuntimeRep pointer() { return RuntimeRep(ConcreteRep::P); }
  static RuntimeRep integer() { return RuntimeRep(ConcreteRep::I); }
  static RuntimeRep dbl() { return RuntimeRep(ConcreteRep::D); }
  static RuntimeRep var(Symbol Name) { return RuntimeRep(Name); }

  bool isVar() const { return IsVar; }
  bool isConcrete() const { return !IsVar; }

  ConcreteRep rep() const {
    assert(isConcrete() && "rep() on a rep variable");
    return Concrete;
  }

  Symbol varName() const {
    assert(isVar() && "varName() on a concrete rep");
    return Var;
  }

  friend bool operator==(RuntimeRep A, RuntimeRep B) {
    if (A.IsVar != B.IsVar)
      return false;
    return A.IsVar ? A.Var == B.Var : A.Concrete == B.Concrete;
  }
  friend bool operator!=(RuntimeRep A, RuntimeRep B) { return !(A == B); }

  std::string str() const;

private:
  explicit RuntimeRep(ConcreteRep R) : IsVar(false), Concrete(R) {}
  explicit RuntimeRep(Symbol V) : IsVar(true), Var(V) {}

  bool IsVar;
  ConcreteRep Concrete = ConcreteRep::P;
  Symbol Var;
};

/// κ — a kind, always of the form TYPE ρ in L.
class LKind {
public:
  LKind() : Rep(RuntimeRep::pointer()) {}
  explicit LKind(RuntimeRep Rep) : Rep(Rep) {}

  static LKind typePtr() { return LKind(RuntimeRep::pointer()); }
  static LKind typeInt() { return LKind(RuntimeRep::integer()); }
  static LKind typeDbl() { return LKind(RuntimeRep::dbl()); }
  static LKind typeVar(Symbol R) { return LKind(RuntimeRep::var(R)); }

  RuntimeRep rep() const { return Rep; }
  bool isConcrete() const { return Rep.isConcrete(); }

  friend bool operator==(LKind A, LKind B) { return A.Rep == B.Rep; }
  friend bool operator!=(LKind A, LKind B) { return !(A == B); }

  std::string str() const;

private:
  RuntimeRep Rep;
};

//===----------------------------------------------------------------------===//
// Types
//===----------------------------------------------------------------------===//

/// τ — a type of L. Subclasses carry the payloads; discrimination is via
/// the kind() tag and classof, LLVM-style.
class Type {
public:
  enum class TypeKind : uint8_t {
    Int,        ///< Boxed integers, kind TYPE P.
    IntHash,    ///< Unboxed integers Int#, kind TYPE I.
    DoubleHash, ///< Unboxed doubles Double#, kind TYPE D.
    Arrow,      ///< τ1 → τ2, kind TYPE P.
    Var,        ///< A type variable α.
    ForAll,     ///< ∀α:κ. τ.
    ForAllRep   ///< ∀r. τ.
  };

  TypeKind kind() const { return Kind; }

  std::string str() const;

protected:
  explicit Type(TypeKind Kind) : Kind(Kind) {}

private:
  TypeKind Kind;
};

class IntType : public Type {
public:
  IntType() : Type(TypeKind::Int) {}
  static bool classof(const Type *T) { return T->kind() == TypeKind::Int; }
};

class IntHashType : public Type {
public:
  IntHashType() : Type(TypeKind::IntHash) {}
  static bool classof(const Type *T) {
    return T->kind() == TypeKind::IntHash;
  }
};

class DoubleHashType : public Type {
public:
  DoubleHashType() : Type(TypeKind::DoubleHash) {}
  static bool classof(const Type *T) {
    return T->kind() == TypeKind::DoubleHash;
  }
};

class ArrowType : public Type {
public:
  ArrowType(const Type *Param, const Type *Result)
      : Type(TypeKind::Arrow), Param(Param), Result(Result) {}

  const Type *param() const { return Param; }
  const Type *result() const { return Result; }

  static bool classof(const Type *T) { return T->kind() == TypeKind::Arrow; }

private:
  const Type *Param;
  const Type *Result;
};

class VarType : public Type {
public:
  explicit VarType(Symbol Name) : Type(TypeKind::Var), Name(Name) {}

  Symbol name() const { return Name; }

  static bool classof(const Type *T) { return T->kind() == TypeKind::Var; }

private:
  Symbol Name;
};

/// ∀α:κ. τ
class ForAllType : public Type {
public:
  ForAllType(Symbol Var, LKind VarKind, const Type *Body)
      : Type(TypeKind::ForAll), Var(Var), VarKind(VarKind), Body(Body) {}

  Symbol var() const { return Var; }
  LKind varKind() const { return VarKind; }
  const Type *body() const { return Body; }

  static bool classof(const Type *T) { return T->kind() == TypeKind::ForAll; }

private:
  Symbol Var;
  LKind VarKind;
  const Type *Body;
};

/// ∀r. τ
class ForAllRepType : public Type {
public:
  ForAllRepType(Symbol RepVar, const Type *Body)
      : Type(TypeKind::ForAllRep), RepVar(RepVar), Body(Body) {}

  Symbol repVar() const { return RepVar; }
  const Type *body() const { return Body; }

  static bool classof(const Type *T) {
    return T->kind() == TypeKind::ForAllRep;
  }

private:
  Symbol RepVar;
  const Type *Body;
};

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

/// e — an expression of L.
class Expr {
public:
  enum class ExprKind : uint8_t {
    Var,       ///< x
    App,       ///< e1 e2
    Lam,       ///< λx:τ. e
    TyLam,     ///< Λα:κ. e
    TyApp,     ///< e τ
    RepLam,    ///< Λr. e
    RepApp,    ///< e ρ
    Con,       ///< I#[e]
    Case,      ///< case e1 of I#[x] → e2
    IntLit,    ///< n
    DoubleLit, ///< d (an unboxed Double# literal)
    Error,     ///< error
    Prim,      ///< e1 ⊕# e2 (binary Int#/Double# arithmetic/comparison)
    If0,       ///< if0 e1 then e2 else e3 (branch on an Int# scrutinee)
    Fix        ///< fix x:τ. e (recursion at a lifted type)
  };

  ExprKind kind() const { return Kind; }

  std::string str() const;

protected:
  explicit Expr(ExprKind Kind) : Kind(Kind) {}

private:
  ExprKind Kind;
};

class VarExpr : public Expr {
public:
  explicit VarExpr(Symbol Name) : Expr(ExprKind::Var), Name(Name) {}

  Symbol name() const { return Name; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::Var; }

private:
  Symbol Name;
};

class AppExpr : public Expr {
public:
  AppExpr(const Expr *Fn, const Expr *Arg)
      : Expr(ExprKind::App), Fn(Fn), Arg(Arg) {}

  const Expr *fn() const { return Fn; }
  const Expr *arg() const { return Arg; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::App; }

private:
  const Expr *Fn;
  const Expr *Arg;
};

class LamExpr : public Expr {
public:
  LamExpr(Symbol Var, const Type *VarType, const Expr *Body)
      : Expr(ExprKind::Lam), Var(Var), VarTy(VarType), Body(Body) {}

  Symbol var() const { return Var; }
  const Type *varType() const { return VarTy; }
  const Expr *body() const { return Body; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::Lam; }

private:
  Symbol Var;
  const Type *VarTy;
  const Expr *Body;
};

class TyLamExpr : public Expr {
public:
  TyLamExpr(Symbol Var, LKind VarKind, const Expr *Body)
      : Expr(ExprKind::TyLam), Var(Var), VarKind(VarKind), Body(Body) {}

  Symbol var() const { return Var; }
  LKind varKind() const { return VarKind; }
  const Expr *body() const { return Body; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::TyLam; }

private:
  Symbol Var;
  LKind VarKind;
  const Expr *Body;
};

class TyAppExpr : public Expr {
public:
  TyAppExpr(const Expr *Fn, const Type *TyArg)
      : Expr(ExprKind::TyApp), Fn(Fn), TyArg(TyArg) {}

  const Expr *fn() const { return Fn; }
  const Type *tyArg() const { return TyArg; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::TyApp; }

private:
  const Expr *Fn;
  const Type *TyArg;
};

class RepLamExpr : public Expr {
public:
  RepLamExpr(Symbol RepVar, const Expr *Body)
      : Expr(ExprKind::RepLam), RepVar(RepVar), Body(Body) {}

  Symbol repVar() const { return RepVar; }
  const Expr *body() const { return Body; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::RepLam; }

private:
  Symbol RepVar;
  const Expr *Body;
};

class RepAppExpr : public Expr {
public:
  RepAppExpr(const Expr *Fn, RuntimeRep RepArg)
      : Expr(ExprKind::RepApp), Fn(Fn), RepArg(RepArg) {}

  const Expr *fn() const { return Fn; }
  RuntimeRep repArg() const { return RepArg; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::RepApp; }

private:
  const Expr *Fn;
  RuntimeRep RepArg;
};

/// I#[e] — the data constructor of Int, boxing an Int#.
class ConExpr : public Expr {
public:
  explicit ConExpr(const Expr *Payload)
      : Expr(ExprKind::Con), Payload(Payload) {}

  const Expr *payload() const { return Payload; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::Con; }

private:
  const Expr *Payload;
};

/// case e1 of I#[x] → e2 — forces e1 and unboxes it.
class CaseExpr : public Expr {
public:
  CaseExpr(const Expr *Scrut, Symbol Binder, const Expr *Body)
      : Expr(ExprKind::Case), Scrut(Scrut), Binder(Binder), Body(Body) {}

  const Expr *scrut() const { return Scrut; }
  Symbol binder() const { return Binder; }
  const Expr *body() const { return Body; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::Case; }

private:
  const Expr *Scrut;
  Symbol Binder;
  const Expr *Body;
};

class IntLitExpr : public Expr {
public:
  explicit IntLitExpr(int64_t Value) : Expr(ExprKind::IntLit), Value(Value) {}

  int64_t value() const { return Value; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::IntLit; }

private:
  int64_t Value;
};

/// d — an unboxed Double# literal (kind TYPE D).
class DoubleLitExpr : public Expr {
public:
  explicit DoubleLitExpr(double Value)
      : Expr(ExprKind::DoubleLit), Value(Value) {}

  double value() const { return Value; }

  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::DoubleLit;
  }

private:
  double Value;
};

/// error — halts the machine; has the levity-polymorphic type
/// ∀r. ∀α:TYPE r. Int → α (E_ERROR). Carries an optional diagnostic
/// message (an interned Symbol; L has no string values, so the message
/// rides the node rather than the term) that the abstract machine
/// surfaces through MachineResult on ⊥.
class ErrorExpr : public Expr {
public:
  ErrorExpr() : Expr(ExprKind::Error) {}
  explicit ErrorExpr(Symbol Msg) : Expr(ExprKind::Error), Msg(Msg) {}

  /// Invalid when the error carries no message.
  Symbol message() const { return Msg; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::Error; }

private:
  Symbol Msg;
};

/// ⊕# — the binary primops over the unboxed sorts. A conservative
/// executable extension of Figure 2 used by the driver's core→L lowering:
/// every operand and result type has a concrete unboxed kind (TYPE I or
/// TYPE D), so the operators interact with neither levity polymorphism
/// nor the E_LAM/E_APP restrictions. Comparisons return Int# 0/1, as in
/// GHC.
enum class LPrim : uint8_t {
  // Int# -> Int# -> Int# arithmetic.
  Add, Sub, Mul, Quot, Rem,
  // Int# -> Int# -> Int# comparisons (0/1).
  Lt, Le, Gt, Ge, Eq, Ne,
  // Double# -> Double# -> Double# arithmetic.
  DAdd, DSub, DMul, DDiv,
  // Double# -> Double# -> Int# comparisons (0/1).
  DLt, DLe, DGt, DGe, DEq, DNe
};

std::string_view lPrimName(LPrim Op);
/// True when the operands are Double# (the D-prefixed half of the enum).
bool lPrimTakesDouble(LPrim Op);
/// True when the result is Double# (double arithmetic; comparisons are
/// Int#).
bool lPrimReturnsDouble(LPrim Op);
/// Evaluates an Int#-operand primop (arithmetic or comparison).
int64_t evalLPrim(LPrim Op, int64_t Lhs, int64_t Rhs);
/// Evaluates a Double#-operand, Double#-result primop.
double evalLPrimDD(LPrim Op, double Lhs, double Rhs);
/// Evaluates a Double#-operand comparison (Int# 0/1 result).
int64_t evalLPrimDI(LPrim Op, double Lhs, double Rhs);

/// e1 ⊕# e2 — strict in both operands (they are unboxed).
class PrimExpr : public Expr {
public:
  PrimExpr(LPrim Op, const Expr *Lhs, const Expr *Rhs)
      : Expr(ExprKind::Prim), Op(Op), Lhs(Lhs), Rhs(Rhs) {}

  LPrim op() const { return Op; }
  const Expr *lhs() const { return Lhs; }
  const Expr *rhs() const { return Rhs; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::Prim; }

private:
  LPrim Op;
  const Expr *Lhs;
  const Expr *Rhs;
};

/// if0 e1 then e2 else e3 — forces the Int# scrutinee and takes the
/// then-branch when it is 0, the else-branch otherwise. This is the
/// branch form multi-alternative core cases lower to (a comparison
/// chain); both branches must have the same type.
class If0Expr : public Expr {
public:
  If0Expr(const Expr *Scrut, const Expr *Then, const Expr *Else)
      : Expr(ExprKind::If0), Scrut(Scrut), Then(Then), Else(Else) {}

  const Expr *scrut() const { return Scrut; }
  const Expr *thenBranch() const { return Then; }
  const Expr *elseBranch() const { return Else; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::If0; }

private:
  const Expr *Scrut;
  const Expr *Then;
  const Expr *Else;
};

/// fix x:τ. e — recursion. τ must be lifted (kind TYPE P): the unfolding
/// substitutes the whole fix for x (S_FIX), and the M compilation ties
/// the knot through a heap thunk, which only a pointer binder can name.
class FixExpr : public Expr {
public:
  FixExpr(Symbol Var, const Type *VarTy, const Expr *Body)
      : Expr(ExprKind::Fix), Var(Var), VarTy(VarTy), Body(Body) {}

  Symbol var() const { return Var; }
  const Type *varType() const { return VarTy; }
  const Expr *body() const { return Body; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::Fix; }

private:
  Symbol Var;
  const Type *VarTy;
  const Expr *Body;
};

//===----------------------------------------------------------------------===//
// LLVM-style dispatch helpers
//===----------------------------------------------------------------------===//

template <typename To, typename From> bool isa(const From *Node) {
  return To::classof(Node);
}

template <typename To, typename From> const To *cast(const From *Node) {
  assert(isa<To>(Node) && "cast to incompatible node kind");
  return static_cast<const To *>(Node);
}

template <typename To, typename From> const To *dyn_cast(const From *Node) {
  return isa<To>(Node) ? static_cast<const To *>(Node) : nullptr;
}

//===----------------------------------------------------------------------===//
// LContext — arena + singletons + factories
//===----------------------------------------------------------------------===//

/// Owns all L types and expressions plus the symbol table used for
/// freshening. Factory methods are the only way to make nodes.
class LContext {
public:
  // errorType() is materialized eagerly: after a Compilation is built its
  // LContext may serve many concurrent formal runs, and a lazily-written
  // cache would race.
  LContext() : IntSingleton(), IntHashSingleton(), DoubleHashSingleton() {
    (void)errorType();
  }
  LContext(const LContext &) = delete;
  LContext &operator=(const LContext &) = delete;

  SymbolTable &symbols() { return Symbols; }

  Symbol sym(std::string_view Name) { return Symbols.intern(Name); }

  // Types.
  const Type *intTy() const { return &IntSingleton; }
  const Type *intHashTy() const { return &IntHashSingleton; }
  const Type *doubleHashTy() const { return &DoubleHashSingleton; }
  const Type *arrowTy(const Type *Param, const Type *Result) {
    return Mem.create<ArrowType>(Param, Result);
  }
  const Type *varTy(Symbol Name) { return Mem.create<VarType>(Name); }
  const Type *forAllTy(Symbol Var, LKind K, const Type *Body) {
    return Mem.create<ForAllType>(Var, K, Body);
  }
  const Type *forAllRepTy(Symbol RepVar, const Type *Body) {
    return Mem.create<ForAllRepType>(RepVar, Body);
  }

  /// The type of error: ∀r. ∀α:TYPE r. Int → α.
  const Type *errorType();

  // Expressions.
  const Expr *var(Symbol Name) { return Mem.create<VarExpr>(Name); }
  const Expr *app(const Expr *Fn, const Expr *Arg) {
    return Mem.create<AppExpr>(Fn, Arg);
  }
  const Expr *lam(Symbol Var, const Type *VarTy, const Expr *Body) {
    return Mem.create<LamExpr>(Var, VarTy, Body);
  }
  const Expr *tyLam(Symbol Var, LKind K, const Expr *Body) {
    return Mem.create<TyLamExpr>(Var, K, Body);
  }
  const Expr *tyApp(const Expr *Fn, const Type *TyArg) {
    return Mem.create<TyAppExpr>(Fn, TyArg);
  }
  const Expr *repLam(Symbol RepVar, const Expr *Body) {
    return Mem.create<RepLamExpr>(RepVar, Body);
  }
  const Expr *repApp(const Expr *Fn, RuntimeRep RepArg) {
    return Mem.create<RepAppExpr>(Fn, RepArg);
  }
  const Expr *con(const Expr *Payload) {
    return Mem.create<ConExpr>(Payload);
  }
  const Expr *caseOf(const Expr *Scrut, Symbol Binder, const Expr *Body) {
    return Mem.create<CaseExpr>(Scrut, Binder, Body);
  }
  const Expr *intLit(int64_t Value) {
    return Mem.create<IntLitExpr>(Value);
  }
  const Expr *doubleLit(double Value) {
    return Mem.create<DoubleLitExpr>(Value);
  }
  const Expr *error() { return Mem.create<ErrorExpr>(); }
  const Expr *error(Symbol Msg) { return Mem.create<ErrorExpr>(Msg); }
  const Expr *prim(LPrim Op, const Expr *Lhs, const Expr *Rhs) {
    return Mem.create<PrimExpr>(Op, Lhs, Rhs);
  }
  const Expr *if0(const Expr *Scrut, const Expr *Then, const Expr *Else) {
    return Mem.create<If0Expr>(Scrut, Then, Else);
  }
  const Expr *fix(Symbol Var, const Type *VarTy, const Expr *Body) {
    return Mem.create<FixExpr>(Var, VarTy, Body);
  }

  Arena &arena() { return Mem; }

private:
  Arena Mem;
  SymbolTable Symbols;
  IntType IntSingleton;
  IntHashType IntHashSingleton;
  DoubleHashType DoubleHashSingleton;
  const Type *ErrorTypeCache = nullptr;
};

/// Structural equality of types up to alpha-renaming of bound type and rep
/// variables. This is the type-equality used by E_APP and E_TAPP.
bool typeEqual(const Type *A, const Type *B);

/// \returns true if \p E is a value per Figure 2 (note the recursion under
/// type and rep abstractions).
bool isValue(const Expr *E);

} // namespace lcalc
} // namespace levity

#endif // LEVITY_LCALC_SYNTAX_H
