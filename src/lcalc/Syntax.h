//===- Syntax.h - The L language of Section 6 (Figure 2) --------*- C++ -*-===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Abstract syntax for L, the paper's System F variant with levity
/// polymorphism (Figure 2), plus the executable extensions the driver's
/// core→L lowering rides:
///
/// \code
///   υ ::= P | I | D                  concrete reps
///   ρ ::= r | υ                      runtime reps
///   κ ::= TYPE ρ                     kinds
///   B ::= Int | Int# | Double# | T   base types (T a declared data type)
///   τ ::= B | τ1 → τ2 | α | ∀α:κ. τ | ∀r. τ
///   e ::= x | e1 e2 | λx:τ. e | Λα:κ. e | e τ | Λr. e | e ρ
///       | C_k[e1, …, en] | case e1 of { alt; …; _ → e } | n | d | error
///       | e1 ⊕# e2 | if0 e1 then e2 else e3 | fix x:τ. e
///   alt ::= C_k[x1, …, xn] → e | n → e | d → e
///   v ::= λx:τ. e | Λα:κ. v | Λr. v | C_k[e̅] | n | d
/// \endcode
///
/// Algebraic data generalizes the paper's single boxed type Int: an
/// LDataDecl names a lifted (TYPE P) type with tagged constructors
/// C_0 … C_{m-1}, each with field types of concrete rep. `Int` with its
/// constructor `I#` (one Int# field) is simply the built-in instance of
/// the scheme. Constructors are strict in unboxed (I/D) fields and lazy
/// in pointer (P) fields — the same kind-directed discipline the
/// application rules use — so a constructor is a *value* once its
/// unboxed fields are (C_k[e̅] above). `case` branches on constructor
/// tags, Int# literals, or Double# literals, with an optional default
/// alternative.
///
/// The extensions beyond Figure 2 — Double# (a second unboxed literal
/// sort with its own register class D), binary primops over both unboxed
/// sorts (arithmetic and comparisons; comparisons return Int# 0/1), an
/// `if0` branch on an Int# scrutinee, n-ary tagged constructors with the
/// tag-dispatch `case`, and a `fix` recursion form at lifted (TYPE P)
/// types — are all representation-monomorphic, so they interact with
/// neither levity polymorphism nor the E_LAM/E_APP restrictions.
///
/// Nodes are immutable and arena-allocated by an LContext. Variables are
/// named Symbols (as in the paper's presentation); substitution is
/// capture-avoiding (see Subst.h). Note that values are recursive under Λ:
/// L evaluates under type/rep abstractions to support type erasure
/// (Section 6.1).
///
//===----------------------------------------------------------------------===//

#ifndef LEVITY_LCALC_SYNTAX_H
#define LEVITY_LCALC_SYNTAX_H

#include "support/Arena.h"
#include "support/Symbol.h"

#include <cassert>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

namespace levity {
namespace lcalc {

//===----------------------------------------------------------------------===//
// Runtime reps and kinds
//===----------------------------------------------------------------------===//

/// υ — a fully concrete representation: pointer, integer, or double
/// register.
enum class ConcreteRep : uint8_t {
  P, ///< Boxed and lifted; passed in a pointer register, call-by-need.
  I, ///< Unboxed integer; passed in an integer register, call-by-value.
  D  ///< Unboxed double; passed in a float register, call-by-value.
};

/// ρ — a runtime rep: either concrete (υ) or a rep variable (r).
class RuntimeRep {
public:
  static RuntimeRep concrete(ConcreteRep R) { return RuntimeRep(R); }
  static RuntimeRep pointer() { return RuntimeRep(ConcreteRep::P); }
  static RuntimeRep integer() { return RuntimeRep(ConcreteRep::I); }
  static RuntimeRep dbl() { return RuntimeRep(ConcreteRep::D); }
  static RuntimeRep var(Symbol Name) { return RuntimeRep(Name); }

  bool isVar() const { return IsVar; }
  bool isConcrete() const { return !IsVar; }

  ConcreteRep rep() const {
    assert(isConcrete() && "rep() on a rep variable");
    return Concrete;
  }

  Symbol varName() const {
    assert(isVar() && "varName() on a concrete rep");
    return Var;
  }

  friend bool operator==(RuntimeRep A, RuntimeRep B) {
    if (A.IsVar != B.IsVar)
      return false;
    return A.IsVar ? A.Var == B.Var : A.Concrete == B.Concrete;
  }
  friend bool operator!=(RuntimeRep A, RuntimeRep B) { return !(A == B); }

  std::string str() const;

private:
  explicit RuntimeRep(ConcreteRep R) : IsVar(false), Concrete(R) {}
  explicit RuntimeRep(Symbol V) : IsVar(true), Var(V) {}

  bool IsVar;
  ConcreteRep Concrete = ConcreteRep::P;
  Symbol Var;
};

/// κ — a kind, always of the form TYPE ρ in L.
class LKind {
public:
  LKind() : Rep(RuntimeRep::pointer()) {}
  explicit LKind(RuntimeRep Rep) : Rep(Rep) {}

  static LKind typePtr() { return LKind(RuntimeRep::pointer()); }
  static LKind typeInt() { return LKind(RuntimeRep::integer()); }
  static LKind typeDbl() { return LKind(RuntimeRep::dbl()); }
  static LKind typeVar(Symbol R) { return LKind(RuntimeRep::var(R)); }

  RuntimeRep rep() const { return Rep; }
  bool isConcrete() const { return Rep.isConcrete(); }

  friend bool operator==(LKind A, LKind B) { return A.Rep == B.Rep; }
  friend bool operator!=(LKind A, LKind B) { return !(A == B); }

  std::string str() const;

private:
  RuntimeRep Rep;
};

//===----------------------------------------------------------------------===//
// Types
//===----------------------------------------------------------------------===//

class LDataDecl;

/// τ — a type of L. Subclasses carry the payloads; discrimination is via
/// the kind() tag and classof, LLVM-style.
class Type {
public:
  enum class TypeKind : uint8_t {
    Int,        ///< Boxed integers, kind TYPE P.
    IntHash,    ///< Unboxed integers Int#, kind TYPE I.
    DoubleHash, ///< Unboxed doubles Double#, kind TYPE D.
    Arrow,      ///< τ1 → τ2, kind TYPE P.
    Var,        ///< A type variable α.
    ForAll,     ///< ∀α:κ. τ.
    ForAllRep,  ///< ∀r. τ.
    Data        ///< A declared algebraic data type T, kind TYPE P.
  };

  TypeKind kind() const { return Kind; }

  std::string str() const;

protected:
  explicit Type(TypeKind Kind) : Kind(Kind) {}

private:
  TypeKind Kind;
};

class IntType : public Type {
public:
  IntType() : Type(TypeKind::Int) {}
  static bool classof(const Type *T) { return T->kind() == TypeKind::Int; }
};

class IntHashType : public Type {
public:
  IntHashType() : Type(TypeKind::IntHash) {}
  static bool classof(const Type *T) {
    return T->kind() == TypeKind::IntHash;
  }
};

class DoubleHashType : public Type {
public:
  DoubleHashType() : Type(TypeKind::DoubleHash) {}
  static bool classof(const Type *T) {
    return T->kind() == TypeKind::DoubleHash;
  }
};

class ArrowType : public Type {
public:
  ArrowType(const Type *Param, const Type *Result)
      : Type(TypeKind::Arrow), Param(Param), Result(Result) {}

  const Type *param() const { return Param; }
  const Type *result() const { return Result; }

  static bool classof(const Type *T) { return T->kind() == TypeKind::Arrow; }

private:
  const Type *Param;
  const Type *Result;
};

class VarType : public Type {
public:
  explicit VarType(Symbol Name) : Type(TypeKind::Var), Name(Name) {}

  Symbol name() const { return Name; }

  static bool classof(const Type *T) { return T->kind() == TypeKind::Var; }

private:
  Symbol Name;
};

/// ∀α:κ. τ
class ForAllType : public Type {
public:
  ForAllType(Symbol Var, LKind VarKind, const Type *Body)
      : Type(TypeKind::ForAll), Var(Var), VarKind(VarKind), Body(Body) {}

  Symbol var() const { return Var; }
  LKind varKind() const { return VarKind; }
  const Type *body() const { return Body; }

  static bool classof(const Type *T) { return T->kind() == TypeKind::ForAll; }

private:
  Symbol Var;
  LKind VarKind;
  const Type *Body;
};

/// ∀r. τ
class ForAllRepType : public Type {
public:
  ForAllRepType(Symbol RepVar, const Type *Body)
      : Type(TypeKind::ForAllRep), RepVar(RepVar), Body(Body) {}

  Symbol repVar() const { return RepVar; }
  const Type *body() const { return Body; }

  static bool classof(const Type *T) {
    return T->kind() == TypeKind::ForAllRep;
  }

private:
  Symbol RepVar;
  const Type *Body;
};

/// T — a declared algebraic data type (boxed and lifted, kind TYPE P).
/// One singleton node per LDataDecl, owned by the decl's LContext.
class DataType : public Type {
public:
  explicit DataType(const LDataDecl *Decl)
      : Type(TypeKind::Data), Decl(Decl) {}

  const LDataDecl *decl() const { return Decl; }

  static bool classof(const Type *T) { return T->kind() == TypeKind::Data; }

private:
  const LDataDecl *Decl;
};

//===----------------------------------------------------------------------===//
// Data declarations
//===----------------------------------------------------------------------===//

/// One constructor C_k of a data declaration: a name, ordered field
/// types, and their (pre-computed) concrete reps. Unboxed (I/D) fields
/// are strict; pointer (P) fields are lazy — mirroring the kind-directed
/// evaluation order of the application rules.
struct LDataCon {
  Symbol Name;
  std::vector<const Type *> Fields;
  std::vector<ConcreteRep> FieldReps;

  size_t arity() const { return Fields.size(); }
};

/// A named algebraic data type: an ordered list of tagged constructors.
/// Declared through LContext::declareData + addDataCon; the decl's
/// constructors are sealed before the first expression mentions them.
/// The paper's Int is the built-in instance (constructor I#, tag 0, one
/// Int# field) — see LContext::intDataDecl().
class LDataDecl {
public:
  Symbol name() const { return Name; }
  /// The L type of this decl's values (the DataType singleton; the
  /// IntType singleton for the built-in Int decl).
  const Type *type() const { return Ty; }
  size_t numCons() const { return Cons.size(); }
  const LDataCon &con(unsigned Tag) const {
    assert(Tag < Cons.size() && "constructor tag out of range");
    return Cons[Tag];
  }
  const std::vector<LDataCon> &cons() const { return Cons; }

  /// Use LContext::declareData — constructing a decl directly leaves it
  /// unregistered and typeless.
  explicit LDataDecl(Symbol Name) : Name(Name) {}

private:
  friend class LContext;

  Symbol Name;
  const Type *Ty = nullptr;
  std::vector<LDataCon> Cons;
};

/// The concrete rep of a closed constructor-field type, or nullopt when
/// the type's rep is not determined without an environment (free type
/// variables). Declared fields must be closed, so this is total on legal
/// decls.
std::optional<ConcreteRep> dataFieldRep(const Type *T);

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

/// e — an expression of L.
class Expr {
public:
  enum class ExprKind : uint8_t {
    Var,       ///< x
    App,       ///< e1 e2
    Lam,       ///< λx:τ. e
    TyLam,     ///< Λα:κ. e
    TyApp,     ///< e τ
    RepLam,    ///< Λr. e
    RepApp,    ///< e ρ
    Con,       ///< I#[e]
    Case,      ///< case e1 of I#[x] → e2
    IntLit,    ///< n
    DoubleLit, ///< d (an unboxed Double# literal)
    Error,     ///< error
    Prim,      ///< e1 ⊕# e2 (binary Int#/Double# arithmetic/comparison)
    If0,       ///< if0 e1 then e2 else e3 (branch on an Int# scrutinee)
    Fix        ///< fix x:τ. e (recursion at a lifted type)
  };

  ExprKind kind() const { return Kind; }

  std::string str() const;

protected:
  explicit Expr(ExprKind Kind) : Kind(Kind) {}

private:
  ExprKind Kind;
};

class VarExpr : public Expr {
public:
  explicit VarExpr(Symbol Name) : Expr(ExprKind::Var), Name(Name) {}

  Symbol name() const { return Name; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::Var; }

private:
  Symbol Name;
};

class AppExpr : public Expr {
public:
  AppExpr(const Expr *Fn, const Expr *Arg)
      : Expr(ExprKind::App), Fn(Fn), Arg(Arg) {}

  const Expr *fn() const { return Fn; }
  const Expr *arg() const { return Arg; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::App; }

private:
  const Expr *Fn;
  const Expr *Arg;
};

class LamExpr : public Expr {
public:
  LamExpr(Symbol Var, const Type *VarType, const Expr *Body)
      : Expr(ExprKind::Lam), Var(Var), VarTy(VarType), Body(Body) {}

  Symbol var() const { return Var; }
  const Type *varType() const { return VarTy; }
  const Expr *body() const { return Body; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::Lam; }

private:
  Symbol Var;
  const Type *VarTy;
  const Expr *Body;
};

class TyLamExpr : public Expr {
public:
  TyLamExpr(Symbol Var, LKind VarKind, const Expr *Body)
      : Expr(ExprKind::TyLam), Var(Var), VarKind(VarKind), Body(Body) {}

  Symbol var() const { return Var; }
  LKind varKind() const { return VarKind; }
  const Expr *body() const { return Body; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::TyLam; }

private:
  Symbol Var;
  LKind VarKind;
  const Expr *Body;
};

class TyAppExpr : public Expr {
public:
  TyAppExpr(const Expr *Fn, const Type *TyArg)
      : Expr(ExprKind::TyApp), Fn(Fn), TyArg(TyArg) {}

  const Expr *fn() const { return Fn; }
  const Type *tyArg() const { return TyArg; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::TyApp; }

private:
  const Expr *Fn;
  const Type *TyArg;
};

class RepLamExpr : public Expr {
public:
  RepLamExpr(Symbol RepVar, const Expr *Body)
      : Expr(ExprKind::RepLam), RepVar(RepVar), Body(Body) {}

  Symbol repVar() const { return RepVar; }
  const Expr *body() const { return Body; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::RepLam; }

private:
  Symbol RepVar;
  const Expr *Body;
};

class RepAppExpr : public Expr {
public:
  RepAppExpr(const Expr *Fn, RuntimeRep RepArg)
      : Expr(ExprKind::RepApp), Fn(Fn), RepArg(RepArg) {}

  const Expr *fn() const { return Fn; }
  RuntimeRep repArg() const { return RepArg; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::RepApp; }

private:
  const Expr *Fn;
  RuntimeRep RepArg;
};

/// C_k[e1, …, en] — a saturated application of constructor tag k of a
/// data declaration (E_CON). `I#[e]` is the built-in Int instance.
/// Strict in unboxed fields, lazy (call-by-name, like S_BETAPTR) in
/// pointer fields.
class ConExpr : public Expr {
public:
  ConExpr(const LDataDecl *Decl, unsigned Tag,
          std::span<const Expr *const> Args)
      : Expr(ExprKind::Con), Decl(Decl), ConTag(Tag), Args(Args) {}

  const LDataDecl *decl() const { return Decl; }
  unsigned tag() const { return ConTag; }
  std::span<const Expr *const> args() const { return Args; }

  /// The single field of a unary constructor (the I#[e] accessor).
  const Expr *payload() const {
    assert(Args.size() == 1 && "payload() on a non-unary constructor");
    return Args[0];
  }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::Con; }

private:
  const LDataDecl *Decl;
  unsigned ConTag;
  std::span<const Expr *const> Args;
};

/// One alternative of a case expression: a constructor pattern
/// C_k[x1, …, xn], an Int# literal pattern, or a Double# literal
/// pattern. The default alternative lives on the CaseExpr itself.
struct LAlt {
  enum class PatKind : uint8_t {
    Con, ///< C_k[x̅] → rhs (Tag + Binders).
    Int, ///< n → rhs (IntVal).
    Dbl  ///< d → rhs (DblVal).
  };

  PatKind Pat = PatKind::Con;
  unsigned Tag = 0;                ///< Con: constructor tag.
  int64_t IntVal = 0;              ///< Int literal pattern value.
  double DblVal = 0;               ///< Dbl literal pattern value.
  std::span<const Symbol> Binders; ///< Con: one binder per field.
  const Expr *Rhs = nullptr;
};

/// case e of { alt1; …; altn; _ → e_def } — forces the scrutinee, then
/// dispatches on its constructor tag (or literal value), binding the
/// matched constructor's fields (E_CASE, S_CASE/S_CASEk/S_CASEDEF).
/// Decl is the scrutinee's data declaration when the alternatives are
/// constructor patterns, null for literal and default-only cases. The
/// default may be null only when the constructor alternatives cover
/// every tag of Decl.
class CaseExpr : public Expr {
public:
  CaseExpr(const Expr *Scrut, const LDataDecl *Decl,
           std::span<const LAlt> Alts, const Expr *Default)
      : Expr(ExprKind::Case), Scrut(Scrut), Decl(Decl), Alts(Alts),
        Default(Default) {}

  const Expr *scrut() const { return Scrut; }
  /// The scrutinee's data declaration; null for literal/default-only
  /// cases.
  const LDataDecl *decl() const { return Decl; }
  std::span<const LAlt> alts() const { return Alts; }
  /// The default alternative's right-hand side, or null.
  const Expr *defaultRhs() const { return Default; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::Case; }

private:
  const Expr *Scrut;
  const LDataDecl *Decl;
  std::span<const LAlt> Alts;
  const Expr *Default;
};

class IntLitExpr : public Expr {
public:
  explicit IntLitExpr(int64_t Value) : Expr(ExprKind::IntLit), Value(Value) {}

  int64_t value() const { return Value; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::IntLit; }

private:
  int64_t Value;
};

/// d — an unboxed Double# literal (kind TYPE D).
class DoubleLitExpr : public Expr {
public:
  explicit DoubleLitExpr(double Value)
      : Expr(ExprKind::DoubleLit), Value(Value) {}

  double value() const { return Value; }

  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::DoubleLit;
  }

private:
  double Value;
};

/// error — halts the machine; has the levity-polymorphic type
/// ∀r. ∀α:TYPE r. Int → α (E_ERROR). Carries an optional diagnostic
/// message (an interned Symbol; L has no string values, so the message
/// rides the node rather than the term) that the abstract machine
/// surfaces through MachineResult on ⊥.
class ErrorExpr : public Expr {
public:
  ErrorExpr() : Expr(ExprKind::Error) {}
  explicit ErrorExpr(Symbol Msg) : Expr(ExprKind::Error), Msg(Msg) {}

  /// Invalid when the error carries no message.
  Symbol message() const { return Msg; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::Error; }

private:
  Symbol Msg;
};

/// ⊕# — the binary primops over the unboxed sorts. A conservative
/// executable extension of Figure 2 used by the driver's core→L lowering:
/// every operand and result type has a concrete unboxed kind (TYPE I or
/// TYPE D), so the operators interact with neither levity polymorphism
/// nor the E_LAM/E_APP restrictions. Comparisons return Int# 0/1, as in
/// GHC.
enum class LPrim : uint8_t {
  // Int# -> Int# -> Int# arithmetic.
  Add, Sub, Mul, Quot, Rem,
  // Int# -> Int# -> Int# comparisons (0/1).
  Lt, Le, Gt, Ge, Eq, Ne,
  // Double# -> Double# -> Double# arithmetic.
  DAdd, DSub, DMul, DDiv,
  // Double# -> Double# -> Int# comparisons (0/1).
  DLt, DLe, DGt, DGe, DEq, DNe
};

std::string_view lPrimName(LPrim Op);
/// True when the operands are Double# (the D-prefixed half of the enum).
bool lPrimTakesDouble(LPrim Op);
/// True when the result is Double# (double arithmetic; comparisons are
/// Int#).
bool lPrimReturnsDouble(LPrim Op);
/// Evaluates an Int#-operand primop (arithmetic or comparison).
int64_t evalLPrim(LPrim Op, int64_t Lhs, int64_t Rhs);
/// Evaluates a Double#-operand, Double#-result primop.
double evalLPrimDD(LPrim Op, double Lhs, double Rhs);
/// Evaluates a Double#-operand comparison (Int# 0/1 result).
int64_t evalLPrimDI(LPrim Op, double Lhs, double Rhs);

/// e1 ⊕# e2 — strict in both operands (they are unboxed).
class PrimExpr : public Expr {
public:
  PrimExpr(LPrim Op, const Expr *Lhs, const Expr *Rhs)
      : Expr(ExprKind::Prim), Op(Op), Lhs(Lhs), Rhs(Rhs) {}

  LPrim op() const { return Op; }
  const Expr *lhs() const { return Lhs; }
  const Expr *rhs() const { return Rhs; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::Prim; }

private:
  LPrim Op;
  const Expr *Lhs;
  const Expr *Rhs;
};

/// if0 e1 then e2 else e3 — forces the Int# scrutinee and takes the
/// then-branch when it is 0, the else-branch otherwise. This is the
/// branch form multi-alternative core cases lower to (a comparison
/// chain); both branches must have the same type.
class If0Expr : public Expr {
public:
  If0Expr(const Expr *Scrut, const Expr *Then, const Expr *Else)
      : Expr(ExprKind::If0), Scrut(Scrut), Then(Then), Else(Else) {}

  const Expr *scrut() const { return Scrut; }
  const Expr *thenBranch() const { return Then; }
  const Expr *elseBranch() const { return Else; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::If0; }

private:
  const Expr *Scrut;
  const Expr *Then;
  const Expr *Else;
};

/// fix x:τ. e — recursion. τ must be lifted (kind TYPE P): the unfolding
/// substitutes the whole fix for x (S_FIX), and the M compilation ties
/// the knot through a heap thunk, which only a pointer binder can name.
class FixExpr : public Expr {
public:
  FixExpr(Symbol Var, const Type *VarTy, const Expr *Body)
      : Expr(ExprKind::Fix), Var(Var), VarTy(VarTy), Body(Body) {}

  Symbol var() const { return Var; }
  const Type *varType() const { return VarTy; }
  const Expr *body() const { return Body; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::Fix; }

private:
  Symbol Var;
  const Type *VarTy;
  const Expr *Body;
};

//===----------------------------------------------------------------------===//
// LLVM-style dispatch helpers
//===----------------------------------------------------------------------===//

template <typename To, typename From> bool isa(const From *Node) {
  return To::classof(Node);
}

template <typename To, typename From> const To *cast(const From *Node) {
  assert(isa<To>(Node) && "cast to incompatible node kind");
  return static_cast<const To *>(Node);
}

template <typename To, typename From> const To *dyn_cast(const From *Node) {
  return isa<To>(Node) ? static_cast<const To *>(Node) : nullptr;
}

//===----------------------------------------------------------------------===//
// LContext — arena + singletons + factories
//===----------------------------------------------------------------------===//

/// Owns all L types and expressions plus the symbol table used for
/// freshening. Factory methods are the only way to make nodes.
class LContext {
public:
  // errorType() and the built-in Int decl are materialized eagerly:
  // after a Compilation is built its LContext may serve many concurrent
  // formal runs, and a lazily-written cache would race. Defined in
  // Syntax.cpp.
  LContext();
  LContext(const LContext &) = delete;
  LContext &operator=(const LContext &) = delete;

  SymbolTable &symbols() { return Symbols; }

  Symbol sym(std::string_view Name) { return Symbols.intern(Name); }

  // Types.
  const Type *intTy() const { return &IntSingleton; }
  const Type *intHashTy() const { return &IntHashSingleton; }
  const Type *doubleHashTy() const { return &DoubleHashSingleton; }
  const Type *arrowTy(const Type *Param, const Type *Result) {
    return Mem.create<ArrowType>(Param, Result);
  }
  const Type *varTy(Symbol Name) { return Mem.create<VarType>(Name); }
  const Type *forAllTy(Symbol Var, LKind K, const Type *Body) {
    return Mem.create<ForAllType>(Var, K, Body);
  }
  const Type *forAllRepTy(Symbol RepVar, const Type *Body) {
    return Mem.create<ForAllRepType>(RepVar, Body);
  }

  /// The type of error: ∀r. ∀α:TYPE r. Int → α.
  const Type *errorType();

  // Data declarations.

  /// Declares a new algebraic data type named \p Name (must be unused)
  /// and returns it for addDataCon calls. The decl's DataType node is
  /// created here, so recursive field types can mention the decl before
  /// its constructors are added.
  LDataDecl *declareData(Symbol Name);
  /// Appends constructor \p ConName with \p Fields to \p Decl.
  /// \returns false (and leaves the decl unchanged) when some field
  /// type's rep is not concrete — such a field has no register class.
  bool addDataCon(LDataDecl *Decl, Symbol ConName,
                  std::span<const Type *const> Fields);
  /// The declaration registered under \p Name, or null.
  const LDataDecl *lookupData(Symbol Name) const;
  /// The built-in data declaration of Int: one constructor I# (tag 0)
  /// with a single Int# field. Its type() is the IntType singleton.
  const LDataDecl *intDataDecl() const { return &IntDecl; }
  /// The decl behind a scrutinee type: the Int builtin for IntType, the
  /// decl of a DataType, null otherwise.
  static const LDataDecl *declOfType(const LContext &Ctx, const Type *T) {
    if (isa<IntType>(T))
      return Ctx.intDataDecl();
    if (const auto *D = dyn_cast<DataType>(T))
      return D->decl();
    return nullptr;
  }

  // Expressions.
  const Expr *var(Symbol Name) { return Mem.create<VarExpr>(Name); }
  const Expr *app(const Expr *Fn, const Expr *Arg) {
    return Mem.create<AppExpr>(Fn, Arg);
  }
  const Expr *lam(Symbol Var, const Type *VarTy, const Expr *Body) {
    return Mem.create<LamExpr>(Var, VarTy, Body);
  }
  const Expr *tyLam(Symbol Var, LKind K, const Expr *Body) {
    return Mem.create<TyLamExpr>(Var, K, Body);
  }
  const Expr *tyApp(const Expr *Fn, const Type *TyArg) {
    return Mem.create<TyAppExpr>(Fn, TyArg);
  }
  const Expr *repLam(Symbol RepVar, const Expr *Body) {
    return Mem.create<RepLamExpr>(RepVar, Body);
  }
  const Expr *repApp(const Expr *Fn, RuntimeRep RepArg) {
    return Mem.create<RepAppExpr>(Fn, RepArg);
  }
  /// I#[Payload] — constructor tag 0 of the built-in Int decl.
  const Expr *con(const Expr *Payload) {
    return conData(&IntDecl, 0, {&Payload, 1});
  }
  /// C_Tag[Args...] of \p Decl.
  const Expr *conData(const LDataDecl *Decl, unsigned Tag,
                      std::span<const Expr *const> Args) {
    assert(Tag < Decl->numCons() && "constructor tag out of range");
    assert(Args.size() == Decl->con(Tag).arity() &&
           "constructor arity mismatch");
    return Mem.create<ConExpr>(Decl, Tag, Mem.copyArray(Args));
  }
  /// case Scrut of I#[Binder] → Body — the paper's one-armed unboxing
  /// case, as a single-alternative case over the built-in Int decl.
  const Expr *caseOf(const Expr *Scrut, Symbol Binder, const Expr *Body) {
    LAlt A;
    A.Pat = LAlt::PatKind::Con;
    A.Tag = 0;
    A.Binders = Mem.copyArray({Binder});
    A.Rhs = Body;
    return Mem.create<CaseExpr>(Scrut, &IntDecl, Mem.copyArray({A}),
                                nullptr);
  }
  /// The general tag-dispatch case. \p Decl must be the scrutinee's data
  /// declaration when \p Alts contains constructor patterns; null for
  /// literal or default-only cases. \p Default may be null. Alt binder
  /// arrays are copied into the arena.
  const Expr *caseData(const Expr *Scrut, const LDataDecl *Decl,
                       std::span<const LAlt> Alts, const Expr *Default) {
    std::vector<LAlt> Copied(Alts.begin(), Alts.end());
    for (LAlt &A : Copied)
      A.Binders = Mem.copyArray(A.Binders);
    return Mem.create<CaseExpr>(Scrut, Decl, Mem.copyArray(Copied),
                                Default);
  }
  const Expr *intLit(int64_t Value) {
    return Mem.create<IntLitExpr>(Value);
  }
  const Expr *doubleLit(double Value) {
    return Mem.create<DoubleLitExpr>(Value);
  }
  const Expr *error() { return Mem.create<ErrorExpr>(); }
  const Expr *error(Symbol Msg) { return Mem.create<ErrorExpr>(Msg); }
  const Expr *prim(LPrim Op, const Expr *Lhs, const Expr *Rhs) {
    return Mem.create<PrimExpr>(Op, Lhs, Rhs);
  }
  const Expr *if0(const Expr *Scrut, const Expr *Then, const Expr *Else) {
    return Mem.create<If0Expr>(Scrut, Then, Else);
  }
  const Expr *fix(Symbol Var, const Type *VarTy, const Expr *Body) {
    return Mem.create<FixExpr>(Var, VarTy, Body);
  }

  Arena &arena() { return Mem; }

private:
  Arena Mem;
  SymbolTable Symbols;
  IntType IntSingleton;
  IntHashType IntHashSingleton;
  DoubleHashType DoubleHashSingleton;
  const Type *ErrorTypeCache = nullptr;
  /// The built-in Int declaration (constructor I#), sealed in the ctor.
  LDataDecl IntDecl{Symbol()};
  /// Declared data types: owning storage plus the by-name index. Built
  /// before the context is shared (declareData is a build-time
  /// operation), read-only afterwards.
  std::vector<std::unique_ptr<LDataDecl>> DataDeclStorage;
  std::unordered_map<Symbol, LDataDecl *, SymbolHash> DataDecls;
};

/// Structural equality of types up to alpha-renaming of bound type and rep
/// variables. This is the type-equality used by E_APP and E_TAPP.
bool typeEqual(const Type *A, const Type *B);

/// \returns true if \p E is a value per Figure 2 (note the recursion under
/// type and rep abstractions).
bool isValue(const Expr *E);

} // namespace lcalc
} // namespace levity

#endif // LEVITY_LCALC_SYNTAX_H
