//===- TypeCheck.h - Typing judgments for L (Figure 3) ----------*- C++ -*-===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The three judgments of Figure 3:
///
///   Γ ⊢ κ kind     kind validity (K_CONST, K_VAR)
///   Γ ⊢ τ : κ      type validity (T_INT, T_INTH, T_ARROW, T_VAR,
///                                  T_ALLTY, T_ALLREP)
///   Γ ⊢ e : τ      term validity (E_VAR .. E_INTLIT)
///
/// The levity-polymorphism restrictions of Section 5.1 are the highlighted
/// premises of E_APP and E_LAM: the argument/binder type must have a kind
/// `TYPE υ` with υ *concrete* — never a rep variable. These premises are
/// what make compilation (Figure 7) total on well-typed terms.
///
//===----------------------------------------------------------------------===//

#ifndef LEVITY_LCALC_TYPECHECK_H
#define LEVITY_LCALC_TYPECHECK_H

#include "lcalc/Syntax.h"
#include "support/Result.h"

#include <optional>
#include <vector>

namespace levity {
namespace lcalc {

/// Γ — an ordered context of term, type, and rep variable bindings with
/// shadowing (lookups scan back to front). Scopes are pushed/popped by the
/// checker; RAII is deliberately avoided so the structure stays POD-simple.
class TypeEnv {
public:
  void pushTerm(Symbol Name, const Type *Ty) {
    Terms.push_back({Name, Ty});
  }
  void popTerm() { Terms.pop_back(); }

  void pushTypeVar(Symbol Name, LKind K) { TypeVars.push_back({Name, K}); }
  void popTypeVar() { TypeVars.pop_back(); }

  void pushRepVar(Symbol Name) { RepVars.push_back(Name); }
  void popRepVar() { RepVars.pop_back(); }

  const Type *lookupTerm(Symbol Name) const {
    for (auto It = Terms.rbegin(), E = Terms.rend(); It != E; ++It)
      if (It->Name == Name)
        return It->Ty;
    return nullptr;
  }

  std::optional<LKind> lookupTypeVar(Symbol Name) const {
    for (auto It = TypeVars.rbegin(), E = TypeVars.rend(); It != E; ++It)
      if (It->first == Name)
        return It->second;
    return std::nullopt;
  }

  bool hasRepVar(Symbol Name) const {
    for (auto It = RepVars.rbegin(), E = RepVars.rend(); It != E; ++It)
      if (*It == Name)
        return true;
    return false;
  }

  /// Progress and Simulation require Γ to have no *term* bindings.
  bool hasTermBindings() const { return !Terms.empty(); }

  size_t numTermBindings() const { return Terms.size(); }

private:
  struct TermBinding {
    Symbol Name;
    const Type *Ty;
  };
  std::vector<TermBinding> Terms;
  std::vector<std::pair<Symbol, LKind>> TypeVars;
  std::vector<Symbol> RepVars;
};

/// Implements the judgments of Figure 3.
class TypeChecker {
public:
  explicit TypeChecker(LContext &Ctx) : Ctx(Ctx) {}

  /// Γ ⊢ κ kind — true for TYPE υ (K_CONST) and TYPE r with r ∈ Γ (K_VAR).
  bool kindValid(const TypeEnv &Env, LKind K) const;

  /// Γ ⊢ τ : κ — computes the (unique) kind of a type, or fails.
  Result<LKind> kindOf(const TypeEnv &Env, const Type *T) const;

  /// Γ ⊢ e : τ — computes the type of an expression, or fails with the
  /// first violated premise. \p Env is restored on exit.
  Result<const Type *> typeOf(TypeEnv &Env, const Expr *E) const;

  /// Convenience: typechecks a closed expression.
  Result<const Type *> typeOfClosed(const Expr *E) const {
    TypeEnv Env;
    return typeOf(Env, E);
  }

private:
  LContext &Ctx;
};

} // namespace lcalc
} // namespace levity

#endif // LEVITY_LCALC_TYPECHECK_H
