//===- TypeCheck.cpp - Typing judgments for L (Figure 3) ------------------===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "lcalc/TypeCheck.h"
#include "lcalc/Subst.h"

using namespace levity;
using namespace levity::lcalc;

bool TypeChecker::kindValid(const TypeEnv &Env, LKind K) const {
  // K_CONST: TYPE υ is always a kind.
  if (K.isConcrete())
    return true;
  // K_VAR: TYPE r needs r ∈ Γ.
  return Env.hasRepVar(K.rep().varName());
}

Result<LKind> TypeChecker::kindOf(const TypeEnv &Env, const Type *T) const {
  switch (T->kind()) {
  case Type::TypeKind::Int:
    // T_INT: Γ ⊢ Int : TYPE P.
    return LKind::typePtr();
  case Type::TypeKind::IntHash:
    // T_INTH: Γ ⊢ Int# : TYPE I.
    return LKind::typeInt();
  case Type::TypeKind::DoubleHash:
    // T_DBLH: Γ ⊢ Double# : TYPE D.
    return LKind::typeDbl();
  case Type::TypeKind::Data:
    // T_DATA: declared algebraic data is boxed and lifted.
    return LKind::typePtr();
  case Type::TypeKind::Arrow: {
    // T_ARROW: both sides must be well-kinded (at *any* kind — this is how
    // Int# → Int# is fine, Section 4.3); the arrow itself is TYPE P.
    const auto *A = cast<ArrowType>(T);
    Result<LKind> K1 = kindOf(Env, A->param());
    if (!K1)
      return err(K1.error());
    Result<LKind> K2 = kindOf(Env, A->result());
    if (!K2)
      return err(K2.error());
    return LKind::typePtr();
  }
  case Type::TypeKind::Var: {
    // T_VAR: α:κ ∈ Γ.
    const auto *V = cast<VarType>(T);
    if (std::optional<LKind> K = Env.lookupTypeVar(V->name()))
      return *K;
    return err("type variable not in scope: " + std::string(V->name().str()));
  }
  case Type::TypeKind::ForAll: {
    // T_ALLTY: the forall's kind is its *body's* kind κ2 (type erasure),
    // provided the annotation kind is valid.
    const auto *F = cast<ForAllType>(T);
    if (!kindValid(Env, F->varKind()))
      return err("invalid kind annotation " + F->varKind().str() +
                 " (rep variable not in scope)");
    TypeEnv Inner = Env;
    Inner.pushTypeVar(F->var(), F->varKind());
    return kindOf(Inner, F->body());
  }
  case Type::TypeKind::ForAllRep: {
    // T_ALLREP: Γ, r ⊢ τ : κ with κ ≠ TYPE r — the rep variable must not
    // escape into the forall's own kind, or erasure would be impossible.
    const auto *F = cast<ForAllRepType>(T);
    TypeEnv Inner = Env;
    Inner.pushRepVar(F->repVar());
    Result<LKind> K = kindOf(Inner, F->body());
    if (!K)
      return K;
    if (K->rep().isVar() && K->rep().varName() == F->repVar())
      return err("body of forall " + std::string(F->repVar().str()) +
                 ". has kind TYPE " + std::string(F->repVar().str()) +
                 ", which mentions the bound rep variable (T_ALLREP)");
    return *K;
  }
  }
  assert(false && "unknown type kind");
  return err("unknown type kind");
}

Result<const Type *> TypeChecker::typeOf(TypeEnv &Env, const Expr *E) const {
  switch (E->kind()) {
  case Expr::ExprKind::Var: {
    // E_VAR.
    const auto *V = cast<VarExpr>(E);
    if (const Type *T = Env.lookupTerm(V->name()))
      return T;
    return err("variable not in scope: " + std::string(V->name().str()));
  }
  case Expr::ExprKind::IntLit:
    // E_INTLIT: n : Int#.
    return Ctx.intHashTy();
  case Expr::ExprKind::DoubleLit:
    // E_DBLLIT: d : Double#.
    return Ctx.doubleHashTy();
  case Expr::ExprKind::Error:
    // E_ERROR: error : ∀r. ∀α:TYPE r. Int → α.
    return Ctx.errorType();
  case Expr::ExprKind::Con: {
    // E_CON: C_k[e1..en] : T when each ei has the declared field type.
    // Field reps are concrete by decl construction, so the rule needs no
    // extra concreteness premise.
    const auto *C = cast<ConExpr>(E);
    const LDataDecl *D = C->decl();
    if (C->tag() >= D->numCons())
      return err("constructor tag " + std::to_string(C->tag()) +
                 " out of range for " + std::string(D->name().str()));
    const LDataCon &Con = D->con(C->tag());
    if (C->args().size() != Con.arity())
      return err("constructor " + std::string(Con.Name.str()) +
                 " expects " + std::to_string(Con.arity()) +
                 " arguments, got " + std::to_string(C->args().size()));
    for (size_t I = 0; I != C->args().size(); ++I) {
      Result<const Type *> ArgTy = typeOf(Env, C->args()[I]);
      if (!ArgTy)
        return ArgTy;
      if (!typeEqual(*ArgTy, Con.Fields[I]))
        return err(std::string(Con.Name.str()) + " expects " +
                   Con.Fields[I]->str() + ", got " + (*ArgTy)->str());
    }
    return D->type();
  }
  case Expr::ExprKind::App: {
    // E_APP, including the highlighted premise Γ ⊢ τ1 : TYPE υ.
    const auto *A = cast<AppExpr>(E);
    Result<const Type *> FnTy = typeOf(Env, A->fn());
    if (!FnTy)
      return FnTy;
    const auto *Arrow = dyn_cast<ArrowType>(*FnTy);
    if (!Arrow)
      return err("applying a non-function of type " + (*FnTy)->str());
    Result<const Type *> ArgTy = typeOf(Env, A->arg());
    if (!ArgTy)
      return ArgTy;
    if (!typeEqual(*ArgTy, Arrow->param()))
      return err("argument type mismatch: expected " +
                 Arrow->param()->str() + ", got " + (*ArgTy)->str());
    Result<LKind> ArgKind = kindOf(Env, Arrow->param());
    if (!ArgKind)
      return err(ArgKind.error());
    if (!ArgKind->isConcrete())
      return err("levity-polymorphic argument: " + Arrow->param()->str() +
                 " has kind " + ArgKind->str() +
                 " which is not concrete (E_APP)");
    return Arrow->result();
  }
  case Expr::ExprKind::Lam: {
    // E_LAM, including the highlighted premise Γ ⊢ τ1 : TYPE υ.
    const auto *L = cast<LamExpr>(E);
    Result<LKind> BinderKind = kindOf(Env, L->varType());
    if (!BinderKind)
      return err(BinderKind.error());
    if (!BinderKind->isConcrete())
      return err("levity-polymorphic binder: " +
                 std::string(L->var().str()) + " : " + L->varType()->str() +
                 " has kind " + BinderKind->str() +
                 " which is not concrete (E_LAM)");
    Env.pushTerm(L->var(), L->varType());
    Result<const Type *> BodyTy = typeOf(Env, L->body());
    Env.popTerm();
    if (!BodyTy)
      return BodyTy;
    return Ctx.arrowTy(L->varType(), *BodyTy);
  }
  case Expr::ExprKind::TyLam: {
    // E_TLAM.
    const auto *L = cast<TyLamExpr>(E);
    if (!kindValid(Env, L->varKind()))
      return err("invalid kind " + L->varKind().str() + " in type lambda");
    Env.pushTypeVar(L->var(), L->varKind());
    Result<const Type *> BodyTy = typeOf(Env, L->body());
    Env.popTypeVar();
    if (!BodyTy)
      return BodyTy;
    return Ctx.forAllTy(L->var(), L->varKind(), *BodyTy);
  }
  case Expr::ExprKind::TyApp: {
    // E_TAPP.
    const auto *A = cast<TyAppExpr>(E);
    Result<const Type *> FnTy = typeOf(Env, A->fn());
    if (!FnTy)
      return FnTy;
    const auto *Forall = dyn_cast<ForAllType>(*FnTy);
    if (!Forall)
      return err("type-applying a non-polymorphic expression of type " +
                 (*FnTy)->str());
    Result<LKind> ArgKind = kindOf(Env, A->tyArg());
    if (!ArgKind)
      return err(ArgKind.error());
    if (*ArgKind != Forall->varKind())
      return err("kind mismatch in type application: expected " +
                 Forall->varKind().str() + ", got " + ArgKind->str());
    return substTypeInType(Ctx, Forall->body(), Forall->var(), A->tyArg());
  }
  case Expr::ExprKind::RepLam: {
    // E_RLAM.
    const auto *L = cast<RepLamExpr>(E);
    Env.pushRepVar(L->repVar());
    Result<const Type *> BodyTy = typeOf(Env, L->body());
    Env.popRepVar();
    if (!BodyTy)
      return BodyTy;
    return Ctx.forAllRepTy(L->repVar(), *BodyTy);
  }
  case Expr::ExprKind::RepApp: {
    // E_RAPP (with the sanity premise that ρ is well-scoped).
    const auto *A = cast<RepAppExpr>(E);
    Result<const Type *> FnTy = typeOf(Env, A->fn());
    if (!FnTy)
      return FnTy;
    const auto *Forall = dyn_cast<ForAllRepType>(*FnTy);
    if (!Forall)
      return err("rep-applying an expression of type " + (*FnTy)->str());
    if (A->repArg().isVar() && !Env.hasRepVar(A->repArg().varName()))
      return err("rep variable not in scope: " +
                 std::string(A->repArg().varName().str()));
    return substRepInType(Ctx, Forall->body(), Forall->repVar(),
                          A->repArg());
  }
  case Expr::ExprKind::Prim: {
    // E_PRIM: both operand types are one unboxed sort (Int# or Double#
    // per the operator) and the result is Int# or Double# per the
    // operator. Every type involved has a concrete unboxed kind, so the
    // rule needs no concreteness premise.
    const auto *P = cast<PrimExpr>(E);
    const Type *OperandTy =
        lPrimTakesDouble(P->op()) ? Ctx.doubleHashTy() : Ctx.intHashTy();
    Result<const Type *> LhsTy = typeOf(Env, P->lhs());
    if (!LhsTy)
      return LhsTy;
    if (!typeEqual(*LhsTy, OperandTy))
      return err(std::string(lPrimName(P->op())) + " expects " +
                 OperandTy->str() + ", got " + (*LhsTy)->str());
    Result<const Type *> RhsTy = typeOf(Env, P->rhs());
    if (!RhsTy)
      return RhsTy;
    if (!typeEqual(*RhsTy, OperandTy))
      return err(std::string(lPrimName(P->op())) + " expects " +
                 OperandTy->str() + ", got " + (*RhsTy)->str());
    return lPrimReturnsDouble(P->op()) ? Ctx.doubleHashTy()
                                       : Ctx.intHashTy();
  }
  case Expr::ExprKind::If0: {
    // E_IF0: if0 e1 then e2 else e3 : τ when e1 : Int# and e2, e3 : τ.
    const auto *I = cast<If0Expr>(E);
    Result<const Type *> ScrutTy = typeOf(Env, I->scrut());
    if (!ScrutTy)
      return ScrutTy;
    if (!typeEqual(*ScrutTy, Ctx.intHashTy()))
      return err("if0 scrutinee must have type Int#, got " +
                 (*ScrutTy)->str());
    Result<const Type *> ThenTy = typeOf(Env, I->thenBranch());
    if (!ThenTy)
      return ThenTy;
    Result<const Type *> ElseTy = typeOf(Env, I->elseBranch());
    if (!ElseTy)
      return ElseTy;
    if (!typeEqual(*ThenTy, *ElseTy))
      return err("if0 branches disagree: " + (*ThenTy)->str() + " vs " +
                 (*ElseTy)->str());
    return *ThenTy;
  }
  case Expr::ExprKind::Fix: {
    // E_FIX: fix x:τ. e : τ when Γ,x:τ ⊢ e : τ and τ : TYPE P — the
    // unfolding substitutes an arbitrary (unevaluated) expression for x,
    // which only a lifted binder can receive.
    const auto *F = cast<FixExpr>(E);
    Result<LKind> BinderKind = kindOf(Env, F->varType());
    if (!BinderKind)
      return err(BinderKind.error());
    if (!(*BinderKind == LKind::typePtr()))
      return err("recursive binder " + std::string(F->var().str()) + " : " +
                 F->varType()->str() + " has kind " + BinderKind->str() +
                 ", but fix requires a lifted (TYPE P) type (E_FIX)");
    Env.pushTerm(F->var(), F->varType());
    Result<const Type *> BodyTy = typeOf(Env, F->body());
    Env.popTerm();
    if (!BodyTy)
      return BodyTy;
    if (!typeEqual(*BodyTy, F->varType()))
      return err("fix body has type " + (*BodyTy)->str() +
                 ", expected the annotation " + F->varType()->str());
    return F->varType();
  }
  case Expr::ExprKind::Case: {
    // E_CASE: the scrutinee type selects the dispatch mode — a data
    // declaration (constructor patterns, which must cover every tag
    // unless a default is present), Int# (integer literal patterns), or
    // Double# (double literal patterns); literal and default-only cases
    // require a default. All right-hand sides share one type.
    const auto *C = cast<CaseExpr>(E);
    Result<const Type *> ScrutTy = typeOf(Env, C->scrut());
    if (!ScrutTy)
      return ScrutTy;

    const Type *ResultTy = nullptr;
    auto JoinRhs = [&](Result<const Type *> RhsTy) -> Result<bool> {
      if (!RhsTy)
        return err(RhsTy.error());
      if (!ResultTy) {
        ResultTy = *RhsTy;
        return true;
      }
      if (!typeEqual(ResultTy, *RhsTy))
        return err("case alternatives disagree: " + ResultTy->str() +
                   " vs " + (*RhsTy)->str());
      return true;
    };

    if (const LDataDecl *D = C->decl()) {
      if (!typeEqual(*ScrutTy, D->type()))
        return err("case scrutinee must have type " + D->type()->str() +
                   ", got " + (*ScrutTy)->str());
      std::vector<bool> Covered(D->numCons(), false);
      for (const LAlt &A : C->alts()) {
        if (A.Pat != LAlt::PatKind::Con)
          return err("literal pattern in a constructor case");
        if (A.Tag >= D->numCons())
          return err("constructor tag " + std::to_string(A.Tag) +
                     " out of range for " + std::string(D->name().str()));
        const LDataCon &Con = D->con(A.Tag);
        if (A.Binders.size() != Con.arity())
          return err("constructor pattern arity mismatch for " +
                     std::string(Con.Name.str()));
        for (size_t I = 0; I != A.Binders.size(); ++I)
          for (size_t J = I + 1; J != A.Binders.size(); ++J)
            if (A.Binders[I] == A.Binders[J])
              return err("duplicate case binder " +
                         std::string(A.Binders[I].str()));
        Covered[A.Tag] = true;
        for (size_t I = 0; I != A.Binders.size(); ++I)
          Env.pushTerm(A.Binders[I], Con.Fields[I]);
        Result<const Type *> RhsTy = typeOf(Env, A.Rhs);
        for (size_t I = 0; I != A.Binders.size(); ++I)
          Env.popTerm();
        if (Result<bool> J = JoinRhs(RhsTy); !J)
          return err(J.error());
      }
      if (!C->defaultRhs())
        for (size_t Tag = 0; Tag != Covered.size(); ++Tag)
          if (!Covered[Tag])
            return err("non-exhaustive case: " +
                       std::string(D->con(Tag).Name.str()) +
                       " unmatched and no default alternative (E_CASE)");
    } else if (!C->alts().empty()) {
      // Literal alternatives: all of one sort, matching the scrutinee.
      LAlt::PatKind Pat = C->alts()[0].Pat;
      if (Pat == LAlt::PatKind::Con)
        return err("constructor pattern in a case without a data "
                   "declaration");
      const Type *Want = Pat == LAlt::PatKind::Int
                             ? Ctx.intHashTy()
                             : Ctx.doubleHashTy();
      if (!typeEqual(*ScrutTy, Want))
        return err("case scrutinee must have type " + Want->str() +
                   ", got " + (*ScrutTy)->str());
      for (const LAlt &A : C->alts()) {
        if (A.Pat != Pat)
          return err("mixed literal sorts in case alternatives");
        if (Result<bool> J = JoinRhs(typeOf(Env, A.Rhs)); !J)
          return err(J.error());
      }
      if (!C->defaultRhs())
        return err("literal case without a default alternative (E_CASE)");
    } else {
      // Default-only: the scrutinee is forced (to WHNF) and discarded;
      // its kind must be concrete so the force has a register class.
      Result<LKind> K = kindOf(Env, *ScrutTy);
      if (!K)
        return err(K.error());
      if (!K->isConcrete())
        return err("default-only case over a levity-polymorphic "
                   "scrutinee of type " + (*ScrutTy)->str());
      if (!C->defaultRhs())
        return err("case with no alternatives and no default");
    }

    if (C->defaultRhs())
      if (Result<bool> J = JoinRhs(typeOf(Env, C->defaultRhs())); !J)
        return err(J.error());
    return ResultTy;
  }
  }
  assert(false && "unknown expr kind");
  return err("unknown expr kind");
}
