//===- Eval.cpp - Small-step operational semantics for L (Fig 4) ----------===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "lcalc/Eval.h"
#include "lcalc/Subst.h"

#include <limits>

using namespace levity;
using namespace levity::lcalc;

StepResult Evaluator::step(TypeEnv &Env, const Expr *E) {
  switch (E->kind()) {
  case Expr::ExprKind::Var:
    return {StepStatus::Stuck, nullptr, "free variable"};
  case Expr::ExprKind::IntLit:
  case Expr::ExprKind::DoubleLit:
  case Expr::ExprKind::Lam:
    return {StepStatus::Value};
  case Expr::ExprKind::Error:
    // S_ERROR: error → ⊥.
    return {StepStatus::Bottom, nullptr, "S_ERROR"};
  case Expr::ExprKind::Fix: {
    // S_FIX: fix x:τ. e → e[fix x:τ. e / x].
    const auto *F = cast<FixExpr>(E);
    const Expr *Next = substExprInExpr(Ctx, F->body(), F->var(), E);
    return {StepStatus::Stepped, Next, "S_FIX"};
  }
  case Expr::ExprKind::If0: {
    // S_IF0: force the Int# scrutinee, then take the branch.
    const auto *I = cast<If0Expr>(E);
    if (const auto *Lit = dyn_cast<IntLitExpr>(I->scrut()))
      return {StepStatus::Stepped,
              Lit->value() == 0 ? I->thenBranch() : I->elseBranch(),
              Lit->value() == 0 ? "S_IF0THEN" : "S_IF0ELSE"};
    StepResult S = step(Env, I->scrut());
    if (S.Status == StepStatus::Stepped)
      return {StepStatus::Stepped,
              Ctx.if0(S.Next, I->thenBranch(), I->elseBranch()),
              "S_IF0SCRUT"};
    if (S.Status == StepStatus::Bottom)
      return {StepStatus::Bottom, nullptr, "S_IF0SCRUT/⊥"};
    return {StepStatus::Stuck, nullptr, "stuck if0 scrutinee"};
  }

  case Expr::ExprKind::App: {
    const auto *A = cast<AppExpr>(E);
    // The application rules are type-directed: fetch the kind of the
    // argument's type (premises Γ ⊢ e2 : τ, Γ ⊢ τ : TYPE υ).
    Result<const Type *> ArgTy = TC.typeOf(Env, A->arg());
    if (!ArgTy)
      return {StepStatus::Stuck, nullptr, "ill-typed argument"};
    Result<LKind> ArgKind = TC.kindOf(Env, *ArgTy);
    if (!ArgKind || !ArgKind->isConcrete())
      return {StepStatus::Stuck, nullptr, "levity-polymorphic argument"};

    if (ArgKind->rep().rep() == ConcreteRep::P) {
      // Lazy application: S_BETAPTR fires as soon as the function is a
      // lambda; the argument is substituted unevaluated (call-by-name —
      // M recovers sharing with its heap).
      if (const auto *L = dyn_cast<LamExpr>(A->fn())) {
        const Expr *Next =
            substExprInExpr(Ctx, L->body(), L->var(), A->arg());
        return {StepStatus::Stepped, Next, "S_BETAPTR"};
      }
      StepResult Fn = step(Env, A->fn());
      if (Fn.Status == StepStatus::Stepped)
        return {StepStatus::Stepped, Ctx.app(Fn.Next, A->arg()),
                "S_APPLAZY"};
      if (Fn.Status == StepStatus::Bottom)
        return {StepStatus::Bottom, nullptr, "S_APPLAZY/⊥"};
      return {StepStatus::Stuck, nullptr, "non-function in application"};
    }

    // Strict application (TYPE I): evaluate the argument first
    // (S_APPSTRICT), then the function (S_APPSTRICT2), then β-reduce
    // (S_BETAUNBOXED).
    if (!isValue(A->arg())) {
      StepResult Arg = step(Env, A->arg());
      if (Arg.Status == StepStatus::Stepped)
        return {StepStatus::Stepped, Ctx.app(A->fn(), Arg.Next),
                "S_APPSTRICT"};
      if (Arg.Status == StepStatus::Bottom)
        return {StepStatus::Bottom, nullptr, "S_APPSTRICT/⊥"};
      return {StepStatus::Stuck, nullptr, "stuck strict argument"};
    }
    if (const auto *L = dyn_cast<LamExpr>(A->fn())) {
      const Expr *Next = substExprInExpr(Ctx, L->body(), L->var(), A->arg());
      return {StepStatus::Stepped, Next, "S_BETAUNBOXED"};
    }
    StepResult Fn = step(Env, A->fn());
    if (Fn.Status == StepStatus::Stepped)
      return {StepStatus::Stepped, Ctx.app(Fn.Next, A->arg()),
              "S_APPSTRICT2"};
    if (Fn.Status == StepStatus::Bottom)
      return {StepStatus::Bottom, nullptr, "S_APPSTRICT2/⊥"};
    return {StepStatus::Stuck, nullptr, "non-function in application"};
  }

  case Expr::ExprKind::TyLam: {
    // S_TLAM: evaluate under Λ (values are recursive under Λ).
    const auto *L = cast<TyLamExpr>(E);
    if (isValue(L->body()))
      return {StepStatus::Value};
    Env.pushTypeVar(L->var(), L->varKind());
    StepResult Body = step(Env, L->body());
    Env.popTypeVar();
    if (Body.Status == StepStatus::Stepped)
      return {StepStatus::Stepped,
              Ctx.tyLam(L->var(), L->varKind(), Body.Next), "S_TLAM"};
    if (Body.Status == StepStatus::Bottom)
      return {StepStatus::Bottom, nullptr, "S_TLAM/⊥"};
    return {StepStatus::Stuck, nullptr, "stuck under type lambda"};
  }

  case Expr::ExprKind::TyApp: {
    const auto *A = cast<TyAppExpr>(E);
    // S_TBETA requires the abstraction body to be a value.
    if (const auto *L = dyn_cast<TyLamExpr>(A->fn())) {
      if (isValue(L->body())) {
        const Expr *Next =
            substTypeInExpr(Ctx, L->body(), L->var(), A->tyArg());
        return {StepStatus::Stepped, Next, "S_TBETA"};
      }
    }
    StepResult Fn = step(Env, A->fn());
    if (Fn.Status == StepStatus::Stepped)
      return {StepStatus::Stepped, Ctx.tyApp(Fn.Next, A->tyArg()),
              "S_TAPP"};
    if (Fn.Status == StepStatus::Bottom)
      return {StepStatus::Bottom, nullptr, "S_TAPP/⊥"};
    return {StepStatus::Stuck, nullptr, "type-applying a non-Λ"};
  }

  case Expr::ExprKind::RepLam: {
    // S_RLAM.
    const auto *L = cast<RepLamExpr>(E);
    if (isValue(L->body()))
      return {StepStatus::Value};
    Env.pushRepVar(L->repVar());
    StepResult Body = step(Env, L->body());
    Env.popRepVar();
    if (Body.Status == StepStatus::Stepped)
      return {StepStatus::Stepped, Ctx.repLam(L->repVar(), Body.Next),
              "S_RLAM"};
    if (Body.Status == StepStatus::Bottom)
      return {StepStatus::Bottom, nullptr, "S_RLAM/⊥"};
    return {StepStatus::Stuck, nullptr, "stuck under rep lambda"};
  }

  case Expr::ExprKind::RepApp: {
    const auto *A = cast<RepAppExpr>(E);
    // S_RBETA.
    if (const auto *L = dyn_cast<RepLamExpr>(A->fn())) {
      if (isValue(L->body())) {
        const Expr *Next =
            substRepInExpr(Ctx, L->body(), L->repVar(), A->repArg());
        return {StepStatus::Stepped, Next, "S_RBETA"};
      }
    }
    StepResult Fn = step(Env, A->fn());
    if (Fn.Status == StepStatus::Stepped)
      return {StepStatus::Stepped, Ctx.repApp(Fn.Next, A->repArg()),
              "S_RAPP"};
    if (Fn.Status == StepStatus::Bottom)
      return {StepStatus::Bottom, nullptr, "S_RAPP/⊥"};
    return {StepStatus::Stuck, nullptr, "rep-applying a non-Λ"};
  }

  case Expr::ExprKind::Con: {
    // S_CON: constructors are strict in unboxed fields (evaluated left
    // to right) and lazy in pointer fields, mirroring the kind-directed
    // application rules.
    const auto *C = cast<ConExpr>(E);
    const LDataCon &Con = C->decl()->con(C->tag());
    for (size_t I = 0; I != C->args().size(); ++I) {
      if (Con.FieldReps[I] == ConcreteRep::P || isValue(C->args()[I]))
        continue;
      StepResult P = step(Env, C->args()[I]);
      if (P.Status == StepStatus::Stepped) {
        std::vector<const Expr *> Args(C->args().begin(), C->args().end());
        Args[I] = P.Next;
        return {StepStatus::Stepped, Ctx.conData(C->decl(), C->tag(), Args),
                "S_CON"};
      }
      if (P.Status == StepStatus::Bottom)
        return {StepStatus::Bottom, nullptr, "S_CON/⊥"};
      return {StepStatus::Stuck, nullptr, "stuck constructor payload"};
    }
    return {StepStatus::Value};
  }

  case Expr::ExprKind::Prim: {
    // Both operands are Int# (kind TYPE I), so evaluation is strict,
    // left to right: S_PRIM1, S_PRIM2, then S_PRIMOP combines literals.
    const auto *P = cast<PrimExpr>(E);
    if (!isValue(P->lhs())) {
      StepResult Lhs = step(Env, P->lhs());
      if (Lhs.Status == StepStatus::Stepped)
        return {StepStatus::Stepped, Ctx.prim(P->op(), Lhs.Next, P->rhs()),
                "S_PRIM1"};
      if (Lhs.Status == StepStatus::Bottom)
        return {StepStatus::Bottom, nullptr, "S_PRIM1/⊥"};
      return {StepStatus::Stuck, nullptr, "stuck primop operand"};
    }
    if (!isValue(P->rhs())) {
      StepResult Rhs = step(Env, P->rhs());
      if (Rhs.Status == StepStatus::Stepped)
        return {StepStatus::Stepped, Ctx.prim(P->op(), P->lhs(), Rhs.Next),
                "S_PRIM2"};
      if (Rhs.Status == StepStatus::Bottom)
        return {StepStatus::Bottom, nullptr, "S_PRIM2/⊥"};
      return {StepStatus::Stuck, nullptr, "stuck primop operand"};
    }
    if (lPrimTakesDouble(P->op())) {
      const auto *Lhs = dyn_cast<DoubleLitExpr>(P->lhs());
      const auto *Rhs = dyn_cast<DoubleLitExpr>(P->rhs());
      if (!Lhs || !Rhs)
        return {StepStatus::Stuck, nullptr, "primop on non-double values"};
      if (lPrimReturnsDouble(P->op()))
        return {StepStatus::Stepped,
                Ctx.doubleLit(
                    evalLPrimDD(P->op(), Lhs->value(), Rhs->value())),
                "S_PRIMOP"};
      return {StepStatus::Stepped,
              Ctx.intLit(evalLPrimDI(P->op(), Lhs->value(), Rhs->value())),
              "S_PRIMOP"};
    }
    const auto *Lhs = dyn_cast<IntLitExpr>(P->lhs());
    const auto *Rhs = dyn_cast<IntLitExpr>(P->rhs());
    if (!Lhs || !Rhs)
      return {StepStatus::Stuck, nullptr, "primop on non-integer values"};
    if (P->op() == LPrim::Quot || P->op() == LPrim::Rem) {
      if (Rhs->value() == 0)
        return {StepStatus::Stuck, nullptr, "divide by zero"};
      // INT64_MIN / -1 overflows (and traps on x86); reject it like a
      // zero divisor instead of crashing the process.
      if (Lhs->value() == std::numeric_limits<int64_t>::min() &&
          Rhs->value() == -1)
        return {StepStatus::Stuck, nullptr, "integer overflow in division"};
    }
    return {StepStatus::Stepped,
            Ctx.intLit(evalLPrim(P->op(), Lhs->value(), Rhs->value())),
            "S_PRIMOP"};
  }

  case Expr::ExprKind::Case: {
    const auto *C = cast<CaseExpr>(E);
    if (isValue(C->scrut())) {
      // S_CASEk / S_CASEDEF: dispatch on the scrutinee value.
      if (const auto *Con = dyn_cast<ConExpr>(C->scrut())) {
        for (const LAlt &A : C->alts()) {
          if (A.Pat != LAlt::PatKind::Con || A.Tag != Con->tag())
            continue;
          if (A.Binders.size() != Con->args().size())
            return {StepStatus::Stuck, nullptr,
                    "case alternative arity mismatch"};
          // Bind fields: rename every binder fresh first so the
          // field-by-field substitution below cannot capture a name
          // free in an earlier (lazy, unevaluated) field payload.
          const Expr *Rhs = A.Rhs;
          std::vector<Symbol> Fresh(A.Binders.size());
          for (size_t I = 0; I != A.Binders.size(); ++I) {
            Fresh[I] = Ctx.symbols().fresh(A.Binders[I].str());
            Rhs = substExprInExpr(Ctx, Rhs, A.Binders[I],
                                  Ctx.var(Fresh[I]));
          }
          for (size_t I = 0; I != Fresh.size(); ++I)
            Rhs = substExprInExpr(Ctx, Rhs, Fresh[I], Con->args()[I]);
          return {StepStatus::Stepped, Rhs, "S_CASEk"};
        }
      } else if (const auto *Lit = dyn_cast<IntLitExpr>(C->scrut())) {
        for (const LAlt &A : C->alts())
          if (A.Pat == LAlt::PatKind::Int && A.IntVal == Lit->value())
            return {StepStatus::Stepped, A.Rhs, "S_CASEk"};
      } else if (const auto *DLit = dyn_cast<DoubleLitExpr>(C->scrut())) {
        for (const LAlt &A : C->alts())
          if (A.Pat == LAlt::PatKind::Dbl && A.DblVal == DLit->value())
            return {StepStatus::Stepped, A.Rhs, "S_CASEk"};
      } else if (!C->alts().empty()) {
        return {StepStatus::Stuck, nullptr,
                "case scrutinee value matches no pattern sort"};
      }
      if (C->defaultRhs())
        return {StepStatus::Stepped, C->defaultRhs(), "S_CASEDEF"};
      return {StepStatus::Stuck, nullptr, "no matching case alternative"};
    }
    // S_CASE: reduce the scrutinee.
    StepResult S = step(Env, C->scrut());
    if (S.Status == StepStatus::Stepped)
      return {StepStatus::Stepped,
              Ctx.caseData(S.Next, C->decl(), C->alts(), C->defaultRhs()),
              "S_CASE"};
    if (S.Status == StepStatus::Bottom)
      return {StepStatus::Bottom, nullptr, "S_CASE/⊥"};
    return {StepStatus::Stuck, nullptr, "stuck case scrutinee"};
  }
  }
  assert(false && "unknown expr kind");
  return {StepStatus::Stuck, nullptr, "unknown expr kind"};
}

RunResult Evaluator::run(TypeEnv &Env, const Expr *E, size_t MaxSteps) {
  const Expr *Cur = E;
  for (size_t I = 0; I != MaxSteps; ++I) {
    StepResult R = step(Env, Cur);
    switch (R.Status) {
    case StepStatus::Stepped:
      Cur = R.Next;
      continue;
    case StepStatus::Value:
      return {StepStatus::Value, Cur, I};
    case StepStatus::Bottom:
      return {StepStatus::Bottom, Cur, I};
    case StepStatus::Stuck:
      return {StepStatus::Stuck, Cur, I};
    }
  }
  return {StepStatus::Stepped, Cur, MaxSteps}; // out of fuel
}
