//===- Gen.h - Random well-typed L terms ------------------------*- C++ -*-===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A generator of random *well-typed, closed* L expressions, used by the
/// property tests for the paper's four theorems (Preservation, Progress,
/// Compilation, Simulation). Terms are correct by construction: each
/// production mirrors a typing rule of Figure 3, so every generated term
/// exercises the checker, the evaluator, and the ANF compiler.
///
/// The generator deliberately produces levity-polymorphic abstractions
/// (Λr), rep applications, uses of `error` at unboxed types, and both lazy
/// (TYPE P) and strict (TYPE I) applications.
///
//===----------------------------------------------------------------------===//

#ifndef LEVITY_LCALC_GEN_H
#define LEVITY_LCALC_GEN_H

#include "lcalc/Syntax.h"
#include "lcalc/TypeCheck.h"

#include <random>

namespace levity {
namespace lcalc {

/// Generates random well-typed closed terms.
class TermGen {
public:
  struct Options {
    unsigned MaxDepth = 5;     ///< Recursion budget.
    bool AllowError = true;    ///< Permit `error` subterms (⊥ outcomes).
    bool AllowRepPoly = true;  ///< Permit Λr/ρ-application forms.
    bool AllowData = true;     ///< Permit n-ary constructors/cases over
                               ///< the generator's own data type.
  };

  struct Generated {
    const Expr *E;
    const Type *Ty;
  };

  TermGen(LContext &Ctx, uint64_t Seed, Options Opts)
      : Ctx(Ctx), TC(Ctx), Rng(Seed), Opts(Opts) {
    if (Opts.AllowData)
      initGenData();
  }
  TermGen(LContext &Ctx, uint64_t Seed) : TermGen(Ctx, Seed, Options()) {}

  /// Generates one closed, well-typed expression and its type.
  Generated generate();

private:
  unsigned pick(unsigned Bound) {
    return std::uniform_int_distribution<unsigned>(0, Bound - 1)(Rng);
  }
  bool coin(double P = 0.5) {
    return std::uniform_real_distribution<double>(0, 1)(Rng) < P;
  }

  /// A type whose kind under the current environment is concrete.
  const Type *genMonoType(unsigned Depth);
  /// Any target type (may be a forall at shallow depth).
  const Type *genType(unsigned Depth);
  const Expr *genExpr(const Type *Target, unsigned Depth);

  /// Helpers producing particular shapes.
  const Expr *genErrorAt(const Type *Target, unsigned Depth);

  /// Declares this generator's three-constructor data type (a nullary
  /// tag, a strict Int# field, and a lazy Int field next to a strict
  /// Double# field) in the context, under a fresh name.
  void initGenData();
  /// A constructor of the generator's data type.
  const Expr *genConAt(unsigned Depth);
  /// A multi-alternative case over the generator's data type at
  /// \p Target.
  const Expr *genDataCase(const Type *Target, unsigned Depth);

  LContext &Ctx;
  TypeChecker TC;
  std::mt19937_64 Rng;
  Options Opts;
  TypeEnv Env;
  unsigned NextVar = 0;
  /// The generator's own data declaration (null when !AllowData).
  const LDataDecl *GenData = nullptr;

  struct TermBinding {
    Symbol Name;
    const Type *Ty;
  };
  std::vector<TermBinding> Scope;
};

} // namespace lcalc
} // namespace levity

#endif // LEVITY_LCALC_GEN_H
