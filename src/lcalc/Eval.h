//===- Eval.h - Small-step operational semantics for L (Fig 4) --*- C++ -*-===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 4: the type-directed small-step semantics of L. The choice
/// between lazy (call-by-name) and strict (call-by-value) application is
/// made by the *kind* of the argument type — S_APPLAZY/S_BETAPTR for
/// TYPE P versus S_APPSTRICT/S_APPSTRICT2/S_BETAUNBOXED for TYPE I —
/// which is exactly the paper's point that kinds are calling conventions.
/// Evaluation proceeds under Λ (S_TLAM, S_RLAM) to support type erasure.
///
//===----------------------------------------------------------------------===//

#ifndef LEVITY_LCALC_EVAL_H
#define LEVITY_LCALC_EVAL_H

#include "lcalc/Syntax.h"
#include "lcalc/TypeCheck.h"

#include <string_view>

namespace levity {
namespace lcalc {

/// Outcome of a single step attempt.
enum class StepStatus : uint8_t {
  Stepped, ///< Γ ⊢ e → e'.
  Value,   ///< e is a value; no rule applies.
  Bottom,  ///< S_ERROR fired: the machine aborts.
  Stuck    ///< No rule applies and e is not a value (ill-typed input).
};

struct StepResult {
  StepStatus Status;
  const Expr *Next = nullptr;    ///< e' when Status == Stepped.
  std::string_view Rule = "";    ///< Name of the rule that fired.
};

/// Outcome of running to completion.
struct RunResult {
  StepStatus Final;  ///< Value, Bottom, or Stuck (never Stepped unless
                     ///< fuel ran out, in which case Stepped means
                     ///< "still reducible").
  const Expr *Last;  ///< The last expression reached.
  size_t Steps;      ///< Number of steps taken.
};

/// Implements Γ ⊢ e → e' (Figure 4).
class Evaluator {
public:
  explicit Evaluator(LContext &Ctx) : Ctx(Ctx), TC(Ctx) {}

  /// Performs one step. \p Env supplies kinds for the type-directed
  /// application rules and is extended under Λ.
  StepResult step(TypeEnv &Env, const Expr *E);

  /// Steps repeatedly (at most \p MaxSteps) until a value, ⊥, or stuckness.
  RunResult run(TypeEnv &Env, const Expr *E, size_t MaxSteps = 100000);

  RunResult runClosed(const Expr *E, size_t MaxSteps = 100000) {
    TypeEnv Env;
    return run(Env, E, MaxSteps);
  }

private:
  LContext &Ctx;
  TypeChecker TC;
};

} // namespace lcalc
} // namespace levity

#endif // LEVITY_LCALC_EVAL_H
