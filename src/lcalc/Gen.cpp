//===- Gen.cpp - Random well-typed L terms --------------------------------===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "lcalc/Gen.h"
#include "lcalc/Subst.h"

using namespace levity;
using namespace levity::lcalc;

TermGen::Generated TermGen::generate() {
  const Type *Ty = genType(Opts.MaxDepth);
  const Expr *E = genExpr(Ty, Opts.MaxDepth);
  return {E, Ty};
}

void TermGen::initGenData() {
  // data GDataN = G0 | G1 Int# | G2 Int Double# — one nullary tag, one
  // strict unboxed field, and a lazy boxed field next to a strict
  // double, so generated terms exercise every S_CON/S_CASEk shape. The
  // name is freshened: several generators may share one context.
  LDataDecl *D = Ctx.declareData(Ctx.symbols().fresh("GData"));
  bool Ok = Ctx.addDataCon(D, Ctx.sym("G0"), {});
  const Type *G1Fields[] = {Ctx.intHashTy()};
  Ok = Ok && Ctx.addDataCon(D, Ctx.sym("G1"), G1Fields);
  const Type *G2Fields[] = {Ctx.intTy(), Ctx.doubleHashTy()};
  Ok = Ok && Ctx.addDataCon(D, Ctx.sym("G2"), G2Fields);
  assert(Ok && "generator data decl must be well-formed");
  (void)Ok;
  GenData = D;
}

const Expr *TermGen::genConAt(unsigned Depth) {
  unsigned Tag = pick(static_cast<unsigned>(GenData->numCons()));
  const LDataCon &Con = GenData->con(Tag);
  std::vector<const Expr *> Args;
  for (const Type *F : Con.Fields)
    Args.push_back(genExpr(F, Depth == 0 ? 0 : Depth - 1));
  return Ctx.conData(GenData, Tag, Args);
}

const Expr *TermGen::genDataCase(const Type *Target, unsigned Depth) {
  // case <GData scrutinee> of { G0 -> e ; G1[x] -> e ; G2[a, b] -> e }
  // with an optional default; when a default is present, a random
  // alternative is dropped so the default actually fires sometimes.
  const Expr *Scrut = genExpr(GenData->type(), Depth - 1);
  bool WithDefault = coin(0.4);
  unsigned Dropped =
      WithDefault ? pick(static_cast<unsigned>(GenData->numCons()))
                  : GenData->numCons();
  std::vector<LAlt> Alts;
  std::vector<std::vector<Symbol>> BinderStore;
  for (unsigned Tag = 0; Tag != GenData->numCons(); ++Tag) {
    if (Tag == Dropped)
      continue;
    const LDataCon &Con = GenData->con(Tag);
    LAlt A;
    A.Pat = LAlt::PatKind::Con;
    A.Tag = Tag;
    BinderStore.emplace_back();
    for (const Type *F : Con.Fields) {
      Symbol X = Ctx.symbols().fresh("g");
      BinderStore.back().push_back(X);
      Env.pushTerm(X, F);
      Scope.push_back({X, F});
    }
    A.Binders = std::span<const Symbol>(BinderStore.back().data(),
                                        BinderStore.back().size());
    A.Rhs = genExpr(Target, Depth - 1);
    for (size_t I = 0; I != Con.Fields.size(); ++I) {
      Scope.pop_back();
      Env.popTerm();
    }
    Alts.push_back(A);
  }
  const Expr *Default =
      WithDefault ? genExpr(Target, Depth - 1) : nullptr;
  return Ctx.caseData(Scrut, GenData, Alts, Default);
}

const Type *TermGen::genMonoType(unsigned Depth) {
  // Prefer base types; occasionally the generator's data type or an
  // arrow (both have kind TYPE P).
  unsigned Choice = pick(Depth == 0 ? 4 : 6);
  switch (Choice) {
  case 0:
    return Ctx.intTy();
  case 1:
    return Ctx.intHashTy();
  case 2:
    return Ctx.doubleHashTy();
  case 3:
    if (GenData)
      return GenData->type();
    return Ctx.intTy();
  default:
    return Ctx.arrowTy(genMonoType(Depth - 1), genMonoType(Depth - 1));
  }
}

const Type *TermGen::genType(unsigned Depth) {
  if (Depth == 0)
    return genMonoType(0);
  unsigned Choice = pick(6);
  if (Choice == 4) {
    // ∀α:κ. τ over a concrete kind (so instantiation sites stay easy).
    Symbol A = Ctx.symbols().fresh("a");
    static const LKind Kinds[] = {LKind::typePtr(), LKind::typeInt(),
                                  LKind::typeDbl()};
    LKind K = Kinds[pick(3)];
    Env.pushTypeVar(A, K);
    const Type *Body = genType(Depth - 1);
    Env.popTypeVar();
    return Ctx.forAllTy(A, K, Body);
  }
  if (Choice == 5 && Opts.AllowRepPoly) {
    // ∀r. τ — τ must not have kind TYPE r (T_ALLREP); generating a body
    // that doesn't *use* r in its own kind is easiest: a mono type or an
    // arrow whose pieces may use r under further binders. We keep it
    // simple: ∀r. ∀α:TYPE r. ... → α is generated via error-style shapes
    // below; here we produce ∀r. τ with τ of kind TYPE P.
    Symbol R = Ctx.symbols().fresh("r");
    Env.pushRepVar(R);
    Symbol A = Ctx.symbols().fresh("a");
    Env.pushTypeVar(A, LKind::typeVar(R));
    // Body is an arrow mentioning α (kind TYPE P overall).
    const Type *Body = Ctx.arrowTy(Ctx.varTy(A), Ctx.varTy(A));
    Env.popTypeVar();
    Env.popRepVar();
    return Ctx.forAllRepTy(R, Ctx.forAllTy(A, LKind::typeVar(R), Body));
  }
  return genMonoType(Depth);
}

const Expr *TermGen::genErrorAt(const Type *Target, unsigned Depth) {
  // error @@ρ @τ n   where Γ ⊢ τ : TYPE ρ.
  Result<LKind> K = TC.kindOf(Env, Target);
  assert(K && "generated target type must be well-kinded");
  const Expr *E = Ctx.repApp(Ctx.error(), K->rep());
  E = Ctx.tyApp(E, Target);
  return Ctx.app(E, genExpr(Ctx.intTy(), Depth > 0 ? Depth - 1 : 0));
}

const Expr *TermGen::genExpr(const Type *Target, unsigned Depth) {
  // Collect variables usable at this exact type.
  std::vector<const TermBinding *> Usable;
  for (const TermBinding &B : Scope)
    if (typeEqual(B.Ty, Target))
      Usable.push_back(&B);

  // Base cases when out of budget.
  if (Depth == 0) {
    if (!Usable.empty() && coin(0.7))
      return Ctx.var(Usable[pick(Usable.size())]->Name);
    switch (Target->kind()) {
    case Type::TypeKind::IntHash:
      return Ctx.intLit(int64_t(pick(100)));
    case Type::TypeKind::DoubleHash:
      return Ctx.doubleLit(double(pick(100)) / 2.0);
    case Type::TypeKind::Int:
      return Ctx.con(Ctx.intLit(int64_t(pick(100))));
    case Type::TypeKind::Data:
      return genConAt(0);
    case Type::TypeKind::Arrow: {
      const auto *A = cast<ArrowType>(Target);
      // E_LAM needs a concrete binder kind; when the parameter is
      // levity-polymorphic only `error` can inhabit the arrow.
      Result<LKind> PK = TC.kindOf(Env, A->param());
      if (!PK || !PK->isConcrete())
        return genErrorAt(Target, 0);
      Symbol X = Ctx.symbols().fresh("x");
      Env.pushTerm(X, A->param());
      Scope.push_back({X, A->param()});
      const Expr *Body = genExpr(A->result(), 0);
      Scope.pop_back();
      Env.popTerm();
      return Ctx.lam(X, A->param(), Body);
    }
    case Type::TypeKind::ForAll: {
      const auto *F = cast<ForAllType>(Target);
      Env.pushTypeVar(F->var(), F->varKind());
      const Expr *Body = genExpr(F->body(), 0);
      Env.popTypeVar();
      return Ctx.tyLam(F->var(), F->varKind(), Body);
    }
    case Type::TypeKind::ForAllRep: {
      const auto *F = cast<ForAllRepType>(Target);
      Env.pushRepVar(F->repVar());
      const Expr *Body = genExpr(F->body(), 0);
      Env.popRepVar();
      return Ctx.repLam(F->repVar(), Body);
    }
    case Type::TypeKind::Var:
      // Only `error` can produce a variable type out of thin air.
      return genErrorAt(Target, 0);
    }
  }

  // Structure-directed introductions.
  switch (Target->kind()) {
  case Type::TypeKind::Data:
    // Constructor introduction is the common case; fall through to the
    // elimination forms otherwise (an application or case can also
    // produce a data value).
    if (coin(0.6))
      return genConAt(Depth);
    break;
  case Type::TypeKind::Arrow: {
    const auto *A = cast<ArrowType>(Target);
    // An arrow can also come from an application or a redex, but lambda
    // introduction is the common case.
    Result<LKind> PK = TC.kindOf(Env, A->param());
    if (PK && PK->isConcrete() && coin(0.75)) {
      Symbol X = Ctx.symbols().fresh("x");
      Env.pushTerm(X, A->param());
      Scope.push_back({X, A->param()});
      const Expr *Body = genExpr(A->result(), Depth - 1);
      Scope.pop_back();
      Env.popTerm();
      return Ctx.lam(X, A->param(), Body);
    }
    break;
  }
  case Type::TypeKind::ForAll: {
    const auto *F = cast<ForAllType>(Target);
    Env.pushTypeVar(F->var(), F->varKind());
    const Expr *Body = genExpr(F->body(), Depth - 1);
    Env.popTypeVar();
    return Ctx.tyLam(F->var(), F->varKind(), Body);
  }
  case Type::TypeKind::ForAllRep: {
    const auto *F = cast<ForAllRepType>(Target);
    Env.pushRepVar(F->repVar());
    const Expr *Body = genExpr(F->body(), Depth - 1);
    Env.popRepVar();
    return Ctx.repLam(F->repVar(), Body);
  }
  default:
    break;
  }

  // Elimination/wrapper forms for any target type.
  enum {
    UseVar,
    UseLit,
    UseApp,
    UseCase,
    UseIf0,
    UsePrim,
    UseFix,
    UseTyRedex,
    UseRepRedex,
    UseError,
    NumForms
  };
  for (unsigned Attempt = 0; Attempt != 4; ++Attempt) {
    switch (pick(NumForms)) {
    case UseVar:
      if (!Usable.empty())
        return Ctx.var(Usable[pick(Usable.size())]->Name);
      break;
    case UseLit:
      if (isa<IntHashType>(Target))
        return Ctx.intLit(int64_t(pick(100)));
      if (isa<DoubleHashType>(Target))
        return Ctx.doubleLit(double(pick(100)) / 2.0);
      if (isa<IntType>(Target))
        return Ctx.con(genExpr(Ctx.intHashTy(), Depth - 1));
      break;
    case UseApp: {
      // f a at Target, with a : σ of concrete kind (E_APP premise).
      const Type *Sigma = genMonoType(Depth > 2 ? 1 : 0);
      const Expr *Fn =
          genExpr(Ctx.arrowTy(Sigma, Target), Depth - 1);
      const Expr *Arg = genExpr(Sigma, Depth - 1);
      return Ctx.app(Fn, Arg);
    }
    case UseCase: {
      // One of the three case shapes, all at Target:
      //   * the paper's one-armed I# unboxing case,
      //   * a multi-way Int# literal case with a default,
      //   * a tag-dispatch case over the generator's data type.
      unsigned Shape = pick(GenData ? 3 : 2);
      if (Shape == 0) {
        const Expr *Scrut = genExpr(Ctx.intTy(), Depth - 1);
        Symbol X = Ctx.symbols().fresh("x");
        Env.pushTerm(X, Ctx.intHashTy());
        Scope.push_back({X, Ctx.intHashTy()});
        const Expr *Body = genExpr(Target, Depth - 1);
        Scope.pop_back();
        Env.popTerm();
        return Ctx.caseOf(Scrut, X, Body);
      }
      if (Shape == 1) {
        // case <Int#> of { n1 -> e ; [n2 -> e ;] _ -> e }.
        const Expr *Scrut = genExpr(Ctx.intHashTy(), Depth - 1);
        std::vector<LAlt> Alts;
        unsigned NumLits = 1 + pick(2);
        for (unsigned I = 0; I != NumLits; ++I) {
          LAlt A;
          A.Pat = LAlt::PatKind::Int;
          A.IntVal = int64_t(pick(4));
          A.Rhs = genExpr(Target, Depth - 1);
          Alts.push_back(A);
        }
        return Ctx.caseData(Scrut, nullptr, Alts,
                            genExpr(Target, Depth - 1));
      }
      return genDataCase(Target, Depth);
    }
    case UseIf0: {
      // if0 e1 then e2 else e3 at Target, with an Int# scrutinee —
      // exercises the S_IF0* rules and the machine's branch frame.
      const Expr *Scrut = genExpr(Ctx.intHashTy(), Depth - 1);
      const Expr *Then = genExpr(Target, Depth - 1);
      const Expr *Else = genExpr(Target, Depth - 1);
      return Ctx.if0(Scrut, Then, Else);
    }
    case UsePrim: {
      // An arithmetic or comparison primop producing the target's
      // unboxed sort (Int# via any Int# op or a Double# comparison;
      // Double# via double arithmetic). Quot/Rem are excluded: a random
      // zero divisor would make well-typed terms stuck.
      if (isa<IntHashType>(Target)) {
        if (coin()) {
          static const LPrim IntOps[] = {LPrim::Add, LPrim::Sub,
                                         LPrim::Mul, LPrim::Lt,
                                         LPrim::Le,  LPrim::Gt,
                                         LPrim::Ge,  LPrim::Eq,
                                         LPrim::Ne};
          return Ctx.prim(IntOps[pick(9)],
                          genExpr(Ctx.intHashTy(), Depth - 1),
                          genExpr(Ctx.intHashTy(), Depth - 1));
        }
        static const LPrim DblCmps[] = {LPrim::DLt, LPrim::DLe,
                                        LPrim::DGt, LPrim::DGe,
                                        LPrim::DEq, LPrim::DNe};
        return Ctx.prim(DblCmps[pick(6)],
                        genExpr(Ctx.doubleHashTy(), Depth - 1),
                        genExpr(Ctx.doubleHashTy(), Depth - 1));
      }
      if (isa<DoubleHashType>(Target)) {
        static const LPrim DblOps[] = {LPrim::DAdd, LPrim::DSub,
                                       LPrim::DMul};
        return Ctx.prim(DblOps[pick(3)],
                        genExpr(Ctx.doubleHashTy(), Depth - 1),
                        genExpr(Ctx.doubleHashTy(), Depth - 1));
      }
      break;
    }
    case UseFix: {
      // fix x:τ. e at a lifted target (E_FIX needs TYPE P). The binder
      // is kept out of Scope so the generated body never references it
      // and the term still terminates after one S_FIX unfold — the
      // metatheory suites assume generated terms converge. Typing,
      // compilation (C_FIX), and the machine's RECLET knot are all
      // still exercised.
      Result<LKind> TK = TC.kindOf(Env, Target);
      if (!TK || !(*TK == LKind::typePtr()) || !coin(0.5))
        break;
      Symbol X = Ctx.symbols().fresh("rec");
      Env.pushTerm(X, Target);
      const Expr *Body = genExpr(Target, Depth - 1);
      Env.popTerm();
      return Ctx.fix(X, Target, Body);
    }
    case UseTyRedex: {
      // (Λα:κ. e) σ with α unused in Target, exercising S_TBETA.
      Symbol A = Ctx.symbols().fresh("a");
      static const LKind Kinds[] = {LKind::typePtr(), LKind::typeInt(),
                                    LKind::typeDbl()};
      LKind K = Kinds[pick(3)];
      Env.pushTypeVar(A, K);
      const Expr *Body = genExpr(Target, Depth - 1);
      Env.popTypeVar();
      const Type *Sigma = K == LKind::typePtr()
                              ? Ctx.intTy()
                              : (K == LKind::typeInt()
                                     ? Ctx.intHashTy()
                                     : Ctx.doubleHashTy());
      return Ctx.tyApp(Ctx.tyLam(A, K, Body), Sigma);
    }
    case UseRepRedex: {
      if (!Opts.AllowRepPoly)
        break;
      // (Λr. e) ρ with r unused in Target, exercising S_RBETA.
      Symbol R = Ctx.symbols().fresh("r");
      Env.pushRepVar(R);
      const Expr *Body = genExpr(Target, Depth - 1);
      Env.popRepVar();
      static const RuntimeRep Reps[] = {RuntimeRep::pointer(),
                                        RuntimeRep::integer(),
                                        RuntimeRep::dbl()};
      return Ctx.repApp(Ctx.repLam(R, Body), Reps[pick(3)]);
    }
    case UseError:
      if (Opts.AllowError && coin(0.3))
        return genErrorAt(Target, Depth - 1);
      break;
    }
  }

  // Fall back to the depth-0 base case.
  return genExpr(Target, 0);
}
