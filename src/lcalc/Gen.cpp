//===- Gen.cpp - Random well-typed L terms --------------------------------===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "lcalc/Gen.h"
#include "lcalc/Subst.h"

using namespace levity;
using namespace levity::lcalc;

TermGen::Generated TermGen::generate() {
  const Type *Ty = genType(Opts.MaxDepth);
  const Expr *E = genExpr(Ty, Opts.MaxDepth);
  return {E, Ty};
}

const Type *TermGen::genMonoType(unsigned Depth) {
  // Prefer base types; occasionally an arrow (arrows have kind TYPE P).
  unsigned Choice = pick(Depth == 0 ? 3 : 5);
  switch (Choice) {
  case 0:
    return Ctx.intTy();
  case 1:
    return Ctx.intHashTy();
  case 2:
    return Ctx.doubleHashTy();
  default:
    return Ctx.arrowTy(genMonoType(Depth - 1), genMonoType(Depth - 1));
  }
}

const Type *TermGen::genType(unsigned Depth) {
  if (Depth == 0)
    return genMonoType(0);
  unsigned Choice = pick(6);
  if (Choice == 4) {
    // ∀α:κ. τ over a concrete kind (so instantiation sites stay easy).
    Symbol A = Ctx.symbols().fresh("a");
    static const LKind Kinds[] = {LKind::typePtr(), LKind::typeInt(),
                                  LKind::typeDbl()};
    LKind K = Kinds[pick(3)];
    Env.pushTypeVar(A, K);
    const Type *Body = genType(Depth - 1);
    Env.popTypeVar();
    return Ctx.forAllTy(A, K, Body);
  }
  if (Choice == 5 && Opts.AllowRepPoly) {
    // ∀r. τ — τ must not have kind TYPE r (T_ALLREP); generating a body
    // that doesn't *use* r in its own kind is easiest: a mono type or an
    // arrow whose pieces may use r under further binders. We keep it
    // simple: ∀r. ∀α:TYPE r. ... → α is generated via error-style shapes
    // below; here we produce ∀r. τ with τ of kind TYPE P.
    Symbol R = Ctx.symbols().fresh("r");
    Env.pushRepVar(R);
    Symbol A = Ctx.symbols().fresh("a");
    Env.pushTypeVar(A, LKind::typeVar(R));
    // Body is an arrow mentioning α (kind TYPE P overall).
    const Type *Body = Ctx.arrowTy(Ctx.varTy(A), Ctx.varTy(A));
    Env.popTypeVar();
    Env.popRepVar();
    return Ctx.forAllRepTy(R, Ctx.forAllTy(A, LKind::typeVar(R), Body));
  }
  return genMonoType(Depth);
}

const Expr *TermGen::genErrorAt(const Type *Target, unsigned Depth) {
  // error @@ρ @τ n   where Γ ⊢ τ : TYPE ρ.
  Result<LKind> K = TC.kindOf(Env, Target);
  assert(K && "generated target type must be well-kinded");
  const Expr *E = Ctx.repApp(Ctx.error(), K->rep());
  E = Ctx.tyApp(E, Target);
  return Ctx.app(E, genExpr(Ctx.intTy(), Depth > 0 ? Depth - 1 : 0));
}

const Expr *TermGen::genExpr(const Type *Target, unsigned Depth) {
  // Collect variables usable at this exact type.
  std::vector<const TermBinding *> Usable;
  for (const TermBinding &B : Scope)
    if (typeEqual(B.Ty, Target))
      Usable.push_back(&B);

  // Base cases when out of budget.
  if (Depth == 0) {
    if (!Usable.empty() && coin(0.7))
      return Ctx.var(Usable[pick(Usable.size())]->Name);
    switch (Target->kind()) {
    case Type::TypeKind::IntHash:
      return Ctx.intLit(int64_t(pick(100)));
    case Type::TypeKind::DoubleHash:
      return Ctx.doubleLit(double(pick(100)) / 2.0);
    case Type::TypeKind::Int:
      return Ctx.con(Ctx.intLit(int64_t(pick(100))));
    case Type::TypeKind::Arrow: {
      const auto *A = cast<ArrowType>(Target);
      // E_LAM needs a concrete binder kind; when the parameter is
      // levity-polymorphic only `error` can inhabit the arrow.
      Result<LKind> PK = TC.kindOf(Env, A->param());
      if (!PK || !PK->isConcrete())
        return genErrorAt(Target, 0);
      Symbol X = Ctx.symbols().fresh("x");
      Env.pushTerm(X, A->param());
      Scope.push_back({X, A->param()});
      const Expr *Body = genExpr(A->result(), 0);
      Scope.pop_back();
      Env.popTerm();
      return Ctx.lam(X, A->param(), Body);
    }
    case Type::TypeKind::ForAll: {
      const auto *F = cast<ForAllType>(Target);
      Env.pushTypeVar(F->var(), F->varKind());
      const Expr *Body = genExpr(F->body(), 0);
      Env.popTypeVar();
      return Ctx.tyLam(F->var(), F->varKind(), Body);
    }
    case Type::TypeKind::ForAllRep: {
      const auto *F = cast<ForAllRepType>(Target);
      Env.pushRepVar(F->repVar());
      const Expr *Body = genExpr(F->body(), 0);
      Env.popRepVar();
      return Ctx.repLam(F->repVar(), Body);
    }
    case Type::TypeKind::Var:
      // Only `error` can produce a variable type out of thin air.
      return genErrorAt(Target, 0);
    }
  }

  // Structure-directed introductions.
  switch (Target->kind()) {
  case Type::TypeKind::Arrow: {
    const auto *A = cast<ArrowType>(Target);
    // An arrow can also come from an application or a redex, but lambda
    // introduction is the common case.
    Result<LKind> PK = TC.kindOf(Env, A->param());
    if (PK && PK->isConcrete() && coin(0.75)) {
      Symbol X = Ctx.symbols().fresh("x");
      Env.pushTerm(X, A->param());
      Scope.push_back({X, A->param()});
      const Expr *Body = genExpr(A->result(), Depth - 1);
      Scope.pop_back();
      Env.popTerm();
      return Ctx.lam(X, A->param(), Body);
    }
    break;
  }
  case Type::TypeKind::ForAll: {
    const auto *F = cast<ForAllType>(Target);
    Env.pushTypeVar(F->var(), F->varKind());
    const Expr *Body = genExpr(F->body(), Depth - 1);
    Env.popTypeVar();
    return Ctx.tyLam(F->var(), F->varKind(), Body);
  }
  case Type::TypeKind::ForAllRep: {
    const auto *F = cast<ForAllRepType>(Target);
    Env.pushRepVar(F->repVar());
    const Expr *Body = genExpr(F->body(), Depth - 1);
    Env.popRepVar();
    return Ctx.repLam(F->repVar(), Body);
  }
  default:
    break;
  }

  // Elimination/wrapper forms for any target type.
  enum {
    UseVar,
    UseLit,
    UseApp,
    UseCase,
    UseIf0,
    UsePrim,
    UseFix,
    UseTyRedex,
    UseRepRedex,
    UseError,
    NumForms
  };
  for (unsigned Attempt = 0; Attempt != 4; ++Attempt) {
    switch (pick(NumForms)) {
    case UseVar:
      if (!Usable.empty())
        return Ctx.var(Usable[pick(Usable.size())]->Name);
      break;
    case UseLit:
      if (isa<IntHashType>(Target))
        return Ctx.intLit(int64_t(pick(100)));
      if (isa<DoubleHashType>(Target))
        return Ctx.doubleLit(double(pick(100)) / 2.0);
      if (isa<IntType>(Target))
        return Ctx.con(genExpr(Ctx.intHashTy(), Depth - 1));
      break;
    case UseApp: {
      // f a at Target, with a : σ of concrete kind (E_APP premise).
      const Type *Sigma = genMonoType(Depth > 2 ? 1 : 0);
      const Expr *Fn =
          genExpr(Ctx.arrowTy(Sigma, Target), Depth - 1);
      const Expr *Arg = genExpr(Sigma, Depth - 1);
      return Ctx.app(Fn, Arg);
    }
    case UseCase: {
      // case e1 of I#[x] → e2, scrutinee : Int, body : Target.
      const Expr *Scrut = genExpr(Ctx.intTy(), Depth - 1);
      Symbol X = Ctx.symbols().fresh("x");
      Env.pushTerm(X, Ctx.intHashTy());
      Scope.push_back({X, Ctx.intHashTy()});
      const Expr *Body = genExpr(Target, Depth - 1);
      Scope.pop_back();
      Env.popTerm();
      return Ctx.caseOf(Scrut, X, Body);
    }
    case UseIf0: {
      // if0 e1 then e2 else e3 at Target, with an Int# scrutinee —
      // exercises the S_IF0* rules and the machine's branch frame.
      const Expr *Scrut = genExpr(Ctx.intHashTy(), Depth - 1);
      const Expr *Then = genExpr(Target, Depth - 1);
      const Expr *Else = genExpr(Target, Depth - 1);
      return Ctx.if0(Scrut, Then, Else);
    }
    case UsePrim: {
      // An arithmetic or comparison primop producing the target's
      // unboxed sort (Int# via any Int# op or a Double# comparison;
      // Double# via double arithmetic). Quot/Rem are excluded: a random
      // zero divisor would make well-typed terms stuck.
      if (isa<IntHashType>(Target)) {
        if (coin()) {
          static const LPrim IntOps[] = {LPrim::Add, LPrim::Sub,
                                         LPrim::Mul, LPrim::Lt,
                                         LPrim::Le,  LPrim::Gt,
                                         LPrim::Ge,  LPrim::Eq,
                                         LPrim::Ne};
          return Ctx.prim(IntOps[pick(9)],
                          genExpr(Ctx.intHashTy(), Depth - 1),
                          genExpr(Ctx.intHashTy(), Depth - 1));
        }
        static const LPrim DblCmps[] = {LPrim::DLt, LPrim::DLe,
                                        LPrim::DGt, LPrim::DGe,
                                        LPrim::DEq, LPrim::DNe};
        return Ctx.prim(DblCmps[pick(6)],
                        genExpr(Ctx.doubleHashTy(), Depth - 1),
                        genExpr(Ctx.doubleHashTy(), Depth - 1));
      }
      if (isa<DoubleHashType>(Target)) {
        static const LPrim DblOps[] = {LPrim::DAdd, LPrim::DSub,
                                       LPrim::DMul};
        return Ctx.prim(DblOps[pick(3)],
                        genExpr(Ctx.doubleHashTy(), Depth - 1),
                        genExpr(Ctx.doubleHashTy(), Depth - 1));
      }
      break;
    }
    case UseFix: {
      // fix x:τ. e at a lifted target (E_FIX needs TYPE P). The binder
      // is kept out of Scope so the generated body never references it
      // and the term still terminates after one S_FIX unfold — the
      // metatheory suites assume generated terms converge. Typing,
      // compilation (C_FIX), and the machine's RECLET knot are all
      // still exercised.
      Result<LKind> TK = TC.kindOf(Env, Target);
      if (!TK || !(*TK == LKind::typePtr()) || !coin(0.5))
        break;
      Symbol X = Ctx.symbols().fresh("rec");
      Env.pushTerm(X, Target);
      const Expr *Body = genExpr(Target, Depth - 1);
      Env.popTerm();
      return Ctx.fix(X, Target, Body);
    }
    case UseTyRedex: {
      // (Λα:κ. e) σ with α unused in Target, exercising S_TBETA.
      Symbol A = Ctx.symbols().fresh("a");
      static const LKind Kinds[] = {LKind::typePtr(), LKind::typeInt(),
                                    LKind::typeDbl()};
      LKind K = Kinds[pick(3)];
      Env.pushTypeVar(A, K);
      const Expr *Body = genExpr(Target, Depth - 1);
      Env.popTypeVar();
      const Type *Sigma = K == LKind::typePtr()
                              ? Ctx.intTy()
                              : (K == LKind::typeInt()
                                     ? Ctx.intHashTy()
                                     : Ctx.doubleHashTy());
      return Ctx.tyApp(Ctx.tyLam(A, K, Body), Sigma);
    }
    case UseRepRedex: {
      if (!Opts.AllowRepPoly)
        break;
      // (Λr. e) ρ with r unused in Target, exercising S_RBETA.
      Symbol R = Ctx.symbols().fresh("r");
      Env.pushRepVar(R);
      const Expr *Body = genExpr(Target, Depth - 1);
      Env.popRepVar();
      static const RuntimeRep Reps[] = {RuntimeRep::pointer(),
                                        RuntimeRep::integer(),
                                        RuntimeRep::dbl()};
      return Ctx.repApp(Ctx.repLam(R, Body), Reps[pick(3)]);
    }
    case UseError:
      if (Opts.AllowError && coin(0.3))
        return genErrorAt(Target, Depth - 1);
      break;
    }
  }

  // Fall back to the depth-0 base case.
  return genExpr(Target, 0);
}
