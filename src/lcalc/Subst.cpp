//===- Subst.cpp - Capture-avoiding substitution for L --------------------===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "lcalc/Subst.h"

using namespace levity;
using namespace levity::lcalc;

//===----------------------------------------------------------------------===//
// Free variables
//===----------------------------------------------------------------------===//

void lcalc::freeTermVars(const Expr *E, SymbolSet &Out) {
  switch (E->kind()) {
  case Expr::ExprKind::Var:
    Out.insert(cast<VarExpr>(E)->name());
    return;
  case Expr::ExprKind::App: {
    const auto *A = cast<AppExpr>(E);
    freeTermVars(A->fn(), Out);
    freeTermVars(A->arg(), Out);
    return;
  }
  case Expr::ExprKind::Lam: {
    const auto *L = cast<LamExpr>(E);
    SymbolSet Body;
    freeTermVars(L->body(), Body);
    Body.erase(L->var());
    Out.insert(Body.begin(), Body.end());
    return;
  }
  case Expr::ExprKind::TyLam:
    freeTermVars(cast<TyLamExpr>(E)->body(), Out);
    return;
  case Expr::ExprKind::TyApp:
    freeTermVars(cast<TyAppExpr>(E)->fn(), Out);
    return;
  case Expr::ExprKind::RepLam:
    freeTermVars(cast<RepLamExpr>(E)->body(), Out);
    return;
  case Expr::ExprKind::RepApp:
    freeTermVars(cast<RepAppExpr>(E)->fn(), Out);
    return;
  case Expr::ExprKind::Con:
    for (const Expr *A : cast<ConExpr>(E)->args())
      freeTermVars(A, Out);
    return;
  case Expr::ExprKind::Case: {
    const auto *C = cast<CaseExpr>(E);
    freeTermVars(C->scrut(), Out);
    for (const LAlt &A : C->alts()) {
      SymbolSet Body;
      freeTermVars(A.Rhs, Body);
      for (Symbol B : A.Binders)
        Body.erase(B);
      Out.insert(Body.begin(), Body.end());
    }
    if (C->defaultRhs())
      freeTermVars(C->defaultRhs(), Out);
    return;
  }
  case Expr::ExprKind::Prim: {
    const auto *P = cast<PrimExpr>(E);
    freeTermVars(P->lhs(), Out);
    freeTermVars(P->rhs(), Out);
    return;
  }
  case Expr::ExprKind::If0: {
    const auto *I = cast<If0Expr>(E);
    freeTermVars(I->scrut(), Out);
    freeTermVars(I->thenBranch(), Out);
    freeTermVars(I->elseBranch(), Out);
    return;
  }
  case Expr::ExprKind::Fix: {
    const auto *F = cast<FixExpr>(E);
    SymbolSet Body;
    freeTermVars(F->body(), Body);
    Body.erase(F->var());
    Out.insert(Body.begin(), Body.end());
    return;
  }
  case Expr::ExprKind::IntLit:
  case Expr::ExprKind::DoubleLit:
  case Expr::ExprKind::Error:
    return;
  }
}

void lcalc::freeTypeVars(const Type *T, SymbolSet &Out) {
  switch (T->kind()) {
  case Type::TypeKind::Int:
  case Type::TypeKind::IntHash:
  case Type::TypeKind::DoubleHash:
  case Type::TypeKind::Data: // Decl field types are closed.
    return;
  case Type::TypeKind::Var:
    Out.insert(cast<VarType>(T)->name());
    return;
  case Type::TypeKind::Arrow: {
    const auto *A = cast<ArrowType>(T);
    freeTypeVars(A->param(), Out);
    freeTypeVars(A->result(), Out);
    return;
  }
  case Type::TypeKind::ForAll: {
    const auto *F = cast<ForAllType>(T);
    SymbolSet Body;
    freeTypeVars(F->body(), Body);
    Body.erase(F->var());
    Out.insert(Body.begin(), Body.end());
    return;
  }
  case Type::TypeKind::ForAllRep:
    freeTypeVars(cast<ForAllRepType>(T)->body(), Out);
    return;
  }
}

void lcalc::freeTypeVars(const Expr *E, SymbolSet &Out) {
  switch (E->kind()) {
  case Expr::ExprKind::Var:
  case Expr::ExprKind::IntLit:
  case Expr::ExprKind::DoubleLit:
  case Expr::ExprKind::Error:
    return;
  case Expr::ExprKind::App: {
    const auto *A = cast<AppExpr>(E);
    freeTypeVars(A->fn(), Out);
    freeTypeVars(A->arg(), Out);
    return;
  }
  case Expr::ExprKind::Lam: {
    const auto *L = cast<LamExpr>(E);
    freeTypeVars(L->varType(), Out);
    freeTypeVars(L->body(), Out);
    return;
  }
  case Expr::ExprKind::TyLam: {
    const auto *L = cast<TyLamExpr>(E);
    SymbolSet Body;
    freeTypeVars(L->body(), Body);
    Body.erase(L->var());
    Out.insert(Body.begin(), Body.end());
    return;
  }
  case Expr::ExprKind::TyApp: {
    const auto *A = cast<TyAppExpr>(E);
    freeTypeVars(A->fn(), Out);
    freeTypeVars(A->tyArg(), Out);
    return;
  }
  case Expr::ExprKind::RepLam:
    freeTypeVars(cast<RepLamExpr>(E)->body(), Out);
    return;
  case Expr::ExprKind::RepApp:
    freeTypeVars(cast<RepAppExpr>(E)->fn(), Out);
    return;
  case Expr::ExprKind::Con:
    for (const Expr *A : cast<ConExpr>(E)->args())
      freeTypeVars(A, Out);
    return;
  case Expr::ExprKind::Case: {
    const auto *C = cast<CaseExpr>(E);
    freeTypeVars(C->scrut(), Out);
    for (const LAlt &A : C->alts())
      freeTypeVars(A.Rhs, Out);
    if (C->defaultRhs())
      freeTypeVars(C->defaultRhs(), Out);
    return;
  }
  case Expr::ExprKind::Prim: {
    const auto *P = cast<PrimExpr>(E);
    freeTypeVars(P->lhs(), Out);
    freeTypeVars(P->rhs(), Out);
    return;
  }
  case Expr::ExprKind::If0: {
    const auto *I = cast<If0Expr>(E);
    freeTypeVars(I->scrut(), Out);
    freeTypeVars(I->thenBranch(), Out);
    freeTypeVars(I->elseBranch(), Out);
    return;
  }
  case Expr::ExprKind::Fix: {
    const auto *F = cast<FixExpr>(E);
    freeTypeVars(F->varType(), Out);
    freeTypeVars(F->body(), Out);
    return;
  }
  }
}

namespace {

void freeRepVarsOfRep(RuntimeRep R, SymbolSet &Out) {
  if (R.isVar())
    Out.insert(R.varName());
}

} // namespace

void lcalc::freeRepVars(const Type *T, SymbolSet &Out) {
  switch (T->kind()) {
  case Type::TypeKind::Int:
  case Type::TypeKind::IntHash:
  case Type::TypeKind::DoubleHash:
  case Type::TypeKind::Var:
  case Type::TypeKind::Data:
    return;
  case Type::TypeKind::Arrow: {
    const auto *A = cast<ArrowType>(T);
    freeRepVars(A->param(), Out);
    freeRepVars(A->result(), Out);
    return;
  }
  case Type::TypeKind::ForAll: {
    const auto *F = cast<ForAllType>(T);
    freeRepVarsOfRep(F->varKind().rep(), Out);
    freeRepVars(F->body(), Out);
    return;
  }
  case Type::TypeKind::ForAllRep: {
    const auto *F = cast<ForAllRepType>(T);
    SymbolSet Body;
    freeRepVars(F->body(), Body);
    Body.erase(F->repVar());
    Out.insert(Body.begin(), Body.end());
    return;
  }
  }
}

void lcalc::freeRepVars(const Expr *E, SymbolSet &Out) {
  switch (E->kind()) {
  case Expr::ExprKind::Var:
  case Expr::ExprKind::IntLit:
  case Expr::ExprKind::DoubleLit:
  case Expr::ExprKind::Error:
    return;
  case Expr::ExprKind::App: {
    const auto *A = cast<AppExpr>(E);
    freeRepVars(A->fn(), Out);
    freeRepVars(A->arg(), Out);
    return;
  }
  case Expr::ExprKind::Lam: {
    const auto *L = cast<LamExpr>(E);
    freeRepVars(L->varType(), Out);
    freeRepVars(L->body(), Out);
    return;
  }
  case Expr::ExprKind::TyLam: {
    const auto *L = cast<TyLamExpr>(E);
    freeRepVarsOfRep(L->varKind().rep(), Out);
    freeRepVars(L->body(), Out);
    return;
  }
  case Expr::ExprKind::TyApp: {
    const auto *A = cast<TyAppExpr>(E);
    freeRepVars(A->fn(), Out);
    freeRepVars(A->tyArg(), Out);
    return;
  }
  case Expr::ExprKind::RepLam: {
    const auto *L = cast<RepLamExpr>(E);
    SymbolSet Body;
    freeRepVars(L->body(), Body);
    Body.erase(L->repVar());
    Out.insert(Body.begin(), Body.end());
    return;
  }
  case Expr::ExprKind::RepApp: {
    const auto *A = cast<RepAppExpr>(E);
    freeRepVars(A->fn(), Out);
    freeRepVarsOfRep(A->repArg(), Out);
    return;
  }
  case Expr::ExprKind::Con:
    for (const Expr *A : cast<ConExpr>(E)->args())
      freeRepVars(A, Out);
    return;
  case Expr::ExprKind::Case: {
    const auto *C = cast<CaseExpr>(E);
    freeRepVars(C->scrut(), Out);
    for (const LAlt &A : C->alts())
      freeRepVars(A.Rhs, Out);
    if (C->defaultRhs())
      freeRepVars(C->defaultRhs(), Out);
    return;
  }
  case Expr::ExprKind::Prim: {
    const auto *P = cast<PrimExpr>(E);
    freeRepVars(P->lhs(), Out);
    freeRepVars(P->rhs(), Out);
    return;
  }
  case Expr::ExprKind::If0: {
    const auto *I = cast<If0Expr>(E);
    freeRepVars(I->scrut(), Out);
    freeRepVars(I->thenBranch(), Out);
    freeRepVars(I->elseBranch(), Out);
    return;
  }
  case Expr::ExprKind::Fix: {
    const auto *F = cast<FixExpr>(E);
    freeRepVars(F->varType(), Out);
    freeRepVars(F->body(), Out);
    return;
  }
  }
}

bool lcalc::isClosed(const Expr *E) {
  SymbolSet S;
  freeTermVars(E, S);
  if (!S.empty())
    return false;
  freeTypeVars(E, S);
  if (!S.empty())
    return false;
  freeRepVars(E, S);
  return S.empty();
}

//===----------------------------------------------------------------------===//
// Substitution into reps/kinds
//===----------------------------------------------------------------------===//

RuntimeRep lcalc::substRep(RuntimeRep R, Symbol RepVar, RuntimeRep Rep) {
  if (R.isVar() && R.varName() == RepVar)
    return Rep;
  return R;
}

LKind lcalc::substRep(LKind K, Symbol RepVar, RuntimeRep Rep) {
  return LKind(substRep(K.rep(), RepVar, Rep));
}

//===----------------------------------------------------------------------===//
// Substitution into types
//===----------------------------------------------------------------------===//

const Type *lcalc::substTypeInType(LContext &Ctx, const Type *T, Symbol Var,
                                   const Type *Replacement) {
  switch (T->kind()) {
  case Type::TypeKind::Int:
  case Type::TypeKind::IntHash:
  case Type::TypeKind::DoubleHash:
  case Type::TypeKind::Data:
    return T;
  case Type::TypeKind::Var:
    return cast<VarType>(T)->name() == Var ? Replacement : T;
  case Type::TypeKind::Arrow: {
    const auto *A = cast<ArrowType>(T);
    const Type *P = substTypeInType(Ctx, A->param(), Var, Replacement);
    const Type *R = substTypeInType(Ctx, A->result(), Var, Replacement);
    if (P == A->param() && R == A->result())
      return T;
    return Ctx.arrowTy(P, R);
  }
  case Type::TypeKind::ForAll: {
    const auto *F = cast<ForAllType>(T);
    if (F->var() == Var)
      return T; // shadowed
    SymbolSet FV;
    freeTypeVars(Replacement, FV);
    Symbol Bound = F->var();
    const Type *Body = F->body();
    if (FV.count(Bound)) {
      // Freshen the binder to avoid capture.
      Symbol Fresh = Ctx.symbols().fresh(Bound.str());
      Body = substTypeInType(Ctx, Body, Bound, Ctx.varTy(Fresh));
      Bound = Fresh;
    }
    const Type *NewBody = substTypeInType(Ctx, Body, Var, Replacement);
    if (Bound == F->var() && NewBody == F->body())
      return T;
    return Ctx.forAllTy(Bound, F->varKind(), NewBody);
  }
  case Type::TypeKind::ForAllRep: {
    const auto *F = cast<ForAllRepType>(T);
    const Type *NewBody =
        substTypeInType(Ctx, F->body(), Var, Replacement);
    // Rep binders cannot capture type variables; but the replacement may
    // mention the bound rep var free — freshen to keep scoping honest.
    SymbolSet FRV;
    freeRepVars(Replacement, FRV);
    if (FRV.count(F->repVar())) {
      Symbol Fresh = Ctx.symbols().fresh(F->repVar().str());
      const Type *Renamed =
          substRepInType(Ctx, F->body(), F->repVar(), RuntimeRep::var(Fresh));
      NewBody = substTypeInType(Ctx, Renamed, Var, Replacement);
      return Ctx.forAllRepTy(Fresh, NewBody);
    }
    if (NewBody == F->body())
      return T;
    return Ctx.forAllRepTy(F->repVar(), NewBody);
  }
  }
  assert(false && "unknown type kind");
  return T;
}

const Type *lcalc::substRepInType(LContext &Ctx, const Type *T, Symbol RepVar,
                                  RuntimeRep Rep) {
  switch (T->kind()) {
  case Type::TypeKind::Int:
  case Type::TypeKind::IntHash:
  case Type::TypeKind::DoubleHash:
  case Type::TypeKind::Var:
  case Type::TypeKind::Data:
    return T;
  case Type::TypeKind::Arrow: {
    const auto *A = cast<ArrowType>(T);
    const Type *P = substRepInType(Ctx, A->param(), RepVar, Rep);
    const Type *R = substRepInType(Ctx, A->result(), RepVar, Rep);
    if (P == A->param() && R == A->result())
      return T;
    return Ctx.arrowTy(P, R);
  }
  case Type::TypeKind::ForAll: {
    const auto *F = cast<ForAllType>(T);
    LKind K = substRep(F->varKind(), RepVar, Rep);
    const Type *Body = substRepInType(Ctx, F->body(), RepVar, Rep);
    if (K == F->varKind() && Body == F->body())
      return T;
    return Ctx.forAllTy(F->var(), K, Body);
  }
  case Type::TypeKind::ForAllRep: {
    const auto *F = cast<ForAllRepType>(T);
    if (F->repVar() == RepVar)
      return T; // shadowed
    if (Rep.isVar() && Rep.varName() == F->repVar()) {
      // Capture: freshen the binder.
      Symbol Fresh = Ctx.symbols().fresh(F->repVar().str());
      const Type *Renamed =
          substRepInType(Ctx, F->body(), F->repVar(), RuntimeRep::var(Fresh));
      return Ctx.forAllRepTy(Fresh,
                             substRepInType(Ctx, Renamed, RepVar, Rep));
    }
    const Type *Body = substRepInType(Ctx, F->body(), RepVar, Rep);
    if (Body == F->body())
      return T;
    return Ctx.forAllRepTy(F->repVar(), Body);
  }
  }
  assert(false && "unknown type kind");
  return T;
}

//===----------------------------------------------------------------------===//
// Substitution into expressions
//===----------------------------------------------------------------------===//

const Expr *lcalc::substExprInExpr(LContext &Ctx, const Expr *E, Symbol Var,
                                   const Expr *Replacement) {
  switch (E->kind()) {
  case Expr::ExprKind::Var:
    return cast<VarExpr>(E)->name() == Var ? Replacement : E;
  case Expr::ExprKind::IntLit:
  case Expr::ExprKind::DoubleLit:
  case Expr::ExprKind::Error:
    return E;
  case Expr::ExprKind::App: {
    const auto *A = cast<AppExpr>(E);
    const Expr *Fn = substExprInExpr(Ctx, A->fn(), Var, Replacement);
    const Expr *Arg = substExprInExpr(Ctx, A->arg(), Var, Replacement);
    if (Fn == A->fn() && Arg == A->arg())
      return E;
    return Ctx.app(Fn, Arg);
  }
  case Expr::ExprKind::Lam: {
    const auto *L = cast<LamExpr>(E);
    if (L->var() == Var)
      return E; // shadowed
    SymbolSet FV;
    freeTermVars(Replacement, FV);
    Symbol Bound = L->var();
    const Expr *Body = L->body();
    if (FV.count(Bound)) {
      Symbol Fresh = Ctx.symbols().fresh(Bound.str());
      Body = substExprInExpr(Ctx, Body, Bound, Ctx.var(Fresh));
      Bound = Fresh;
    }
    const Expr *NewBody = substExprInExpr(Ctx, Body, Var, Replacement);
    if (Bound == L->var() && NewBody == L->body())
      return E;
    return Ctx.lam(Bound, L->varType(), NewBody);
  }
  case Expr::ExprKind::TyLam: {
    const auto *L = cast<TyLamExpr>(E);
    const Expr *Body = substExprInExpr(Ctx, L->body(), Var, Replacement);
    if (Body == L->body())
      return E;
    return Ctx.tyLam(L->var(), L->varKind(), Body);
  }
  case Expr::ExprKind::TyApp: {
    const auto *A = cast<TyAppExpr>(E);
    const Expr *Fn = substExprInExpr(Ctx, A->fn(), Var, Replacement);
    if (Fn == A->fn())
      return E;
    return Ctx.tyApp(Fn, A->tyArg());
  }
  case Expr::ExprKind::RepLam: {
    const auto *L = cast<RepLamExpr>(E);
    const Expr *Body = substExprInExpr(Ctx, L->body(), Var, Replacement);
    if (Body == L->body())
      return E;
    return Ctx.repLam(L->repVar(), Body);
  }
  case Expr::ExprKind::RepApp: {
    const auto *A = cast<RepAppExpr>(E);
    const Expr *Fn = substExprInExpr(Ctx, A->fn(), Var, Replacement);
    if (Fn == A->fn())
      return E;
    return Ctx.repApp(Fn, A->repArg());
  }
  case Expr::ExprKind::Con: {
    const auto *C = cast<ConExpr>(E);
    std::vector<const Expr *> Args(C->args().begin(), C->args().end());
    bool Changed = false;
    for (const Expr *&A : Args) {
      const Expr *N = substExprInExpr(Ctx, A, Var, Replacement);
      Changed |= N != A;
      A = N;
    }
    if (!Changed)
      return E;
    return Ctx.conData(C->decl(), C->tag(), Args);
  }
  case Expr::ExprKind::Case: {
    const auto *C = cast<CaseExpr>(E);
    const Expr *Scrut = substExprInExpr(Ctx, C->scrut(), Var, Replacement);
    bool Changed = Scrut != C->scrut();

    SymbolSet FV;
    freeTermVars(Replacement, FV);
    std::vector<LAlt> Alts(C->alts().begin(), C->alts().end());
    for (LAlt &A : Alts) {
      bool Shadowed = false;
      for (Symbol B : A.Binders)
        Shadowed |= B == Var;
      if (Shadowed)
        continue;
      // Freshen any binder that would capture a free variable of the
      // replacement.
      std::vector<Symbol> Binders(A.Binders.begin(), A.Binders.end());
      const Expr *Rhs = A.Rhs;
      bool Renamed = false;
      for (Symbol &B : Binders) {
        if (!FV.count(B))
          continue;
        Symbol Fresh = Ctx.symbols().fresh(B.str());
        Rhs = substExprInExpr(Ctx, Rhs, B, Ctx.var(Fresh));
        B = Fresh;
        Renamed = true;
      }
      const Expr *NewRhs = substExprInExpr(Ctx, Rhs, Var, Replacement);
      if (!Renamed && NewRhs == A.Rhs)
        continue;
      if (Renamed)
        A.Binders = std::span<const Symbol>(
            Ctx.arena().copyArray(Binders));
      A.Rhs = NewRhs;
      Changed = true;
    }
    const Expr *Def = C->defaultRhs();
    if (Def) {
      const Expr *NewDef = substExprInExpr(Ctx, Def, Var, Replacement);
      Changed |= NewDef != Def;
      Def = NewDef;
    }
    if (!Changed)
      return E;
    return Ctx.caseData(Scrut, C->decl(), Alts, Def);
  }
  case Expr::ExprKind::Prim: {
    const auto *P = cast<PrimExpr>(E);
    const Expr *Lhs = substExprInExpr(Ctx, P->lhs(), Var, Replacement);
    const Expr *Rhs = substExprInExpr(Ctx, P->rhs(), Var, Replacement);
    if (Lhs == P->lhs() && Rhs == P->rhs())
      return E;
    return Ctx.prim(P->op(), Lhs, Rhs);
  }
  case Expr::ExprKind::If0: {
    const auto *I = cast<If0Expr>(E);
    const Expr *Scrut = substExprInExpr(Ctx, I->scrut(), Var, Replacement);
    const Expr *Then =
        substExprInExpr(Ctx, I->thenBranch(), Var, Replacement);
    const Expr *Else =
        substExprInExpr(Ctx, I->elseBranch(), Var, Replacement);
    if (Scrut == I->scrut() && Then == I->thenBranch() &&
        Else == I->elseBranch())
      return E;
    return Ctx.if0(Scrut, Then, Else);
  }
  case Expr::ExprKind::Fix: {
    const auto *F = cast<FixExpr>(E);
    if (F->var() == Var)
      return E; // shadowed
    SymbolSet FV;
    freeTermVars(Replacement, FV);
    Symbol Bound = F->var();
    const Expr *Body = F->body();
    if (FV.count(Bound)) {
      Symbol Fresh = Ctx.symbols().fresh(Bound.str());
      Body = substExprInExpr(Ctx, Body, Bound, Ctx.var(Fresh));
      Bound = Fresh;
    }
    const Expr *NewBody = substExprInExpr(Ctx, Body, Var, Replacement);
    if (Bound == F->var() && NewBody == F->body())
      return E;
    return Ctx.fix(Bound, F->varType(), NewBody);
  }
  }
  assert(false && "unknown expr kind");
  return E;
}

const Expr *lcalc::substTypeInExpr(LContext &Ctx, const Expr *E, Symbol Var,
                                   const Type *Replacement) {
  switch (E->kind()) {
  case Expr::ExprKind::Var:
  case Expr::ExprKind::IntLit:
  case Expr::ExprKind::DoubleLit:
  case Expr::ExprKind::Error:
    return E;
  case Expr::ExprKind::App: {
    const auto *A = cast<AppExpr>(E);
    const Expr *Fn = substTypeInExpr(Ctx, A->fn(), Var, Replacement);
    const Expr *Arg = substTypeInExpr(Ctx, A->arg(), Var, Replacement);
    if (Fn == A->fn() && Arg == A->arg())
      return E;
    return Ctx.app(Fn, Arg);
  }
  case Expr::ExprKind::Lam: {
    const auto *L = cast<LamExpr>(E);
    const Type *Ann = substTypeInType(Ctx, L->varType(), Var, Replacement);
    const Expr *Body = substTypeInExpr(Ctx, L->body(), Var, Replacement);
    if (Ann == L->varType() && Body == L->body())
      return E;
    return Ctx.lam(L->var(), Ann, Body);
  }
  case Expr::ExprKind::TyLam: {
    const auto *L = cast<TyLamExpr>(E);
    if (L->var() == Var)
      return E; // shadowed
    SymbolSet FV;
    freeTypeVars(Replacement, FV);
    Symbol Bound = L->var();
    const Expr *Body = L->body();
    if (FV.count(Bound)) {
      Symbol Fresh = Ctx.symbols().fresh(Bound.str());
      Body = substTypeInExpr(Ctx, Body, Bound, Ctx.varTy(Fresh));
      Bound = Fresh;
    }
    const Expr *NewBody = substTypeInExpr(Ctx, Body, Var, Replacement);
    if (Bound == L->var() && NewBody == L->body())
      return E;
    return Ctx.tyLam(Bound, L->varKind(), NewBody);
  }
  case Expr::ExprKind::TyApp: {
    const auto *A = cast<TyAppExpr>(E);
    const Expr *Fn = substTypeInExpr(Ctx, A->fn(), Var, Replacement);
    const Type *Ty = substTypeInType(Ctx, A->tyArg(), Var, Replacement);
    if (Fn == A->fn() && Ty == A->tyArg())
      return E;
    return Ctx.tyApp(Fn, Ty);
  }
  case Expr::ExprKind::RepLam: {
    const auto *L = cast<RepLamExpr>(E);
    // The replacement type may mention this rep binder's name free;
    // freshen in that unlikely capture case.
    SymbolSet FRV;
    freeRepVars(Replacement, FRV);
    if (FRV.count(L->repVar())) {
      Symbol Fresh = Ctx.symbols().fresh(L->repVar().str());
      const Expr *Renamed =
          substRepInExpr(Ctx, L->body(), L->repVar(), RuntimeRep::var(Fresh));
      return Ctx.repLam(Fresh,
                        substTypeInExpr(Ctx, Renamed, Var, Replacement));
    }
    const Expr *Body = substTypeInExpr(Ctx, L->body(), Var, Replacement);
    if (Body == L->body())
      return E;
    return Ctx.repLam(L->repVar(), Body);
  }
  case Expr::ExprKind::RepApp: {
    const auto *A = cast<RepAppExpr>(E);
    const Expr *Fn = substTypeInExpr(Ctx, A->fn(), Var, Replacement);
    if (Fn == A->fn())
      return E;
    return Ctx.repApp(Fn, A->repArg());
  }
  case Expr::ExprKind::Con: {
    const auto *C = cast<ConExpr>(E);
    std::vector<const Expr *> Args(C->args().begin(), C->args().end());
    bool Changed = false;
    for (const Expr *&A : Args) {
      const Expr *N = substTypeInExpr(Ctx, A, Var, Replacement);
      Changed |= N != A;
      A = N;
    }
    if (!Changed)
      return E;
    return Ctx.conData(C->decl(), C->tag(), Args);
  }
  case Expr::ExprKind::Case: {
    const auto *C = cast<CaseExpr>(E);
    const Expr *Scrut = substTypeInExpr(Ctx, C->scrut(), Var, Replacement);
    bool Changed = Scrut != C->scrut();
    std::vector<LAlt> Alts(C->alts().begin(), C->alts().end());
    for (LAlt &A : Alts) {
      const Expr *NewRhs = substTypeInExpr(Ctx, A.Rhs, Var, Replacement);
      Changed |= NewRhs != A.Rhs;
      A.Rhs = NewRhs;
    }
    const Expr *Def = C->defaultRhs();
    if (Def) {
      const Expr *NewDef = substTypeInExpr(Ctx, Def, Var, Replacement);
      Changed |= NewDef != Def;
      Def = NewDef;
    }
    if (!Changed)
      return E;
    return Ctx.caseData(Scrut, C->decl(), Alts, Def);
  }
  case Expr::ExprKind::Prim: {
    const auto *P = cast<PrimExpr>(E);
    const Expr *Lhs = substTypeInExpr(Ctx, P->lhs(), Var, Replacement);
    const Expr *Rhs = substTypeInExpr(Ctx, P->rhs(), Var, Replacement);
    if (Lhs == P->lhs() && Rhs == P->rhs())
      return E;
    return Ctx.prim(P->op(), Lhs, Rhs);
  }
  case Expr::ExprKind::If0: {
    const auto *I = cast<If0Expr>(E);
    const Expr *Scrut = substTypeInExpr(Ctx, I->scrut(), Var, Replacement);
    const Expr *Then =
        substTypeInExpr(Ctx, I->thenBranch(), Var, Replacement);
    const Expr *Else =
        substTypeInExpr(Ctx, I->elseBranch(), Var, Replacement);
    if (Scrut == I->scrut() && Then == I->thenBranch() &&
        Else == I->elseBranch())
      return E;
    return Ctx.if0(Scrut, Then, Else);
  }
  case Expr::ExprKind::Fix: {
    const auto *F = cast<FixExpr>(E);
    const Type *Ann = substTypeInType(Ctx, F->varType(), Var, Replacement);
    const Expr *Body = substTypeInExpr(Ctx, F->body(), Var, Replacement);
    if (Ann == F->varType() && Body == F->body())
      return E;
    return Ctx.fix(F->var(), Ann, Body);
  }
  }
  assert(false && "unknown expr kind");
  return E;
}

const Expr *lcalc::substRepInExpr(LContext &Ctx, const Expr *E, Symbol RepVar,
                                  RuntimeRep Rep) {
  switch (E->kind()) {
  case Expr::ExprKind::Var:
  case Expr::ExprKind::IntLit:
  case Expr::ExprKind::DoubleLit:
  case Expr::ExprKind::Error:
    return E;
  case Expr::ExprKind::App: {
    const auto *A = cast<AppExpr>(E);
    const Expr *Fn = substRepInExpr(Ctx, A->fn(), RepVar, Rep);
    const Expr *Arg = substRepInExpr(Ctx, A->arg(), RepVar, Rep);
    if (Fn == A->fn() && Arg == A->arg())
      return E;
    return Ctx.app(Fn, Arg);
  }
  case Expr::ExprKind::Lam: {
    const auto *L = cast<LamExpr>(E);
    const Type *Ann = substRepInType(Ctx, L->varType(), RepVar, Rep);
    const Expr *Body = substRepInExpr(Ctx, L->body(), RepVar, Rep);
    if (Ann == L->varType() && Body == L->body())
      return E;
    return Ctx.lam(L->var(), Ann, Body);
  }
  case Expr::ExprKind::TyLam: {
    const auto *L = cast<TyLamExpr>(E);
    LKind K = substRep(L->varKind(), RepVar, Rep);
    const Expr *Body = substRepInExpr(Ctx, L->body(), RepVar, Rep);
    if (K == L->varKind() && Body == L->body())
      return E;
    return Ctx.tyLam(L->var(), K, Body);
  }
  case Expr::ExprKind::TyApp: {
    const auto *A = cast<TyAppExpr>(E);
    const Expr *Fn = substRepInExpr(Ctx, A->fn(), RepVar, Rep);
    const Type *Ty = substRepInType(Ctx, A->tyArg(), RepVar, Rep);
    if (Fn == A->fn() && Ty == A->tyArg())
      return E;
    return Ctx.tyApp(Fn, Ty);
  }
  case Expr::ExprKind::RepLam: {
    const auto *L = cast<RepLamExpr>(E);
    if (L->repVar() == RepVar)
      return E; // shadowed
    if (Rep.isVar() && Rep.varName() == L->repVar()) {
      Symbol Fresh = Ctx.symbols().fresh(L->repVar().str());
      const Expr *Renamed =
          substRepInExpr(Ctx, L->body(), L->repVar(), RuntimeRep::var(Fresh));
      return Ctx.repLam(Fresh, substRepInExpr(Ctx, Renamed, RepVar, Rep));
    }
    const Expr *Body = substRepInExpr(Ctx, L->body(), RepVar, Rep);
    if (Body == L->body())
      return E;
    return Ctx.repLam(L->repVar(), Body);
  }
  case Expr::ExprKind::RepApp: {
    const auto *A = cast<RepAppExpr>(E);
    const Expr *Fn = substRepInExpr(Ctx, A->fn(), RepVar, Rep);
    RuntimeRep R = substRep(A->repArg(), RepVar, Rep);
    if (Fn == A->fn() && R == A->repArg())
      return E;
    return Ctx.repApp(Fn, R);
  }
  case Expr::ExprKind::Con: {
    const auto *C = cast<ConExpr>(E);
    std::vector<const Expr *> Args(C->args().begin(), C->args().end());
    bool Changed = false;
    for (const Expr *&A : Args) {
      const Expr *N = substRepInExpr(Ctx, A, RepVar, Rep);
      Changed |= N != A;
      A = N;
    }
    if (!Changed)
      return E;
    return Ctx.conData(C->decl(), C->tag(), Args);
  }
  case Expr::ExprKind::Case: {
    const auto *C = cast<CaseExpr>(E);
    const Expr *Scrut = substRepInExpr(Ctx, C->scrut(), RepVar, Rep);
    bool Changed = Scrut != C->scrut();
    std::vector<LAlt> Alts(C->alts().begin(), C->alts().end());
    for (LAlt &A : Alts) {
      const Expr *NewRhs = substRepInExpr(Ctx, A.Rhs, RepVar, Rep);
      Changed |= NewRhs != A.Rhs;
      A.Rhs = NewRhs;
    }
    const Expr *Def = C->defaultRhs();
    if (Def) {
      const Expr *NewDef = substRepInExpr(Ctx, Def, RepVar, Rep);
      Changed |= NewDef != Def;
      Def = NewDef;
    }
    if (!Changed)
      return E;
    return Ctx.caseData(Scrut, C->decl(), Alts, Def);
  }
  case Expr::ExprKind::Prim: {
    const auto *P = cast<PrimExpr>(E);
    const Expr *Lhs = substRepInExpr(Ctx, P->lhs(), RepVar, Rep);
    const Expr *Rhs = substRepInExpr(Ctx, P->rhs(), RepVar, Rep);
    if (Lhs == P->lhs() && Rhs == P->rhs())
      return E;
    return Ctx.prim(P->op(), Lhs, Rhs);
  }
  case Expr::ExprKind::If0: {
    const auto *I = cast<If0Expr>(E);
    const Expr *Scrut = substRepInExpr(Ctx, I->scrut(), RepVar, Rep);
    const Expr *Then = substRepInExpr(Ctx, I->thenBranch(), RepVar, Rep);
    const Expr *Else = substRepInExpr(Ctx, I->elseBranch(), RepVar, Rep);
    if (Scrut == I->scrut() && Then == I->thenBranch() &&
        Else == I->elseBranch())
      return E;
    return Ctx.if0(Scrut, Then, Else);
  }
  case Expr::ExprKind::Fix: {
    const auto *F = cast<FixExpr>(E);
    const Type *Ann = substRepInType(Ctx, F->varType(), RepVar, Rep);
    const Expr *Body = substRepInExpr(Ctx, F->body(), RepVar, Rep);
    if (Ann == F->varType() && Body == F->body())
      return E;
    return Ctx.fix(F->var(), Ann, Body);
  }
  }
  assert(false && "unknown expr kind");
  return E;
}
