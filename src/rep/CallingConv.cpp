//===- CallingConv.cpp - Kinds as calling conventions ---------------------===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "rep/CallingConv.h"

#include <sstream>

using namespace levity;

namespace {

/// Tracks the next free register per class while assigning.
class RegAllocator {
public:
  RegAssignment next(RegClass RC) { return {RC, Counters[size_t(RC)]++}; }

  void assign(const Rep *R, std::vector<RegAssignment> &Out) {
    std::vector<RegClass> Classes;
    R->flattenRegisters(Classes);
    for (RegClass RC : Classes)
      Out.push_back(next(RC));
  }

private:
  unsigned Counters[4] = {0, 0, 0, 0};
};

} // namespace

CallingConv CallingConv::compute(std::span<const Rep *const> Args,
                                 const Rep *Ret) {
  CallingConv CC;
  RegAllocator ArgAlloc;
  CC.ArgStarts.push_back(0);
  for (const Rep *A : Args) {
    ArgAlloc.assign(A, CC.ArgRegs);
    CC.ArgStarts.push_back(CC.ArgRegs.size());
  }
  RegAllocator RetAlloc;
  if (Ret)
    RetAlloc.assign(Ret, CC.RetRegs);
  return CC;
}

unsigned CallingConv::numArgRegisters(RegClass RC) const {
  unsigned N = 0;
  for (const RegAssignment &R : ArgRegs)
    if (R.Class == RC)
      ++N;
  return N;
}

std::string CallingConv::str() const {
  std::ostringstream OS;
  auto PrintReg = [&](const RegAssignment &R) {
    OS << regClassName(R.Class) << R.Index;
  };
  OS << "(";
  for (size_t I = 0, E = numArgs(); I != E; ++I) {
    if (I != 0)
      OS << ", ";
    std::span<const RegAssignment> Regs = argRegisters(I);
    if (Regs.size() == 1) {
      PrintReg(Regs[0]);
      continue;
    }
    OS << "[";
    for (size_t J = 0; J != Regs.size(); ++J) {
      if (J != 0)
        OS << ", ";
      PrintReg(Regs[J]);
    }
    OS << "]";
  }
  OS << ") -> [";
  for (size_t J = 0; J != RetRegs.size(); ++J) {
    if (J != 0)
      OS << ", ";
    PrintReg(RetRegs[J]);
  }
  OS << "]";
  return OS.str();
}
