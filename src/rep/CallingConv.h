//===- CallingConv.h - Kinds as calling conventions -------------*- C++ -*-===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Derives concrete calling conventions from reps, realizing the paper's
/// central slogan: *the kind determines the calling convention*. Arguments
/// and results are mapped to numbered registers per register class, the way
/// a code generator would assign them; unboxed tuples fan out over several
/// registers (Section 2.3) and (# #) occupies none.
///
/// This module is what makes "you cannot compile a levity-polymorphic
/// binder" operational: computing a convention *requires* a concrete Rep.
///
//===----------------------------------------------------------------------===//

#ifndef LEVITY_REP_CALLINGCONV_H
#define LEVITY_REP_CALLINGCONV_H

#include "rep/Rep.h"

#include <string>
#include <vector>

namespace levity {

/// One machine register, identified by class and index within the class
/// (e.g. the second pointer register is {GcPtr, 1}).
struct RegAssignment {
  RegClass Class;
  unsigned Index;

  friend bool operator==(const RegAssignment &A, const RegAssignment &B) {
    return A.Class == B.Class && A.Index == B.Index;
  }
};

/// The registers used to pass each argument and return the result.
class CallingConv {
public:
  /// Computes the convention for a function taking \p Args and returning
  /// \p Ret. Registers are assigned left-to-right, first-free per class.
  static CallingConv compute(std::span<const Rep *const> Args,
                             const Rep *Ret);

  /// Registers of the I-th argument (an unboxed tuple may span several).
  std::span<const RegAssignment> argRegisters(size_t I) const {
    return {ArgRegs.data() + ArgStarts[I],
            ArgStarts[I + 1] - ArgStarts[I]};
  }

  size_t numArgs() const { return ArgStarts.size() - 1; }
  std::span<const RegAssignment> allArgRegisters() const { return ArgRegs; }
  std::span<const RegAssignment> retRegisters() const { return RetRegs; }

  /// Total registers used for arguments, per class, for occupancy stats.
  unsigned numArgRegisters(RegClass RC) const;

  friend bool operator==(const CallingConv &A, const CallingConv &B) {
    return A.ArgRegs == B.ArgRegs && A.ArgStarts == B.ArgStarts &&
           A.RetRegs == B.RetRegs;
  }

  /// Renders e.g. "(P0, [I0, P1]) -> [I0, I1]".
  std::string str() const;

private:
  std::vector<RegAssignment> ArgRegs;
  std::vector<size_t> ArgStarts; // ArgStarts[i]..ArgStarts[i+1] in ArgRegs
  std::vector<RegAssignment> RetRegs;
};

} // namespace levity

#endif // LEVITY_REP_CALLINGCONV_H
