//===- Rep.h - Runtime representation algebra -------------------*- C++ -*-===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Rep algebra of Section 4.1:
///
/// \code
///   data Rep = LiftedRep | UnliftedRep | IntRep | ... | TupleRep [Rep] | ...
/// \endcode
///
/// A Rep describes the runtime representation of the values of a type, and
/// hence the calling convention of functions over that type ("kinds are
/// calling conventions"). Reps are interned in a RepContext: equal reps are
/// pointer-equal, so kind equality checks are O(1) on atoms and structural
/// only through tuple/sum spines that were interned once.
///
/// Boxity and levity (Figure 1): LiftedRep and UnliftedRep are boxed (a GC
/// pointer); everything else is unboxed. Only LiftedRep is lifted (has
/// bottom); there is deliberately no constructor for "lifted and unboxed" —
/// that corner of Figure 1 is uninhabited *by construction*.
///
//===----------------------------------------------------------------------===//

#ifndef LEVITY_REP_REP_H
#define LEVITY_REP_REP_H

#include "support/Arena.h"

#include <cassert>
#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

namespace levity {

/// The constructors of the promoted data type Rep.
enum class RepCtor : uint8_t {
  Lifted,   ///< Boxed, lifted: a pointer to a possibly-thunked heap object.
  Unlifted, ///< Boxed, unlifted: a pointer to a definitely-evaluated object.
  Int,      ///< Unboxed machine-word signed integer (Int#).
  Int8,     ///< Unboxed 8-bit signed integer (Int8#).
  Int16,    ///< Unboxed 16-bit signed integer (Int16#).
  Int32,    ///< Unboxed 32-bit signed integer (Int32#).
  Int64,    ///< Unboxed 64-bit signed integer (Int64#).
  Word,     ///< Unboxed machine-word unsigned integer (Word#).
  Float,    ///< Unboxed single-precision float (Float#).
  Double,   ///< Unboxed double-precision float (Double#).
  Addr,     ///< Unboxed machine address (Addr#), not traced by the GC.
  Tuple,    ///< Unboxed tuple: the concatenation of its fields' values.
  Sum       ///< Unboxed sum: a tag plus the fields of the active variant.
};

/// The register class a single machine value travels in. This is the
/// "calling convention" payload of a kind: two types can share compiled
/// code iff their reps flatten to the same register-class sequence.
enum class RegClass : uint8_t {
  GcPtr,  ///< Pointer register, traced by the garbage collector.
  IntReg, ///< General-purpose (integer/address) register.
  FloatReg,  ///< Single-precision floating-point register.
  DoubleReg, ///< Double-precision floating-point register.
};

/// An interned runtime representation.
class Rep {
public:
  RepCtor ctor() const { return Ctor; }

  /// Fields of a Tuple or Sum rep; empty otherwise.
  std::span<const Rep *const> elems() const { return Elems; }

  /// \returns true if values are represented by a heap pointer.
  bool isBoxed() const {
    return Ctor == RepCtor::Lifted || Ctor == RepCtor::Unlifted;
  }

  /// \returns true if the type contains bottom (can be a thunk).
  bool isLifted() const { return Ctor == RepCtor::Lifted; }

  bool isUnboxed() const { return !isBoxed(); }
  bool isUnlifted() const { return !isLifted(); }

  bool isTuple() const { return Ctor == RepCtor::Tuple; }
  bool isSum() const { return Ctor == RepCtor::Sum; }

  /// Width in bytes of a single (unflattened) value of this rep as it sits
  /// in a register or stack slot; tuple/sum widths are the flattened sums.
  unsigned widthBytes() const;

  /// Flattens this rep to the register classes its values occupy, ignoring
  /// tuple nesting (Section 2.3: nesting is computationally irrelevant;
  /// Section 4.2: the kinds still differ). An empty result means values of
  /// this rep are "represented by nothing at all", like (# #).
  void flattenRegisters(std::vector<RegClass> &Out) const;
  std::vector<RegClass> registers() const {
    std::vector<RegClass> Out;
    flattenRegisters(Out);
    return Out;
  }

  /// \returns true if \p Other has the identical calling convention, i.e.
  /// flattens to the same register-class sequence. Distinct reps may share
  /// a convention (nested vs flat tuples); equal reps always do.
  bool sameConvention(const Rep *Other) const;

  /// Haskell-ish rendering, e.g. "TupleRep '[IntRep, LiftedRep]".
  std::string str() const;

private:
  friend class RepContext;
  Rep(RepCtor Ctor, std::span<const Rep *const> Elems)
      : Ctor(Ctor), Elems(Elems) {}

  RepCtor Ctor;
  std::span<const Rep *const> Elems;
};

/// Owns and interns Reps. Atomic reps are singletons; tuple and sum reps
/// are hash-consed, so pointer equality coincides with structural equality.
class RepContext {
public:
  RepContext();
  RepContext(const RepContext &) = delete;
  RepContext &operator=(const RepContext &) = delete;

  const Rep *lifted() const { return Atoms[size_t(RepCtor::Lifted)]; }
  const Rep *unlifted() const { return Atoms[size_t(RepCtor::Unlifted)]; }
  const Rep *intRep() const { return Atoms[size_t(RepCtor::Int)]; }
  const Rep *int8Rep() const { return Atoms[size_t(RepCtor::Int8)]; }
  const Rep *int16Rep() const { return Atoms[size_t(RepCtor::Int16)]; }
  const Rep *int32Rep() const { return Atoms[size_t(RepCtor::Int32)]; }
  const Rep *int64Rep() const { return Atoms[size_t(RepCtor::Int64)]; }
  const Rep *wordRep() const { return Atoms[size_t(RepCtor::Word)]; }
  const Rep *floatRep() const { return Atoms[size_t(RepCtor::Float)]; }
  const Rep *doubleRep() const { return Atoms[size_t(RepCtor::Double)]; }
  const Rep *addrRep() const { return Atoms[size_t(RepCtor::Addr)]; }

  const Rep *atom(RepCtor Ctor) const {
    assert(Ctor != RepCtor::Tuple && Ctor != RepCtor::Sum &&
           "tuple/sum reps carry elements");
    return Atoms[size_t(Ctor)];
  }

  /// Interns TupleRep '[Elems...].
  const Rep *tuple(std::span<const Rep *const> Elems);
  const Rep *tuple(std::initializer_list<const Rep *> Elems) {
    return tuple(std::span<const Rep *const>(Elems.begin(), Elems.size()));
  }

  /// Interns SumRep '[Elems...].
  const Rep *sum(std::span<const Rep *const> Elems);
  const Rep *sum(std::initializer_list<const Rep *> Elems) {
    return sum(std::span<const Rep *const>(Elems.begin(), Elems.size()));
  }

  /// The unit unboxed-tuple rep, TupleRep '[] — zero registers.
  const Rep *unitTuple() { return tuple({}); }

private:
  const Rep *internCompound(RepCtor Ctor,
                            std::span<const Rep *const> Elems);

  Arena Mem;
  static constexpr size_t NumAtoms = size_t(RepCtor::Addr) + 1;
  const Rep *Atoms[NumAtoms];
  // Deterministic map keyed by (ctor, element pointers); element pointers
  // are themselves interned so the key is canonical.
  std::map<std::pair<RepCtor, std::vector<const Rep *>>, const Rep *>
      Compounds;
};

/// Renders a register class ("P", "I", "F32", "F64").
std::string_view regClassName(RegClass RC);

} // namespace levity

#endif // LEVITY_REP_REP_H
