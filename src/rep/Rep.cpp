//===- Rep.cpp - Runtime representation algebra ---------------------------===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "rep/Rep.h"

#include <sstream>

using namespace levity;

unsigned Rep::widthBytes() const {
  switch (Ctor) {
  case RepCtor::Lifted:
  case RepCtor::Unlifted:
  case RepCtor::Addr:
  case RepCtor::Int:
  case RepCtor::Int64:
  case RepCtor::Word:
    return 8;
  case RepCtor::Int8:
    return 1;
  case RepCtor::Int16:
    return 2;
  case RepCtor::Int32:
  case RepCtor::Float:
    return 4;
  case RepCtor::Double:
    return 8;
  case RepCtor::Tuple: {
    unsigned Sum = 0;
    for (const Rep *E : Elems)
      Sum += E->widthBytes();
    return Sum;
  }
  case RepCtor::Sum: {
    // Simplified unboxed-sum layout: one tag word plus the widest variant.
    // (GHC merges slots across variants; the width upper bound is the same
    // and the register-class story below is what the paper's claims need.)
    unsigned Max = 0;
    for (const Rep *E : Elems)
      Max = std::max(Max, E->widthBytes());
    return 8 + Max;
  }
  }
  assert(false && "unknown rep constructor");
  return 0;
}

void Rep::flattenRegisters(std::vector<RegClass> &Out) const {
  switch (Ctor) {
  case RepCtor::Lifted:
  case RepCtor::Unlifted:
    Out.push_back(RegClass::GcPtr);
    return;
  case RepCtor::Int:
  case RepCtor::Int8:
  case RepCtor::Int16:
  case RepCtor::Int32:
  case RepCtor::Int64:
  case RepCtor::Word:
  case RepCtor::Addr:
    Out.push_back(RegClass::IntReg);
    return;
  case RepCtor::Float:
    Out.push_back(RegClass::FloatReg);
    return;
  case RepCtor::Double:
    Out.push_back(RegClass::DoubleReg);
    return;
  case RepCtor::Tuple:
    // Nesting is computationally irrelevant (Section 2.3): flatten.
    for (const Rep *E : Elems)
      E->flattenRegisters(Out);
    return;
  case RepCtor::Sum:
    Out.push_back(RegClass::IntReg); // tag
    for (const Rep *E : Elems)
      E->flattenRegisters(Out);
    return;
  }
  assert(false && "unknown rep constructor");
}

bool Rep::sameConvention(const Rep *Other) const {
  if (this == Other)
    return true;
  std::vector<RegClass> A, B;
  flattenRegisters(A);
  Other->flattenRegisters(B);
  return A == B;
}

std::string Rep::str() const {
  switch (Ctor) {
  case RepCtor::Lifted:
    return "LiftedRep";
  case RepCtor::Unlifted:
    return "UnliftedRep";
  case RepCtor::Int:
    return "IntRep";
  case RepCtor::Int8:
    return "Int8Rep";
  case RepCtor::Int16:
    return "Int16Rep";
  case RepCtor::Int32:
    return "Int32Rep";
  case RepCtor::Int64:
    return "Int64Rep";
  case RepCtor::Word:
    return "WordRep";
  case RepCtor::Float:
    return "FloatRep";
  case RepCtor::Double:
    return "DoubleRep";
  case RepCtor::Addr:
    return "AddrRep";
  case RepCtor::Tuple:
  case RepCtor::Sum: {
    std::ostringstream OS;
    OS << (Ctor == RepCtor::Tuple ? "TupleRep" : "SumRep") << " '[";
    bool First = true;
    for (const Rep *E : Elems) {
      if (!First)
        OS << ", ";
      First = false;
      OS << E->str();
    }
    OS << "]";
    return OS.str();
  }
  }
  assert(false && "unknown rep constructor");
  return "";
}

RepContext::RepContext() {
  for (size_t I = 0; I != NumAtoms; ++I)
    Atoms[I] = Mem.create<Rep>(Rep(RepCtor(I), {}));
}

const Rep *RepContext::internCompound(RepCtor Ctor,
                                      std::span<const Rep *const> Elems) {
  std::vector<const Rep *> Key(Elems.begin(), Elems.end());
  auto It = Compounds.find({Ctor, Key});
  if (It != Compounds.end())
    return It->second;
  std::span<const Rep *const> Stored =
      Mem.copyArray(std::span<const Rep *const>(Elems));
  const Rep *R = Mem.create<Rep>(Rep(Ctor, Stored));
  Compounds.emplace(std::make_pair(Ctor, std::move(Key)), R);
  return R;
}

const Rep *RepContext::tuple(std::span<const Rep *const> Elems) {
  return internCompound(RepCtor::Tuple, Elems);
}

const Rep *RepContext::sum(std::span<const Rep *const> Elems) {
  return internCompound(RepCtor::Sum, Elems);
}

std::string_view levity::regClassName(RegClass RC) {
  switch (RC) {
  case RegClass::GcPtr:
    return "P";
  case RegClass::IntReg:
    return "I";
  case RegClass::FloatReg:
    return "F32";
  case RegClass::DoubleReg:
    return "F64";
  }
  return "?";
}
