//===- Elaborate.h - Surface-to-core elaboration ----------------*- C++ -*-===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Elaboration of surface programs into core IR, implementing the
/// pipeline the paper describes for GHC:
///
///   * type inference with type metavariables α :: TYPE ν and rep
///     metavariables ν (Section 5.2) — kind checking *unifies*, it never
///     sub-kinds;
///   * levity defaulting: unconstrained ν default to LiftedRep at
///     generalization; levity polymorphism is only ever *declared* via a
///     signature (∀(r::Rep) binders), then checked;
///   * type classes by dictionary translation (Section 7.3). Dictionaries
///     are passed *unpacked*: one lifted function parameter per method —
///     isomorphic to GHC's record dictionaries for our class fragment,
///     and exhibiting the same levity behavior (each method parameter has
///     a function type, hence kind Type, hence is a legal binder even
///     when the class variable is rep-polymorphic). Instance methods
///     become ordinary monomorphic top-level bindings ($c<method>_<Head>)
///     exactly as in the paper's $d story;
///   * the two Section 5.1 restrictions run as the separate LevityCheck
///     pass over the produced core (GHC's desugarer check, Section 8.2).
///
/// The elaborator also exposes the kind-inference entry point used by the
/// Section 8.1 class-generalizability analysis (classlib).
///
//===----------------------------------------------------------------------===//

#ifndef LEVITY_SURFACE_ELABORATE_H
#define LEVITY_SURFACE_ELABORATE_H

#include "core/LevityCheck.h"
#include "core/Program.h"
#include "core/TypeCheck.h"
#include "infer/Unify.h"
#include "surface/Ast.h"

#include <optional>
#include <unordered_map>

namespace levity {
namespace surface {

/// An elaborated class: variable, kind, method signatures (mentioning the
/// class variable free).
struct ClassInfo {
  Symbol Name;
  Symbol Var;
  const core::Kind *VarKind;
  std::vector<Symbol> RepVars; ///< Class-level rep binders in VarKind.
  struct Method {
    Symbol Name;
    const core::Type *Sig; ///< With the class variable free.
  };
  std::vector<Method> Methods;

  int methodIndex(Symbol M) const {
    for (size_t I = 0; I != Methods.size(); ++I)
      if (Methods[I].Name == M)
        return int(I);
    return -1;
  }
};

/// An elaborated instance: head tycon and per-method implementation
/// globals.
struct InstanceInfo {
  Symbol ClassName;
  const core::TyCon *HeadCon;
  const core::Type *HeadTy;
  std::unordered_map<Symbol, Symbol, SymbolHash> Impls;
};

/// The result of elaborating a module.
struct ElabOutput {
  core::CoreProgram Program; ///< Builtins + instance methods + bindings.
  std::vector<Symbol> UserBindings; ///< Names defined by the module.
};

class Elaborator {
public:
  Elaborator(core::CoreContext &C, DiagnosticEngine &Diags)
      : C(C), Diags(Diags), Checker(C), Unify(C, Diags) {}

  /// Elaborates a whole module. Returns nullopt if any error was
  /// reported (diagnostics carry the details).
  std::optional<ElabOutput> run(const SModule &M);

  /// The classes declared by the last run (plus none built in).
  const std::vector<ClassInfo> &classes() const { return Classes; }
  const std::vector<InstanceInfo> &instances() const { return Instances; }

  /// Looks up the elaborated (dictionary-expanded) core type of a
  /// top-level name after run().
  const core::Type *globalType(std::string_view Name) const;

  //===------------------------------------------------------------------===//
  // Section 8.1 analysis hook (used by classlib)
  //===------------------------------------------------------------------===//

  struct GeneralizabilityResult {
    bool ValueKinded = false;   ///< Class var has kind TYPE ρ (not ->).
    bool Generalizable = false; ///< Rep meta unconstrained by methods.
    std::string Reason;         ///< Why not, when not.
  };

  /// Re-kinds the class's method signatures with the class variable at
  /// TYPE ν (ν fresh) and reports whether ν stays unconstrained.
  /// Superclass and method contexts are ignored (assumes simultaneous
  /// generalization of constraint classes). Requires the data types the
  /// signatures mention to have been declared by a prior run().
  GeneralizabilityResult analyzeClass(const SClassDecl &D);

  /// Converts a surface type in the current global scope (for tests).
  const core::Type *convertTypeForTest(const SType &T);

private:
  //===------------------------------------------------------------------===//
  // Scopes
  //===------------------------------------------------------------------===//

  struct TyVarScope {
    std::vector<std::pair<Symbol, const core::Kind *>> Vars;
    const core::Kind *lookup(Symbol Name) const {
      for (auto It = Vars.rbegin(); It != Vars.rend(); ++It)
        if (It->first == Name)
          return It->second;
      return nullptr;
    }
  };

  struct LocalVar {
    Symbol SurfaceName;
    Symbol CoreName;
    const core::Type *Ty;
  };

  struct Given {
    const ClassInfo *Cls;
    const core::Type *At;
    std::vector<Symbol> MethodParams;       ///< One per class method.
    std::vector<const core::Type *> MethodTys;
  };

  struct Wanted {
    const ClassInfo *Cls;
    const core::Type *At;       ///< Usually a metavariable.
    Symbol Placeholder;         ///< Core variable standing for the method.
    const core::Type *PlaceholderTy;
    Symbol Method;
    SourceLoc Loc;
  };

  //===------------------------------------------------------------------===//
  // Types and kinds
  //===------------------------------------------------------------------===//

  const core::RepTy *convertRep(const SRep &R, bool AutoBindRepVars);
  const core::Kind *convertKind(const SKind *K, bool AutoBindRepVars);
  /// Converts a type, unifying kinds as required (Section 5.2 style).
  /// \returns null on error.
  const core::Type *convertType(const SType &T);
  /// Computes the kind of a converted type with unification at
  /// applications (the inference-mode kind judgment).
  const core::Kind *kindOfUnify(const core::Type *T);

  struct SigInfo {
    std::vector<std::pair<Symbol, const core::Kind *>> Binders;
    std::vector<std::pair<const ClassInfo *, const core::Type *>>
        Constraints;
    const core::Type *Body = nullptr;
    const core::Type *FullType = nullptr; ///< Dictionary-expanded.
  };
  std::optional<SigInfo> convertSignature(const SType &T);

  /// Matches a class variable's kind against the kind of an instantiation
  /// and returns the rep substitution for the class's rep variables.
  bool matchClassReps(const ClassInfo &Cls, const core::Type *At,
                      std::unordered_map<Symbol, const core::RepTy *,
                                         SymbolHash> &Subst);
  const core::Type *methodTypeAt(const ClassInfo &Cls, int MethodIdx,
                                 const core::Type *At);

  //===------------------------------------------------------------------===//
  // Declarations
  //===------------------------------------------------------------------===//

  void installBuiltins(core::CoreProgram &P);
  void elabDataDecl(const SDataDecl &D);
  void elabClassDecl(const SClassDecl &D);
  void elabInstanceDecl(const SInstanceDecl &D, core::CoreProgram &P);
  void elabBinding(const SBindDecl &B, const SType *Sig,
                   core::CoreProgram &P);

  //===------------------------------------------------------------------===//
  // Expressions
  //===------------------------------------------------------------------===//

  struct Typed {
    const core::Expr *E = nullptr;
    const core::Type *Ty = nullptr;
    explicit operator bool() const { return E != nullptr; }
  };

  Typed inferExpr(const SExpr &E);
  Typed checkExpr(const SExpr &E, const core::Type *Expected);
  Typed inferVar(const std::string &Name, SourceLoc Loc);
  Typed instantiate(const core::Expr *E, const core::Type *Ty);
  /// Instantiates a global: peels foralls with fresh metas AND emits
  /// wanted constraints / dictionary-method arguments for the global's
  /// declared class constraints.
  Typed instantiateGlobal(Symbol Name, SourceLoc Loc);
  Typed methodUse(const ClassInfo &Cls, int MethodIdx, SourceLoc Loc);
  Typed applyOne(Typed Fn, const SExpr &Arg, SourceLoc Loc);
  Typed elabCase(const SExpr &E);
  const core::Expr *solveWanteds(const core::Expr *Body, size_t FirstWanted);

  /// Post-inference pass: set App/Let strictness bits from zonked kinds.
  void fixStrictness(core::CoreEnv &Env, const core::Expr *E);

  bool errorAt(SourceLoc Loc, DiagCode Code, std::string Msg) {
    Diags.error(Code, std::move(Msg), Loc);
    return false;
  }

  core::CoreContext &C;
  DiagnosticEngine &Diags;
  core::CoreChecker Checker;
  infer::Unifier Unify;

  TyVarScope TyVars;
  std::vector<LocalVar> Locals;
  std::vector<Given> Givens;
  std::vector<Wanted> Wanteds;

  std::vector<ClassInfo> Classes;
  std::vector<InstanceInfo> Instances;

  /// A top-level binding's elaborated type plus its surface constraints
  /// (mentioning the type's own forall binders), used to synthesize
  /// dictionary arguments at call sites.
  struct GlobalInfo {
    const core::Type *Ty = nullptr;
    std::vector<std::pair<const ClassInfo *, const core::Type *>>
        Constraints;
  };
  std::unordered_map<Symbol, GlobalInfo, SymbolHash> Globals;
  std::unordered_map<Symbol, std::pair<int, int>, SymbolHash>
      MethodIndex; ///< method name -> (class idx, method idx).
  core::TyCon *ListTC = nullptr;
  core::TyCon *PairTC = nullptr;

  /// Tolerant conversion for class-method signatures and the Section 8.1
  /// analysis: constraints inside method types are skipped (assumed to
  /// generalize simultaneously) and unbound method-local type variables
  /// are auto-bound at TYPE ν.
  bool IgnoreContexts = false;
  bool AutoBindTypeVars = false;
};

} // namespace surface
} // namespace levity

#endif // LEVITY_SURFACE_ELABORATE_H
