//===- ElaborateExpr.cpp - Expression elaboration and driver --------------===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "runtime/Samples.h"
#include "surface/Elaborate.h"

using namespace levity;
using namespace levity::surface;
using namespace levity::core;

//===----------------------------------------------------------------------===//
// Variable and operator resolution
//===----------------------------------------------------------------------===//

namespace {

/// Primops reachable from surface syntax, by name.
const std::pair<const char *, PrimOp> PrimOpTable[] = {
    {"+#", PrimOp::AddI},        {"-#", PrimOp::SubI},
    {"*#", PrimOp::MulI},        {"quotInt#", PrimOp::QuotI},
    {"remInt#", PrimOp::RemI},   {"negateInt#", PrimOp::NegI},
    {"<#", PrimOp::LtI},         {"<=#", PrimOp::LeI},
    {">#", PrimOp::GtI},         {">=#", PrimOp::GeI},
    {"==#", PrimOp::EqI},        {"/=#", PrimOp::NeI},
    {"+##", PrimOp::AddD},       {"-##", PrimOp::SubD},
    {"*##", PrimOp::MulD},       {"/##", PrimOp::DivD},
    {"negateDouble#", PrimOp::NegD}, {"<##", PrimOp::LtD},
    {"==##", PrimOp::EqD},       {"int2Double#", PrimOp::Int2Double},
    {"double2Int#", PrimOp::Double2Int}, {"isTrue#", PrimOp::IsTrue},
};

bool lookupPrimOp(const std::string &Name, PrimOp &Out) {
  for (const auto &[N, Op] : PrimOpTable)
    if (Name == N) {
      Out = Op;
      return true;
    }
  return false;
}

/// Builtin boxed operators, mapped to prelude globals.
const std::pair<const char *, const char *> BuiltinOpTable[] = {
    {"+", "plusInt"},  {"-", "minusInt"}, {"*", "timesInt"},
    {"==", "eqInt"},   {"/=", "neInt"},   {"<", "ltInt"},
    {"<=", "leInt"},   {">", "gtInt"},    {">=", "geInt"},
    {"$", "$"},        {".", "."},
};

const char *lookupBuiltinOp(const std::string &Name) {
  for (const auto &[N, G] : BuiltinOpTable)
    if (Name == N)
      return G;
  return nullptr;
}

} // namespace

Elaborator::Typed Elaborator::instantiate(const core::Expr *E,
                                          const Type *Ty) {
  Ty = C.zonkType(Ty);
  while (const auto *F = dyn_cast<ForAllType>(Ty)) {
    const Type *Arg;
    if (C.zonkKind(F->varKind())->isRep())
      Arg = C.repLiftTy(C.freshRepMeta());
    else
      Arg = C.freshTypeMeta(C.zonkKind(F->varKind()));
    E = C.tyApp(E, Arg);
    Ty = C.zonkType(substType(C, F->body(), F->var(), Arg));
  }
  return {E, Ty};
}

Elaborator::Typed Elaborator::instantiateGlobal(Symbol Name,
                                                SourceLoc Loc) {
  const GlobalInfo &Info = Globals[Name];
  const core::Expr *E = C.var(Name);
  const Type *Ty = C.zonkType(Info.Ty);

  // Peel foralls, remembering the binder instantiation.
  std::vector<std::pair<Symbol, const Type *>> Subst;
  while (const auto *F = dyn_cast<ForAllType>(Ty)) {
    const Type *Arg;
    if (C.zonkKind(F->varKind())->isRep())
      Arg = C.repLiftTy(C.freshRepMeta());
    else
      Arg = C.freshTypeMeta(C.zonkKind(F->varKind()));
    E = C.tyApp(E, Arg);
    Subst.push_back({F->var(), Arg});
    Ty = C.zonkType(substType(C, F->body(), F->var(), Arg));
  }

  // Emit wanted constraints and consume the leading dictionary-method
  // arrows, applying placeholder variables.
  for (const auto &[Cls, ConArg] : Info.Constraints) {
    const Type *At = ConArg;
    for (const auto &[Var, Arg] : Subst)
      At = substType(C, At, Var, Arg);
    for (const ClassInfo::Method &M : Cls->Methods) {
      const auto *F = dyn_cast<FunType>(C.zonkType(Ty));
      if (!F) {
        errorAt(Loc, DiagCode::Internal,
                "constraint arity mismatch instantiating '" +
                    std::string(Name.str()) + "'");
        return {};
      }
      Symbol Placeholder = C.symbols().fresh(
          "$w" + std::string(M.Name.str()));
      Wanteds.push_back({Cls, At, Placeholder, F->param(), M.Name, Loc});
      E = C.app(E, C.var(Placeholder), /*Strict=*/false);
      Ty = F->result();
    }
  }
  return {E, Ty};
}

Elaborator::Typed Elaborator::methodUse(const ClassInfo &Cls, int MethodIdx,
                                        SourceLoc Loc) {
  // Instantiate the class: fresh rep metas for class-level rep vars and
  // a fresh type meta for the class variable at the instantiated kind.
  const Kind *VarKind = Cls.VarKind;
  for (Symbol R : Cls.RepVars) {
    const RepTy *Nu = C.freshRepMeta();
    const Type *Lift = C.repLiftTy(Nu);
    // Substitute into the kind via a throwaway var type.
    const Type *Probe = C.varTy(Cls.Var, VarKind);
    Probe = substType(C, Probe, R, Lift);
    VarKind = cast<VarType>(Probe)->kind();
  }
  const Type *Alpha = C.freshTypeMeta(VarKind);
  const Type *MethodTy = methodTypeAt(Cls, MethodIdx, Alpha);
  if (!MethodTy)
    return {};
  Symbol Placeholder = C.symbols().fresh(
      "$w" + std::string(Cls.Methods[MethodIdx].Name.str()));
  Wanteds.push_back({&Cls, Alpha, Placeholder, MethodTy,
                     Cls.Methods[MethodIdx].Name, Loc});
  return {C.var(Placeholder), MethodTy};
}

Elaborator::Typed Elaborator::inferVar(const std::string &Name,
                                       SourceLoc Loc) {
  Symbol S = C.sym(Name);
  // Locals shadow everything.
  for (auto It = Locals.rbegin(); It != Locals.rend(); ++It)
    if (It->SurfaceName == S)
      return {C.var(It->CoreName), It->Ty};

  // `error` is special: a levity-polymorphic builtin (Section 4.3).
  if (Name == "error") {
    const RepTy *Nu = C.freshRepMeta();
    const Type *Alpha = C.freshTypeMeta(C.kindTYPE(Nu));
    Symbol Msg = C.symbols().fresh("msg");
    const core::Expr *E =
        C.lam(Msg, C.stringTy(), C.errorExpr(Alpha, Nu, C.var(Msg)));
    return {E, C.funTy(C.stringTy(), Alpha)};
  }

  // Class methods.
  auto MIt = MethodIndex.find(S);
  if (MIt != MethodIndex.end())
    return methodUse(Classes[MIt->second.first], MIt->second.second, Loc);

  // Globals (builtins, instance methods, user bindings).
  if (Globals.count(S))
    return instantiateGlobal(S, Loc);

  // Operator spelled as a variable: resolve builtins ((+), ($), (.)).
  PrimOp Op;
  if (lookupPrimOp(Name, Op)) {
    // η-expand the primop into a function value.
    const Type *Ty = C.primOpType(Op);
    std::vector<Symbol> Params;
    std::vector<const Type *> ParamTys;
    const Type *Walk = Ty;
    for (unsigned I = 0; I != primOpArity(Op); ++I) {
      const auto *F = cast<FunType>(Walk);
      Symbol P = C.symbols().fresh("p");
      Params.push_back(P);
      ParamTys.push_back(F->param());
      Walk = F->result();
    }
    std::vector<const core::Expr *> Args;
    for (Symbol P : Params)
      Args.push_back(C.var(P));
    const core::Expr *Body = C.primOp(Op, Args);
    for (size_t I = Params.size(); I != 0; --I)
      Body = C.lam(Params[I - 1], ParamTys[I - 1], Body);
    return {Body, Ty};
  }
  if (const char *Builtin = lookupBuiltinOp(Name)) {
    Symbol BS = C.sym(Builtin);
    if (Globals.count(BS))
      return instantiateGlobal(BS, Loc);
  }

  errorAt(Loc, DiagCode::ScopeError,
          "variable '" + Name + "' is not in scope");
  return {};
}

//===----------------------------------------------------------------------===//
// Application
//===----------------------------------------------------------------------===//

Elaborator::Typed Elaborator::applyOne(Typed Fn, const SExpr &Arg,
                                       SourceLoc Loc) {
  if (!Fn)
    return {};
  const Type *FnTy = C.zonkType(Fn.Ty);
  const FunType *F = dyn_cast<FunType>(FnTy);
  if (!F) {
    // Maybe a metavariable: refine to an arrow of fresh metas.
    if (isa<MetaType>(FnTy)) {
      const Type *P = Unify.freshOpenMeta();
      const Type *R = Unify.freshOpenMeta();
      if (!Unify.unify(FnTy, C.funTy(P, R)))
        return {};
      F = cast<FunType>(C.zonkType(FnTy));
    } else {
      errorAt(Loc, DiagCode::TypeError,
              "applying a non-function of type " + FnTy->str());
      return {};
    }
  }
  Typed A = checkExpr(Arg, F->param());
  if (!A)
    return {};
  // Provisional strictness: refined by fixStrictness once metas solve.
  bool Strict = false;
  const Kind *PK = C.zonkKind(kindOfUnify(F->param()));
  if (PK->isTypeOf()) {
    const RepTy *R = C.zonkRep(PK->rep());
    if (R->tag() == RepTy::Tag::Atom)
      Strict = R->atom() != RepCtor::Lifted;
    else if (R->tag() == RepTy::Tag::Tuple || R->tag() == RepTy::Tag::Sum)
      Strict = true;
  }
  return {C.app(Fn.E, A.E, Strict), F->result()};
}

//===----------------------------------------------------------------------===//
// Case expressions
//===----------------------------------------------------------------------===//

Elaborator::Typed Elaborator::elabCase(const SExpr &E) {
  Typed Scrut = inferExpr(*E.Scrut);
  if (!Scrut)
    return {};
  const Type *ResTy = Unify.freshOpenMeta();

  bool NeedsPrebind = false;
  bool HasBoxedIntLit = false;
  for (const SAlt &A : E.Alts) {
    if (A.Pat.T == SPattern::Tag::Var)
      NeedsPrebind = true;
    if (A.Pat.T == SPattern::Tag::IntLit)
      HasBoxedIntLit = true;
  }

  Symbol ScrutVar = C.symbols().fresh("scrut");
  const core::Expr *ScrutRef =
      NeedsPrebind || HasBoxedIntLit ? C.var(ScrutVar) : Scrut.E;

  std::vector<Alt> Alts;
  std::vector<Alt> InnerLits; // for boxed-Int literal desugaring
  const Alt *DefaultAlt = nullptr;
  std::vector<Alt> Storage;
  Storage.reserve(E.Alts.size() + 2);

  Symbol Unpacked = C.symbols().fresh("n");
  if (HasBoxedIntLit) {
    // Desugar: case s of I# n -> case n of { lits ; _ -> fallthrough }.
    if (!Unify.unify(Scrut.Ty, C.intTy()))
      return {};
  }

  for (const SAlt &A : E.Alts) {
    Alt Out;
    Out.Rhs = nullptr;
    switch (A.Pat.T) {
    case SPattern::Tag::Con: {
      const DataCon *DC = C.lookupDataCon(C.sym(A.Pat.Name));
      if (!DC) {
        errorAt(A.Pat.Loc, DiagCode::ScopeError,
                "data constructor '" + A.Pat.Name + "' is not in scope");
        return {};
      }
      // Unify scrutinee with the parent applied to fresh metas.
      std::vector<const Type *> TyArgs;
      const Type *Applied = C.conTy(const_cast<TyCon *>(DC->parent()));
      for (size_t U = 0; U != DC->univs().size(); ++U) {
        const Type *M = C.freshTypeMeta(DC->univKinds()[U]);
        TyArgs.push_back(M);
        Applied = C.appTy(Applied, M);
      }
      if (!Unify.unify(Scrut.Ty, Applied))
        return {};
      if (A.Pat.Args.size() != DC->arity()) {
        errorAt(A.Pat.Loc, DiagCode::ArityError,
                "constructor pattern arity mismatch for '" + A.Pat.Name +
                    "'");
        return {};
      }
      std::vector<Symbol> Binders;
      size_t LocalMark = Locals.size();
      for (size_t I = 0; I != A.Pat.Args.size(); ++I) {
        const Type *FieldTy = DC->fields()[I];
        for (size_t U = 0; U != DC->univs().size(); ++U)
          FieldTy = substType(C, FieldTy, DC->univs()[U], TyArgs[U]);
        Symbol B = C.symbols().fresh(
            A.Pat.Args[I] == "_" ? "wild" : A.Pat.Args[I]);
        Binders.push_back(B);
        if (A.Pat.Args[I] != "_")
          Locals.push_back({C.sym(A.Pat.Args[I]), B, FieldTy});
      }
      Typed Rhs = checkExpr(*A.Rhs, ResTy);
      Locals.resize(LocalMark);
      if (!Rhs)
        return {};
      Out.Kind = Alt::AltKind::ConPat;
      Out.Con = DC;
      Out.Binders = C.arena().copyArray(Binders);
      Out.Rhs = Rhs.E;
      Alts.push_back(Out);
      break;
    }
    case SPattern::Tag::IntHashLit: {
      if (!Unify.unify(Scrut.Ty, C.intHashTy()))
        return {};
      Typed Rhs = checkExpr(*A.Rhs, ResTy);
      if (!Rhs)
        return {};
      Out.Kind = Alt::AltKind::LitPat;
      Out.Lit = Literal::intHash(A.Pat.IntValue);
      Out.Rhs = Rhs.E;
      Alts.push_back(Out);
      break;
    }
    case SPattern::Tag::DoubleHashLit: {
      if (!Unify.unify(Scrut.Ty, C.doubleHashTy()))
        return {};
      Typed Rhs = checkExpr(*A.Rhs, ResTy);
      if (!Rhs)
        return {};
      Out.Kind = Alt::AltKind::LitPat;
      Out.Lit = Literal::doubleHash(A.Pat.DoubleValue);
      Out.Rhs = Rhs.E;
      Alts.push_back(Out);
      break;
    }
    case SPattern::Tag::IntLit: {
      Typed Rhs = checkExpr(*A.Rhs, ResTy);
      if (!Rhs)
        return {};
      Out.Kind = Alt::AltKind::LitPat;
      Out.Lit = Literal::intHash(A.Pat.IntValue);
      Out.Rhs = Rhs.E;
      InnerLits.push_back(Out);
      break;
    }
    case SPattern::Tag::UnboxedTuple: {
      std::vector<const Type *> ElemTys;
      for (size_t I = 0; I != A.Pat.Args.size(); ++I)
        ElemTys.push_back(Unify.freshOpenMeta());
      if (!Unify.unify(Scrut.Ty, C.unboxedTupleTy(ElemTys)))
        return {};
      std::vector<Symbol> Binders;
      size_t LocalMark = Locals.size();
      for (size_t I = 0; I != A.Pat.Args.size(); ++I) {
        Symbol B = C.symbols().fresh(
            A.Pat.Args[I] == "_" ? "wild" : A.Pat.Args[I]);
        Binders.push_back(B);
        if (A.Pat.Args[I] != "_")
          Locals.push_back({C.sym(A.Pat.Args[I]), B, ElemTys[I]});
      }
      Typed Rhs = checkExpr(*A.Rhs, ResTy);
      Locals.resize(LocalMark);
      if (!Rhs)
        return {};
      Out.Kind = Alt::AltKind::TuplePat;
      Out.Binders = C.arena().copyArray(Binders);
      Out.Rhs = Rhs.E;
      Alts.push_back(Out);
      break;
    }
    case SPattern::Tag::Var: {
      size_t LocalMark = Locals.size();
      Locals.push_back({C.sym(A.Pat.Name), ScrutVar, Scrut.Ty});
      Typed Rhs = checkExpr(*A.Rhs, ResTy);
      Locals.resize(LocalMark);
      if (!Rhs)
        return {};
      Out.Kind = Alt::AltKind::Default;
      Out.Rhs = Rhs.E;
      Alts.push_back(Out);
      break;
    }
    case SPattern::Tag::Wild: {
      Typed Rhs = checkExpr(*A.Rhs, ResTy);
      if (!Rhs)
        return {};
      Out.Kind = Alt::AltKind::Default;
      Out.Rhs = Rhs.E;
      Alts.push_back(Out);
      break;
    }
    }
    (void)DefaultAlt;
  }

  const core::Expr *CaseE;
  if (HasBoxedIntLit) {
    // case s of I# n -> case n of { lits; default-alts lowered }.
    // Remaining alts become the inner default.
    const core::Expr *InnerDefault = nullptr;
    for (const Alt &A : Alts)
      if (A.Kind == Alt::AltKind::Default)
        InnerDefault = A.Rhs;
    if (!InnerDefault) {
      errorAt(E.Loc, DiagCode::TypeError,
              "integer-literal patterns need a default alternative");
      return {};
    }
    std::vector<Alt> Inner = InnerLits;
    Alt Def;
    Def.Kind = Alt::AltKind::Default;
    Def.Rhs = InnerDefault;
    Inner.push_back(Def);
    const core::Expr *InnerCase =
        C.caseOf(C.var(Unpacked), ResTy, Inner);
    Alt Unbox;
    Unbox.Kind = Alt::AltKind::ConPat;
    Unbox.Con = C.iHashCon();
    Unbox.Binders = C.arena().copyArray({Unpacked});
    Unbox.Rhs = InnerCase;
    CaseE = C.caseOf(ScrutRef, ResTy, {&Unbox, 1});
  } else {
    if (Alts.empty()) {
      errorAt(E.Loc, DiagCode::TypeError, "case with no alternatives");
      return {};
    }
    CaseE = C.caseOf(ScrutRef, ResTy, Alts);
  }

  if (NeedsPrebind || HasBoxedIntLit)
    CaseE = C.let(ScrutVar, Scrut.Ty, Scrut.E, CaseE, /*Strict=*/false);
  return {CaseE, ResTy};
}

//===----------------------------------------------------------------------===//
// Main expression inference
//===----------------------------------------------------------------------===//

Elaborator::Typed Elaborator::checkExpr(const SExpr &E,
                                        const Type *Expected) {
  Typed T = inferExpr(E);
  if (!T)
    return {};
  if (!Unify.unify(T.Ty, Expected))
    return {};
  return {T.E, C.zonkType(Expected)};
}

Elaborator::Typed Elaborator::inferExpr(const SExpr &E) {
  switch (E.T) {
  case SExpr::Tag::Var:
    return inferVar(E.Name, E.Loc);
  case SExpr::Tag::Con: {
    const DataCon *DC = C.lookupDataCon(C.sym(E.Name));
    if (!DC) {
      errorAt(E.Loc, DiagCode::ScopeError,
              "data constructor '" + E.Name + "' is not in scope");
      return {};
    }
    // Instantiate universals with metas; saturate by η-expansion.
    std::vector<const Type *> TyArgs;
    const Type *ResultTy = C.conTy(const_cast<TyCon *>(DC->parent()));
    for (size_t U = 0; U != DC->univs().size(); ++U) {
      const Type *M = C.freshTypeMeta(DC->univKinds()[U]);
      TyArgs.push_back(M);
      ResultTy = C.appTy(ResultTy, M);
    }
    std::vector<const Type *> FieldTys;
    for (const Type *F : DC->fields()) {
      const Type *FT = F;
      for (size_t U = 0; U != DC->univs().size(); ++U)
        FT = substType(C, FT, DC->univs()[U], TyArgs[U]);
      FieldTys.push_back(FT);
    }
    std::vector<Symbol> Params;
    std::vector<const core::Expr *> Args;
    for (const Type *FT : FieldTys) {
      Symbol P = C.symbols().fresh("fld");
      (void)FT;
      Params.push_back(P);
      Args.push_back(C.var(P));
    }
    const core::Expr *Body = C.conApp(DC, TyArgs, Args);
    const Type *Ty = ResultTy;
    for (size_t I = Params.size(); I != 0; --I) {
      Body = C.lam(Params[I - 1], FieldTys[I - 1], Body);
      Ty = C.funTy(FieldTys[I - 1], Ty);
    }
    return {Body, Ty};
  }
  case SExpr::Tag::IntLit: {
    const core::Expr *L = C.litInt(E.IntValue);
    return {C.conApp(C.iHashCon(), {}, {&L, 1}), C.intTy()};
  }
  case SExpr::Tag::IntHashLit:
    return {C.litInt(E.IntValue), C.intHashTy()};
  case SExpr::Tag::DoubleLit: {
    const core::Expr *L = C.litDouble(E.DoubleValue);
    return {C.conApp(C.dHashCon(), {}, {&L, 1}), C.doubleTy()};
  }
  case SExpr::Tag::DoubleHashLit:
    return {C.litDouble(E.DoubleValue), C.doubleHashTy()};
  case SExpr::Tag::StringLit:
    return {C.litString(C.sym(E.StringValue)), C.stringTy()};

  case SExpr::Tag::App: {
    Typed Fn = inferExpr(*E.Fn);
    return applyOne(Fn, *E.Arg, E.Loc);
  }

  case SExpr::Tag::BinOp: {
    // Primop?
    PrimOp Op;
    if (lookupPrimOp(E.Name, Op)) {
      const Type *OpTy = C.primOpType(Op);
      const auto *F1 = cast<FunType>(OpTy);
      const auto *F2 = cast<FunType>(F1->result());
      Typed L = checkExpr(*E.Fn, F1->param());
      Typed R = checkExpr(*E.Arg, F2->param());
      if (!L || !R)
        return {};
      return {C.primOp(Op, {L.E, R.E}), F2->result()};
    }
    // Class method?
    auto MIt = MethodIndex.find(C.sym(E.Name));
    Typed Head;
    if (MIt != MethodIndex.end()) {
      Head = methodUse(Classes[MIt->second.first], MIt->second.second,
                       E.Loc);
    } else if (const char *Builtin = lookupBuiltinOp(E.Name)) {
      Symbol BS = C.sym(Builtin);
      if (!Globals.count(BS)) {
        errorAt(E.Loc, DiagCode::Internal,
                "builtin '" + std::string(Builtin) + "' missing");
        return {};
      }
      Head = instantiateGlobal(BS, E.Loc);
    } else {
      errorAt(E.Loc, DiagCode::ScopeError,
              "operator '" + E.Name + "' is not defined");
      return {};
    }
    Typed WithL = applyOne(Head, *E.Fn, E.Loc);
    return applyOne(WithL, *E.Arg, E.Loc);
  }

  case SExpr::Tag::Lam: {
    size_t LocalMark = Locals.size();
    std::vector<std::pair<Symbol, const Type *>> Params;
    for (const SBinder &B : E.Binders) {
      const Type *Ty =
          B.Ann ? convertType(*B.Ann) : Unify.freshOpenMeta();
      if (!Ty) {
        Locals.resize(LocalMark);
        return {};
      }
      Symbol CoreName =
          C.symbols().fresh(B.Name == "_" ? "wild" : B.Name);
      if (B.Name != "_")
        Locals.push_back({C.sym(B.Name), CoreName, Ty});
      Params.push_back({CoreName, Ty});
    }
    Typed Body = inferExpr(*E.Body);
    Locals.resize(LocalMark);
    if (!Body)
      return {};
    const core::Expr *Out = Body.E;
    const Type *Ty = Body.Ty;
    for (size_t I = Params.size(); I != 0; --I) {
      Out = C.lam(Params[I - 1].first, Params[I - 1].second, Out);
      Ty = C.funTy(Params[I - 1].second, Ty);
    }
    return {Out, Ty};
  }

  case SExpr::Tag::Let: {
    // Local bindings, possibly recursive (functions). Monomorphic.
    size_t LocalMark = Locals.size();
    std::vector<std::pair<Symbol, const Type *>> Assigned;
    for (const SLocalBind &B : E.Binds) {
      const Type *Ty = Unify.freshOpenMeta();
      Symbol CoreName = C.symbols().fresh(B.Name);
      Locals.push_back({C.sym(B.Name), CoreName, Ty});
      Assigned.push_back({CoreName, Ty});
    }
    std::vector<const core::Expr *> Rhss;
    for (size_t I = 0; I != E.Binds.size(); ++I) {
      const SLocalBind &B = E.Binds[I];
      size_t InnerMark = Locals.size();
      std::vector<std::pair<Symbol, const Type *>> Params;
      for (const SBinder &P : B.Params) {
        const Type *PTy =
            P.Ann ? convertType(*P.Ann) : Unify.freshOpenMeta();
        if (!PTy)
          return {};
        Symbol CoreName =
            C.symbols().fresh(P.Name == "_" ? "wild" : P.Name);
        if (P.Name != "_")
          Locals.push_back({C.sym(P.Name), CoreName, PTy});
        Params.push_back({CoreName, PTy});
      }
      Typed Rhs = inferExpr(*B.Rhs);
      Locals.resize(InnerMark);
      if (!Rhs)
        return {};
      const core::Expr *RhsE = Rhs.E;
      const Type *RhsTy = Rhs.Ty;
      for (size_t P = Params.size(); P != 0; --P) {
        RhsE = C.lam(Params[P - 1].first, Params[P - 1].second, RhsE);
        RhsTy = C.funTy(Params[P - 1].second, RhsTy);
      }
      if (!Unify.unify(Assigned[I].second, RhsTy))
        return {};
      Rhss.push_back(RhsE);
    }
    Typed Body = inferExpr(*E.Body);
    Locals.resize(LocalMark);
    if (!Body)
      return {};
    // One binding: plain let (strictness fixed later); several or
    // self-referencing functions: letrec.
    if (E.Binds.size() == 1) {
      // Conservatively use letrec only when the rhs mentions the binder.
      // (A cheap textual check on the surface tree would be fragile;
      // instead always use letrec for parameterized bindings, which are
      // functions and therefore lifted.)
      if (!E.Binds[0].Params.empty()) {
        RecBinding RB{Assigned[0].first, Assigned[0].second, Rhss[0]};
        return {C.letRec({&RB, 1}, Body.E), Body.Ty};
      }
      return {C.let(Assigned[0].first, Assigned[0].second, Rhss[0],
                    Body.E, /*Strict=*/false),
              Body.Ty};
    }
    std::vector<RecBinding> RBs;
    for (size_t I = 0; I != Rhss.size(); ++I)
      RBs.push_back({Assigned[I].first, Assigned[I].second, Rhss[I]});
    return {C.letRec(RBs, Body.E), Body.Ty};
  }

  case SExpr::Tag::If: {
    Typed Cond = checkExpr(*E.Cond, C.boolTy());
    if (!Cond)
      return {};
    const Type *ResTy = Unify.freshOpenMeta();
    Typed Then = checkExpr(*E.Then, ResTy);
    Typed Else = checkExpr(*E.Else, ResTy);
    if (!Then || !Else)
      return {};
    Alt T, F;
    T.Kind = Alt::AltKind::ConPat;
    T.Con = C.trueCon();
    T.Rhs = Then.E;
    F.Kind = Alt::AltKind::ConPat;
    F.Con = C.falseCon();
    F.Rhs = Else.E;
    Alt Alts[2] = {T, F};
    return {C.caseOf(Cond.E, ResTy, Alts), ResTy};
  }

  case SExpr::Tag::Case:
    return elabCase(E);

  case SExpr::Tag::UnboxedTuple: {
    std::vector<const core::Expr *> Elems;
    std::vector<const Type *> Tys;
    for (const SExprPtr &El : E.Elems) {
      Typed T = inferExpr(*El);
      if (!T)
        return {};
      Elems.push_back(T.E);
      Tys.push_back(T.Ty);
    }
    return {C.unboxedTuple(Elems), C.unboxedTupleTy(Tys)};
  }

  case SExpr::Tag::Ann: {
    const Type *Ty = convertType(*E.Ann_);
    if (!Ty)
      return {};
    return checkExpr(*E.Body, Ty);
  }
  }
  return {};
}

//===----------------------------------------------------------------------===//
// Constraint solving
//===----------------------------------------------------------------------===//

const core::Expr *Elaborator::solveWanteds(const core::Expr *Body,
                                           size_t FirstWanted) {
  for (size_t I = Wanteds.size(); I != FirstWanted; --I) {
    const Wanted &W = Wanteds[I - 1];
    const Type *At = C.zonkType(W.At);

    const core::Expr *Resolved = nullptr;
    // Givens first: a constraint on a rigid variable refers to the
    // enclosing signature's method parameters.
    for (const Given &G : Givens) {
      if (G.Cls != W.Cls || !typeEqual(C.zonkType(G.At), At))
        continue;
      int Idx = G.Cls->methodIndex(W.Method);
      assert(Idx >= 0);
      Resolved = C.var(G.MethodParams[Idx]);
      break;
    }
    if (!Resolved) {
      // Instance lookup by head tycon.
      const Type *Head = At;
      while (const auto *App = dyn_cast<AppType>(Head))
        Head = App->fn();
      if (const auto *Con = dyn_cast<ConType>(Head)) {
        for (const InstanceInfo &Inst : Instances) {
          if (Inst.ClassName != W.Cls->Name ||
              Inst.HeadCon != Con->tycon())
            continue;
          auto It = Inst.Impls.find(W.Method);
          if (It != Inst.Impls.end())
            Resolved = C.var(It->second);
          break;
        }
        if (!Resolved) {
          errorAt(W.Loc, DiagCode::MissingInstance,
                  "no instance " + std::string(W.Cls->Name.str()) + " " +
                      At->str() + " for method '" +
                      std::string(W.Method.str()) + "'");
          continue;
        }
      } else if (isa<MetaType>(Head)) {
        errorAt(W.Loc, DiagCode::AmbiguousType,
                "ambiguous use of method '" + std::string(W.Method.str())
                    + "': cannot determine the class instantiation");
        continue;
      } else {
        errorAt(W.Loc, DiagCode::MissingInstance,
                "no instance " + std::string(W.Cls->Name.str()) + " " +
                    At->str());
        continue;
      }
    }
    Body = C.let(W.Placeholder, C.zonkType(W.PlaceholderTy), Resolved,
                 Body, /*Strict=*/false);
  }
  Wanteds.resize(FirstWanted);
  return Body;
}

//===----------------------------------------------------------------------===//
// Strictness fix-up
//===----------------------------------------------------------------------===//

void Elaborator::fixStrictness(CoreEnv &Env, const core::Expr *E) {
  switch (E->tag()) {
  case core::Expr::Tag::Var:
  case core::Expr::Tag::Lit:
    return;
  case core::Expr::Tag::App: {
    const auto *A = cast<AppExpr>(E);
    fixStrictness(Env, A->fn());
    fixStrictness(Env, A->arg());
    Checker.setCheckStrictnessBits(false);
    Result<const Type *> ArgTy = Checker.typeOf(Env, A->arg());
    Checker.setCheckStrictnessBits(true);
    if (ArgTy) {
      CoreEnv KEnv = Env;
      Result<const Kind *> K = Checker.kindOf(KEnv, *ArgTy);
      if (K && Checker.isConcreteValueKind(*K)) {
        const RepTy *R = C.zonkRep(C.zonkKind(*K)->rep());
        bool Lifted = R->tag() == RepTy::Tag::Atom &&
                      R->atom() == RepCtor::Lifted;
        A->setStrictArg(!Lifted);
      }
    }
    return;
  }
  case core::Expr::Tag::TyApp:
    fixStrictness(Env, cast<TyAppExpr>(E)->fn());
    return;
  case core::Expr::Tag::Lam: {
    const auto *L = cast<LamExpr>(E);
    Env.pushTerm(L->var(), L->varType());
    fixStrictness(Env, L->body());
    Env.popTerm();
    return;
  }
  case core::Expr::Tag::TyLam: {
    const auto *L = cast<TyLamExpr>(E);
    Env.pushTypeVar(L->var(), L->varKind());
    fixStrictness(Env, L->body());
    Env.popTypeVar();
    return;
  }
  case core::Expr::Tag::Let: {
    const auto *L = cast<LetExpr>(E);
    fixStrictness(Env, L->rhs());
    CoreEnv KEnv = Env;
    Result<const Kind *> K = Checker.kindOf(KEnv, L->varType());
    if (K && Checker.isConcreteValueKind(*K)) {
      const RepTy *R = C.zonkRep(C.zonkKind(*K)->rep());
      bool Lifted = R->tag() == RepTy::Tag::Atom &&
                    R->atom() == RepCtor::Lifted;
      L->setStrict(!Lifted);
    }
    Env.pushTerm(L->var(), L->varType());
    fixStrictness(Env, L->body());
    Env.popTerm();
    return;
  }
  case core::Expr::Tag::LetRec: {
    const auto *L = cast<LetRecExpr>(E);
    for (const RecBinding &B : L->bindings())
      Env.pushTerm(B.Var, B.VarTy);
    for (const RecBinding &B : L->bindings())
      fixStrictness(Env, B.Rhs);
    fixStrictness(Env, L->body());
    Env.popTerms(L->bindings().size());
    return;
  }
  case core::Expr::Tag::Case: {
    const auto *Cs = cast<CaseExpr>(E);
    fixStrictness(Env, Cs->scrut());
    Checker.setCheckStrictnessBits(false);
    Result<const Type *> ScrutTy = Checker.typeOf(Env, Cs->scrut());
    Checker.setCheckStrictnessBits(true);
    for (const Alt &A : Cs->alts()) {
      size_t Pushed = 0;
      if (A.Kind == Alt::AltKind::ConPat && ScrutTy) {
        const Type *Head = C.zonkType(*ScrutTy);
        std::vector<const Type *> TyArgs;
        while (const auto *App = dyn_cast<AppType>(Head)) {
          TyArgs.insert(TyArgs.begin(), App->arg());
          Head = App->fn();
        }
        for (size_t I = 0; I != A.Binders.size(); ++I) {
          const Type *FieldTy = A.Con->fields()[I];
          for (size_t U = 0;
               U != A.Con->univs().size() && U != TyArgs.size(); ++U)
            FieldTy = substType(C, FieldTy, A.Con->univs()[U], TyArgs[U]);
          Env.pushTerm(A.Binders[I], FieldTy);
          ++Pushed;
        }
      } else if (A.Kind == Alt::AltKind::TuplePat && ScrutTy) {
        if (const auto *UT =
                dyn_cast<UnboxedTupleType>(C.zonkType(*ScrutTy))) {
          for (size_t I = 0;
               I != A.Binders.size() && I != UT->elems().size(); ++I) {
            Env.pushTerm(A.Binders[I], UT->elems()[I]);
            ++Pushed;
          }
        }
      }
      fixStrictness(Env, A.Rhs);
      Env.popTerms(Pushed);
    }
    return;
  }
  case core::Expr::Tag::Con: {
    for (const core::Expr *A : cast<ConExpr>(E)->args())
      fixStrictness(Env, A);
    return;
  }
  case core::Expr::Tag::Prim: {
    for (const core::Expr *A : cast<PrimOpExpr>(E)->args())
      fixStrictness(Env, A);
    return;
  }
  case core::Expr::Tag::UnboxedTuple: {
    for (const core::Expr *El : cast<UnboxedTupleExpr>(E)->elems())
      fixStrictness(Env, El);
    return;
  }
  case core::Expr::Tag::Error:
    fixStrictness(Env, cast<ErrorExpr>(E)->message());
    return;
  }
}
