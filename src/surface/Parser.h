//===- Parser.h - Recursive-descent parser for the surface lang -*- C++ -*-===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A recursive-descent parser for the surface language. The grammar is a
/// layout-free Haskell subset: declarations are ';'-separated, `where`
/// and `case … of` blocks are brace-delimited. Operators are parsed by
/// precedence climbing over a fixed fixity table; their *meaning* is
/// resolved by the elaborator (primop, class method, or builtin).
///
//===----------------------------------------------------------------------===//

#ifndef LEVITY_SURFACE_PARSER_H
#define LEVITY_SURFACE_PARSER_H

#include "surface/Ast.h"
#include "surface/Lexer.h"

namespace levity {
namespace surface {

/// Parses a token stream into an SModule. On error, reports to the
/// engine and attempts recovery at the next ';'.
class Parser {
public:
  Parser(std::vector<Token> Tokens, DiagnosticEngine &Diags)
      : Toks(std::move(Tokens)), Diags(Diags) {}

  SModule parseModule();

  /// Entry points used by tests and the REPL-style examples.
  STypePtr parseTypeOnly();
  SExprPtr parseExprOnly();

private:
  const Token &peek(unsigned Ahead = 0) const {
    size_t I = Pos + Ahead;
    return I < Toks.size() ? Toks[I] : Toks.back();
  }
  bool at(TokKind K) const { return peek().Kind == K; }
  bool atOp(std::string_view Text) const {
    return (peek().Kind == TokKind::Operator || peek().Kind == TokKind::Dot)
           && peek().Text == Text;
  }
  const Token &advance() { return Toks[Pos < Toks.size() - 1 ? Pos++ : Pos]; }
  bool eat(TokKind K) {
    if (!at(K))
      return false;
    advance();
    return true;
  }
  bool expect(TokKind K, std::string_view Context);
  void error(std::string Msg);
  void recoverToSemi();

  // Declarations.
  bool parseDecl(SModule &M);
  SDataDecl parseData();
  SClassDecl parseClass();
  SInstanceDecl parseInstance();
  // Signature or binding (shared prefix).
  void parseSigOrBind(SModule &M);
  SSigDecl parseSigTail(std::string Name, SourceLoc Loc);
  SBindDecl parseBindTail(std::string Name, SourceLoc Loc);

  // Types / kinds / reps.
  STypePtr parseCType(); ///< forall/context type.
  STypePtr parseType();  ///< arrows.
  STypePtr parseBType(); ///< applications.
  STypePtr parseAType(); ///< atoms.
  std::vector<STyBinder> parseTyBinders();
  std::vector<SConstraint> parseContextOpt();
  SKindPtr parseKind();
  SKindPtr parseKindAtom();
  SRep parseRep();

  // Expressions.
  SExprPtr parseExpr();
  SExprPtr parseOpExpr(int MinPrec);
  SExprPtr parseFExpr();
  SExprPtr parseAExpr();
  bool startsAExpr() const;
  SBinder parseBinder();
  SPattern parsePattern();
  SAlt parseAlt();
  std::vector<SLocalBind> parseLetBinds();

  std::vector<Token> Toks;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
};

/// Fixity of a (surface) operator; returns false for unknown operators.
bool operatorFixity(std::string_view Op, int &Prec, bool &RightAssoc);

} // namespace surface
} // namespace levity

#endif // LEVITY_SURFACE_PARSER_H
