//===- Elaborate.cpp - Surface-to-core elaboration ------------------------===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "surface/Elaborate.h"

#include <algorithm>
#include <unordered_set>

using namespace levity;
using namespace levity::surface;
using namespace levity::core;

//===----------------------------------------------------------------------===//
// Reps and kinds
//===----------------------------------------------------------------------===//

const RepTy *Elaborator::convertRep(const SRep &R, bool AutoBindRepVars) {
  switch (R.T) {
  case SRep::Tag::Named: {
    if (R.Name == "LiftedRep")
      return C.liftedRep();
    if (R.Name == "UnliftedRep")
      return C.unliftedRep();
    if (R.Name == "IntRep")
      return C.intRep();
    if (R.Name == "WordRep")
      return C.wordRep();
    if (R.Name == "FloatRep")
      return C.floatRep();
    if (R.Name == "DoubleRep")
      return C.doubleRep();
    if (R.Name == "AddrRep")
      return C.addrRep();
    errorAt(R.Loc, DiagCode::KindError,
            "unknown representation '" + R.Name + "'");
    return C.liftedRep();
  }
  case SRep::Tag::Var: {
    Symbol Name = C.sym(R.Name);
    if (TyVars.lookup(Name))
      return C.repVar(Name);
    if (AutoBindRepVars) {
      TyVars.Vars.push_back({Name, C.repKind()});
      return C.repVar(Name);
    }
    errorAt(R.Loc, DiagCode::ScopeError,
            "representation variable '" + R.Name + "' is not in scope");
    return C.liftedRep();
  }
  case SRep::Tag::Tuple: {
    std::vector<const RepTy *> Elems;
    for (const SRep &E : R.Elems)
      Elems.push_back(convertRep(E, AutoBindRepVars));
    return R.Name == "SumRep" ? C.repSum(Elems) : C.repTuple(Elems);
  }
  }
  return C.liftedRep();
}

const Kind *Elaborator::convertKind(const SKind *K, bool AutoBindRepVars) {
  if (!K)
    return C.typeKind();
  switch (K->T) {
  case SKind::Tag::Type:
    return C.typeKind();
  case SKind::Tag::Rep:
    return C.repKind();
  case SKind::Tag::TypeOf:
    return C.kindTYPE(convertRep(K->R, AutoBindRepVars));
  case SKind::Tag::Arrow:
    return C.kindArrow(convertKind(K->Param.get(), AutoBindRepVars),
                       convertKind(K->Result.get(), AutoBindRepVars));
  }
  return C.typeKind();
}

//===----------------------------------------------------------------------===//
// Kind inference over converted types (unification at applications)
//===----------------------------------------------------------------------===//

const Kind *Elaborator::kindOfUnify(const Type *T) {
  T = C.zonkType(T);
  switch (T->tag()) {
  case Type::Tag::Con:
    return cast<ConType>(T)->tycon()->kind();
  case Type::Tag::Var:
    return cast<VarType>(T)->kind();
  case Type::Tag::Meta:
    return C.typeMetaCell(cast<MetaType>(T)->id()).MetaKind;
  case Type::Tag::RepLift:
    return C.repKind();
  case Type::Tag::App: {
    const auto *A = cast<AppType>(T);
    const Kind *FnK = C.zonkKind(kindOfUnify(A->fn()));
    const Kind *ArgK = kindOfUnify(A->arg());
    if (!FnK->isArrow()) {
      Diags.error(DiagCode::KindError,
                  "cannot apply type of kind " + FnK->str());
      return C.typeKind();
    }
    // Inference-mode: *unify* the operand kind (Section 5.2's point —
    // kinds unify, they do not sub-kind).
    Unify.unifyKind(FnK->param(), ArgK);
    return FnK->result();
  }
  case Type::Tag::Fun: {
    const auto *F = cast<FunType>(T);
    const Kind *PK = C.zonkKind(kindOfUnify(F->param()));
    const Kind *RK = C.zonkKind(kindOfUnify(F->result()));
    // Both operands must classify values, at any rep ((->)'s new kind).
    if (!PK->isTypeOf() || !RK->isTypeOf())
      Diags.error(DiagCode::KindError,
                  "function type operands must classify values");
    return C.typeKind();
  }
  case Type::Tag::ForAll: {
    const auto *F = cast<ForAllType>(T);
    return kindOfUnify(F->body());
  }
  case Type::Tag::UnboxedTuple: {
    const auto *U = cast<UnboxedTupleType>(T);
    std::vector<const RepTy *> Reps;
    for (const Type *E : U->elems()) {
      const Kind *K = C.zonkKind(kindOfUnify(E));
      if (!K->isTypeOf()) {
        Diags.error(DiagCode::KindError,
                    "unboxed tuple field must classify values");
        Reps.push_back(C.liftedRep());
        continue;
      }
      Reps.push_back(K->rep());
    }
    return C.kindTYPE(C.repTuple(Reps));
  }
  }
  return C.typeKind();
}

//===----------------------------------------------------------------------===//
// Type conversion
//===----------------------------------------------------------------------===//

namespace {

/// Collects names used as rep variables anywhere below \p T (to give
/// un-annotated forall binders like `forall r.` the kind Rep when they
/// are used as reps).
void collectRepVarUses(const SType &T,
                       std::unordered_set<std::string> &Out);

void collectRepVarUsesRep(const SRep &R,
                          std::unordered_set<std::string> &Out) {
  if (R.T == SRep::Tag::Var)
    Out.insert(R.Name);
  for (const SRep &E : R.Elems)
    collectRepVarUsesRep(E, Out);
}

void collectRepVarUsesKind(const SKind *K,
                           std::unordered_set<std::string> &Out) {
  if (!K)
    return;
  if (K->T == SKind::Tag::TypeOf)
    collectRepVarUsesRep(K->R, Out);
  collectRepVarUsesKind(K->Param.get(), Out);
  collectRepVarUsesKind(K->Result.get(), Out);
}

void collectRepVarUses(const SType &T,
                       std::unordered_set<std::string> &Out) {
  switch (T.T) {
  case SType::Tag::Con:
  case SType::Tag::Var:
    return;
  case SType::Tag::App:
  case SType::Tag::Fun:
  case SType::Tag::Tuple2:
    if (T.Fn)
      collectRepVarUses(*T.Fn, Out);
    if (T.Arg)
      collectRepVarUses(*T.Arg, Out);
    return;
  case SType::Tag::ForAll:
    for (const STyBinder &B : T.Binders)
      collectRepVarUsesKind(B.Kind.get(), Out);
    for (const SConstraint &Ct : T.Context)
      if (Ct.Arg)
        collectRepVarUses(*Ct.Arg, Out);
    if (T.Body)
      collectRepVarUses(*T.Body, Out);
    return;
  case SType::Tag::List:
    if (T.Body)
      collectRepVarUses(*T.Body, Out);
    return;
  case SType::Tag::UnboxedTuple:
    for (const STypePtr &E : T.Elems)
      if (E)
        collectRepVarUses(*E, Out);
    return;
  }
}

} // namespace

const Type *Elaborator::convertType(const SType &T) {
  switch (T.T) {
  case SType::Tag::Con: {
    Symbol Name = C.sym(T.Name);
    if (TyCon *TC = C.lookupTyCon(Name))
      return C.conTy(TC);
    errorAt(T.Loc, DiagCode::ScopeError,
            "type constructor '" + T.Name + "' is not in scope");
    return nullptr;
  }
  case SType::Tag::Var: {
    Symbol Name = C.sym(T.Name);
    if (const Kind *K = TyVars.lookup(Name))
      return C.varTy(Name, K);
    if (AutoBindTypeVars) {
      const Kind *K = C.kindTYPE(C.freshRepMeta());
      TyVars.Vars.push_back({Name, K});
      return C.varTy(Name, K);
    }
    errorAt(T.Loc, DiagCode::ScopeError,
            "type variable '" + T.Name + "' is not in scope");
    return nullptr;
  }
  case SType::Tag::App: {
    const Type *Fn = convertType(*T.Fn);
    const Type *Arg = convertType(*T.Arg);
    if (!Fn || !Arg)
      return nullptr;
    const Type *App = C.appTy(Fn, Arg);
    kindOfUnify(App); // unify operand kinds
    return App;
  }
  case SType::Tag::Fun: {
    const Type *P = convertType(*T.Fn);
    const Type *R = convertType(*T.Arg);
    if (!P || !R)
      return nullptr;
    const Type *F = C.funTy(P, R);
    kindOfUnify(F);
    return F;
  }
  case SType::Tag::List: {
    const Type *E = convertType(*T.Body);
    if (!E)
      return nullptr;
    const Type *App = C.appTy(C.conTy(ListTC), E);
    kindOfUnify(App);
    return App;
  }
  case SType::Tag::Tuple2: {
    const Type *A = convertType(*T.Fn);
    const Type *B = convertType(*T.Arg);
    if (!A || !B)
      return nullptr;
    const Type *App = C.appTy(C.appTy(C.conTy(PairTC), A), B);
    kindOfUnify(App);
    return App;
  }
  case SType::Tag::UnboxedTuple: {
    std::vector<const Type *> Elems;
    for (const STypePtr &E : T.Elems) {
      const Type *CE = convertType(*E);
      if (!CE)
        return nullptr;
      Elems.push_back(CE);
    }
    return C.unboxedTupleTy(Elems);
  }
  case SType::Tag::ForAll: {
    // Nested foralls in argument positions are beyond this fragment;
    // convertSignature handles the top-level one. Treat inner foralls
    // structurally (no constraints).
    std::unordered_set<std::string> RepUses;
    collectRepVarUses(T, RepUses);
    size_t Mark = TyVars.Vars.size();
    std::vector<std::pair<Symbol, const Kind *>> Bs;
    for (const STyBinder &B : T.Binders) {
      const Kind *K = B.Kind ? convertKind(B.Kind.get(), false)
                             : (RepUses.count(B.Name) ? C.repKind()
                                                      : C.typeKind());
      Symbol Name = C.sym(B.Name);
      TyVars.Vars.push_back({Name, K});
      Bs.push_back({Name, K});
    }
    if (!T.Context.empty() && !IgnoreContexts)
      errorAt(T.Loc, DiagCode::TypeError,
              "constraints are only supported on top-level signatures");
    const Type *Body = T.Body ? convertType(*T.Body) : nullptr;
    TyVars.Vars.resize(Mark);
    if (!Body)
      return nullptr;
    for (size_t I = Bs.size(); I != 0; --I)
      Body = C.forAllTy(Bs[I - 1].first, Bs[I - 1].second, Body);
    return Body;
  }
  }
  return nullptr;
}

const Type *Elaborator::convertTypeForTest(const SType &T) {
  return convertType(T);
}

std::optional<Elaborator::SigInfo>
Elaborator::convertSignature(const SType &T) {
  SigInfo Info;
  const SType *Body = &T;
  size_t Mark = TyVars.Vars.size();

  std::unordered_set<std::string> RepUses;
  collectRepVarUses(T, RepUses);

  const std::vector<STyBinder> *Binders = nullptr;
  const std::vector<SConstraint> *Ctx = nullptr;
  if (T.T == SType::Tag::ForAll) {
    Binders = &T.Binders;
    Ctx = &T.Context;
    Body = T.Body.get();
  }

  if (Binders) {
    for (const STyBinder &B : *Binders) {
      const Kind *K = B.Kind ? convertKind(B.Kind.get(), false)
                             : (RepUses.count(B.Name) ? C.repKind()
                                                      : C.typeKind());
      Symbol Name = C.sym(B.Name);
      TyVars.Vars.push_back({Name, K});
      Info.Binders.push_back({Name, K});
    }
  }

  // Implicit quantification: free lowercase type variables not already
  // in scope become ∀-bound at kind Type (the levity-monomorphic
  // default; declared levity polymorphism needs explicit binders).
  {
    std::vector<std::string> Implicit;
    std::function<void(const SType &)> Scan = [&](const SType &S) {
      switch (S.T) {
      case SType::Tag::Var:
        if (!TyVars.lookup(C.sym(S.Name)) &&
            std::find(Implicit.begin(), Implicit.end(), S.Name) ==
                Implicit.end())
          Implicit.push_back(S.Name);
        return;
      case SType::Tag::Con:
        return;
      case SType::Tag::App:
      case SType::Tag::Fun:
      case SType::Tag::Tuple2:
        if (S.Fn)
          Scan(*S.Fn);
        if (S.Arg)
          Scan(*S.Arg);
        return;
      case SType::Tag::List:
        if (S.Body)
          Scan(*S.Body);
        return;
      case SType::Tag::UnboxedTuple:
        for (const STypePtr &E : S.Elems)
          if (E)
            Scan(*E);
        return;
      case SType::Tag::ForAll: {
        // Inner binders shadow; conservatively skip their names.
        for (const STyBinder &B : S.Binders)
          (void)B;
        if (S.Body)
          Scan(*S.Body);
        return;
      }
      }
    };
    if (Body)
      Scan(*Body);
    if (Ctx)
      for (const SConstraint &Con : *Ctx)
        if (Con.Arg)
          Scan(*Con.Arg);
    for (const std::string &Name : Implicit) {
      Symbol S = C.sym(Name);
      TyVars.Vars.push_back({S, C.typeKind()});
      Info.Binders.push_back({S, C.typeKind()});
    }
  }

  if (Ctx) {
    for (const SConstraint &Con : *Ctx) {
      const ClassInfo *Cls = nullptr;
      for (const ClassInfo &CI : Classes)
        if (CI.Name == C.sym(Con.ClassName))
          Cls = &CI;
      if (!Cls) {
        errorAt(Con.Loc, DiagCode::ScopeError,
                "class '" + Con.ClassName + "' is not in scope");
        TyVars.Vars.resize(Mark);
        return std::nullopt;
      }
      const Type *Arg = convertType(*Con.Arg);
      if (!Arg) {
        TyVars.Vars.resize(Mark);
        return std::nullopt;
      }
      Info.Constraints.push_back({Cls, Arg});
    }
  }

  Info.Body = Body ? convertType(*Body) : nullptr;
  TyVars.Vars.resize(Mark);
  if (!Info.Body)
    return std::nullopt;

  // The dictionary-expanded core type: constraints become one function
  // parameter per class method (unpacked dictionaries, Section 7.3).
  const Type *Full = Info.Body;
  for (size_t I = Info.Constraints.size(); I != 0; --I) {
    const auto &[Cls, At] = Info.Constraints[I - 1];
    for (size_t M = Cls->Methods.size(); M != 0; --M) {
      const Type *MT = methodTypeAt(*Cls, int(M - 1), At);
      if (!MT)
        return std::nullopt;
      Full = C.funTy(MT, Full);
    }
  }
  for (size_t I = Info.Binders.size(); I != 0; --I)
    Full = C.forAllTy(Info.Binders[I - 1].first,
                      Info.Binders[I - 1].second, Full);
  Info.FullType = Full;
  return Info;
}

//===----------------------------------------------------------------------===//
// Class instantiation helpers
//===----------------------------------------------------------------------===//

namespace {

bool matchRepAgainst(const RepTy *Pattern, const RepTy *Actual,
                     std::unordered_map<Symbol, const RepTy *, SymbolHash>
                         &Subst) {
  switch (Pattern->tag()) {
  case RepTy::Tag::Var: {
    auto It = Subst.find(Pattern->varName());
    if (It != Subst.end())
      return repEqual(It->second, Actual);
    Subst[Pattern->varName()] = Actual;
    return true;
  }
  case RepTy::Tag::Atom:
    return Actual->tag() == RepTy::Tag::Atom &&
           Actual->atom() == Pattern->atom();
  case RepTy::Tag::Meta:
    return false;
  case RepTy::Tag::Tuple:
  case RepTy::Tag::Sum: {
    if (Actual->tag() != Pattern->tag() ||
        Actual->elems().size() != Pattern->elems().size())
      return false;
    for (size_t I = 0; I != Pattern->elems().size(); ++I)
      if (!matchRepAgainst(Pattern->elems()[I], Actual->elems()[I], Subst))
        return false;
    return true;
  }
  }
  return false;
}

} // namespace

bool Elaborator::matchClassReps(
    const ClassInfo &Cls, const Type *At,
    std::unordered_map<Symbol, const RepTy *, SymbolHash> &Subst) {
  const Kind *AtKind = C.zonkKind(kindOfUnify(At));
  const Kind *VarKind = C.zonkKind(Cls.VarKind);
  if (!VarKind->isTypeOf() || !AtKind->isTypeOf())
    return kindEqual(VarKind, AtKind);
  return matchRepAgainst(VarKind->rep(), C.zonkRep(AtKind->rep()), Subst);
}

const Type *Elaborator::methodTypeAt(const ClassInfo &Cls, int MethodIdx,
                                     const Type *At) {
  std::unordered_map<Symbol, const RepTy *, SymbolHash> Subst;
  if (!matchClassReps(Cls, At, Subst)) {
    Diags.error(DiagCode::KindError,
                "constraint argument " + At->str() +
                    " does not fit the kind of class variable of " +
                    std::string(Cls.Name.str()));
    return nullptr;
  }
  const Type *Sig = Cls.Methods[MethodIdx].Sig;
  // Substitute the rep variables first (they occur in the class var's
  // kind inside Sig), then the class variable itself.
  for (const auto &[RepVar, Rep] : Subst)
    Sig = substType(C, Sig, RepVar, C.repLiftTy(Rep));
  Sig = substType(C, Sig, Cls.Var, At);
  return Sig;
}

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

void Elaborator::elabDataDecl(const SDataDecl &D) {
  Symbol Name = C.sym(D.Name);
  if (C.lookupTyCon(Name)) {
    errorAt(D.Loc, DiagCode::DuplicateDefinition,
            "type '" + D.Name + "' is already defined");
    return;
  }
  size_t Mark = TyVars.Vars.size();
  std::vector<Symbol> Params;
  std::vector<const Kind *> ParamKinds;
  const Kind *K = C.typeKind();
  for (size_t I = D.Params.size(); I != 0; --I) {
    const Kind *PK = convertKind(D.Params[I - 1].Kind.get(), false);
    K = C.kindArrow(PK, K);
  }
  for (const STyBinder &B : D.Params) {
    Symbol P = C.sym(B.Name);
    const Kind *PK = convertKind(B.Kind.get(), false);
    Params.push_back(P);
    ParamKinds.push_back(PK);
    TyVars.Vars.push_back({P, PK});
  }
  TyCon *TC = C.makeTyCon(Name, K, C.liftedRep());
  for (const SConDecl &Con : D.Cons) {
    std::vector<const Type *> Fields;
    bool Ok = true;
    for (const STypePtr &F : Con.Fields) {
      const Type *FT = convertType(*F);
      if (!FT) {
        Ok = false;
        break;
      }
      Fields.push_back(FT);
    }
    if (!Ok)
      continue;
    C.makeDataCon(C.sym(Con.Name), TC, Params, ParamKinds, Fields);
  }
  TyVars.Vars.resize(Mark);
}

void Elaborator::elabClassDecl(const SClassDecl &D) {
  ClassInfo Info;
  Info.Name = C.sym(D.Name);
  Info.Var = C.sym(D.Var.Name.empty() ? "a" : D.Var.Name);

  size_t Mark = TyVars.Vars.size();
  // The class variable's kind may introduce class-level rep variables:
  // class Num (a :: TYPE r).
  size_t Before = TyVars.Vars.size();
  Info.VarKind = convertKind(D.Var.Kind.get(), /*AutoBindRepVars=*/true);
  for (size_t I = Before; I != TyVars.Vars.size(); ++I)
    Info.RepVars.push_back(TyVars.Vars[I].first);

  TyVars.Vars.push_back({Info.Var, Info.VarKind});
  // Method signatures may have their own (simple) foralls, method-local
  // type variables, and contexts we record-and-skip.
  IgnoreContexts = true;
  AutoBindTypeVars = true;
  for (const SSigDecl &M : D.Methods) {
    const Type *Sig = nullptr;
    if (M.Ty) {
      Sig = convertType(*M.Ty);
    }
    if (!Sig) {
      errorAt(M.Loc, DiagCode::TypeError,
              "cannot elaborate method signature for '" + M.Name + "'");
      continue;
    }
    Info.Methods.push_back({C.sym(M.Name), Sig});
  }
  IgnoreContexts = false;
  AutoBindTypeVars = false;
  TyVars.Vars.resize(Mark);

  for (const ClassInfo &Existing : Classes)
    if (Existing.Name == Info.Name) {
      errorAt(D.Loc, DiagCode::DuplicateDefinition,
              "class '" + D.Name + "' is already defined");
      return;
    }
  Classes.push_back(std::move(Info));
  int ClsIdx = int(Classes.size() - 1);
  for (size_t M = 0; M != Classes.back().Methods.size(); ++M)
    MethodIndex[Classes.back().Methods[M].Name] = {ClsIdx, int(M)};
}

void Elaborator::elabInstanceDecl(const SInstanceDecl &D, CoreProgram &P) {
  const ClassInfo *Cls = nullptr;
  for (const ClassInfo &CI : Classes)
    if (CI.Name == C.sym(D.ClassName))
      Cls = &CI;
  if (!Cls) {
    errorAt(D.Loc, DiagCode::ScopeError,
            "class '" + D.ClassName + "' is not in scope");
    return;
  }
  const Type *Head = D.Head ? convertType(*D.Head) : nullptr;
  if (!Head)
    return;
  const auto *HeadCon = dyn_cast<ConType>(C.zonkType(Head));
  if (!HeadCon) {
    errorAt(D.Loc, DiagCode::TypeError,
            "instance heads must be bare type constructors");
    return;
  }

  InstanceInfo Inst;
  Inst.ClassName = Cls->Name;
  Inst.HeadCon = HeadCon->tycon();
  Inst.HeadTy = Head;

  for (const SBindDecl &M : D.Methods) {
    int Idx = Cls->methodIndex(C.sym(M.Name));
    if (Idx < 0) {
      errorAt(M.Loc, DiagCode::ScopeError,
              "'" + M.Name + "' is not a method of class " + D.ClassName);
      continue;
    }
    const Type *Expected = methodTypeAt(*Cls, Idx, Head);
    if (!Expected)
      continue;

    // Elaborate like a signature-checked binding at the monomorphic
    // expected type.
    std::string GlobalName = "$c" + M.Name + "_" +
                             std::string(HeadCon->tycon()->name().str());
    Symbol Global = C.sym(GlobalName);

    size_t WantedMark = Wanteds.size();
    size_t LocalMark = Locals.size();
    const Type *Remaining = Expected;
    std::vector<std::pair<Symbol, const Type *>> Params;
    bool Ok = true;
    for (const SBinder &B : M.Params) {
      const auto *F = dyn_cast<FunType>(C.zonkType(Remaining));
      if (!F) {
        errorAt(B.Loc, DiagCode::ArityError,
                "too many parameters for method '" + M.Name + "'");
        Ok = false;
        break;
      }
      Symbol CoreName = C.symbols().fresh(B.Name == "_" ? "wild" : B.Name);
      Locals.push_back({C.sym(B.Name), CoreName, F->param()});
      Params.push_back({CoreName, F->param()});
      Remaining = F->result();
    }
    if (!Ok) {
      Locals.resize(LocalMark);
      continue;
    }
    Typed Rhs = checkExpr(*M.Rhs, Remaining);
    Locals.resize(LocalMark);
    if (!Rhs)
      continue;
    const core::Expr *Body = solveWanteds(Rhs.E, WantedMark);
    for (size_t I = Params.size(); I != 0; --I)
      Body = C.lam(Params[I - 1].first, Params[I - 1].second, Body);

    Globals[Global] = {Expected, {}};
    P.Bindings.push_back({Global, Expected, Body});
    Inst.Impls[C.sym(M.Name)] = Global;
  }

  // Every class method must be implemented.
  for (const ClassInfo::Method &M : Cls->Methods)
    if (!Inst.Impls.count(M.Name))
      errorAt(D.Loc, DiagCode::MissingInstance,
              "instance " + D.ClassName + " " +
                  std::string(HeadCon->tycon()->name().str()) +
                  " does not define method '" + std::string(M.Name.str())
                  + "'");

  Instances.push_back(std::move(Inst));
}
