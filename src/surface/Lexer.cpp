//===- Lexer.cpp - Tokens for the surface language ------------------------===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "surface/Lexer.h"

#include <cctype>

using namespace levity;
using namespace levity::surface;

std::string_view surface::tokKindName(TokKind K) {
  switch (K) {
  case TokKind::Eof: return "end of input";
  case TokKind::VarId: return "identifier";
  case TokKind::ConId: return "constructor name";
  case TokKind::Operator: return "operator";
  case TokKind::IntLit: return "integer literal";
  case TokKind::IntHashLit: return "unboxed integer literal";
  case TokKind::DoubleLit: return "floating literal";
  case TokKind::DoubleHashLit: return "unboxed floating literal";
  case TokKind::StringLit: return "string literal";
  case TokKind::KwData: return "'data'";
  case TokKind::KwClass: return "'class'";
  case TokKind::KwInstance: return "'instance'";
  case TokKind::KwWhere: return "'where'";
  case TokKind::KwLet: return "'let'";
  case TokKind::KwIn: return "'in'";
  case TokKind::KwCase: return "'case'";
  case TokKind::KwOf: return "'of'";
  case TokKind::KwIf: return "'if'";
  case TokKind::KwThen: return "'then'";
  case TokKind::KwElse: return "'else'";
  case TokKind::KwForall: return "'forall'";
  case TokKind::LParen: return "'('";
  case TokKind::RParen: return "')'";
  case TokKind::LHashParen: return "'(#'";
  case TokKind::RHashParen: return "'#)'";
  case TokKind::LBrace: return "'{'";
  case TokKind::RBrace: return "'}'";
  case TokKind::LBracket: return "'['";
  case TokKind::RBracket: return "']'";
  case TokKind::Semi: return "';'";
  case TokKind::Comma: return "','";
  case TokKind::Backslash: return "'\\'";
  case TokKind::Arrow: return "'->'";
  case TokKind::DArrow: return "'=>'";
  case TokKind::DColon: return "'::'";
  case TokKind::Equals: return "'='";
  case TokKind::Pipe: return "'|'";
  case TokKind::Dot: return "'.'";
  case TokKind::Underscore: return "'_'";
  case TokKind::Tick: return "'''";
  }
  return "?";
}

char Lexer::advance() {
  char C = Src[Pos++];
  if (C == '\n') {
    ++Line;
    Col = 1;
  } else {
    ++Col;
  }
  return C;
}

void Lexer::skipWhitespaceAndComments() {
  for (;;) {
    if (atEnd())
      return;
    char C = peek();
    if (C == ' ' || C == '\t' || C == '\n' || C == '\r') {
      advance();
      continue;
    }
    // Line comments: -- to end of line.
    if (C == '-' && peek(1) == '-') {
      while (!atEnd() && peek() != '\n')
        advance();
      continue;
    }
    // Block comments: {- ... -} (nested).
    if (C == '{' && peek(1) == '-') {
      advance();
      advance();
      unsigned Depth = 1;
      while (!atEnd() && Depth != 0) {
        if (peek() == '{' && peek(1) == '-') {
          advance();
          advance();
          ++Depth;
        } else if (peek() == '-' && peek(1) == '}') {
          advance();
          advance();
          --Depth;
        } else {
          advance();
        }
      }
      continue;
    }
    return;
  }
}

Token Lexer::make(TokKind K, std::string Text) {
  Token T;
  T.Kind = K;
  T.Text = std::move(Text);
  T.Loc = here();
  return T;
}

std::vector<Token> Lexer::lexAll() {
  std::vector<Token> Out;
  for (;;) {
    skipWhitespaceAndComments();
    if (atEnd()) {
      Out.push_back(make(TokKind::Eof));
      return Out;
    }
    Out.push_back(lexToken());
  }
}

Token Lexer::lexToken() {
  char C = peek();
  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_')
    return identifierOrKeyword();
  if (std::isdigit(static_cast<unsigned char>(C)))
    return number();
  if (C == '"')
    return stringLiteral();

  SourceLoc Loc = here();
  auto Punct = [&](TokKind K, unsigned Len, const char *Text) {
    Token T = make(K, Text);
    T.Loc = Loc;
    for (unsigned I = 0; I != Len; ++I)
      advance();
    return T;
  };

  if (C == '(' && peek(1) == '#' && peek(2) != ')')
    return Punct(TokKind::LHashParen, 2, "(#");
  if (C == '#' && peek(1) == ')')
    return Punct(TokKind::RHashParen, 2, "#)");
  if (C == '(')
    return Punct(TokKind::LParen, 1, "(");
  if (C == ')')
    return Punct(TokKind::RParen, 1, ")");
  if (C == '{')
    return Punct(TokKind::LBrace, 1, "{");
  if (C == '}')
    return Punct(TokKind::RBrace, 1, "}");
  if (C == '[')
    return Punct(TokKind::LBracket, 1, "[");
  if (C == ']')
    return Punct(TokKind::RBracket, 1, "]");
  if (C == ';')
    return Punct(TokKind::Semi, 1, ";");
  if (C == ',')
    return Punct(TokKind::Comma, 1, ",");
  if (C == '\\')
    return Punct(TokKind::Backslash, 1, "\\");
  if (C == '\'')
    return Punct(TokKind::Tick, 1, "'");
  if (C == '_' || std::ispunct(static_cast<unsigned char>(C)))
    return operatorToken();

  Diags.error(DiagCode::LexError,
              std::string("unexpected character '") + C + "'", here());
  advance();
  return make(TokKind::Eof);
}

Token Lexer::identifierOrKeyword() {
  SourceLoc Loc = here();
  std::string Name;
  while (!atEnd() &&
         (std::isalnum(static_cast<unsigned char>(peek())) ||
          peek() == '_' || peek() == '\''))
    Name += advance();
  // Magic hash suffixes: Int#, sumTo#. Maximal munch: `x#)` is `x#` `)`,
  // so unboxed tuple closers need a space, as in GHC.
  while (!atEnd() && peek() == '#')
    Name += advance();

  Token T = make(TokKind::Eof, Name);
  T.Loc = Loc;
  if (Name == "data")
    T.Kind = TokKind::KwData;
  else if (Name == "class")
    T.Kind = TokKind::KwClass;
  else if (Name == "instance")
    T.Kind = TokKind::KwInstance;
  else if (Name == "where")
    T.Kind = TokKind::KwWhere;
  else if (Name == "let")
    T.Kind = TokKind::KwLet;
  else if (Name == "in")
    T.Kind = TokKind::KwIn;
  else if (Name == "case")
    T.Kind = TokKind::KwCase;
  else if (Name == "of")
    T.Kind = TokKind::KwOf;
  else if (Name == "if")
    T.Kind = TokKind::KwIf;
  else if (Name == "then")
    T.Kind = TokKind::KwThen;
  else if (Name == "else")
    T.Kind = TokKind::KwElse;
  else if (Name == "forall")
    T.Kind = TokKind::KwForall;
  else if (Name == "_")
    T.Kind = TokKind::Underscore;
  else if (std::isupper(static_cast<unsigned char>(Name[0])))
    T.Kind = TokKind::ConId;
  else
    T.Kind = TokKind::VarId;
  return T;
}

Token Lexer::number() {
  SourceLoc Loc = here();
  std::string Digits;
  while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek())))
    Digits += advance();
  bool IsDouble = false;
  if (!atEnd() && peek() == '.' &&
      std::isdigit(static_cast<unsigned char>(peek(1)))) {
    IsDouble = true;
    Digits += advance();
    while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek())))
      Digits += advance();
  }
  // Hash suffixes: # for Int#, ## for Double#. Maximal munch (`1#)` is
  // `1#` `)`).
  unsigned Hashes = 0;
  while (!atEnd() && peek() == '#' && Hashes < 2) {
    advance();
    ++Hashes;
  }

  Token T = make(TokKind::Eof, Digits);
  T.Loc = Loc;
  if (IsDouble || Hashes == 2) {
    T.DoubleValue = std::stod(Digits);
    T.Kind = Hashes >= 1 ? TokKind::DoubleHashLit : TokKind::DoubleLit;
  } else {
    T.IntValue = std::stoll(Digits);
    T.Kind = Hashes == 1 ? TokKind::IntHashLit : TokKind::IntLit;
  }
  return T;
}

Token Lexer::stringLiteral() {
  SourceLoc Loc = here();
  advance(); // opening quote
  std::string Value;
  while (!atEnd() && peek() != '"') {
    char C = advance();
    if (C == '\\' && !atEnd()) {
      char E = advance();
      switch (E) {
      case 'n': Value += '\n'; break;
      case 't': Value += '\t'; break;
      case '\\': Value += '\\'; break;
      case '"': Value += '"'; break;
      default: Value += E; break;
      }
      continue;
    }
    Value += C;
  }
  if (atEnd())
    Diags.error(DiagCode::LexError, "unterminated string literal", Loc);
  else
    advance(); // closing quote
  Token T = make(TokKind::StringLit, Value);
  T.Loc = Loc;
  return T;
}

Token Lexer::operatorToken() {
  SourceLoc Loc = here();
  auto IsOpChar = [](char C) {
    switch (C) {
    case '+': case '-': case '*': case '/': case '<': case '>':
    case '=': case '$': case '.': case '|': case ':': case '#':
    case '&': case '!': case '@': case '~': case '^': case '%':
      return true;
    default:
      return false;
    }
  };
  std::string Op;
  while (!atEnd() && IsOpChar(peek())) {
    // Stop before '#)' so unboxed tuple closers lex correctly.
    if (peek() == '#' && peek(1) == ')')
      break;
    Op += advance();
  }
  Token T = make(TokKind::Operator, Op);
  T.Loc = Loc;
  if (Op == "->")
    T.Kind = TokKind::Arrow;
  else if (Op == "=>")
    T.Kind = TokKind::DArrow;
  else if (Op == "::")
    T.Kind = TokKind::DColon;
  else if (Op == "=")
    T.Kind = TokKind::Equals;
  else if (Op == "|")
    T.Kind = TokKind::Pipe;
  else if (Op == ".")
    T.Kind = TokKind::Dot;
  else if (Op.empty()) {
    Diags.error(DiagCode::LexError, "stray punctuation", Loc);
    advance();
    T.Kind = TokKind::Eof;
  }
  return T;
}
