//===- Ast.h - Surface-language abstract syntax -----------------*- C++ -*-===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parse trees for the surface language (a curly-brace Haskell subset
/// with the paper's unboxed/levity extensions). Surface nodes are plain
/// owned structs — they live only as long as the elaboration that
/// consumes them.
///
//===----------------------------------------------------------------------===//

#ifndef LEVITY_SURFACE_AST_H
#define LEVITY_SURFACE_AST_H

#include "support/Diagnostics.h"

#include <memory>
#include <string>
#include <vector>

namespace levity {
namespace surface {

//===----------------------------------------------------------------------===//
// Kinds and reps (surface syntax)
//===----------------------------------------------------------------------===//

struct SKind;
using SKindPtr = std::unique_ptr<SKind>;

/// Surface rep syntax: a named rep constructor (IntRep, ...), a rep
/// variable, or TupleRep [...].
struct SRep {
  enum class Tag { Named, Var, Tuple } T = Tag::Named;
  std::string Name;                ///< Named / Var.
  std::vector<SRep> Elems;         ///< Tuple.
  SourceLoc Loc;
};

/// Surface kind syntax.
struct SKind {
  enum class Tag {
    Type,   ///< Type (= TYPE LiftedRep)
    Rep,    ///< Rep
    TypeOf, ///< TYPE ρ
    Arrow   ///< κ₁ -> κ₂
  } T = Tag::Type;
  SRep R;           ///< TypeOf.
  SKindPtr Param;   ///< Arrow.
  SKindPtr Result;  ///< Arrow.
  SourceLoc Loc;
};

//===----------------------------------------------------------------------===//
// Types
//===----------------------------------------------------------------------===//

struct SType;
using STypePtr = std::unique_ptr<SType>;

/// One quantified binder: `a` or `(a :: kind)`.
struct STyBinder {
  std::string Name;
  SKindPtr Kind; ///< null = infer (defaults to Type, or Rep by context).
  SourceLoc Loc;
};

/// One constraint, e.g. `Num a`.
struct SConstraint {
  std::string ClassName;
  STypePtr Arg;
  SourceLoc Loc;
};

struct SType {
  enum class Tag {
    Con,          ///< A type constructor name.
    Var,          ///< A type variable name.
    App,          ///< τ₁ τ₂.
    Fun,          ///< τ₁ -> τ₂.
    ForAll,       ///< forall b₁ … bₙ. [ctx =>] τ.
    UnboxedTuple, ///< (# τ, …, τ #).
    List,         ///< [τ] (sugar for List τ).
    Tuple2        ///< (τ, τ) (sugar for Pair τ τ).
  } T = Tag::Con;

  std::string Name;                     ///< Con / Var.
  STypePtr Fn, Arg;                     ///< App / Fun(param,result) / Tuple2.
  std::vector<STyBinder> Binders;       ///< ForAll.
  std::vector<SConstraint> Context;     ///< ForAll (may be empty).
  STypePtr Body;                        ///< ForAll / List element.
  std::vector<STypePtr> Elems;          ///< UnboxedTuple.
  SourceLoc Loc;
};

//===----------------------------------------------------------------------===//
// Patterns and expressions
//===----------------------------------------------------------------------===//

struct SExpr;
using SExprPtr = std::unique_ptr<SExpr>;

/// Case-alternative patterns (binder patterns in lambdas/equations are
/// plain variables, possibly annotated).
struct SPattern {
  enum class Tag {
    Var,         ///< x
    Wild,        ///< _
    Con,         ///< K x₁ … xₙ
    IntHashLit,  ///< 42#
    DoubleHashLit, ///< 3.14##
    IntLit,      ///< 42 (matches boxed I# 42#)
    UnboxedTuple ///< (# x₁, …, xₙ #)
  } T = Tag::Wild;

  std::string Name;                ///< Var / Con (constructor name).
  std::vector<std::string> Args;   ///< Con / UnboxedTuple binders.
  int64_t IntValue = 0;
  double DoubleValue = 0;
  SourceLoc Loc;
};

/// A lambda/equation binder: `x` or `(x :: τ)` or `_`.
struct SBinder {
  std::string Name; ///< "_" for wildcards.
  STypePtr Ann;     ///< Optional annotation.
  SourceLoc Loc;
};

struct SAlt {
  SPattern Pat;
  SExprPtr Rhs;
};

struct SLocalBind {
  std::string Name;
  std::vector<SBinder> Params;
  SExprPtr Rhs;
  STypePtr Sig; ///< Optional `x :: τ` preceding the binding.
  SourceLoc Loc;
};

struct SExpr {
  enum class Tag {
    Var,          ///< x or (+) or a class method or a constructor? no: Con.
    Con,          ///< Constructor use.
    IntLit, IntHashLit, DoubleLit, DoubleHashLit, StringLit,
    App,          ///< e₁ e₂.
    BinOp,        ///< e₁ ⊕ e₂ (resolved by the elaborator).
    Lam,          ///< \b₁ … bₙ -> e.
    Let,          ///< let binds in e.
    If,           ///< if c then t else e.
    Case,         ///< case e of { alts }.
    UnboxedTuple, ///< (# e, …, e #).
    Ann           ///< (e :: τ).
  } T = Tag::Var;

  std::string Name;                 ///< Var / Con / BinOp operator.
  int64_t IntValue = 0;
  double DoubleValue = 0;
  std::string StringValue;
  SExprPtr Fn, Arg;                 ///< App / BinOp operands.
  std::vector<SBinder> Binders;     ///< Lam.
  SExprPtr Body;                    ///< Lam / Let / Ann subject.
  std::vector<SLocalBind> Binds;    ///< Let.
  SExprPtr Cond, Then, Else;        ///< If.
  SExprPtr Scrut;                   ///< Case.
  std::vector<SAlt> Alts;           ///< Case.
  std::vector<SExprPtr> Elems;      ///< UnboxedTuple.
  STypePtr Ann_;                    ///< Ann.
  SourceLoc Loc;
};

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

struct SConDecl {
  std::string Name;
  std::vector<STypePtr> Fields;
  SourceLoc Loc;
};

struct SDataDecl {
  std::string Name;
  std::vector<STyBinder> Params;
  std::vector<SConDecl> Cons; ///< Empty = abstract/opaque type.
  SourceLoc Loc;
};

struct SSigDecl {
  std::string Name; ///< Plain or operator name (as written in parens).
  STypePtr Ty;
  SourceLoc Loc;
};

struct SBindDecl {
  std::string Name;
  std::vector<SBinder> Params;
  SExprPtr Rhs;
  SourceLoc Loc;
};

struct SClassDecl {
  std::string Name;
  STyBinder Var;                       ///< The (single) class variable.
  std::vector<SConstraint> Supers;     ///< Superclass context (recorded).
  std::vector<SSigDecl> Methods;
  SourceLoc Loc;
};

struct SInstanceDecl {
  std::string ClassName;
  STypePtr Head;
  std::vector<SBindDecl> Methods;
  SourceLoc Loc;
};

struct SDecl {
  enum class Tag { Data, Class, Instance, Sig, Bind } T = Tag::Bind;
  SDataDecl Data;
  SClassDecl Class;
  SInstanceDecl Instance;
  SSigDecl Sig;
  SBindDecl Bind;
};

struct SModule {
  std::vector<SDecl> Decls;
};

} // namespace surface
} // namespace levity

#endif // LEVITY_SURFACE_AST_H
