//===- Parser.cpp - Recursive-descent parser for the surface lang ---------===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "surface/Parser.h"

using namespace levity;
using namespace levity::surface;

bool surface::operatorFixity(std::string_view Op, int &Prec,
                             bool &RightAssoc) {
  RightAssoc = false;
  if (Op == "$") {
    Prec = 0;
    RightAssoc = true;
    return true;
  }
  if (Op == "==" || Op == "/=" || Op == "<" || Op == "<=" || Op == ">" ||
      Op == ">=" || Op == "==#" || Op == "/=#" || Op == "<#" ||
      Op == "<=#" || Op == ">#" || Op == ">=#" || Op == "==##" ||
      Op == "<##") {
    Prec = 4;
    return true;
  }
  if (Op == "+" || Op == "-" || Op == "+#" || Op == "-#" || Op == "+##" ||
      Op == "-##") {
    Prec = 6;
    return true;
  }
  if (Op == "*" || Op == "*#" || Op == "*##" || Op == "/##") {
    Prec = 7;
    return true;
  }
  if (Op == ".") {
    Prec = 9;
    RightAssoc = true;
    return true;
  }
  return false;
}

void Parser::error(std::string Msg) {
  Diags.error(DiagCode::ParseError, std::move(Msg), peek().Loc);
}

bool Parser::expect(TokKind K, std::string_view Context) {
  if (eat(K))
    return true;
  error("expected " + std::string(tokKindName(K)) + " " +
        std::string(Context) + ", found " +
        std::string(tokKindName(peek().Kind)) +
        (peek().Text.empty() ? "" : " '" + peek().Text + "'"));
  return false;
}

void Parser::recoverToSemi() {
  while (!at(TokKind::Eof) && !at(TokKind::Semi))
    advance();
  eat(TokKind::Semi);
}

SModule Parser::parseModule() {
  SModule M;
  while (!at(TokKind::Eof)) {
    if (eat(TokKind::Semi))
      continue;
    size_t Before = Diags.numErrors();
    if (!parseDecl(M) || Diags.numErrors() != Before)
      recoverToSemi();
  }
  return M;
}

STypePtr Parser::parseTypeOnly() { return parseCType(); }
SExprPtr Parser::parseExprOnly() { return parseExpr(); }

bool Parser::parseDecl(SModule &M) {
  switch (peek().Kind) {
  case TokKind::KwData: {
    SDecl D;
    D.T = SDecl::Tag::Data;
    D.Data = parseData();
    M.Decls.push_back(std::move(D));
    return true;
  }
  case TokKind::KwClass: {
    SDecl D;
    D.T = SDecl::Tag::Class;
    D.Class = parseClass();
    M.Decls.push_back(std::move(D));
    return true;
  }
  case TokKind::KwInstance: {
    SDecl D;
    D.T = SDecl::Tag::Instance;
    D.Instance = parseInstance();
    M.Decls.push_back(std::move(D));
    return true;
  }
  case TokKind::VarId:
  case TokKind::LParen:
    parseSigOrBind(M);
    return true;
  default:
    error("expected a declaration");
    return false;
  }
}

SDataDecl Parser::parseData() {
  SDataDecl D;
  D.Loc = peek().Loc;
  advance(); // data
  if (at(TokKind::ConId)) {
    D.Name = peek().Text;
    advance();
  } else {
    expect(TokKind::ConId, "after 'data'");
  }
  D.Params = parseTyBinders();
  if (!eat(TokKind::Equals))
    return D; // abstract type: data IO a
  do {
    SConDecl Con;
    Con.Loc = peek().Loc;
    if (at(TokKind::ConId)) {
      Con.Name = peek().Text;
      advance();
    } else {
      expect(TokKind::ConId, "in constructor declaration");
      break;
    }
    while (!at(TokKind::Pipe) && !at(TokKind::Semi) && !at(TokKind::Eof))
      Con.Fields.push_back(parseAType());
    D.Cons.push_back(std::move(Con));
  } while (eat(TokKind::Pipe));
  return D;
}

std::vector<STyBinder> Parser::parseTyBinders() {
  std::vector<STyBinder> Out;
  for (;;) {
    if (at(TokKind::VarId)) {
      STyBinder B;
      B.Name = peek().Text;
      B.Loc = peek().Loc;
      advance();
      Out.push_back(std::move(B));
      continue;
    }
    if (at(TokKind::LParen) && peek(1).Kind == TokKind::VarId &&
        peek(2).Kind == TokKind::DColon) {
      advance(); // (
      STyBinder B;
      B.Name = peek().Text;
      B.Loc = peek().Loc;
      advance();
      advance(); // ::
      B.Kind = parseKind();
      expect(TokKind::RParen, "after kinded binder");
      Out.push_back(std::move(B));
      continue;
    }
    return Out;
  }
}

std::vector<SConstraint> Parser::parseContextOpt() {
  // Lookahead-with-rollback: try to parse `ctx =>`; rollback otherwise.
  // Diagnostics emitted during speculation are rolled back too.
  size_t Save = Pos;
  size_t DiagMark = Diags.size();
  std::vector<SConstraint> Ctx;
  auto ParseOne = [&]() -> bool {
    if (!at(TokKind::ConId))
      return false;
    SConstraint C;
    C.ClassName = peek().Text;
    C.Loc = peek().Loc;
    advance();
    C.Arg = parseAType();
    if (!C.Arg)
      return false;
    Ctx.push_back(std::move(C));
    return true;
  };

  if (at(TokKind::LParen)) {
    advance();
    if (!ParseOne()) {
      Pos = Save;
      Diags.truncate(DiagMark);
      return {};
    }
    while (eat(TokKind::Comma))
      if (!ParseOne()) {
        Pos = Save;
        Diags.truncate(DiagMark);
        return {};
      }
    if (!eat(TokKind::RParen) || !eat(TokKind::DArrow)) {
      Pos = Save;
      Diags.truncate(DiagMark);
      return {};
    }
    return Ctx;
  }
  if (!ParseOne()) {
    Pos = Save;
    Diags.truncate(DiagMark);
    return {};
  }
  if (!eat(TokKind::DArrow)) {
    Pos = Save;
    Diags.truncate(DiagMark);
    return {};
  }
  return Ctx;
}

SClassDecl Parser::parseClass() {
  SClassDecl D;
  D.Loc = peek().Loc;
  advance(); // class
  D.Supers = parseContextOpt();
  if (at(TokKind::ConId)) {
    D.Name = peek().Text;
    advance();
  } else {
    expect(TokKind::ConId, "after 'class'");
  }
  std::vector<STyBinder> Vars = parseTyBinders();
  if (Vars.size() != 1)
    error("classes take exactly one type variable");
  if (!Vars.empty())
    D.Var = std::move(Vars[0]);
  expect(TokKind::KwWhere, "in class declaration");
  expect(TokKind::LBrace, "to open the class body");
  while (!at(TokKind::RBrace) && !at(TokKind::Eof)) {
    if (eat(TokKind::Semi))
      continue;
    // Method signature: name (or (op)) :: type.
    std::string Name;
    SourceLoc Loc = peek().Loc;
    if (at(TokKind::VarId)) {
      Name = peek().Text;
      advance();
    } else if (at(TokKind::LParen) &&
               (peek(1).Kind == TokKind::Operator ||
                peek(1).Kind == TokKind::Dot) &&
               peek(2).Kind == TokKind::RParen) {
      advance();
      Name = peek().Text;
      advance();
      advance();
    } else {
      error("expected a method signature");
      break;
    }
    if (!expect(TokKind::DColon, "in method signature"))
      break;
    SSigDecl Sig;
    Sig.Name = std::move(Name);
    Sig.Loc = Loc;
    Sig.Ty = parseCType();
    D.Methods.push_back(std::move(Sig));
  }
  expect(TokKind::RBrace, "to close the class body");
  return D;
}

SInstanceDecl Parser::parseInstance() {
  SInstanceDecl D;
  D.Loc = peek().Loc;
  advance(); // instance
  if (at(TokKind::ConId)) {
    D.ClassName = peek().Text;
    advance();
  } else {
    expect(TokKind::ConId, "after 'instance'");
  }
  D.Head = parseAType();
  expect(TokKind::KwWhere, "in instance declaration");
  expect(TokKind::LBrace, "to open the instance body");
  while (!at(TokKind::RBrace) && !at(TokKind::Eof)) {
    if (eat(TokKind::Semi))
      continue;
    std::string Name;
    SourceLoc Loc = peek().Loc;
    if (at(TokKind::VarId)) {
      Name = peek().Text;
      advance();
    } else if (at(TokKind::LParen) &&
               (peek(1).Kind == TokKind::Operator ||
                peek(1).Kind == TokKind::Dot) &&
               peek(2).Kind == TokKind::RParen) {
      advance();
      Name = peek().Text;
      advance();
      advance();
    } else {
      error("expected a method binding");
      break;
    }
    D.Methods.push_back(parseBindTail(std::move(Name), Loc));
  }
  expect(TokKind::RBrace, "to close the instance body");
  return D;
}

void Parser::parseSigOrBind(SModule &M) {
  std::string Name;
  SourceLoc Loc = peek().Loc;
  if (at(TokKind::VarId)) {
    Name = peek().Text;
    advance();
  } else if (at(TokKind::LParen) &&
             (peek(1).Kind == TokKind::Operator ||
              peek(1).Kind == TokKind::Dot) &&
             peek(2).Kind == TokKind::RParen) {
    advance();
    Name = peek().Text;
    advance();
    advance();
  } else {
    error("expected a top-level signature or binding");
    recoverToSemi();
    return;
  }

  if (at(TokKind::DColon)) {
    advance();
    SDecl D;
    D.T = SDecl::Tag::Sig;
    D.Sig = parseSigTail(std::move(Name), Loc);
    M.Decls.push_back(std::move(D));
    return;
  }
  SDecl D;
  D.T = SDecl::Tag::Bind;
  D.Bind = parseBindTail(std::move(Name), Loc);
  M.Decls.push_back(std::move(D));
}

SSigDecl Parser::parseSigTail(std::string Name, SourceLoc Loc) {
  SSigDecl Sig;
  Sig.Name = std::move(Name);
  Sig.Loc = Loc;
  Sig.Ty = parseCType();
  return Sig;
}

SBindDecl Parser::parseBindTail(std::string Name, SourceLoc Loc) {
  SBindDecl B;
  B.Name = std::move(Name);
  B.Loc = Loc;
  while (!at(TokKind::Equals) && !at(TokKind::Eof) && !at(TokKind::Semi))
    B.Params.push_back(parseBinder());
  expect(TokKind::Equals, "in binding");
  B.Rhs = parseExpr();
  return B;
}

//===----------------------------------------------------------------------===//
// Types, kinds, reps
//===----------------------------------------------------------------------===//

STypePtr Parser::parseCType() {
  if (at(TokKind::KwForall)) {
    SourceLoc Loc = peek().Loc;
    advance();
    auto T = std::make_unique<SType>();
    T->T = SType::Tag::ForAll;
    T->Loc = Loc;
    T->Binders = parseTyBinders();
    expect(TokKind::Dot, "after forall binders");
    T->Context = parseContextOpt();
    T->Body = parseType();
    return T;
  }
  std::vector<SConstraint> Ctx = parseContextOpt();
  if (!Ctx.empty()) {
    auto T = std::make_unique<SType>();
    T->T = SType::Tag::ForAll;
    T->Loc = peek().Loc;
    T->Context = std::move(Ctx);
    T->Body = parseType();
    return T;
  }
  return parseType();
}

STypePtr Parser::parseType() {
  STypePtr Lhs = parseBType();
  if (at(TokKind::Arrow)) {
    advance();
    auto T = std::make_unique<SType>();
    T->T = SType::Tag::Fun;
    T->Loc = Lhs ? Lhs->Loc : peek().Loc;
    T->Fn = std::move(Lhs);
    T->Arg = parseType();
    return T;
  }
  return Lhs;
}

STypePtr Parser::parseBType() {
  STypePtr T = parseAType();
  if (!T)
    return T;
  for (;;) {
    switch (peek().Kind) {
    case TokKind::ConId:
    case TokKind::VarId:
    case TokKind::LParen:
    case TokKind::LHashParen:
    case TokKind::LBracket: {
      auto App = std::make_unique<SType>();
      App->T = SType::Tag::App;
      App->Loc = T->Loc;
      App->Fn = std::move(T);
      App->Arg = parseAType();
      T = std::move(App);
      break;
    }
    default:
      return T;
    }
  }
}

STypePtr Parser::parseAType() {
  SourceLoc Loc = peek().Loc;
  if (at(TokKind::ConId)) {
    auto T = std::make_unique<SType>();
    T->T = SType::Tag::Con;
    T->Name = peek().Text;
    T->Loc = Loc;
    advance();
    return T;
  }
  if (at(TokKind::VarId)) {
    auto T = std::make_unique<SType>();
    T->T = SType::Tag::Var;
    T->Name = peek().Text;
    T->Loc = Loc;
    advance();
    return T;
  }
  if (at(TokKind::LBracket)) {
    advance();
    auto T = std::make_unique<SType>();
    T->T = SType::Tag::List;
    T->Loc = Loc;
    T->Body = parseCType();
    expect(TokKind::RBracket, "to close list type");
    return T;
  }
  if (at(TokKind::LHashParen)) {
    advance();
    auto T = std::make_unique<SType>();
    T->T = SType::Tag::UnboxedTuple;
    T->Loc = Loc;
    if (!at(TokKind::RHashParen)) {
      T->Elems.push_back(parseCType());
      while (eat(TokKind::Comma))
        T->Elems.push_back(parseCType());
    }
    expect(TokKind::RHashParen, "to close unboxed tuple type");
    return T;
  }
  if (at(TokKind::LParen)) {
    advance();
    STypePtr Inner = parseCType();
    if (eat(TokKind::Comma)) {
      auto T = std::make_unique<SType>();
      T->T = SType::Tag::Tuple2;
      T->Loc = Loc;
      T->Fn = std::move(Inner);
      T->Arg = parseCType();
      expect(TokKind::RParen, "to close tuple type");
      return T;
    }
    expect(TokKind::RParen, "to close parenthesized type");
    return Inner;
  }
  error("expected a type");
  return nullptr;
}

SKindPtr Parser::parseKind() {
  SKindPtr K = parseKindAtom();
  if (at(TokKind::Arrow)) {
    advance();
    auto A = std::make_unique<SKind>();
    A->T = SKind::Tag::Arrow;
    A->Loc = K ? K->Loc : peek().Loc;
    A->Param = std::move(K);
    A->Result = parseKind();
    return A;
  }
  return K;
}

SKindPtr Parser::parseKindAtom() {
  SourceLoc Loc = peek().Loc;
  if (at(TokKind::ConId)) {
    std::string Name = peek().Text;
    if (Name == "Type") {
      advance();
      auto K = std::make_unique<SKind>();
      K->T = SKind::Tag::Type;
      K->Loc = Loc;
      return K;
    }
    if (Name == "Rep") {
      advance();
      auto K = std::make_unique<SKind>();
      K->T = SKind::Tag::Rep;
      K->Loc = Loc;
      return K;
    }
    if (Name == "TYPE") {
      advance();
      auto K = std::make_unique<SKind>();
      K->T = SKind::Tag::TypeOf;
      K->Loc = Loc;
      K->R = parseRep();
      return K;
    }
    error("unknown kind '" + Name + "'");
    advance();
    return nullptr;
  }
  if (at(TokKind::LParen)) {
    advance();
    SKindPtr K = parseKind();
    expect(TokKind::RParen, "to close kind");
    return K;
  }
  error("expected a kind");
  return nullptr;
}

SRep Parser::parseRep() {
  SRep R;
  R.Loc = peek().Loc;
  eat(TokKind::Tick); // optional promotion quote
  if (at(TokKind::ConId)) {
    std::string Name = peek().Text;
    if (Name == "TupleRep" || Name == "SumRep") {
      advance();
      R.T = SRep::Tag::Tuple;
      R.Name = Name;
      eat(TokKind::Tick);
      expect(TokKind::LBracket, "after TupleRep");
      if (!at(TokKind::RBracket)) {
        R.Elems.push_back(parseRep());
        while (eat(TokKind::Comma))
          R.Elems.push_back(parseRep());
      }
      expect(TokKind::RBracket, "to close rep list");
      return R;
    }
    R.T = SRep::Tag::Named;
    R.Name = Name;
    advance();
    return R;
  }
  if (at(TokKind::VarId)) {
    R.T = SRep::Tag::Var;
    R.Name = peek().Text;
    advance();
    return R;
  }
  if (at(TokKind::LParen)) {
    advance();
    SRep Inner = parseRep();
    expect(TokKind::RParen, "to close rep");
    return Inner;
  }
  error("expected a runtime representation");
  return R;
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

SExprPtr Parser::parseExpr() {
  switch (peek().Kind) {
  case TokKind::Backslash: {
    SourceLoc Loc = peek().Loc;
    advance();
    auto E = std::make_unique<SExpr>();
    E->T = SExpr::Tag::Lam;
    E->Loc = Loc;
    while (!at(TokKind::Arrow) && !at(TokKind::Eof))
      E->Binders.push_back(parseBinder());
    expect(TokKind::Arrow, "in lambda");
    E->Body = parseExpr();
    return E;
  }
  case TokKind::KwLet: {
    SourceLoc Loc = peek().Loc;
    advance();
    auto E = std::make_unique<SExpr>();
    E->T = SExpr::Tag::Let;
    E->Loc = Loc;
    E->Binds = parseLetBinds();
    expect(TokKind::KwIn, "after let bindings");
    E->Body = parseExpr();
    return E;
  }
  case TokKind::KwIf: {
    SourceLoc Loc = peek().Loc;
    advance();
    auto E = std::make_unique<SExpr>();
    E->T = SExpr::Tag::If;
    E->Loc = Loc;
    E->Cond = parseExpr();
    expect(TokKind::KwThen, "in conditional");
    E->Then = parseExpr();
    expect(TokKind::KwElse, "in conditional");
    E->Else = parseExpr();
    return E;
  }
  case TokKind::KwCase: {
    SourceLoc Loc = peek().Loc;
    advance();
    auto E = std::make_unique<SExpr>();
    E->T = SExpr::Tag::Case;
    E->Loc = Loc;
    E->Scrut = parseExpr();
    expect(TokKind::KwOf, "in case expression");
    expect(TokKind::LBrace, "to open case alternatives");
    while (!at(TokKind::RBrace) && !at(TokKind::Eof)) {
      if (eat(TokKind::Semi))
        continue;
      E->Alts.push_back(parseAlt());
    }
    expect(TokKind::RBrace, "to close case alternatives");
    return E;
  }
  default:
    return parseOpExpr(0);
  }
}

SExprPtr Parser::parseOpExpr(int MinPrec) {
  SExprPtr Lhs = parseFExpr();
  for (;;) {
    if (peek().Kind != TokKind::Operator && peek().Kind != TokKind::Dot)
      return Lhs;
    int Prec;
    bool Right;
    if (!operatorFixity(peek().Text, Prec, Right)) {
      error("unknown operator '" + peek().Text + "'");
      advance();
      continue;
    }
    if (Prec < MinPrec)
      return Lhs;
    std::string Op = peek().Text;
    SourceLoc Loc = peek().Loc;
    advance();
    SExprPtr Rhs = parseOpExpr(Right ? Prec : Prec + 1);
    auto E = std::make_unique<SExpr>();
    E->T = SExpr::Tag::BinOp;
    E->Name = std::move(Op);
    E->Loc = Loc;
    E->Fn = std::move(Lhs);
    E->Arg = std::move(Rhs);
    Lhs = std::move(E);
  }
}

bool Parser::startsAExpr() const {
  switch (peek().Kind) {
  case TokKind::VarId:
  case TokKind::ConId:
  case TokKind::IntLit:
  case TokKind::IntHashLit:
  case TokKind::DoubleLit:
  case TokKind::DoubleHashLit:
  case TokKind::StringLit:
  case TokKind::LParen:
  case TokKind::LHashParen:
    return true;
  default:
    return false;
  }
}

SExprPtr Parser::parseFExpr() {
  SExprPtr E = parseAExpr();
  if (!E)
    return E;
  while (startsAExpr()) {
    auto App = std::make_unique<SExpr>();
    App->T = SExpr::Tag::App;
    App->Loc = E->Loc;
    App->Fn = std::move(E);
    App->Arg = parseAExpr();
    E = std::move(App);
  }
  return E;
}

SExprPtr Parser::parseAExpr() {
  SourceLoc Loc = peek().Loc;
  auto Mk = [&](SExpr::Tag T) {
    auto E = std::make_unique<SExpr>();
    E->T = T;
    E->Loc = Loc;
    return E;
  };

  switch (peek().Kind) {
  case TokKind::VarId: {
    auto E = Mk(SExpr::Tag::Var);
    E->Name = peek().Text;
    advance();
    return E;
  }
  case TokKind::ConId: {
    auto E = Mk(SExpr::Tag::Con);
    E->Name = peek().Text;
    advance();
    return E;
  }
  case TokKind::IntLit: {
    auto E = Mk(SExpr::Tag::IntLit);
    E->IntValue = peek().IntValue;
    advance();
    return E;
  }
  case TokKind::IntHashLit: {
    auto E = Mk(SExpr::Tag::IntHashLit);
    E->IntValue = peek().IntValue;
    advance();
    return E;
  }
  case TokKind::DoubleLit: {
    auto E = Mk(SExpr::Tag::DoubleLit);
    E->DoubleValue = peek().DoubleValue;
    advance();
    return E;
  }
  case TokKind::DoubleHashLit: {
    auto E = Mk(SExpr::Tag::DoubleHashLit);
    E->DoubleValue = peek().DoubleValue;
    advance();
    return E;
  }
  case TokKind::StringLit: {
    auto E = Mk(SExpr::Tag::StringLit);
    E->StringValue = peek().Text;
    advance();
    return E;
  }
  case TokKind::LHashParen: {
    advance();
    auto E = Mk(SExpr::Tag::UnboxedTuple);
    if (!at(TokKind::RHashParen)) {
      E->Elems.push_back(parseExpr());
      while (eat(TokKind::Comma))
        E->Elems.push_back(parseExpr());
    }
    expect(TokKind::RHashParen, "to close unboxed tuple");
    return E;
  }
  case TokKind::LParen: {
    advance();
    // Operator-as-variable: (+), (+#), (.), ($).
    if ((peek().Kind == TokKind::Operator || peek().Kind == TokKind::Dot) &&
        peek(1).Kind == TokKind::RParen) {
      auto E = Mk(SExpr::Tag::Var);
      E->Name = peek().Text;
      advance();
      advance();
      return E;
    }
    SExprPtr Inner = parseExpr();
    if (eat(TokKind::DColon)) {
      auto E = Mk(SExpr::Tag::Ann);
      E->Body = std::move(Inner);
      E->Ann_ = parseCType();
      expect(TokKind::RParen, "to close annotation");
      return E;
    }
    expect(TokKind::RParen, "to close parenthesized expression");
    return Inner;
  }
  default:
    error("expected an expression");
    advance();
    return nullptr;
  }
}

SBinder Parser::parseBinder() {
  SBinder B;
  B.Loc = peek().Loc;
  if (at(TokKind::VarId)) {
    B.Name = peek().Text;
    advance();
    return B;
  }
  if (at(TokKind::Underscore)) {
    B.Name = "_";
    advance();
    return B;
  }
  if (at(TokKind::LParen)) {
    advance();
    if (at(TokKind::VarId)) {
      B.Name = peek().Text;
      advance();
    } else if (at(TokKind::Underscore)) {
      B.Name = "_";
      advance();
    } else {
      error("expected a binder");
    }
    if (eat(TokKind::DColon))
      B.Ann = parseCType();
    expect(TokKind::RParen, "to close annotated binder");
    return B;
  }
  error("expected a binder");
  advance();
  return B;
}

SPattern Parser::parsePattern() {
  SPattern P;
  P.Loc = peek().Loc;
  switch (peek().Kind) {
  case TokKind::ConId: {
    P.T = SPattern::Tag::Con;
    P.Name = peek().Text;
    advance();
    while (at(TokKind::VarId) || at(TokKind::Underscore)) {
      P.Args.push_back(at(TokKind::Underscore) ? "_" : peek().Text);
      advance();
    }
    return P;
  }
  case TokKind::IntHashLit:
    P.T = SPattern::Tag::IntHashLit;
    P.IntValue = peek().IntValue;
    advance();
    return P;
  case TokKind::DoubleHashLit:
    P.T = SPattern::Tag::DoubleHashLit;
    P.DoubleValue = peek().DoubleValue;
    advance();
    return P;
  case TokKind::IntLit:
    P.T = SPattern::Tag::IntLit;
    P.IntValue = peek().IntValue;
    advance();
    return P;
  case TokKind::VarId:
    P.T = SPattern::Tag::Var;
    P.Name = peek().Text;
    advance();
    return P;
  case TokKind::Underscore:
    P.T = SPattern::Tag::Wild;
    advance();
    return P;
  case TokKind::LHashParen: {
    advance();
    P.T = SPattern::Tag::UnboxedTuple;
    if (!at(TokKind::RHashParen)) {
      do {
        if (at(TokKind::VarId)) {
          P.Args.push_back(peek().Text);
          advance();
        } else if (at(TokKind::Underscore)) {
          P.Args.push_back("_");
          advance();
        } else {
          error("expected a variable in unboxed tuple pattern");
          break;
        }
      } while (eat(TokKind::Comma));
    }
    expect(TokKind::RHashParen, "to close unboxed tuple pattern");
    return P;
  }
  default:
    error("expected a pattern");
    advance();
    return P;
  }
}

SAlt Parser::parseAlt() {
  SAlt A;
  A.Pat = parsePattern();
  expect(TokKind::Arrow, "in case alternative");
  A.Rhs = parseExpr();
  return A;
}

std::vector<SLocalBind> Parser::parseLetBinds() {
  std::vector<SLocalBind> Out;
  bool Braced = eat(TokKind::LBrace);
  do {
    if (Braced && at(TokKind::RBrace))
      break;
    if (eat(TokKind::Semi))
      continue;
    SLocalBind B;
    B.Loc = peek().Loc;
    if (at(TokKind::VarId)) {
      B.Name = peek().Text;
      advance();
    } else {
      error("expected a let binding");
      break;
    }
    while (!at(TokKind::Equals) && !at(TokKind::Eof))
      B.Params.push_back(parseBinder());
    expect(TokKind::Equals, "in let binding");
    B.Rhs = parseExpr();
    Out.push_back(std::move(B));
  } while (Braced && (at(TokKind::Semi) || !at(TokKind::RBrace)));
  if (Braced)
    expect(TokKind::RBrace, "to close let bindings");
  return Out;
}

