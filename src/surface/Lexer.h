//===- Lexer.h - Tokens for the surface language ----------------*- C++ -*-===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lexer for the surface language: a curly-brace, semicolon-separated
/// Haskell subset (no layout rule) with the paper's unboxed extensions:
/// magic-hash literals (42#, 3.14##), hash-suffixed names (Int#, sumTo#,
/// +#), unboxed tuples ((# … #)), and kind syntax (Type, Rep, TYPE ρ).
///
//===----------------------------------------------------------------------===//

#ifndef LEVITY_SURFACE_LEXER_H
#define LEVITY_SURFACE_LEXER_H

#include "support/Diagnostics.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace levity {
namespace surface {

enum class TokKind : uint8_t {
  Eof,
  VarId,      ///< lowercase identifier (may end in #).
  ConId,      ///< Uppercase identifier (may end in #).
  Operator,   ///< symbolic operator (+, +#, ==##, $, ., ...).
  IntLit,     ///< 42 (boxed).
  IntHashLit, ///< 42# (unboxed).
  DoubleLit,  ///< 3.14 (boxed).
  DoubleHashLit, ///< 3.14## (unboxed).
  StringLit,  ///< "...".
  // Keywords.
  KwData, KwClass, KwInstance, KwWhere, KwLet, KwIn, KwCase, KwOf, KwIf,
  KwThen, KwElse, KwForall,
  // Punctuation.
  LParen, RParen, LHashParen, RHashParen, // ( ) (# #)
  LBrace, RBrace, LBracket, RBracket,
  Semi, Comma, Backslash, Arrow, DArrow, DColon, Equals, Pipe, Dot,
  Underscore, Tick // ' (promotion quote)
};

struct Token {
  TokKind Kind = TokKind::Eof;
  std::string Text;   ///< Identifier/operator spelling or literal text.
  int64_t IntValue = 0;
  double DoubleValue = 0;
  SourceLoc Loc;
};

std::string_view tokKindName(TokKind K);

/// Tokenizes a whole buffer. Errors are reported to the engine; lexing
/// continues after an error so several problems surface at once.
class Lexer {
public:
  Lexer(std::string_view Source, DiagnosticEngine &Diags)
      : Src(Source), Diags(Diags) {}

  /// Lexes everything, ending with an Eof token.
  std::vector<Token> lexAll();

private:
  bool atEnd() const { return Pos >= Src.size(); }
  char peek(size_t Ahead = 0) const {
    return Pos + Ahead < Src.size() ? Src[Pos + Ahead] : '\0';
  }
  char advance();
  void skipWhitespaceAndComments();
  Token lexToken();
  Token identifierOrKeyword();
  Token number();
  Token stringLiteral();
  Token operatorToken();
  Token make(TokKind K, std::string Text = "");
  SourceLoc here() const { return {Line, Col}; }

  std::string_view Src;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  uint32_t Line = 1, Col = 1;
};

} // namespace surface
} // namespace levity

#endif // LEVITY_SURFACE_LEXER_H
