//===- ElaborateDriver.cpp - Module driver, builtins, analysis ------------===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "runtime/Samples.h"
#include "surface/Elaborate.h"

using namespace levity;
using namespace levity::surface;
using namespace levity::core;

//===----------------------------------------------------------------------===//
// Builtins
//===----------------------------------------------------------------------===//

void Elaborator::installBuiltins(CoreProgram &P) {
  // Type-level: List and Pair for signature sugar.
  if (!ListTC)
    ListTC = C.makeTyCon(C.sym("List"),
                         C.kindArrow(C.typeKind(), C.typeKind()),
                         C.liftedRep());
  if (!PairTC)
    PairTC = C.makeTyCon(
        C.sym("Pair"),
        C.kindArrow(C.typeKind(),
                    C.kindArrow(C.typeKind(), C.typeKind())),
        C.liftedRep());

  auto Add = [&](TopBinding B) {
    Globals[B.Name] = {B.Ty, {}};
    P.Bindings.push_back(B);
  };

  // Boxed Int arithmetic (Section 2.1's plusInt pattern).
  Add(runtime::buildPlusInt(C));
  Add(runtime::buildMinusInt(C));

  const Type *IntT = C.intTy();
  const Type *IH = C.intHashTy();

  // A binary boxed-Int builder: unbox, apply Op, rebox/result.
  auto BinInt = [&](const char *Name, PrimOp Op, bool BoolResult) {
    Symbol A = C.symbols().fresh("a"), B = C.symbols().fresh("b"),
           X = C.symbols().fresh("x"), Y = C.symbols().fresh("y");
    const core::Expr *Raw = C.primOp(Op, {C.var(X), C.var(Y)});
    const core::Expr *Res;
    const Type *ResTy;
    if (BoolResult) {
      Res = C.primOp(PrimOp::IsTrue, {Raw});
      ResTy = C.boolTy();
    } else {
      Res = C.conApp(C.iHashCon(), {}, {&Raw, 1});
      ResTy = IntT;
    }
    Alt AltY;
    AltY.Kind = Alt::AltKind::ConPat;
    AltY.Con = C.iHashCon();
    AltY.Binders = C.arena().copyArray({Y});
    AltY.Rhs = Res;
    const core::Expr *InnerCase = C.caseOf(C.var(B), ResTy, {&AltY, 1});
    Alt AltX;
    AltX.Kind = Alt::AltKind::ConPat;
    AltX.Con = C.iHashCon();
    AltX.Binders = C.arena().copyArray({X});
    AltX.Rhs = InnerCase;
    const core::Expr *OuterCase = C.caseOf(C.var(A), ResTy, {&AltX, 1});
    const core::Expr *Fn = C.lam(A, IntT, C.lam(B, IntT, OuterCase));
    Add({C.sym(Name), C.funTy(IntT, C.funTy(IntT, ResTy)), Fn});
    (void)IH;
  };

  BinInt("timesInt", PrimOp::MulI, false);
  BinInt("quotInt", PrimOp::QuotI, false);
  BinInt("remInt", PrimOp::RemI, false);
  BinInt("eqInt", PrimOp::EqI, true);
  BinInt("neInt", PrimOp::NeI, true);
  BinInt("ltInt", PrimOp::LtI, true);
  BinInt("leInt", PrimOp::LeI, true);
  BinInt("gtInt", PrimOp::GtI, true);
  BinInt("geInt", PrimOp::GeI, true);

  // id :: forall a. a -> a.
  {
    Symbol A = C.sym("a"), X = C.symbols().fresh("x");
    const Type *AT = C.varTy(A, C.typeKind());
    const Type *Ty = C.forAllTy(A, C.typeKind(), C.funTy(AT, AT));
    const core::Expr *E =
        C.tyLam(A, C.typeKind(), C.lam(X, AT, C.var(X)));
    Add({C.sym("id"), Ty, E});
  }

  // ($) :: forall (r::Rep) a (b::TYPE r). (a -> b) -> a -> b — the
  // Section 7.2 generalization (result levity-polymorphic; argument
  // lifted).
  {
    Symbol R = C.sym("r$"), A = C.sym("a$"), B = C.sym("b$"),
           F = C.symbols().fresh("f"), X = C.symbols().fresh("x");
    const Kind *KB = C.kindTYPE(C.repVar(R));
    const Type *AT = C.varTy(A, C.typeKind());
    const Type *BT = C.varTy(B, KB);
    const Type *Ty = C.forAllTy(
        R, C.repKind(),
        C.forAllTy(A, C.typeKind(),
                   C.forAllTy(B, KB,
                              C.funTy(C.funTy(AT, BT),
                                      C.funTy(AT, BT)))));
    const core::Expr *E = C.tyLam(
        R, C.repKind(),
        C.tyLam(A, C.typeKind(),
                C.tyLam(B, KB,
                        C.lam(F, C.funTy(AT, BT),
                              C.lam(X, AT,
                                    C.app(C.var(F), C.var(X),
                                          /*Strict=*/false))))));
    Add({C.sym("$"), Ty, E});
  }

  // (.) :: forall (r::Rep) a b (c::TYPE r).
  //          (b -> c) -> (a -> b) -> a -> c (Section 7.2).
  {
    Symbol R = C.sym("r."), A = C.sym("a."), B = C.sym("b."),
           Cv = C.sym("c."), F = C.symbols().fresh("f"),
           G = C.symbols().fresh("g"), X = C.symbols().fresh("x");
    const Kind *KC = C.kindTYPE(C.repVar(R));
    const Type *AT = C.varTy(A, C.typeKind());
    const Type *BT = C.varTy(B, C.typeKind());
    const Type *CT = C.varTy(Cv, KC);
    const Type *Ty = C.forAllTy(
        R, C.repKind(),
        C.forAllTy(
            A, C.typeKind(),
            C.forAllTy(
                B, C.typeKind(),
                C.forAllTy(Cv, KC,
                           C.funTy(C.funTy(BT, CT),
                                   C.funTy(C.funTy(AT, BT),
                                           C.funTy(AT, CT)))))));
    const core::Expr *Body = C.app(
        C.var(F), C.app(C.var(G), C.var(X), false), false);
    const core::Expr *E = C.tyLam(
        R, C.repKind(),
        C.tyLam(A, C.typeKind(),
                C.tyLam(B, C.typeKind(),
                        C.tyLam(Cv, KC,
                                C.lam(F, C.funTy(BT, CT),
                                      C.lam(G, C.funTy(AT, BT),
                                            C.lam(X, AT, Body)))))));
    Add({C.sym("."), Ty, E});
  }
}

//===----------------------------------------------------------------------===//
// Top-level bindings
//===----------------------------------------------------------------------===//

void Elaborator::elabBinding(const SBindDecl &B, const SType *Sig,
                             CoreProgram &P) {
  Symbol Name = C.sym(B.Name);

  if (Sig) {
    std::optional<SigInfo> Info = convertSignature(*Sig);
    if (!Info)
      return;
    // Rigid binders in scope for the body.
    size_t TyMark = TyVars.Vars.size();
    for (const auto &[V, K] : Info->Binders)
      TyVars.Vars.push_back({V, K});
    // Givens: per-method parameters for each constraint.
    size_t GivenMark = Givens.size();
    std::vector<std::pair<Symbol, const Type *>> DictParams;
    for (const auto &[Cls, At] : Info->Constraints) {
      Given G;
      G.Cls = Cls;
      G.At = At;
      for (const ClassInfo::Method &M : Cls->Methods) {
        const Type *MT = methodTypeAt(*Cls, Cls->methodIndex(M.Name), At);
        if (!MT) {
          TyVars.Vars.resize(TyMark);
          Givens.resize(GivenMark);
          return;
        }
        Symbol PS = C.symbols().fresh(
            "$d" + std::string(Cls->Name.str()) + "_" +
            std::string(M.Name.str()));
        G.MethodParams.push_back(PS);
        G.MethodTys.push_back(MT);
        DictParams.push_back({PS, MT});
      }
      Givens.push_back(std::move(G));
    }

    // Equation parameters against the signature's arrows.
    size_t LocalMark = Locals.size();
    size_t WantedMark = Wanteds.size();
    const Type *Remaining = Info->Body;
    std::vector<std::pair<Symbol, const Type *>> Params;
    for (const SBinder &Binder : B.Params) {
      const auto *F = dyn_cast<FunType>(C.zonkType(Remaining));
      if (!F) {
        errorAt(Binder.Loc, DiagCode::ArityError,
                "binding '" + B.Name +
                    "' has more parameters than its signature");
        Locals.resize(LocalMark);
        Givens.resize(GivenMark);
        TyVars.Vars.resize(TyMark);
        return;
      }
      Symbol CoreName =
          C.symbols().fresh(Binder.Name == "_" ? "wild" : Binder.Name);
      if (Binder.Name != "_")
        Locals.push_back({C.sym(Binder.Name), CoreName, F->param()});
      Params.push_back({CoreName, F->param()});
      Remaining = F->result();
    }

    Typed Rhs = checkExpr(*B.Rhs, Remaining);
    Locals.resize(LocalMark);
    if (!Rhs) {
      Givens.resize(GivenMark);
      TyVars.Vars.resize(TyMark);
      return;
    }
    const core::Expr *Body = solveWanteds(Rhs.E, WantedMark);
    for (size_t I = Params.size(); I != 0; --I)
      Body = C.lam(Params[I - 1].first, Params[I - 1].second, Body);
    for (size_t I = DictParams.size(); I != 0; --I)
      Body =
          C.lam(DictParams[I - 1].first, DictParams[I - 1].second, Body);
    for (size_t I = Info->Binders.size(); I != 0; --I)
      Body = C.tyLam(Info->Binders[I - 1].first,
                     Info->Binders[I - 1].second, Body);
    Givens.resize(GivenMark);
    TyVars.Vars.resize(TyMark);

    P.Bindings.push_back({Name, Info->FullType, Body});
    return;
  }

  // Inference mode: the global already has an assigned metavariable type
  // (for recursion); infer, unify, default reps, generalize.
  const Type *Assigned = Globals[Name].Ty;
  size_t LocalMark = Locals.size();
  size_t WantedMark = Wanteds.size();
  std::vector<std::pair<Symbol, const Type *>> Params;
  for (const SBinder &Binder : B.Params) {
    const Type *PTy =
        Binder.Ann ? convertType(*Binder.Ann) : Unify.freshOpenMeta();
    if (!PTy) {
      Locals.resize(LocalMark);
      return;
    }
    Symbol CoreName =
        C.symbols().fresh(Binder.Name == "_" ? "wild" : Binder.Name);
    if (Binder.Name != "_")
      Locals.push_back({C.sym(Binder.Name), CoreName, PTy});
    Params.push_back({CoreName, PTy});
  }
  Typed Rhs = inferExpr(*B.Rhs);
  Locals.resize(LocalMark);
  if (!Rhs)
    return;
  const Type *FnTy = Rhs.Ty;
  for (size_t I = Params.size(); I != 0; --I)
    FnTy = C.funTy(Params[I - 1].second, FnTy);
  if (!Unify.unify(Assigned, FnTy))
    return;

  const core::Expr *Body = solveWanteds(Rhs.E, WantedMark);
  for (size_t I = Params.size(); I != 0; --I)
    Body = C.lam(Params[I - 1].first, Params[I - 1].second, Body);

  // Section 5.2: never generalize rep metas; default them to LiftedRep.
  const Type *Gen = infer::generalize(C, Assigned);
  Globals[Name] = {Gen, {}};
  // Wrap type lambdas matching the new quantifiers.
  std::vector<std::pair<Symbol, const Kind *>> Quants;
  const Type *Walk = Gen;
  while (const auto *F = dyn_cast<ForAllType>(Walk)) {
    Quants.push_back({F->var(), F->varKind()});
    Walk = F->body();
  }
  for (size_t I = Quants.size(); I != 0; --I)
    Body = C.tyLam(Quants[I - 1].first, Quants[I - 1].second, Body);

  P.Bindings.push_back({Name, Gen, Body});
}

//===----------------------------------------------------------------------===//
// Module driver
//===----------------------------------------------------------------------===//

std::optional<ElabOutput> Elaborator::run(const SModule &M) {
  ElabOutput Out;
  CoreProgram &P = Out.Program;
  size_t Before = Diags.numErrors();

  installBuiltins(P);

  // Pass 1: data types.
  for (const SDecl &D : M.Decls)
    if (D.T == SDecl::Tag::Data)
      elabDataDecl(D.Data);

  // Pass 2: classes.
  for (const SDecl &D : M.Decls)
    if (D.T == SDecl::Tag::Class)
      elabClassDecl(D.Class);

  // Pass 3: collect signatures; pre-assign global types (signature or
  // fresh metavariable) so recursion and forward references work.
  std::unordered_map<Symbol, const SType *, SymbolHash> Sigs;
  for (const SDecl &D : M.Decls)
    if (D.T == SDecl::Tag::Sig)
      Sigs[C.sym(D.Sig.Name)] = D.Sig.Ty.get();

  for (const SDecl &D : M.Decls) {
    if (D.T != SDecl::Tag::Bind)
      continue;
    Symbol Name = C.sym(D.Bind.Name);
    if (Globals.count(Name) && !Sigs.count(Name)) {
      // Redefinition of a builtin is allowed only via a signature of its
      // own; plain user rebinding of a builtin name shadows it.
    }
    auto It = Sigs.find(Name);
    if (It != Sigs.end()) {
      std::optional<SigInfo> Info = convertSignature(*It->second);
      if (!Info)
        return std::nullopt;
      Globals[Name] = {Info->FullType, Info->Constraints};
    } else {
      Globals[Name] = {Unify.freshOpenMeta(), {}};
    }
    Out.UserBindings.push_back(Name);
  }

  // Pass 4: instances (may reference user bindings).
  for (const SDecl &D : M.Decls)
    if (D.T == SDecl::Tag::Instance)
      elabInstanceDecl(D.Instance, P);

  // Pass 5: bindings in order.
  for (const SDecl &D : M.Decls) {
    if (D.T != SDecl::Tag::Bind)
      continue;
    auto It = Sigs.find(C.sym(D.Bind.Name));
    elabBinding(D.Bind, It == Sigs.end() ? nullptr : It->second, P);
  }

  if (Diags.numErrors() != Before)
    return std::nullopt;

  // Pass 6: post-inference validation — fix strictness bits from solved
  // kinds, then Core Lint, then the Section 5.1 levity checks (the
  // "desugarer" pass of Section 8.2).
  CoreEnv Env;
  for (const TopBinding &B : P.Bindings)
    Env.addGlobal(B.Name, B.Ty);
  LevityChecker LC(C, Diags);
  for (const TopBinding &B : P.Bindings) {
    fixStrictness(Env, B.Rhs);
    Result<const Type *> T = Checker.typeOf(Env, B.Rhs);
    if (!T) {
      Diags.error(DiagCode::Internal,
                  "core lint failed for '" + std::string(B.Name.str()) +
                      "': " + T.error());
      continue;
    }
    if (!typeEqual(C.zonkType(*T), C.zonkType(B.Ty)))
      Diags.error(DiagCode::Internal,
                  "core lint type mismatch for '" +
                      std::string(B.Name.str()) + "': " +
                      C.zonkType(*T)->str() + " vs " +
                      C.zonkType(B.Ty)->str());
    LC.check(Env, B.Rhs);
  }

  if (Diags.numErrors() != Before)
    return std::nullopt;
  return Out;
}

const Type *Elaborator::globalType(std::string_view Name) const {
  auto It = Globals.find(const_cast<CoreContext &>(C).sym(Name));
  return It == Globals.end()
             ? nullptr
             : const_cast<CoreContext &>(C).zonkType(It->second.Ty);
}

//===----------------------------------------------------------------------===//
// Section 8.1 analysis
//===----------------------------------------------------------------------===//

Elaborator::GeneralizabilityResult
Elaborator::analyzeClass(const SClassDecl &D) {
  GeneralizabilityResult R;

  // Constructor classes (Functor, Monad, ...) have arrow-kinded class
  // variables: they are not candidates for *levity* generalization of
  // the class variable itself.
  if (D.Var.Kind && D.Var.Kind->T == SKind::Tag::Arrow) {
    R.ValueKinded = false;
    R.Reason = "constructor class (class variable has an arrow kind)";
    return R;
  }
  R.ValueKinded = true;

  size_t Mark = TyVars.Vars.size();
  size_t ErrsBefore = Diags.numErrors();

  // The experiment: give the class variable kind TYPE ν with ν fresh and
  // re-kind every method signature. Methods that demand a lifted `a`
  // (e.g. [a], or `a` as an argument of a Type->Type constructor) will
  // unify ν := LiftedRep; methods that only pass `a` through arrows
  // leave ν free.
  const RepTy *Nu = C.freshRepMeta();
  Symbol Var = C.sym(D.Var.Name.empty() ? "a" : D.Var.Name);
  TyVars.Vars.push_back({Var, C.kindTYPE(Nu)});
  IgnoreContexts = true;
  AutoBindTypeVars = true;

  for (const SSigDecl &M : D.Methods) {
    if (!M.Ty)
      continue;
    const Type *T = convertType(*M.Ty);
    if (T)
      kindOfUnify(T);
    if (Diags.numErrors() != ErrsBefore) {
      TyVars.Vars.resize(Mark);
      IgnoreContexts = false;
      AutoBindTypeVars = false;
      R.Generalizable = false;
      R.Reason = "method '" + M.Name + "' is ill-kinded at TYPE r";
      return R;
    }
  }
  TyVars.Vars.resize(Mark);
  IgnoreContexts = false;
  AutoBindTypeVars = false;

  const RepTy *Solved = C.zonkRep(Nu);
  if (Solved->tag() == RepTy::Tag::Meta) {
    R.Generalizable = true;
    return R;
  }
  R.Generalizable = false;
  R.Reason = "a method forces the class variable to TYPE " + Solved->str();
  return R;
}
