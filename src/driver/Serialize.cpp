//===- Serialize.cpp - The versioned .levc artifact format ----------------===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//
//
// Implements the byte layout specified in docs/ARTIFACT_FORMAT.md: the
// container (header + section table + checksum trailer), the recursive
// M-term encoding over the stable mcalc tags, and the Compilation-level
// serializeArtifact / deserializeArtifact entry points. Every read path
// is defensive: a `.levc` file is untrusted input (another process, a
// partial copy, a bit flip), and the only acceptable failure mode is
// "treat as a miss".
//
//===----------------------------------------------------------------------===//

#include "driver/Serialize.h"
#include "driver/Session.h"
#include "support/Timing.h"

#include <algorithm>
#include <chrono>
#include <cstring>

using namespace levity;
using namespace levity::driver;
using namespace levity::driver::levc;
using support::millisSince;
using mcalc::MAtom;
using mcalc::MContext;
using mcalc::MVar;
using mcalc::Term;

//===----------------------------------------------------------------------===//
// Hashing and fingerprint
//===----------------------------------------------------------------------===//

uint64_t levc::fnv1a(std::string_view Bytes) {
  uint64_t H = 1469598103934665603ull; // FNV offset basis
  for (char Ch : Bytes) {
    H ^= static_cast<unsigned char>(Ch);
    H *= 1099511628211ull; // FNV prime
  }
  return H;
}

uint64_t levc::pipelineFingerprint() {
  ByteWriter W;
  W.u32(FormatVersion);
  W.str(PipelineEpoch);
  W.u32(Term::NumTermKinds);
  W.u32(mcalc::NumMPrims);
  W.u32(mcalc::NumVarSorts);
  // The CORE section encodes core primops (and rep atoms) by numeric
  // value; growing either enum must invalidate stale stores.
  W.u32(core::NumPrimOps);
  W.u32(static_cast<uint32_t>(RepCtor::Sum) + 1);
  // The BCOD section encodes instructions by stable opcode tag; a new
  // opcode must invalidate stale stores.
  W.u32(bytecode::NumOps);
  return fnv1a(W.bytes());
}

//===----------------------------------------------------------------------===//
// ByteWriter / ByteReader
//===----------------------------------------------------------------------===//

void ByteWriter::u8(uint8_t V) { Buf.push_back(static_cast<char>(V)); }

void ByteWriter::u32(uint32_t V) {
  for (int I = 0; I != 4; ++I)
    Buf.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

void ByteWriter::u64(uint64_t V) {
  for (int I = 0; I != 8; ++I)
    Buf.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

void ByteWriter::i64(int64_t V) { u64(static_cast<uint64_t>(V)); }

void ByteWriter::f64(double V) {
  uint64_t Bits;
  static_assert(sizeof(Bits) == sizeof(V));
  std::memcpy(&Bits, &V, sizeof(Bits));
  u64(Bits);
}

void ByteWriter::str(std::string_view S) {
  u32(static_cast<uint32_t>(S.size()));
  Buf.append(S.data(), S.size());
}

void ByteWriter::raw(std::string_view Bytes) {
  Buf.append(Bytes.data(), Bytes.size());
}

const unsigned char *ByteReader::take(size_t N) {
  if (Failed || Buf.size() - Pos < N) {
    Failed = true;
    return nullptr;
  }
  const unsigned char *P =
      reinterpret_cast<const unsigned char *>(Buf.data()) + Pos;
  Pos += N;
  return P;
}

uint8_t ByteReader::u8() {
  const unsigned char *P = take(1);
  return P ? *P : 0;
}

uint32_t ByteReader::u32() {
  const unsigned char *P = take(4);
  if (!P)
    return 0;
  uint32_t V = 0;
  for (int I = 0; I != 4; ++I)
    V |= static_cast<uint32_t>(P[I]) << (8 * I);
  return V;
}

uint64_t ByteReader::u64() {
  const unsigned char *P = take(8);
  if (!P)
    return 0;
  uint64_t V = 0;
  for (int I = 0; I != 8; ++I)
    V |= static_cast<uint64_t>(P[I]) << (8 * I);
  return V;
}

int64_t ByteReader::i64() { return static_cast<int64_t>(u64()); }

double ByteReader::f64() {
  uint64_t Bits = u64();
  double V;
  std::memcpy(&V, &Bits, sizeof(V));
  return V;
}

std::string_view ByteReader::str() {
  uint32_t N = u32();
  const unsigned char *P = take(N);
  return P ? std::string_view(reinterpret_cast<const char *>(P), N)
           : std::string_view();
}

std::string_view ByteReader::raw(size_t N) {
  const unsigned char *P = take(N);
  return P ? std::string_view(reinterpret_cast<const char *>(P), N)
           : std::string_view();
}

//===----------------------------------------------------------------------===//
// M-term encoding
//===----------------------------------------------------------------------===//

namespace {

void writeVar(ByteWriter &W, MVar V) {
  W.str(V.Name.str());
  W.u8(static_cast<uint8_t>(V.Sort));
}

bool readVar(ByteReader &R, MContext &Ctx, MVar &Out) {
  std::string_view Name = R.str();
  uint8_t Sort = R.u8();
  if (!R.ok() || Sort >= mcalc::NumVarSorts) {
    R.fail();
    return false;
  }
  Out = MVar{Ctx.symbols().intern(Name), static_cast<mcalc::VarSort>(Sort)};
  return true;
}

void writeAtom(ByteWriter &W, MAtom A) {
  uint8_t Flags = (A.IsLit ? 1 : 0) | (A.IsDbl ? 2 : 0);
  W.u8(Flags);
  if (!A.IsLit)
    writeVar(W, A.Var);
  else if (A.IsDbl)
    W.f64(A.DblLit);
  else
    W.i64(A.Lit);
}

bool readAtom(ByteReader &R, MContext &Ctx, MAtom &Out) {
  uint8_t Flags = R.u8();
  if (!R.ok() || Flags > 3) {
    R.fail();
    return false;
  }
  bool IsLit = Flags & 1, IsDbl = Flags & 2;
  if (IsLit) {
    Out = IsDbl ? MAtom::dlit(R.f64()) : MAtom::lit(R.i64());
    return R.ok();
  }
  MVar V;
  if (!readVar(R, Ctx, V))
    return false;
  // Primop atoms live in unboxed registers, and the flag byte must agree
  // with the variable's sort (MAtom::var derives IsDbl from it).
  if (V.isPtr() || V.isDbl() != IsDbl) {
    R.fail();
    return false;
  }
  Out = MAtom::var(V);
  return true;
}

/// Like readAtom, but constructor fields may also name pointer
/// registers (heap references of boxed fields).
bool readConAtom(ByteReader &R, MContext &Ctx, MAtom &Out) {
  uint8_t Flags = R.u8();
  if (!R.ok() || Flags > 3) {
    R.fail();
    return false;
  }
  bool IsLit = Flags & 1, IsDbl = Flags & 2;
  if (IsLit) {
    Out = IsDbl ? MAtom::dlit(R.f64()) : MAtom::lit(R.i64());
    return R.ok();
  }
  MVar V;
  if (!readVar(R, Ctx, V))
    return false;
  if (V.isDbl() != IsDbl) {
    R.fail();
    return false;
  }
  Out = MAtom::anyVar(V);
  return true;
}

const Term *readTermRec(ByteReader &R, MContext &Ctx, unsigned Depth);

/// Decodes a subterm, failing the stream if absent.
const Term *readSub(ByteReader &R, MContext &Ctx, unsigned Depth) {
  const Term *T = readTermRec(R, Ctx, Depth + 1);
  if (!T)
    R.fail();
  return T;
}

const Term *readTermRec(ByteReader &R, MContext &Ctx, unsigned Depth) {
  if (Depth > MaxTermDepth) {
    R.fail();
    return nullptr;
  }
  uint8_t Tag = R.u8();
  if (!R.ok() || Tag >= Term::NumTermKinds) {
    R.fail();
    return nullptr;
  }
  switch (static_cast<Term::TermKind>(Tag)) {
  case Term::TermKind::AppVar: {
    const Term *Fn = readSub(R, Ctx, Depth);
    MVar Arg;
    if (!Fn || !readVar(R, Ctx, Arg))
      return nullptr;
    return Ctx.appVar(Fn, Arg);
  }
  case Term::TermKind::AppLit: {
    const Term *Fn = readSub(R, Ctx, Depth);
    int64_t Lit = R.i64();
    return Fn && R.ok() ? Ctx.appLit(Fn, Lit) : nullptr;
  }
  case Term::TermKind::AppDbl: {
    const Term *Fn = readSub(R, Ctx, Depth);
    double Lit = R.f64();
    return Fn && R.ok() ? Ctx.appDbl(Fn, Lit) : nullptr;
  }
  case Term::TermKind::Lam: {
    MVar Param;
    if (!readVar(R, Ctx, Param))
      return nullptr;
    const Term *Body = readSub(R, Ctx, Depth);
    return Body ? Ctx.lam(Param, Body) : nullptr;
  }
  case Term::TermKind::Var: {
    MVar V;
    return readVar(R, Ctx, V) ? Ctx.var(V) : nullptr;
  }
  case Term::TermKind::Let:
  case Term::TermKind::LetBang:
  case Term::TermKind::LetRec: {
    MVar Binder;
    if (!readVar(R, Ctx, Binder))
      return nullptr;
    // Lazy let and letrec bind heap pointers by construction; enforce it
    // here so corrupt input cannot build nodes the machine rules (LET,
    // RECLET) would misinterpret.
    if (Tag != static_cast<uint8_t>(Term::TermKind::LetBang) &&
        !Binder.isPtr()) {
      R.fail();
      return nullptr;
    }
    const Term *Rhs = readSub(R, Ctx, Depth);
    const Term *Body = Rhs ? readSub(R, Ctx, Depth) : nullptr;
    if (!Body)
      return nullptr;
    if (Tag == static_cast<uint8_t>(Term::TermKind::Let))
      return Ctx.let(Binder, Rhs, Body);
    if (Tag == static_cast<uint8_t>(Term::TermKind::LetBang))
      return Ctx.letBang(Binder, Rhs, Body);
    return Ctx.letRec(Binder, Rhs, Body);
  }
  case Term::TermKind::Case: {
    const Term *Scrut = readSub(R, Ctx, Depth);
    MVar Binder;
    if (!Scrut || !readVar(R, Ctx, Binder))
      return nullptr;
    const Term *Body = readSub(R, Ctx, Depth);
    return Body ? Ctx.caseOf(Scrut, Binder, Body) : nullptr;
  }
  case Term::TermKind::If0: {
    const Term *Scrut = readSub(R, Ctx, Depth);
    const Term *Then = Scrut ? readSub(R, Ctx, Depth) : nullptr;
    const Term *Else = Then ? readSub(R, Ctx, Depth) : nullptr;
    return Else ? Ctx.if0(Scrut, Then, Else) : nullptr;
  }
  case Term::TermKind::Error: {
    uint8_t HasMsg = R.u8();
    if (!R.ok() || HasMsg > 1) {
      R.fail();
      return nullptr;
    }
    if (!HasMsg)
      return Ctx.error();
    std::string_view Msg = R.str();
    return R.ok() ? Ctx.error(Ctx.symbols().intern(Msg)) : nullptr;
  }
  case Term::TermKind::ConVar: {
    MVar V;
    return readVar(R, Ctx, V) ? Ctx.conVar(V) : nullptr;
  }
  case Term::TermKind::ConLit: {
    int64_t V = R.i64();
    return R.ok() ? Ctx.conLit(V) : nullptr;
  }
  case Term::TermKind::Lit: {
    int64_t V = R.i64();
    return R.ok() ? Ctx.lit(V) : nullptr;
  }
  case Term::TermKind::DLit: {
    double V = R.f64();
    return R.ok() ? Ctx.dlit(V) : nullptr;
  }
  case Term::TermKind::Prim: {
    uint8_t Op = R.u8();
    if (!R.ok() || Op >= mcalc::NumMPrims) {
      R.fail();
      return nullptr;
    }
    MAtom Lhs, Rhs;
    if (!readAtom(R, Ctx, Lhs) || !readAtom(R, Ctx, Rhs))
      return nullptr;
    return Ctx.prim(static_cast<mcalc::MPrim>(Op), Lhs, Rhs);
  }
  case Term::TermKind::Con: {
    uint32_t Tag = R.u32();
    uint32_t N = R.u32();
    if (!R.ok() || N > MaxConFields) {
      R.fail();
      return nullptr;
    }
    std::vector<MAtom> Args(N);
    for (uint32_t I = 0; I != N; ++I)
      if (!readConAtom(R, Ctx, Args[I]))
        return nullptr;
    return Ctx.con(Tag, Args);
  }
  case Term::TermKind::Switch: {
    const Term *Scrut = readSub(R, Ctx, Depth);
    uint32_t NAlts = R.u32();
    if (!Scrut || !R.ok() || NAlts > MaxSwitchAlts) {
      R.fail();
      return nullptr;
    }
    std::vector<mcalc::MAlt> Alts(NAlts);
    std::vector<std::vector<MVar>> Binders(NAlts);
    for (uint32_t I = 0; I != NAlts; ++I) {
      uint8_t Pat = R.u8();
      if (!R.ok() || Pat >= mcalc::MAlt::NumPatKinds) {
        R.fail();
        return nullptr;
      }
      mcalc::MAlt &A = Alts[I];
      A.Pat = static_cast<mcalc::MAlt::PatKind>(Pat);
      switch (A.Pat) {
      case mcalc::MAlt::PatKind::Con: {
        A.Tag = R.u32();
        uint32_t NBinders = R.u32();
        if (!R.ok() || NBinders > MaxConFields) {
          R.fail();
          return nullptr;
        }
        Binders[I].resize(NBinders);
        for (uint32_t B = 0; B != NBinders; ++B)
          if (!readVar(R, Ctx, Binders[I][B]))
            return nullptr;
        A.Binders =
            std::span<const MVar>(Binders[I].data(), Binders[I].size());
        break;
      }
      case mcalc::MAlt::PatKind::Int:
        A.IntVal = R.i64();
        break;
      case mcalc::MAlt::PatKind::Dbl:
        A.DblVal = R.f64();
        break;
      }
      A.Body = readSub(R, Ctx, Depth);
      if (!A.Body)
        return nullptr;
    }
    uint8_t HasDefault = R.u8();
    if (!R.ok() || HasDefault > 1) {
      R.fail();
      return nullptr;
    }
    const Term *Default = nullptr;
    if (HasDefault) {
      Default = readSub(R, Ctx, Depth);
      if (!Default)
        return nullptr;
    }
    return Ctx.switchOf(Scrut, Alts, Default);
  }
  }
  R.fail();
  return nullptr;
}

} // namespace

void levc::writeTerm(ByteWriter &W, const Term *T) {
  W.u8(static_cast<uint8_t>(T->kind()));
  switch (T->kind()) {
  case Term::TermKind::AppVar: {
    const auto *N = mcalc::cast<mcalc::AppVarTerm>(T);
    writeTerm(W, N->fn());
    writeVar(W, N->arg());
    return;
  }
  case Term::TermKind::AppLit: {
    const auto *N = mcalc::cast<mcalc::AppLitTerm>(T);
    writeTerm(W, N->fn());
    W.i64(N->lit());
    return;
  }
  case Term::TermKind::AppDbl: {
    const auto *N = mcalc::cast<mcalc::AppDblTerm>(T);
    writeTerm(W, N->fn());
    W.f64(N->lit());
    return;
  }
  case Term::TermKind::Lam: {
    const auto *N = mcalc::cast<mcalc::LamTerm>(T);
    writeVar(W, N->param());
    writeTerm(W, N->body());
    return;
  }
  case Term::TermKind::Var:
    writeVar(W, mcalc::cast<mcalc::VarTerm>(T)->var());
    return;
  case Term::TermKind::Let: {
    const auto *N = mcalc::cast<mcalc::LetTerm>(T);
    writeVar(W, N->binder());
    writeTerm(W, N->rhs());
    writeTerm(W, N->body());
    return;
  }
  case Term::TermKind::LetBang: {
    const auto *N = mcalc::cast<mcalc::LetBangTerm>(T);
    writeVar(W, N->binder());
    writeTerm(W, N->rhs());
    writeTerm(W, N->body());
    return;
  }
  case Term::TermKind::LetRec: {
    const auto *N = mcalc::cast<mcalc::LetRecTerm>(T);
    writeVar(W, N->binder());
    writeTerm(W, N->rhs());
    writeTerm(W, N->body());
    return;
  }
  case Term::TermKind::Case: {
    const auto *N = mcalc::cast<mcalc::CaseTerm>(T);
    writeTerm(W, N->scrut());
    writeVar(W, N->binder());
    writeTerm(W, N->body());
    return;
  }
  case Term::TermKind::If0: {
    const auto *N = mcalc::cast<mcalc::If0Term>(T);
    writeTerm(W, N->scrut());
    writeTerm(W, N->thenBranch());
    writeTerm(W, N->elseBranch());
    return;
  }
  case Term::TermKind::Error: {
    const auto *N = mcalc::cast<mcalc::ErrorTerm>(T);
    W.u8(N->message().valid() ? 1 : 0);
    if (N->message().valid())
      W.str(N->message().str());
    return;
  }
  case Term::TermKind::ConVar:
    writeVar(W, mcalc::cast<mcalc::ConVarTerm>(T)->var());
    return;
  case Term::TermKind::ConLit:
    W.i64(mcalc::cast<mcalc::ConLitTerm>(T)->value());
    return;
  case Term::TermKind::Lit:
    W.i64(mcalc::cast<mcalc::LitTerm>(T)->value());
    return;
  case Term::TermKind::DLit:
    W.f64(mcalc::cast<mcalc::DLitTerm>(T)->value());
    return;
  case Term::TermKind::Prim: {
    const auto *N = mcalc::cast<mcalc::PrimTerm>(T);
    W.u8(static_cast<uint8_t>(N->op()));
    writeAtom(W, N->lhs());
    writeAtom(W, N->rhs());
    return;
  }
  case Term::TermKind::Con: {
    const auto *N = mcalc::cast<mcalc::ConTerm>(T);
    W.u32(N->tag());
    W.u32(static_cast<uint32_t>(N->args().size()));
    for (const MAtom &A : N->args())
      writeAtom(W, A);
    return;
  }
  case Term::TermKind::Switch: {
    const auto *N = mcalc::cast<mcalc::SwitchTerm>(T);
    writeTerm(W, N->scrut());
    W.u32(static_cast<uint32_t>(N->alts().size()));
    for (const mcalc::MAlt &A : N->alts()) {
      W.u8(static_cast<uint8_t>(A.Pat));
      switch (A.Pat) {
      case mcalc::MAlt::PatKind::Con:
        W.u32(A.Tag);
        W.u32(static_cast<uint32_t>(A.Binders.size()));
        for (MVar B : A.Binders)
          writeVar(W, B);
        break;
      case mcalc::MAlt::PatKind::Int:
        W.i64(A.IntVal);
        break;
      case mcalc::MAlt::PatKind::Dbl:
        W.f64(A.DblVal);
        break;
      }
      writeTerm(W, A.Body);
    }
    W.u8(N->defaultBody() ? 1 : 0);
    if (N->defaultBody())
      writeTerm(W, N->defaultBody());
    return;
  }
  }
}

const Term *levc::readTerm(ByteReader &R, MContext &Ctx) {
  return readTermRec(R, Ctx, 0);
}

//===----------------------------------------------------------------------===//
// Bytecode-module encoding — the optional BCOD section
//===----------------------------------------------------------------------===//

void levc::writeBytecodeModule(ByteWriter &W, const bytecode::Module &M) {
  W.u32(static_cast<uint32_t>(M.Protos.size()));
  for (const bytecode::Proto &P : M.Protos) {
    W.u32(P.Entry);
    W.u32(P.End);
    W.u32(P.NumLocals);
    W.u32(static_cast<uint32_t>(P.ParamSorts.size()));
    for (uint8_t S : P.ParamSorts)
      W.u8(S);
    W.u32(static_cast<uint32_t>(P.Caps.size()));
    for (const bytecode::Capture &C : P.Caps) {
      W.u32(C.Src);
      W.u8(C.Sort);
    }
  }
  W.u32(static_cast<uint32_t>(M.Code.size()));
  for (const bytecode::Instr &I : M.Code) {
    W.u8(static_cast<uint8_t>(I.Code));
    W.u8(I.A);
    W.u32(I.B);
    W.u32(static_cast<uint32_t>(I.C));
  }
  W.u32(static_cast<uint32_t>(M.IntPool.size()));
  for (int64_t V : M.IntPool)
    W.i64(V);
  W.u32(static_cast<uint32_t>(M.DblPool.size()));
  for (double V : M.DblPool)
    W.f64(V);
  W.u32(static_cast<uint32_t>(M.StrPool.size()));
  for (const std::string &S : M.StrPool)
    W.str(S);
  W.u32(static_cast<uint32_t>(M.Tables.size()));
  for (const bytecode::SwitchTable &T : M.Tables) {
    W.i64(T.DefaultTarget);
    W.u32(static_cast<uint32_t>(T.Alts.size()));
    for (const bytecode::SwitchAlt &A : T.Alts) {
      W.u8(A.Pat);
      W.u32(A.Tag);
      W.i64(A.IntVal);
      W.f64(A.DblVal);
      W.u32(A.Target);
      W.u32(A.BindersBase);
      W.u32(static_cast<uint32_t>(A.BinderSorts.size()));
      for (uint8_t S : A.BinderSorts)
        W.u8(S);
    }
  }
}

std::shared_ptr<const bytecode::Module>
levc::readBytecodeModule(ByteReader &R) {
  auto M = std::make_shared<bytecode::Module>();

  uint32_t NumProtos = R.u32();
  if (!R.ok() || NumProtos > MaxBcProtos) {
    R.fail();
    return nullptr;
  }
  M->Protos.reserve(NumProtos);
  for (uint32_t I = 0; I != NumProtos; ++I) {
    bytecode::Proto P;
    P.Entry = R.u32();
    P.End = R.u32();
    uint32_t NumLocals = R.u32();
    uint32_t NumParams = R.u32();
    if (!R.ok() || NumParams > bytecode::MaxFrameSlots) {
      R.fail();
      return nullptr;
    }
    P.ParamSorts.reserve(NumParams);
    for (uint32_t J = 0; J != NumParams; ++J)
      P.ParamSorts.push_back(R.u8());
    uint32_t NumCaps = R.u32();
    if (!R.ok() || NumLocals > bytecode::MaxFrameSlots ||
        NumCaps > bytecode::MaxFrameSlots) {
      R.fail();
      return nullptr;
    }
    P.NumLocals = static_cast<uint16_t>(NumLocals);
    P.Caps.reserve(NumCaps);
    for (uint32_t J = 0; J != NumCaps; ++J) {
      bytecode::Capture C;
      uint32_t Src = R.u32();
      C.Sort = R.u8();
      if (!R.ok() || Src > bytecode::MaxFrameSlots) {
        R.fail();
        return nullptr;
      }
      C.Src = static_cast<uint16_t>(Src);
      P.Caps.push_back(C);
    }
    M->Protos.push_back(std::move(P));
  }

  uint32_t CodeLen = R.u32();
  if (!R.ok() || CodeLen > MaxBcCode) {
    R.fail();
    return nullptr;
  }
  M->Code.reserve(CodeLen);
  for (uint32_t I = 0; I != CodeLen; ++I) {
    bytecode::Instr In;
    In.Code = static_cast<bytecode::Op>(R.u8());
    In.A = R.u8();
    uint32_t B = R.u32();
    In.C = static_cast<int32_t>(R.u32());
    if (!R.ok() || B > 0xffff) {
      R.fail();
      return nullptr;
    }
    In.B = static_cast<uint16_t>(B);
    M->Code.push_back(In);
  }

  auto ReadCount = [&R](uint32_t Cap) -> uint32_t {
    uint32_t N = R.u32();
    if (!R.ok() || N > Cap) {
      R.fail();
      return 0;
    }
    return N;
  };
  uint32_t NumInts = ReadCount(MaxBcPool);
  M->IntPool.reserve(NumInts);
  for (uint32_t I = 0; R.ok() && I != NumInts; ++I)
    M->IntPool.push_back(R.i64());
  uint32_t NumDbls = ReadCount(MaxBcPool);
  M->DblPool.reserve(NumDbls);
  for (uint32_t I = 0; R.ok() && I != NumDbls; ++I)
    M->DblPool.push_back(R.f64());
  uint32_t NumStrs = ReadCount(MaxBcPool);
  M->StrPool.reserve(NumStrs);
  for (uint32_t I = 0; R.ok() && I != NumStrs; ++I)
    M->StrPool.emplace_back(R.str());

  uint32_t NumTables = ReadCount(MaxBcPool);
  M->Tables.reserve(NumTables);
  for (uint32_t I = 0; R.ok() && I != NumTables; ++I) {
    bytecode::SwitchTable T;
    T.DefaultTarget = R.i64();
    uint32_t NumAlts = ReadCount(MaxSwitchAlts);
    T.Alts.reserve(NumAlts);
    for (uint32_t J = 0; R.ok() && J != NumAlts; ++J) {
      bytecode::SwitchAlt A;
      A.Pat = R.u8();
      A.Tag = R.u32();
      A.IntVal = R.i64();
      A.DblVal = R.f64();
      A.Target = R.u32();
      uint32_t Base = R.u32();
      uint32_t NumSorts = R.u32();
      if (!R.ok() || Base > bytecode::MaxFrameSlots ||
          NumSorts > bytecode::MaxFrameSlots) {
        R.fail();
        return nullptr;
      }
      A.BindersBase = static_cast<uint16_t>(Base);
      A.BinderSorts.reserve(NumSorts);
      for (uint32_t K = 0; K != NumSorts; ++K)
        A.BinderSorts.push_back(R.u8());
      T.Alts.push_back(std::move(A));
    }
    M->Tables.push_back(std::move(T));
  }
  if (!R.ok())
    return nullptr;

  // The VM trusts the verifier, never the wire: a module that fails
  // validation is malformed input, exactly like a truncated one.
  if (!bytecode::validate(*M)) {
    R.fail();
    return nullptr;
  }
  // Dense switch dispatch is derived data — never serialized, rebuilt
  // after the decoded module has been proven well-formed.
  bytecode::buildDispatchTables(*M);
  return M;
}

//===----------------------------------------------------------------------===//
// Compilation::serializeArtifact
//===----------------------------------------------------------------------===//


Result<std::string> Compilation::serializeArtifact() const {
  if (!Succeeded)
    return err("cannot serialize a failed compilation");
  if (FormalTerm)
    return err("formal compilations are not serializable");
  if (SrcHash == 0)
    return err("programmatic compilations are not serializable "
               "(no source to key the store by)");

  // The artifact's value is making a cold process lowering-free, so
  // force the M lowering of every top-level binding now (memoized, so
  // repeated serializations are cheap). Failures are kept verbatim:
  // out-of-fragment globals must replay the same pinned diagnostics.
  std::vector<std::string> Names;
  if (!Hydrated && Elaborated) {
    for (const core::TopBinding &B : Elaborated->Program.Bindings)
      Names.push_back(std::string(B.Name.str()));
  } else {
    MachinePipeline &MP = machine();
    std::shared_lock<std::shared_mutex> Lock(MP.LowerMutex);
    for (const auto &KV : MP.MTerms)
      Names.push_back(KV.first);
  }
  std::sort(Names.begin(), Names.end());
  Names.erase(std::unique(Names.begin(), Names.end()), Names.end());

  ByteWriter Terms;
  Terms.u32(static_cast<uint32_t>(Names.size()));
  for (const std::string &Name : Names) {
    Result<const Term *> T = machineTerm(Name);
    Terms.str(Name);
    Terms.u8(T.ok() ? 1 : 0);
    if (T.ok())
      writeTerm(Terms, *T);
    else
      Terms.str(T.error());
  }

  ByteWriter Types;
  Types.u32(static_cast<uint32_t>(Names.size()));
  for (const std::string &Name : Names) {
    Types.str(Name);
    Types.str(globalTypeText(Name));
  }

  // The optional CORE section: the elaborated core program, so
  // tree-backend consumers of a warm store skip the front end too. Best
  // effort — when the program is unavailable (machine-only hydration)
  // or not stably encodable, the section is simply omitted and
  // hydrated consumers lazily rebuild the front end as before.
  ByteWriter Core;
  bool HasCore = false;
  if (Elaborated)
    HasCore = levc::writeCoreSection(Core, C, Elaborated->Program,
                                     Elaborated->UserBindings);
  if (!HasCore)
    Core = ByteWriter();

  // The optional BCOD section: compiled bytecode, so warm-store
  // Backend::Bytecode runs skip even the bytecode compiler. Bytecode
  // sessions force every global's compilation now (mirroring the M
  // lowering above); other sessions persist only modules this process
  // already compiled — serializing must not charge tree/machine-only
  // sessions for a backend they never use. Globals outside the bytecode
  // fragment are simply absent (hydrated consumers recompile lazily from
  // the restored M terms and fall back to the machine as usual); the
  // section is omitted when nothing compiled.
  ByteWriter Bc;
  uint32_t NumBc = 0;
  {
    ByteWriter Mods;
    if (Opts.DefaultBackend == Backend::Bytecode) {
      for (const std::string &Name : Names) {
        Result<const bytecode::Module *> Mod = bytecodeModule(Name);
        if (!Mod)
          continue;
        Mods.str(Name);
        levc::writeBytecodeModule(Mods, **Mod);
        ++NumBc;
      }
    } else {
      MachinePipeline &MP = machine();
      std::shared_lock<std::shared_mutex> Lock(MP.LowerMutex);
      for (const std::string &Name : Names) {
        auto It = MP.BModules.find(Name);
        if (It == MP.BModules.end() || !It->second)
          continue;
        Mods.str(Name);
        levc::writeBytecodeModule(Mods, *It->second->get());
        ++NumBc;
      }
    }
    Bc.u32(NumBc);
    Bc.raw(Mods.bytes());
  }

  ByteWriter Meta;
  Meta.u8(static_cast<uint8_t>(Opts.DefaultBackend));
  Meta.u32(static_cast<uint32_t>(Timings.size()));
  for (const StageTiming &T : Timings) {
    Meta.str(T.Stage);
    Meta.f64(T.Millis);
  }
  // The original context's fresh-name counter: hydrating contexts
  // reserve past it so runtime-minted heap addresses can never collide
  // with a stored binder name.
  Meta.u64(machine().MC.nameCounter());

  ByteWriter W;
  W.raw(std::string_view(levc::Magic, sizeof(levc::Magic)));
  W.u32(levc::FormatVersion);
  W.u64(levc::pipelineFingerprint());
  W.u64(SrcHash);
  W.u32(4 + (HasCore ? 1 : 0) + (NumBc ? 1 : 0)); // section count
  auto Section = [&W](uint32_t Id, const std::string &Payload) {
    W.u32(Id);
    W.u64(Payload.size());
    W.raw(Payload);
  };
  Section(levc::SecSource, Source);
  Section(levc::SecMeta, Meta.bytes());
  Section(levc::SecTypes, Types.bytes());
  Section(levc::SecTerms, Terms.bytes());
  if (HasCore)
    Section(levc::SecCore, Core.bytes());
  if (NumBc)
    Section(levc::SecBytecode, Bc.bytes());
  W.u64(levc::fnv1a(W.bytes())); // trailer checksum
  return W.take();
}

//===----------------------------------------------------------------------===//
// Compilation::deserializeArtifact
//===----------------------------------------------------------------------===//

std::shared_ptr<Compilation>
Compilation::deserializeArtifact(std::string_view Bytes,
                                 std::string_view ExpectedSource,
                                 const CompileOptions &Opts) {
  auto Start = std::chrono::steady_clock::now();

  // Container validation: size, checksum, magic, versions. Any failure
  // is a miss — never an error the caller must handle.
  constexpr size_t MinSize = 4 + 4 + 8 + 8 + 4 + 8;
  if (Bytes.size() < MinSize)
    return nullptr;
  ByteReader Trailer(Bytes.substr(Bytes.size() - 8));
  if (levc::fnv1a(Bytes.substr(0, Bytes.size() - 8)) != Trailer.u64())
    return nullptr;

  ByteReader R(Bytes.substr(0, Bytes.size() - 8));
  if (R.raw(4) != std::string_view(levc::Magic, sizeof(levc::Magic)))
    return nullptr;
  if (R.u32() != levc::FormatVersion)
    return nullptr;
  if (R.u64() != levc::pipelineFingerprint())
    return nullptr;
  uint64_t Hash = R.u64();
  if (Hash != Session::hashSource(ExpectedSource))
    return nullptr;

  std::string_view Src, Meta, Types, Terms, Core, Bc;
  uint32_t NumSections = R.u32();
  if (!R.ok() || NumSections > 64)
    return nullptr;
  for (uint32_t I = 0; I != NumSections; ++I) {
    uint32_t Id = R.u32();
    uint64_t Len = R.u64();
    std::string_view Payload = R.raw(Len);
    if (!R.ok())
      return nullptr;
    switch (Id) {
    case levc::SecSource: Src = Payload; break;
    case levc::SecMeta: Meta = Payload; break;
    case levc::SecTypes: Types = Payload; break;
    case levc::SecTerms: Terms = Payload; break;
    case levc::SecCore: Core = Payload; break;
    case levc::SecBytecode: Bc = Payload; break;
    default: break; // Unknown sections: skip (forward compatibility).
    }
  }
  // The source must match byte-for-byte: the hash is only the address,
  // exact compare is the identity (same contract as the memory cache).
  if (Src != ExpectedSource || Meta.empty() || Terms.empty())
    return nullptr;

  auto Comp = std::shared_ptr<Compilation>(new Compilation(Opts));
  Comp->Source.assign(ExpectedSource);
  Comp->SrcHash = Hash;
  Comp->Hydrated = true;
  MachinePipeline &MP = Comp->machine();

  ByteReader MetaR(Meta);
  MetaR.u8(); // Original default backend: advisory metadata only.
  uint32_t NumTimings = MetaR.u32();
  if (!MetaR.ok() || NumTimings > 1024)
    return nullptr;
  for (uint32_t I = 0; I != NumTimings; ++I) {
    std::string Stage(MetaR.str());
    double Millis = MetaR.f64();
    if (!MetaR.ok())
      return nullptr;
    Comp->Timings.push_back({std::move(Stage), Millis});
  }
  MP.MC.reserveNames(MetaR.u64());
  if (!MetaR.ok())
    return nullptr;

  ByteReader TypesR(Types);
  uint32_t NumTypes = TypesR.u32();
  for (uint32_t I = 0; TypesR.ok() && I != NumTypes; ++I) {
    std::string Name(TypesR.str());
    std::string Text(TypesR.str());
    if (TypesR.ok())
      Comp->HydratedTypes.emplace(std::move(Name), std::move(Text));
  }
  if (!TypesR.ok())
    return nullptr;

  ByteReader TermsR(Terms);
  uint32_t NumTerms = TermsR.u32();
  if (!TermsR.ok())
    return nullptr;
  for (uint32_t I = 0; I != NumTerms; ++I) {
    std::string Name(TermsR.str());
    uint8_t Ok = TermsR.u8();
    if (!TermsR.ok() || Ok > 1)
      return nullptr;
    if (Ok) {
      const Term *T = levc::readTerm(TermsR, MP.MC);
      if (!T)
        return nullptr;
      MP.MTerms.emplace(std::move(Name), Result<const Term *>(T));
    } else {
      std::string Error(TermsR.str());
      if (!TermsR.ok())
        return nullptr;
      MP.MTerms.emplace(std::move(Name),
                        Result<const Term *>(err(std::move(Error))));
    }
  }

  // The optional CORE section: rebuild the elaborated program so tree
  // runs (and program()/globalType()) need no front end at all. A
  // malformed section is ignored — the lazy front-end rebuild still
  // covers those consumers. The decode is dry-run against a scratch
  // context first: decoding mutates the context (tycons/datacons are
  // created as they stream in), and a half-decoded failure must leave
  // Comp's context pristine or the front-end fallback would
  // re-elaborate into it and trip duplicate-definition errors.
  if (!Core.empty()) {
    core::CoreContext Scratch;
    core::CoreProgram ScratchProg;
    std::vector<Symbol> ScratchNames;
    ByteReader Probe(Core);
    if (levc::readCoreSection(Probe, Scratch, ScratchProg,
                              ScratchNames)) {
      ByteReader CoreR(Core);
      core::CoreProgram Prog;
      std::vector<Symbol> UserBindings;
      if (levc::readCoreSection(CoreR, Comp->C, Prog, UserBindings)) {
        surface::ElabOutput Out;
        Out.Program = std::move(Prog);
        Out.UserBindings = std::move(UserBindings);
        Comp->Elaborated = std::move(Out);
        Comp->HydratedCore = true;
      }
    }
  }

  // The optional BCOD section: pre-populate the bytecode-module memo so
  // Bytecode-backend runs skip even the bytecode compiler. All-or-
  // nothing: decode into a staging list first, and ignore the whole
  // section on any malformed module (readBytecodeModule re-validates
  // every module, so a corrupt payload can never reach the VM) —
  // Backend::Bytecode then lazily recompiles from the restored M terms.
  if (!Bc.empty()) {
    ByteReader BcR(Bc);
    uint32_t NumMods = BcR.u32();
    bool BcOk = BcR.ok() && NumMods <= MP.MTerms.size();
    std::vector<
        std::pair<std::string, std::shared_ptr<const bytecode::Module>>>
        Staged;
    for (uint32_t I = 0; BcOk && I != NumMods; ++I) {
      std::string Name(BcR.str());
      std::shared_ptr<const bytecode::Module> M =
          levc::readBytecodeModule(BcR);
      if (!BcR.ok() || !M) {
        BcOk = false;
        break;
      }
      Staged.emplace_back(std::move(Name), std::move(M));
    }
    if (BcOk && NumMods > 0) {
      for (auto &KV : Staged)
        MP.BModules.emplace(
            std::move(KV.first),
            Result<std::shared_ptr<const bytecode::Module>>(
                std::move(KV.second)));
      Comp->HydratedBytecode = true;
    }
  }

  Comp->Timings.push_back({"hydrate", millisSince(Start)});
  Comp->Succeeded = true;
  return Comp;
}
