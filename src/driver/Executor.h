//===- Executor.h - Per-thread execution state for a Compilation -*- C++ -*-===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The mutable half of the driver's artifact/executor split. A
/// Compilation (Session.h) is an immutable, shareable artifact; an
/// Executor owns everything one *thread of execution* needs to run it:
///
///   * the instrumented tree-interpreter instance (value pool, persistent
///     environments, memoized global thunks);
///   * per-executor fuel knobs (options() is a private copy of the
///     session's CompileOptions);
///   * ad-hoc expression evaluation against the compilation's context
///     (the cost-model workloads' evalExpr).
///
/// Executors are cheap (the interpreter is built on first tree run) and
/// single-threaded by design: create one per thread over a shared
/// Compilation.
///
/// \code
///   auto Comp = S.compile(Src);            // shared, immutable
///   std::thread Worker([Comp] {
///     driver::Executor Ex(Comp);           // this thread's run state
///     driver::RunResult R = Ex.run("answer");
///     driver::RunResult M = Ex.run("answer",
///                                  driver::Backend::AbstractMachine);
///   });
///   Worker.join();
/// \endcode
///
/// Because one Executor keeps its interpreter alive, repeated tree runs
/// share memoized global thunks — the second `Ex.run("answer")` performs
/// zero heap allocation. `Compilation::run` (which builds a transient
/// Executor per call) re-evaluates globals each time.
///
//===----------------------------------------------------------------------===//

#ifndef LEVITY_DRIVER_EXECUTOR_H
#define LEVITY_DRIVER_EXECUTOR_H

#include "driver/Session.h"

#include <string>
#include <unordered_map>

namespace levity {
namespace driver {

/// Mutable per-thread run state over an immutable Compilation.
class Executor {
public:
  /// Binds this executor to \p Comp (shared, keeps the artifact alive).
  /// Cheap: the tree interpreter is only built on first tree run.
  explicit Executor(std::shared_ptr<const Compilation> Comp);
  /// Movable (transfers the interpreter state), not copyable — run
  /// state belongs to exactly one thread at a time.
  Executor(Executor &&) noexcept;
  Executor &operator=(Executor &&) noexcept;
  ~Executor();

  /// The immutable artifact this executor runs (never null).
  const Compilation &compilation() const { return *Comp; }

  /// This executor's private option copy: tweak fuel (MaxInterpSteps,
  /// MaxMachineSteps, MaxFormalSteps) or the default backend per thread.
  CompileOptions &options() { return Opts; }
  const CompileOptions &options() const { return Opts; }

  //===------------------------------------------------------------------===//
  // Running surface/programmatic compilations
  //===------------------------------------------------------------------===//

  /// Evaluates top-level \p Name on the executor's default backend.
  RunResult run(std::string_view Name);
  /// Evaluates top-level \p Name on a specific backend. Tree runs share
  /// this executor's interpreter (memoized globals persist across
  /// calls); machine runs replay from an empty heap every time. On a
  /// store-hydrated Compilation, the first tree run triggers the lazy
  /// front-end rebuild — machine runs never do.
  RunResult run(std::string_view Name, Backend B);

  //===------------------------------------------------------------------===//
  // Running formal compilations (Section 6)
  //===------------------------------------------------------------------===//

  /// Runs a compileFormal term on the executor's default backend.
  RunResult run();
  /// Runs a compileFormal term: Figure 4 small-step semantics on
  /// TreeInterp, Figures 5-7 (ANF → the M machine) on AbstractMachine.
  RunResult run(Backend B);

  //===------------------------------------------------------------------===//
  // The raw interpreter (cost-model workloads)
  //===------------------------------------------------------------------===//

  /// The instrumented tree-interpreter with this program loaded. Exposed
  /// so cost-model workloads can evaluate ad-hoc expressions built
  /// against the compilation's ctx() without re-wiring a pipeline.
  /// Single-threaded like the rest of the executor; lives as long as
  /// this Executor (references into it must not outlive it).
  runtime::Interp &interp();
  /// Evaluates top-level \p Name on the raw interpreter (low-level
  /// counterpart of run(Name, Backend::TreeInterp)).
  runtime::InterpResult evalName(std::string_view Name);
  /// Evaluates an ad-hoc core expression (allocated in the
  /// compilation's ctx()) against this executor's interpreter state.
  runtime::InterpResult evalExpr(const core::Expr *E);

private:
  RunResult runTree(std::string_view Name);
  RunResult runMachine(std::string_view Name);
  RunResult runBytecode(std::string_view Name);
  RunResult runFormal(Backend B);

  /// This executor's VM instance (built on first bytecode run; its
  /// stacks/heap are reused across runs, like the tree interpreter).
  bytecode::Vm &vm();

  /// This executor's *run-scoped* M context (built on first machine run).
  /// Machine runs allocate their substitution terms and heap cells here
  /// instead of the Compilation's shared MContext, and the context is
  /// reset (arena rewound, name counter restarted) at the start of every
  /// run — so a long-lived Executor's machine runs plateau instead of
  /// growing the shared arena forever. Restarting the name counter is
  /// sound because Symbol identity is per-table: a run-minted "p0" can
  /// never collide with a compiled term's "p0" (different SymbolTables).
  /// Everything a run result outlives the reset by (Display text,
  /// scalars) is copied out of MachineResult before the next run.
  mcalc::MContext &runContext();

  std::shared_ptr<const Compilation> Comp;
  CompileOptions Opts;
  std::unique_ptr<runtime::Interp> TreeInterp;
  std::unique_ptr<bytecode::Vm> BVm;
  std::unique_ptr<mcalc::MContext> RunMC;
  /// Memoized lookup vars for evalName: repeated runs of the same global
  /// reuse one scratch VarExpr instead of growing the compilation's
  /// shared core arena per run.
  std::unordered_map<std::string, const core::Expr *> NameExprs;
};

} // namespace driver
} // namespace levity

#endif // LEVITY_DRIVER_EXECUTOR_H
