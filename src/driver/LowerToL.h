//===- LowerToL.h - Lowering core IR into the L calculus --------*- C++ -*-===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers elaborated core programs into closed L expressions (Figure 2)
/// so that surface programs can be executed on the paper's formal
/// backend: L → (Figure 7 ANF compilation) → M → the Figure 6 abstract
/// machine. This is the bridge the driver's Backend::AbstractMachine
/// rides.
///
/// The lowering targets L's executable fragment: Int, Int#, Double#,
/// arrows, ∀, algebraic data (each saturated data-type instantiation
/// the program touches — Bool, Maybe Int, user-declared types, boxed
/// Double — becomes an L data declaration with instantiated field
/// types), the full binary primop set (arithmetic and comparisons over
/// both unboxed sorts; unary negation lowers through subtraction from
/// zero; isTrue# lowers to a literal case producing Bool), every case
/// shape — constructor alternatives, Int#/Double# literal alternatives,
/// and default-only — through the one L tag-dispatch case, and
/// recursion — single-binding letrec and self-recursive globals lower
/// to L's fix, which the M compilation ties through a heap knot.
///
/// The lowering is still deliberately *partial*: anything outside that
/// fragment (strings, unboxed tuples, mutual recursion, conversions,
/// non-exhaustive constructor cases without a default) fails with a
/// descriptive "not expressible in L" message and the driver reports
/// the program as unsupported on that backend rather than guessing.
/// tests/driver_test.cpp pins one test per remaining boundary so
/// fragment growth stays deliberate.
///
/// Global references are resolved by binding each (transitively needed)
/// top-level definition with a lambda:
///
///   ⟦g = rhs; … ; e⟧  =  (λg:τ_g. ⟦…; e⟧) ⟦rhs⟧
///
/// which L's kind-directed application rules evaluate with exactly the
/// strictness the binding's type prescribes (TYPE P binders become
/// M heap thunks, TYPE I binders evaluate eagerly). A self-recursive
/// global's right-hand side becomes `fix g:τ_g. ⟦rhs⟧`.
///
//===----------------------------------------------------------------------===//

#ifndef LEVITY_DRIVER_LOWERTOL_H
#define LEVITY_DRIVER_LOWERTOL_H

#include "core/CoreContext.h"
#include "core/Program.h"
#include "core/TypeCheck.h"
#include "lcalc/Syntax.h"
#include "support/Result.h"

#include <optional>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace levity {
namespace driver {

/// Translates one core global (and its dependency cone) per call.
class CoreToL {
public:
  CoreToL(core::CoreContext &C, lcalc::LContext &L) : C(C), L(L) {}

  /// Lowers `Name` from \p P into a closed L expression whose value is
  /// the global's value. Fails (with a "not expressible in L" reason)
  /// outside the supported fragment.
  Result<const lcalc::Expr *> lowerGlobal(const core::CoreProgram &P,
                                          Symbol Name);

  /// Lowers a zonked core type into L (used for binder annotations).
  Result<const lcalc::Type *> lowerType(const core::Type *T);

private:
  Result<lcalc::LKind> lowerKind(const core::Kind *K);
  Result<lcalc::RuntimeRep> lowerRep(const core::RepTy *R);
  Result<const lcalc::Expr *> lowerExpr(const core::Expr *E);

  /// Lowers every core case shape — constructor alternatives, literal
  /// alternatives, and default-only — through the one L tag-dispatch
  /// case (which ANF compiles to the M switch).
  Result<const lcalc::Expr *> lowerCase(const core::CaseExpr *Case);

  /// The L data declaration for the saturated application of \p TC to
  /// \p TyArgs, instantiating every constructor's field types. Each
  /// distinct instantiation is declared once per LContext (keyed by its
  /// display name, e.g. "Maybe Int") and shape-checked on reuse.
  Result<const lcalc::LDataDecl *>
  dataDeclFor(const core::TyCon *TC,
              std::span<const core::Type *const> TyArgs);

  /// Splits a zonked type into a tycon head and its argument spine.
  /// Null head when the type is not a (possibly applied) tycon.
  const core::TyCon *typeHead(const core::Type *T,
                              std::vector<const core::Type *> &Args);

  /// Computes (and zonks) the core type of \p E under the binders
  /// currently in scope — used to recover the scrutinee's type-argument
  /// instantiation for polymorphic constructor cases.
  Result<const core::Type *> scrutType(const core::Expr *E);

  /// Collects the program globals referenced free in \p E (respecting
  /// local shadowing) into \p Out.
  void globalRefs(const core::CoreProgram &P, const core::Expr *E,
                  std::vector<Symbol> &Bound, std::vector<Symbol> &Out);

  /// Lowers one top-level binding's right-hand side, wrapping it in
  /// `fix` when \p SelfRecursive (as recorded by orderDeps).
  Result<const lcalc::Expr *> lowerBindingRhs(const core::TopBinding *B,
                                              bool SelfRecursive);

  /// Topologically orders Name's dependency cone (dependencies first,
  /// Name last), recording self-referencing bindings in \p SelfRec
  /// (they lower to fix). Mutual recursion fails, which L cannot
  /// express.
  Result<bool> orderDeps(const core::CoreProgram &P, Symbol Name,
                         std::unordered_set<Symbol, SymbolHash> &Visiting,
                         std::unordered_set<Symbol, SymbolHash> &Done,
                         std::vector<Symbol> &Order,
                         std::unordered_set<Symbol, SymbolHash> &SelfRec);

  Symbol reintern(Symbol S) { return L.sym(S.str()); }

  core::CoreContext &C;
  lcalc::LContext &L;

  /// String-typed binders currently in scope and the literal bound to
  /// them — elaboration's administrative `error "msg"` redex is the one
  /// producer; the error node's message is the one consumer.
  std::unordered_map<Symbol, Symbol, SymbolHash> StringEnv;

  /// Core-level typing state mirrored alongside the lowering: binders
  /// are pushed/popped in lockstep with lowerExpr so scrutType can ask
  /// the core checker for a scrutinee's type mid-lowering.
  core::CoreChecker Checker{C};
  core::CoreEnv CoreScope;

  /// Data-decl instantiations this lowering has produced, keyed by
  /// (tycon identity, zonked type-argument spine) — the map handles
  /// in-progress recursive decls (e.g. cons lists); completed decls are
  /// additionally found by display name in the shared LContext.
  std::unordered_map<std::string, const lcalc::LDataDecl *> DeclCache;
};

} // namespace driver
} // namespace levity

#endif // LEVITY_DRIVER_LOWERTOL_H
