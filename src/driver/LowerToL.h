//===- LowerToL.h - Lowering core IR into the L calculus --------*- C++ -*-===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers elaborated core programs into closed L expressions (Figure 2)
/// so that surface programs can be executed on the paper's formal
/// backend: L → (Figure 7 ANF compilation) → M → the Figure 6 abstract
/// machine. This is the bridge the driver's Backend::AbstractMachine
/// rides.
///
/// The lowering is deliberately *partial*: L is the paper's minimal
/// calculus (Int, Int#, arrows, ∀, I#, one-armed case, integer
/// arithmetic), so only the core fragment with a direct L image is
/// translated — anything else (Double#, strings, algebraic data beyond
/// Int, unboxed tuples, recursion) fails with a descriptive message and
/// the driver reports the program as unsupported on that backend rather
/// than guessing.
///
/// Global references are resolved by binding each (transitively needed,
/// non-recursive) top-level definition with a lambda:
///
///   ⟦g = rhs; … ; e⟧  =  (λg:τ_g. ⟦…; e⟧) ⟦rhs⟧
///
/// which L's kind-directed application rules evaluate with exactly the
/// strictness the binding's type prescribes (TYPE P binders become
/// M heap thunks, TYPE I binders evaluate eagerly).
///
//===----------------------------------------------------------------------===//

#ifndef LEVITY_DRIVER_LOWERTOL_H
#define LEVITY_DRIVER_LOWERTOL_H

#include "core/CoreContext.h"
#include "core/Program.h"
#include "lcalc/Syntax.h"
#include "support/Result.h"

#include <unordered_set>
#include <vector>

namespace levity {
namespace driver {

/// Translates one core global (and its dependency cone) per call.
class CoreToL {
public:
  CoreToL(core::CoreContext &C, lcalc::LContext &L) : C(C), L(L) {}

  /// Lowers `Name` from \p P into a closed L expression whose value is
  /// the global's value. Fails (with a "not expressible in L" reason)
  /// outside the supported fragment.
  Result<const lcalc::Expr *> lowerGlobal(const core::CoreProgram &P,
                                          Symbol Name);

  /// Lowers a zonked core type into L (used for binder annotations).
  Result<const lcalc::Type *> lowerType(const core::Type *T);

private:
  Result<lcalc::LKind> lowerKind(const core::Kind *K);
  Result<lcalc::RuntimeRep> lowerRep(const core::RepTy *R);
  Result<const lcalc::Expr *> lowerExpr(const core::Expr *E);

  /// Collects the program globals referenced free in \p E (respecting
  /// local shadowing) into \p Out.
  void globalRefs(const core::CoreProgram &P, const core::Expr *E,
                  std::vector<Symbol> &Bound, std::vector<Symbol> &Out);

  /// Topologically orders Name's dependency cone (dependencies first,
  /// Name last); fails on recursion, which L cannot express.
  Result<bool> orderDeps(const core::CoreProgram &P, Symbol Name,
                         std::unordered_set<Symbol, SymbolHash> &Visiting,
                         std::unordered_set<Symbol, SymbolHash> &Done,
                         std::vector<Symbol> &Order);

  Symbol reintern(Symbol S) { return L.sym(S.str()); }

  core::CoreContext &C;
  lcalc::LContext &L;
};

} // namespace driver
} // namespace levity

#endif // LEVITY_DRIVER_LOWERTOL_H
