//===- LowerToL.h - Lowering core IR into the L calculus --------*- C++ -*-===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers elaborated core programs into closed L expressions (Figure 2)
/// so that surface programs can be executed on the paper's formal
/// backend: L → (Figure 7 ANF compilation) → M → the Figure 6 abstract
/// machine. This is the bridge the driver's Backend::AbstractMachine
/// rides.
///
/// The lowering targets L's executable fragment: Int, Int#, Double#,
/// arrows, ∀, I#, the one-armed unboxing case, the full binary primop
/// set (arithmetic and comparisons over both unboxed sorts; unary
/// negation lowers through subtraction from zero), literal cases with a
/// default (encoded as if0 chains of /=# tests), and recursion —
/// single-binding letrec and self-recursive globals lower to L's fix,
/// which the M compilation ties through a heap knot.
///
/// The lowering is still deliberately *partial*: anything outside that
/// fragment (strings, algebraic data beyond Int, unboxed tuples, mutual
/// recursion, conversions, default-only or non-I# constructor cases)
/// fails with a descriptive "not expressible in L" message and the
/// driver reports the program as unsupported on that backend rather than
/// guessing. tests/driver_test.cpp pins one test per remaining boundary
/// so fragment growth stays deliberate.
///
/// Global references are resolved by binding each (transitively needed)
/// top-level definition with a lambda:
///
///   ⟦g = rhs; … ; e⟧  =  (λg:τ_g. ⟦…; e⟧) ⟦rhs⟧
///
/// which L's kind-directed application rules evaluate with exactly the
/// strictness the binding's type prescribes (TYPE P binders become
/// M heap thunks, TYPE I binders evaluate eagerly). A self-recursive
/// global's right-hand side becomes `fix g:τ_g. ⟦rhs⟧`.
///
//===----------------------------------------------------------------------===//

#ifndef LEVITY_DRIVER_LOWERTOL_H
#define LEVITY_DRIVER_LOWERTOL_H

#include "core/CoreContext.h"
#include "core/Program.h"
#include "lcalc/Syntax.h"
#include "support/Result.h"

#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace levity {
namespace driver {

/// Translates one core global (and its dependency cone) per call.
class CoreToL {
public:
  CoreToL(core::CoreContext &C, lcalc::LContext &L) : C(C), L(L) {}

  /// Lowers `Name` from \p P into a closed L expression whose value is
  /// the global's value. Fails (with a "not expressible in L" reason)
  /// outside the supported fragment.
  Result<const lcalc::Expr *> lowerGlobal(const core::CoreProgram &P,
                                          Symbol Name);

  /// Lowers a zonked core type into L (used for binder annotations).
  Result<const lcalc::Type *> lowerType(const core::Type *T);

private:
  Result<lcalc::LKind> lowerKind(const core::Kind *K);
  Result<lcalc::RuntimeRep> lowerRep(const core::RepTy *R);
  Result<const lcalc::Expr *> lowerExpr(const core::Expr *E);

  /// Collects the program globals referenced free in \p E (respecting
  /// local shadowing) into \p Out.
  void globalRefs(const core::CoreProgram &P, const core::Expr *E,
                  std::vector<Symbol> &Bound, std::vector<Symbol> &Out);

  /// Lowers one top-level binding's right-hand side, wrapping it in
  /// `fix` when \p SelfRecursive (as recorded by orderDeps).
  Result<const lcalc::Expr *> lowerBindingRhs(const core::TopBinding *B,
                                              bool SelfRecursive);

  /// Topologically orders Name's dependency cone (dependencies first,
  /// Name last), recording self-referencing bindings in \p SelfRec
  /// (they lower to fix). Mutual recursion fails, which L cannot
  /// express.
  Result<bool> orderDeps(const core::CoreProgram &P, Symbol Name,
                         std::unordered_set<Symbol, SymbolHash> &Visiting,
                         std::unordered_set<Symbol, SymbolHash> &Done,
                         std::vector<Symbol> &Order,
                         std::unordered_set<Symbol, SymbolHash> &SelfRec);

  Symbol reintern(Symbol S) { return L.sym(S.str()); }

  core::CoreContext &C;
  lcalc::LContext &L;

  /// String-typed binders currently in scope and the literal bound to
  /// them — elaboration's administrative `error "msg"` redex is the one
  /// producer; the error node's message is the one consumer.
  std::unordered_map<Symbol, Symbol, SymbolHash> StringEnv;
};

} // namespace driver
} // namespace levity

#endif // LEVITY_DRIVER_LOWERTOL_H
