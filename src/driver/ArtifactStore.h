//===- ArtifactStore.h - Content-addressed on-disk artifact store -*- C++ -*-===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The persistent half of the Session compilation cache: a
/// content-addressed directory of serialized `.levc` artifacts
/// (driver/Serialize.h) keyed by source hash, shared by any number of
/// processes. Layout:
///
/// \code
///   <root>/<2-hex>/<16-hex>.levc     e.g.  store/a3/a3f09c…e41b.levc
/// \endcode
///
/// (the 2-hex fan-out directory is the top byte of the key, so giant
/// stores do not degrade into one million-entry directory).
///
/// Concurrency and crash-safety contract:
///   * Readers never lock: load() reads whatever file is currently
///     published under the key. Artifacts validate themselves (magic,
///     version fingerprint, checksum, exact source compare) so a reader
///     can never be hurt by a stale or foreign file — worst case it
///     reports a miss and the caller recompiles.
///   * Writers publish with temp-file + atomic rename and serialize with
///     a per-store advisory lock (support/FileOps.h), so two processes
///     warming the same store never interleave partial writes and a
///     crash mid-store leaves no torn entry.
///   * Eviction (evictOver) removes oldest-modified entries beyond a cap;
///     racing a reader is benign — the reader's open file stays valid on
///     POSIX, and a vanished file is just a miss.
///
/// The store is deliberately dumb: all format knowledge lives in
/// Serialize.h, all policy (when to read, when to write, counters) in
/// Session. That keeps "what is on disk" reviewable in one place
/// (docs/ARTIFACT_FORMAT.md).
///
//===----------------------------------------------------------------------===//

#ifndef LEVITY_DRIVER_ARTIFACTSTORE_H
#define LEVITY_DRIVER_ARTIFACTSTORE_H

#include "support/Result.h"

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace levity {
namespace driver {

/// A content-addressed directory of `.levc` artifacts. Cheap value-ish
/// object (holds only the root path); thread-safe — every method may be
/// called from any thread or process concurrently.
class ArtifactStore {
public:
  /// Uses \p Root as the store directory (created lazily on first
  /// write; a missing root simply makes every load a miss).
  explicit ArtifactStore(std::string Root);

  /// The store root this instance serves.
  const std::string &root() const { return Root; }

  /// The path an artifact for \p Key lives at (whether or not it exists).
  std::string entryPath(uint64_t Key) const;

  /// Reads the artifact bytes stored under \p Key. nullopt when absent
  /// or unreadable; content validation is the caller's job (via
  /// Compilation::deserializeArtifact).
  std::optional<std::string> load(uint64_t Key) const;

  /// Publishes \p Bytes under \p Key: takes the store's advisory writer
  /// lock, writes a temp file, fsyncs, and atomically renames it into
  /// place. Returns false (after cleaning up) on I/O failure — the store
  /// is a cache, so failures are non-fatal and leave prior state intact.
  bool store(uint64_t Key, std::string_view Bytes);

  /// Removes the entry for \p Key if present.
  bool remove(uint64_t Key);

  /// Number of `.levc` entries currently in the store.
  size_t countEntries() const;

  /// Total size in bytes of every `.levc` entry currently in the store.
  uint64_t totalBytes() const;

  /// Enforces an entry-count bound: when more than \p MaxEntries
  /// artifacts exist, removes the oldest-modified ones until the bound
  /// holds (under the writer lock, so concurrent warmers do not
  /// double-evict). \returns how many entries were removed. No-op when
  /// MaxEntries == 0. Equivalent to evictToBudget(MaxEntries, 0).
  size_t evictOver(size_t MaxEntries);

  /// Enforces both store budgets at once: removes oldest-modified
  /// entries until at most \p MaxEntries remain (0 = unbounded) *and*
  /// their total size is at most \p MaxBytes (0 = unbounded). The byte
  /// budget is the primary production bound — artifact sizes vary, so a
  /// count cap alone cannot bound disk usage. \returns the number of
  /// entries removed.
  size_t evictToBudget(size_t MaxEntries, uint64_t MaxBytes);

private:
  /// One store entry: modification time (eviction order), size (byte
  /// budget), path.
  struct EntryInfo {
    int64_t MTimeTicks;
    uint64_t SizeBytes;
    std::string Path;
  };

  std::string lockPath() const;
  /// Every existing entry, unsorted.
  std::vector<EntryInfo> listEntries() const;

  std::string Root;
};

} // namespace driver
} // namespace levity

#endif // LEVITY_DRIVER_ARTIFACTSTORE_H
