//===- ArtifactStore.cpp - Content-addressed on-disk artifact store -------===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "driver/ArtifactStore.h"
#include "support/FileOps.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <system_error>

using namespace levity;
using namespace levity::driver;

namespace fs = std::filesystem;

ArtifactStore::ArtifactStore(std::string Root) : Root(std::move(Root)) {}

std::string ArtifactStore::entryPath(uint64_t Key) const {
  char Name[32];
  std::snprintf(Name, sizeof(Name), "%016llx.levc",
                static_cast<unsigned long long>(Key));
  char Fan[3];
  std::snprintf(Fan, sizeof(Fan), "%02llx",
                static_cast<unsigned long long>(Key >> 56));
  return Root + "/" + Fan + "/" + Name;
}

std::string ArtifactStore::lockPath() const { return Root + "/.levc.lock"; }

std::optional<std::string> ArtifactStore::load(uint64_t Key) const {
  Result<std::string> Bytes = support::readFileBinary(entryPath(Key));
  if (!Bytes)
    return std::nullopt;
  return std::move(*Bytes);
}

bool ArtifactStore::store(uint64_t Key, std::string_view Bytes) {
  if (!support::ensureDirectories(Root))
    return false;
  // Writers serialize on the store-wide advisory lock; readers do not
  // take it (rename is the publication point), so a long warm-up never
  // stalls consumers.
  support::FileLock Lock(lockPath());
  return static_cast<bool>(support::writeFileAtomic(entryPath(Key), Bytes));
}

bool ArtifactStore::remove(uint64_t Key) {
  return support::removeFile(entryPath(Key));
}

std::vector<std::pair<int64_t, std::string>>
ArtifactStore::listEntries() const {
  std::vector<std::pair<int64_t, std::string>> Entries;
  std::error_code EC;
  fs::recursive_directory_iterator It(Root, EC), End;
  for (; !EC && It != End; It.increment(EC)) {
    if (!It->is_regular_file(EC) || It->path().extension() != ".levc")
      continue;
    auto MTime = fs::last_write_time(It->path(), EC);
    int64_t Ticks =
        EC ? 0 : MTime.time_since_epoch().count();
    Entries.emplace_back(Ticks, It->path().string());
  }
  return Entries;
}

size_t ArtifactStore::countEntries() const {
  // Count-only walk: no per-entry mtime stat (evictOver runs this after
  // every write-behind store write, so keep the under-cap path cheap).
  size_t N = 0;
  std::error_code EC;
  fs::recursive_directory_iterator It(Root, EC), End;
  for (; !EC && It != End; It.increment(EC))
    if (It->is_regular_file(EC) && It->path().extension() == ".levc")
      ++N;
  return N;
}

size_t ArtifactStore::evictOver(size_t MaxEntries) {
  if (MaxEntries == 0)
    return 0;
  // Lock-free pre-check: warm-up loops call this per write, and stores
  // under the cap should pay one directory walk, not a stat+sort of
  // every entry under the writer lock. Racing writers only delay
  // eviction by one write, never corrupt it.
  if (countEntries() <= MaxEntries)
    return 0;
  support::FileLock Lock(lockPath());
  std::vector<std::pair<int64_t, std::string>> Entries = listEntries();
  if (Entries.size() <= MaxEntries)
    return 0;
  // Oldest modification time first; ties broken by path for determinism.
  std::sort(Entries.begin(), Entries.end());
  size_t Evicted = 0;
  for (size_t I = 0, Excess = Entries.size() - MaxEntries; I != Excess; ++I)
    if (support::removeFile(Entries[I].second))
      ++Evicted;
  return Evicted;
}
