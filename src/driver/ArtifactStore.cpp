//===- ArtifactStore.cpp - Content-addressed on-disk artifact store -------===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "driver/ArtifactStore.h"
#include "support/FileOps.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <system_error>

using namespace levity;
using namespace levity::driver;

namespace fs = std::filesystem;

ArtifactStore::ArtifactStore(std::string Root) : Root(std::move(Root)) {}

std::string ArtifactStore::entryPath(uint64_t Key) const {
  char Name[32];
  std::snprintf(Name, sizeof(Name), "%016llx.levc",
                static_cast<unsigned long long>(Key));
  char Fan[3];
  std::snprintf(Fan, sizeof(Fan), "%02llx",
                static_cast<unsigned long long>(Key >> 56));
  return Root + "/" + Fan + "/" + Name;
}

std::string ArtifactStore::lockPath() const { return Root + "/.levc.lock"; }

std::optional<std::string> ArtifactStore::load(uint64_t Key) const {
  Result<std::string> Bytes = support::readFileBinary(entryPath(Key));
  if (!Bytes)
    return std::nullopt;
  return std::move(*Bytes);
}

bool ArtifactStore::store(uint64_t Key, std::string_view Bytes) {
  if (!support::ensureDirectories(Root))
    return false;
  // Writers serialize on the store-wide advisory lock; readers do not
  // take it (rename is the publication point), so a long warm-up never
  // stalls consumers.
  support::FileLock Lock(lockPath());
  return static_cast<bool>(support::writeFileAtomic(entryPath(Key), Bytes));
}

bool ArtifactStore::remove(uint64_t Key) {
  return support::removeFile(entryPath(Key));
}

std::vector<ArtifactStore::EntryInfo> ArtifactStore::listEntries() const {
  std::vector<EntryInfo> Entries;
  std::error_code EC;
  fs::recursive_directory_iterator It(Root, EC), End;
  for (; !EC && It != End; It.increment(EC)) {
    if (!It->is_regular_file(EC) || It->path().extension() != ".levc")
      continue;
    auto MTime = fs::last_write_time(It->path(), EC);
    int64_t Ticks = EC ? 0 : MTime.time_since_epoch().count();
    uint64_t Size = It->file_size(EC);
    if (EC)
      Size = 0;
    Entries.push_back({Ticks, Size, It->path().string()});
  }
  return Entries;
}

size_t ArtifactStore::countEntries() const {
  // Count-only walk: no per-entry mtime stat (eviction runs this after
  // every write-behind store write, so keep the under-cap path cheap).
  size_t N = 0;
  std::error_code EC;
  fs::recursive_directory_iterator It(Root, EC), End;
  for (; !EC && It != End; It.increment(EC))
    if (It->is_regular_file(EC) && It->path().extension() == ".levc")
      ++N;
  return N;
}

uint64_t ArtifactStore::totalBytes() const {
  uint64_t Total = 0;
  std::error_code EC;
  fs::recursive_directory_iterator It(Root, EC), End;
  for (; !EC && It != End; It.increment(EC)) {
    if (!It->is_regular_file(EC) || It->path().extension() != ".levc")
      continue;
    uint64_t Size = It->file_size(EC);
    if (!EC)
      Total += Size;
  }
  return Total;
}

size_t ArtifactStore::evictOver(size_t MaxEntries) {
  return evictToBudget(MaxEntries, 0);
}

size_t ArtifactStore::evictToBudget(size_t MaxEntries, uint64_t MaxBytes) {
  if (MaxEntries == 0 && MaxBytes == 0)
    return 0;
  // Lock-free pre-check: warm-up loops call this per write, and stores
  // under both caps should pay one directory walk, not a stat+sort of
  // every entry under the writer lock. Racing writers only delay
  // eviction by one write, never corrupt it.
  size_t PreCount = 0;
  uint64_t PreBytes = 0;
  {
    std::error_code EC;
    fs::recursive_directory_iterator It(Root, EC), End;
    for (; !EC && It != End; It.increment(EC)) {
      if (!It->is_regular_file(EC) || It->path().extension() != ".levc")
        continue;
      ++PreCount;
      uint64_t Size = It->file_size(EC);
      if (!EC)
        PreBytes += Size;
    }
  }
  bool OverEntries = MaxEntries != 0 && PreCount > MaxEntries;
  bool OverBytes = MaxBytes != 0 && PreBytes > MaxBytes;
  if (!OverEntries && !OverBytes)
    return 0;
  support::FileLock Lock(lockPath());
  std::vector<EntryInfo> Entries = listEntries();
  // Oldest modification time first; ties broken by path for determinism.
  std::sort(Entries.begin(), Entries.end(),
            [](const EntryInfo &A, const EntryInfo &B) {
              return A.MTimeTicks != B.MTimeTicks
                         ? A.MTimeTicks < B.MTimeTicks
                         : A.Path < B.Path;
            });
  uint64_t Bytes = 0;
  for (const EntryInfo &E : Entries)
    Bytes += E.SizeBytes;
  size_t Remaining = Entries.size();
  size_t Evicted = 0;
  for (const EntryInfo &E : Entries) {
    bool TooMany = MaxEntries != 0 && Remaining > MaxEntries;
    bool TooBig = MaxBytes != 0 && Bytes > MaxBytes;
    if (!TooMany && !TooBig)
      break;
    if (support::removeFile(E.Path))
      ++Evicted;
    // Count the entry against both budgets even if the unlink raced a
    // concurrent remover — the file is gone either way.
    --Remaining;
    Bytes -= E.SizeBytes;
  }
  return Evicted;
}
