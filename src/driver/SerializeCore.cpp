//===- SerializeCore.cpp - The .levc CORE section -------------------------===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//
//
// Encodes/decodes the elaborated core program so a store-hydrated
// Compilation can serve *tree-backend* runs without re-running the front
// end (lex/parse/elaborate). Layout of the CORE section payload:
//
//   u32 numTyCons
//     per tycon: name, kind, resultRep,
//                u32 numDataCons, per datacon:
//                  name, u32 numUnivs × (name, kind),
//                  u32 numFields × type
//   u32 numBindings    per binding: name, type, expr
//   u32 numUserBindings × name
//
// Types, kinds, and reps are zonked on the way out; an unsolved
// metavariable aborts the encode (the writer then omits the section).
// Every read is defensive: any malformed input makes the decode return
// false and the hydrated Compilation falls back to the lazy front-end
// rebuild — the CORE section can make things faster, never wrong.
//
//===----------------------------------------------------------------------===//

#include "driver/Serialize.h"

#include <unordered_set>
#include <vector>

using namespace levity;
using namespace levity::driver;
using namespace levity::driver::levc;

namespace {

/// Decode refuses core structures nested/being sized beyond these — a
/// corrupt count must not become unbounded recursion or allocation.
constexpr unsigned MaxCoreDepth = 1u << 11;
constexpr uint32_t MaxCoreCount = 1u << 20;

constexpr uint32_t NumRepCtors = static_cast<uint32_t>(RepCtor::Sum) + 1;

//===----------------------------------------------------------------------===//
// Writer
//===----------------------------------------------------------------------===//

class CoreWriter {
public:
  CoreWriter(ByteWriter &W, core::CoreContext &C) : W(W), C(C) {}

  bool rep(const core::RepTy *R) {
    R = C.zonkRep(R);
    switch (R->tag()) {
    case core::RepTy::Tag::Var:
      W.u8(0);
      W.str(R->varName().str());
      return true;
    case core::RepTy::Tag::Atom:
      W.u8(1);
      W.u8(static_cast<uint8_t>(R->atom()));
      return true;
    case core::RepTy::Tag::Tuple:
    case core::RepTy::Tag::Sum: {
      W.u8(R->tag() == core::RepTy::Tag::Tuple ? 2 : 3);
      W.u32(static_cast<uint32_t>(R->elems().size()));
      for (const core::RepTy *E : R->elems())
        if (!rep(E))
          return false;
      return true;
    }
    case core::RepTy::Tag::Meta:
      return false; // Unsolved after zonking: not stably encodable.
    }
    return false;
  }

  bool kind(const core::Kind *K) {
    K = C.zonkKind(K);
    switch (K->tag()) {
    case core::Kind::Tag::TypeOf:
      W.u8(0);
      return rep(K->rep());
    case core::Kind::Tag::Rep:
      W.u8(1);
      return true;
    case core::Kind::Tag::Arrow:
      W.u8(2);
      return kind(K->param()) && kind(K->result());
    }
    return false;
  }

  bool type(const core::Type *T) {
    T = C.zonkType(T);
    switch (T->tag()) {
    case core::Type::Tag::Con:
      W.u8(0);
      W.str(core::cast<core::ConType>(T)->tycon()->name().str());
      return true;
    case core::Type::Tag::App: {
      const auto *A = core::cast<core::AppType>(T);
      W.u8(1);
      return type(A->fn()) && type(A->arg());
    }
    case core::Type::Tag::Fun: {
      const auto *F = core::cast<core::FunType>(T);
      W.u8(2);
      return type(F->param()) && type(F->result());
    }
    case core::Type::Tag::Var: {
      const auto *V = core::cast<core::VarType>(T);
      W.u8(3);
      W.str(V->name().str());
      return kind(V->kind());
    }
    case core::Type::Tag::ForAll: {
      const auto *F = core::cast<core::ForAllType>(T);
      W.u8(4);
      W.str(F->var().str());
      return kind(F->varKind()) && type(F->body());
    }
    case core::Type::Tag::UnboxedTuple: {
      const auto *U = core::cast<core::UnboxedTupleType>(T);
      W.u8(5);
      W.u32(static_cast<uint32_t>(U->elems().size()));
      for (const core::Type *E : U->elems())
        if (!type(E))
          return false;
      return true;
    }
    case core::Type::Tag::RepLift:
      W.u8(6);
      return rep(core::cast<core::RepLiftType>(T)->rep());
    case core::Type::Tag::Meta:
      return false; // Unsolved after zonking.
    }
    return false;
  }

  bool literal(const core::Literal &L) {
    switch (L.tag()) {
    case core::Literal::Tag::IntHash:
      W.u8(0);
      W.i64(L.intValue());
      return true;
    case core::Literal::Tag::DoubleHash:
      W.u8(1);
      W.f64(L.doubleValue());
      return true;
    case core::Literal::Tag::String:
      W.u8(2);
      W.str(L.stringValue().str());
      return true;
    }
    return false;
  }

  bool expr(const core::Expr *E) {
    switch (E->tag()) {
    case core::Expr::Tag::Var:
      W.u8(0);
      W.str(core::cast<core::VarExpr>(E)->name().str());
      return true;
    case core::Expr::Tag::Lit:
      W.u8(1);
      return literal(core::cast<core::LitExpr>(E)->lit());
    case core::Expr::Tag::App: {
      const auto *A = core::cast<core::AppExpr>(E);
      W.u8(2);
      W.u8(A->strictArg() ? 1 : 0);
      return expr(A->fn()) && expr(A->arg());
    }
    case core::Expr::Tag::TyApp: {
      const auto *A = core::cast<core::TyAppExpr>(E);
      W.u8(3);
      return expr(A->fn()) && type(A->tyArg());
    }
    case core::Expr::Tag::Lam: {
      const auto *L = core::cast<core::LamExpr>(E);
      W.u8(4);
      W.str(L->var().str());
      return type(L->varType()) && expr(L->body());
    }
    case core::Expr::Tag::TyLam: {
      const auto *L = core::cast<core::TyLamExpr>(E);
      W.u8(5);
      W.str(L->var().str());
      return kind(L->varKind()) && expr(L->body());
    }
    case core::Expr::Tag::Let: {
      const auto *L = core::cast<core::LetExpr>(E);
      W.u8(6);
      W.str(L->var().str());
      W.u8(L->strict() ? 1 : 0);
      return type(L->varType()) && expr(L->rhs()) && expr(L->body());
    }
    case core::Expr::Tag::LetRec: {
      const auto *L = core::cast<core::LetRecExpr>(E);
      W.u8(7);
      W.u32(static_cast<uint32_t>(L->bindings().size()));
      for (const core::RecBinding &B : L->bindings()) {
        W.str(B.Var.str());
        if (!type(B.VarTy) || !expr(B.Rhs))
          return false;
      }
      return expr(L->body());
    }
    case core::Expr::Tag::Case: {
      const auto *Cs = core::cast<core::CaseExpr>(E);
      W.u8(8);
      if (!expr(Cs->scrut()) || !type(Cs->resultType()))
        return false;
      W.u32(static_cast<uint32_t>(Cs->alts().size()));
      for (const core::Alt &A : Cs->alts()) {
        W.u8(static_cast<uint8_t>(A.Kind));
        switch (A.Kind) {
        case core::Alt::AltKind::ConPat:
          W.str(A.Con->name().str());
          W.u32(static_cast<uint32_t>(A.Binders.size()));
          for (Symbol B : A.Binders)
            W.str(B.str());
          break;
        case core::Alt::AltKind::LitPat:
          if (!literal(A.Lit))
            return false;
          break;
        case core::Alt::AltKind::TuplePat:
          W.u32(static_cast<uint32_t>(A.Binders.size()));
          for (Symbol B : A.Binders)
            W.str(B.str());
          break;
        case core::Alt::AltKind::Default:
          break;
        }
        if (!expr(A.Rhs))
          return false;
      }
      return true;
    }
    case core::Expr::Tag::Con: {
      const auto *Con = core::cast<core::ConExpr>(E);
      W.u8(9);
      W.str(Con->dataCon()->name().str());
      W.u32(static_cast<uint32_t>(Con->tyArgs().size()));
      for (const core::Type *T : Con->tyArgs())
        if (!type(T))
          return false;
      W.u32(static_cast<uint32_t>(Con->args().size()));
      for (const core::Expr *A : Con->args())
        if (!expr(A))
          return false;
      return true;
    }
    case core::Expr::Tag::Prim: {
      const auto *P = core::cast<core::PrimOpExpr>(E);
      W.u8(10);
      W.u8(static_cast<uint8_t>(P->op()));
      W.u32(static_cast<uint32_t>(P->args().size()));
      for (const core::Expr *A : P->args())
        if (!expr(A))
          return false;
      return true;
    }
    case core::Expr::Tag::UnboxedTuple: {
      const auto *U = core::cast<core::UnboxedTupleExpr>(E);
      W.u8(11);
      W.u32(static_cast<uint32_t>(U->elems().size()));
      for (const core::Expr *A : U->elems())
        if (!expr(A))
          return false;
      return true;
    }
    case core::Expr::Tag::Error: {
      const auto *Err = core::cast<core::ErrorExpr>(E);
      W.u8(12);
      return type(Err->atType()) && rep(Err->atRep()) &&
             expr(Err->message());
    }
    }
    return false;
  }

private:
  ByteWriter &W;
  core::CoreContext &C;
};

/// Collects every TyCon the program mentions — through types, data
/// constructors, and (transitively) datacon field types and kinds.
class TyConCollector {
public:
  explicit TyConCollector(core::CoreContext &C) : C(C) {}

  void fromRep(const core::RepTy *R) {
    R = C.zonkRep(R);
    if (R->tag() == core::RepTy::Tag::Tuple ||
        R->tag() == core::RepTy::Tag::Sum)
      for (const core::RepTy *E : R->elems())
        fromRep(E);
  }

  void fromType(const core::Type *T) {
    T = C.zonkType(T);
    switch (T->tag()) {
    case core::Type::Tag::Con:
      add(core::cast<core::ConType>(T)->tycon());
      return;
    case core::Type::Tag::App: {
      const auto *A = core::cast<core::AppType>(T);
      fromType(A->fn());
      fromType(A->arg());
      return;
    }
    case core::Type::Tag::Fun: {
      const auto *F = core::cast<core::FunType>(T);
      fromType(F->param());
      fromType(F->result());
      return;
    }
    case core::Type::Tag::ForAll:
      fromType(core::cast<core::ForAllType>(T)->body());
      return;
    case core::Type::Tag::UnboxedTuple:
      for (const core::Type *E :
           core::cast<core::UnboxedTupleType>(T)->elems())
        fromType(E);
      return;
    case core::Type::Tag::Var:
    case core::Type::Tag::Meta:
    case core::Type::Tag::RepLift:
      return;
    }
  }

  void fromExpr(const core::Expr *E) {
    switch (E->tag()) {
    case core::Expr::Tag::Var:
    case core::Expr::Tag::Lit:
      return;
    case core::Expr::Tag::App: {
      const auto *A = core::cast<core::AppExpr>(E);
      fromExpr(A->fn());
      fromExpr(A->arg());
      return;
    }
    case core::Expr::Tag::TyApp: {
      const auto *A = core::cast<core::TyAppExpr>(E);
      fromExpr(A->fn());
      fromType(A->tyArg());
      return;
    }
    case core::Expr::Tag::Lam: {
      const auto *L = core::cast<core::LamExpr>(E);
      fromType(L->varType());
      fromExpr(L->body());
      return;
    }
    case core::Expr::Tag::TyLam:
      fromExpr(core::cast<core::TyLamExpr>(E)->body());
      return;
    case core::Expr::Tag::Let: {
      const auto *L = core::cast<core::LetExpr>(E);
      fromType(L->varType());
      fromExpr(L->rhs());
      fromExpr(L->body());
      return;
    }
    case core::Expr::Tag::LetRec: {
      const auto *L = core::cast<core::LetRecExpr>(E);
      for (const core::RecBinding &B : L->bindings()) {
        fromType(B.VarTy);
        fromExpr(B.Rhs);
      }
      fromExpr(L->body());
      return;
    }
    case core::Expr::Tag::Case: {
      const auto *Cs = core::cast<core::CaseExpr>(E);
      fromExpr(Cs->scrut());
      fromType(Cs->resultType());
      for (const core::Alt &A : Cs->alts()) {
        if (A.Kind == core::Alt::AltKind::ConPat && A.Con)
          add(A.Con->parent());
        fromExpr(A.Rhs);
      }
      return;
    }
    case core::Expr::Tag::Con: {
      const auto *Con = core::cast<core::ConExpr>(E);
      add(Con->dataCon()->parent());
      for (const core::Type *T : Con->tyArgs())
        fromType(T);
      for (const core::Expr *A : Con->args())
        fromExpr(A);
      return;
    }
    case core::Expr::Tag::Prim:
      for (const core::Expr *A : core::cast<core::PrimOpExpr>(E)->args())
        fromExpr(A);
      return;
    case core::Expr::Tag::UnboxedTuple:
      for (const core::Expr *A :
           core::cast<core::UnboxedTupleExpr>(E)->elems())
        fromExpr(A);
      return;
    case core::Expr::Tag::Error: {
      const auto *Err = core::cast<core::ErrorExpr>(E);
      fromType(Err->atType());
      fromExpr(Err->message());
      return;
    }
    }
  }

  void add(const core::TyCon *TC) {
    if (!TC || !Seen.insert(TC).second)
      return;
    Ordered.push_back(TC);
    // Transitive closure: field types of this tycon's constructors may
    // mention further tycons.
    for (const core::DataCon *DC : TC->dataCons())
      for (const core::Type *F : DC->fields())
        fromType(F);
    fromRep(TC->resultRep());
  }

  const std::vector<const core::TyCon *> &tycons() const { return Ordered; }

private:
  core::CoreContext &C;
  std::unordered_set<const core::TyCon *> Seen;
  std::vector<const core::TyCon *> Ordered;
};

//===----------------------------------------------------------------------===//
// Reader
//===----------------------------------------------------------------------===//

class CoreReader {
public:
  CoreReader(ByteReader &R, core::CoreContext &C) : R(R), C(C) {}

  const core::RepTy *rep(unsigned Depth) {
    if (Depth > MaxCoreDepth)
      return fail();
    uint8_t Tag = R.u8();
    if (!R.ok())
      return fail();
    switch (Tag) {
    case 0:
      return C.repVar(C.sym(R.str()));
    case 1: {
      uint8_t A = R.u8();
      if (!R.ok() || A >= NumRepCtors)
        return fail();
      return C.repAtom(static_cast<RepCtor>(A));
    }
    case 2:
    case 3: {
      uint32_t N = R.u32();
      if (!R.ok() || N > MaxCoreCount)
        return fail();
      std::vector<const core::RepTy *> Elems(N);
      for (uint32_t I = 0; I != N; ++I)
        if (!(Elems[I] = rep(Depth + 1)))
          return nullptr;
      return Tag == 2 ? C.repTuple(Elems) : C.repSum(Elems);
    }
    }
    return fail();
  }

  const core::Kind *kind(unsigned Depth) {
    if (Depth > MaxCoreDepth)
      return failK();
    uint8_t Tag = R.u8();
    if (!R.ok())
      return failK();
    switch (Tag) {
    case 0: {
      const core::RepTy *Rp = rep(Depth + 1);
      return Rp ? C.kindTYPE(Rp) : nullptr;
    }
    case 1:
      return C.repKind();
    case 2: {
      const core::Kind *P = kind(Depth + 1);
      const core::Kind *Res = P ? kind(Depth + 1) : nullptr;
      return Res ? C.kindArrow(P, Res) : nullptr;
    }
    }
    return failK();
  }

  const core::Type *type(unsigned Depth) {
    if (Depth > MaxCoreDepth)
      return failT();
    uint8_t Tag = R.u8();
    if (!R.ok())
      return failT();
    switch (Tag) {
    case 0: {
      core::TyCon *TC = C.lookupTyCon(C.sym(R.str()));
      if (!R.ok() || !TC)
        return failT();
      return C.conTy(TC);
    }
    case 1: {
      const core::Type *Fn = type(Depth + 1);
      const core::Type *Arg = Fn ? type(Depth + 1) : nullptr;
      return Arg ? C.appTys(Fn, {&Arg, 1}) : nullptr;
    }
    case 2: {
      const core::Type *P = type(Depth + 1);
      const core::Type *Res = P ? type(Depth + 1) : nullptr;
      return Res ? C.funTy(P, Res) : nullptr;
    }
    case 3: {
      Symbol Name = C.sym(R.str());
      const core::Kind *K = R.ok() ? kind(Depth + 1) : nullptr;
      return K ? C.varTy(Name, K) : nullptr;
    }
    case 4: {
      Symbol Var = C.sym(R.str());
      const core::Kind *K = R.ok() ? kind(Depth + 1) : nullptr;
      const core::Type *Body = K ? type(Depth + 1) : nullptr;
      return Body ? C.forAllTy(Var, K, Body) : nullptr;
    }
    case 5: {
      uint32_t N = R.u32();
      if (!R.ok() || N > MaxCoreCount)
        return failT();
      std::vector<const core::Type *> Elems(N);
      for (uint32_t I = 0; I != N; ++I)
        if (!(Elems[I] = type(Depth + 1)))
          return nullptr;
      return C.unboxedTupleTy(Elems);
    }
    case 6: {
      const core::RepTy *Rp = rep(Depth + 1);
      return Rp ? C.repLiftTy(Rp) : nullptr;
    }
    }
    return failT();
  }

  bool literal(core::Literal &Out) {
    uint8_t Tag = R.u8();
    if (!R.ok())
      return false;
    switch (Tag) {
    case 0:
      Out = core::Literal::intHash(R.i64());
      return R.ok();
    case 1:
      Out = core::Literal::doubleHash(R.f64());
      return R.ok();
    case 2:
      Out = core::Literal::string(C.sym(R.str()));
      return R.ok();
    }
    R.fail();
    return false;
  }

  const core::Expr *expr(unsigned Depth) {
    if (Depth > MaxCoreDepth)
      return failE();
    uint8_t Tag = R.u8();
    if (!R.ok())
      return failE();
    switch (Tag) {
    case 0:
      return C.var(C.sym(R.str()));
    case 1: {
      core::Literal L = core::Literal::intHash(0);
      if (!literal(L))
        return nullptr;
      return C.arena().create<core::LitExpr>(L);
    }
    case 2: {
      uint8_t Strict = R.u8();
      if (!R.ok() || Strict > 1)
        return failE();
      const core::Expr *Fn = expr(Depth + 1);
      const core::Expr *Arg = Fn ? expr(Depth + 1) : nullptr;
      return Arg ? C.app(Fn, Arg, Strict != 0) : nullptr;
    }
    case 3: {
      const core::Expr *Fn = expr(Depth + 1);
      const core::Type *T = Fn ? type(Depth + 1) : nullptr;
      return T ? C.tyApp(Fn, T) : nullptr;
    }
    case 4: {
      Symbol Var = C.sym(R.str());
      const core::Type *T = R.ok() ? type(Depth + 1) : nullptr;
      const core::Expr *Body = T ? expr(Depth + 1) : nullptr;
      return Body ? C.lam(Var, T, Body) : nullptr;
    }
    case 5: {
      Symbol Var = C.sym(R.str());
      const core::Kind *K = R.ok() ? kind(Depth + 1) : nullptr;
      const core::Expr *Body = K ? expr(Depth + 1) : nullptr;
      return Body ? C.tyLam(Var, K, Body) : nullptr;
    }
    case 6: {
      Symbol Var = C.sym(R.str());
      uint8_t Strict = R.u8();
      if (!R.ok() || Strict > 1)
        return failE();
      const core::Type *T = type(Depth + 1);
      const core::Expr *Rhs = T ? expr(Depth + 1) : nullptr;
      const core::Expr *Body = Rhs ? expr(Depth + 1) : nullptr;
      return Body ? C.let(Var, T, Rhs, Body, Strict != 0) : nullptr;
    }
    case 7: {
      uint32_t N = R.u32();
      if (!R.ok() || N > MaxCoreCount)
        return failE();
      std::vector<core::RecBinding> Binds(N);
      for (uint32_t I = 0; I != N; ++I) {
        Binds[I].Var = C.sym(R.str());
        if (!R.ok() || !(Binds[I].VarTy = type(Depth + 1)) ||
            !(Binds[I].Rhs = expr(Depth + 1)))
          return nullptr;
      }
      const core::Expr *Body = expr(Depth + 1);
      return Body ? C.letRec(Binds, Body) : nullptr;
    }
    case 8: {
      const core::Expr *Scrut = expr(Depth + 1);
      const core::Type *ResTy = Scrut ? type(Depth + 1) : nullptr;
      uint32_t N = ResTy ? R.u32() : 0;
      if (!ResTy || !R.ok() || N > MaxCoreCount)
        return failE();
      std::vector<core::Alt> Alts(N);
      for (uint32_t I = 0; I != N; ++I) {
        uint8_t K = R.u8();
        if (!R.ok() || K > uint8_t(core::Alt::AltKind::Default))
          return failE();
        core::Alt &A = Alts[I];
        A.Kind = static_cast<core::Alt::AltKind>(K);
        switch (A.Kind) {
        case core::Alt::AltKind::ConPat: {
          A.Con = C.lookupDataCon(C.sym(R.str()));
          if (!R.ok() || !A.Con)
            return failE();
          if (!binders(A.Binders))
            return nullptr;
          break;
        }
        case core::Alt::AltKind::LitPat:
          if (!literal(A.Lit))
            return nullptr;
          break;
        case core::Alt::AltKind::TuplePat:
          if (!binders(A.Binders))
            return nullptr;
          break;
        case core::Alt::AltKind::Default:
          break;
        }
        if (!(A.Rhs = expr(Depth + 1)))
          return nullptr;
      }
      return C.caseOf(Scrut, ResTy, Alts);
    }
    case 9: {
      const core::DataCon *DC = C.lookupDataCon(C.sym(R.str()));
      if (!R.ok() || !DC)
        return failE();
      uint32_t NT = R.u32();
      if (!R.ok() || NT > MaxCoreCount)
        return failE();
      std::vector<const core::Type *> TyArgs(NT);
      for (uint32_t I = 0; I != NT; ++I)
        if (!(TyArgs[I] = type(Depth + 1)))
          return nullptr;
      uint32_t NA = R.u32();
      if (!R.ok() || NA > MaxCoreCount)
        return failE();
      std::vector<const core::Expr *> Args(NA);
      for (uint32_t I = 0; I != NA; ++I)
        if (!(Args[I] = expr(Depth + 1)))
          return nullptr;
      return C.conApp(DC, TyArgs, Args);
    }
    case 10: {
      uint8_t Op = R.u8();
      if (!R.ok() || Op >= core::NumPrimOps)
        return failE();
      uint32_t N = R.u32();
      if (!R.ok() || N > MaxCoreCount)
        return failE();
      std::vector<const core::Expr *> Args(N);
      for (uint32_t I = 0; I != N; ++I)
        if (!(Args[I] = expr(Depth + 1)))
          return nullptr;
      return C.primOp(static_cast<core::PrimOp>(Op),
                      std::span<const core::Expr *const>(Args.data(),
                                                         Args.size()));
    }
    case 11: {
      uint32_t N = R.u32();
      if (!R.ok() || N > MaxCoreCount)
        return failE();
      std::vector<const core::Expr *> Elems(N);
      for (uint32_t I = 0; I != N; ++I)
        if (!(Elems[I] = expr(Depth + 1)))
          return nullptr;
      return C.unboxedTuple(Elems);
    }
    case 12: {
      const core::Type *T = type(Depth + 1);
      const core::RepTy *Rp = T ? rep(Depth + 1) : nullptr;
      const core::Expr *Msg = Rp ? expr(Depth + 1) : nullptr;
      return Msg ? C.errorExpr(T, Rp, Msg) : nullptr;
    }
    }
    return failE();
  }

  bool ok() const { return R.ok(); }

private:
  bool binders(std::span<const Symbol> &Out) {
    uint32_t N = R.u32();
    if (!R.ok() || N > MaxCoreCount) {
      R.fail();
      return false;
    }
    std::vector<Symbol> Syms(N);
    for (uint32_t I = 0; I != N; ++I) {
      Syms[I] = C.sym(R.str());
      if (!R.ok())
        return false;
    }
    Out = C.arena().copyArray(Syms);
    return true;
  }

  const core::RepTy *fail() {
    R.fail();
    return nullptr;
  }
  const core::Kind *failK() {
    R.fail();
    return nullptr;
  }
  const core::Type *failT() {
    R.fail();
    return nullptr;
  }
  const core::Expr *failE() {
    R.fail();
    return nullptr;
  }

  ByteReader &R;
  core::CoreContext &C;
};

} // namespace

//===----------------------------------------------------------------------===//
// Entry points
//===----------------------------------------------------------------------===//

bool levc::writeCoreSection(ByteWriter &W, core::CoreContext &C,
                            const core::CoreProgram &Program,
                            const std::vector<Symbol> &UserBindings) {
  CoreWriter CW(W, C);

  TyConCollector Collect(C);
  for (const core::TopBinding &B : Program.Bindings) {
    Collect.fromType(B.Ty);
    Collect.fromExpr(B.Rhs);
  }

  // Two passes so constructor field types can reference any tycon in
  // the table regardless of order: first every tycon shell (name, kind,
  // result rep), then every tycon's constructor table.
  W.u32(static_cast<uint32_t>(Collect.tycons().size()));
  for (const core::TyCon *TC : Collect.tycons()) {
    W.str(TC->name().str());
    if (!CW.kind(TC->kind()) || !CW.rep(TC->resultRep()))
      return false;
  }
  for (const core::TyCon *TC : Collect.tycons()) {
    W.u32(static_cast<uint32_t>(TC->dataCons().size()));
    for (const core::DataCon *DC : TC->dataCons()) {
      W.str(DC->name().str());
      W.u32(static_cast<uint32_t>(DC->univs().size()));
      for (size_t I = 0; I != DC->univs().size(); ++I) {
        W.str(DC->univs()[I].str());
        if (!CW.kind(DC->univKinds()[I]))
          return false;
      }
      W.u32(static_cast<uint32_t>(DC->fields().size()));
      for (const core::Type *F : DC->fields())
        if (!CW.type(F))
          return false;
    }
  }

  W.u32(static_cast<uint32_t>(Program.Bindings.size()));
  for (const core::TopBinding &B : Program.Bindings) {
    W.str(B.Name.str());
    if (!CW.type(B.Ty) || !CW.expr(B.Rhs))
      return false;
  }

  W.u32(static_cast<uint32_t>(UserBindings.size()));
  for (Symbol S : UserBindings)
    W.str(S.str());
  return true;
}

bool levc::readCoreSection(ByteReader &R, core::CoreContext &C,
                           core::CoreProgram &Program,
                           std::vector<Symbol> &UserBindings) {
  CoreReader CR(R, C);

  // Pass 1a: tycon shells. Pre-existing (builtin) tycons are matched by
  // name and left untouched — the decoder never duplicates them.
  uint32_t NumTyCons = R.u32();
  if (!R.ok() || NumTyCons > MaxCoreCount)
    return false;
  std::vector<core::TyCon *> TyCons(NumTyCons);
  std::vector<bool> PreExisting(NumTyCons);
  for (uint32_t I = 0; I != NumTyCons; ++I) {
    Symbol Name = C.sym(R.str());
    if (!R.ok())
      return false;
    const core::Kind *K = CR.kind(0);
    if (!K)
      return false;
    const core::RepTy *ResultRep = CR.rep(0);
    if (!ResultRep)
      return false;
    core::TyCon *Existing = C.lookupTyCon(Name);
    PreExisting[I] = Existing != nullptr;
    TyCons[I] = Existing ? Existing : C.makeTyCon(Name, K, ResultRep);
  }

  // Pass 1b: constructor tables (field types may reference any shell).
  for (uint32_t I = 0; I != NumTyCons; ++I) {
    uint32_t NumCons = R.u32();
    if (!R.ok() || NumCons > MaxCoreCount)
      return false;
    for (uint32_t DI = 0; DI != NumCons; ++DI) {
      Symbol ConName = C.sym(R.str());
      if (!R.ok())
        return false;
      uint32_t NumUnivs = R.u32();
      if (!R.ok() || NumUnivs > MaxCoreCount)
        return false;
      std::vector<Symbol> Univs(NumUnivs);
      std::vector<const core::Kind *> UnivKinds(NumUnivs);
      for (uint32_t U = 0; U != NumUnivs; ++U) {
        Univs[U] = C.sym(R.str());
        if (!R.ok() || !(UnivKinds[U] = CR.kind(0)))
          return false;
      }
      uint32_t NumFields = R.u32();
      if (!R.ok() || NumFields > MaxCoreCount)
        return false;
      std::vector<const core::Type *> Fields(NumFields);
      for (uint32_t F = 0; F != NumFields; ++F)
        if (!(Fields[F] = CR.type(0)))
          return false;
      // Builtin tycons already carry their constructors; validate
      // presence by name instead of re-creating (which would duplicate
      // them on the parent).
      if (PreExisting[I]) {
        if (!C.lookupDataCon(ConName))
          return false;
        continue;
      }
      C.makeDataCon(ConName, TyCons[I], std::move(Univs),
                    std::move(UnivKinds), std::move(Fields));
    }
  }

  // Pass 2: bindings.
  uint32_t NumBindings = R.u32();
  if (!R.ok() || NumBindings > MaxCoreCount)
    return false;
  for (uint32_t I = 0; I != NumBindings; ++I) {
    core::TopBinding B;
    B.Name = C.sym(R.str());
    if (!R.ok())
      return false;
    if (!(B.Ty = CR.type(0)) || !(B.Rhs = CR.expr(0)))
      return false;
    Program.Bindings.push_back(B);
  }

  uint32_t NumUser = R.u32();
  if (!R.ok() || NumUser > MaxCoreCount)
    return false;
  for (uint32_t I = 0; I != NumUser; ++I) {
    UserBindings.push_back(C.sym(R.str()));
    if (!R.ok())
      return false;
  }
  return R.ok();
}
