//===- Session.h - The compilation-session facade ---------------*- C++ -*-===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one public entry point to the levity pipeline. Mirrors how GHC
/// hides the levity-polymorphic core pipeline behind a driver/session API
/// instead of exposing pass objects to clients:
///
/// \code
///   driver::Session S;
///   auto Comp = S.compile("square :: Int# -> Int# ; square x = x *# x ;"
///                         "answer = square 6# +# 6#");
///   if (!Comp->ok()) { report(Comp->diagText()); }
///   driver::RunResult R = Comp->run("answer");                 // tree interp
///   driver::RunResult M = Comp->run("answer",
///                                   driver::Backend::AbstractMachine);
/// \endcode
///
/// One Session owns a compilation cache keyed by source hash, so repeated
/// compiles of identical source return the *same* Compilation (and its
/// already-lowered backends). One Compilation owns everything a compiled
/// program needs — core context, diagnostics (with source locations and
/// DiagCodes), per-stage timings, the instrumented tree interpreter, and
/// the lazily-built abstract-machine lowering (core → L → ANF → M).
///
/// The same Compilation abstraction also hosts the paper's *formal*
/// pipeline (Section 6): Session::compileFormal builds an L term,
/// typechecks it (Figure 3), and runs it either with the type-directed
/// small-step semantics (Figure 4) or compiled to the M machine
/// (Figures 5-7) — one API, one diagnostics sink, one stats report for
/// both the production and the formal chain.
///
/// The low-level pass headers (surface/, core/, runtime/, …) stay public
/// for unit tests; new code should use this facade.
///
//===----------------------------------------------------------------------===//

#ifndef LEVITY_DRIVER_SESSION_H
#define LEVITY_DRIVER_SESSION_H

#include "anf/Compile.h"
#include "lcalc/Eval.h"
#include "mcalc/Machine.h"
#include "runtime/Interp.h"
#include "surface/Elaborate.h"

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace levity {
namespace driver {

/// The evaluation backends a Compilation can run on.
enum class Backend : uint8_t {
  TreeInterp,     ///< The instrumented big-step core evaluator.
  AbstractMachine ///< core → L → ANF (Figure 7) → the M machine (Figure 6).
};

std::string_view backendName(Backend B);

/// Knobs for a Session. One options struct covers both pipelines.
struct CompileOptions {
  Backend DefaultBackend = Backend::TreeInterp;
  bool EnableCache = true; ///< Reuse Compilations for identical source.
  uint64_t MaxInterpSteps = 200000000; ///< Tree-interpreter fuel.
  uint64_t MaxMachineSteps = 100000000; ///< M-machine fuel.
  size_t MaxFormalSteps = 1000000; ///< Figure 4 small-step fuel.
};

/// Wall-clock duration of one pipeline stage.
struct StageTiming {
  std::string Stage;
  double Millis = 0;
};

/// The unified result of evaluating a global (or a formal term) on some
/// backend. Exactly one backend's stats member is meaningful; the
/// convenience accessors hide the difference.
struct RunResult {
  enum class Status : uint8_t {
    Ok,
    Bottom,       ///< error was called.
    RuntimeError, ///< stuck machine / interpreter runtime failure.
    OutOfFuel,
    Unsupported   ///< Program outside the backend's fragment.
  };

  Status St = Status::RuntimeError;
  Backend Used = Backend::TreeInterp;
  std::string Display;  ///< Pretty-printed value (empty unless Ok).
  std::optional<int64_t> IntValue;   ///< Int#/Int results.
  std::optional<double> DoubleValue; ///< Double#/Double results.
  std::string Error;    ///< Failure reason (empty when Ok).
  double Millis = 0;

  runtime::InterpStats Interp;  ///< Backend::TreeInterp counters.
  mcalc::MachineStats Machine;  ///< Backend::AbstractMachine counters.

  bool ok() const { return St == Status::Ok; }

  /// Heap allocations the run performed, in the executing backend's cost
  /// model (thunks + boxes + closures for the tree interpreter, LET
  /// firings for the M machine).
  uint64_t allocations() const {
    return Used == Backend::TreeInterp ? Interp.heapAllocations()
                                       : Machine.Allocations;
  }
  /// Steps the run took (eval steps / machine transitions).
  uint64_t steps() const {
    return Used == Backend::TreeInterp ? Interp.EvalSteps : Machine.Steps;
  }
};

/// A compiled program: the product of one trip through the front end,
/// plus everything needed to run it. Created by Session; shared (and
/// cached) via shared_ptr.
class Compilation {
public:
  ~Compilation();
  Compilation(const Compilation &) = delete;
  Compilation &operator=(const Compilation &) = delete;

  //===------------------------------------------------------------------===//
  // Outcome and diagnostics
  //===------------------------------------------------------------------===//

  /// True when every stage succeeded and the program can run.
  bool ok() const { return Succeeded; }

  const DiagnosticEngine &diags() const { return Diags; }
  std::string diagText() const { return Diags.str(); }

  /// FNV-1a hash of the source text (the Session cache key; 0 for
  /// programmatic compilations).
  uint64_t sourceHash() const { return SrcHash; }
  const std::string &source() const { return Source; }

  /// Per-stage wall-clock timings, in pipeline order.
  const std::vector<StageTiming> &timings() const { return Timings; }
  /// One-line-per-stage human-readable report.
  std::string timingReport() const;

  //===------------------------------------------------------------------===//
  // The compiled surface program
  //===------------------------------------------------------------------===//

  core::CoreContext &ctx() { return C; }
  const core::CoreProgram *program() const {
    return Elaborated ? &Elaborated->Program : nullptr;
  }
  /// The zonked, dictionary-expanded type of a top-level name. Non-const:
  /// the lookup interns the name and zonking resolves metavariable cells
  /// in the context.
  const core::Type *globalType(std::string_view Name);
  /// Class/instance tables from elaboration (empty for programmatic
  /// compilations).
  const surface::Elaborator &elaborator() const { return Elab; }
  /// The raw elaboration output (null until a successful compile).
  const surface::ElabOutput *elabOutput() const {
    return Elaborated ? &*Elaborated : nullptr;
  }

  //===------------------------------------------------------------------===//
  // Running
  //===------------------------------------------------------------------===//

  /// Evaluates top-level \p Name on the session's default backend.
  RunResult run(std::string_view Name);
  /// Evaluates top-level \p Name on a specific backend.
  RunResult run(std::string_view Name, Backend B);

  /// The instrumented tree-interpreter with this program loaded. Exposed
  /// so cost-model workloads can evaluate ad-hoc expressions built
  /// against ctx() without re-wiring a pipeline.
  runtime::Interp &interp();
  runtime::InterpResult evalName(std::string_view Name);
  runtime::InterpResult evalExpr(const core::Expr *E);

  //===------------------------------------------------------------------===//
  // The formal pipeline (Section 6)
  //===------------------------------------------------------------------===//

  /// Non-null for Session::compileFormal compilations.
  const lcalc::Expr *formalTerm() const { return FormalTerm; }
  lcalc::LContext &lctx();
  /// The term's L type (Figure 3); error when ill-typed.
  Result<const lcalc::Type *> formalType();
  /// Runs the formal term: Figure 4 small-step semantics on TreeInterp,
  /// Figures 5-7 on AbstractMachine.
  RunResult run();
  RunResult run(Backend B);

private:
  friend class Session;
  explicit Compilation(const CompileOptions &Opts);

  void compileSource(std::string_view Src);
  void adoptProgram(
      const std::function<core::CoreProgram(core::CoreContext &)> &Build);
  void buildFormal(
      const std::function<const lcalc::Expr *(lcalc::LContext &)> &Build);

  RunResult runTree(std::string_view Name);
  RunResult runMachine(std::string_view Name);
  RunResult runFormal(Backend B);

  /// Lowers+compiles a global for the M machine, memoized per name.
  Result<const mcalc::Term *> machineTerm(std::string_view Name);

  /// The machine context pair, created on first AbstractMachine use.
  struct MachinePipeline;
  MachinePipeline &machine();

  CompileOptions Opts;
  std::string Source;
  uint64_t SrcHash = 0;
  bool Succeeded = false;

  core::CoreContext C;
  DiagnosticEngine Diags;
  surface::Elaborator Elab{C, Diags};
  std::optional<surface::ElabOutput> Elaborated;
  std::vector<StageTiming> Timings;

  std::unique_ptr<runtime::Interp> TreeInterp;
  std::unique_ptr<MachinePipeline> Machine;

  // Formal-pipeline state (compileFormal only).
  const lcalc::Expr *FormalTerm = nullptr;
  std::optional<Result<const lcalc::Type *>> FormalTy;
};

/// A compiler session: options + compilation cache + counters.
class Session {
public:
  Session() = default;
  explicit Session(CompileOptions Opts) : Opts(Opts) {}

  /// Compiles surface source through lex → parse → elaborate →
  /// levity-check. Identical source (by hash, verified by exact compare)
  /// returns the cached Compilation.
  std::shared_ptr<Compilation> compile(std::string_view Source);

  /// Wraps a programmatically-built core program (e.g. the Samples
  /// builders) in a Compilation, so core-IR workloads ride the same
  /// facade. Not cached (the builder is opaque).
  std::shared_ptr<Compilation> compileProgram(
      const std::function<core::CoreProgram(core::CoreContext &)> &Build);

  /// Builds and typechecks an L term (the Section 6 formal pipeline).
  std::shared_ptr<Compilation> compileFormal(
      const std::function<const lcalc::Expr *(lcalc::LContext &)> &Build);

  struct Stats {
    uint64_t Compilations = 0; ///< Front-end runs actually performed.
    uint64_t CacheHits = 0;    ///< compile() calls served from cache.
  };
  const Stats &stats() const { return St; }
  const CompileOptions &options() const { return Opts; }

  /// FNV-1a — the cache key for compile().
  static uint64_t hashSource(std::string_view Source);

private:
  CompileOptions Opts;
  Stats St;
  std::unordered_map<uint64_t, std::vector<std::shared_ptr<Compilation>>>
      Cache;
};

} // namespace driver
} // namespace levity

#endif // LEVITY_DRIVER_SESSION_H
