//===- Session.h - The compilation-session facade ---------------*- C++ -*-===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one public entry point to the levity pipeline. Mirrors how GHC
/// hides the levity-polymorphic core pipeline behind a driver/session API
/// instead of exposing pass objects to clients:
///
/// \code
///   driver::Session S;
///   auto Comp = S.compile("square :: Int# -> Int# ; square x = x *# x ;"
///                         "answer = square 6# +# 6#");
///   if (!Comp->ok()) { report(Comp->diagText()); }
///   driver::RunResult R = Comp->run("answer");                 // tree interp
///   driver::RunResult M = Comp->run("answer",
///                                   driver::Backend::AbstractMachine);
/// \endcode
///
/// The API is built for concurrency, following the same artifact/executor
/// split GHC keeps between interface files and the runtime:
///
///  * A **Compilation is an immutable artifact**: source, core program,
///    diagnostics, timings, and a lazily-but-once-built machine lowering
///    (std::call_once). `run` and `globalType` are const and
///    data-race-free, so any number of threads may share one Compilation.
///  * An **Executor** (Executor.h) owns the mutable per-thread run state:
///    the tree-interpreter instance (value pool, memoized global thunks),
///    fuel knobs, and ad-hoc expression evaluation. One Executor per
///    thread; `Compilation::run` spins up a transient one per call.
///  * A **Session is thread-safe**: the compilation cache is sharded with
///    a mutex per shard (and an optional LRU bound), `compileAsync`
///    dispatches compiles onto a small worker pool, and `runAll` is a
///    batch compile-and-run entry point for throughput workloads.
///
/// One Session owns a compilation cache keyed by source hash, so repeated
/// compiles of identical source return the *same* Compilation (and its
/// already-lowered backends). Concurrent compiles of the same new source
/// build it exactly once; the other threads block on the winner's result.
///
/// The same Compilation abstraction also hosts the paper's *formal*
/// pipeline (Section 6): Session::compileFormal builds an L term,
/// typechecks it (Figure 3), and runs it either with the type-directed
/// small-step semantics (Figure 4) or compiled to the M machine
/// (Figures 5-7) — one API, one diagnostics sink, one stats report for
/// both the production and the formal chain. Session::analyzeCatalog
/// routes the Section 8.1 class-generalizability analysis through the
/// same stage-timing report.
///
/// The low-level pass headers (surface/, core/, runtime/, …) stay public
/// for unit tests; new code should use this facade.
///
//===----------------------------------------------------------------------===//

#ifndef LEVITY_DRIVER_SESSION_H
#define LEVITY_DRIVER_SESSION_H

#include "anf/Compile.h"
#include "bytecode/Vm.h"
#include "classlib/Analysis.h"
#include "lcalc/Eval.h"
#include "mcalc/Machine.h"
#include "runtime/Interp.h"
#include "surface/Elaborate.h"

#include <atomic>
#include <condition_variable>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

namespace levity {
namespace driver {

class ArtifactStore;
class Executor;

/// The evaluation backends a Compilation can run on.
enum class Backend : uint8_t {
  TreeInterp,      ///< The instrumented big-step core evaluator.
  AbstractMachine, ///< core → L → ANF (Figure 7) → the M machine (Figure 6).
  Bytecode         ///< The M lowering compiled to flat bytecode and run on
                   ///< the threaded VM (src/bytecode/). Out-of-fragment M
                   ///< terms fall back to the term-graph machine.
};

std::string_view backendName(Backend B);

/// How a Session::compile call was satisfied — the per-call counterpart
/// of the session-wide Stats counters, so multi-tenant front ends
/// (server/Server.h) can attribute cache behaviour to the caller.
enum class CompileOutcome : uint8_t {
  FrontEnd, ///< Built by the front end (a true miss everywhere).
  CacheHit, ///< Served from the in-memory cache (including waits on an
            ///< identical in-flight compile).
  DiskHit   ///< Rehydrated from the on-disk `.levc` store.
};

/// Knobs for a Session. One options struct covers both pipelines.
struct CompileOptions {
  /// Backend used by run() calls that do not name one explicitly.
  Backend DefaultBackend = Backend::TreeInterp;
  bool EnableCache = true; ///< Reuse Compilations for identical source.
  uint64_t MaxInterpSteps = 200000000; ///< Tree-interpreter fuel.
  uint64_t MaxMachineSteps = 100000000; ///< M-machine fuel.
  uint64_t MaxVmSteps = 1000000000; ///< Bytecode-VM fuel (instructions;
                                    ///< VM steps are much cheaper than
                                    ///< machine transitions).
  size_t MaxFormalSteps = 1000000; ///< Figure 4 small-step fuel.
  /// LRU bound on the Session's compilation cache; 0 = unbounded. The
  /// bound is approximate (enforced per cache shard), evictions are
  /// counted in Session::Stats::Evictions.
  size_t MaxCachedCompilations = 0;
  /// Worker threads behind compileAsync/runAll; 0 = pick from hardware
  /// concurrency. The pool is spawned lazily on first async use.
  unsigned AsyncWorkers = 0;
  /// Root directory of the persistent on-disk compilation store; empty =
  /// disabled. When set, compile() is read-through/write-behind against
  /// the store: a hit rehydrates a runnable Compilation (no front end,
  /// no re-lowering) and a miss compiles normally, then persists the
  /// artifact asynchronously (see Session::flushStoreWrites). Many
  /// processes may safely share one store directory — writes are
  /// temp-file + atomic-rename with an advisory writer lock, and
  /// corrupt or stale-version entries are treated as misses.
  std::string StorePath;
  /// Byte-size budget for the on-disk store; 0 = unbounded. The primary
  /// store bound: after each write-behind store write, oldest-modified
  /// entries are evicted until the store's total `.levc` size fits the
  /// budget. Evictions are counted in Session::Stats::DiskEvictions.
  uint64_t MaxStoreBytes = 0;
  /// Secondary cap on the *number* of .levc entries kept in the store;
  /// 0 = unbounded. Enforced together with MaxStoreBytes (oldest-first,
  /// one pass, one lock).
  size_t MaxStoredArtifacts = 0;
};

/// Wall-clock duration of one pipeline stage.
struct StageTiming {
  std::string Stage; ///< Stage name as shown in the report ("lex", …).
  double Millis = 0; ///< Wall-clock duration.
};

/// Renders stage timings as the driver's standard one-line-per-stage
/// report (shared by Compilation::timingReport and CatalogAnalysis).
std::string formatStageTimings(std::span<const StageTiming> Timings);

/// The unified result of evaluating a global (or a formal term) on some
/// backend. Exactly one backend's stats member is meaningful; the
/// convenience accessors hide the difference.
struct RunResult {
  enum class Status : uint8_t {
    Ok,           ///< Evaluation reached a value.
    Bottom,       ///< error was called.
    RuntimeError, ///< stuck machine / interpreter runtime failure.
    OutOfFuel,    ///< The backend's step budget ran out.
    Unsupported   ///< Program outside the backend's fragment.
  };

  Status St = Status::RuntimeError; ///< Outcome classification.
  Backend Used = Backend::TreeInterp; ///< Backend that produced this result.
  std::string Display;  ///< Pretty-printed value (empty unless Ok).
  std::optional<int64_t> IntValue;   ///< Int#/Int results.
  std::optional<double> DoubleValue; ///< Double#/Double results.
  std::string Error;    ///< Failure reason (empty when Ok).
  double Millis = 0;    ///< Wall-clock evaluation time.

  runtime::InterpStats Interp;  ///< Backend::TreeInterp counters.
  mcalc::MachineStats Machine;  ///< Backend::AbstractMachine counters.
  bytecode::VmStats Vm;         ///< Backend::Bytecode counters.

  /// True when evaluation reached a value. A RunResult is a plain value
  /// type: copy it freely across threads.
  bool ok() const { return St == Status::Ok; }

  /// Heap allocations the run performed, in the executing backend's cost
  /// model (thunks + boxes + closures for the tree interpreter, LET
  /// firings for the M machine, heap objects for the bytecode VM).
  /// Dispatches on Used — a Bytecode request that fell back to the
  /// machine reports the machine's ledger.
  uint64_t allocations() const {
    switch (Used) {
    case Backend::TreeInterp:
      return Interp.heapAllocations();
    case Backend::AbstractMachine:
      return Machine.Allocations;
    case Backend::Bytecode:
      return Vm.Allocations;
    }
    return 0;
  }
  /// Steps the run took (eval steps / machine transitions / VM
  /// instructions), dispatched on Used like allocations().
  uint64_t steps() const {
    switch (Used) {
    case Backend::TreeInterp:
      return Interp.EvalSteps;
    case Backend::AbstractMachine:
      return Machine.Steps;
    case Backend::Bytecode:
      return Vm.Steps;
    }
    return 0;
  }
  /// Peak heap cells the run held, in the executing backend's unit
  /// (pool Values+EnvNodes / machine heap bindings / VM heap objects),
  /// dispatched on Used like allocations(). Memory as a measured
  /// quantity: under the per-Executor run regions this plateaus across
  /// runs instead of growing.
  uint64_t peakHeapCells() const {
    switch (Used) {
    case Backend::TreeInterp:
      return Interp.PeakHeapCells;
    case Backend::AbstractMachine:
      return Machine.MaxHeapSize;
    case Backend::Bytecode:
      return Vm.MaxHeapObjects;
    }
    return 0;
  }
  /// peakHeapCells() in bytes (each backend weighs its own cells).
  uint64_t peakHeapBytes() const {
    switch (Used) {
    case Backend::TreeInterp:
      return Interp.PeakHeapBytes;
    case Backend::AbstractMachine:
      return Machine.PeakHeapBytes;
    case Backend::Bytecode:
      return Vm.PeakHeapBytes;
    }
    return 0;
  }
};

/// A compiled program: the product of one trip through the front end,
/// plus everything needed to run it. Created by Session; shared (and
/// cached) via shared_ptr.
///
/// A Compilation is **immutable after build** and safe to share across
/// threads: `run` and `globalType` are const and data-race-free. The
/// abstract-machine lowering is built lazily but exactly once
/// (std::call_once + a lowering mutex); its contexts are internally
/// synchronized so concurrent machine runs may allocate fresh terms.
/// Mutable per-run state (the tree interpreter, fuel) lives in Executor —
/// the const run() overloads here create a transient Executor per call,
/// so cross-run thunk memoization needs a long-lived Executor.
class Compilation : public std::enable_shared_from_this<Compilation> {
public:
  ~Compilation();
  Compilation(const Compilation &) = delete;
  Compilation &operator=(const Compilation &) = delete;

  //===------------------------------------------------------------------===//
  // Outcome and diagnostics
  //===------------------------------------------------------------------===//

  /// True when every stage succeeded and the program can run. Constant
  /// for the Compilation's whole lifetime (hydrated artifacts are always
  /// ok — only successful compiles are ever stored).
  bool ok() const { return Succeeded; }

  /// The build-time diagnostics sink. For hydrated compilations this
  /// first triggers the lazy front-end rebuild (see hydrated()) so the
  /// returned engine is stable afterwards.
  const DiagnosticEngine &diags() const {
    ensureFrontEnd();
    return Diags;
  }
  /// All diagnostics, rendered. Thread-safe; see diags().
  std::string diagText() const { return diags().str(); }

  /// FNV-1a hash of the source text (the Session cache and artifact
  /// store key; 0 for programmatic compilations).
  uint64_t sourceHash() const { return SrcHash; }
  /// The exact source text this Compilation was built from.
  const std::string &source() const { return Source; }

  /// True when this Compilation was rehydrated from an on-disk `.levc`
  /// artifact (CompileOptions::StorePath) instead of built by the front
  /// end. Hydrated compilations run on Backend::AbstractMachine with
  /// *zero* front-end or lowering work; the first use that genuinely
  /// needs core IR (a tree-interp run, program(), globalType()) rebuilds
  /// the front end lazily, exactly once, thread-safely — unless the
  /// artifact carried a CORE section (see hydratedCore()).
  bool hydrated() const { return Hydrated; }

  /// True when the artifact's CORE section restored the elaborated core
  /// program, so even tree-interp runs and program() consumers skip the
  /// front end (lex/parse/elaborate) entirely.
  bool hydratedCore() const { return HydratedCore; }

  /// True when the artifact's BCOD section restored compiled bytecode
  /// modules, so Backend::Bytecode runs execute with zero front-end,
  /// lowering, *or bytecode-compilation* work.
  bool hydratedBytecode() const { return HydratedBytecode; }

  /// Per-stage wall-clock timings, in pipeline order. For hydrated
  /// compilations: the *original* build's stages (restored from the
  /// artifact) followed by this process's "hydrate" stage.
  const std::vector<StageTiming> &timings() const { return Timings; }
  /// One-line-per-stage human-readable report.
  std::string timingReport() const;

  //===------------------------------------------------------------------===//
  // The serialized artifact (driver/Serialize.h, docs/ARTIFACT_FORMAT.md)
  //===------------------------------------------------------------------===//

  /// Serializes this Compilation into the versioned `.levc` byte format.
  /// Forces the M lowering of every top-level binding first (that is the
  /// point: the artifact must make a cold process's runs lowering-free),
  /// recording per-global failures verbatim so out-of-fragment programs
  /// replay the same "not expressible in L" diagnostics. Thread-safe.
  /// Fails for failed, formal, or programmatic compilations (no source
  /// to key the store by).
  Result<std::string> serializeArtifact() const;

  /// Rebuilds a runnable Compilation from serializeArtifact() bytes.
  /// \returns null when the bytes are corrupt, truncated, carry a wrong
  /// format version or pipeline fingerprint, or do not match
  /// \p ExpectedSource exactly — callers treat null as a cache miss and
  /// recompile. On success the result is immutable-after-build and
  /// thread-safe exactly like a front-end-built Compilation.
  static std::shared_ptr<Compilation>
  deserializeArtifact(std::string_view Bytes, std::string_view ExpectedSource,
                      const CompileOptions &Opts);

  //===------------------------------------------------------------------===//
  // The compiled surface program
  //===------------------------------------------------------------------===//

  /// The core context owning the compiled program's IR. Mutable through a
  /// const Compilation because post-build consumers allocate *scratch*
  /// nodes in it (zonked types, lookup vars) — the context's arena and
  /// symbol table are internally synchronized, and the compiled program
  /// itself is never modified.
  core::CoreContext &ctx() const { return C; }
  /// The compiled core program (null until a successful compile). On a
  /// hydrated Compilation this triggers the lazy front-end rebuild.
  const core::CoreProgram *program() const {
    ensureFrontEnd();
    return Elaborated ? &Elaborated->Program : nullptr;
  }
  /// The zonked, dictionary-expanded type of a top-level name. Const and
  /// thread-safe: zonking only reads metavariable solutions (all writes
  /// happened at build time) and allocates result nodes in the
  /// synchronized arena. On a hydrated Compilation this triggers the
  /// lazy front-end rebuild; use globalTypeText() for the zero-rebuild
  /// path.
  const core::Type *globalType(std::string_view Name) const;
  /// The pretty-printed type of a top-level name, or "" when unknown.
  /// For hydrated compilations this reads the type text stored in the
  /// artifact — no front-end rebuild; otherwise it renders globalType().
  std::string globalTypeText(std::string_view Name) const;
  /// Class/instance tables from elaboration (empty for programmatic
  /// compilations). Triggers the lazy front-end rebuild when hydrated.
  const surface::Elaborator &elaborator() const {
    ensureFrontEnd();
    return Elab;
  }
  /// The raw elaboration output (null until a successful compile).
  /// Triggers the lazy front-end rebuild when hydrated.
  const surface::ElabOutput *elabOutput() const {
    ensureFrontEnd();
    return Elaborated ? &*Elaborated : nullptr;
  }

  /// The option values this Compilation was built with (a private copy;
  /// later Session option changes do not affect existing artifacts).
  const CompileOptions &options() const { return Opts; }

  //===------------------------------------------------------------------===//
  // Running (const: each call uses a transient Executor; hold your own
  // Executor to keep interpreter state — memoized globals — across runs)
  //===------------------------------------------------------------------===//

  /// Evaluates top-level \p Name on the session's default backend.
  RunResult run(std::string_view Name) const;
  /// Evaluates top-level \p Name on a specific backend.
  RunResult run(std::string_view Name, Backend B) const;

  //===------------------------------------------------------------------===//
  // The formal pipeline (Section 6)
  //===------------------------------------------------------------------===//

  /// Non-null for Session::compileFormal compilations.
  const lcalc::Expr *formalTerm() const { return FormalTerm; }
  /// The L context (internally synchronized; shared by concurrent runs).
  lcalc::LContext &lctx() const;
  /// The term's L type (Figure 3); error when ill-typed.
  Result<const lcalc::Type *> formalType() const;
  /// Runs the formal term: Figure 4 small-step semantics on TreeInterp,
  /// Figures 5-7 on AbstractMachine.
  RunResult run() const;
  RunResult run(Backend B) const;

private:
  friend class Session;
  friend class Executor;
  explicit Compilation(const CompileOptions &Opts);

  void compileSource(std::string_view Src);
  void adoptProgram(
      const std::function<core::CoreProgram(core::CoreContext &)> &Build);
  void buildFormal(
      const std::function<const lcalc::Expr *(lcalc::LContext &)> &Build);

  /// Hydrated compilations skip the front end entirely; the first
  /// consumer that needs core IR (tree-interp run, program(),
  /// globalType()) rebuilds it here from the stored source — exactly
  /// once, via FrontEndOnce. No-op for front-end-built compilations.
  void ensureFrontEnd() const;

  /// Lowers+compiles a global for the M machine, memoized per name.
  /// Thread-safe: lowering is serialized behind the pipeline's mutex.
  Result<const mcalc::Term *> machineTerm(std::string_view Name) const;
  /// compileFormal's term, compiled to M (memoized, thread-safe).
  Result<const mcalc::Term *> formalMachineTerm() const;

  /// The bytecode module for a global's M term, memoized per name
  /// (thread-safe like machineTerm). Fails when the M lowering itself
  /// failed *or* when the term is outside the bytecode fragment — the
  /// Executor distinguishes the two by consulting machineTerm.
  Result<const bytecode::Module *> bytecodeModule(std::string_view Name) const;
  /// compileFormal's term, compiled to bytecode (memoized, thread-safe).
  Result<const bytecode::Module *> formalBytecodeModule() const;

  /// The abstract-machine side of a Compilation: one L context, one M
  /// context, and the memoized per-global lowerings. Created on first
  /// AbstractMachine use (exactly once, via std::call_once) so
  /// tree-interp-only clients pay nothing. The contexts are internally
  /// synchronized; the memo tables are guarded by LowerMutex.
  struct MachinePipeline {
    lcalc::LContext L;
    mcalc::MContext MC;
    /// Reader/writer lock over the memo tables: memo hits (the per-run
    /// hot path) take it shared; lowering (which allocates across
    /// L/MC/core contexts) takes it exclusive. Machine *runs* never
    /// hold it.
    std::shared_mutex LowerMutex;
    /// Transparent hashing so memo hits look up by string_view without
    /// allocating a key.
    struct NameHash {
      using is_transparent = void;
      size_t operator()(std::string_view S) const {
        return std::hash<std::string_view>()(S);
      }
    };
    /// Global name → compiled M term (or the lowering failure, kept so
    /// repeated runs do not re-walk an unsupported program).
    std::unordered_map<std::string, Result<const mcalc::Term *>, NameHash,
                       std::equal_to<>>
        MTerms;
    /// compileFormal's term, compiled to M (memoized).
    std::optional<Result<const mcalc::Term *>> FormalM;
    /// Global name → compiled bytecode module (or the reason the term is
    /// outside the bytecode fragment). Hydration pre-populates this from
    /// the artifact's BCOD section.
    std::unordered_map<std::string,
                       Result<std::shared_ptr<const bytecode::Module>>,
                       NameHash, std::equal_to<>>
        BModules;
    /// compileFormal's term, compiled to bytecode (memoized).
    std::optional<Result<std::shared_ptr<const bytecode::Module>>> FormalB;
  };
  MachinePipeline &machine() const;

  CompileOptions Opts;
  std::string Source;
  uint64_t SrcHash = 0;
  bool Succeeded = false;
  /// True for store-rehydrated compilations (set before publication,
  /// constant afterwards).
  bool Hydrated = false;
  /// True when hydration restored the core program from the artifact's
  /// CORE section (set before publication, constant afterwards).
  bool HydratedCore = false;
  /// True when hydration restored compiled bytecode from the artifact's
  /// BCOD section (set before publication, constant afterwards).
  bool HydratedBytecode = false;

  /// Internally synchronized (see ctx()); mutable so const runs can
  /// allocate scratch nodes.
  mutable core::CoreContext C;
  /// Mutable trio behind the hydrated lazy front-end rebuild
  /// (ensureFrontEnd): written either at build time (before publication)
  /// or under FrontEndOnce, read only after one of those.
  mutable DiagnosticEngine Diags;
  mutable surface::Elaborator Elab{C, Diags};
  mutable std::optional<surface::ElabOutput> Elaborated;
  std::vector<StageTiming> Timings;
  /// Artifact-stored global type texts (hydrated compilations only).
  std::unordered_map<std::string, std::string> HydratedTypes;
  mutable std::once_flag FrontEndOnce;

  mutable std::once_flag MachineOnce;
  mutable std::unique_ptr<MachinePipeline> Machine;

  // Formal-pipeline state (compileFormal only; written at build time).
  const lcalc::Expr *FormalTerm = nullptr;
  std::optional<Result<const lcalc::Type *>> FormalTy;
};

/// The Section 8.1 catalog analysis riding the driver's diagnostics and
/// timing report (Session::analyzeCatalog).
struct CatalogAnalysis {
  classlib::AnalysisReport Report;
  std::vector<StageTiming> Timings;

  bool ok() const { return Report.NumClasses > 0; }
  /// The paper-style verdict table.
  std::string table() const { return classlib::formatReport(Report); }
  /// One-line-per-stage timing report (same shape as Compilation's).
  std::string timingReport() const { return formatStageTimings(Timings); }
};

/// A compiler session: options + compilation cache + counters.
///
/// Thread-safe: any number of threads may compile (and run the results)
/// through one Session concurrently. The cache is sharded with one mutex
/// per shard; identical source compiles exactly once even under
/// contention (losers block on the winner's in-flight result). An LRU
/// bound (CompileOptions::MaxCachedCompilations) caps memory; evictions
/// are counted in Stats.
///
/// With CompileOptions::StorePath set, the in-memory cache is backed by
/// a persistent on-disk store shared across processes: misses first try
/// to rehydrate a `.levc` artifact (Stats::DiskHits — compiling becomes
/// deserialization, with zero front-end or lowering work), and fresh
/// compiles are persisted write-behind on the worker pool
/// (flushStoreWrites() is the completion barrier).
class Session {
public:
  /// A session with default options (no LRU bound, no on-disk store).
  Session();
  /// A session with explicit knobs; opens the artifact store when
  /// Opts.StorePath is set (the directory is created on first write).
  explicit Session(CompileOptions Opts);
  /// Joins the worker pool after draining it — pending compileAsync
  /// tasks and write-behind store writes complete before return.
  ~Session();
  Session(const Session &) = delete;
  Session &operator=(const Session &) = delete;

  /// Compiles surface source through lex → parse → elaborate →
  /// levity-check. Identical source (by hash, verified by exact compare)
  /// returns the cached Compilation.
  std::shared_ptr<Compilation> compile(std::string_view Source);

  /// Like compile(), additionally reporting *how* this call was served
  /// (front end, memory hit, disk hit) so callers fronting many tenants
  /// can attribute cache behaviour per caller. The outcome corresponds
  /// 1:1 with the Stats counter this call bumped.
  std::shared_ptr<Compilation> compile(std::string_view Source,
                                       CompileOutcome &Outcome);

  /// Like compile(), but dispatched onto the session's worker pool;
  /// returns immediately. The future yields the same cached Compilation
  /// a synchronous compile would. When \p Outcome is non-null it is
  /// written before the future becomes ready (read it only after get()).
  std::future<std::shared_ptr<Compilation>>
  compileAsync(std::string_view Source, CompileOutcome *Outcome = nullptr);

  /// Wraps a programmatically-built core program (e.g. the Samples
  /// builders) in a Compilation, so core-IR workloads ride the same
  /// facade. Not cached (the builder is opaque).
  std::shared_ptr<Compilation> compileProgram(
      const std::function<core::CoreProgram(core::CoreContext &)> &Build);

  /// Builds and typechecks an L term (the Section 6 formal pipeline).
  std::shared_ptr<Compilation> compileFormal(
      const std::function<const lcalc::Expr *(lcalc::LContext &)> &Build);

  /// Runs the Section 8.1 class-generalizability analysis through the
  /// driver, with per-stage timings in the standard report shape.
  CatalogAnalysis analyzeCatalog();

  /// One compile-and-run unit of a batch workload.
  struct RunRequest {
    std::string Source;            ///< Program text (cached as usual).
    std::string Name;              ///< Top-level binding to evaluate.
    std::optional<Backend> B;      ///< Defaults to the session backend.
    /// Per-request step budget: overrides every backend's fuel knob for
    /// this run, so a batch front end can impose a deadline per request
    /// (fuel exhaustion comes back as Status::OutOfFuel — the typed
    /// TIMEOUT signal — never as a wedged worker).
    std::optional<uint64_t> Fuel;
    /// When non-null, receives how this request's compile was served
    /// (written before the run executes; the pointee must outlive the
    /// runAll call).
    CompileOutcome *Outcome = nullptr;
  };
  /// Batch entry point: compiles and runs every request on the worker
  /// pool (sharing the cache, so duplicate sources compile once) and
  /// returns results in request order.
  std::vector<RunResult> runAll(std::span<const RunRequest> Requests);

  /// The session's monotonic counters. Stats is a plain copyable value:
  /// always take one snapshot via stats() and read fields from the copy —
  /// never sample stats().X repeatedly, which can observe different
  /// moments per field under concurrency.
  struct Stats {
    uint64_t Compilations = 0; ///< Front-end runs actually performed.
    uint64_t CacheHits = 0;    ///< compile() calls served from memory.
    uint64_t Evictions = 0;    ///< Compilations dropped by the LRU bound.
    uint64_t Analyses = 0;     ///< analyzeCatalog() runs.
    uint64_t DiskHits = 0;     ///< compile() calls rehydrated from the
                               ///< on-disk store (no front end, no
                               ///< lowering).
    uint64_t DiskMisses = 0;   ///< Store lookups that fell back to a
                               ///< full compile (absent, corrupt, or
                               ///< stale-version entries).
    uint64_t DiskEvictions = 0; ///< .levc files removed to enforce
                                ///< CompileOptions::MaxStoredArtifacts.
  };
  /// Snapshot of every counter, taken at one call. Each field is read
  /// atomically; the struct is the unit tests and benches should hold on
  /// to (rather than re-calling stats() per field).
  Stats stats() const;
  /// Number of Compilations currently held in the cache (across shards).
  size_t cacheSize() const;
  /// The options this Session was constructed with (immutable).
  const CompileOptions &options() const { return Opts; }

  /// Blocks until every write-behind artifact-store write scheduled so
  /// far has been published (temp file renamed into the store) — the
  /// barrier a warm-up process calls before handing the store directory
  /// to consumers. Returns immediately when no store is configured.
  /// (The destructor also drains pending writes.)
  void flushStoreWrites();

  /// Enforces the on-disk store budgets *now* (the server's EVICT
  /// request): removes oldest-modified `.levc` entries until at most
  /// \p MaxEntries remain and their total size fits \p MaxBytes (0 =
  /// unbounded for either). Counted in Stats::DiskEvictions. Returns the
  /// number of entries removed; 0 when no store is configured.
  size_t evictStore(size_t MaxEntries, uint64_t MaxBytes);

  /// FNV-1a — the cache and artifact-store key for compile().
  static uint64_t hashSource(std::string_view Source);

private:
  struct Shard;
  struct WorkerPool;

  std::shared_ptr<Compilation> buildSource(std::string_view Source,
                                           CompileOutcome &Outcome);
  /// Serializes \p Comp and publishes it in the store under \p Hash,
  /// then enforces MaxStoredArtifacts. Runs on the worker pool.
  void writeArtifact(const std::shared_ptr<Compilation> &Comp,
                     uint64_t Hash);
  WorkerPool &pool();
  size_t perShardCap() const;

  CompileOptions Opts;

  static constexpr size_t NumShards = 8;
  std::unique_ptr<Shard[]> Shards;

  /// The on-disk artifact store (null unless Opts.StorePath is set).
  /// Declared before Pool: pool teardown may still be writing artifacts.
  std::unique_ptr<ArtifactStore> Store;
  std::mutex StoreFlushM;
  std::condition_variable StoreFlushCV;
  /// Writes scheduled but not yet published; guarded by StoreFlushM.
  uint64_t PendingStoreWrites = 0;

  std::atomic<uint64_t> NumCompilations{0};
  std::atomic<uint64_t> NumCacheHits{0};
  std::atomic<uint64_t> NumEvictions{0};
  std::atomic<uint64_t> NumAnalyses{0};
  std::atomic<uint64_t> NumDiskHits{0};
  std::atomic<uint64_t> NumDiskMisses{0};
  std::atomic<uint64_t> NumDiskEvictions{0};

  // Declared last: ~WorkerPool drains and joins worker threads, which
  // touch the shards and counters above — those must still be alive.
  std::once_flag PoolOnce;
  std::unique_ptr<WorkerPool> Pool;
};

} // namespace driver
} // namespace levity

#endif // LEVITY_DRIVER_SESSION_H
