//===- Session.cpp - The compilation-session facade -----------------------===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "driver/Session.h"
#include "driver/ArtifactStore.h"
#include "driver/Executor.h"
#include "driver/LowerToL.h"
#include "driver/Serialize.h"
#include "support/Timing.h"
#include "surface/Parser.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <list>
#include <sstream>
#include <thread>

using namespace levity;
using namespace levity::driver;
using support::millisSince;

std::string_view driver::backendName(Backend B) {
  switch (B) {
  case Backend::TreeInterp:
    return "tree-interp";
  case Backend::AbstractMachine:
    return "abstract-machine";
  case Backend::Bytecode:
    return "bytecode";
  }
  return "unknown";
}


std::string driver::formatStageTimings(std::span<const StageTiming> Timings) {
  std::ostringstream OS;
  double Total = 0;
  for (const StageTiming &T : Timings) {
    char Line[96];
    std::snprintf(Line, sizeof(Line), "  %-18s %8.3f ms\n",
                  T.Stage.c_str(), T.Millis);
    OS << Line;
    Total += T.Millis;
  }
  char Line[96];
  std::snprintf(Line, sizeof(Line), "  %-18s %8.3f ms\n", "total", Total);
  OS << Line;
  return OS.str();
}

//===----------------------------------------------------------------------===//
// Compilation — pipeline stages (build time, single-threaded)
//===----------------------------------------------------------------------===//

Compilation::Compilation(const CompileOptions &Opts) : Opts(Opts) {}

Compilation::~Compilation() = default;

namespace {

/// The front-end stage sequence, shared by the build-time compile and
/// the hydrated lazy rebuild so the two can never drift apart. Records
/// per-stage wall-clock into \p Timings when non-null.
std::optional<surface::ElabOutput>
runFrontEndStages(const std::string &Source, DiagnosticEngine &Diags,
                  surface::Elaborator &Elab,
                  std::vector<StageTiming> *Timings) {
  auto Timed = [&](const char *Stage, auto Fn) {
    if (!Timings)
      return Fn();
    auto Start = std::chrono::steady_clock::now();
    auto R = Fn();
    Timings->push_back({Stage, millisSince(Start)});
    return R;
  };

  std::vector<surface::Token> Tokens = Timed("lex", [&] {
    surface::Lexer L(Source, Diags);
    return L.lexAll();
  });
  if (Diags.hasErrors())
    return std::nullopt;

  surface::SModule Module = Timed("parse", [&] {
    surface::Parser P(std::move(Tokens), Diags);
    return P.parseModule();
  });
  if (Diags.hasErrors())
    return std::nullopt;

  return Timed("elaborate+check", [&] { return Elab.run(Module); });
}

} // namespace

void Compilation::compileSource(std::string_view Src) {
  Source.assign(Src);
  SrcHash = Session::hashSource(Src);
  Elaborated = runFrontEndStages(Source, Diags, Elab, &Timings);
  Succeeded = Elaborated.has_value();
}

void Compilation::adoptProgram(
    const std::function<core::CoreProgram(core::CoreContext &)> &Build) {
  auto Start = std::chrono::steady_clock::now();
  surface::ElabOutput Out;
  Out.Program = Build(C);
  for (const core::TopBinding &B : Out.Program.Bindings)
    Out.UserBindings.push_back(B.Name);
  Elaborated = std::move(Out);
  Timings.push_back({"build-core", millisSince(Start)});
  Succeeded = true;
}

void Compilation::buildFormal(
    const std::function<const lcalc::Expr *(lcalc::LContext &)> &Build) {
  MachinePipeline &MP = machine();
  auto Start = std::chrono::steady_clock::now();
  FormalTerm = Build(MP.L);
  Timings.push_back({"build-term", millisSince(Start)});
  if (!FormalTerm) {
    Diags.error(DiagCode::Internal, "formal term builder returned null");
    return;
  }

  Start = std::chrono::steady_clock::now();
  lcalc::TypeChecker TC(MP.L);
  FormalTy = TC.typeOfClosed(FormalTerm);
  Timings.push_back({"typecheck", millisSince(Start)});
  if (!*FormalTy) {
    Diags.error(DiagCode::TypeError, (*FormalTy).error());
    return;
  }
  Succeeded = true;
}

Compilation::MachinePipeline &Compilation::machine() const {
  std::call_once(MachineOnce,
                 [this] { Machine = std::make_unique<MachinePipeline>(); });
  return *Machine;
}

void Compilation::ensureFrontEnd() const {
  // A CORE-section hydration installed Elaborated at decode time; the
  // front end never needs to run.
  if (!Hydrated || HydratedCore)
    return;
  // Rebuild the front end from the stored source, exactly once, through
  // the same stage sequence compileSource uses. The source compiled
  // successfully when the artifact was written, so this succeeds
  // barring a pipeline change — and a failure simply leaves Elaborated
  // empty, which consumers report. (Untimed: the hydrated timing report
  // shows the original build's stages plus "hydrate".)
  std::call_once(FrontEndOnce, [this] {
    Elaborated = runFrontEndStages(Source, Diags, Elab, nullptr);
  });
}

std::string Compilation::timingReport() const {
  return formatStageTimings(Timings);
}

const core::Type *Compilation::globalType(std::string_view Name) const {
  ensureFrontEnd();
  if (const core::Type *T = Elab.globalType(Name))
    return T;
  // Programmatic compilations bypass the elaborator's table; fall back to
  // the binding's recorded type.
  if (Elaborated)
    if (const core::TopBinding *B = Elaborated->Program.find(C.sym(Name)))
      return C.zonkType(B->Ty);
  return nullptr;
}

std::string Compilation::globalTypeText(std::string_view Name) const {
  if (Hydrated) {
    // The zero-rebuild path: type texts were persisted in the artifact.
    auto It = HydratedTypes.find(std::string(Name));
    return It != HydratedTypes.end() ? It->second : std::string();
  }
  if (const core::Type *T = globalType(Name))
    return T->str();
  return std::string();
}

//===----------------------------------------------------------------------===//
// Compilation — the memoized machine lowering (thread-safe)
//===----------------------------------------------------------------------===//

Result<const mcalc::Term *>
Compilation::machineTerm(std::string_view Name) const {
  MachinePipeline &MP = machine();
  {
    // Hot path: already lowered. Shared lock, no key allocation.
    std::shared_lock<std::shared_mutex> Lock(MP.LowerMutex);
    auto It = MP.MTerms.find(Name);
    if (It != MP.MTerms.end())
      return It->second;
  }

  std::unique_lock<std::shared_mutex> Lock(MP.LowerMutex);
  auto It = MP.MTerms.find(Name); // Re-check: we may have raced.
  if (It != MP.MTerms.end())
    return It->second;

  Result<const mcalc::Term *> Out = [&]() -> Result<const mcalc::Term *> {
    // Hydrated artifacts pre-populate MTerms with *every* top-level
    // binding; a slow-path miss can only be an unknown name. (Also keeps
    // this path from racing the lazy front-end rebuild on Elaborated.)
    // CORE-hydrated compilations carry the program — set before
    // publication, no rebuild race — so they may lower like a
    // front-end-built one.
    if (Hydrated && !HydratedCore)
      return err("no M lowering for '" + std::string(Name) +
                 "' in the on-disk artifact (unknown global)");
    if (!Elaborated)
      return err("no compiled program");
    CoreToL Lower(C, MP.L);
    Result<const lcalc::Expr *> LTerm =
        Lower.lowerGlobal(Elaborated->Program, C.sym(Name));
    if (!LTerm)
      return err(LTerm.error());
    anf::Compiler Comp(MP.L, MP.MC);
    return Comp.compileClosed(*LTerm);
  }();
  MP.MTerms.emplace(std::string(Name), Out);
  return Out;
}

Result<const mcalc::Term *> Compilation::formalMachineTerm() const {
  MachinePipeline &MP = machine();
  {
    std::shared_lock<std::shared_mutex> Lock(MP.LowerMutex);
    if (MP.FormalM)
      return *MP.FormalM;
  }
  std::unique_lock<std::shared_mutex> Lock(MP.LowerMutex);
  if (!MP.FormalM) {
    anf::Compiler Comp(MP.L, MP.MC);
    MP.FormalM = Comp.compileClosed(FormalTerm);
  }
  return *MP.FormalM;
}

Result<const bytecode::Module *>
Compilation::bytecodeModule(std::string_view Name) const {
  // Lower to M *first*: machineTerm takes LowerMutex itself, so it must
  // not be called under our own lock on the same (non-recursive) mutex.
  Result<const mcalc::Term *> MT = machineTerm(Name);
  MachinePipeline &MP = machine();
  {
    // Hot path: already compiled (or hydrated from the BCOD section).
    std::shared_lock<std::shared_mutex> Lock(MP.LowerMutex);
    auto It = MP.BModules.find(Name);
    if (It != MP.BModules.end())
      return It->second ? Result<const bytecode::Module *>(It->second->get())
                        : err(It->second.error());
  }
  if (!MT)
    return err(MT.error());

  std::unique_lock<std::shared_mutex> Lock(MP.LowerMutex);
  auto It = MP.BModules.find(Name); // Re-check: we may have raced.
  if (It == MP.BModules.end())
    It = MP.BModules.emplace(std::string(Name), bytecode::compile(*MT)).first;
  return It->second ? Result<const bytecode::Module *>(It->second->get())
                    : err(It->second.error());
}

Result<const bytecode::Module *> Compilation::formalBytecodeModule() const {
  Result<const mcalc::Term *> MT = formalMachineTerm(); // Before our lock.
  MachinePipeline &MP = machine();
  {
    std::shared_lock<std::shared_mutex> Lock(MP.LowerMutex);
    if (MP.FormalB)
      return *MP.FormalB ? Result<const bytecode::Module *>((*MP.FormalB)->get())
                         : err(MP.FormalB->error());
  }
  if (!MT)
    return err(MT.error());
  std::unique_lock<std::shared_mutex> Lock(MP.LowerMutex);
  if (!MP.FormalB)
    MP.FormalB = bytecode::compile(*MT);
  return *MP.FormalB ? Result<const bytecode::Module *>((*MP.FormalB)->get())
                     : err(MP.FormalB->error());
}

//===----------------------------------------------------------------------===//
// Compilation — const run dispatch (transient Executor per call)
//===----------------------------------------------------------------------===//

RunResult Compilation::run(std::string_view Name) const {
  return run(Name, Opts.DefaultBackend);
}

RunResult Compilation::run(std::string_view Name, Backend B) const {
  Executor Ex(shared_from_this());
  return Ex.run(Name, B);
}

RunResult Compilation::run() const { return run(Opts.DefaultBackend); }

RunResult Compilation::run(Backend B) const {
  Executor Ex(shared_from_this());
  return Ex.run(B);
}

lcalc::LContext &Compilation::lctx() const { return machine().L; }

Result<const lcalc::Type *> Compilation::formalType() const {
  if (FormalTy)
    return *FormalTy;
  return err("not a formal compilation");
}

//===----------------------------------------------------------------------===//
// Session — the sharded, LRU-bounded compilation cache
//===----------------------------------------------------------------------===//

/// One cache shard: a mutex, the hash → entries map (entries hold the
/// exact source for collision checks), and the shard's LRU order. An
/// entry's future is shared so losers of a compile race (and evicted
/// in-flight entries) stay valid.
struct Session::Shard {
  struct Entry {
    uint64_t Hash;
    std::string Source;
    /// Identifies the insertion, so a failed owner removes only its own
    /// entry (never a successor's re-insert for the same source).
    uint64_t Gen;
    std::shared_future<std::shared_ptr<Compilation>> Fut;
  };

  std::mutex M;
  uint64_t NextGen = 0;
  std::list<Entry> LRU; ///< Front = most recently used.
  std::unordered_map<uint64_t, std::vector<std::list<Entry>::iterator>> Map;
};

/// A lazily-spawned fixed pool draining a FIFO of tasks; backs
/// compileAsync and runAll.
struct Session::WorkerPool {
  explicit WorkerPool(unsigned N) {
    for (unsigned I = 0; I != N; ++I)
      Threads.emplace_back([this] { workerLoop(); });
  }

  ~WorkerPool() {
    {
      std::lock_guard<std::mutex> Lock(M);
      Stop = true;
    }
    CV.notify_all();
    for (std::thread &T : Threads)
      T.join();
  }

  void submit(std::function<void()> Task) {
    {
      std::lock_guard<std::mutex> Lock(M);
      Queue.push_back(std::move(Task));
    }
    CV.notify_one();
  }

  void workerLoop() {
    for (;;) {
      std::function<void()> Task;
      {
        std::unique_lock<std::mutex> Lock(M);
        CV.wait(Lock, [&] { return Stop || !Queue.empty(); });
        if (Stop && Queue.empty())
          return;
        Task = std::move(Queue.front());
        Queue.pop_front();
      }
      Task();
    }
  }

  std::mutex M;
  std::condition_variable CV;
  std::deque<std::function<void()>> Queue;
  std::vector<std::thread> Threads;
  bool Stop = false;
};

Session::Session() : Session(CompileOptions()) {}

Session::Session(CompileOptions Opts)
    : Opts(std::move(Opts)), Shards(std::make_unique<Shard[]>(NumShards)) {
  if (!this->Opts.StorePath.empty())
    Store = std::make_unique<ArtifactStore>(this->Opts.StorePath);
}

// ~WorkerPool (destroyed first — declared last) drains the queue before
// joining, so pending write-behind store writes complete here.
Session::~Session() = default;

uint64_t Session::hashSource(std::string_view Source) {
  // The one FNV-1a implementation: the artifact format addresses store
  // entries by this exact function, so there must never be two copies
  // to drift apart.
  return levc::fnv1a(Source);
}

size_t Session::perShardCap() const {
  if (Opts.MaxCachedCompilations == 0)
    return 0; // unbounded
  return std::max<size_t>(
      1, (Opts.MaxCachedCompilations + NumShards - 1) / NumShards);
}

std::shared_ptr<Compilation> Session::buildSource(std::string_view Source,
                                                  CompileOutcome &Outcome) {
  uint64_t H = hashSource(Source);

  // Read-through: a published artifact turns this compile into pure
  // deserialization — no front end, no lowering. Validation is strict
  // (checksum, pipeline fingerprint, byte-exact source), so corrupt or
  // stale-version entries silently fall through to a clean recompile.
  if (Store) {
    if (std::optional<std::string> Bytes = Store->load(H)) {
      if (std::shared_ptr<Compilation> Comp =
              Compilation::deserializeArtifact(*Bytes, Source, Opts)) {
        NumDiskHits.fetch_add(1, std::memory_order_relaxed);
        Outcome = CompileOutcome::DiskHit;
        return Comp;
      }
    }
    NumDiskMisses.fetch_add(1, std::memory_order_relaxed);
  }

  Outcome = CompileOutcome::FrontEnd;
  auto Comp = std::shared_ptr<Compilation>(new Compilation(Opts));
  Comp->compileSource(Source);
  NumCompilations.fetch_add(1, std::memory_order_relaxed);

  // Write-behind: persist off the caller's critical path (the worker
  // pool also forces the all-globals lowering there). flushStoreWrites()
  // and the destructor are the completion barriers.
  if (Store && Comp->ok()) {
    {
      std::lock_guard<std::mutex> Lock(StoreFlushM);
      ++PendingStoreWrites;
    }
    pool().submit([this, Comp, H] {
      writeArtifact(Comp, H);
      {
        std::lock_guard<std::mutex> Lock(StoreFlushM);
        --PendingStoreWrites;
      }
      StoreFlushCV.notify_all();
    });
  }
  return Comp;
}

void Session::writeArtifact(const std::shared_ptr<Compilation> &Comp,
                            uint64_t Hash) {
  Result<std::string> Bytes = Comp->serializeArtifact();
  if (!Bytes)
    return; // The store is a cache: serialization failures are non-fatal.
  if (!Store->store(Hash, *Bytes))
    return;
  if (Opts.MaxStoredArtifacts || Opts.MaxStoreBytes)
    if (size_t N = Store->evictToBudget(Opts.MaxStoredArtifacts,
                                        Opts.MaxStoreBytes))
      NumDiskEvictions.fetch_add(N, std::memory_order_relaxed);
}

void Session::flushStoreWrites() {
  std::unique_lock<std::mutex> Lock(StoreFlushM);
  StoreFlushCV.wait(Lock, [this] { return PendingStoreWrites == 0; });
}

size_t Session::evictStore(size_t MaxEntries, uint64_t MaxBytes) {
  if (!Store)
    return 0;
  size_t N = Store->evictToBudget(MaxEntries, MaxBytes);
  if (N)
    NumDiskEvictions.fetch_add(N, std::memory_order_relaxed);
  return N;
}

std::shared_ptr<Compilation> Session::compile(std::string_view Source) {
  CompileOutcome Outcome;
  return compile(Source, Outcome);
}

std::shared_ptr<Compilation> Session::compile(std::string_view Source,
                                              CompileOutcome &Outcome) {
  if (!Opts.EnableCache)
    return buildSource(Source, Outcome);

  uint64_t H = hashSource(Source);
  Shard &Sh = Shards[H % NumShards];

  std::promise<std::shared_ptr<Compilation>> Prom;
  std::shared_future<std::shared_ptr<Compilation>> Fut;
  bool Owner = false;
  uint64_t OwnGen = 0;
  {
    std::lock_guard<std::mutex> Lock(Sh.M);
    auto MapIt = Sh.Map.find(H);
    if (MapIt != Sh.Map.end()) {
      for (auto EntryIt : MapIt->second)
        if (EntryIt->Source == Source) {
          NumCacheHits.fetch_add(1, std::memory_order_relaxed);
          Sh.LRU.splice(Sh.LRU.begin(), Sh.LRU, EntryIt); // touch
          Fut = EntryIt->Fut;
          break;
        }
    }
    if (!Fut.valid()) {
      // First compile of this source: publish an in-flight entry so
      // concurrent identical compiles wait instead of duplicating work.
      Owner = true;
      OwnGen = ++Sh.NextGen;
      Fut = Prom.get_future().share();
      Sh.LRU.push_front({H, std::string(Source), OwnGen, Fut});
      Sh.Map[H].push_back(Sh.LRU.begin());

      if (size_t Cap = perShardCap()) {
        // Evict least-recently-used *finished* entries. In-flight builds
        // are never evicted — that would re-admit a second owner for the
        // same source and break compile-once dedup — so the cap may be
        // transiently exceeded while builds are outstanding.
        for (auto It = std::prev(Sh.LRU.end());
             Sh.LRU.size() > Cap && It != Sh.LRU.begin();) {
          auto Victim = It--;
          if (Victim->Fut.wait_for(std::chrono::seconds(0)) !=
              std::future_status::ready)
            continue;
          auto &Bucket = Sh.Map[Victim->Hash];
          Bucket.erase(std::remove(Bucket.begin(), Bucket.end(), Victim),
                       Bucket.end());
          if (Bucket.empty())
            Sh.Map.erase(Victim->Hash);
          Sh.LRU.erase(Victim);
          NumEvictions.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  }

  if (!Owner) {
    // Both the found-in-cache case and a wait on an identical in-flight
    // compile count (and report) as memory hits.
    Outcome = CompileOutcome::CacheHit;
    return Fut.get(); // Blocks only while the winner is still building.
  }

  std::shared_ptr<Compilation> Comp;
  try {
    Comp = buildSource(Source, Outcome);
  } catch (...) {
    // Wake current waiters with the failure, but drop the entry so the
    // source retries fresh instead of rethrowing a stale exception on
    // every future compile. The generation check ensures we only remove
    // our own entry, never a successor's re-insert for this source.
    Prom.set_exception(std::current_exception());
    {
      std::lock_guard<std::mutex> Lock(Sh.M);
      auto MapIt = Sh.Map.find(H);
      if (MapIt != Sh.Map.end()) {
        auto &Bucket = MapIt->second;
        for (auto It = Bucket.begin(); It != Bucket.end(); ++It)
          if ((*It)->Gen == OwnGen) {
            Sh.LRU.erase(*It);
            Bucket.erase(It);
            break;
          }
        if (Bucket.empty())
          Sh.Map.erase(MapIt);
      }
    }
    throw;
  }
  Prom.set_value(Comp);
  return Comp;
}

std::shared_ptr<Compilation> Session::compileProgram(
    const std::function<core::CoreProgram(core::CoreContext &)> &Build) {
  auto Comp = std::shared_ptr<Compilation>(new Compilation(Opts));
  Comp->adoptProgram(Build);
  NumCompilations.fetch_add(1, std::memory_order_relaxed);
  return Comp;
}

std::shared_ptr<Compilation> Session::compileFormal(
    const std::function<const lcalc::Expr *(lcalc::LContext &)> &Build) {
  auto Comp = std::shared_ptr<Compilation>(new Compilation(Opts));
  Comp->buildFormal(Build);
  NumCompilations.fetch_add(1, std::memory_order_relaxed);
  return Comp;
}

Session::Stats Session::stats() const {
  Stats St;
  St.Compilations = NumCompilations.load(std::memory_order_relaxed);
  St.CacheHits = NumCacheHits.load(std::memory_order_relaxed);
  St.Evictions = NumEvictions.load(std::memory_order_relaxed);
  St.Analyses = NumAnalyses.load(std::memory_order_relaxed);
  St.DiskHits = NumDiskHits.load(std::memory_order_relaxed);
  St.DiskMisses = NumDiskMisses.load(std::memory_order_relaxed);
  St.DiskEvictions = NumDiskEvictions.load(std::memory_order_relaxed);
  return St;
}

size_t Session::cacheSize() const {
  size_t N = 0;
  for (size_t I = 0; I != NumShards; ++I) {
    std::lock_guard<std::mutex> Lock(Shards[I].M);
    N += Shards[I].LRU.size();
  }
  return N;
}

//===----------------------------------------------------------------------===//
// Session — async compilation and batch running
//===----------------------------------------------------------------------===//

Session::WorkerPool &Session::pool() {
  std::call_once(PoolOnce, [this] {
    unsigned N = Opts.AsyncWorkers;
    if (N == 0) {
      N = std::thread::hardware_concurrency();
      N = std::clamp(N, 2u, 8u);
    }
    Pool = std::make_unique<WorkerPool>(N);
  });
  return *Pool;
}

std::future<std::shared_ptr<Compilation>>
Session::compileAsync(std::string_view Source, CompileOutcome *Outcome) {
  auto Task =
      std::make_shared<std::packaged_task<std::shared_ptr<Compilation>()>>(
          [this, Src = std::string(Source), Outcome] {
            CompileOutcome Local;
            std::shared_ptr<Compilation> Comp = compile(Src, Local);
            if (Outcome)
              *Outcome = Local; // Happens-before the future's readiness.
            return Comp;
          });
  std::future<std::shared_ptr<Compilation>> Fut = Task->get_future();
  pool().submit([Task] { (*Task)(); });
  return Fut;
}

std::vector<RunResult>
Session::runAll(std::span<const RunRequest> Requests) {
  std::vector<std::future<RunResult>> Futures;
  Futures.reserve(Requests.size());
  for (const RunRequest &Req : Requests) {
    // Tasks copy their request: if an early future rethrows below, the
    // caller's span may die while later tasks are still queued.
    auto Task = std::make_shared<std::packaged_task<RunResult()>>(
        [this, Req] {
          CompileOutcome Outcome;
          std::shared_ptr<Compilation> Comp = compile(Req.Source, Outcome);
          if (Req.Outcome)
            *Req.Outcome = Outcome; // Published by the future below.
          Executor Ex(Comp);
          if (Req.Fuel) {
            // The per-request deadline: whichever backend runs, it stops
            // (with Status::OutOfFuel) after this many of its own steps.
            CompileOptions &O = Ex.options();
            O.MaxInterpSteps = *Req.Fuel;
            O.MaxMachineSteps = *Req.Fuel;
            O.MaxVmSteps = *Req.Fuel;
            O.MaxFormalSteps = static_cast<size_t>(*Req.Fuel);
          }
          return Ex.run(Req.Name, Req.B.value_or(Opts.DefaultBackend));
        });
    Futures.push_back(Task->get_future());
    pool().submit([Task] { (*Task)(); });
  }

  std::vector<RunResult> Out;
  Out.reserve(Futures.size());
  for (std::future<RunResult> &F : Futures)
    Out.push_back(F.get());
  return Out;
}

//===----------------------------------------------------------------------===//
// Session — the Section 8.1 catalog analysis
//===----------------------------------------------------------------------===//

CatalogAnalysis Session::analyzeCatalog() {
  CatalogAnalysis A;
  A.Report = classlib::runClassAnalysis();
  for (const classlib::AnalysisReport::Stage &St : A.Report.Stages)
    A.Timings.push_back({St.Name, St.Millis});
  NumAnalyses.fetch_add(1, std::memory_order_relaxed);
  return A;
}
