//===- Session.cpp - The compilation-session facade -----------------------===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "driver/Session.h"
#include "driver/LowerToL.h"
#include "surface/Parser.h"

#include <chrono>
#include <sstream>

using namespace levity;
using namespace levity::driver;

std::string_view driver::backendName(Backend B) {
  switch (B) {
  case Backend::TreeInterp:
    return "tree-interp";
  case Backend::AbstractMachine:
    return "abstract-machine";
  }
  return "unknown";
}

namespace {

double millisSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - Start)
      .count();
}

} // namespace

//===----------------------------------------------------------------------===//
// Compilation — pipeline stages
//===----------------------------------------------------------------------===//

/// The abstract-machine side of a Compilation: one L context, one M
/// context, and the memoized per-global lowerings. Built on first use so
/// tree-interp-only clients pay nothing.
struct Compilation::MachinePipeline {
  lcalc::LContext L;
  mcalc::MContext MC;
  /// Global name → compiled M term (or the lowering failure, kept so
  /// repeated runs do not re-walk an unsupported program).
  std::unordered_map<std::string, Result<const mcalc::Term *>> MTerms;
  /// compileFormal's term, compiled to M (memoized).
  std::optional<Result<const mcalc::Term *>> FormalM;
};

Compilation::Compilation(const CompileOptions &Opts) : Opts(Opts) {}

Compilation::~Compilation() = default;

void Compilation::compileSource(std::string_view Src) {
  Source.assign(Src);
  SrcHash = Session::hashSource(Src);

  auto Timed = [&](const char *Stage, auto Fn) {
    auto Start = std::chrono::steady_clock::now();
    auto R = Fn();
    Timings.push_back({Stage, millisSince(Start)});
    return R;
  };

  std::vector<surface::Token> Tokens = Timed("lex", [&] {
    surface::Lexer L(Source, Diags);
    return L.lexAll();
  });
  if (Diags.hasErrors())
    return;

  surface::SModule Module = Timed("parse", [&] {
    surface::Parser P(std::move(Tokens), Diags);
    return P.parseModule();
  });
  if (Diags.hasErrors())
    return;

  Elaborated = Timed("elaborate+check", [&] { return Elab.run(Module); });
  Succeeded = Elaborated.has_value();
}

void Compilation::adoptProgram(
    const std::function<core::CoreProgram(core::CoreContext &)> &Build) {
  auto Start = std::chrono::steady_clock::now();
  surface::ElabOutput Out;
  Out.Program = Build(C);
  for (const core::TopBinding &B : Out.Program.Bindings)
    Out.UserBindings.push_back(B.Name);
  Elaborated = std::move(Out);
  Timings.push_back({"build-core", millisSince(Start)});
  Succeeded = true;
}

void Compilation::buildFormal(
    const std::function<const lcalc::Expr *(lcalc::LContext &)> &Build) {
  MachinePipeline &MP = machine();
  auto Start = std::chrono::steady_clock::now();
  FormalTerm = Build(MP.L);
  Timings.push_back({"build-term", millisSince(Start)});
  if (!FormalTerm) {
    Diags.error(DiagCode::Internal, "formal term builder returned null");
    return;
  }

  Start = std::chrono::steady_clock::now();
  lcalc::TypeChecker TC(MP.L);
  FormalTy = TC.typeOfClosed(FormalTerm);
  Timings.push_back({"typecheck", millisSince(Start)});
  if (!*FormalTy) {
    Diags.error(DiagCode::TypeError, (*FormalTy).error());
    return;
  }
  Succeeded = true;
}

Compilation::MachinePipeline &Compilation::machine() {
  if (!Machine)
    Machine = std::make_unique<MachinePipeline>();
  return *Machine;
}

std::string Compilation::timingReport() const {
  std::ostringstream OS;
  double Total = 0;
  for (const StageTiming &T : Timings) {
    char Line[96];
    std::snprintf(Line, sizeof(Line), "  %-16s %8.3f ms\n",
                  T.Stage.c_str(), T.Millis);
    OS << Line;
    Total += T.Millis;
  }
  char Line[96];
  std::snprintf(Line, sizeof(Line), "  %-16s %8.3f ms\n", "total", Total);
  OS << Line;
  return OS.str();
}

const core::Type *Compilation::globalType(std::string_view Name) {
  if (const core::Type *T = Elab.globalType(Name))
    return T;
  // Programmatic compilations bypass the elaborator's table; fall back to
  // the binding's recorded type.
  if (Elaborated)
    if (const core::TopBinding *B = Elaborated->Program.find(C.sym(Name)))
      return C.zonkType(B->Ty);
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Compilation — tree-interpreter backend
//===----------------------------------------------------------------------===//

runtime::Interp &Compilation::interp() {
  if (!TreeInterp) {
    TreeInterp = std::make_unique<runtime::Interp>(C);
    if (Elaborated)
      TreeInterp->loadProgram(Elaborated->Program);
  }
  return *TreeInterp;
}

runtime::InterpResult Compilation::evalName(std::string_view Name) {
  return evalExpr(C.var(C.sym(Name)));
}

runtime::InterpResult Compilation::evalExpr(const core::Expr *E) {
  return interp().eval(E, Opts.MaxInterpSteps);
}

RunResult Compilation::runTree(std::string_view Name) {
  RunResult R;
  R.Used = Backend::TreeInterp;
  auto Start = std::chrono::steady_clock::now();
  runtime::InterpResult IR = evalName(Name);
  R.Millis = millisSince(Start);
  R.Interp = IR.Stats;

  switch (IR.Status) {
  case runtime::InterpStatus::Value: {
    R.St = RunResult::Status::Ok;
    R.Display = interp().show(IR.V);
    if (auto I = runtime::Interp::asIntHash(IR.V))
      R.IntValue = *I;
    else if (auto B = interp().asBoxedInt(IR.V))
      R.IntValue = *B;
    if (auto D = runtime::Interp::asDoubleHash(IR.V))
      R.DoubleValue = *D;
    break;
  }
  case runtime::InterpStatus::Bottom:
    R.St = RunResult::Status::Bottom;
    R.Error = IR.Message;
    break;
  case runtime::InterpStatus::RuntimeError:
    R.St = RunResult::Status::RuntimeError;
    R.Error = IR.Message;
    break;
  case runtime::InterpStatus::OutOfFuel:
    R.St = RunResult::Status::OutOfFuel;
    R.Error = "out of fuel";
    break;
  }
  return R;
}

//===----------------------------------------------------------------------===//
// Compilation — abstract-machine backend
//===----------------------------------------------------------------------===//

Result<const mcalc::Term *> Compilation::machineTerm(std::string_view Name) {
  MachinePipeline &MP = machine();
  std::string Key(Name);
  auto It = MP.MTerms.find(Key);
  if (It != MP.MTerms.end())
    return It->second;

  Result<const mcalc::Term *> Out = [&]() -> Result<const mcalc::Term *> {
    if (!Elaborated)
      return err("no compiled program");
    CoreToL Lower(C, MP.L);
    Result<const lcalc::Expr *> LTerm =
        Lower.lowerGlobal(Elaborated->Program, C.sym(Name));
    if (!LTerm)
      return err(LTerm.error());
    anf::Compiler Comp(MP.L, MP.MC);
    return Comp.compileClosed(*LTerm);
  }();
  MP.MTerms.emplace(std::move(Key), Out);
  return Out;
}

namespace {

/// Converts a finished machine run into the facade result shape.
void fillFromMachine(RunResult &R, const mcalc::MachineResult &MR) {
  R.Machine = MR.Stats;
  switch (MR.Status) {
  case mcalc::MachineOutcome::Value:
    R.St = RunResult::Status::Ok;
    R.Display = MR.Value->str();
    if (const auto *Lit = mcalc::dyn_cast<mcalc::LitTerm>(MR.Value))
      R.IntValue = Lit->value();
    else if (const auto *Con = mcalc::dyn_cast<mcalc::ConLitTerm>(MR.Value))
      R.IntValue = Con->value();
    break;
  case mcalc::MachineOutcome::Bottom:
    R.St = RunResult::Status::Bottom;
    R.Error = "error (ERR rule)";
    break;
  case mcalc::MachineOutcome::Stuck:
    R.St = RunResult::Status::RuntimeError;
    R.Error = "machine stuck: " + MR.StuckReason;
    break;
  case mcalc::MachineOutcome::OutOfFuel:
    R.St = RunResult::Status::OutOfFuel;
    R.Error = "out of fuel";
    break;
  }
}

} // namespace

RunResult Compilation::runMachine(std::string_view Name) {
  RunResult R;
  R.Used = Backend::AbstractMachine;
  auto Start = std::chrono::steady_clock::now();
  Result<const mcalc::Term *> T = machineTerm(Name);
  if (!T) {
    R.St = RunResult::Status::Unsupported;
    R.Error = T.error();
    R.Millis = millisSince(Start);
    return R;
  }
  mcalc::Machine M(machine().MC);
  mcalc::MachineResult MR = M.run(*T, Opts.MaxMachineSteps);
  R.Millis = millisSince(Start);
  fillFromMachine(R, MR);
  return R;
}

//===----------------------------------------------------------------------===//
// Compilation — run dispatch
//===----------------------------------------------------------------------===//

RunResult Compilation::run(std::string_view Name) {
  return run(Name, Opts.DefaultBackend);
}

RunResult Compilation::run(std::string_view Name, Backend B) {
  RunResult R;
  R.Used = B;
  if (FormalTerm) {
    R.St = RunResult::Status::Unsupported;
    R.Error = "formal compilations run via run() / run(Backend)";
    return R;
  }
  if (!ok()) {
    R.St = RunResult::Status::RuntimeError;
    R.Error = "compilation failed:\n" + diagText();
    return R;
  }
  return B == Backend::TreeInterp ? runTree(Name) : runMachine(Name);
}

//===----------------------------------------------------------------------===//
// Compilation — formal pipeline
//===----------------------------------------------------------------------===//

lcalc::LContext &Compilation::lctx() { return machine().L; }

Result<const lcalc::Type *> Compilation::formalType() {
  if (FormalTy)
    return *FormalTy;
  return err("not a formal compilation");
}

RunResult Compilation::run() { return run(Opts.DefaultBackend); }

RunResult Compilation::run(Backend B) {
  if (!FormalTerm) {
    RunResult R;
    R.Used = B;
    R.St = RunResult::Status::Unsupported;
    R.Error = "surface compilations run via run(name)";
    return R;
  }
  return runFormal(B);
}

RunResult Compilation::runFormal(Backend B) {
  RunResult R;
  R.Used = B;
  if (!ok()) {
    R.St = RunResult::Status::RuntimeError;
    R.Error = "compilation failed:\n" + diagText();
    return R;
  }
  MachinePipeline &MP = machine();

  if (B == Backend::TreeInterp) {
    // Figure 4: the type-directed small-step semantics.
    lcalc::Evaluator Ev(MP.L);
    auto Start = std::chrono::steady_clock::now();
    lcalc::RunResult LR = Ev.runClosed(FormalTerm, Opts.MaxFormalSteps);
    R.Millis = millisSince(Start);
    R.Interp.EvalSteps = LR.Steps;
    switch (LR.Final) {
    case lcalc::StepStatus::Value:
      R.St = RunResult::Status::Ok;
      R.Display = LR.Last->str();
      if (const auto *Lit = lcalc::dyn_cast<lcalc::IntLitExpr>(LR.Last))
        R.IntValue = Lit->value();
      else if (const auto *Con = lcalc::dyn_cast<lcalc::ConExpr>(LR.Last))
        if (const auto *Payload =
                lcalc::dyn_cast<lcalc::IntLitExpr>(Con->payload()))
          R.IntValue = Payload->value();
      break;
    case lcalc::StepStatus::Bottom:
      R.St = RunResult::Status::Bottom;
      R.Error = "error (S_ERROR rule)";
      break;
    case lcalc::StepStatus::Stuck:
      R.St = RunResult::Status::RuntimeError;
      R.Error = "L evaluation stuck at " + LR.Last->str();
      break;
    case lcalc::StepStatus::Stepped:
      R.St = RunResult::Status::OutOfFuel;
      R.Error = "out of fuel";
      break;
    }
    return R;
  }

  // Figures 5-7: compile to M (memoized) and run the machine.
  if (!MP.FormalM) {
    anf::Compiler Comp(MP.L, MP.MC);
    MP.FormalM = Comp.compileClosed(FormalTerm);
  }
  if (!*MP.FormalM) {
    R.St = RunResult::Status::Unsupported;
    R.Error = (*MP.FormalM).error();
    return R;
  }
  mcalc::Machine M(MP.MC);
  auto Start = std::chrono::steady_clock::now();
  mcalc::MachineResult MR = M.run(**MP.FormalM, Opts.MaxMachineSteps);
  R.Millis = millisSince(Start);
  fillFromMachine(R, MR);
  return R;
}

//===----------------------------------------------------------------------===//
// Session
//===----------------------------------------------------------------------===//

uint64_t Session::hashSource(std::string_view Source) {
  uint64_t H = 1469598103934665603ull; // FNV offset basis
  for (char Ch : Source) {
    H ^= static_cast<unsigned char>(Ch);
    H *= 1099511628211ull; // FNV prime
  }
  return H;
}

std::shared_ptr<Compilation> Session::compile(std::string_view Source) {
  uint64_t H = hashSource(Source);
  if (Opts.EnableCache) {
    auto It = Cache.find(H);
    if (It != Cache.end())
      for (const std::shared_ptr<Compilation> &Comp : It->second)
        if (Comp->source() == Source) {
          ++St.CacheHits;
          return Comp;
        }
  }

  auto Comp = std::shared_ptr<Compilation>(new Compilation(Opts));
  Comp->compileSource(Source);
  ++St.Compilations;
  if (Opts.EnableCache)
    Cache[H].push_back(Comp);
  return Comp;
}

std::shared_ptr<Compilation> Session::compileProgram(
    const std::function<core::CoreProgram(core::CoreContext &)> &Build) {
  auto Comp = std::shared_ptr<Compilation>(new Compilation(Opts));
  Comp->adoptProgram(Build);
  ++St.Compilations;
  return Comp;
}

std::shared_ptr<Compilation> Session::compileFormal(
    const std::function<const lcalc::Expr *(lcalc::LContext &)> &Build) {
  auto Comp = std::shared_ptr<Compilation>(new Compilation(Opts));
  Comp->buildFormal(Build);
  ++St.Compilations;
  return Comp;
}
