//===- Serialize.h - The versioned .levc artifact format --------*- C++ -*-===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The binary reader/writer behind the on-disk compilation store
/// (driver/ArtifactStore.h). A `.levc` artifact persists everything a
/// cold process needs to *run* a compiled program on the abstract
/// machine without re-running the front end or the core→L→ANF→M
/// lowering: the source text (for exact-match validation), the
/// per-global compiled M terms (or their pinned "not expressible in L"
/// failures), pretty-printed global types, the original stage timings,
/// and the M-context name counter.
///
/// The format is *versioned twice*:
///
///   * FormatVersion — the byte layout of this file. Bump on any layout
///     change.
///   * pipelineFingerprint() — a hash of FormatVersion, the pipeline
///     epoch string, and the stable tag-space sizes of the M syntax
///     (mcalc::Term::NumTermKinds, NumMPrims, NumVarSorts). Any change
///     to what the pipeline *produces* — new node kinds, new primops,
///     changed lowering semantics (bump PipelineEpoch for those) —
///     changes the fingerprint, and every stale store entry silently
///     becomes a miss.
///
/// The full byte layout is specified in docs/ARTIFACT_FORMAT.md; this
/// header is the single implementation of it. Readers treat *any*
/// malformed input (bad magic, version, fingerprint, checksum, truncated
/// or corrupt sections) as "no artifact": deserialization returns null
/// and the driver recompiles from source.
///
//===----------------------------------------------------------------------===//

#ifndef LEVITY_DRIVER_SERIALIZE_H
#define LEVITY_DRIVER_SERIALIZE_H

#include "bytecode/Bytecode.h"
#include "core/CoreContext.h"
#include "core/Program.h"
#include "mcalc/Syntax.h"

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace levity {
namespace driver {
namespace levc {

/// First bytes of every artifact: 'L' 'E' 'V' 'C'.
inline constexpr char Magic[4] = {'L', 'E', 'V', 'C'};

/// Byte-layout version of the .levc container. Bump on any layout change
/// (it is also folded into the fingerprint, so old stores go stale).
/// v2 (PR 5): CON/SWITCH term tags, the optional CORE section, and
/// constructor atoms that may name pointer registers.
/// v3 (PR 6): the optional BCOD section — per-global compiled bytecode
/// modules, so warm-store Backend::Bytecode runs need zero front-end,
/// lowering, or bytecode-compilation work.
inline constexpr uint32_t FormatVersion = 3;

/// Names the semantics of the compiled artifacts. Bump whenever the
/// core→L→ANF→M lowering changes observable output (new fragment,
/// changed encodings, changed error strings) so stale artifacts are
/// re-lowered instead of replayed.
inline constexpr char PipelineEpoch[] = "core->L->ANF->M pr6";

/// Section identifiers (four ASCII bytes, little-endian u32). Unknown
/// sections are skipped on read, so future writers may append sections
/// without a FormatVersion bump.
enum SectionId : uint32_t {
  SecSource = 0x20435253, ///< "SRC " — the exact source text.
  SecMeta = 0x4154454D,   ///< "META" — timings, backend, name counter.
  SecTypes = 0x45505954,  ///< "TYPE" — pretty-printed global types.
  SecTerms = 0x4D52544D,  ///< "MTRM" — per-global M terms / failures.
  SecCore = 0x45524F43,   ///< "CORE" — the elaborated core program
                          ///< (optional; lets tree-backend consumers of
                          ///< a warm store skip the front end too).
  SecBytecode = 0x444F4342, ///< "BCOD" — per-global compiled bytecode
                            ///< modules (optional; lets Bytecode-backend
                            ///< consumers of a warm store skip even the
                            ///< bytecode compiler).
};

/// The version fingerprint written into (and demanded of) every
/// artifact. Deterministic across processes and platforms.
uint64_t pipelineFingerprint();

/// FNV-1a over \p Bytes — the artifact trailer checksum (and the same
/// function Session::hashSource uses, kept bit-compatible on purpose).
uint64_t fnv1a(std::string_view Bytes);

//===----------------------------------------------------------------------===//
// Byte-level primitives (little-endian, length-prefixed strings)
//===----------------------------------------------------------------------===//

/// Appends fixed-width little-endian scalars and length-prefixed strings
/// to a growing buffer.
class ByteWriter {
public:
  void u8(uint8_t V);
  void u32(uint32_t V);
  void u64(uint64_t V);
  void i64(int64_t V);
  void f64(double V);                ///< IEEE-754 bit pattern as u64.
  void str(std::string_view S);      ///< u32 length + raw bytes.
  void raw(std::string_view Bytes);  ///< Raw bytes, no length prefix.

  const std::string &bytes() const { return Buf; }
  std::string take() { return std::move(Buf); }
  size_t size() const { return Buf.size(); }

private:
  std::string Buf;
};

/// Reads the ByteWriter encoding back. All reads are bounds-checked:
/// running past the end (or any validation failure flagged by callers via
/// fail()) makes every subsequent read return zero values, and ok()
/// reports the sticky failure — so decode loops can check once at the end.
class ByteReader {
public:
  explicit ByteReader(std::string_view Bytes) : Buf(Bytes) {}

  uint8_t u8();
  uint32_t u32();
  uint64_t u64();
  int64_t i64();
  double f64();
  std::string_view str();
  std::string_view raw(size_t N);

  /// Marks the stream failed (validation error in a caller).
  void fail() { Failed = true; }
  bool ok() const { return !Failed; }
  bool atEnd() const { return Failed || Pos == Buf.size(); }
  size_t pos() const { return Pos; }

private:
  const unsigned char *take(size_t N);

  std::string_view Buf;
  size_t Pos = 0;
  bool Failed = false;
};

//===----------------------------------------------------------------------===//
// M-term encoding
//===----------------------------------------------------------------------===//

/// Serializes one M term (tag byte per node — the stable
/// mcalc::Term::TermKind values — preorder, recursively).
void writeTerm(ByteWriter &W, const mcalc::Term *T);

/// Decodes one M term, allocating nodes in \p Ctx and interning names in
/// its symbol table. \returns null (and fails \p R) on malformed input:
/// bad tags, bad sorts, over-deep nesting, or truncation.
const mcalc::Term *readTerm(ByteReader &R, mcalc::MContext &Ctx);

/// Decode refuses terms nested deeper than this (a corrupt length field
/// must not turn into unbounded C++ recursion). Kept small enough that
/// the guard fires before the decoder's ~2 stack frames per level can
/// overflow even an -O0/sanitizer thread stack, and still an order of
/// magnitude beyond any term the lowering produces for this fragment.
inline constexpr unsigned MaxTermDepth = 1u << 11;

//===----------------------------------------------------------------------===//
// Core-program encoding — the optional CORE section (SerializeCore.cpp)
//===----------------------------------------------------------------------===//

/// Encodes the elaborated core program — the data declarations its
/// bindings reference (transitively), the bindings themselves, and the
/// user-binding name list — so a hydrating process can serve
/// tree-backend runs with zero front-end work. \returns false when the
/// program contains something the codec cannot stably encode (an
/// unsolved metavariable); callers then simply omit the CORE section
/// and hydrated consumers fall back to the lazy front-end rebuild.
bool writeCoreSection(ByteWriter &W, core::CoreContext &C,
                      const core::CoreProgram &Program,
                      const std::vector<Symbol> &UserBindings);

/// Decodes a CORE section into \p C, recreating user type/data
/// constructors (builtins are matched by name) and the program.
/// \returns false on any malformed input — callers treat that as "no
/// CORE section", never an error.
bool readCoreSection(ByteReader &R, core::CoreContext &C,
                     core::CoreProgram &Program,
                     std::vector<Symbol> &UserBindings);

/// Decode refuses constructor nodes/patterns with more fields than this
/// and switches with more alternatives than this — a corrupt count must
/// not turn into a giant allocation.
inline constexpr unsigned MaxConFields = 1u << 16;
inline constexpr unsigned MaxSwitchAlts = 1u << 16;

//===----------------------------------------------------------------------===//
// Bytecode-module encoding — the optional BCOD section
//===----------------------------------------------------------------------===//

/// Serializes one compiled bytecode module: protos, the flat code
/// stream (stable bytecode::Op tags), constant pools, switch tables.
/// Self-delimiting — modules concatenate inside the BCOD payload.
void writeBytecodeModule(ByteWriter &W, const bytecode::Module &M);

/// Decodes one bytecode module. The result passed bytecode::validate(),
/// so it is as safe to execute as freshly compiled code. \returns null
/// (and fails \p R) on any malformed input — truncation, counts over
/// the decode caps, or a module the verifier rejects.
std::shared_ptr<const bytecode::Module> readBytecodeModule(ByteReader &R);

/// Decode caps for BCOD payloads: a corrupt count must not turn into a
/// giant allocation before validation can reject the module.
inline constexpr unsigned MaxBcProtos = 1u << 20;
inline constexpr unsigned MaxBcCode = 1u << 26;
inline constexpr unsigned MaxBcPool = 1u << 24;

} // namespace levc
} // namespace driver
} // namespace levity

#endif // LEVITY_DRIVER_SERIALIZE_H
