//===- Executor.cpp - Per-thread execution state for a Compilation --------===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "driver/Executor.h"
#include "support/Timing.h"

#include <chrono>

using namespace levity;
using namespace levity::driver;
using support::millisSince;

namespace {

/// Converts a finished machine run into the facade result shape.
void fillFromMachine(RunResult &R, const mcalc::MachineResult &MR) {
  R.Machine = MR.Stats;
  switch (MR.Status) {
  case mcalc::MachineOutcome::Value:
    R.St = RunResult::Status::Ok;
    R.Display = MR.Value->str();
    if (const auto *Lit = mcalc::dyn_cast<mcalc::LitTerm>(MR.Value))
      R.IntValue = Lit->value();
    else if (const auto *Con = mcalc::dyn_cast<mcalc::ConLitTerm>(MR.Value))
      R.IntValue = Con->value();
    else if (const auto *DLit = mcalc::dyn_cast<mcalc::DLitTerm>(MR.Value))
      R.DoubleValue = DLit->value();
    break;
  case mcalc::MachineOutcome::Bottom:
    R.St = RunResult::Status::Bottom;
    R.Error =
        MR.ErrorMessage.empty() ? "error (ERR rule)" : MR.ErrorMessage;
    break;
  case mcalc::MachineOutcome::Stuck:
    R.St = RunResult::Status::RuntimeError;
    R.Error = "machine stuck: " + MR.StuckReason;
    break;
  case mcalc::MachineOutcome::OutOfFuel:
    R.St = RunResult::Status::OutOfFuel;
    R.Error = "out of fuel";
    break;
  }
}

/// Converts a finished bytecode-VM run into the facade result shape,
/// mirroring fillFromMachine (same Status mapping, same bare-error
/// message, a "bytecode vm stuck:" prefix naming the executing tier).
void fillFromVm(RunResult &R, const bytecode::VmResult &VR) {
  R.Vm = VR.Stats;
  switch (VR.Out) {
  case bytecode::VmResult::Outcome::Value:
    R.St = RunResult::Status::Ok;
    R.Display = VR.Display;
    R.IntValue = VR.IntValue;
    R.DoubleValue = VR.DoubleValue;
    break;
  case bytecode::VmResult::Outcome::Bottom:
    R.St = RunResult::Status::Bottom;
    R.Error =
        VR.ErrorMessage.empty() ? "error (ERR rule)" : VR.ErrorMessage;
    break;
  case bytecode::VmResult::Outcome::Stuck:
    R.St = RunResult::Status::RuntimeError;
    R.Error = "bytecode vm stuck: " + VR.StuckReason;
    break;
  case bytecode::VmResult::Outcome::OutOfFuel:
    R.St = RunResult::Status::OutOfFuel;
    R.Error = "out of fuel";
    break;
  }
}

} // namespace

Executor::Executor(std::shared_ptr<const Compilation> Comp)
    : Comp(std::move(Comp)), Opts(this->Comp->options()) {}

Executor::Executor(Executor &&) noexcept = default;
Executor &Executor::operator=(Executor &&) noexcept = default;
Executor::~Executor() = default;

//===----------------------------------------------------------------------===//
// The tree-interpreter backend
//===----------------------------------------------------------------------===//

runtime::Interp &Executor::interp() {
  if (!TreeInterp) {
    TreeInterp = std::make_unique<runtime::Interp>(Comp->ctx());
    if (const surface::ElabOutput *Out = Comp->elabOutput())
      TreeInterp->loadProgram(Out->Program);
  }
  return *TreeInterp;
}

runtime::InterpResult Executor::evalName(std::string_view Name) {
  // Memoize the scratch lookup var per name: a long-lived Executor must
  // not grow the compilation's shared core arena on every run.
  std::string Key(Name);
  auto It = NameExprs.find(Key);
  if (It == NameExprs.end()) {
    core::CoreContext &C = Comp->ctx();
    It = NameExprs.emplace(std::move(Key), C.var(C.sym(Name))).first;
  }
  return evalExpr(It->second);
}

runtime::InterpResult Executor::evalExpr(const core::Expr *E) {
  return interp().eval(E, Opts.MaxInterpSteps);
}

RunResult Executor::runTree(std::string_view Name) {
  RunResult R;
  R.Used = Backend::TreeInterp;
  // For store-hydrated compilations this elabOutput() call performs the
  // lazy front-end rebuild (once; machine-only consumers never pay it).
  // Only that rebuild can leave a runnable compilation without elab
  // output — failed and formal compilations were rejected in run() —
  // but keep the message honest should another path ever get here.
  if (!Comp->elabOutput()) {
    R.St = RunResult::Status::RuntimeError;
    R.Error = Comp->hydrated()
                  ? "front-end rebuild of the on-disk artifact failed:\n" +
                        Comp->diagText()
                  : "no compiled program to run";
    return R;
  }
  // Bracket the run in a pool epoch: once the result is extracted below,
  // the run's Values/EnvNodes are reclaimed wholesale (unless a global
  // was forced for the first time, which promotes the epoch — see
  // Interp::beginRunEpoch). interp() is called first so the lazy
  // build-and-loadProgram allocations land outside the epoch.
  runtime::Interp &I = interp();
  runtime::Interp::RunEpochMark Mark = I.beginRunEpoch();
  auto Start = std::chrono::steady_clock::now();
  runtime::InterpResult IR = evalName(Name);
  R.Millis = millisSince(Start);
  R.Interp = IR.Stats;

  switch (IR.Status) {
  case runtime::InterpStatus::Value: {
    R.St = RunResult::Status::Ok;
    R.Display = interp().show(IR.V);
    if (auto I = runtime::Interp::asIntHash(IR.V))
      R.IntValue = *I;
    else if (auto B = interp().asBoxedInt(IR.V))
      R.IntValue = *B;
    if (auto D = runtime::Interp::asDoubleHash(IR.V))
      R.DoubleValue = *D;
    break;
  }
  case runtime::InterpStatus::Bottom:
    R.St = RunResult::Status::Bottom;
    R.Error = IR.Message;
    break;
  case runtime::InterpStatus::RuntimeError:
    R.St = RunResult::Status::RuntimeError;
    R.Error = IR.Message;
    break;
  case runtime::InterpStatus::OutOfFuel:
    R.St = RunResult::Status::OutOfFuel;
    R.Error = "out of fuel";
    break;
  }
  // Everything the caller sees (Display, scalars, message) has been
  // copied into R; the run's pool cells can go.
  I.endRunEpoch(Mark);
  return R;
}

//===----------------------------------------------------------------------===//
// The abstract-machine backend
//===----------------------------------------------------------------------===//

mcalc::MContext &Executor::runContext() {
  if (!RunMC)
    RunMC = std::make_unique<mcalc::MContext>();
  RunMC->resetRunState();
  return *RunMC;
}

RunResult Executor::runMachine(std::string_view Name) {
  RunResult R;
  R.Used = Backend::AbstractMachine;
  auto Start = std::chrono::steady_clock::now();
  Result<const mcalc::Term *> T = Comp->machineTerm(Name);
  if (!T) {
    R.St = RunResult::Status::Unsupported;
    R.Error = T.error();
    R.Millis = millisSince(Start);
    return R;
  }
  // The machine itself is per-run state. It runs over this executor's
  // run-scoped MContext (reset each run) rather than the Compilation's
  // shared one, so run-time substitution terms and heap cells are
  // reclaimed between runs instead of accumulating in the artifact.
  mcalc::Machine M(runContext());
  mcalc::MachineResult MR = M.run(*T, Opts.MaxMachineSteps);
  R.Millis = millisSince(Start);
  fillFromMachine(R, MR);
  return R;
}

//===----------------------------------------------------------------------===//
// The bytecode-VM backend
//===----------------------------------------------------------------------===//

bytecode::Vm &Executor::vm() {
  if (!BVm)
    BVm = std::make_unique<bytecode::Vm>();
  return *BVm;
}

RunResult Executor::runBytecode(std::string_view Name) {
  auto Start = std::chrono::steady_clock::now();
  // The M lowering gates fragment membership exactly as for the machine
  // backend: a global outside the L fragment is Unsupported with the
  // same "not expressible in L" diagnostic, on every backend.
  Result<const mcalc::Term *> T = Comp->machineTerm(Name);
  if (!T) {
    RunResult R;
    R.Used = Backend::Bytecode;
    R.St = RunResult::Status::Unsupported;
    R.Error = T.error();
    R.Millis = millisSince(Start);
    return R;
  }
  Result<const bytecode::Module *> Mod = Comp->bytecodeModule(Name);
  if (!Mod) {
    // The M term exists but is outside the bytecode fragment: fall back
    // to the term-graph machine (never miscompile, never fail a program
    // the machine can run). Used reports the backend that actually ran.
    return runMachine(Name);
  }
  bytecode::VmResult VR = vm().run(**Mod, Opts.MaxVmSteps);
  RunResult R;
  R.Used = Backend::Bytecode;
  R.Millis = millisSince(Start);
  fillFromVm(R, VR);
  return R;
}

//===----------------------------------------------------------------------===//
// Run dispatch
//===----------------------------------------------------------------------===//

RunResult Executor::run(std::string_view Name) {
  return run(Name, Opts.DefaultBackend);
}

RunResult Executor::run(std::string_view Name, Backend B) {
  RunResult R;
  R.Used = B;
  if (Comp->formalTerm()) {
    R.St = RunResult::Status::Unsupported;
    R.Error = "formal compilations run via run() / run(Backend)";
    return R;
  }
  if (!Comp->ok()) {
    R.St = RunResult::Status::RuntimeError;
    R.Error = "compilation failed:\n" + Comp->diagText();
    return R;
  }
  switch (B) {
  case Backend::TreeInterp:
    return runTree(Name);
  case Backend::AbstractMachine:
    return runMachine(Name);
  case Backend::Bytecode:
    return runBytecode(Name);
  }
  return R;
}

RunResult Executor::run() { return run(Opts.DefaultBackend); }

RunResult Executor::run(Backend B) {
  if (!Comp->formalTerm()) {
    RunResult R;
    R.Used = B;
    R.St = RunResult::Status::Unsupported;
    R.Error = "surface compilations run via run(name)";
    return R;
  }
  return runFormal(B);
}

//===----------------------------------------------------------------------===//
// The formal pipeline
//===----------------------------------------------------------------------===//

RunResult Executor::runFormal(Backend B) {
  RunResult R;
  R.Used = B;
  if (!Comp->ok()) {
    R.St = RunResult::Status::RuntimeError;
    R.Error = "compilation failed:\n" + Comp->diagText();
    return R;
  }
  const lcalc::Expr *Term = Comp->formalTerm();

  if (B == Backend::TreeInterp) {
    // Figure 4: the type-directed small-step semantics.
    lcalc::Evaluator Ev(Comp->lctx());
    auto Start = std::chrono::steady_clock::now();
    lcalc::RunResult LR = Ev.runClosed(Term, Opts.MaxFormalSteps);
    R.Millis = millisSince(Start);
    R.Interp.EvalSteps = LR.Steps;
    switch (LR.Final) {
    case lcalc::StepStatus::Value:
      R.St = RunResult::Status::Ok;
      R.Display = LR.Last->str();
      if (const auto *Lit = lcalc::dyn_cast<lcalc::IntLitExpr>(LR.Last))
        R.IntValue = Lit->value();
      else if (const auto *DLit =
                   lcalc::dyn_cast<lcalc::DoubleLitExpr>(LR.Last))
        R.DoubleValue = DLit->value();
      else if (const auto *Con = lcalc::dyn_cast<lcalc::ConExpr>(LR.Last))
        // Only the unary Int box carries a scalar; other constructor
        // values (nullary or n-ary) have no IntValue.
        if (Con->args().size() == 1)
          if (const auto *Payload =
                  lcalc::dyn_cast<lcalc::IntLitExpr>(Con->args()[0]))
            R.IntValue = Payload->value();
      break;
    case lcalc::StepStatus::Bottom:
      R.St = RunResult::Status::Bottom;
      R.Error = "error (S_ERROR rule)";
      break;
    case lcalc::StepStatus::Stuck:
      R.St = RunResult::Status::RuntimeError;
      R.Error = "L evaluation stuck at " + LR.Last->str();
      break;
    case lcalc::StepStatus::Stepped:
      R.St = RunResult::Status::OutOfFuel;
      R.Error = "out of fuel";
      break;
    }
    return R;
  }

  // Figures 5-7: compile to M (memoized in the artifact) and run.
  Result<const mcalc::Term *> MTerm = Comp->formalMachineTerm();
  if (!MTerm) {
    R.St = RunResult::Status::Unsupported;
    R.Error = MTerm.error();
    return R;
  }

  if (B == Backend::Bytecode) {
    Result<const bytecode::Module *> Mod = Comp->formalBytecodeModule();
    if (Mod) {
      auto Start = std::chrono::steady_clock::now();
      bytecode::VmResult VR = vm().run(**Mod, Opts.MaxVmSteps);
      R.Millis = millisSince(Start);
      fillFromVm(R, VR);
      return R;
    }
    // Out of the bytecode fragment: fall back to the machine (below),
    // reporting the backend that actually ran.
    R.Used = Backend::AbstractMachine;
  }

  mcalc::Machine M(runContext());
  auto Start = std::chrono::steady_clock::now();
  mcalc::MachineResult MR = M.run(*MTerm, Opts.MaxMachineSteps);
  R.Millis = millisSince(Start);
  fillFromMachine(R, MR);
  return R;
}
