//===- Executor.cpp - Per-thread execution state for a Compilation --------===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "driver/Executor.h"
#include "support/Timing.h"

#include <chrono>

using namespace levity;
using namespace levity::driver;
using support::millisSince;

namespace {

/// Converts a finished machine run into the facade result shape.
void fillFromMachine(RunResult &R, const mcalc::MachineResult &MR) {
  R.Machine = MR.Stats;
  switch (MR.Status) {
  case mcalc::MachineOutcome::Value:
    R.St = RunResult::Status::Ok;
    R.Display = MR.Value->str();
    if (const auto *Lit = mcalc::dyn_cast<mcalc::LitTerm>(MR.Value))
      R.IntValue = Lit->value();
    else if (const auto *Con = mcalc::dyn_cast<mcalc::ConLitTerm>(MR.Value))
      R.IntValue = Con->value();
    else if (const auto *DLit = mcalc::dyn_cast<mcalc::DLitTerm>(MR.Value))
      R.DoubleValue = DLit->value();
    break;
  case mcalc::MachineOutcome::Bottom:
    R.St = RunResult::Status::Bottom;
    R.Error =
        MR.ErrorMessage.empty() ? "error (ERR rule)" : MR.ErrorMessage;
    break;
  case mcalc::MachineOutcome::Stuck:
    R.St = RunResult::Status::RuntimeError;
    R.Error = "machine stuck: " + MR.StuckReason;
    break;
  case mcalc::MachineOutcome::OutOfFuel:
    R.St = RunResult::Status::OutOfFuel;
    R.Error = "out of fuel";
    break;
  }
}

} // namespace

Executor::Executor(std::shared_ptr<const Compilation> Comp)
    : Comp(std::move(Comp)), Opts(this->Comp->options()) {}

Executor::Executor(Executor &&) noexcept = default;
Executor &Executor::operator=(Executor &&) noexcept = default;
Executor::~Executor() = default;

//===----------------------------------------------------------------------===//
// The tree-interpreter backend
//===----------------------------------------------------------------------===//

runtime::Interp &Executor::interp() {
  if (!TreeInterp) {
    TreeInterp = std::make_unique<runtime::Interp>(Comp->ctx());
    if (const surface::ElabOutput *Out = Comp->elabOutput())
      TreeInterp->loadProgram(Out->Program);
  }
  return *TreeInterp;
}

runtime::InterpResult Executor::evalName(std::string_view Name) {
  core::CoreContext &C = Comp->ctx();
  return evalExpr(C.var(C.sym(Name)));
}

runtime::InterpResult Executor::evalExpr(const core::Expr *E) {
  return interp().eval(E, Opts.MaxInterpSteps);
}

RunResult Executor::runTree(std::string_view Name) {
  RunResult R;
  R.Used = Backend::TreeInterp;
  // For store-hydrated compilations this elabOutput() call performs the
  // lazy front-end rebuild (once; machine-only consumers never pay it).
  // Only that rebuild can leave a runnable compilation without elab
  // output — failed and formal compilations were rejected in run() —
  // but keep the message honest should another path ever get here.
  if (!Comp->elabOutput()) {
    R.St = RunResult::Status::RuntimeError;
    R.Error = Comp->hydrated()
                  ? "front-end rebuild of the on-disk artifact failed:\n" +
                        Comp->diagText()
                  : "no compiled program to run";
    return R;
  }
  auto Start = std::chrono::steady_clock::now();
  runtime::InterpResult IR = evalName(Name);
  R.Millis = millisSince(Start);
  R.Interp = IR.Stats;

  switch (IR.Status) {
  case runtime::InterpStatus::Value: {
    R.St = RunResult::Status::Ok;
    R.Display = interp().show(IR.V);
    if (auto I = runtime::Interp::asIntHash(IR.V))
      R.IntValue = *I;
    else if (auto B = interp().asBoxedInt(IR.V))
      R.IntValue = *B;
    if (auto D = runtime::Interp::asDoubleHash(IR.V))
      R.DoubleValue = *D;
    break;
  }
  case runtime::InterpStatus::Bottom:
    R.St = RunResult::Status::Bottom;
    R.Error = IR.Message;
    break;
  case runtime::InterpStatus::RuntimeError:
    R.St = RunResult::Status::RuntimeError;
    R.Error = IR.Message;
    break;
  case runtime::InterpStatus::OutOfFuel:
    R.St = RunResult::Status::OutOfFuel;
    R.Error = "out of fuel";
    break;
  }
  return R;
}

//===----------------------------------------------------------------------===//
// The abstract-machine backend
//===----------------------------------------------------------------------===//

RunResult Executor::runMachine(std::string_view Name) {
  RunResult R;
  R.Used = Backend::AbstractMachine;
  auto Start = std::chrono::steady_clock::now();
  Result<const mcalc::Term *> T = Comp->machineTerm(Name);
  if (!T) {
    R.St = RunResult::Status::Unsupported;
    R.Error = T.error();
    R.Millis = millisSince(Start);
    return R;
  }
  // The machine itself is per-run state; the shared MContext only serves
  // internally-synchronized allocation and fresh names.
  mcalc::Machine M(Comp->machine().MC);
  mcalc::MachineResult MR = M.run(*T, Opts.MaxMachineSteps);
  R.Millis = millisSince(Start);
  fillFromMachine(R, MR);
  return R;
}

//===----------------------------------------------------------------------===//
// Run dispatch
//===----------------------------------------------------------------------===//

RunResult Executor::run(std::string_view Name) {
  return run(Name, Opts.DefaultBackend);
}

RunResult Executor::run(std::string_view Name, Backend B) {
  RunResult R;
  R.Used = B;
  if (Comp->formalTerm()) {
    R.St = RunResult::Status::Unsupported;
    R.Error = "formal compilations run via run() / run(Backend)";
    return R;
  }
  if (!Comp->ok()) {
    R.St = RunResult::Status::RuntimeError;
    R.Error = "compilation failed:\n" + Comp->diagText();
    return R;
  }
  return B == Backend::TreeInterp ? runTree(Name) : runMachine(Name);
}

RunResult Executor::run() { return run(Opts.DefaultBackend); }

RunResult Executor::run(Backend B) {
  if (!Comp->formalTerm()) {
    RunResult R;
    R.Used = B;
    R.St = RunResult::Status::Unsupported;
    R.Error = "surface compilations run via run(name)";
    return R;
  }
  return runFormal(B);
}

//===----------------------------------------------------------------------===//
// The formal pipeline
//===----------------------------------------------------------------------===//

RunResult Executor::runFormal(Backend B) {
  RunResult R;
  R.Used = B;
  if (!Comp->ok()) {
    R.St = RunResult::Status::RuntimeError;
    R.Error = "compilation failed:\n" + Comp->diagText();
    return R;
  }
  Compilation::MachinePipeline &MP = Comp->machine();
  const lcalc::Expr *Term = Comp->formalTerm();

  if (B == Backend::TreeInterp) {
    // Figure 4: the type-directed small-step semantics.
    lcalc::Evaluator Ev(Comp->lctx());
    auto Start = std::chrono::steady_clock::now();
    lcalc::RunResult LR = Ev.runClosed(Term, Opts.MaxFormalSteps);
    R.Millis = millisSince(Start);
    R.Interp.EvalSteps = LR.Steps;
    switch (LR.Final) {
    case lcalc::StepStatus::Value:
      R.St = RunResult::Status::Ok;
      R.Display = LR.Last->str();
      if (const auto *Lit = lcalc::dyn_cast<lcalc::IntLitExpr>(LR.Last))
        R.IntValue = Lit->value();
      else if (const auto *DLit =
                   lcalc::dyn_cast<lcalc::DoubleLitExpr>(LR.Last))
        R.DoubleValue = DLit->value();
      else if (const auto *Con = lcalc::dyn_cast<lcalc::ConExpr>(LR.Last))
        // Only the unary Int box carries a scalar; other constructor
        // values (nullary or n-ary) have no IntValue.
        if (Con->args().size() == 1)
          if (const auto *Payload =
                  lcalc::dyn_cast<lcalc::IntLitExpr>(Con->args()[0]))
            R.IntValue = Payload->value();
      break;
    case lcalc::StepStatus::Bottom:
      R.St = RunResult::Status::Bottom;
      R.Error = "error (S_ERROR rule)";
      break;
    case lcalc::StepStatus::Stuck:
      R.St = RunResult::Status::RuntimeError;
      R.Error = "L evaluation stuck at " + LR.Last->str();
      break;
    case lcalc::StepStatus::Stepped:
      R.St = RunResult::Status::OutOfFuel;
      R.Error = "out of fuel";
      break;
    }
    return R;
  }

  // Figures 5-7: compile to M (memoized in the artifact) and run.
  Result<const mcalc::Term *> MTerm = Comp->formalMachineTerm();
  if (!MTerm) {
    R.St = RunResult::Status::Unsupported;
    R.Error = MTerm.error();
    return R;
  }
  mcalc::Machine M(MP.MC);
  auto Start = std::chrono::steady_clock::now();
  mcalc::MachineResult MR = M.run(*MTerm, Opts.MaxMachineSteps);
  R.Millis = millisSince(Start);
  fillFromMachine(R, MR);
  return R;
}
