//===- LowerToL.cpp - Lowering core IR into the L calculus ----------------===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "driver/LowerToL.h"

using namespace levity;
using namespace levity::driver;

//===----------------------------------------------------------------------===//
// Reps, kinds, types
//===----------------------------------------------------------------------===//

Result<lcalc::RuntimeRep> CoreToL::lowerRep(const core::RepTy *R) {
  R = C.zonkRep(R);
  switch (R->tag()) {
  case core::RepTy::Tag::Var:
    return lcalc::RuntimeRep::var(reintern(R->varName()));
  case core::RepTy::Tag::Atom:
    switch (R->atom()) {
    case RepCtor::Lifted:
      return lcalc::RuntimeRep::pointer();
    case RepCtor::Int:
      return lcalc::RuntimeRep::integer();
    default:
      break;
    }
    return err("not expressible in L: representation " + R->str() +
               " (L has only P and I)");
  case core::RepTy::Tag::Meta:
    return err("not expressible in L: unsolved rep metavariable");
  case core::RepTy::Tag::Tuple:
  case core::RepTy::Tag::Sum:
    return err("not expressible in L: compound representation " + R->str());
  }
  return err("unknown rep");
}

Result<lcalc::LKind> CoreToL::lowerKind(const core::Kind *K) {
  K = C.zonkKind(K);
  if (!K->isTypeOf())
    return err("not expressible in L: kind " + K->str());
  Result<lcalc::RuntimeRep> R = lowerRep(K->rep());
  if (!R)
    return err(R.error());
  return lcalc::LKind(*R);
}

Result<const lcalc::Type *> CoreToL::lowerType(const core::Type *T) {
  T = C.zonkType(T);
  switch (T->tag()) {
  case core::Type::Tag::Con: {
    const core::TyCon *TC = core::cast<core::ConType>(T)->tycon();
    if (TC == C.intTyCon())
      return L.intTy();
    if (TC == C.intHashTyCon())
      return L.intHashTy();
    return err("not expressible in L: type constructor " +
               std::string(TC->name().str()));
  }
  case core::Type::Tag::Fun: {
    const auto *F = core::cast<core::FunType>(T);
    Result<const lcalc::Type *> P = lowerType(F->param());
    if (!P)
      return P;
    Result<const lcalc::Type *> R = lowerType(F->result());
    if (!R)
      return R;
    return L.arrowTy(*P, *R);
  }
  case core::Type::Tag::Var:
    return L.varTy(reintern(core::cast<core::VarType>(T)->name()));
  case core::Type::Tag::ForAll: {
    const auto *F = core::cast<core::ForAllType>(T);
    const core::Kind *VK = C.zonkKind(F->varKind());
    if (VK->isRep()) {
      Result<const lcalc::Type *> Body = lowerType(F->body());
      if (!Body)
        return Body;
      return L.forAllRepTy(reintern(F->var()), *Body);
    }
    Result<lcalc::LKind> K = lowerKind(VK);
    if (!K)
      return err(K.error());
    Result<const lcalc::Type *> Body = lowerType(F->body());
    if (!Body)
      return Body;
    return L.forAllTy(reintern(F->var()), *K, *Body);
  }
  case core::Type::Tag::App:
    return err("not expressible in L: type application " + T->str());
  case core::Type::Tag::Meta:
    return err("not expressible in L: unsolved type metavariable");
  case core::Type::Tag::UnboxedTuple:
    return err("not expressible in L: unboxed tuple type " + T->str());
  case core::Type::Tag::RepLift:
    return err("not expressible in L: promoted representation " + T->str());
  }
  return err("unknown type");
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

Result<const lcalc::Expr *> CoreToL::lowerExpr(const core::Expr *E) {
  switch (E->tag()) {
  case core::Expr::Tag::Var:
    return L.var(reintern(core::cast<core::VarExpr>(E)->name()));

  case core::Expr::Tag::Lit: {
    const core::Literal &Lit = core::cast<core::LitExpr>(E)->lit();
    if (Lit.tag() != core::Literal::Tag::IntHash)
      return err("not expressible in L: literal " + Lit.str());
    return L.intLit(Lit.intValue());
  }

  case core::Expr::Tag::App: {
    const auto *A = core::cast<core::AppExpr>(E);
    Result<const lcalc::Expr *> Fn = lowerExpr(A->fn());
    if (!Fn)
      return Fn;
    Result<const lcalc::Expr *> Arg = lowerExpr(A->arg());
    if (!Arg)
      return Arg;
    // L re-derives the evaluation order from the argument type's kind;
    // the strictness bit needs no separate translation.
    return L.app(*Fn, *Arg);
  }

  case core::Expr::Tag::TyApp: {
    const auto *A = core::cast<core::TyAppExpr>(E);
    Result<const lcalc::Expr *> Fn = lowerExpr(A->fn());
    if (!Fn)
      return Fn;
    const core::Type *Arg = C.zonkType(A->tyArg());
    // Rep-kinded type arguments are L rep applications (e ρ); all other
    // instantiations are ordinary type applications (e τ).
    if (const core::RepTy *R = core::typeAsRep(C, Arg)) {
      Result<lcalc::RuntimeRep> LR = lowerRep(R);
      if (!LR)
        return err(LR.error());
      return L.repApp(*Fn, *LR);
    }
    Result<const lcalc::Type *> Ty = lowerType(Arg);
    if (!Ty)
      return err(Ty.error());
    return L.tyApp(*Fn, *Ty);
  }

  case core::Expr::Tag::Lam: {
    const auto *Lam = core::cast<core::LamExpr>(E);
    Result<const lcalc::Type *> Ty = lowerType(Lam->varType());
    if (!Ty)
      return err(Ty.error());
    Result<const lcalc::Expr *> Body = lowerExpr(Lam->body());
    if (!Body)
      return Body;
    return L.lam(reintern(Lam->var()), *Ty, *Body);
  }

  case core::Expr::Tag::TyLam: {
    const auto *Lam = core::cast<core::TyLamExpr>(E);
    const core::Kind *VK = C.zonkKind(Lam->varKind());
    Result<const lcalc::Expr *> Body = lowerExpr(Lam->body());
    if (!Body)
      return Body;
    if (VK->isRep())
      return L.repLam(reintern(Lam->var()), *Body);
    Result<lcalc::LKind> K = lowerKind(VK);
    if (!K)
      return err(K.error());
    return L.tyLam(reintern(Lam->var()), *K, *Body);
  }

  case core::Expr::Tag::Let: {
    // let x:τ = rhs in body  ⟶  (λx:τ. body) rhs — E_APP's kind-directed
    // evaluation order coincides with the core strictness bit, which was
    // itself derived from τ's kind.
    const auto *Let = core::cast<core::LetExpr>(E);
    Result<const lcalc::Type *> Ty = lowerType(Let->varType());
    if (!Ty)
      return err(Ty.error());
    Result<const lcalc::Expr *> Rhs = lowerExpr(Let->rhs());
    if (!Rhs)
      return Rhs;
    Result<const lcalc::Expr *> Body = lowerExpr(Let->body());
    if (!Body)
      return Body;
    return L.app(L.lam(reintern(Let->var()), *Ty, *Body), *Rhs);
  }

  case core::Expr::Tag::LetRec:
    return err("not expressible in L: recursive let");

  case core::Expr::Tag::Case: {
    // Only the paper's one-armed unboxing case survives the trip:
    //   case e of I#[x] -> body.
    const auto *Case = core::cast<core::CaseExpr>(E);
    if (Case->alts().size() != 1)
      return err("not expressible in L: multi-alternative case");
    const core::Alt &A = Case->alts()[0];
    if (A.Kind != core::Alt::AltKind::ConPat || A.Con != C.iHashCon() ||
        A.Binders.size() != 1)
      return err("not expressible in L: case alternative is not I#[x]");
    Result<const lcalc::Expr *> Scrut = lowerExpr(Case->scrut());
    if (!Scrut)
      return Scrut;
    Result<const lcalc::Expr *> Body = lowerExpr(A.Rhs);
    if (!Body)
      return Body;
    return L.caseOf(*Scrut, reintern(A.Binders[0]), *Body);
  }

  case core::Expr::Tag::Con: {
    const auto *Con = core::cast<core::ConExpr>(E);
    if (Con->dataCon() != C.iHashCon() || Con->args().size() != 1)
      return err("not expressible in L: constructor " +
                 std::string(Con->dataCon()->name().str()));
    Result<const lcalc::Expr *> Payload = lowerExpr(Con->args()[0]);
    if (!Payload)
      return Payload;
    return L.con(*Payload);
  }

  case core::Expr::Tag::Prim: {
    const auto *P = core::cast<core::PrimOpExpr>(E);
    lcalc::LPrim Op;
    switch (P->op()) {
    case core::PrimOp::AddI:
      Op = lcalc::LPrim::Add;
      break;
    case core::PrimOp::SubI:
      Op = lcalc::LPrim::Sub;
      break;
    case core::PrimOp::MulI:
      Op = lcalc::LPrim::Mul;
      break;
    default:
      return err("not expressible in L: primop " +
                 std::string(core::primOpName(P->op())));
    }
    Result<const lcalc::Expr *> Lhs = lowerExpr(P->args()[0]);
    if (!Lhs)
      return Lhs;
    Result<const lcalc::Expr *> Rhs = lowerExpr(P->args()[1]);
    if (!Rhs)
      return Rhs;
    return L.prim(Op, *Lhs, *Rhs);
  }

  case core::Expr::Tag::UnboxedTuple:
    return err("not expressible in L: unboxed tuple expression");

  case core::Expr::Tag::Error: {
    // error @ρ @τ msg ⟶ error ρ τ I#[0]; the message is a String, which
    // L lacks, so it is replaced by a unit-like boxed zero.
    const auto *Err = core::cast<core::ErrorExpr>(E);
    Result<lcalc::RuntimeRep> R = lowerRep(Err->atRep());
    if (!R)
      return err(R.error());
    Result<const lcalc::Type *> Ty = lowerType(Err->atType());
    if (!Ty)
      return err(Ty.error());
    return L.app(L.tyApp(L.repApp(L.error(), *R), *Ty),
                 L.con(L.intLit(0)));
  }
  }
  return err("unknown expression");
}

//===----------------------------------------------------------------------===//
// Globals
//===----------------------------------------------------------------------===//

void CoreToL::globalRefs(const core::CoreProgram &P, const core::Expr *E,
                         std::vector<Symbol> &Bound,
                         std::vector<Symbol> &Out) {
  switch (E->tag()) {
  case core::Expr::Tag::Var: {
    Symbol Name = core::cast<core::VarExpr>(E)->name();
    for (Symbol B : Bound)
      if (B == Name)
        return;
    if (P.find(Name))
      Out.push_back(Name);
    return;
  }
  case core::Expr::Tag::Lit:
    return;
  case core::Expr::Tag::App: {
    const auto *A = core::cast<core::AppExpr>(E);
    globalRefs(P, A->fn(), Bound, Out);
    globalRefs(P, A->arg(), Bound, Out);
    return;
  }
  case core::Expr::Tag::TyApp:
    globalRefs(P, core::cast<core::TyAppExpr>(E)->fn(), Bound, Out);
    return;
  case core::Expr::Tag::Lam: {
    const auto *L = core::cast<core::LamExpr>(E);
    Bound.push_back(L->var());
    globalRefs(P, L->body(), Bound, Out);
    Bound.pop_back();
    return;
  }
  case core::Expr::Tag::TyLam:
    globalRefs(P, core::cast<core::TyLamExpr>(E)->body(), Bound, Out);
    return;
  case core::Expr::Tag::Let: {
    const auto *L = core::cast<core::LetExpr>(E);
    globalRefs(P, L->rhs(), Bound, Out);
    Bound.push_back(L->var());
    globalRefs(P, L->body(), Bound, Out);
    Bound.pop_back();
    return;
  }
  case core::Expr::Tag::LetRec: {
    const auto *L = core::cast<core::LetRecExpr>(E);
    size_t Mark = Bound.size();
    for (const core::RecBinding &B : L->bindings())
      Bound.push_back(B.Var);
    for (const core::RecBinding &B : L->bindings())
      globalRefs(P, B.Rhs, Bound, Out);
    globalRefs(P, L->body(), Bound, Out);
    Bound.resize(Mark);
    return;
  }
  case core::Expr::Tag::Case: {
    const auto *Case = core::cast<core::CaseExpr>(E);
    globalRefs(P, Case->scrut(), Bound, Out);
    for (const core::Alt &A : Case->alts()) {
      size_t Mark = Bound.size();
      for (Symbol B : A.Binders)
        Bound.push_back(B);
      globalRefs(P, A.Rhs, Bound, Out);
      Bound.resize(Mark);
    }
    return;
  }
  case core::Expr::Tag::Con: {
    for (const core::Expr *Arg : core::cast<core::ConExpr>(E)->args())
      globalRefs(P, Arg, Bound, Out);
    return;
  }
  case core::Expr::Tag::Prim: {
    for (const core::Expr *Arg : core::cast<core::PrimOpExpr>(E)->args())
      globalRefs(P, Arg, Bound, Out);
    return;
  }
  case core::Expr::Tag::UnboxedTuple: {
    for (const core::Expr *El :
         core::cast<core::UnboxedTupleExpr>(E)->elems())
      globalRefs(P, El, Bound, Out);
    return;
  }
  case core::Expr::Tag::Error:
    globalRefs(P, core::cast<core::ErrorExpr>(E)->message(), Bound, Out);
    return;
  }
}

Result<bool> CoreToL::orderDeps(
    const core::CoreProgram &P, Symbol Name,
    std::unordered_set<Symbol, SymbolHash> &Visiting,
    std::unordered_set<Symbol, SymbolHash> &Done,
    std::vector<Symbol> &Order) {
  if (Done.count(Name))
    return true;
  if (Visiting.count(Name))
    return err("not expressible in L: '" + std::string(Name.str()) +
               "' is recursive");
  Visiting.insert(Name);

  const core::TopBinding *B = P.find(Name);
  assert(B && "ordering an unbound global");
  std::vector<Symbol> Bound, Refs;
  globalRefs(P, B->Rhs, Bound, Refs);
  for (Symbol Ref : Refs) {
    Result<bool> R = orderDeps(P, Ref, Visiting, Done, Order);
    if (!R)
      return R;
  }

  Visiting.erase(Name);
  Done.insert(Name);
  Order.push_back(Name);
  return true;
}

Result<const lcalc::Expr *> CoreToL::lowerGlobal(const core::CoreProgram &P,
                                                 Symbol Name) {
  const core::TopBinding *Target = P.find(Name);
  if (!Target)
    return err("no top-level binding named '" + std::string(Name.str()) +
               "'");

  std::unordered_set<Symbol, SymbolHash> Visiting, Done;
  std::vector<Symbol> Order;
  Result<bool> Ordered = orderDeps(P, Name, Visiting, Done, Order);
  if (!Ordered)
    return err(Ordered.error());

  // Order holds dependencies first and Name last. The target's own lowered
  // right-hand side is the innermost body; every dependency wraps it in a
  // lambda-binding whose evaluation order L derives from the kind.
  Result<const lcalc::Expr *> Term = lowerExpr(Target->Rhs);
  if (!Term)
    return Term;
  const lcalc::Expr *Body = *Term;
  for (size_t I = Order.size() - 1; I-- > 0;) {
    const core::TopBinding *Dep = P.find(Order[I]);
    Result<const lcalc::Type *> Ty = lowerType(Dep->Ty);
    if (!Ty)
      return err(Ty.error());
    Result<const lcalc::Expr *> Rhs = lowerExpr(Dep->Rhs);
    if (!Rhs)
      return Rhs;
    Body = L.app(L.lam(reintern(Dep->Name), *Ty, Body), *Rhs);
  }
  return Body;
}
