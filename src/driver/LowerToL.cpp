//===- LowerToL.cpp - Lowering core IR into the L calculus ----------------===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "driver/LowerToL.h"

using namespace levity;
using namespace levity::driver;

//===----------------------------------------------------------------------===//
// Reps, kinds, types
//===----------------------------------------------------------------------===//

Result<lcalc::RuntimeRep> CoreToL::lowerRep(const core::RepTy *R) {
  R = C.zonkRep(R);
  switch (R->tag()) {
  case core::RepTy::Tag::Var:
    return lcalc::RuntimeRep::var(reintern(R->varName()));
  case core::RepTy::Tag::Atom:
    switch (R->atom()) {
    case RepCtor::Lifted:
      return lcalc::RuntimeRep::pointer();
    case RepCtor::Int:
      return lcalc::RuntimeRep::integer();
    case RepCtor::Double:
      return lcalc::RuntimeRep::dbl();
    default:
      break;
    }
    return err("not expressible in L: representation " + R->str() +
               " (L has only P, I, and D)");
  case core::RepTy::Tag::Meta:
    return err("not expressible in L: unsolved rep metavariable");
  case core::RepTy::Tag::Tuple:
  case core::RepTy::Tag::Sum:
    return err("not expressible in L: compound representation " + R->str());
  }
  return err("unknown rep");
}

Result<lcalc::LKind> CoreToL::lowerKind(const core::Kind *K) {
  K = C.zonkKind(K);
  if (!K->isTypeOf())
    return err("not expressible in L: kind " + K->str());
  Result<lcalc::RuntimeRep> R = lowerRep(K->rep());
  if (!R)
    return err(R.error());
  return lcalc::LKind(*R);
}

Result<const lcalc::Type *> CoreToL::lowerType(const core::Type *T) {
  T = C.zonkType(T);
  switch (T->tag()) {
  case core::Type::Tag::Con: {
    const core::TyCon *TC = core::cast<core::ConType>(T)->tycon();
    if (TC == C.intTyCon())
      return L.intTy();
    if (TC == C.intHashTyCon())
      return L.intHashTy();
    if (TC == C.doubleHashTyCon())
      return L.doubleHashTy();
    return err("not expressible in L: type constructor " +
               std::string(TC->name().str()));
  }
  case core::Type::Tag::Fun: {
    const auto *F = core::cast<core::FunType>(T);
    Result<const lcalc::Type *> P = lowerType(F->param());
    if (!P)
      return P;
    Result<const lcalc::Type *> R = lowerType(F->result());
    if (!R)
      return R;
    return L.arrowTy(*P, *R);
  }
  case core::Type::Tag::Var:
    return L.varTy(reintern(core::cast<core::VarType>(T)->name()));
  case core::Type::Tag::ForAll: {
    const auto *F = core::cast<core::ForAllType>(T);
    const core::Kind *VK = C.zonkKind(F->varKind());
    if (VK->isRep()) {
      Result<const lcalc::Type *> Body = lowerType(F->body());
      if (!Body)
        return Body;
      return L.forAllRepTy(reintern(F->var()), *Body);
    }
    Result<lcalc::LKind> K = lowerKind(VK);
    if (!K)
      return err(K.error());
    Result<const lcalc::Type *> Body = lowerType(F->body());
    if (!Body)
      return Body;
    return L.forAllTy(reintern(F->var()), *K, *Body);
  }
  case core::Type::Tag::App:
    return err("not expressible in L: type application " + T->str());
  case core::Type::Tag::Meta:
    return err("not expressible in L: unsolved type metavariable");
  case core::Type::Tag::UnboxedTuple:
    return err("not expressible in L: unboxed tuple type " + T->str());
  case core::Type::Tag::RepLift:
    return err("not expressible in L: promoted representation " + T->str());
  }
  return err("unknown type");
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

Result<const lcalc::Expr *> CoreToL::lowerExpr(const core::Expr *E) {
  switch (E->tag()) {
  case core::Expr::Tag::Var:
    return L.var(reintern(core::cast<core::VarExpr>(E)->name()));

  case core::Expr::Tag::Lit: {
    const core::Literal &Lit = core::cast<core::LitExpr>(E)->lit();
    if (Lit.tag() == core::Literal::Tag::IntHash)
      return L.intLit(Lit.intValue());
    if (Lit.tag() == core::Literal::Tag::DoubleHash)
      return L.doubleLit(Lit.doubleValue());
    return err("not expressible in L: literal " + Lit.str());
  }

  case core::Expr::Tag::App: {
    const auto *A = core::cast<core::AppExpr>(E);

    // Elaboration wraps `error "msg"` as (λm:String. error @ρ @τ m) "msg".
    // L has no strings, but the redex is administrative: record the
    // message under the binder and lower the body directly, so the
    // error node keeps its diagnostic.
    if (const auto *Lam = core::dyn_cast<core::LamExpr>(A->fn())) {
      const core::Type *BinderTy = C.zonkType(Lam->varType());
      const auto *Con = core::dyn_cast<core::ConType>(BinderTy);
      if (Con && Con->tycon() == C.stringTyCon()) {
        const auto *Lit = core::dyn_cast<core::LitExpr>(A->arg());
        if (!Lit || Lit->lit().tag() != core::Literal::Tag::String)
          return err("not expressible in L: string-typed binding");
        auto Saved = StringEnv.find(Lam->var());
        std::optional<Symbol> Shadowed;
        if (Saved != StringEnv.end())
          Shadowed = Saved->second;
        StringEnv[Lam->var()] = Lit->lit().stringValue();
        Result<const lcalc::Expr *> Body = lowerExpr(Lam->body());
        if (Shadowed)
          StringEnv[Lam->var()] = *Shadowed;
        else
          StringEnv.erase(Lam->var());
        return Body;
      }
    }

    Result<const lcalc::Expr *> Fn = lowerExpr(A->fn());
    if (!Fn)
      return Fn;
    Result<const lcalc::Expr *> Arg = lowerExpr(A->arg());
    if (!Arg)
      return Arg;
    // L re-derives the evaluation order from the argument type's kind;
    // the strictness bit needs no separate translation.
    return L.app(*Fn, *Arg);
  }

  case core::Expr::Tag::TyApp: {
    const auto *A = core::cast<core::TyAppExpr>(E);
    Result<const lcalc::Expr *> Fn = lowerExpr(A->fn());
    if (!Fn)
      return Fn;
    const core::Type *Arg = C.zonkType(A->tyArg());
    // Rep-kinded type arguments are L rep applications (e ρ); all other
    // instantiations are ordinary type applications (e τ).
    if (const core::RepTy *R = core::typeAsRep(C, Arg)) {
      Result<lcalc::RuntimeRep> LR = lowerRep(R);
      if (!LR)
        return err(LR.error());
      return L.repApp(*Fn, *LR);
    }
    Result<const lcalc::Type *> Ty = lowerType(Arg);
    if (!Ty)
      return err(Ty.error());
    return L.tyApp(*Fn, *Ty);
  }

  case core::Expr::Tag::Lam: {
    const auto *Lam = core::cast<core::LamExpr>(E);
    Result<const lcalc::Type *> Ty = lowerType(Lam->varType());
    if (!Ty)
      return err(Ty.error());
    Result<const lcalc::Expr *> Body = lowerExpr(Lam->body());
    if (!Body)
      return Body;
    return L.lam(reintern(Lam->var()), *Ty, *Body);
  }

  case core::Expr::Tag::TyLam: {
    const auto *Lam = core::cast<core::TyLamExpr>(E);
    const core::Kind *VK = C.zonkKind(Lam->varKind());
    Result<const lcalc::Expr *> Body = lowerExpr(Lam->body());
    if (!Body)
      return Body;
    if (VK->isRep())
      return L.repLam(reintern(Lam->var()), *Body);
    Result<lcalc::LKind> K = lowerKind(VK);
    if (!K)
      return err(K.error());
    return L.tyLam(reintern(Lam->var()), *K, *Body);
  }

  case core::Expr::Tag::Let: {
    // let x:τ = rhs in body  ⟶  (λx:τ. body) rhs — E_APP's kind-directed
    // evaluation order coincides with the core strictness bit, which was
    // itself derived from τ's kind.
    const auto *Let = core::cast<core::LetExpr>(E);
    Result<const lcalc::Type *> Ty = lowerType(Let->varType());
    if (!Ty)
      return err(Ty.error());
    Result<const lcalc::Expr *> Rhs = lowerExpr(Let->rhs());
    if (!Rhs)
      return Rhs;
    Result<const lcalc::Expr *> Body = lowerExpr(Let->body());
    if (!Body)
      return Body;
    return L.app(L.lam(reintern(Let->var()), *Ty, *Body), *Rhs);
  }

  case core::Expr::Tag::LetRec: {
    // A single recursive binding lowers through fix:
    //   letrec x:τ = rhs in body ⟶ (λx:τ. body) (fix x:τ. rhs).
    // Mutual recursion stays outside the fragment.
    const auto *LR = core::cast<core::LetRecExpr>(E);
    if (LR->bindings().size() != 1)
      return err("not expressible in L: mutually recursive let");
    const core::RecBinding &B = LR->bindings()[0];
    Result<const lcalc::Type *> Ty = lowerType(B.VarTy);
    if (!Ty)
      return err(Ty.error());
    Result<const lcalc::Expr *> Rhs = lowerExpr(B.Rhs);
    if (!Rhs)
      return Rhs;
    Result<const lcalc::Expr *> Body = lowerExpr(LR->body());
    if (!Body)
      return Body;
    Symbol X = reintern(B.Var);
    return L.app(L.lam(X, *Ty, *Body), L.fix(X, *Ty, *Rhs));
  }

  case core::Expr::Tag::Case: {
    const auto *Case = core::cast<core::CaseExpr>(E);

    // The paper's one-armed unboxing case:
    //   case e of I#[x] -> body.
    if (Case->alts().size() == 1 &&
        Case->alts()[0].Kind == core::Alt::AltKind::ConPat) {
      const core::Alt &A = Case->alts()[0];
      if (A.Con != C.iHashCon() || A.Binders.size() != 1)
        return err("not expressible in L: case alternative is not I#[x]");
      Result<const lcalc::Expr *> Scrut = lowerExpr(Case->scrut());
      if (!Scrut)
        return Scrut;
      Result<const lcalc::Expr *> Body = lowerExpr(A.Rhs);
      if (!Body)
        return Body;
      return L.caseOf(*Scrut, reintern(A.Binders[0]), *Body);
    }

    // Literal cases over an unboxed scrutinee lower to an if0 chain of
    // inequality tests:
    //   case e of { l1 -> r1; …; _ -> d }
    //     ⟶ (λs. if0 (s /=# l1) then r1 else … else d) e
    // where the application is strict (the scrutinee is Int#/Double#).
    bool AllLitOrDefault = !Case->alts().empty();
    for (const core::Alt &A : Case->alts())
      if (A.Kind != core::Alt::AltKind::LitPat &&
          A.Kind != core::Alt::AltKind::Default)
        AllLitOrDefault = false;
    if (!AllLitOrDefault) {
      if (Case->alts().size() != 1)
        return err("not expressible in L: multi-alternative constructor "
                   "case");
      return err("not expressible in L: case alternative is not I#[x]");
    }

    const core::Expr *DefaultRhs = nullptr;
    std::vector<const core::Alt *> Lits;
    for (const core::Alt &A : Case->alts()) {
      if (A.Kind == core::Alt::AltKind::Default) {
        if (!DefaultRhs)
          DefaultRhs = A.Rhs;
      } else {
        Lits.push_back(&A);
      }
    }
    if (!DefaultRhs)
      return err("not expressible in L: literal case without a default "
                 "alternative");
    if (Lits.empty())
      return err("not expressible in L: default-only case (the scrutinee "
                 "sort is not determined by the alternatives)");

    bool ScrutIsDouble =
        !Lits.empty() &&
        Lits[0]->Lit.tag() == core::Literal::Tag::DoubleHash;
    for (const core::Alt *A : Lits) {
      core::Literal::Tag Tag = A->Lit.tag();
      if (Tag == core::Literal::Tag::String ||
          (Tag == core::Literal::Tag::DoubleHash) != ScrutIsDouble)
        return err("not expressible in L: literal case over " +
                   A->Lit.str());
    }

    Result<const lcalc::Expr *> Scrut = lowerExpr(Case->scrut());
    if (!Scrut)
      return Scrut;
    Result<const lcalc::Expr *> Chain = lowerExpr(DefaultRhs);
    if (!Chain)
      return Chain;
    Symbol S = L.symbols().fresh("scrut");
    const lcalc::Expr *Acc = *Chain;
    for (size_t I = Lits.size(); I-- > 0;) {
      const core::Alt *A = Lits[I];
      Result<const lcalc::Expr *> Rhs = lowerExpr(A->Rhs);
      if (!Rhs)
        return Rhs;
      const lcalc::Expr *Test =
          ScrutIsDouble
              ? L.prim(lcalc::LPrim::DNe, L.var(S),
                       L.doubleLit(A->Lit.doubleValue()))
              : L.prim(lcalc::LPrim::Ne, L.var(S),
                       L.intLit(A->Lit.intValue()));
      Acc = L.if0(Test, *Rhs, Acc);
    }
    const lcalc::Type *ScrutTy =
        ScrutIsDouble ? L.doubleHashTy() : L.intHashTy();
    return L.app(L.lam(S, ScrutTy, Acc), *Scrut);
  }

  case core::Expr::Tag::Con: {
    const auto *Con = core::cast<core::ConExpr>(E);
    if (Con->dataCon() != C.iHashCon() || Con->args().size() != 1)
      return err("not expressible in L: constructor " +
                 std::string(Con->dataCon()->name().str()));
    Result<const lcalc::Expr *> Payload = lowerExpr(Con->args()[0]);
    if (!Payload)
      return Payload;
    return L.con(*Payload);
  }

  case core::Expr::Tag::Prim: {
    const auto *P = core::cast<core::PrimOpExpr>(E);

    // Unary negation lowers through subtraction. The double case
    // subtracts from *negative* zero: IEEE gives -0.0 - x == -x exactly
    // (including -0.0 - 0.0 == -0.0), whereas 0.0 - 0.0 == +0.0 would
    // silently diverge from the tree interpreter on signed zeros.
    if (P->op() == core::PrimOp::NegI || P->op() == core::PrimOp::NegD) {
      Result<const lcalc::Expr *> Arg = lowerExpr(P->args()[0]);
      if (!Arg)
        return Arg;
      if (P->op() == core::PrimOp::NegI)
        return L.prim(lcalc::LPrim::Sub, L.intLit(0), *Arg);
      return L.prim(lcalc::LPrim::DSub, L.doubleLit(-0.0), *Arg);
    }

    lcalc::LPrim Op;
    switch (P->op()) {
    case core::PrimOp::AddI:
      Op = lcalc::LPrim::Add;
      break;
    case core::PrimOp::SubI:
      Op = lcalc::LPrim::Sub;
      break;
    case core::PrimOp::MulI:
      Op = lcalc::LPrim::Mul;
      break;
    case core::PrimOp::QuotI:
      Op = lcalc::LPrim::Quot;
      break;
    case core::PrimOp::RemI:
      Op = lcalc::LPrim::Rem;
      break;
    case core::PrimOp::LtI:
      Op = lcalc::LPrim::Lt;
      break;
    case core::PrimOp::LeI:
      Op = lcalc::LPrim::Le;
      break;
    case core::PrimOp::GtI:
      Op = lcalc::LPrim::Gt;
      break;
    case core::PrimOp::GeI:
      Op = lcalc::LPrim::Ge;
      break;
    case core::PrimOp::EqI:
      Op = lcalc::LPrim::Eq;
      break;
    case core::PrimOp::NeI:
      Op = lcalc::LPrim::Ne;
      break;
    case core::PrimOp::AddD:
      Op = lcalc::LPrim::DAdd;
      break;
    case core::PrimOp::SubD:
      Op = lcalc::LPrim::DSub;
      break;
    case core::PrimOp::MulD:
      Op = lcalc::LPrim::DMul;
      break;
    case core::PrimOp::DivD:
      Op = lcalc::LPrim::DDiv;
      break;
    case core::PrimOp::LtD:
      Op = lcalc::LPrim::DLt;
      break;
    case core::PrimOp::EqD:
      Op = lcalc::LPrim::DEq;
      break;
    default:
      // Int2Double / Double2Int / IsTrue have no L image yet.
      return err("not expressible in L: primop " +
                 std::string(core::primOpName(P->op())));
    }
    Result<const lcalc::Expr *> Lhs = lowerExpr(P->args()[0]);
    if (!Lhs)
      return Lhs;
    Result<const lcalc::Expr *> Rhs = lowerExpr(P->args()[1]);
    if (!Rhs)
      return Rhs;
    return L.prim(Op, *Lhs, *Rhs);
  }

  case core::Expr::Tag::UnboxedTuple:
    return err("not expressible in L: unboxed tuple expression");

  case core::Expr::Tag::Error: {
    // error @ρ @τ msg ⟶ error ρ τ I#[0]. The term-level argument is a
    // unit-like boxed zero (L has no string values), but the message
    // itself rides the error node so the machine backend can surface it
    // through MachineResult/RunResult on ⊥.
    const auto *Err = core::cast<core::ErrorExpr>(E);
    Result<lcalc::RuntimeRep> R = lowerRep(Err->atRep());
    if (!R)
      return err(R.error());
    Result<const lcalc::Type *> Ty = lowerType(Err->atType());
    if (!Ty)
      return err(Ty.error());
    Symbol Msg;
    if (const auto *Lit = core::dyn_cast<core::LitExpr>(Err->message())) {
      if (Lit->lit().tag() == core::Literal::Tag::String)
        Msg = reintern(Lit->lit().stringValue());
    } else if (const auto *Var =
                   core::dyn_cast<core::VarExpr>(Err->message())) {
      auto It = StringEnv.find(Var->name());
      if (It != StringEnv.end())
        Msg = reintern(It->second);
    }
    return L.app(
        L.tyApp(L.repApp(Msg.valid() ? L.error(Msg) : L.error(), *R), *Ty),
        L.con(L.intLit(0)));
  }
  }
  return err("unknown expression");
}

//===----------------------------------------------------------------------===//
// Globals
//===----------------------------------------------------------------------===//

void CoreToL::globalRefs(const core::CoreProgram &P, const core::Expr *E,
                         std::vector<Symbol> &Bound,
                         std::vector<Symbol> &Out) {
  switch (E->tag()) {
  case core::Expr::Tag::Var: {
    Symbol Name = core::cast<core::VarExpr>(E)->name();
    for (Symbol B : Bound)
      if (B == Name)
        return;
    if (P.find(Name))
      Out.push_back(Name);
    return;
  }
  case core::Expr::Tag::Lit:
    return;
  case core::Expr::Tag::App: {
    const auto *A = core::cast<core::AppExpr>(E);
    globalRefs(P, A->fn(), Bound, Out);
    globalRefs(P, A->arg(), Bound, Out);
    return;
  }
  case core::Expr::Tag::TyApp:
    globalRefs(P, core::cast<core::TyAppExpr>(E)->fn(), Bound, Out);
    return;
  case core::Expr::Tag::Lam: {
    const auto *L = core::cast<core::LamExpr>(E);
    Bound.push_back(L->var());
    globalRefs(P, L->body(), Bound, Out);
    Bound.pop_back();
    return;
  }
  case core::Expr::Tag::TyLam:
    globalRefs(P, core::cast<core::TyLamExpr>(E)->body(), Bound, Out);
    return;
  case core::Expr::Tag::Let: {
    const auto *L = core::cast<core::LetExpr>(E);
    globalRefs(P, L->rhs(), Bound, Out);
    Bound.push_back(L->var());
    globalRefs(P, L->body(), Bound, Out);
    Bound.pop_back();
    return;
  }
  case core::Expr::Tag::LetRec: {
    const auto *L = core::cast<core::LetRecExpr>(E);
    size_t Mark = Bound.size();
    for (const core::RecBinding &B : L->bindings())
      Bound.push_back(B.Var);
    for (const core::RecBinding &B : L->bindings())
      globalRefs(P, B.Rhs, Bound, Out);
    globalRefs(P, L->body(), Bound, Out);
    Bound.resize(Mark);
    return;
  }
  case core::Expr::Tag::Case: {
    const auto *Case = core::cast<core::CaseExpr>(E);
    globalRefs(P, Case->scrut(), Bound, Out);
    for (const core::Alt &A : Case->alts()) {
      size_t Mark = Bound.size();
      for (Symbol B : A.Binders)
        Bound.push_back(B);
      globalRefs(P, A.Rhs, Bound, Out);
      Bound.resize(Mark);
    }
    return;
  }
  case core::Expr::Tag::Con: {
    for (const core::Expr *Arg : core::cast<core::ConExpr>(E)->args())
      globalRefs(P, Arg, Bound, Out);
    return;
  }
  case core::Expr::Tag::Prim: {
    for (const core::Expr *Arg : core::cast<core::PrimOpExpr>(E)->args())
      globalRefs(P, Arg, Bound, Out);
    return;
  }
  case core::Expr::Tag::UnboxedTuple: {
    for (const core::Expr *El :
         core::cast<core::UnboxedTupleExpr>(E)->elems())
      globalRefs(P, El, Bound, Out);
    return;
  }
  case core::Expr::Tag::Error:
    globalRefs(P, core::cast<core::ErrorExpr>(E)->message(), Bound, Out);
    return;
  }
}

Result<bool> CoreToL::orderDeps(
    const core::CoreProgram &P, Symbol Name,
    std::unordered_set<Symbol, SymbolHash> &Visiting,
    std::unordered_set<Symbol, SymbolHash> &Done,
    std::vector<Symbol> &Order,
    std::unordered_set<Symbol, SymbolHash> &SelfRec) {
  if (Done.count(Name))
    return true;
  if (Visiting.count(Name))
    return err("not expressible in L: '" + std::string(Name.str()) +
               "' is mutually recursive");
  Visiting.insert(Name);

  const core::TopBinding *B = P.find(Name);
  assert(B && "ordering an unbound global");
  std::vector<Symbol> Bound, Refs;
  globalRefs(P, B->Rhs, Bound, Refs);
  for (Symbol Ref : Refs) {
    if (Ref == Name) {
      // Self-recursion lowers through fix, not the dep order.
      SelfRec.insert(Name);
      continue;
    }
    Result<bool> R = orderDeps(P, Ref, Visiting, Done, Order, SelfRec);
    if (!R)
      return R;
  }

  Visiting.erase(Name);
  Done.insert(Name);
  Order.push_back(Name);
  return true;
}

Result<const lcalc::Expr *>
CoreToL::lowerBindingRhs(const core::TopBinding *B, bool SelfRecursive) {
  Result<const lcalc::Expr *> Rhs = lowerExpr(B->Rhs);
  if (!Rhs || !SelfRecursive)
    return Rhs;

  // Self-recursive global: tie the knot with fix. The binder keeps the
  // global's name so the references in the lowered right-hand side bind
  // to it.
  Result<const lcalc::Type *> Ty = lowerType(B->Ty);
  if (!Ty)
    return err(Ty.error());
  return L.fix(reintern(B->Name), *Ty, *Rhs);
}

Result<const lcalc::Expr *> CoreToL::lowerGlobal(const core::CoreProgram &P,
                                                 Symbol Name) {
  const core::TopBinding *Target = P.find(Name);
  if (!Target)
    return err("no top-level binding named '" + std::string(Name.str()) +
               "'");

  std::unordered_set<Symbol, SymbolHash> Visiting, Done, SelfRec;
  std::vector<Symbol> Order;
  Result<bool> Ordered = orderDeps(P, Name, Visiting, Done, Order, SelfRec);
  if (!Ordered)
    return err(Ordered.error());

  // Order holds dependencies first and Name last. The target's own lowered
  // right-hand side is the innermost body; every dependency wraps it in a
  // lambda-binding whose evaluation order L derives from the kind.
  // Self-recursive bindings (the target's included) lower to fix.
  Result<const lcalc::Expr *> Term =
      lowerBindingRhs(Target, SelfRec.count(Name) != 0);
  if (!Term)
    return Term;
  const lcalc::Expr *Body = *Term;
  for (size_t I = Order.size() - 1; I-- > 0;) {
    const core::TopBinding *Dep = P.find(Order[I]);
    Result<const lcalc::Type *> Ty = lowerType(Dep->Ty);
    if (!Ty)
      return err(Ty.error());
    Result<const lcalc::Expr *> Rhs =
        lowerBindingRhs(Dep, SelfRec.count(Dep->Name) != 0);
    if (!Rhs)
      return Rhs;
    Body = L.app(L.lam(reintern(Dep->Name), *Ty, Body), *Rhs);
  }
  return Body;
}
