//===- LowerToL.cpp - Lowering core IR into the L calculus ----------------===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "driver/LowerToL.h"

#include <algorithm>

using namespace levity;
using namespace levity::driver;

//===----------------------------------------------------------------------===//
// Reps, kinds, types
//===----------------------------------------------------------------------===//

Result<lcalc::RuntimeRep> CoreToL::lowerRep(const core::RepTy *R) {
  R = C.zonkRep(R);
  switch (R->tag()) {
  case core::RepTy::Tag::Var:
    return lcalc::RuntimeRep::var(reintern(R->varName()));
  case core::RepTy::Tag::Atom:
    switch (R->atom()) {
    case RepCtor::Lifted:
      return lcalc::RuntimeRep::pointer();
    case RepCtor::Int:
      return lcalc::RuntimeRep::integer();
    case RepCtor::Double:
      return lcalc::RuntimeRep::dbl();
    default:
      break;
    }
    return err("not expressible in L: representation " + R->str() +
               " (L has only P, I, and D)");
  case core::RepTy::Tag::Meta:
    return err("not expressible in L: unsolved rep metavariable");
  case core::RepTy::Tag::Tuple:
  case core::RepTy::Tag::Sum:
    return err("not expressible in L: compound representation " + R->str());
  }
  return err("unknown rep");
}

Result<lcalc::LKind> CoreToL::lowerKind(const core::Kind *K) {
  K = C.zonkKind(K);
  if (!K->isTypeOf())
    return err("not expressible in L: kind " + K->str());
  Result<lcalc::RuntimeRep> R = lowerRep(K->rep());
  if (!R)
    return err(R.error());
  return lcalc::LKind(*R);
}

Result<const lcalc::Type *> CoreToL::lowerType(const core::Type *T) {
  T = C.zonkType(T);
  switch (T->tag()) {
  case core::Type::Tag::Con: {
    const core::TyCon *TC = core::cast<core::ConType>(T)->tycon();
    if (TC == C.intTyCon())
      return L.intTy();
    if (TC == C.intHashTyCon())
      return L.intHashTy();
    if (TC == C.doubleHashTyCon())
      return L.doubleHashTy();
    // Any other algebraic tycon (Bool, boxed Double, user data) lowers
    // to a declared L data type; non-algebraic builtins (String, the
    // remaining unboxed sorts) stay outside the fragment.
    Result<const lcalc::LDataDecl *> D = dataDeclFor(TC, {});
    if (!D)
      return err(D.error());
    return (*D)->type();
  }
  case core::Type::Tag::Fun: {
    const auto *F = core::cast<core::FunType>(T);
    Result<const lcalc::Type *> P = lowerType(F->param());
    if (!P)
      return P;
    Result<const lcalc::Type *> R = lowerType(F->result());
    if (!R)
      return R;
    return L.arrowTy(*P, *R);
  }
  case core::Type::Tag::Var:
    return L.varTy(reintern(core::cast<core::VarType>(T)->name()));
  case core::Type::Tag::ForAll: {
    const auto *F = core::cast<core::ForAllType>(T);
    const core::Kind *VK = C.zonkKind(F->varKind());
    if (VK->isRep()) {
      Result<const lcalc::Type *> Body = lowerType(F->body());
      if (!Body)
        return Body;
      return L.forAllRepTy(reintern(F->var()), *Body);
    }
    Result<lcalc::LKind> K = lowerKind(VK);
    if (!K)
      return err(K.error());
    Result<const lcalc::Type *> Body = lowerType(F->body());
    if (!Body)
      return Body;
    return L.forAllTy(reintern(F->var()), *K, *Body);
  }
  case core::Type::Tag::App: {
    // A saturated data-type application (Maybe Int, List Int, …)
    // lowers to the per-instantiation L data declaration.
    std::vector<const core::Type *> Args;
    const core::TyCon *TC = typeHead(T, Args);
    if (!TC)
      return err("not expressible in L: type application " + T->str());
    Result<const lcalc::LDataDecl *> D = dataDeclFor(TC, Args);
    if (!D)
      return err(D.error());
    return (*D)->type();
  }
  case core::Type::Tag::Meta:
    return err("not expressible in L: unsolved type metavariable");
  case core::Type::Tag::UnboxedTuple:
    return err("not expressible in L: unboxed tuple type " + T->str());
  case core::Type::Tag::RepLift:
    return err("not expressible in L: promoted representation " + T->str());
  }
  return err("unknown type");
}

//===----------------------------------------------------------------------===//
// Data declarations
//===----------------------------------------------------------------------===//

const core::TyCon *CoreToL::typeHead(const core::Type *T,
                                     std::vector<const core::Type *> &Args) {
  T = C.zonkType(T);
  while (const auto *App = core::dyn_cast<core::AppType>(T)) {
    Args.insert(Args.begin(), App->arg());
    T = C.zonkType(App->fn());
  }
  const auto *Con = core::dyn_cast<core::ConType>(T);
  return Con ? Con->tycon() : nullptr;
}

Result<const core::Type *> CoreToL::scrutType(const core::Expr *E) {
  Result<const core::Type *> T = Checker.typeOf(CoreScope, E);
  if (!T)
    return err("not expressible in L: cannot type case scrutinee (" +
               T.error() + ")");
  return C.zonkType(*T);
}

Result<const lcalc::LDataDecl *>
CoreToL::dataDeclFor(const core::TyCon *TC,
                     std::span<const core::Type *const> TyArgs) {
  // Identity key: the tycon plus its zonked argument spine.
  std::string Key =
      std::to_string(reinterpret_cast<uintptr_t>(TC));
  std::vector<const core::Type *> Zonked;
  for (const core::Type *A : TyArgs) {
    Zonked.push_back(C.zonkType(A));
    Key += "|" + Zonked.back()->str();
  }
  if (auto It = DeclCache.find(Key); It != DeclCache.end())
    return It->second;

  if (TC == C.intTyCon())
    return L.intDataDecl();
  if (!TC->isAlgebraic())
    return err("not expressible in L: type constructor " +
               std::string(TC->name().str()));
  for (const core::DataCon *DC : TC->dataCons())
    if (DC->univs().size() != Zonked.size())
      return err("not expressible in L: unsaturated data type " +
                 std::string(TC->name().str()));

  // Display name: the saturated type as written ("Maybe Int").
  std::string Display(TC->name().str());
  for (const core::Type *A : Zonked) {
    std::string S = A->str();
    Display += S.find(' ') == std::string::npos ? " " + S
                                                : " (" + S + ")";
  }

  // A completed decl under this name (from an earlier lowering into the
  // same LContext) is reused after a shape check; a mismatch means a
  // distinct tycon shares the name, so uniquify and declare fresh.
  std::string Name = Display;
  for (unsigned Suffix = 2;; ++Suffix) {
    const lcalc::LDataDecl *Existing = L.lookupData(L.sym(Name));
    if (!Existing)
      break;
    bool Matches = Existing->numCons() == TC->dataCons().size();
    for (size_t I = 0; Matches && I != TC->dataCons().size(); ++I)
      Matches = Existing->con(I).Name.str() ==
                    TC->dataCons()[I]->name().str() &&
                Existing->con(I).arity() == TC->dataCons()[I]->arity();
    if (Matches) {
      DeclCache.emplace(Key, Existing);
      return Existing;
    }
    Name = Display + "#" + std::to_string(Suffix);
  }

  lcalc::LDataDecl *Decl = L.declareData(L.sym(Name));
  // Register before lowering fields so recursive data types (cons
  // lists) resolve their self-references to the in-progress decl.
  DeclCache.emplace(Key, Decl);
  for (const core::DataCon *DC : TC->dataCons()) {
    std::vector<const lcalc::Type *> Fields;
    for (const core::Type *F : DC->fields()) {
      const core::Type *Inst = F;
      for (size_t U = 0; U != DC->univs().size(); ++U)
        Inst = core::substType(C, Inst, DC->univs()[U], Zonked[U]);
      Result<const lcalc::Type *> LF = lowerType(Inst);
      if (!LF) {
        DeclCache.erase(Key);
        return err(LF.error());
      }
      Fields.push_back(*LF);
    }
    if (!L.addDataCon(Decl, L.sym(DC->name().str()), Fields)) {
      DeclCache.erase(Key);
      return err("not expressible in L: constructor " +
                 std::string(DC->name().str()) +
                 " has a field without a concrete representation");
    }
  }
  return Decl;
}

//===----------------------------------------------------------------------===//
// Case lowering — the one tag-dispatch path
//===----------------------------------------------------------------------===//

Result<const lcalc::Expr *> CoreToL::lowerCase(const core::CaseExpr *Case) {
  const core::Expr *DefaultRhs = nullptr;
  std::vector<const core::Alt *> ConAlts, LitAlts;
  for (const core::Alt &A : Case->alts()) {
    switch (A.Kind) {
    case core::Alt::AltKind::Default:
      if (!DefaultRhs)
        DefaultRhs = A.Rhs;
      break;
    case core::Alt::AltKind::ConPat:
      ConAlts.push_back(&A);
      break;
    case core::Alt::AltKind::LitPat:
      LitAlts.push_back(&A);
      break;
    case core::Alt::AltKind::TuplePat:
      return err("not expressible in L: unboxed tuple pattern");
    }
  }
  if (!ConAlts.empty() && !LitAlts.empty())
    return err("not expressible in L: mixed literal and constructor "
               "case");

  Result<const lcalc::Expr *> Scrut = lowerExpr(Case->scrut());
  if (!Scrut)
    return Scrut;

  if (!ConAlts.empty()) {
    const core::TyCon *TC = ConAlts[0]->Con->parent();
    for (const core::Alt *A : ConAlts)
      if (A->Con->parent() != TC)
        return err("not expressible in L: case alternatives mix data "
                   "types");

    // Polymorphic data needs the scrutinee's instantiation to fix the
    // field types (Maybe Int vs Maybe Bool are distinct L decls).
    std::vector<const core::Type *> TyArgs;
    bool Polymorphic = false;
    for (const core::DataCon *DC : TC->dataCons())
      Polymorphic |= !DC->univs().empty();
    if (Polymorphic) {
      Result<const core::Type *> ST = scrutType(Case->scrut());
      if (!ST)
        return err(ST.error());
      std::vector<const core::Type *> Args;
      if (typeHead(*ST, Args) != TC)
        return err("not expressible in L: scrutinee type " +
                   (*ST)->str() + " does not match the case "
                   "alternatives");
      TyArgs = std::move(Args);
    }
    Result<const lcalc::LDataDecl *> D = dataDeclFor(TC, TyArgs);
    if (!D)
      return err(D.error());

    std::vector<lcalc::LAlt> Alts;
    std::vector<std::vector<Symbol>> BinderStore;
    std::vector<bool> Covered((*D)->numCons(), false);
    for (const core::Alt *A : ConAlts) {
      unsigned Tag = A->Con->tag();
      if (Tag >= (*D)->numCons() || A->Binders.size() != A->Con->arity())
        return err("not expressible in L: malformed constructor pattern "
                   "for " + std::string(A->Con->name().str()));
      Covered[Tag] = true;
      lcalc::LAlt LA;
      LA.Pat = lcalc::LAlt::PatKind::Con;
      LA.Tag = Tag;
      BinderStore.emplace_back();
      for (Symbol B : A->Binders)
        BinderStore.back().push_back(reintern(B));
      LA.Binders = std::span<const Symbol>(BinderStore.back().data(),
                                           BinderStore.back().size());
      size_t Pushed = 0;
      for (size_t I = 0; I != A->Binders.size(); ++I) {
        const core::Type *FieldTy = A->Con->fields()[I];
        for (size_t U = 0;
             U != A->Con->univs().size() && U != TyArgs.size(); ++U)
          FieldTy =
              core::substType(C, FieldTy, A->Con->univs()[U], TyArgs[U]);
        CoreScope.pushTerm(A->Binders[I], FieldTy);
        ++Pushed;
      }
      Result<const lcalc::Expr *> Rhs = lowerExpr(A->Rhs);
      CoreScope.popTerms(Pushed);
      if (!Rhs)
        return Rhs;
      LA.Rhs = *Rhs;
      Alts.push_back(LA);
    }
    const lcalc::Expr *Def = nullptr;
    if (DefaultRhs) {
      Result<const lcalc::Expr *> DefE = lowerExpr(DefaultRhs);
      if (!DefE)
        return DefE;
      Def = *DefE;
    } else {
      for (size_t Tag = 0; Tag != Covered.size(); ++Tag)
        if (!Covered[Tag])
          return err("not expressible in L: non-exhaustive constructor "
                     "case without a default alternative");
    }
    return L.caseData(*Scrut, *D, Alts, Def);
  }

  if (!LitAlts.empty()) {
    if (!DefaultRhs)
      return err("not expressible in L: literal case without a default "
                 "alternative");
    bool ScrutIsDouble =
        LitAlts[0]->Lit.tag() == core::Literal::Tag::DoubleHash;
    std::vector<lcalc::LAlt> Alts;
    for (const core::Alt *A : LitAlts) {
      core::Literal::Tag Tag = A->Lit.tag();
      if (Tag == core::Literal::Tag::String ||
          (Tag == core::Literal::Tag::DoubleHash) != ScrutIsDouble)
        return err("not expressible in L: literal case over " +
                   A->Lit.str());
      lcalc::LAlt LA;
      if (ScrutIsDouble) {
        LA.Pat = lcalc::LAlt::PatKind::Dbl;
        LA.DblVal = A->Lit.doubleValue();
      } else {
        LA.Pat = lcalc::LAlt::PatKind::Int;
        LA.IntVal = A->Lit.intValue();
      }
      Result<const lcalc::Expr *> Rhs = lowerExpr(A->Rhs);
      if (!Rhs)
        return Rhs;
      LA.Rhs = *Rhs;
      Alts.push_back(LA);
    }
    Result<const lcalc::Expr *> Def = lowerExpr(DefaultRhs);
    if (!Def)
      return Def;
    return L.caseData(*Scrut, nullptr, Alts, *Def);
  }

  // Default-only: force the scrutinee (whatever its sort — an
  // already-evaluated variable included), then take the default.
  if (!DefaultRhs)
    return err("not expressible in L: case with no alternatives");
  Result<const lcalc::Expr *> Def = lowerExpr(DefaultRhs);
  if (!Def)
    return Def;
  return L.caseData(*Scrut, nullptr, {}, *Def);
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

Result<const lcalc::Expr *> CoreToL::lowerExpr(const core::Expr *E) {
  switch (E->tag()) {
  case core::Expr::Tag::Var:
    return L.var(reintern(core::cast<core::VarExpr>(E)->name()));

  case core::Expr::Tag::Lit: {
    const core::Literal &Lit = core::cast<core::LitExpr>(E)->lit();
    if (Lit.tag() == core::Literal::Tag::IntHash)
      return L.intLit(Lit.intValue());
    if (Lit.tag() == core::Literal::Tag::DoubleHash)
      return L.doubleLit(Lit.doubleValue());
    return err("not expressible in L: literal " + Lit.str());
  }

  case core::Expr::Tag::App: {
    const auto *A = core::cast<core::AppExpr>(E);

    // Elaboration wraps `error "msg"` as (λm:String. error @ρ @τ m) "msg".
    // L has no strings, but the redex is administrative: record the
    // message under the binder and lower the body directly, so the
    // error node keeps its diagnostic.
    if (const auto *Lam = core::dyn_cast<core::LamExpr>(A->fn())) {
      const core::Type *BinderTy = C.zonkType(Lam->varType());
      const auto *Con = core::dyn_cast<core::ConType>(BinderTy);
      if (Con && Con->tycon() == C.stringTyCon()) {
        const auto *Lit = core::dyn_cast<core::LitExpr>(A->arg());
        if (!Lit || Lit->lit().tag() != core::Literal::Tag::String)
          return err("not expressible in L: string-typed binding");
        auto Saved = StringEnv.find(Lam->var());
        std::optional<Symbol> Shadowed;
        if (Saved != StringEnv.end())
          Shadowed = Saved->second;
        StringEnv[Lam->var()] = Lit->lit().stringValue();
        CoreScope.pushTerm(Lam->var(), BinderTy);
        Result<const lcalc::Expr *> Body = lowerExpr(Lam->body());
        CoreScope.popTerm();
        if (Shadowed)
          StringEnv[Lam->var()] = *Shadowed;
        else
          StringEnv.erase(Lam->var());
        return Body;
      }
    }

    Result<const lcalc::Expr *> Fn = lowerExpr(A->fn());
    if (!Fn)
      return Fn;
    Result<const lcalc::Expr *> Arg = lowerExpr(A->arg());
    if (!Arg)
      return Arg;
    // L re-derives the evaluation order from the argument type's kind;
    // the strictness bit needs no separate translation.
    return L.app(*Fn, *Arg);
  }

  case core::Expr::Tag::TyApp: {
    const auto *A = core::cast<core::TyAppExpr>(E);
    Result<const lcalc::Expr *> Fn = lowerExpr(A->fn());
    if (!Fn)
      return Fn;
    const core::Type *Arg = C.zonkType(A->tyArg());
    // Rep-kinded type arguments are L rep applications (e ρ); all other
    // instantiations are ordinary type applications (e τ).
    if (const core::RepTy *R = core::typeAsRep(C, Arg)) {
      Result<lcalc::RuntimeRep> LR = lowerRep(R);
      if (!LR)
        return err(LR.error());
      return L.repApp(*Fn, *LR);
    }
    Result<const lcalc::Type *> Ty = lowerType(Arg);
    if (!Ty)
      return err(Ty.error());
    return L.tyApp(*Fn, *Ty);
  }

  case core::Expr::Tag::Lam: {
    const auto *Lam = core::cast<core::LamExpr>(E);
    Result<const lcalc::Type *> Ty = lowerType(Lam->varType());
    if (!Ty)
      return err(Ty.error());
    CoreScope.pushTerm(Lam->var(), Lam->varType());
    Result<const lcalc::Expr *> Body = lowerExpr(Lam->body());
    CoreScope.popTerm();
    if (!Body)
      return Body;
    return L.lam(reintern(Lam->var()), *Ty, *Body);
  }

  case core::Expr::Tag::TyLam: {
    const auto *Lam = core::cast<core::TyLamExpr>(E);
    const core::Kind *VK = C.zonkKind(Lam->varKind());
    CoreScope.pushTypeVar(Lam->var(), VK);
    Result<const lcalc::Expr *> Body = lowerExpr(Lam->body());
    CoreScope.popTypeVar();
    if (!Body)
      return Body;
    if (VK->isRep())
      return L.repLam(reintern(Lam->var()), *Body);
    Result<lcalc::LKind> K = lowerKind(VK);
    if (!K)
      return err(K.error());
    return L.tyLam(reintern(Lam->var()), *K, *Body);
  }

  case core::Expr::Tag::Let: {
    // let x:τ = rhs in body  ⟶  (λx:τ. body) rhs — E_APP's kind-directed
    // evaluation order coincides with the core strictness bit, which was
    // itself derived from τ's kind.
    const auto *Let = core::cast<core::LetExpr>(E);
    Result<const lcalc::Type *> Ty = lowerType(Let->varType());
    if (!Ty)
      return err(Ty.error());
    Result<const lcalc::Expr *> Rhs = lowerExpr(Let->rhs());
    if (!Rhs)
      return Rhs;
    CoreScope.pushTerm(Let->var(), Let->varType());
    Result<const lcalc::Expr *> Body = lowerExpr(Let->body());
    CoreScope.popTerm();
    if (!Body)
      return Body;
    return L.app(L.lam(reintern(Let->var()), *Ty, *Body), *Rhs);
  }

  case core::Expr::Tag::LetRec: {
    // A single recursive binding lowers through fix:
    //   letrec x:τ = rhs in body ⟶ (λx:τ. body) (fix x:τ. rhs).
    // Mutual recursion stays outside the fragment.
    const auto *LR = core::cast<core::LetRecExpr>(E);
    if (LR->bindings().size() != 1)
      return err("not expressible in L: mutually recursive let");
    const core::RecBinding &B = LR->bindings()[0];
    Result<const lcalc::Type *> Ty = lowerType(B.VarTy);
    if (!Ty)
      return err(Ty.error());
    CoreScope.pushTerm(B.Var, B.VarTy);
    Result<const lcalc::Expr *> Rhs = lowerExpr(B.Rhs);
    Result<const lcalc::Expr *> Body =
        Rhs ? lowerExpr(LR->body()) : Rhs;
    CoreScope.popTerm();
    if (!Rhs)
      return Rhs;
    if (!Body)
      return Body;
    Symbol X = reintern(B.Var);
    return L.app(L.lam(X, *Ty, *Body), L.fix(X, *Ty, *Rhs));
  }

  case core::Expr::Tag::Case:
    // Every case shape — constructor, literal, default-only — routes
    // through the one tag-dispatch lowering.
    return lowerCase(core::cast<core::CaseExpr>(E));

  case core::Expr::Tag::Con: {
    const auto *Con = core::cast<core::ConExpr>(E);
    const core::DataCon *DC = Con->dataCon();
    // The paper's boxed Int keeps its special I#[e] form.
    if (DC == C.iHashCon()) {
      Result<const lcalc::Expr *> Payload = lowerExpr(Con->args()[0]);
      if (!Payload)
        return Payload;
      return L.con(*Payload);
    }
    Result<const lcalc::LDataDecl *> D =
        dataDeclFor(DC->parent(), Con->tyArgs());
    if (!D)
      return err(D.error());
    std::vector<const lcalc::Expr *> Args;
    for (const core::Expr *A : Con->args()) {
      Result<const lcalc::Expr *> LA = lowerExpr(A);
      if (!LA)
        return LA;
      Args.push_back(*LA);
    }
    return L.conData(*D, DC->tag(), Args);
  }

  case core::Expr::Tag::Prim: {
    const auto *P = core::cast<core::PrimOpExpr>(E);

    // Unary negation lowers through subtraction. The double case
    // subtracts from *negative* zero: IEEE gives -0.0 - x == -x exactly
    // (including -0.0 - 0.0 == -0.0), whereas 0.0 - 0.0 == +0.0 would
    // silently diverge from the tree interpreter on signed zeros.
    if (P->op() == core::PrimOp::NegI || P->op() == core::PrimOp::NegD) {
      Result<const lcalc::Expr *> Arg = lowerExpr(P->args()[0]);
      if (!Arg)
        return Arg;
      if (P->op() == core::PrimOp::NegI)
        return L.prim(lcalc::LPrim::Sub, L.intLit(0), *Arg);
      return L.prim(lcalc::LPrim::DSub, L.doubleLit(-0.0), *Arg);
    }

    // isTrue# e lowers to a literal case producing Bool's constructors:
    //   case e of { 0 -> False ; _ -> True }.
    if (P->op() == core::PrimOp::IsTrue) {
      Result<const lcalc::Expr *> Arg = lowerExpr(P->args()[0]);
      if (!Arg)
        return Arg;
      Result<const lcalc::LDataDecl *> Bool =
          dataDeclFor(C.boolTyCon(), {});
      if (!Bool)
        return err(Bool.error());
      lcalc::LAlt Zero;
      Zero.Pat = lcalc::LAlt::PatKind::Int;
      Zero.IntVal = 0;
      Zero.Rhs = L.conData(*Bool, C.falseCon()->tag(), {});
      return L.caseData(*Arg, nullptr, {&Zero, 1},
                        L.conData(*Bool, C.trueCon()->tag(), {}));
    }

    lcalc::LPrim Op;
    switch (P->op()) {
    case core::PrimOp::AddI:
      Op = lcalc::LPrim::Add;
      break;
    case core::PrimOp::SubI:
      Op = lcalc::LPrim::Sub;
      break;
    case core::PrimOp::MulI:
      Op = lcalc::LPrim::Mul;
      break;
    case core::PrimOp::QuotI:
      Op = lcalc::LPrim::Quot;
      break;
    case core::PrimOp::RemI:
      Op = lcalc::LPrim::Rem;
      break;
    case core::PrimOp::LtI:
      Op = lcalc::LPrim::Lt;
      break;
    case core::PrimOp::LeI:
      Op = lcalc::LPrim::Le;
      break;
    case core::PrimOp::GtI:
      Op = lcalc::LPrim::Gt;
      break;
    case core::PrimOp::GeI:
      Op = lcalc::LPrim::Ge;
      break;
    case core::PrimOp::EqI:
      Op = lcalc::LPrim::Eq;
      break;
    case core::PrimOp::NeI:
      Op = lcalc::LPrim::Ne;
      break;
    case core::PrimOp::AddD:
      Op = lcalc::LPrim::DAdd;
      break;
    case core::PrimOp::SubD:
      Op = lcalc::LPrim::DSub;
      break;
    case core::PrimOp::MulD:
      Op = lcalc::LPrim::DMul;
      break;
    case core::PrimOp::DivD:
      Op = lcalc::LPrim::DDiv;
      break;
    case core::PrimOp::LtD:
      Op = lcalc::LPrim::DLt;
      break;
    case core::PrimOp::EqD:
      Op = lcalc::LPrim::DEq;
      break;
    default:
      // Int2Double / Double2Int / IsTrue have no L image yet.
      return err("not expressible in L: primop " +
                 std::string(core::primOpName(P->op())));
    }
    Result<const lcalc::Expr *> Lhs = lowerExpr(P->args()[0]);
    if (!Lhs)
      return Lhs;
    Result<const lcalc::Expr *> Rhs = lowerExpr(P->args()[1]);
    if (!Rhs)
      return Rhs;
    return L.prim(Op, *Lhs, *Rhs);
  }

  case core::Expr::Tag::UnboxedTuple:
    return err("not expressible in L: unboxed tuple expression");

  case core::Expr::Tag::Error: {
    // error @ρ @τ msg ⟶ error ρ τ I#[0]. The term-level argument is a
    // unit-like boxed zero (L has no string values), but the message
    // itself rides the error node so the machine backend can surface it
    // through MachineResult/RunResult on ⊥.
    const auto *Err = core::cast<core::ErrorExpr>(E);
    Result<lcalc::RuntimeRep> R = lowerRep(Err->atRep());
    if (!R)
      return err(R.error());
    Result<const lcalc::Type *> Ty = lowerType(Err->atType());
    if (!Ty)
      return err(Ty.error());
    Symbol Msg;
    if (const auto *Lit = core::dyn_cast<core::LitExpr>(Err->message())) {
      if (Lit->lit().tag() == core::Literal::Tag::String)
        Msg = reintern(Lit->lit().stringValue());
    } else if (const auto *Var =
                   core::dyn_cast<core::VarExpr>(Err->message())) {
      auto It = StringEnv.find(Var->name());
      if (It != StringEnv.end())
        Msg = reintern(It->second);
    }
    return L.app(
        L.tyApp(L.repApp(Msg.valid() ? L.error(Msg) : L.error(), *R), *Ty),
        L.con(L.intLit(0)));
  }
  }
  return err("unknown expression");
}

//===----------------------------------------------------------------------===//
// Globals
//===----------------------------------------------------------------------===//

void CoreToL::globalRefs(const core::CoreProgram &P, const core::Expr *E,
                         std::vector<Symbol> &Bound,
                         std::vector<Symbol> &Out) {
  switch (E->tag()) {
  case core::Expr::Tag::Var: {
    Symbol Name = core::cast<core::VarExpr>(E)->name();
    for (Symbol B : Bound)
      if (B == Name)
        return;
    if (P.find(Name))
      Out.push_back(Name);
    return;
  }
  case core::Expr::Tag::Lit:
    return;
  case core::Expr::Tag::App: {
    const auto *A = core::cast<core::AppExpr>(E);
    globalRefs(P, A->fn(), Bound, Out);
    globalRefs(P, A->arg(), Bound, Out);
    return;
  }
  case core::Expr::Tag::TyApp:
    globalRefs(P, core::cast<core::TyAppExpr>(E)->fn(), Bound, Out);
    return;
  case core::Expr::Tag::Lam: {
    const auto *L = core::cast<core::LamExpr>(E);
    Bound.push_back(L->var());
    globalRefs(P, L->body(), Bound, Out);
    Bound.pop_back();
    return;
  }
  case core::Expr::Tag::TyLam:
    globalRefs(P, core::cast<core::TyLamExpr>(E)->body(), Bound, Out);
    return;
  case core::Expr::Tag::Let: {
    const auto *L = core::cast<core::LetExpr>(E);
    globalRefs(P, L->rhs(), Bound, Out);
    Bound.push_back(L->var());
    globalRefs(P, L->body(), Bound, Out);
    Bound.pop_back();
    return;
  }
  case core::Expr::Tag::LetRec: {
    const auto *L = core::cast<core::LetRecExpr>(E);
    size_t Mark = Bound.size();
    for (const core::RecBinding &B : L->bindings())
      Bound.push_back(B.Var);
    for (const core::RecBinding &B : L->bindings())
      globalRefs(P, B.Rhs, Bound, Out);
    globalRefs(P, L->body(), Bound, Out);
    Bound.resize(Mark);
    return;
  }
  case core::Expr::Tag::Case: {
    const auto *Case = core::cast<core::CaseExpr>(E);
    globalRefs(P, Case->scrut(), Bound, Out);
    for (const core::Alt &A : Case->alts()) {
      size_t Mark = Bound.size();
      for (Symbol B : A.Binders)
        Bound.push_back(B);
      globalRefs(P, A.Rhs, Bound, Out);
      Bound.resize(Mark);
    }
    return;
  }
  case core::Expr::Tag::Con: {
    for (const core::Expr *Arg : core::cast<core::ConExpr>(E)->args())
      globalRefs(P, Arg, Bound, Out);
    return;
  }
  case core::Expr::Tag::Prim: {
    for (const core::Expr *Arg : core::cast<core::PrimOpExpr>(E)->args())
      globalRefs(P, Arg, Bound, Out);
    return;
  }
  case core::Expr::Tag::UnboxedTuple: {
    for (const core::Expr *El :
         core::cast<core::UnboxedTupleExpr>(E)->elems())
      globalRefs(P, El, Bound, Out);
    return;
  }
  case core::Expr::Tag::Error:
    globalRefs(P, core::cast<core::ErrorExpr>(E)->message(), Bound, Out);
    return;
  }
}

Result<bool> CoreToL::orderDeps(
    const core::CoreProgram &P, Symbol Name,
    std::unordered_set<Symbol, SymbolHash> &Visiting,
    std::unordered_set<Symbol, SymbolHash> &Done,
    std::vector<Symbol> &Order,
    std::unordered_set<Symbol, SymbolHash> &SelfRec) {
  if (Done.count(Name))
    return true;
  if (Visiting.count(Name))
    return err("not expressible in L: '" + std::string(Name.str()) +
               "' is mutually recursive");
  Visiting.insert(Name);

  const core::TopBinding *B = P.find(Name);
  assert(B && "ordering an unbound global");
  std::vector<Symbol> Bound, Refs;
  globalRefs(P, B->Rhs, Bound, Refs);
  for (Symbol Ref : Refs) {
    if (Ref == Name) {
      // Self-recursion lowers through fix, not the dep order.
      SelfRec.insert(Name);
      continue;
    }
    Result<bool> R = orderDeps(P, Ref, Visiting, Done, Order, SelfRec);
    if (!R)
      return R;
  }

  Visiting.erase(Name);
  Done.insert(Name);
  Order.push_back(Name);
  return true;
}

Result<const lcalc::Expr *>
CoreToL::lowerBindingRhs(const core::TopBinding *B, bool SelfRecursive) {
  Result<const lcalc::Expr *> Rhs = lowerExpr(B->Rhs);
  if (!Rhs || !SelfRecursive)
    return Rhs;

  // Self-recursive global: tie the knot with fix. The binder keeps the
  // global's name so the references in the lowered right-hand side bind
  // to it.
  Result<const lcalc::Type *> Ty = lowerType(B->Ty);
  if (!Ty)
    return err(Ty.error());
  return L.fix(reintern(B->Name), *Ty, *Rhs);
}

Result<const lcalc::Expr *> CoreToL::lowerGlobal(const core::CoreProgram &P,
                                                 Symbol Name) {
  const core::TopBinding *Target = P.find(Name);
  if (!Target)
    return err("no top-level binding named '" + std::string(Name.str()) +
               "'");

  // Seed the core typing scope with every program global so scrutType
  // can type scrutinees that mention them.
  for (const core::TopBinding &B : P.Bindings)
    CoreScope.addGlobal(B.Name, B.Ty);

  std::unordered_set<Symbol, SymbolHash> Visiting, Done, SelfRec;
  std::vector<Symbol> Order;
  Result<bool> Ordered = orderDeps(P, Name, Visiting, Done, Order, SelfRec);
  if (!Ordered)
    return err(Ordered.error());

  // Order holds dependencies first and Name last. The target's own lowered
  // right-hand side is the innermost body; every dependency wraps it in a
  // lambda-binding whose evaluation order L derives from the kind.
  // Self-recursive bindings (the target's included) lower to fix.
  Result<const lcalc::Expr *> Term =
      lowerBindingRhs(Target, SelfRec.count(Name) != 0);
  if (!Term)
    return Term;
  const lcalc::Expr *Body = *Term;
  for (size_t I = Order.size() - 1; I-- > 0;) {
    const core::TopBinding *Dep = P.find(Order[I]);
    Result<const lcalc::Type *> Ty = lowerType(Dep->Ty);
    if (!Ty)
      return err(Ty.error());
    Result<const lcalc::Expr *> Rhs =
        lowerBindingRhs(Dep, SelfRec.count(Dep->Name) != 0);
    if (!Rhs)
      return Rhs;
    Body = L.app(L.lam(reintern(Dep->Name), *Ty, Body), *Rhs);
  }
  return Body;
}
