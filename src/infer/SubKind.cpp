//===- SubKind.cpp - The legacy OpenKind baseline (Section 3.2) -----------===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "infer/SubKind.h"

using namespace levity;
using namespace levity::infer;
using namespace levity::core;

std::string_view infer::legacyKindName(LegacyKind K) {
  switch (K) {
  case LegacyKind::Star:
    return "Type";
  case LegacyKind::Hash:
    return "#";
  case LegacyKind::Open:
    return "OpenKind";
  }
  return "?";
}

bool infer::legacySubKind(LegacyKind Sub, LegacyKind Sup) {
  if (Sub == Sup)
    return true;
  return Sup == LegacyKind::Open;
}

LegacyKind infer::legacyLub(LegacyKind A, LegacyKind B) {
  if (A == B)
    return A;
  return LegacyKind::Open;
}

Result<LegacyKind> LegacyChecker::kindOf(const Type *T) {
  T = C.zonkType(T);
  switch (T->tag()) {
  case Type::Tag::Con: {
    const TyCon *TC = cast<ConType>(T)->tycon();
    // Everything unlifted collapses into the single kind # — precisely
    // the imprecision that blocked type families returning unlifted
    // types (Section 7.1).
    const RepTy *R = TC->resultRep();
    bool Lifted = R->tag() == RepTy::Tag::Atom &&
                  R->atom() == RepCtor::Lifted;
    return Lifted ? LegacyKind::Star : LegacyKind::Hash;
  }
  case Type::Tag::Var: {
    const auto *V = cast<VarType>(T);
    auto It = VarKinds.find(V->name());
    if (It != VarKinds.end())
      return It->second;
    // Unannotated variables default to Type, as legacy inference did.
    return LegacyKind::Star;
  }
  case Type::Tag::Fun: {
    // The saturated-arrow special case: operands may be OpenKind.
    const auto *F = cast<FunType>(T);
    Result<LegacyKind> PK = kindOf(F->param());
    if (!PK)
      return PK;
    Result<LegacyKind> RK = kindOf(F->result());
    if (!RK)
      return RK;
    if (!legacySubKind(*PK, LegacyKind::Open) ||
        !legacySubKind(*RK, LegacyKind::Open))
      return err("ill-kinded arrow (operands must fit OpenKind)");
    return LegacyKind::Star;
  }
  case Type::Tag::App:
    // Partial applications of (->) and friends keep the sane kind; data
    // applications are Star. (The legacy system had no rep-indexed
    // compound kinds at all.)
    return LegacyKind::Star;
  case Type::Tag::ForAll:
    return kindOf(cast<ForAllType>(T)->body());
  case Type::Tag::UnboxedTuple:
    // All unboxed tuples share the one kind # — "making matters
    // potentially even worse" (Section 7.1).
    return LegacyKind::Hash;
  case Type::Tag::Meta:
    return LegacyKind::Star;
  case Type::Tag::RepLift:
    return err("representation types do not exist pre-levity-polymorphism");
  }
  return err("unknown type");
}

bool LegacyChecker::checkInstantiation(LegacyKind VarKind, const Type *Arg) {
  Result<LegacyKind> AK = kindOf(Arg);
  if (!AK) {
    Diags.error(DiagCode::SubKindError, AK.error());
    return false;
  }
  if (!legacySubKind(*AK, VarKind)) {
    // The embarrassing message (OpenKind leaks to users, Section 3.2).
    Diags.error(DiagCode::InstantiationError,
                "cannot instantiate type variable of kind " +
                    std::string(legacyKindName(VarKind)) + " at " +
                    Arg->str() + " :: " +
                    std::string(legacyKindName(*AK)) +
                    " (expected a sub-kind; note: OpenKind admits both "
                    "Type and #)");
    return false;
  }
  return true;
}

uint32_t LegacyChecker::freshMeta(LegacyKind Bound) {
  Metas.push_back({Bound, false, LegacyKind::Star});
  LowerBounds.push_back(LegacyKind::Star);
  return static_cast<uint32_t>(Metas.size() - 1);
}

bool LegacyChecker::constrainUpper(uint32_t Id, LegacyKind K) {
  ++NumConstraints;
  LegacyKindMeta &M = Metas[Id];
  if (M.Solved) {
    if (!legacySubKind(M.Solution, K)) {
      Diags.error(DiagCode::SubKindError,
                  "kind metavariable already solved to " +
                      std::string(legacyKindName(M.Solution)) +
                      ", conflicting with bound " +
                      std::string(legacyKindName(K)));
      return false;
    }
    return true;
  }
  // Tighten: the new bound must be compatible with the old.
  if (M.Bound == LegacyKind::Open) {
    M.Bound = K;
    return true;
  }
  if (K == LegacyKind::Open || K == M.Bound)
    return true;
  Diags.error(DiagCode::SubKindError,
              "conflicting kind bounds " +
                  std::string(legacyKindName(M.Bound)) + " and " +
                  std::string(legacyKindName(K)));
  return false;
}

bool LegacyChecker::constrainLower(uint32_t Id, LegacyKind K) {
  ++NumConstraints;
  LegacyKindMeta &M = Metas[Id];
  LowerBounds[Id] = legacyLub(LowerBounds[Id], K);
  if (M.Bound != LegacyKind::Open && K != LegacyKind::Open &&
      K != M.Bound) {
    Diags.error(DiagCode::SubKindError,
                "lower bound " + std::string(legacyKindName(K)) +
                    " conflicts with upper bound " +
                    std::string(legacyKindName(M.Bound)));
    return false;
  }
  return true;
}

void LegacyChecker::defaultMetas() {
  for (LegacyKindMeta &M : Metas) {
    if (M.Solved)
      continue;
    M.Solved = true;
    // Unconstrained (still Open) metas default to Type — exactly how
    // myError loses error's magic (Section 3.3).
    M.Solution = M.Bound == LegacyKind::Open ? LegacyKind::Star : M.Bound;
  }
}

LegacyKind LegacyChecker::metaValue(uint32_t Id) const {
  const LegacyKindMeta &M = Metas[Id];
  return M.Solved ? M.Solution
                  : (M.Bound == LegacyKind::Open ? LegacyKind::Star
                                                 : M.Bound);
}
