//===- SubKind.h - The legacy OpenKind baseline (Section 3.2) ---*- C++ -*-===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pre-levity-polymorphism design that the paper replaces: a
/// three-point sub-kind lattice
///
/// \code
///          OpenKind
///          /      \
///        Type      #
/// \endcode
///
/// with its historical warts, implemented faithfully so the paper's
/// complaints are demonstrable and benchmarkable (experiment E7):
///
///   * only *saturated* uses of (->) get the bizarre OpenKind operand
///     kind; partial applications are Type -> Type -> Type;
///   * `error` is special-cased at ∀(a::OpenKind). String → a, and the
///     magic is *lost* by any wrapper (myError infers a::Type);
///   * all unboxed types collapse into the single kind #, so nothing can
///     distinguish Int#'s calling convention from Double#'s — the reason
///     Section 7.1's restrictions (no unlifted type families, no
///     unsaturated unlifted tycons) were needed;
///   * OpenKind leaks into error messages.
///
/// Sub-kind inference uses bounded metavariables (a bound in the lattice
/// that unification can only tighten), which is precisely the "awkward
/// and unprincipled special cases" machinery the paper retired.
///
//===----------------------------------------------------------------------===//

#ifndef LEVITY_INFER_SUBKIND_H
#define LEVITY_INFER_SUBKIND_H

#include "core/CoreContext.h"
#include "support/Diagnostics.h"
#include "support/Result.h"

#include <unordered_map>
#include <vector>

namespace levity {
namespace infer {

/// The legacy kind lattice.
enum class LegacyKind : uint8_t {
  Star, ///< Type: lifted, boxed types.
  Hash, ///< #: all unlifted types, regardless of representation(!).
  Open  ///< OpenKind: super-kind of both.
};

std::string_view legacyKindName(LegacyKind K);

/// \returns true iff Sub <: Sup in the lattice.
bool legacySubKind(LegacyKind Sub, LegacyKind Sup);

/// Least upper bound (always exists: Open is top).
LegacyKind legacyLub(LegacyKind A, LegacyKind B);

/// A kind metavariable with a *bound*: unification can tighten Open to
/// Star or Hash but never widen. This is the special-case machinery that
/// rep metavariables replace.
struct LegacyKindMeta {
  LegacyKind Bound = LegacyKind::Open;
  bool Solved = false;
  LegacyKind Solution = LegacyKind::Star;
};

/// Legacy kind checking over core types (Int, Int#, arrows, foralls read
/// through the legacy lattice).
class LegacyChecker {
public:
  LegacyChecker(core::CoreContext &C, DiagnosticEngine &Diags)
      : C(C), Diags(Diags) {}

  /// The legacy kind of a (core) type. Type variables consult \p VarKinds.
  Result<LegacyKind> kindOf(const core::Type *T);

  /// Binds a type variable's legacy kind for subsequent kindOf queries.
  void bindVar(Symbol Name, LegacyKind K) { VarKinds[Name] = K; }

  /// The Instantiation Principle, legacy style: may a type variable of
  /// legacy kind \p VarKind be instantiated at \p Arg? Failure produces
  /// the infamous OpenKind-mentioning diagnostics.
  bool checkInstantiation(LegacyKind VarKind, const core::Type *Arg);

  //===------------------------------------------------------------------===//
  // Bounded-meta solver (what sub-kind inference had to do)
  //===------------------------------------------------------------------===//

  /// Allocates a kind metavariable bounded by \p Bound.
  uint32_t freshMeta(LegacyKind Bound = LegacyKind::Open);

  /// Requires meta \p Id to be a sub-kind of \p K (tightens the bound).
  bool constrainUpper(uint32_t Id, LegacyKind K);

  /// Requires kind \p K to be a sub-kind of meta \p Id's eventual value.
  bool constrainLower(uint32_t Id, LegacyKind K);

  /// Defaults every unsolved meta: Open bounds collapse to Star (the
  /// legacy defaulting that loses error's magic in wrappers).
  void defaultMetas();

  LegacyKind metaValue(uint32_t Id) const;

  size_t numConstraints() const { return NumConstraints; }

private:
  core::CoreContext &C;
  DiagnosticEngine &Diags;
  std::unordered_map<Symbol, LegacyKind, SymbolHash> VarKinds;
  std::vector<LegacyKindMeta> Metas;
  std::vector<LegacyKind> LowerBounds;
  size_t NumConstraints = 0;
};

} // namespace infer
} // namespace levity

#endif // LEVITY_INFER_SUBKIND_H
