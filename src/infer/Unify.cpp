//===- Unify.cpp - Unification with rep metavariables ---------------------===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "infer/Unify.h"

using namespace levity;
using namespace levity::infer;
using namespace levity::core;

bool Unifier::fail(std::string Msg, DiagCode Code) {
  Diags.error(Code, std::move(Msg));
  return false;
}

bool Unifier::occursInRep(uint32_t Id, const RepTy *R) {
  R = C.zonkRep(R);
  switch (R->tag()) {
  case RepTy::Tag::Meta:
    return R->metaId() == Id;
  case RepTy::Tag::Var:
  case RepTy::Tag::Atom:
    return false;
  case RepTy::Tag::Tuple:
  case RepTy::Tag::Sum:
    for (const RepTy *E : R->elems())
      if (occursInRep(Id, E))
        return true;
    return false;
  }
  return false;
}

bool Unifier::occursInType(uint32_t Id, const Type *T) {
  T = C.zonkType(T);
  switch (T->tag()) {
  case Type::Tag::Meta:
    return cast<MetaType>(T)->id() == Id;
  case Type::Tag::Con:
  case Type::Tag::Var:
  case Type::Tag::RepLift:
    return false;
  case Type::Tag::App: {
    const auto *A = cast<AppType>(T);
    return occursInType(Id, A->fn()) || occursInType(Id, A->arg());
  }
  case Type::Tag::Fun: {
    const auto *F = cast<FunType>(T);
    return occursInType(Id, F->param()) || occursInType(Id, F->result());
  }
  case Type::Tag::ForAll:
    return occursInType(Id, cast<ForAllType>(T)->body());
  case Type::Tag::UnboxedTuple:
    for (const Type *E : cast<UnboxedTupleType>(T)->elems())
      if (occursInType(Id, E))
        return true;
    return false;
  }
  return false;
}

bool Unifier::solveRepMeta(uint32_t Id, const RepTy *Solution) {
  Solution = C.zonkRep(Solution);
  if (Solution->tag() == RepTy::Tag::Meta && Solution->metaId() == Id)
    return true; // ν ~ ν
  if (occursInRep(Id, Solution))
    return fail("occurs check: rep metavariable ν" + std::to_string(Id) +
                    " in " + Solution->str(),
                DiagCode::OccursCheck);
  C.repMetaCell(Id).Solution = Solution;
  return true;
}

bool Unifier::solveTypeMeta(uint32_t Id, const Type *Solution) {
  Solution = C.zonkType(Solution);
  if (const auto *M = dyn_cast<MetaType>(Solution))
    if (M->id() == Id)
      return true;
  if (occursInType(Id, Solution))
    return fail("occurs check: type metavariable μ" + std::to_string(Id) +
                    " in " + Solution->str(),
                DiagCode::OccursCheck);
  // Kind preservation: the meta's kind must unify with the solution's
  // kind. This is where α :: TYPE ν forces ν ~ the solution's rep: the
  // Section 5.2 story where "ρ is unified with LiftedRep" when a lifted
  // context is encountered.
  CoreEnv Env;
  Result<const Kind *> SK = Checker.kindOf(Env, Solution);
  if (!SK)
    return fail("cannot kind solution: " + SK.error(), DiagCode::KindError);
  if (!unifyKind(C.typeMetaCell(Id).MetaKind, *SK))
    return false;
  C.typeMetaCell(Id).Solution = Solution;
  return true;
}

bool Unifier::unifyRep(const RepTy *A, const RepTy *B) {
  ++NumUnifications;
  A = C.zonkRep(A);
  B = C.zonkRep(B);
  if (A->tag() == RepTy::Tag::Meta)
    return solveRepMeta(A->metaId(), B);
  if (B->tag() == RepTy::Tag::Meta)
    return solveRepMeta(B->metaId(), A);
  if (A->tag() != B->tag())
    return fail("representation mismatch: " + A->str() + " vs " + B->str(),
                DiagCode::KindError);
  switch (A->tag()) {
  case RepTy::Tag::Var:
    if (A->varName() != B->varName())
      return fail("rep variable mismatch: " + A->str() + " vs " + B->str(),
                  DiagCode::KindError);
    return true;
  case RepTy::Tag::Atom:
    if (A->atom() != B->atom())
      return fail("representation mismatch: " + A->str() + " vs " +
                      B->str(),
                  DiagCode::KindError);
    return true;
  case RepTy::Tag::Tuple:
  case RepTy::Tag::Sum: {
    if (A->elems().size() != B->elems().size())
      return fail("tuple representation arity mismatch: " + A->str() +
                      " vs " + B->str(),
                  DiagCode::KindError);
    for (size_t I = 0; I != A->elems().size(); ++I)
      if (!unifyRep(A->elems()[I], B->elems()[I]))
        return false;
    return true;
  }
  case RepTy::Tag::Meta:
    break;
  }
  return false;
}

bool Unifier::unifyKind(const Kind *A, const Kind *B) {
  A = C.zonkKind(A);
  B = C.zonkKind(B);
  if (A->tag() != B->tag())
    return fail("kind mismatch: " + A->str() + " vs " + B->str(),
                DiagCode::KindError);
  switch (A->tag()) {
  case Kind::Tag::Rep:
    return true;
  case Kind::Tag::TypeOf:
    return unifyRep(A->rep(), B->rep());
  case Kind::Tag::Arrow:
    return unifyKind(A->param(), B->param()) &&
           unifyKind(A->result(), B->result());
  }
  return false;
}

bool Unifier::unify(const Type *A, const Type *B) {
  ++NumUnifications;
  A = C.zonkType(A);
  B = C.zonkType(B);
  if (A == B)
    return true;
  if (const auto *M = dyn_cast<MetaType>(A))
    return solveTypeMeta(M->id(), B);
  if (const auto *M = dyn_cast<MetaType>(B))
    return solveTypeMeta(M->id(), A);
  if (A->tag() != B->tag())
    return fail("type mismatch: " + A->str() + " vs " + B->str());
  switch (A->tag()) {
  case Type::Tag::Con:
    if (cast<ConType>(A)->tycon() != cast<ConType>(B)->tycon())
      return fail("type constructor mismatch: " + A->str() + " vs " +
                  B->str());
    return true;
  case Type::Tag::Var:
    if (cast<VarType>(A)->name() != cast<VarType>(B)->name())
      return fail("type variable mismatch: " + A->str() + " vs " +
                  B->str());
    return true;
  case Type::Tag::RepLift:
    return unifyRep(cast<RepLiftType>(A)->rep(),
                    cast<RepLiftType>(B)->rep());
  case Type::Tag::App: {
    const auto *AA = cast<AppType>(A);
    const auto *BA = cast<AppType>(B);
    return unify(AA->fn(), BA->fn()) && unify(AA->arg(), BA->arg());
  }
  case Type::Tag::Fun: {
    const auto *AF = cast<FunType>(A);
    const auto *BF = cast<FunType>(B);
    return unify(AF->param(), BF->param()) &&
           unify(AF->result(), BF->result());
  }
  case Type::Tag::ForAll: {
    const auto *AF = cast<ForAllType>(A);
    const auto *BF = cast<ForAllType>(B);
    if (!unifyKind(AF->varKind(), BF->varKind()))
      return false;
    // Alpha-rename B's binder to A's and compare bodies.
    const Type *BBody =
        substType(C, BF->body(), BF->var(),
                  C.varTy(AF->var(), AF->varKind()));
    return unify(AF->body(), BBody);
  }
  case Type::Tag::UnboxedTuple: {
    const auto *AU = cast<UnboxedTupleType>(A);
    const auto *BU = cast<UnboxedTupleType>(B);
    if (AU->elems().size() != BU->elems().size())
      return fail("unboxed tuple arity mismatch: " + A->str() + " vs " +
                  B->str());
    for (size_t I = 0; I != AU->elems().size(); ++I)
      if (!unify(AU->elems()[I], BU->elems()[I]))
        return false;
    return true;
  }
  case Type::Tag::Meta:
    break;
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Defaulting and generalization
//===----------------------------------------------------------------------===//

const Type *infer::defaultRepMetas(CoreContext &C, const Type *T) {
  MetaSet Metas;
  collectMetas(C, T, Metas);
  for (uint32_t Id : Metas.RepMetaIds)
    if (!C.repMetaCell(Id).Solution)
      C.repMetaCell(Id).Solution = C.liftedRep();
  return C.zonkType(T);
}

const Type *infer::generalize(CoreContext &C, const Type *T) {
  // Never generalize over rep metas: default them first (Section 5.2).
  T = defaultRepMetas(C, T);

  MetaSet Metas;
  collectMetas(C, T, Metas);
  // Deduplicate preserving first-occurrence order.
  std::vector<uint32_t> Order;
  for (uint32_t Id : Metas.TypeMetaIds) {
    if (C.typeMetaCell(Id).Solution)
      continue;
    bool Seen = false;
    for (uint32_t Prev : Order)
      Seen |= (Prev == Id);
    if (!Seen)
      Order.push_back(Id);
  }

  // Solve each meta with a quantified variable. Candidate names only
  // need to avoid the *free variables of T* (binding is scoped; global
  // interning is irrelevant), so generalized types read naturally:
  // a, b, c, ...
  std::vector<std::pair<Symbol, const Kind *>> FreeVars;
  freeTypeVars(T, FreeVars);
  auto IsTaken = [&](Symbol S,
                     const std::vector<std::pair<Symbol, const Kind *>>
                         &Quants) {
    for (const auto &[Name, K] : FreeVars)
      if (Name == S)
        return true;
    for (const auto &[Name, K] : Quants)
      if (Name == S)
        return true;
    return false;
  };
  static const char *Names[] = {"a", "b", "c", "d", "e", "f", "g", "h"};
  std::vector<std::pair<Symbol, const Kind *>> Quantified;
  unsigned NameIdx = 0;
  for (uint32_t Id : Order) {
    const Kind *K = C.zonkKind(C.typeMetaCell(Id).MetaKind);
    Symbol Name;
    do {
      Name = NameIdx < 8
                 ? C.sym(Names[NameIdx])
                 : C.sym("t" + std::to_string(NameIdx - 8));
      ++NameIdx;
    } while (IsTaken(Name, Quantified));
    C.typeMetaCell(Id).Solution = C.varTy(Name, K);
    Quantified.push_back({Name, K});
  }

  const Type *Result = C.zonkType(T);
  for (size_t I = Quantified.size(); I != 0; --I)
    Result = C.forAllTy(Quantified[I - 1].first, Quantified[I - 1].second,
                        Result);
  return Result;
}
