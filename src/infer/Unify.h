//===- Unify.h - Unification with rep metavariables (Section 5.2) -*- C++ -*-===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The inference machinery of Section 5.2. The key move of the paper:
/// when the checker needs a type for a λ-binder it invents α :: TYPE ν
/// (a type metavariable whose *kind* carries a rep metavariable), and rep
/// metavariables unify with "GHC's existing unification machinery" — no
/// sub-kinding, no special cases. That simplification over the old
/// OpenKind story (infer/SubKind.h is the baseline) is one of the paper's
/// selling points; bench_inference quantifies it.
///
/// Generalization never quantifies a rep metavariable: unconstrained νs
/// are *defaulted to LiftedRep* (footnote 11 discusses the resulting loss
/// of principal types). Declared levity polymorphism — a user signature
/// with ∀(r::Rep) — is checked, not inferred.
///
//===----------------------------------------------------------------------===//

#ifndef LEVITY_INFER_UNIFY_H
#define LEVITY_INFER_UNIFY_H

#include "core/CoreContext.h"
#include "core/TypeCheck.h"
#include "support/Diagnostics.h"

namespace levity {
namespace infer {

/// Unifies core types, kinds, and reps, writing solutions into the
/// CoreContext's meta cells. Errors are both returned (false) and
/// reported to the DiagnosticEngine with precise codes.
class Unifier {
public:
  Unifier(core::CoreContext &C, DiagnosticEngine &Diags)
      : C(C), Checker(C), Diags(Diags) {}

  bool unify(const core::Type *A, const core::Type *B);
  bool unifyKind(const core::Kind *A, const core::Kind *B);
  bool unifyRep(const core::RepTy *A, const core::RepTy *B);

  /// Section 5.2's recipe: a fresh type meta α :: TYPE ν with ν a fresh
  /// rep meta.
  const core::Type *freshOpenMeta() {
    return C.freshTypeMeta(C.kindTYPE(C.freshRepMeta()));
  }

  size_t numUnifications() const { return NumUnifications; }

private:
  bool solveTypeMeta(uint32_t Id, const core::Type *Solution);
  bool solveRepMeta(uint32_t Id, const core::RepTy *Solution);
  bool occursInType(uint32_t Id, const core::Type *T);
  bool occursInRep(uint32_t Id, const core::RepTy *R);
  bool fail(std::string Msg, DiagCode Code = DiagCode::TypeError);

  core::CoreContext &C;
  core::CoreChecker Checker;
  DiagnosticEngine &Diags;
  size_t NumUnifications = 0;
};

/// Generalizes a zonked inferred type for a top-level binding:
///   * unsolved *rep* metas are defaulted to LiftedRep (never
///     generalized, Section 5.2);
///   * unsolved *type* metas of value kind are quantified with fresh
///     type variables (∀a:κ with κ now rep-concrete).
/// \returns the closed, generalized type.
const core::Type *generalize(core::CoreContext &C, const core::Type *T);

/// Defaults every unsolved rep meta reachable from \p T to LiftedRep and
/// returns the zonked result (generalize() calls this first).
const core::Type *defaultRepMetas(core::CoreContext &C,
                                  const core::Type *T);

} // namespace infer
} // namespace levity

#endif // LEVITY_INFER_UNIFY_H
