//===- Protocol.cpp - The levityd line protocol (LEVP/1) ------------------===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "server/Protocol.h"

#include <charconv>
#include <vector>

using namespace levity;
using namespace levity::server;

std::string_view server::statusToken(Response::Status St) {
  switch (St) {
  case Response::Status::Ok:
    return "OK";
  case Response::Status::Busy:
    return "BUSY";
  case Response::Status::Timeout:
    return "TIMEOUT";
  case Response::Status::Error:
    return "ERROR";
  case Response::Status::BadRequest:
    return "BADREQ";
  case Response::Status::Bye:
    return "BYE";
  }
  return "ERROR";
}

std::string_view server::backendToken(driver::Backend B) {
  switch (B) {
  case driver::Backend::TreeInterp:
    return "tree";
  case driver::Backend::AbstractMachine:
    return "machine";
  case driver::Backend::Bytecode:
    return "bytecode";
  }
  return "machine";
}

std::optional<driver::Backend> server::parseBackendToken(std::string_view T) {
  if (T == "tree")
    return driver::Backend::TreeInterp;
  if (T == "machine")
    return driver::Backend::AbstractMachine;
  if (T == "bytecode")
    return driver::Backend::Bytecode;
  return std::nullopt;
}

//===----------------------------------------------------------------------===//
// Formatting (the client-side half; the server formats responses)
//===----------------------------------------------------------------------===//

std::string server::formatRequest(const Request &R) {
  std::string Out(ProtocolTag);
  switch (R.K) {
  case Request::Kind::Compile:
    Out += " COMPILE " + R.Tenant + " " + R.Name + " " +
           std::to_string(R.Source.size()) + "\n";
    Out += R.Source;
    Out += '\n';
    return Out;
  case Request::Kind::Run:
    Out += " RUN " + R.Tenant + " " + R.Name;
    if (R.B)
      Out += " " + std::string(backendToken(*R.B));
    if (R.Fuel) {
      // Fuel without a backend would be ambiguous on the wire; pin the
      // session default explicitly.
      if (!R.B)
        Out += " machine";
      Out += " " + std::to_string(*R.Fuel);
    }
    Out += '\n';
    return Out;
  case Request::Kind::Stats:
    Out += " STATS " + R.Tenant + "\n";
    return Out;
  case Request::Kind::Evict:
    Out += " EVICT";
    if (R.EvictMaxEntries)
      Out += " " + std::to_string(*R.EvictMaxEntries);
    if (R.EvictMaxBytes)
      Out += " " + std::to_string(*R.EvictMaxBytes);
    Out += '\n';
    return Out;
  case Request::Kind::Shutdown:
    Out += " SHUTDOWN\n";
    return Out;
  }
  return Out;
}

std::string server::formatResponse(const Response &R) {
  std::string Out(ProtocolTag);
  Out += ' ';
  Out += statusToken(R.St);
  Out += ' ';
  Out += std::to_string(R.Payload.size());
  Out += '\n';
  Out += R.Payload;
  Out += '\n';
  return Out;
}

//===----------------------------------------------------------------------===//
// Shared token helpers
//===----------------------------------------------------------------------===//

namespace {

/// Splits \p Line on single spaces. Empty tokens (leading, trailing, or
/// doubled separators) make the frame malformed — strict by design.
bool tokenize(std::string_view Line, std::vector<std::string_view> &Toks) {
  Toks.clear();
  size_t Start = 0;
  while (Start <= Line.size()) {
    size_t Sp = Line.find(' ', Start);
    std::string_view Tok = Line.substr(
        Start, Sp == std::string_view::npos ? Line.size() - Start : Sp - Start);
    if (Tok.empty())
      return false;
    Toks.push_back(Tok);
    if (Sp == std::string_view::npos)
      break;
    Start = Sp + 1;
  }
  return !Toks.empty();
}

bool parseU64(std::string_view Tok, uint64_t &Out) {
  if (Tok.empty() || Tok.size() > 20)
    return false;
  auto [Ptr, Ec] =
      std::from_chars(Tok.data(), Tok.data() + Tok.size(), Out, 10);
  return Ec == std::errc() && Ptr == Tok.data() + Tok.size();
}

/// Tenant and program names: short identifiers safe to echo into
/// registry keys, stats payloads, and filenames.
bool validIdent(std::string_view Tok, size_t MaxBytes) {
  if (Tok.empty() || Tok.size() > MaxBytes)
    return false;
  for (char C : Tok) {
    bool Ok = (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
              (C >= '0' && C <= '9') || C == '_' || C == '.' || C == '-' ||
              C == ':';
    if (!Ok)
      return false;
  }
  return true;
}

Result<Request> badreq(std::string Code, std::string Detail) {
  return err(std::move(Code) + ": " + std::move(Detail));
}

} // namespace

//===----------------------------------------------------------------------===//
// FrameReader
//===----------------------------------------------------------------------===//

void FrameReader::append(std::string_view Bytes) {
  // Compact once the consumed prefix dominates, so long-lived
  // connections do not grow the buffer without bound.
  if (Pos > 4096 && Pos * 2 > Buf.size()) {
    Buf.erase(0, Pos);
    Pos = 0;
  }
  Buf.append(Bytes);
}

std::optional<std::string> FrameReader::takeLine() {
  size_t Nl = Buf.find('\n', Pos);
  if (Nl == std::string::npos)
    return std::nullopt;
  std::string Line = Buf.substr(Pos, Nl - Pos);
  Pos = Nl + 1;
  return Line;
}

std::optional<Result<Request>> FrameReader::next() {
  // Resync mode: a prior frame was malformed mid-stream (over-long line
  // or bad payload terminator, both already reported). Silently discard
  // up to and including the next newline, then parse normally.
  if (SkipLine) {
    size_t Nl = Buf.find('\n', Pos);
    if (Nl == std::string::npos) {
      Pos = Buf.size();
      return std::nullopt;
    }
    Pos = Nl + 1;
    SkipLine = false;
  }

  size_t Nl = Buf.find('\n', Pos);
  if (Nl == std::string::npos) {
    if (Buf.size() - Pos > Limits.MaxLineBytes) {
      // No newline within the line cap: report once, then resync.
      Pos = Buf.size();
      SkipLine = true;
      return badreq("bad-frame", "header line exceeds " +
                                     std::to_string(Limits.MaxLineBytes) +
                                     " bytes");
    }
    return std::nullopt; // Incomplete header; read more.
  }

  std::string_view Line(Buf.data() + Pos, Nl - Pos);

  std::vector<std::string_view> T;
  if (!tokenize(Line, T)) {
    Pos = Nl + 1;
    return badreq("bad-frame", "empty or malformed header line");
  }
  if (T[0] != ProtocolTag) {
    Pos = Nl + 1;
    return badreq("bad-version",
                  "expected '" + std::string(ProtocolTag) + "', got '" +
                      std::string(T[0]) + "'");
  }
  if (T.size() < 2) {
    Pos = Nl + 1;
    return badreq("bad-frame", "missing command");
  }
  std::string_view Cmd = T[1];

  if (Cmd == "COMPILE") {
    if (T.size() != 5) {
      Pos = Nl + 1;
      return badreq("bad-arg", "COMPILE takes <tenant> <name> <nbytes>");
    }
    if (!validIdent(T[2], Limits.MaxTokenBytes)) {
      Pos = Nl + 1;
      return badreq("bad-tenant", std::string(T[2]));
    }
    if (!validIdent(T[3], Limits.MaxTokenBytes)) {
      Pos = Nl + 1;
      return badreq("bad-name", std::string(T[3]));
    }
    uint64_t N = 0;
    if (!parseU64(T[4], N)) {
      Pos = Nl + 1;
      return badreq("bad-length", std::string(T[4]));
    }
    if (N > Limits.MaxSourceBytes) {
      // Consume the header and resync past the (unbuffered) payload by
      // line discipline: the payload plus its terminator get skipped as
      // one over-long "line". That keeps memory bounded by design.
      Pos = Nl + 1;
      SkipLine = true;
      return badreq("payload-too-large",
                    std::to_string(N) + " > " +
                        std::to_string(Limits.MaxSourceBytes));
    }
    // Whole frame = header + payload + '\n'. Do not consume the header
    // until all of it is buffered.
    size_t PayloadStart = Nl + 1;
    if (Buf.size() < PayloadStart + N + 1)
      return std::nullopt;
    if (Buf[PayloadStart + N] != '\n') {
      Pos = PayloadStart + N;
      SkipLine = true;
      return badreq("bad-frame", "payload not terminated by newline");
    }
    Request R;
    R.K = Request::Kind::Compile;
    R.Tenant.assign(T[2]);
    R.Name.assign(T[3]);
    R.Source = Buf.substr(PayloadStart, N);
    Pos = PayloadStart + N + 1;
    return Result<Request>(std::move(R));
  }

  // Every remaining command is a single header line; consume it now.
  Pos = Nl + 1;

  if (Cmd == "RUN") {
    if (T.size() < 4 || T.size() > 6)
      return badreq("bad-arg", "RUN takes <tenant> <name> [backend] [fuel]");
    if (!validIdent(T[2], Limits.MaxTokenBytes))
      return badreq("bad-tenant", std::string(T[2]));
    if (!validIdent(T[3], Limits.MaxTokenBytes))
      return badreq("bad-name", std::string(T[3]));
    Request R;
    R.K = Request::Kind::Run;
    R.Tenant.assign(T[2]);
    R.Name.assign(T[3]);
    if (T.size() >= 5) {
      R.B = parseBackendToken(T[4]);
      if (!R.B)
        return badreq("bad-arg",
                      "unknown backend '" + std::string(T[4]) +
                          "' (tree|machine|bytecode)");
    }
    if (T.size() == 6) {
      uint64_t F = 0;
      if (!parseU64(T[5], F) || F == 0)
        return badreq("bad-arg", "fuel must be a positive integer, got '" +
                                     std::string(T[5]) + "'");
      R.Fuel = F;
    }
    return Result<Request>(std::move(R));
  }

  if (Cmd == "STATS") {
    if (T.size() != 3)
      return badreq("bad-arg", "STATS takes <tenant>");
    if (T[2] != "*" && !validIdent(T[2], Limits.MaxTokenBytes))
      return badreq("bad-tenant", std::string(T[2]));
    Request R;
    R.K = Request::Kind::Stats;
    R.Tenant.assign(T[2]);
    return Result<Request>(std::move(R));
  }

  if (Cmd == "EVICT") {
    if (T.size() > 4)
      return badreq("bad-arg", "EVICT takes [max-entries] [max-bytes]");
    Request R;
    R.K = Request::Kind::Evict;
    if (T.size() >= 3) {
      uint64_t N = 0;
      if (!parseU64(T[2], N))
        return badreq("bad-arg", std::string(T[2]));
      R.EvictMaxEntries = N;
    }
    if (T.size() == 4) {
      uint64_t N = 0;
      if (!parseU64(T[3], N))
        return badreq("bad-arg", std::string(T[3]));
      R.EvictMaxBytes = N;
    }
    return Result<Request>(std::move(R));
  }

  if (Cmd == "SHUTDOWN") {
    if (T.size() != 2)
      return badreq("bad-arg", "SHUTDOWN takes no arguments");
    Request R;
    R.K = Request::Kind::Shutdown;
    return Result<Request>(std::move(R));
  }

  return badreq("unknown-command", std::string(Cmd));
}

//===----------------------------------------------------------------------===//
// ResponseReader
//===----------------------------------------------------------------------===//

void ResponseReader::append(std::string_view Bytes) {
  if (Pos > 4096 && Pos * 2 > Buf.size()) {
    Buf.erase(0, Pos);
    Pos = 0;
  }
  Buf.append(Bytes);
}

std::optional<Result<Response>> ResponseReader::next() {
  size_t Nl = Buf.find('\n', Pos);
  if (Nl == std::string::npos)
    return std::nullopt;

  std::string_view Line(Buf.data() + Pos, Nl - Pos);
  std::vector<std::string_view> T;
  if (!tokenize(Line, T) || T.size() != 3 || T[0] != ProtocolTag) {
    Pos = Nl + 1;
    return err("malformed response header '" + std::string(Line) + "'");
  }

  Response R;
  bool Known = false;
  for (Response::Status St :
       {Response::Status::Ok, Response::Status::Busy, Response::Status::Timeout,
        Response::Status::Error, Response::Status::BadRequest,
        Response::Status::Bye})
    if (T[1] == statusToken(St)) {
      R.St = St;
      Known = true;
      break;
    }
  if (!Known) {
    Pos = Nl + 1;
    return err("unknown response status '" + std::string(T[1]) + "'");
  }

  uint64_t N = 0;
  if (!parseU64(T[2], N) || N > MaxPayloadBytes) {
    Pos = Nl + 1;
    return err("bad response payload length '" + std::string(T[2]) + "'");
  }

  size_t PayloadStart = Nl + 1;
  if (Buf.size() < PayloadStart + N + 1)
    return std::nullopt; // Incomplete; read more.
  if (Buf[PayloadStart + N] != '\n') {
    Pos = PayloadStart + N;
    return err("response payload not terminated by newline");
  }
  R.Payload = Buf.substr(PayloadStart, N);
  Pos = PayloadStart + N + 1;
  return Result<Response>(std::move(R));
}
