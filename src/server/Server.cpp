//===- Server.cpp - levityd: multi-tenant compile-and-run server ----------===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "server/Server.h"
#include "server/Net.h"
#include "support/FileOps.h"

#include <istream>
#include <ostream>
#include <sstream>

using namespace levity;
using namespace levity::server;

Server::Server(ServerOptions O) : Opts(std::move(O)), S(Opts.Compile) {}

Server::~Server() {
  requestShutdown();
  if (AcceptThread.joinable())
    AcceptThread.join();
  {
    std::lock_guard<std::mutex> Lock(ConnM);
    for (std::thread &T : ConnThreads)
      if (T.joinable())
        T.join();
  }
  closeFd(ListenFd);
  if (!ListenPath.empty())
    support::removeFile(ListenPath);
}

//===----------------------------------------------------------------------===//
// Admission control
//===----------------------------------------------------------------------===//

bool Server::tryAdmit() {
  if (Opts.MaxQueueDepth == 0) {
    InFlight.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  size_t Cur = InFlight.load(std::memory_order_relaxed);
  do {
    if (Cur >= Opts.MaxQueueDepth)
      return false;
  } while (!InFlight.compare_exchange_weak(Cur, Cur + 1,
                                           std::memory_order_relaxed));
  return true;
}

//===----------------------------------------------------------------------===//
// Request execution
//===----------------------------------------------------------------------===//

std::optional<std::string>
Server::lookupProgram(const std::string &Tenant,
                      const std::string &Name) const {
  std::lock_guard<std::mutex> Lock(RegM);
  auto TIt = Programs.find(Tenant);
  if (TIt == Programs.end())
    return std::nullopt;
  auto PIt = TIt->second.find(Name);
  if (PIt == TIt->second.end())
    return std::nullopt;
  return PIt->second;
}

Response Server::doCompile(const Request &R) {
  if (!tryAdmit()) {
    withTenant(R.Tenant, [](TenantStats &T) { ++T.Rejected; });
    return {Response::Status::Busy, "queue full"};
  }
  // Execute on the session's bounded pool, like every other request.
  driver::CompileOutcome Outcome;
  std::shared_ptr<driver::Compilation> Comp =
      S.compileAsync(R.Source, &Outcome).get();
  release();

  bool Ok = Comp->ok();
  withTenant(R.Tenant, [&](TenantStats &T) {
    ++T.CompileRequests;
    switch (Outcome) {
    case driver::CompileOutcome::FrontEnd:
      ++T.FrontEndCompiles;
      break;
    case driver::CompileOutcome::CacheHit:
      ++T.CacheHits;
      break;
    case driver::CompileOutcome::DiskHit:
      ++T.DiskHits;
      break;
    }
    if (!Ok)
      ++T.CompileErrors;
  });

  if (!Ok)
    return {Response::Status::Error, "compile-error: " + Comp->diagText()};

  {
    std::lock_guard<std::mutex> Lock(RegM);
    Programs[R.Tenant][R.Name] = R.Source; // Re-COMPILE overwrites.
  }
  std::string Payload = "outcome=";
  switch (Outcome) {
  case driver::CompileOutcome::FrontEnd:
    Payload += "front-end";
    break;
  case driver::CompileOutcome::CacheHit:
    Payload += "cache-hit";
    break;
  case driver::CompileOutcome::DiskHit:
    Payload += "disk-hit";
    break;
  }
  return {Response::Status::Ok, std::move(Payload)};
}

Response Server::foldRunResult(const std::string &Tenant,
                               const driver::RunResult &R,
                               driver::CompileOutcome Outcome) {
  withTenant(Tenant, [&](TenantStats &T) {
    switch (Outcome) {
    case driver::CompileOutcome::FrontEnd:
      ++T.FrontEndCompiles;
      break;
    case driver::CompileOutcome::CacheHit:
      ++T.CacheHits;
      break;
    case driver::CompileOutcome::DiskHit:
      ++T.DiskHits;
      break;
    }
    switch (R.Used) {
    case driver::Backend::TreeInterp:
      ++T.RunsTree;
      break;
    case driver::Backend::AbstractMachine:
      ++T.RunsMachine;
      break;
    case driver::Backend::Bytecode:
      ++T.RunsBytecode;
      break;
    }
    T.Steps += R.steps();
    T.Allocations += R.allocations();
    if (R.peakHeapCells() > T.PeakHeapCells)
      T.PeakHeapCells = R.peakHeapCells();
    if (R.peakHeapBytes() > T.PeakHeapBytes)
      T.PeakHeapBytes = R.peakHeapBytes();
    if (R.St == driver::RunResult::Status::OutOfFuel)
      ++T.Timeouts;
    else if (R.St != driver::RunResult::Status::Ok)
      ++T.RunErrors;
  });

  switch (R.St) {
  case driver::RunResult::Status::Ok:
    return {Response::Status::Ok, R.Display};
  case driver::RunResult::Status::OutOfFuel:
    // The fuel deadline fired. Pinned payload: clients branch on the
    // TIMEOUT status, not this text.
    return {Response::Status::Timeout, "out of fuel"};
  case driver::RunResult::Status::Bottom:
    return {Response::Status::Error, "bottom: " + R.Error};
  case driver::RunResult::Status::RuntimeError:
    return {Response::Status::Error, "runtime-error: " + R.Error};
  case driver::RunResult::Status::Unsupported:
    return {Response::Status::Error, "unsupported: " + R.Error};
  }
  return {Response::Status::Error, "internal: unclassified run result"};
}

void Server::doRunBatch(const std::vector<const Request *> &Batch,
                        std::vector<Response *> &Out) {
  // Admit + resolve each request first; the surviving subset goes to the
  // session pool as ONE runAll batch, so pipelined RUNs of distinct
  // programs execute in parallel.
  struct Slot {
    size_t Index;                    ///< Position in Batch/Out.
    driver::CompileOutcome Outcome;  ///< Written by runAll.
  };
  std::vector<Slot> Admitted;
  std::vector<driver::Session::RunRequest> Runs;
  Admitted.reserve(Batch.size());
  Runs.reserve(Batch.size());

  for (size_t I = 0; I != Batch.size(); ++I) {
    const Request &R = *Batch[I];
    if (!tryAdmit()) {
      withTenant(R.Tenant, [](TenantStats &T) { ++T.Rejected; });
      *Out[I] = {Response::Status::Busy, "queue full"};
      continue;
    }
    std::optional<std::string> Src = lookupProgram(R.Tenant, R.Name);
    if (!Src) {
      release();
      withTenant(R.Tenant, [](TenantStats &T) { ++T.UnknownPrograms; });
      *Out[I] = {Response::Status::Error,
                 "unknown-program: '" + R.Name + "' is not registered for "
                 "tenant '" + R.Tenant + "'"};
      continue;
    }
    Admitted.push_back({I, driver::CompileOutcome::CacheHit});
    driver::Session::RunRequest RR;
    RR.Source = std::move(*Src);
    RR.Name = R.Name;
    RR.B = R.B;
    if (R.Fuel)
      RR.Fuel = R.Fuel;
    else if (Opts.DefaultRunFuel)
      RR.Fuel = Opts.DefaultRunFuel;
    Runs.push_back(std::move(RR));
  }
  // Wire up outcome pointers only after Admitted stops growing (the
  // pointees must stay put across runAll).
  for (size_t J = 0; J != Runs.size(); ++J)
    Runs[J].Outcome = &Admitted[J].Outcome;

  if (Runs.empty())
    return;
  std::vector<driver::RunResult> Results = S.runAll(Runs);
  for (size_t J = 0; J != Runs.size(); ++J) {
    release();
    const Request &R = *Batch[Admitted[J].Index];
    *Out[Admitted[J].Index] =
        foldRunResult(R.Tenant, Results[J], Admitted[J].Outcome);
  }
}

namespace {
void statLine(std::ostringstream &OS, std::string_view Key, uint64_t V) {
  OS << Key << ' ' << V << '\n';
}
void tenantLines(std::ostringstream &OS, const TenantStats &T) {
  statLine(OS, "compile-requests", T.CompileRequests);
  statLine(OS, "front-end-compiles", T.FrontEndCompiles);
  statLine(OS, "cache-hits", T.CacheHits);
  statLine(OS, "disk-hits", T.DiskHits);
  statLine(OS, "compile-errors", T.CompileErrors);
  statLine(OS, "runs-tree", T.RunsTree);
  statLine(OS, "runs-machine", T.RunsMachine);
  statLine(OS, "runs-bytecode", T.RunsBytecode);
  statLine(OS, "run-errors", T.RunErrors);
  statLine(OS, "timeouts", T.Timeouts);
  statLine(OS, "rejected", T.Rejected);
  statLine(OS, "unknown-programs", T.UnknownPrograms);
  statLine(OS, "steps", T.Steps);
  statLine(OS, "allocs", T.Allocations);
  statLine(OS, "peak-heap-cells", T.PeakHeapCells);
  statLine(OS, "peak-heap-bytes", T.PeakHeapBytes);
}
} // namespace

Response Server::doStats(const Request &R) {
  std::ostringstream OS;
  if (R.Tenant == "*") {
    // The server-wide snapshot: the tenant ledgers summed, the session's
    // own counters, and the server-only counters. The sums reconcile
    // with the session counters by construction (every session use goes
    // through a tenant ledger).
    TenantStats Sum;
    size_t NumTenants = 0;
    {
      std::lock_guard<std::mutex> Lock(StatsM);
      NumTenants = Tenants.size();
      for (const auto &[Name, T] : Tenants) {
        Sum.CompileRequests += T.CompileRequests;
        Sum.FrontEndCompiles += T.FrontEndCompiles;
        Sum.CacheHits += T.CacheHits;
        Sum.DiskHits += T.DiskHits;
        Sum.CompileErrors += T.CompileErrors;
        Sum.RunsTree += T.RunsTree;
        Sum.RunsMachine += T.RunsMachine;
        Sum.RunsBytecode += T.RunsBytecode;
        Sum.RunErrors += T.RunErrors;
        Sum.Timeouts += T.Timeouts;
        Sum.Rejected += T.Rejected;
        Sum.UnknownPrograms += T.UnknownPrograms;
        Sum.Steps += T.Steps;
        Sum.Allocations += T.Allocations;
        // Peaks max together, not sum: the server-wide figure is the
        // worst single run any tenant saw.
        if (T.PeakHeapCells > Sum.PeakHeapCells)
          Sum.PeakHeapCells = T.PeakHeapCells;
        if (T.PeakHeapBytes > Sum.PeakHeapBytes)
          Sum.PeakHeapBytes = T.PeakHeapBytes;
      }
    }
    statLine(OS, "tenants", NumTenants);
    statLine(OS, "bad-requests", badRequests());
    statLine(OS, "in-flight", inFlight());
    tenantLines(OS, Sum);
    driver::Session::Stats St = S.stats();
    statLine(OS, "session-compilations", St.Compilations);
    statLine(OS, "session-cache-hits", St.CacheHits);
    statLine(OS, "session-evictions", St.Evictions);
    statLine(OS, "session-disk-hits", St.DiskHits);
    statLine(OS, "session-disk-misses", St.DiskMisses);
    statLine(OS, "session-disk-evictions", St.DiskEvictions);
  } else {
    tenantLines(OS, tenantStats(R.Tenant));
  }
  return {Response::Status::Ok, OS.str()};
}

Response Server::doEvict(const Request &R) {
  size_t MaxEntries = static_cast<size_t>(
      R.EvictMaxEntries.value_or(Opts.Compile.MaxStoredArtifacts));
  uint64_t MaxBytes = R.EvictMaxBytes.value_or(Opts.Compile.MaxStoreBytes);
  size_t N = S.evictStore(MaxEntries, MaxBytes);
  return {Response::Status::Ok, "evicted=" + std::to_string(N)};
}

std::vector<Response>
Server::process(const std::vector<Result<Request>> &Frames) {
  std::vector<Response> Out(Frames.size());

  // One pass, batching maximal runs of consecutive RUN frames.
  std::vector<const Request *> RunBatch;
  std::vector<Response *> RunOut;
  auto FlushRuns = [&] {
    if (RunBatch.empty())
      return;
    doRunBatch(RunBatch, RunOut);
    RunBatch.clear();
    RunOut.clear();
  };

  for (size_t I = 0; I != Frames.size(); ++I) {
    const Result<Request> &F = Frames[I];
    if (!F) {
      FlushRuns();
      BadRequests.fetch_add(1, std::memory_order_relaxed);
      Out[I] = {Response::Status::BadRequest, F.error()};
      continue;
    }
    const Request &R = *F;
    if (R.K == Request::Kind::Run) {
      RunBatch.push_back(&R);
      RunOut.push_back(&Out[I]);
      continue;
    }
    FlushRuns();
    switch (R.K) {
    case Request::Kind::Compile:
      Out[I] = doCompile(R);
      break;
    case Request::Kind::Stats:
      Out[I] = doStats(R);
      break;
    case Request::Kind::Evict:
      Out[I] = doEvict(R);
      break;
    case Request::Kind::Shutdown:
      requestShutdown();
      Out[I] = {Response::Status::Bye, "shutting down"};
      break;
    case Request::Kind::Run:
      break; // Handled above.
    }
  }
  FlushRuns();
  return Out;
}

Response Server::handle(const Request &R) {
  std::vector<Result<Request>> Frames;
  Frames.emplace_back(R);
  return process(Frames).front();
}

//===----------------------------------------------------------------------===//
// Transports
//===----------------------------------------------------------------------===//

void Server::serveStream(std::istream &In, std::ostream &Out) {
  FrameReader Reader(Opts.Limits);
  std::string Line;
  std::vector<Result<Request>> Frames;

  while (!shutdownRequested() && std::getline(In, Line)) {
    Reader.append(Line);
    Reader.append("\n");
    // Slurp whatever further input is already buffered so pipelined RUN
    // frames reach process() as one batch.
    while (In.rdbuf()->in_avail() > 0 && std::getline(In, Line)) {
      Reader.append(Line);
      Reader.append("\n");
    }

    Frames.clear();
    while (std::optional<Result<Request>> F = Reader.next())
      Frames.push_back(std::move(*F));
    if (Frames.empty())
      continue; // Incomplete frame (e.g. a COMPILE payload mid-flight).

    bool Bye = false;
    for (const Response &R : process(Frames)) {
      Out << formatResponse(R);
      Bye = Bye || R.St == Response::Status::Bye;
    }
    Out.flush();
    if (Bye)
      break;
  }
}

void Server::serveFd(int Fd) {
  FrameReader Reader(Opts.Limits);
  char Buf[16384];
  std::vector<Result<Request>> Frames;

  for (;;) {
    // Drain every complete frame before touching the fd again.
    Frames.clear();
    while (std::optional<Result<Request>> F = Reader.next())
      Frames.push_back(std::move(*F));
    if (!Frames.empty()) {
      std::string Wire;
      bool Bye = false;
      for (const Response &R : process(Frames)) {
        Wire += formatResponse(R);
        Bye = Bye || R.St == Response::Status::Bye;
      }
      if (!writeAll(Fd, Wire) || Bye)
        return;
      continue;
    }

    if (shutdownRequested())
      return;
    Result<size_t> N = readSomeWithTimeout(Fd, Buf, sizeof(Buf), 200);
    if (!N)
      return; // Read error: drop the connection.
    if (*N == SIZE_MAX)
      continue; // Poll timeout: re-check the shutdown flag.
    if (*N == 0)
      return; // Orderly EOF.
    Reader.append(std::string_view(Buf, *N));
    // Opportunistically slurp bytes that are already queued (0ms poll)
    // so a burst of pipelined frames lands in one batch.
    for (;;) {
      Result<size_t> More = readSomeWithTimeout(Fd, Buf, sizeof(Buf), 0);
      if (!More || *More == SIZE_MAX || *More == 0)
        break;
      Reader.append(std::string_view(Buf, *More));
    }
  }
}

Result<bool> Server::listenUnix(const std::string &Path) {
  Result<int> Fd = unixListen(Path);
  if (!Fd)
    return err(Fd.error());
  ListenFd = *Fd;
  ListenPath = Path;
  AcceptThread = std::thread([this] { acceptLoop(); });
  return true;
}

void Server::acceptLoop() {
  while (!shutdownRequested()) {
    Result<int> Fd = acceptWithTimeout(ListenFd, 200);
    if (!Fd)
      return; // Listener failed (or was closed under us).
    if (*Fd < 0)
      continue; // Timeout: re-check the shutdown flag.
    int Conn = *Fd;
    std::lock_guard<std::mutex> Lock(ConnM);
    ConnThreads.emplace_back([this, Conn] {
      serveFd(Conn);
      closeFd(Conn);
    });
  }
}

//===----------------------------------------------------------------------===//
// Lifecycle and introspection
//===----------------------------------------------------------------------===//

void Server::requestShutdown() {
  {
    std::lock_guard<std::mutex> Lock(ShutdownM);
    Shutdown.store(true, std::memory_order_release);
  }
  ShutdownCV.notify_all();
}

void Server::waitForShutdown() {
  std::unique_lock<std::mutex> Lock(ShutdownM);
  ShutdownCV.wait(Lock, [this] { return shutdownRequested(); });
}

TenantStats Server::tenantStats(std::string_view Tenant) const {
  std::lock_guard<std::mutex> Lock(StatsM);
  auto It = Tenants.find(std::string(Tenant));
  return It == Tenants.end() ? TenantStats() : It->second;
}

std::vector<std::pair<std::string, TenantStats>>
Server::allTenantStats() const {
  std::lock_guard<std::mutex> Lock(StatsM);
  return {Tenants.begin(), Tenants.end()};
}
