//===- Protocol.h - The levityd line protocol (LEVP/1) ----------*- C++ -*-===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The wire protocol between levityd (server/Server.h) and its clients:
/// a line-oriented, versioned request/response protocol with
/// length-prefixed payloads and strict parse errors (docs/SERVER.md is
/// the normative spec).
///
/// Every frame starts with the protocol version tag `LEVP/1`. Requests:
///
/// \code
///   LEVP/1 COMPILE <tenant> <name> <nbytes>\n<nbytes of source>\n
///   LEVP/1 RUN <tenant> <name> [tree|machine|bytecode] [fuel]\n
///   LEVP/1 STATS <tenant>\n            ("*" = the server-wide snapshot)
///   LEVP/1 EVICT [max-entries] [max-bytes]\n
///   LEVP/1 SHUTDOWN\n
/// \endcode
///
/// Responses are uniformly length-prefixed so clients never need to
/// guess where a payload ends:
///
/// \code
///   LEVP/1 <OK|BUSY|TIMEOUT|ERROR|BADREQ|BYE> <nbytes>\n<payload>\n
/// \endcode
///
/// Parsing is *strict*: a malformed frame never executes anything — it
/// produces a `BADREQ <code>: <detail>` response with a stable error
/// code (bad-version, unknown-command, bad-tenant, bad-name, bad-arg,
/// bad-length, payload-too-large, bad-frame) and the reader resyncs at
/// the next line boundary.
///
/// FrameReader/ResponseReader are incremental: feed them whatever bytes
/// arrived (a socket read, half a line, ten pipelined frames) and drain
/// complete frames one at a time. The server drains *all* buffered
/// frames before executing, which is what lets it batch pipelined RUNs
/// through Session::runAll.
///
//===----------------------------------------------------------------------===//

#ifndef LEVITY_SERVER_PROTOCOL_H
#define LEVITY_SERVER_PROTOCOL_H

#include "driver/Session.h"
#include "support/Result.h"

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace levity {
namespace server {

/// The version tag every frame must lead with.
inline constexpr std::string_view ProtocolTag = "LEVP/1";

/// One parsed client request.
struct Request {
  enum class Kind : uint8_t {
    Compile,  ///< Register + compile a named program for a tenant.
    Run,      ///< Evaluate a previously compiled program.
    Stats,    ///< Per-tenant (or "*" server-wide) counter snapshot.
    Evict,    ///< Enforce the on-disk store budgets now.
    Shutdown  ///< Stop the server after draining in-flight work.
  };

  Kind K = Kind::Run;
  std::string Tenant; ///< Compile/Run/Stats ("*" only for Stats).
  std::string Name;   ///< Compile/Run: the program's registry name.
  std::string Source; ///< Compile: the program text (the payload).
  std::optional<driver::Backend> B; ///< Run: requested backend.
  std::optional<uint64_t> Fuel;     ///< Run: step budget (the deadline).
  /// Evict: explicit budgets; absent = the server's configured ones.
  std::optional<uint64_t> EvictMaxEntries;
  std::optional<uint64_t> EvictMaxBytes;
};

/// One server response.
struct Response {
  enum class Status : uint8_t {
    Ok,         ///< Request succeeded; payload is the result.
    Busy,       ///< Admission control rejected the request (retry later).
    Timeout,    ///< The run exhausted its fuel deadline.
    Error,      ///< Compile/run failed; payload is `<category>: <detail>`.
    BadRequest, ///< Frame failed strict parsing; payload is the code.
    Bye         ///< Acknowledges SHUTDOWN; the connection is closing.
  };
  Status St = Status::Error;
  std::string Payload;

  bool ok() const { return St == Status::Ok; }
};

/// Canonical wire token for a response status ("OK", "BUSY", …).
std::string_view statusToken(Response::Status St);
/// Canonical wire token for a backend ("tree", "machine", "bytecode").
std::string_view backendToken(driver::Backend B);
/// Parses a backend token; nullopt for anything else.
std::optional<driver::Backend> parseBackendToken(std::string_view Tok);

/// Renders \p R as one wire frame (header line, payload, trailing '\n').
std::string formatRequest(const Request &R);
/// Renders \p R as one wire frame.
std::string formatResponse(const Response &R);

/// Size limits a reader enforces *before* executing anything.
struct FrameLimits {
  size_t MaxLineBytes = 4096;        ///< Header-line cap (resync beyond).
  size_t MaxSourceBytes = 1u << 20;  ///< COMPILE payload cap.
  size_t MaxTokenBytes = 64;         ///< Tenant/name length cap.
};

/// Incremental request parser: append() raw bytes, then drain next()
/// until it returns nullopt (frame incomplete — read more bytes).
/// A returned error is a *parse* error for exactly one malformed frame;
/// the reader has already resynced and may be drained further.
class FrameReader {
public:
  explicit FrameReader(FrameLimits L = {}) : Limits(L) {}

  /// Feeds raw connection bytes into the reader.
  void append(std::string_view Bytes);

  /// Extracts the next complete frame: a parsed Request, a parse error
  /// (the BADREQ text, code-prefixed), or nullopt when the buffered
  /// bytes do not yet hold a whole frame.
  std::optional<Result<Request>> next();

  /// True when bytes are buffered (a frame *may* be pending; next()
  /// decides). Used by the server to drain pipelined frames before
  /// blocking in read().
  bool hasBuffered() const { return Pos < Buf.size(); }

  const FrameLimits &limits() const { return Limits; }

private:
  std::optional<std::string> takeLine();

  FrameLimits Limits;
  std::string Buf;
  size_t Pos = 0;       ///< Consumed prefix of Buf.
  bool SkipLine = false; ///< Resync mode after an over-long line.
};

/// Incremental response parser (the client half); same discipline as
/// FrameReader. An error here means the *server* sent a malformed frame
/// — clients treat it as a protocol error and drop the connection.
class ResponseReader {
public:
  explicit ResponseReader(size_t MaxPayloadBytes = 1u << 20)
      : MaxPayloadBytes(MaxPayloadBytes) {}

  void append(std::string_view Bytes);
  std::optional<Result<Response>> next();
  bool hasBuffered() const { return Pos < Buf.size(); }

private:
  size_t MaxPayloadBytes;
  std::string Buf;
  size_t Pos = 0;
};

} // namespace server
} // namespace levity

#endif // LEVITY_SERVER_PROTOCOL_H
