//===- LoadGen.cpp - Client-side load generator for levityd ---------------===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "server/LoadGen.h"
#include "server/Net.h"

#include <algorithm>
#include <charconv>
#include <chrono>
#include <cmath>
#include <limits>
#include <sstream>
#include <thread>

using namespace levity;
using namespace levity::server;

std::vector<WorkProgram> server::makeWorkload(size_t Count) {
  std::vector<WorkProgram> Work;
  Work.reserve(Count);
  for (size_t I = 0; I != Count; ++I) {
    // Program I sums 1..50+I with an unboxed accumulator loop, so every
    // program has distinct source, a distinct name, and a known answer.
    // The answer is bound to the program's own name: RUN evaluates the
    // global named like the registered program.
    int64_t N = 50 + static_cast<int64_t>(I);
    std::string NS = std::to_string(N);
    WorkProgram P;
    P.Name = "p" + std::to_string(I);
    P.Source = "sumAcc :: Int# -> Int# -> Int# ; "
               "sumAcc acc n = case n of { 0# -> acc ; _ -> "
               "sumAcc (acc +# n) (n -# 1#) } ; " +
               P.Name + " = sumAcc 0# " + NS + "#";
    P.Expected = N * (N + 1) / 2;
    Work.push_back(std::move(P));
  }
  return Work;
}

std::optional<int64_t> server::extractInt(std::string_view Display) {
  for (size_t I = 0; I != Display.size(); ++I) {
    bool Neg = Display[I] == '-' && I + 1 < Display.size() &&
               std::isdigit(static_cast<unsigned char>(Display[I + 1]));
    if (!Neg && !std::isdigit(static_cast<unsigned char>(Display[I])))
      continue;
    int64_t V = 0;
    const char *First = Display.data() + I;
    const char *Last = Display.data() + Display.size();
    auto [Ptr, Ec] = std::from_chars(First, Last, V);
    if (Ec != std::errc())
      return std::nullopt;
    (void)Ptr;
    return V;
  }
  return std::nullopt;
}

//===----------------------------------------------------------------------===//
// Clients
//===----------------------------------------------------------------------===//

Result<std::vector<Response>>
InProcessClient::exchange(const std::vector<Request> &Batch) {
  std::vector<Result<Request>> Frames;
  Frames.reserve(Batch.size());
  for (const Request &R : Batch)
    Frames.emplace_back(R);
  return S.process(Frames);
}

Result<std::unique_ptr<SocketClient>>
SocketClient::connect(const std::string &Path) {
  Result<int> Fd = unixConnect(Path);
  if (!Fd)
    return err(Fd.error());
  return std::unique_ptr<SocketClient>(new SocketClient(*Fd));
}

SocketClient::~SocketClient() { closeFd(Fd); }

Result<std::vector<Response>>
SocketClient::exchange(const std::vector<Request> &Batch) {
  std::string Wire;
  for (const Request &R : Batch)
    Wire += formatRequest(R);
  Result<bool> W = writeAll(Fd, Wire);
  if (!W)
    return err(W.error());

  std::vector<Response> Out;
  Out.reserve(Batch.size());
  char Buf[16384];
  while (Out.size() != Batch.size()) {
    while (Out.size() != Batch.size()) {
      std::optional<Result<Response>> F = Reader.next();
      if (!F)
        break;
      if (!*F)
        return err("malformed server frame: " + F->error());
      Out.push_back(std::move(**F));
    }
    if (Out.size() == Batch.size())
      break;
    Result<size_t> N = readSomeWithTimeout(Fd, Buf, sizeof(Buf), 30000);
    if (!N)
      return err(N.error());
    if (*N == SIZE_MAX)
      return err("timed out waiting for a response");
    if (*N == 0)
      return err("connection closed mid-exchange");
    Reader.append(std::string_view(Buf, *N));
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// The load run
//===----------------------------------------------------------------------===//

namespace {

using Clock = std::chrono::steady_clock;

double microsSince(Clock::time_point T0) {
  return std::chrono::duration<double, std::micro>(Clock::now() - T0)
      .count();
}

// Expectation sentinels for one request.
constexpr int64_t ExpectNothing = std::numeric_limits<int64_t>::min();
constexpr int64_t ExpectTimeout = std::numeric_limits<int64_t>::max();

struct ClientState {
  LoadReport R;
  std::vector<double> LatMicros;
};

/// Folds one terminal (non-BUSY) response into the ledger.
void classify(ClientState &St, const Response &Resp, int64_t Expect) {
  ++St.R.Requests;
  switch (Resp.St) {
  case Response::Status::Ok:
    ++St.R.Ok;
    if (Expect == ExpectTimeout) {
      ++St.R.WrongAnswers; // The fuel deadline should have fired.
    } else if (Expect != ExpectNothing) {
      std::optional<int64_t> Got = extractInt(Resp.Payload);
      if (!Got || *Got != Expect)
        ++St.R.WrongAnswers;
    }
    break;
  case Response::Status::Timeout:
    ++St.R.Timeouts;
    if (Expect != ExpectTimeout)
      ++St.R.Errors; // A full-fuel run must never time out.
    break;
  case Response::Status::Error:
  case Response::Status::BadRequest:
    ++St.R.Errors;
    break;
  case Response::Status::Busy:
  case Response::Status::Bye:
    // Busy is handled by the retry loop before classify; Bye never
    // answers load traffic.
    ++St.R.Errors;
    break;
  }
}

/// One pipelined batch with BUSY retries. Returns false on a protocol
/// failure (the client thread abandons its run).
bool exchangeBatch(Client &Cl, ClientState &St,
                   const std::vector<Request> &Batch,
                   const std::vector<int64_t> &Expect,
                   const LoadOptions &Opts) {
  Clock::time_point T0 = Clock::now();
  Result<std::vector<Response>> RR = Cl.exchange(Batch);
  if (!RR || RR->size() != Batch.size()) {
    ++St.R.ProtocolErrors;
    return false;
  }
  double Per = microsSince(T0) / static_cast<double>(Batch.size());

  for (size_t I = 0; I != Batch.size(); ++I) {
    St.LatMicros.push_back(Per);
    Response Resp = (*RR)[I];
    size_t Attempts = 0;
    while (Resp.St == Response::Status::Busy) {
      ++St.R.Busy;
      ++St.R.Requests;
      if (++Attempts > Opts.BusyRetries) {
        ++St.R.BusyGiveUps;
        break;
      }
      // Back off briefly so admitted work can drain.
      if (Attempts > 4)
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      else
        std::this_thread::yield();
      Clock::time_point R0 = Clock::now();
      Result<std::vector<Response>> Retry = Cl.exchange({Batch[I]});
      if (!Retry || Retry->size() != 1) {
        ++St.R.ProtocolErrors;
        return false;
      }
      St.LatMicros.push_back(microsSince(R0));
      Resp = (*Retry)[0];
    }
    if (Resp.St != Response::Status::Busy)
      classify(St, Resp, Expect[I]);
  }
  return true;
}

void clientThread(size_t Index, Client &Cl,
                  const std::vector<WorkProgram> &Work,
                  const LoadOptions &Opts, ClientState &St) {
  static constexpr driver::Backend Backends[] = {
      driver::Backend::TreeInterp, driver::Backend::AbstractMachine,
      driver::Backend::Bytecode};

  std::vector<Request> Batch;
  std::vector<int64_t> Expect;
  auto Flush = [&]() -> bool {
    if (Batch.empty())
      return true;
    bool Ok = exchangeBatch(Cl, St, Batch, Expect, Opts);
    Batch.clear();
    Expect.clear();
    return Ok;
  };
  auto Push = [&](Request R, int64_t E) -> bool {
    Batch.push_back(std::move(R));
    Expect.push_back(E);
    return Batch.size() < std::max<size_t>(1, Opts.PipelineDepth) ||
           Flush();
  };
  std::string Tenant = "t" + std::to_string(Index % 4); // A few tenants.

  // Registration: COMPILE every workload program (cold for whichever
  // client gets there first; warm cache/disk hits for the rest).
  for (const WorkProgram &P : Work) {
    Request R;
    R.K = Request::Kind::Compile;
    R.Tenant = Tenant;
    R.Name = P.Name;
    R.Source = P.Source;
    if (!Push(std::move(R), ExpectNothing))
      return;
  }
  if (!Flush())
    return;

  // Traffic: the deterministic cold/warm/run/timeout mix.
  for (size_t J = 0; J != Opts.RequestsPerClient; ++J) {
    const WorkProgram &P = Work[(Index * 31 + J * 7) % Work.size()];
    Request R;
    R.Tenant = Tenant;
    int64_t E;
    if (Opts.TimeoutPeriod && J % Opts.TimeoutPeriod ==
                                  Opts.TimeoutPeriod - 1) {
      R.K = Request::Kind::Run;
      R.Name = P.Name;
      R.Fuel = 1; // Starved: must come back as a typed TIMEOUT.
      if (Opts.MixBackends)
        R.B = Backends[(Index + J) % 3];
      E = ExpectTimeout;
    } else if (Opts.RecompilePeriod && J % Opts.RecompilePeriod ==
                                           Opts.RecompilePeriod - 1) {
      R.K = Request::Kind::Compile;
      R.Name = P.Name;
      R.Source = P.Source;
      E = ExpectNothing;
    } else {
      R.K = Request::Kind::Run;
      R.Name = P.Name;
      if (Opts.MixBackends)
        R.B = Backends[(Index + J) % 3];
      E = P.Expected;
    }
    if (!Push(std::move(R), E))
      return;
  }
  Flush();
}

double percentile(std::vector<double> &Sorted, double P) {
  if (Sorted.empty())
    return 0;
  double Rank = P * static_cast<double>(Sorted.size() - 1);
  size_t Lo = static_cast<size_t>(Rank);
  size_t Hi = std::min(Lo + 1, Sorted.size() - 1);
  double Frac = Rank - static_cast<double>(Lo);
  return Sorted[Lo] + (Sorted[Hi] - Sorted[Lo]) * Frac;
}

} // namespace

LoadReport server::runLoad(const ClientFactory &Factory,
                           const LoadOptions &Opts) {
  std::vector<WorkProgram> Work = makeWorkload(std::max<size_t>(
      1, Opts.Programs));
  std::vector<ClientState> States(std::max<size_t>(1, Opts.Clients));

  Clock::time_point T0 = Clock::now();
  std::vector<std::thread> Threads;
  Threads.reserve(States.size());
  for (size_t C = 0; C != States.size(); ++C) {
    Threads.emplace_back([&, C] {
      std::unique_ptr<Client> Cl = Factory(C);
      if (!Cl) {
        ++States[C].R.ProtocolErrors;
        return;
      }
      clientThread(C, *Cl, Work, Opts, States[C]);
    });
  }
  for (std::thread &T : Threads)
    T.join();
  double WallMillis =
      std::chrono::duration<double, std::milli>(Clock::now() - T0).count();

  LoadReport R;
  std::vector<double> Lat;
  for (const ClientState &St : States) {
    R.Requests += St.R.Requests;
    R.Ok += St.R.Ok;
    R.Busy += St.R.Busy;
    R.BusyGiveUps += St.R.BusyGiveUps;
    R.Timeouts += St.R.Timeouts;
    R.Errors += St.R.Errors;
    R.WrongAnswers += St.R.WrongAnswers;
    R.ProtocolErrors += St.R.ProtocolErrors;
    Lat.insert(Lat.end(), St.LatMicros.begin(), St.LatMicros.end());
  }
  std::sort(Lat.begin(), Lat.end());
  R.WallMillis = WallMillis;
  R.P50Micros = percentile(Lat, 0.50);
  R.P99Micros = percentile(Lat, 0.99);
  R.ReqPerSec = WallMillis > 0
                    ? static_cast<double>(R.Requests) * 1000.0 / WallMillis
                    : 0;
  return R;
}

std::string server::formatReport(const LoadReport &R, bool Json) {
  std::ostringstream OS;
  if (Json) {
    OS << "{\"requests\": " << R.Requests << ", \"ok\": " << R.Ok
       << ", \"busy\": " << R.Busy
       << ", \"busy_give_ups\": " << R.BusyGiveUps
       << ", \"timeouts\": " << R.Timeouts << ", \"errors\": " << R.Errors
       << ", \"wrong_answers\": " << R.WrongAnswers
       << ", \"protocol_errors\": " << R.ProtocolErrors
       << ", \"wall_ms\": " << R.WallMillis
       << ", \"p50_us\": " << R.P50Micros
       << ", \"p99_us\": " << R.P99Micros
       << ", \"req_per_s\": " << R.ReqPerSec << "}";
    return OS.str();
  }
  OS << "requests        " << R.Requests << "\n"
     << "ok              " << R.Ok << "\n"
     << "busy            " << R.Busy << "\n"
     << "busy-give-ups   " << R.BusyGiveUps << "\n"
     << "timeouts        " << R.Timeouts << "\n"
     << "errors          " << R.Errors << "\n"
     << "wrong-answers   " << R.WrongAnswers << "\n"
     << "protocol-errors " << R.ProtocolErrors << "\n"
     << "wall-ms         " << R.WallMillis << "\n"
     << "p50-us          " << R.P50Micros << "\n"
     << "p99-us          " << R.P99Micros << "\n"
     << "req-per-s       " << R.ReqPerSec << "\n";
  return OS.str();
}
