//===- Net.cpp - Local-socket and fd I/O helpers for levityd --------------===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "server/Net.h"

#include <cerrno>
#include <cstdint>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#define LEVITY_HAVE_SOCKETS 1
#endif

using namespace levity;
using namespace levity::server;

bool server::haveSockets() {
#if defined(LEVITY_HAVE_SOCKETS)
  return true;
#else
  return false;
#endif
}

#if defined(LEVITY_HAVE_SOCKETS)

namespace {
Err sysErr(const char *What) {
  return err(std::string(What) + ": " + std::strerror(errno));
}
} // namespace

Result<int> server::unixListen(const std::string &Path, int Backlog) {
  if (Path.size() >= sizeof(sockaddr_un{}.sun_path))
    return err("socket path too long: " + Path);
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return sysErr("socket");
  ::unlink(Path.c_str()); // The daemon owns its socket path.
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  std::strncpy(Addr.sun_path, Path.c_str(), sizeof(Addr.sun_path) - 1);
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    Err E = sysErr("bind");
    closeFd(Fd);
    return E;
  }
  if (::listen(Fd, Backlog) != 0) {
    Err E = sysErr("listen");
    closeFd(Fd);
    return E;
  }
  return Fd;
}

Result<int> server::unixConnect(const std::string &Path) {
  if (Path.size() >= sizeof(sockaddr_un{}.sun_path))
    return err("socket path too long: " + Path);
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return sysErr("socket");
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  std::strncpy(Addr.sun_path, Path.c_str(), sizeof(Addr.sun_path) - 1);
  int Rc;
  do {
    Rc = ::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr));
  } while (Rc != 0 && errno == EINTR);
  if (Rc != 0) {
    Err E = sysErr("connect");
    closeFd(Fd);
    return E;
  }
  return Fd;
}

Result<int> server::acceptWithTimeout(int ListenFd, int TimeoutMillis) {
  pollfd P{ListenFd, POLLIN, 0};
  int Rc;
  do {
    Rc = ::poll(&P, 1, TimeoutMillis);
  } while (Rc < 0 && errno == EINTR);
  if (Rc < 0)
    return sysErr("poll");
  if (Rc == 0)
    return -1; // Timeout: the caller re-checks its shutdown flag.
  int Fd;
  do {
    Fd = ::accept(ListenFd, nullptr, nullptr);
  } while (Fd < 0 && errno == EINTR);
  if (Fd < 0)
    return sysErr("accept");
  return Fd;
}

Result<size_t> server::readSome(int Fd, char *Buf, size_t Max) {
  ssize_t N;
  do {
    N = ::read(Fd, Buf, Max);
  } while (N < 0 && errno == EINTR);
  if (N < 0)
    return sysErr("read");
  return static_cast<size_t>(N);
}

Result<size_t> server::readSomeWithTimeout(int Fd, char *Buf, size_t Max,
                                           int TimeoutMillis) {
  pollfd P{Fd, POLLIN, 0};
  int Rc;
  do {
    Rc = ::poll(&P, 1, TimeoutMillis);
  } while (Rc < 0 && errno == EINTR);
  if (Rc < 0)
    return sysErr("poll");
  if (Rc == 0)
    return SIZE_MAX; // Timeout sentinel; not EOF.
  return readSome(Fd, Buf, Max);
}

Result<bool> server::writeAll(int Fd, std::string_view Bytes) {
  while (!Bytes.empty()) {
    ssize_t N = ::write(Fd, Bytes.data(), Bytes.size());
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return sysErr("write");
    }
    Bytes.remove_prefix(static_cast<size_t>(N));
  }
  return true;
}

void server::closeFd(int Fd) {
  if (Fd >= 0)
    ::close(Fd);
}

#else // !LEVITY_HAVE_SOCKETS

Result<int> server::unixListen(const std::string &, int) {
  return err("unix-domain sockets unavailable on this platform");
}
Result<int> server::unixConnect(const std::string &) {
  return err("unix-domain sockets unavailable on this platform");
}
Result<int> server::acceptWithTimeout(int, int) {
  return err("unix-domain sockets unavailable on this platform");
}
Result<size_t> server::readSome(int, char *, size_t) {
  return err("fd I/O unavailable on this platform");
}
Result<size_t> server::readSomeWithTimeout(int, char *, size_t, int) {
  return err("fd I/O unavailable on this platform");
}
Result<bool> server::writeAll(int, std::string_view) {
  return err("fd I/O unavailable on this platform");
}
void server::closeFd(int) {}

#endif
