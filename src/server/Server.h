//===- Server.h - levityd: multi-tenant compile-and-run server --*- C++ -*-===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The long-lived front end over driver::Session — the ROADMAP's
/// "compile-and-run as a service" stage. One Server owns one shared
/// Session (in-memory compilation cache as L1, the on-disk `.levc`
/// store as L2) and serves any number of tenants over the LEVP/1 line
/// protocol (server/Protocol.h, spec in docs/SERVER.md):
///
///   * **COMPILE** registers a named program for a tenant and compiles
///     it through the shared caches; the response reports whether the
///     call hit the front end, the memory cache, or the disk store.
///   * **RUN** evaluates a registered program on a chosen backend with a
///     per-request *fuel deadline*: a runaway program stops itself after
///     that many backend steps and comes back as a typed `TIMEOUT`
///     response — a worker is never wedged.
///   * **STATS** returns the tenant's accounting ledger (TenantStats);
///     `STATS *` returns the server-wide snapshot, whose totals
///     reconcile exactly with Session::Stats.
///   * **EVICT** enforces the on-disk store budgets now.
///   * **SHUTDOWN** drains and stops the server.
///
/// Execution always lands on the session's bounded worker pool
/// (CompileOptions::AsyncWorkers): compiles go through compileAsync and
/// runs through runAll — pipelined RUN frames on one connection are
/// drained first and dispatched as a *single* runAll batch, so burst
/// traffic of distinct programs fans out across the pool. Admission
/// control caps the number of requests in flight across all connections
/// (ServerOptions::MaxQueueDepth); beyond the cap a request is rejected
/// immediately with a typed `BUSY` response instead of queueing without
/// bound.
///
/// Front ends: serveStream (the stdin/stdout REPL), serveFd /
/// listenUnix (a local Unix-domain socket, one thread per connection).
/// All of them funnel into the same process() path, so every transport
/// shares one admission gate and one accounting ledger.
///
//===----------------------------------------------------------------------===//

#ifndef LEVITY_SERVER_SERVER_H
#define LEVITY_SERVER_SERVER_H

#include "driver/Session.h"
#include "server/Protocol.h"

#include <atomic>
#include <condition_variable>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace levity {
namespace server {

/// Per-tenant accounting. Monotonic like Session::Stats; snapshot via
/// Server::tenantStats and read fields from the copy. The compile
/// outcome fields count *every* Session::compile performed on the
/// tenant's behalf (explicit COMPILEs and the cache lookups RUNs do),
/// so summing them across tenants reconciles with the session counters:
/// Σ FrontEndCompiles == Stats::Compilations, Σ CacheHits ==
/// Stats::CacheHits, Σ DiskHits == Stats::DiskHits.
struct TenantStats {
  uint64_t CompileRequests = 0; ///< COMPILE frames served (any outcome).
  uint64_t FrontEndCompiles = 0; ///< Compiles the front end performed.
  uint64_t CacheHits = 0;        ///< Served from the in-memory cache.
  uint64_t DiskHits = 0;         ///< Rehydrated from the `.levc` store.
  uint64_t CompileErrors = 0;    ///< COMPILEs whose program failed.
  uint64_t RunsTree = 0;     ///< Runs executed by the tree interpreter.
  uint64_t RunsMachine = 0;  ///< Runs executed by the M machine.
  uint64_t RunsBytecode = 0; ///< Runs executed by the bytecode VM.
  uint64_t RunErrors = 0;    ///< Runs ending in bottom/stuck/unsupported.
  uint64_t Timeouts = 0;     ///< Runs stopped by their fuel deadline.
  uint64_t Rejected = 0;     ///< Requests refused by admission control.
  uint64_t UnknownPrograms = 0; ///< RUNs naming an unregistered program.
  uint64_t Steps = 0;       ///< Cumulative RunResult::steps().
  uint64_t Allocations = 0; ///< Cumulative RunResult::allocations().
  /// High-water marks over the tenant's runs (max, not sum — peaks do
  /// not add across runs). In the executing backend's cell unit /
  /// bytes; a plateau here under a run loop is the memory-reclamation
  /// guarantee made observable at the server tier.
  uint64_t PeakHeapCells = 0; ///< Max RunResult::peakHeapCells() seen.
  uint64_t PeakHeapBytes = 0; ///< Max RunResult::peakHeapBytes() seen.
};

/// Knobs for a Server (one struct so levityd flags map 1:1).
struct ServerOptions {
  /// Session knobs: backend, fuel defaults, cache bounds, StorePath (the
  /// L2 store), AsyncWorkers (the bounded execution pool).
  driver::CompileOptions Compile;
  /// Admission cap: the maximum number of COMPILE/RUN requests admitted
  /// concurrently across every connection (queued or executing). Beyond
  /// it requests get an immediate typed BUSY response. 0 = unbounded.
  size_t MaxQueueDepth = 128;
  /// Default per-run fuel deadline applied when a RUN frame names none;
  /// 0 = use the session's per-backend fuel knobs unchanged.
  uint64_t DefaultRunFuel = 0;
  /// Wire-format limits enforced before any execution.
  FrameLimits Limits;
};

/// The multi-tenant compile-and-run server. Thread-safe throughout: any
/// number of connection threads (and direct handle() callers) may use
/// one Server concurrently.
class Server {
public:
  explicit Server(ServerOptions O);
  /// Stops the listener and joins every connection thread.
  ~Server();
  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  //===------------------------------------------------------------------===//
  // Request execution
  //===------------------------------------------------------------------===//

  /// Executes one parsed request through the full path (admission
  /// control included) and returns its response. The unit-test and
  /// embedding entry point; the transports below all reduce to this.
  Response handle(const Request &R);

  /// Executes a batch of drained frames in order, returning one response
  /// per frame (parse errors become BADREQ responses). Maximal runs of
  /// consecutive RUN frames are dispatched as one Session::runAll batch.
  std::vector<Response>
  process(const std::vector<Result<Request>> &Frames);

  //===------------------------------------------------------------------===//
  // Transports
  //===------------------------------------------------------------------===//

  /// The stdin/stdout line-protocol REPL: reads frames from \p In until
  /// EOF or SHUTDOWN, writing each response to \p Out (flushed per
  /// batch). Already-buffered pipelined frames are drained and executed
  /// as one batch.
  void serveStream(std::istream &In, std::ostream &Out);

  /// Serves one connection on \p Fd (same framing, EINTR-safe reads with
  /// periodic shutdown checks). Returns on EOF, error, or shutdown; the
  /// caller owns (and closes) the fd.
  void serveFd(int Fd);

  /// Starts the Unix-domain socket listener at \p Path: binds, listens,
  /// and spawns the accept loop (one thread per connection). Fails when
  /// sockets are unavailable or the path cannot be bound.
  Result<bool> listenUnix(const std::string &Path);

  //===------------------------------------------------------------------===//
  // Lifecycle
  //===------------------------------------------------------------------===//

  /// Asks the server to stop: in-flight requests finish, transports
  /// notice within their poll interval, waitForShutdown unblocks.
  /// (The SHUTDOWN request calls this.)
  void requestShutdown();
  /// True once SHUTDOWN (or requestShutdown) happened.
  bool shutdownRequested() const {
    return Shutdown.load(std::memory_order_acquire);
  }
  /// Blocks until shutdown is requested.
  void waitForShutdown();

  //===------------------------------------------------------------------===//
  // Introspection
  //===------------------------------------------------------------------===//

  /// Snapshot of one tenant's ledger (zeroes for an unknown tenant).
  TenantStats tenantStats(std::string_view Tenant) const;
  /// Snapshot of every tenant's ledger, sorted by tenant name.
  std::vector<std::pair<std::string, TenantStats>> allTenantStats() const;
  /// Malformed frames received (BADREQ responses sent), server-wide.
  uint64_t badRequests() const {
    return BadRequests.load(std::memory_order_relaxed);
  }
  /// Requests currently admitted (queued or executing).
  size_t inFlight() const { return InFlight.load(std::memory_order_relaxed); }

  /// The shared session behind the server (for embedding and tests).
  driver::Session &session() { return S; }
  const ServerOptions &options() const { return Opts; }

private:
  /// Admission control: reserves one in-flight slot, or refuses when the
  /// queue-depth cap is reached.
  bool tryAdmit();
  void release() { InFlight.fetch_sub(1, std::memory_order_relaxed); }

  Response doCompile(const Request &R);
  Response doStats(const Request &R);
  Response doEvict(const Request &R);
  /// Executes \p Batch (parallel slots of Requests/Responses): admitted
  /// RUNs go through one Session::runAll call; unknown programs and
  /// admission rejections are answered in place.
  void doRunBatch(const std::vector<const Request *> &Batch,
                  std::vector<Response *> &Out);

  /// Folds one finished run into its tenant's ledger and renders the
  /// protocol response.
  Response foldRunResult(const std::string &Tenant,
                         const driver::RunResult &R,
                         driver::CompileOutcome Outcome);

  /// Looks up a registered program's source. Empty optional = unknown.
  std::optional<std::string> lookupProgram(const std::string &Tenant,
                                           const std::string &Name) const;

  /// Mutates one tenant's ledger under StatsM.
  template <typename Fn> void withTenant(const std::string &Tenant, Fn F) {
    std::lock_guard<std::mutex> Lock(StatsM);
    F(Tenants[Tenant]);
  }

  void acceptLoop();

  ServerOptions Opts;
  driver::Session S;

  /// tenant → program name → source text. COMPILE registers; RUN
  /// resolves. Guarded by RegM.
  mutable std::mutex RegM;
  std::map<std::string, std::map<std::string, std::string>> Programs;

  mutable std::mutex StatsM;
  std::map<std::string, TenantStats> Tenants;
  std::atomic<uint64_t> BadRequests{0};

  std::atomic<size_t> InFlight{0};

  std::atomic<bool> Shutdown{false};
  std::mutex ShutdownM;
  std::condition_variable ShutdownCV;

  int ListenFd = -1;
  std::string ListenPath;
  std::thread AcceptThread;
  std::mutex ConnM;
  std::vector<std::thread> ConnThreads;
};

} // namespace server
} // namespace levity

#endif // LEVITY_SERVER_SERVER_H
