//===- Net.h - Local-socket and fd I/O helpers for levityd ------*- C++ -*-===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The thin POSIX layer under server/Server.h: Unix-domain listen/
/// connect/accept plus EINTR-hardened read/write loops. A long-lived
/// daemon takes signals as a matter of course, so *every* syscall here
/// retries EINTR — an interrupted read must never surface as a dropped
/// connection or a protocol error (the same discipline
/// support/FileOps.h applies to the artifact store).
///
/// On non-POSIX builds the socket entry points fail with a descriptive
/// error and the server degrades to its stdin/stdout REPL, which is
/// pure iostream.
///
//===----------------------------------------------------------------------===//

#ifndef LEVITY_SERVER_NET_H
#define LEVITY_SERVER_NET_H

#include "support/Result.h"

#include <string>
#include <string_view>

namespace levity {
namespace server {

/// True when this build has Unix-domain sockets (POSIX).
bool haveSockets();

/// Creates, binds, and listens on a Unix-domain socket at \p Path (an
/// existing socket file is unlinked first — levityd owns its path).
/// Returns the listening fd.
Result<int> unixListen(const std::string &Path, int Backlog = 64);

/// Connects to the Unix-domain socket at \p Path; returns the fd.
Result<int> unixConnect(const std::string &Path);

/// Waits up to \p TimeoutMillis for \p ListenFd to become acceptable,
/// then accepts. Returns -1 on timeout (no error) so callers can poll a
/// shutdown flag between waits; EINTR retries internally.
Result<int> acceptWithTimeout(int ListenFd, int TimeoutMillis);

/// Reads up to \p Max bytes into \p Buf, retrying EINTR. Returns the
/// byte count (0 = orderly EOF). Blocks until data, EOF, or error.
Result<size_t> readSome(int Fd, char *Buf, size_t Max);

/// Like readSome but gives up after \p TimeoutMillis with
/// a "timeout" sentinel: returns SIZE_MAX so callers can re-check
/// shutdown flags without treating the wait as EOF.
Result<size_t> readSomeWithTimeout(int Fd, char *Buf, size_t Max,
                                   int TimeoutMillis);

/// Writes all of \p Bytes, retrying EINTR and short writes.
Result<bool> writeAll(int Fd, std::string_view Bytes);

/// Closes \p Fd, retrying nothing (POSIX close must not be retried on
/// EINTR); no-op for negative fds.
void closeFd(int Fd);

} // namespace server
} // namespace levity

#endif // LEVITY_SERVER_NET_H
