//===- LoadGen.h - Client-side load generator for levityd -------*- C++ -*-===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The client half of the server stack: a deterministic multi-client
/// workload driver speaking LEVP/1, shared by examples/load_driver.cpp
/// (the CLI) and bench/bench_server.cpp (the recorded latency/throughput
/// trajectory), and reused by the server tests.
///
/// The workload is a family of *distinct* programs with known answers
/// (makeWorkload), so a run checks real results: every OK response is
/// verified against the program's expected value, and a mismatch is a
/// **WrongAnswer** — the one counter that must stay zero at any client
/// count. Traffic is a deterministic cold/warm/run mix per client
/// (registration COMPILEs, warm re-COMPILEs, RUNs rotating across the
/// three backends, optional fuel-starved RUNs that must come back as
/// typed TIMEOUTs), with pipelined batches to exercise the server's
/// runAll batching and BUSY-aware retries to exercise admission control.
///
/// Client is transport-neutral: InProcessClient calls straight into a
/// Server (no I/O — the benchmark path), SocketClient speaks the wire
/// protocol over a Unix-domain socket (the levityd path). Both go
/// through the same exchange() discipline, so the two load paths measure
/// the same protocol work.
///
//===----------------------------------------------------------------------===//

#ifndef LEVITY_SERVER_LOADGEN_H
#define LEVITY_SERVER_LOADGEN_H

#include "server/Protocol.h"
#include "server/Server.h"

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace levity {
namespace server {

/// One program of the canonical workload: a named source with a known
/// integer answer bound to a top-level global of the same name (RUN
/// evaluates the global named like the registered program).
struct WorkProgram {
  std::string Name;   ///< Registry name (unique within the workload).
  std::string Source; ///< Program text (unique, so compiles are real).
  int64_t Expected;   ///< Known value of `v`.
};

/// Builds \p Count distinct accumulator-loop programs (program i sums
/// 1..50+i, so sources, names, and answers all differ). Deterministic:
/// every call with the same count yields the same workload.
std::vector<WorkProgram> makeWorkload(size_t Count);

/// Extracts the first (possibly negative) integer from a rendered value
/// display — the backend-neutral way to check an answer ("5050#",
/// "5050", and "I#[5050]" all yield 5050). Nullopt when no digits.
std::optional<int64_t> extractInt(std::string_view Display);

/// A LEVP/1 client endpoint: one pipelined exchange of requests for
/// responses, in order. An error is a *protocol* failure (broken
/// connection, malformed server frame) — the load driver counts it and
/// abandons that client.
class Client {
public:
  virtual ~Client() = default;
  virtual Result<std::vector<Response>>
  exchange(const std::vector<Request> &Batch) = 0;
};

/// Calls straight into a Server (shared admission gate and ledgers, no
/// transport): the benchmark and unit-test client.
class InProcessClient : public Client {
public:
  explicit InProcessClient(Server &S) : S(S) {}
  Result<std::vector<Response>>
  exchange(const std::vector<Request> &Batch) override;

private:
  Server &S;
};

/// Speaks the wire protocol over a Unix-domain socket to a levityd.
class SocketClient : public Client {
public:
  /// Connects to the daemon's socket; fails when it is not listening.
  static Result<std::unique_ptr<SocketClient>>
  connect(const std::string &Path);
  ~SocketClient() override;
  Result<std::vector<Response>>
  exchange(const std::vector<Request> &Batch) override;

private:
  explicit SocketClient(int Fd) : Fd(Fd) {}
  int Fd;
  ResponseReader Reader;
};

/// Load-run knobs. The defaults are the CI smoke shape.
struct LoadOptions {
  size_t Clients = 8;            ///< Concurrent client threads.
  size_t RequestsPerClient = 200; ///< Traffic requests per client
                                  ///< (registration COMPILEs are extra).
  size_t Programs = 32;     ///< Workload size (shared by all clients).
  size_t PipelineDepth = 4; ///< RUNs sent per pipelined batch.
  /// Every Nth traffic request is a RUN with fuel 1: it must come back
  /// as a typed TIMEOUT (counted separately, never an error). 0 = never.
  size_t TimeoutPeriod = 16;
  /// Every Nth traffic request is a warm re-COMPILE. 0 = never.
  size_t RecompilePeriod = 5;
  size_t BusyRetries = 256; ///< Per-request retry budget on BUSY.
  bool MixBackends = true;  ///< Rotate tree/machine/bytecode; else default.
};

/// Aggregated outcome of one load run. clean() is the acceptance gate:
/// every answer right, every frame well-formed, no unexpected errors.
struct LoadReport {
  uint64_t Requests = 0;  ///< Traffic requests completed (incl. retries).
  uint64_t Ok = 0;        ///< OK responses.
  uint64_t Busy = 0;      ///< BUSY responses observed (before retry).
  uint64_t BusyGiveUps = 0; ///< Requests dropped after the retry budget.
  uint64_t Timeouts = 0;  ///< TIMEOUT responses (all expected ones).
  uint64_t Errors = 0;    ///< ERROR/BADREQ responses (always unexpected).
  uint64_t WrongAnswers = 0;   ///< OK responses with the wrong value.
  uint64_t ProtocolErrors = 0; ///< Broken exchanges (client abandoned).
  double WallMillis = 0;  ///< Whole run (registration + traffic).
  double P50Micros = 0;   ///< Median per-request latency.
  double P99Micros = 0;   ///< Tail per-request latency.
  double ReqPerSec = 0;   ///< Requests / wall time.

  bool clean() const {
    return WrongAnswers == 0 && ProtocolErrors == 0 && Errors == 0;
  }
};

/// Makes one Client per load thread; called once per client index (a
/// socket client per connection, or the same in-process server).
using ClientFactory = std::function<std::unique_ptr<Client>(size_t)>;

/// Runs the full deterministic load: every client registers its program
/// rotation, then issues its cold/warm/run/timeout mix, verifying every
/// answer. Thread-safe by construction (one Client per thread).
LoadReport runLoad(const ClientFactory &Factory, const LoadOptions &Opts);

/// Renders a report for humans (aligned key/value lines) or as a JSON
/// object (stable keys, for scripts).
std::string formatReport(const LoadReport &R, bool Json);

} // namespace server
} // namespace levity

#endif // LEVITY_SERVER_LOADGEN_H
