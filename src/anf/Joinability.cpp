//===- Joinability.cpp - Observational equivalence of M terms -------------===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "anf/Joinability.h"
#include "lcalc/Subst.h"

using namespace levity;
using namespace levity::anf;
using lcalc::LKind;
using lcalc::Type;
using mcalc::MachineOutcome;
using mcalc::MachineResult;
using mcalc::MVar;
using mcalc::Term;

const Type *JoinOracle::instantiate(const Type *Ty) {
  for (;;) {
    if (const auto *F = lcalc::dyn_cast<lcalc::ForAllType>(Ty)) {
      // Canonical instantiation: Int at TYPE P, Int# at TYPE I. A
      // rep-variable kind can only appear under an uninstantiated ∀r,
      // which instantiate() rewrites first (P), so this is exhaustive.
      const Type *Arg = nullptr;
      if (F->varKind() == LKind::typePtr())
        Arg = LC.intTy();
      else if (F->varKind() == LKind::typeInt())
        Arg = LC.intHashTy();
      else
        return Ty; // ∀α:TYPE r with r free — caller gives up.
      Ty = lcalc::substTypeInType(LC, F->body(), F->var(), Arg);
      continue;
    }
    if (const auto *F = lcalc::dyn_cast<lcalc::ForAllRepType>(Ty)) {
      Ty = lcalc::substRepInType(LC, F->body(), F->repVar(),
                                 lcalc::RuntimeRep::pointer());
      continue;
    }
    return Ty;
  }
}

const Term *JoinOracle::canonicalValue(const Type *Ty) {
  Ty = instantiate(Ty);
  switch (Ty->kind()) {
  case Type::TypeKind::Int:
    return MC.conLit(17);
  case Type::TypeKind::IntHash:
    return MC.lit(17);
  case Type::TypeKind::DoubleHash:
    return MC.dlit(17.0);
  case Type::TypeKind::Arrow: {
    const auto *A = lcalc::cast<lcalc::ArrowType>(Ty);
    const Term *Result = canonicalValue(A->result());
    if (!Result)
      return nullptr;
    // Parameter sort from the parameter type's top-level shape.
    const Type *Param = instantiate(A->param());
    MVar Y = lcalc::isa<lcalc::IntHashType>(Param)
                 ? MC.freshInt()
                 : (lcalc::isa<lcalc::DoubleHashType>(Param)
                        ? MC.freshDbl()
                        : MC.freshPtr());
    return MC.lam(Y, Result);
  }
  default:
    return nullptr;
  }
}

JoinResult JoinOracle::joinable(const Type *Ty, const Term *T1,
                                const Term *T2, unsigned Depth) {
  return joinableIn(Ty, T1, {}, T2, {}, Depth);
}

JoinResult JoinOracle::joinableIn(const Type *Ty, const Term *T1,
                                  mcalc::HeapMap H1, const Term *T2,
                                  mcalc::HeapMap H2, unsigned Depth) {
  MachineResult R1 = M.runWithHeap(T1, std::move(H1));
  MachineResult R2 = M.runWithHeap(T2, std::move(H2));

  if (R1.Status == MachineOutcome::Stuck)
    return {JoinVerdict::NotJoinable, "left term stuck: " + R1.StuckReason};
  if (R2.Status == MachineOutcome::Stuck)
    return {JoinVerdict::NotJoinable,
            "right term stuck: " + R2.StuckReason};
  if (R1.Status == MachineOutcome::OutOfFuel ||
      R2.Status == MachineOutcome::OutOfFuel)
    return {JoinVerdict::Unknown, "fuel exhausted"};

  if (R1.Status == MachineOutcome::Bottom ||
      R2.Status == MachineOutcome::Bottom) {
    if (R1.Status == R2.Status)
      return {JoinVerdict::Joinable, "both diverge"};
    return {JoinVerdict::NotJoinable, "one side diverges, the other not"};
  }

  const Term *V1 = R1.Value;
  const Term *V2 = R2.Value;
  const Type *Inst = instantiate(Ty);

  switch (Inst->kind()) {
  case Type::TypeKind::IntHash: {
    const auto *L1 = mcalc::dyn_cast<mcalc::LitTerm>(V1);
    const auto *L2 = mcalc::dyn_cast<mcalc::LitTerm>(V2);
    if (!L1 || !L2)
      return {JoinVerdict::NotJoinable, "expected literals at Int#"};
    if (L1->value() != L2->value())
      return {JoinVerdict::NotJoinable,
              "literals differ: " + std::to_string(L1->value()) + " vs " +
                  std::to_string(L2->value())};
    return {JoinVerdict::Joinable, ""};
  }
  case Type::TypeKind::DoubleHash: {
    const auto *L1 = mcalc::dyn_cast<mcalc::DLitTerm>(V1);
    const auto *L2 = mcalc::dyn_cast<mcalc::DLitTerm>(V2);
    if (!L1 || !L2)
      return {JoinVerdict::NotJoinable, "expected literals at Double#"};
    if (L1->value() != L2->value())
      return {JoinVerdict::NotJoinable,
              "literals differ: " + std::to_string(L1->value()) + " vs " +
                  std::to_string(L2->value())};
    return {JoinVerdict::Joinable, ""};
  }
  case Type::TypeKind::Int: {
    const auto *C1 = mcalc::dyn_cast<mcalc::ConLitTerm>(V1);
    const auto *C2 = mcalc::dyn_cast<mcalc::ConLitTerm>(V2);
    if (!C1 || !C2)
      return {JoinVerdict::NotJoinable, "expected I#[n] at Int"};
    if (C1->value() != C2->value())
      return {JoinVerdict::NotJoinable,
              "boxed values differ: " + std::to_string(C1->value()) +
                  " vs " + std::to_string(C2->value())};
    return {JoinVerdict::Joinable, ""};
  }
  case Type::TypeKind::Data: {
    // Same constructor tag, equal unboxed fields, and joinable pointer
    // fields (forced from each side's own heap).
    const auto *DT = lcalc::cast<lcalc::DataType>(Inst);
    const auto *C1 = mcalc::dyn_cast<mcalc::ConTerm>(V1);
    const auto *C2 = mcalc::dyn_cast<mcalc::ConTerm>(V2);
    if (!C1 || !C2)
      return {JoinVerdict::NotJoinable, "expected CON at data type"};
    if (C1->tag() != C2->tag())
      return {JoinVerdict::NotJoinable,
              "constructor tags differ: " + std::to_string(C1->tag()) +
                  " vs " + std::to_string(C2->tag())};
    if (C1->tag() >= DT->decl()->numCons() ||
        C1->args().size() != C2->args().size())
      return {JoinVerdict::NotJoinable, "constructor arity mismatch"};
    const lcalc::LDataCon &Con = DT->decl()->con(C1->tag());
    if (C1->args().size() != Con.arity())
      return {JoinVerdict::NotJoinable, "constructor arity mismatch"};
    for (size_t I = 0; I != C1->args().size(); ++I) {
      const mcalc::MAtom &A1 = C1->args()[I];
      const mcalc::MAtom &A2 = C2->args()[I];
      if (Con.FieldReps[I] != lcalc::ConcreteRep::P) {
        if (!A1.IsLit || !A2.IsLit)
          return {JoinVerdict::NotJoinable,
                  "unresolved unboxed constructor field"};
        bool Equal = A1.IsDbl ? A1.DblLit == A2.DblLit : A1.Lit == A2.Lit;
        if (!Equal)
          return {JoinVerdict::NotJoinable,
                  "constructor fields differ at index " +
                      std::to_string(I)};
        continue;
      }
      if (Depth == 0)
        return {JoinVerdict::Unknown, "probe depth exhausted"};
      // Force each side's boxed field in its own final heap.
      JoinResult Field =
          joinableIn(Con.Fields[I], MC.var(A1.Var), R1.FinalHeap,
                     MC.var(A2.Var), R2.FinalHeap, Depth - 1);
      if (Field.Verdict != JoinVerdict::Joinable)
        return Field;
    }
    return {JoinVerdict::Joinable, ""};
  }
  case Type::TypeKind::Arrow: {
    if (Depth == 0)
      return {JoinVerdict::Unknown, "probe depth exhausted"};
    const auto *A = lcalc::cast<lcalc::ArrowType>(Inst);
    const auto *L1 = mcalc::dyn_cast<mcalc::LamTerm>(V1);
    const auto *L2 = mcalc::dyn_cast<mcalc::LamTerm>(V2);
    if (!L1 || !L2)
      return {JoinVerdict::NotJoinable, "expected lambdas at arrow type"};

    const Type *Param = instantiate(A->param());
    if (lcalc::isa<lcalc::IntHashType>(Param)) {
      // Probe with a literal in an integer register, resuming from the
      // heaps the two values were computed in.
      const Term *P1 = MC.appLit(V1, 23);
      const Term *P2 = MC.appLit(V2, 23);
      return joinableIn(A->result(), P1, std::move(R1.FinalHeap), P2,
                        std::move(R2.FinalHeap), Depth - 1);
    }
    if (lcalc::isa<lcalc::DoubleHashType>(Param)) {
      const Term *P1 = MC.appDbl(V1, 23.0);
      const Term *P2 = MC.appDbl(V2, 23.0);
      return joinableIn(A->result(), P1, std::move(R1.FinalHeap), P2,
                        std::move(R2.FinalHeap), Depth - 1);
    }
    // Pointer argument: bind a canonical heap object and apply.
    const Term *ArgVal = canonicalValue(Param);
    if (!ArgVal)
      return {JoinVerdict::Unknown, "no canonical probe argument for " +
                                        Param->str()};
    // Wrap as: let p = <canonical> in <value> p, in the original heaps.
    MVar P = MC.freshPtr();
    const Term *P1 = MC.let(P, ArgVal, MC.appVar(V1, P));
    const Term *P2 = MC.let(P, ArgVal, MC.appVar(V2, P));
    return joinableIn(A->result(), P1, std::move(R1.FinalHeap), P2,
                      std::move(R2.FinalHeap), Depth - 1);
  }
  default:
    return {JoinVerdict::Unknown,
            "cannot observe at type " + Inst->str()};
  }
}
