//===- Joinability.h - Observational equivalence of M terms -----*- C++ -*-===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An executable approximation of the paper's joinability relation
/// t₁ ⇔ t₂ (Section 6.3): two M terms are joinable when they have a common
/// reduct for any stack and heap. Deciding that is undecidable in general;
/// this oracle compares *observations* instead, directed by the L type of
/// the original expression:
///
///   * at Int#, both must evaluate to the same literal;
///   * at Int, both must evaluate to I#[n] with the same n;
///   * at τ₁ → τ₂, both must evaluate to lambdas, which are probed with a
///     canonical argument of τ₁ and compared recursively at τ₂;
///   * at ∀-types, the quantifier is instantiated canonically (erasure
///     means the compiled term does not change);
///   * ⊥ agrees only with ⊥.
///
/// Probing depth is bounded; when the oracle cannot decide it reports
/// Unknown rather than guessing. The Simulation property test (Section
/// 6.3's theorem) drives this oracle over compiled reduction sequences.
///
//===----------------------------------------------------------------------===//

#ifndef LEVITY_ANF_JOINABILITY_H
#define LEVITY_ANF_JOINABILITY_H

#include "lcalc/Syntax.h"
#include "mcalc/Machine.h"

#include <string>

namespace levity {
namespace anf {

enum class JoinVerdict : uint8_t {
  Joinable,    ///< All observations agreed.
  NotJoinable, ///< Some observation differed (simulation failure).
  Unknown      ///< Ran out of probe depth/fuel before deciding.
};

struct JoinResult {
  JoinVerdict Verdict;
  std::string Detail;
};

/// Observation-based joinability oracle.
class JoinOracle {
public:
  JoinOracle(lcalc::LContext &LC, mcalc::MContext &MC)
      : LC(LC), MC(MC), M(MC) {}

  /// Compares \p T1 and \p T2 at L type \p Ty, probing functions at most
  /// \p Depth levels deep.
  JoinResult joinable(const lcalc::Type *Ty, const mcalc::Term *T1,
                      const mcalc::Term *T2, unsigned Depth = 3);

private:
  /// As joinable(), with explicit heaps (function probes resume from the
  /// heaps their values were computed in).
  JoinResult joinableIn(const lcalc::Type *Ty, const mcalc::Term *T1,
                        mcalc::HeapMap H1, const mcalc::Term *T2,
                        mcalc::HeapMap H2, unsigned Depth);
  /// Builds a canonical closed M value inhabiting \p Ty (for probing
  /// function arguments); null when no canonical value is known.
  const mcalc::Term *canonicalValue(const lcalc::Type *Ty);

  /// Strips quantifiers by canonical instantiation.
  const lcalc::Type *instantiate(const lcalc::Type *Ty);

  lcalc::LContext &LC;
  mcalc::MContext &MC;
  mcalc::Machine M;
};

} // namespace anf
} // namespace levity

#endif // LEVITY_ANF_JOINABILITY_H
