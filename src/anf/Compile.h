//===- Compile.h - Compilation of L into M (Figure 7) -----------*- C++ -*-===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The type-directed, type-erasing compilation ⟦e⟧ᵥΓ ⇝ t of Figure 7.
/// Applications compile to lazy `let` or strict `let!` depending on the
/// *kind* of the argument type (C_APPLAZY vs C_APPINT); lambdas pick their
/// parameter's register sort the same way (C_LAMPTR vs C_LAMINT); type and
/// rep abstractions/applications erase (C_TLAM, C_TAPP, C_RLAM, C_RAPP).
///
/// Compilation is *partial*: it fails exactly on levity-polymorphic
/// binders or arguments, whose kinds do not determine a register sort.
/// The Compilation Theorem (Section 6.3, property-tested in
/// tests/anf_compile_test.cpp) states that it is total on well-typed
/// terms — the L type system's E_APP/E_LAM premises rule the bad cases
/// out before the compiler ever sees them.
///
//===----------------------------------------------------------------------===//

#ifndef LEVITY_ANF_COMPILE_H
#define LEVITY_ANF_COMPILE_H

#include "lcalc/Syntax.h"
#include "lcalc/TypeCheck.h"
#include "mcalc/Syntax.h"
#include "support/Result.h"

#include <unordered_map>

namespace levity {
namespace anf {

/// Compiles L expressions into M terms per Figure 7.
class Compiler {
public:
  Compiler(lcalc::LContext &LC, mcalc::MContext &MC)
      : LC(LC), MC(MC), TC(LC) {}

  /// ⟦E⟧ under typing context \p Env (restored on exit) and variable
  /// environment \p V. Fails (never asserts) on levity-polymorphic
  /// binders/arguments so the Compilation theorem is testable.
  Result<const mcalc::Term *> compile(lcalc::TypeEnv &Env,
                                      const lcalc::Expr *E);

  /// Compiles a closed expression.
  Result<const mcalc::Term *> compileClosed(const lcalc::Expr *E) {
    lcalc::TypeEnv Env;
    VarMap.clear();
    return compile(Env, E);
  }

private:
  /// Figure 7's V: mapping from L term variables to M variables. The
  /// fresh-variable side of V is MC's name supply.
  std::unordered_map<Symbol, mcalc::MVar, SymbolHash> VarMap;

  lcalc::LContext &LC;
  mcalc::MContext &MC;
  lcalc::TypeChecker TC;
};

} // namespace anf
} // namespace levity

#endif // LEVITY_ANF_COMPILE_H
