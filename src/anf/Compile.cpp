//===- Compile.cpp - Compilation of L into M (Figure 7) -------------------===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "anf/Compile.h"

using namespace levity;
using namespace levity::anf;
using lcalc::Expr;
using lcalc::LKind;
using lcalc::TypeEnv;
using mcalc::MVar;
using mcalc::Term;

namespace {

/// The L and M primop enums are mirrored; keep the mapping explicit so a
/// divergence is a compile/assert failure, not silent misbehavior.
mcalc::MPrim toMPrim(lcalc::LPrim Op) {
  switch (Op) {
  case lcalc::LPrim::Add:
    return mcalc::MPrim::Add;
  case lcalc::LPrim::Sub:
    return mcalc::MPrim::Sub;
  case lcalc::LPrim::Mul:
    return mcalc::MPrim::Mul;
  case lcalc::LPrim::Quot:
    return mcalc::MPrim::Quot;
  case lcalc::LPrim::Rem:
    return mcalc::MPrim::Rem;
  case lcalc::LPrim::Lt:
    return mcalc::MPrim::Lt;
  case lcalc::LPrim::Le:
    return mcalc::MPrim::Le;
  case lcalc::LPrim::Gt:
    return mcalc::MPrim::Gt;
  case lcalc::LPrim::Ge:
    return mcalc::MPrim::Ge;
  case lcalc::LPrim::Eq:
    return mcalc::MPrim::Eq;
  case lcalc::LPrim::Ne:
    return mcalc::MPrim::Ne;
  case lcalc::LPrim::DAdd:
    return mcalc::MPrim::DAdd;
  case lcalc::LPrim::DSub:
    return mcalc::MPrim::DSub;
  case lcalc::LPrim::DMul:
    return mcalc::MPrim::DMul;
  case lcalc::LPrim::DDiv:
    return mcalc::MPrim::DDiv;
  case lcalc::LPrim::DLt:
    return mcalc::MPrim::DLt;
  case lcalc::LPrim::DLe:
    return mcalc::MPrim::DLe;
  case lcalc::LPrim::DGt:
    return mcalc::MPrim::DGt;
  case lcalc::LPrim::DGe:
    return mcalc::MPrim::DGe;
  case lcalc::LPrim::DEq:
    return mcalc::MPrim::DEq;
  case lcalc::LPrim::DNe:
    return mcalc::MPrim::DNe;
  }
  assert(false && "unknown L primop");
  return mcalc::MPrim::Add;
}

} // namespace

Result<const Term *> Compiler::compile(TypeEnv &Env, const Expr *E) {
  switch (E->kind()) {
  case Expr::ExprKind::Var: {
    // C_VAR: x ↦ y ∈ V.
    const auto *V = lcalc::cast<lcalc::VarExpr>(E);
    auto It = VarMap.find(V->name());
    if (It == VarMap.end())
      return err("unbound variable in compilation: " +
                 std::string(V->name().str()));
    return MC.var(It->second);
  }

  case Expr::ExprKind::IntLit:
    // C_INTLIT.
    return MC.lit(lcalc::cast<lcalc::IntLitExpr>(E)->value());

  case Expr::ExprKind::DoubleLit:
    // C_DBLLIT.
    return MC.dlit(lcalc::cast<lcalc::DoubleLitExpr>(E)->value());

  case Expr::ExprKind::Error:
    // C_ERROR (the diagnostic message rides along).
    return MC.error(lcalc::cast<lcalc::ErrorExpr>(E)->message());

  case Expr::ExprKind::App: {
    // C_APPLAZY / C_APPINT / C_APPDBL: the argument's *kind* selects let
    // vs let! and the strict binder's register sort.
    const auto *A = lcalc::cast<lcalc::AppExpr>(E);
    Result<const lcalc::Type *> ArgTy = TC.typeOf(Env, A->arg());
    if (!ArgTy)
      return err("untypeable argument: " + ArgTy.error());
    Result<LKind> K = TC.kindOf(Env, *ArgTy);
    if (!K)
      return err(K.error());
    if (!K->isConcrete())
      return err("cannot compile levity-polymorphic argument of type " +
                 (*ArgTy)->str() + " :: " + K->str());

    Result<const Term *> Fn = compile(Env, A->fn());
    if (!Fn)
      return Fn;
    Result<const Term *> Arg = compile(Env, A->arg());
    if (!Arg)
      return Arg;

    if (K->rep().rep() == lcalc::ConcreteRep::P) {
      // C_APPLAZY: ⟦e1 e2⟧ = let p = t2 in t1 p.
      MVar P = MC.freshPtr();
      return MC.let(P, *Arg, MC.appVar(*Fn, P));
    }
    // C_APPINT / C_APPDBL: ⟦e1 e2⟧ = let! y = t2 in t1 y.
    MVar Y = K->rep().rep() == lcalc::ConcreteRep::I ? MC.freshInt()
                                                     : MC.freshDbl();
    return MC.letBang(Y, *Arg, MC.appVar(*Fn, Y));
  }

  case Expr::ExprKind::Lam: {
    // C_LAMPTR / C_LAMINT / C_LAMDBL: the binder's kind selects the
    // register sort.
    const auto *L = lcalc::cast<lcalc::LamExpr>(E);
    Result<LKind> K = TC.kindOf(Env, L->varType());
    if (!K)
      return err(K.error());
    if (!K->isConcrete())
      return err("cannot compile levity-polymorphic binder " +
                 std::string(L->var().str()) + " : " +
                 L->varType()->str() + " :: " + K->str());

    MVar Y = K->rep().rep() == lcalc::ConcreteRep::P
                 ? MC.freshPtr()
                 : (K->rep().rep() == lcalc::ConcreteRep::I ? MC.freshInt()
                                                            : MC.freshDbl());
    auto Saved = VarMap.find(L->var());
    std::optional<MVar> Shadowed;
    if (Saved != VarMap.end())
      Shadowed = Saved->second;
    VarMap[L->var()] = Y;
    Env.pushTerm(L->var(), L->varType());
    Result<const Term *> Body = compile(Env, L->body());
    Env.popTerm();
    if (Shadowed)
      VarMap[L->var()] = *Shadowed;
    else
      VarMap.erase(L->var());
    if (!Body)
      return Body;
    return MC.lam(Y, *Body);
  }

  case Expr::ExprKind::Prim: {
    // C_PRIM: ⟦e1 ⊕# e2⟧ = let! y1 = t1 in let! y2 = t2 in y1 ⊕# y2.
    // Operands are unboxed (kind TYPE I or TYPE D per the operator), so
    // both bindings are strict and the atoms land in the matching
    // registers.
    const auto *P = lcalc::cast<lcalc::PrimExpr>(E);
    Result<const Term *> Lhs = compile(Env, P->lhs());
    if (!Lhs)
      return Lhs;
    Result<const Term *> Rhs = compile(Env, P->rhs());
    if (!Rhs)
      return Rhs;
    bool Dbl = lcalc::lPrimTakesDouble(P->op());
    MVar Y1 = Dbl ? MC.freshDbl() : MC.freshInt();
    MVar Y2 = Dbl ? MC.freshDbl() : MC.freshInt();
    return MC.letBang(
        Y1, *Lhs,
        MC.letBang(Y2, *Rhs,
                   MC.prim(toMPrim(P->op()), mcalc::MAtom::var(Y1),
                           mcalc::MAtom::var(Y2))));
  }

  case Expr::ExprKind::If0: {
    // C_IF0: ⟦if0 e1 then e2 else e3⟧ = if0 t1 then t2 else t3 — the
    // scrutinee is Int# and each branch compiles in tail position.
    const auto *I = lcalc::cast<lcalc::If0Expr>(E);
    Result<const Term *> Scrut = compile(Env, I->scrut());
    if (!Scrut)
      return Scrut;
    Result<const Term *> Then = compile(Env, I->thenBranch());
    if (!Then)
      return Then;
    Result<const Term *> Else = compile(Env, I->elseBranch());
    if (!Else)
      return Else;
    return MC.if0(*Scrut, *Then, *Else);
  }

  case Expr::ExprKind::Fix: {
    // C_FIX: ⟦fix x:τ. e⟧ = letrec p = t in p — the knot is tied through
    // the heap: the stored thunk references its own address. τ must be
    // lifted (TYPE P), which E_FIX already guarantees on well-typed
    // terms.
    const auto *F = lcalc::cast<lcalc::FixExpr>(E);
    Result<LKind> K = TC.kindOf(Env, F->varType());
    if (!K)
      return err(K.error());
    if (!(*K == LKind::typePtr()))
      return err("cannot compile recursive binder " +
                 std::string(F->var().str()) + " : " + F->varType()->str() +
                 " :: " + K->str() + " (letrec needs a pointer binder)");
    MVar P = MC.freshPtr();
    auto Saved = VarMap.find(F->var());
    std::optional<MVar> Shadowed;
    if (Saved != VarMap.end())
      Shadowed = Saved->second;
    VarMap[F->var()] = P;
    Env.pushTerm(F->var(), F->varType());
    Result<const Term *> Body = compile(Env, F->body());
    Env.popTerm();
    if (Shadowed)
      VarMap[F->var()] = *Shadowed;
    else
      VarMap.erase(F->var());
    if (!Body)
      return Body;
    return MC.letRec(P, *Body, MC.var(P));
  }

  case Expr::ExprKind::Con: {
    // C_CON: constructor arguments are atoms only. Unboxed (I/D) fields
    // bind strictly (let!), pointer fields bind lazily (let) — the same
    // kind-directed discipline as C_APP* — and literal arguments pass
    // through as atoms directly. The built-in Int keeps its compact
    // I#[y]/I#[n] M form:  ⟦I#[e]⟧ = let! i = t in I#[i].
    const auto *C = lcalc::cast<lcalc::ConExpr>(E);
    const lcalc::LDataDecl *D = C->decl();
    if (D == LC.intDataDecl()) {
      Result<const Term *> Payload = compile(Env, C->payload());
      if (!Payload)
        return Payload;
      if (const auto *Lit = mcalc::dyn_cast<mcalc::LitTerm>(*Payload))
        return MC.conLit(Lit->value());
      MVar I = MC.freshInt();
      return MC.letBang(I, *Payload, MC.conVar(I));
    }

    const lcalc::LDataCon &Con = D->con(C->tag());
    struct Binding {
      bool Strict;
      MVar V;
      const Term *Rhs;
    };
    std::vector<Binding> Binds;
    std::vector<mcalc::MAtom> Atoms;
    for (size_t I = 0; I != C->args().size(); ++I) {
      Result<const Term *> Arg = compile(Env, C->args()[I]);
      if (!Arg)
        return Arg;
      lcalc::ConcreteRep R = Con.FieldReps[I];
      if (R == lcalc::ConcreteRep::I)
        if (const auto *Lit = mcalc::dyn_cast<mcalc::LitTerm>(*Arg)) {
          Atoms.push_back(mcalc::MAtom::lit(Lit->value()));
          continue;
        }
      if (R == lcalc::ConcreteRep::D)
        if (const auto *Lit = mcalc::dyn_cast<mcalc::DLitTerm>(*Arg)) {
          Atoms.push_back(mcalc::MAtom::dlit(Lit->value()));
          continue;
        }
      MVar Y = R == lcalc::ConcreteRep::P
                   ? MC.freshPtr()
                   : (R == lcalc::ConcreteRep::I ? MC.freshInt()
                                                 : MC.freshDbl());
      Binds.push_back({R != lcalc::ConcreteRep::P, Y, *Arg});
      Atoms.push_back(mcalc::MAtom::anyVar(Y));
    }
    const Term *Body = MC.con(C->tag(), Atoms);
    for (size_t I = Binds.size(); I-- > 0;)
      Body = Binds[I].Strict ? MC.letBang(Binds[I].V, Binds[I].Rhs, Body)
                             : MC.let(Binds[I].V, Binds[I].Rhs, Body);
    return Body;
  }

  case Expr::ExprKind::Case: {
    // C_CASE: every case — constructor, literal, or default-only —
    // compiles to the one tag-dispatch switch. Each constructor
    // alternative's binders become fresh M variables in the register
    // class of the corresponding field; branch bodies compile in tail
    // position (join-point style: no extra continuation closure).
    const auto *C = lcalc::cast<lcalc::CaseExpr>(E);
    Result<const Term *> Scrut = compile(Env, C->scrut());
    if (!Scrut)
      return Scrut;

    const lcalc::LDataDecl *D = C->decl();
    std::vector<mcalc::MAlt> Alts;
    /// Keeps per-alternative binder arrays alive until switchOf copies
    /// them into the arena.
    std::vector<std::vector<MVar>> BinderStorage;
    for (const lcalc::LAlt &A : C->alts()) {
      mcalc::MAlt M;
      switch (A.Pat) {
      case lcalc::LAlt::PatKind::Con: {
        M.Pat = mcalc::MAlt::PatKind::Con;
        M.Tag = A.Tag;
        assert(D && "constructor alternative without a data decl");
        const lcalc::LDataCon &Con = D->con(A.Tag);
        std::vector<MVar> Binders;
        std::vector<std::optional<MVar>> Shadowed;
        for (size_t I = 0; I != A.Binders.size(); ++I) {
          lcalc::ConcreteRep R = Con.FieldReps[I];
          MVar Y = R == lcalc::ConcreteRep::P
                       ? MC.freshPtr()
                       : (R == lcalc::ConcreteRep::I ? MC.freshInt()
                                                     : MC.freshDbl());
          Binders.push_back(Y);
          auto Saved = VarMap.find(A.Binders[I]);
          Shadowed.push_back(Saved != VarMap.end()
                                 ? std::optional<MVar>(Saved->second)
                                 : std::nullopt);
          VarMap[A.Binders[I]] = Y;
          Env.pushTerm(A.Binders[I], Con.Fields[I]);
        }
        Result<const Term *> Body = compile(Env, A.Rhs);
        for (size_t I = A.Binders.size(); I-- > 0;) {
          Env.popTerm();
          if (Shadowed[I])
            VarMap[A.Binders[I]] = *Shadowed[I];
          else
            VarMap.erase(A.Binders[I]);
        }
        if (!Body)
          return Body;
        M.Body = *Body;
        BinderStorage.push_back(std::move(Binders));
        M.Binders = std::span<const MVar>(BinderStorage.back().data(),
                                          BinderStorage.back().size());
        break;
      }
      case lcalc::LAlt::PatKind::Int: {
        M.Pat = mcalc::MAlt::PatKind::Int;
        M.IntVal = A.IntVal;
        Result<const Term *> Body = compile(Env, A.Rhs);
        if (!Body)
          return Body;
        M.Body = *Body;
        break;
      }
      case lcalc::LAlt::PatKind::Dbl: {
        M.Pat = mcalc::MAlt::PatKind::Dbl;
        M.DblVal = A.DblVal;
        Result<const Term *> Body = compile(Env, A.Rhs);
        if (!Body)
          return Body;
        M.Body = *Body;
        break;
      }
      }
      Alts.push_back(M);
    }

    const Term *Def = nullptr;
    if (C->defaultRhs()) {
      Result<const Term *> DefT = compile(Env, C->defaultRhs());
      if (!DefT)
        return DefT;
      Def = *DefT;
    }
    return MC.switchOf(*Scrut, Alts, Def);
  }

  case Expr::ExprKind::TyLam: {
    // C_TLAM: erased; the context still needs the binding for kinding.
    const auto *L = lcalc::cast<lcalc::TyLamExpr>(E);
    Env.pushTypeVar(L->var(), L->varKind());
    Result<const Term *> Body = compile(Env, L->body());
    Env.popTypeVar();
    return Body;
  }
  case Expr::ExprKind::TyApp:
    // C_TAPP: erased.
    return compile(Env, lcalc::cast<lcalc::TyAppExpr>(E)->fn());
  case Expr::ExprKind::RepLam: {
    // C_RLAM: erased.
    const auto *L = lcalc::cast<lcalc::RepLamExpr>(E);
    Env.pushRepVar(L->repVar());
    Result<const Term *> Body = compile(Env, L->body());
    Env.popRepVar();
    return Body;
  }
  case Expr::ExprKind::RepApp:
    // C_RAPP: erased.
    return compile(Env, lcalc::cast<lcalc::RepAppExpr>(E)->fn());
  }
  assert(false && "unknown expr kind");
  return err("unknown expr kind");
}
