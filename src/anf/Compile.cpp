//===- Compile.cpp - Compilation of L into M (Figure 7) -------------------===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "anf/Compile.h"

using namespace levity;
using namespace levity::anf;
using lcalc::Expr;
using lcalc::LKind;
using lcalc::TypeEnv;
using mcalc::MVar;
using mcalc::Term;

Result<const Term *> Compiler::compile(TypeEnv &Env, const Expr *E) {
  switch (E->kind()) {
  case Expr::ExprKind::Var: {
    // C_VAR: x ↦ y ∈ V.
    const auto *V = lcalc::cast<lcalc::VarExpr>(E);
    auto It = VarMap.find(V->name());
    if (It == VarMap.end())
      return err("unbound variable in compilation: " +
                 std::string(V->name().str()));
    return MC.var(It->second);
  }

  case Expr::ExprKind::IntLit:
    // C_INTLIT.
    return MC.lit(lcalc::cast<lcalc::IntLitExpr>(E)->value());

  case Expr::ExprKind::Error:
    // C_ERROR.
    return MC.error();

  case Expr::ExprKind::App: {
    // C_APPLAZY / C_APPINT: the argument's *kind* selects let vs let!.
    const auto *A = lcalc::cast<lcalc::AppExpr>(E);
    Result<const lcalc::Type *> ArgTy = TC.typeOf(Env, A->arg());
    if (!ArgTy)
      return err("untypeable argument: " + ArgTy.error());
    Result<LKind> K = TC.kindOf(Env, *ArgTy);
    if (!K)
      return err(K.error());
    if (!K->isConcrete())
      return err("cannot compile levity-polymorphic argument of type " +
                 (*ArgTy)->str() + " :: " + K->str());

    Result<const Term *> Fn = compile(Env, A->fn());
    if (!Fn)
      return Fn;
    Result<const Term *> Arg = compile(Env, A->arg());
    if (!Arg)
      return Arg;

    if (K->rep().rep() == lcalc::ConcreteRep::P) {
      // C_APPLAZY: ⟦e1 e2⟧ = let p = t2 in t1 p.
      MVar P = MC.freshPtr();
      return MC.let(P, *Arg, MC.appVar(*Fn, P));
    }
    // C_APPINT: ⟦e1 e2⟧ = let! i = t2 in t1 i.
    MVar I = MC.freshInt();
    return MC.letBang(I, *Arg, MC.appVar(*Fn, I));
  }

  case Expr::ExprKind::Lam: {
    // C_LAMPTR / C_LAMINT: the binder's kind selects the register sort.
    const auto *L = lcalc::cast<lcalc::LamExpr>(E);
    Result<LKind> K = TC.kindOf(Env, L->varType());
    if (!K)
      return err(K.error());
    if (!K->isConcrete())
      return err("cannot compile levity-polymorphic binder " +
                 std::string(L->var().str()) + " : " +
                 L->varType()->str() + " :: " + K->str());

    MVar Y = K->rep().rep() == lcalc::ConcreteRep::P ? MC.freshPtr()
                                                     : MC.freshInt();
    auto Saved = VarMap.find(L->var());
    std::optional<MVar> Shadowed;
    if (Saved != VarMap.end())
      Shadowed = Saved->second;
    VarMap[L->var()] = Y;
    Env.pushTerm(L->var(), L->varType());
    Result<const Term *> Body = compile(Env, L->body());
    Env.popTerm();
    if (Shadowed)
      VarMap[L->var()] = *Shadowed;
    else
      VarMap.erase(L->var());
    if (!Body)
      return Body;
    return MC.lam(Y, *Body);
  }

  case Expr::ExprKind::Prim: {
    // C_PRIM: ⟦e1 ⊕# e2⟧ = let! i1 = t1 in let! i2 = t2 in i1 ⊕# i2.
    // Operands are Int# (kind TYPE I), so both bindings are strict and
    // the atoms land in integer registers.
    const auto *P = lcalc::cast<lcalc::PrimExpr>(E);
    Result<const Term *> Lhs = compile(Env, P->lhs());
    if (!Lhs)
      return Lhs;
    Result<const Term *> Rhs = compile(Env, P->rhs());
    if (!Rhs)
      return Rhs;
    mcalc::MPrim Op = mcalc::MPrim::Add;
    switch (P->op()) {
    case lcalc::LPrim::Add:
      Op = mcalc::MPrim::Add;
      break;
    case lcalc::LPrim::Sub:
      Op = mcalc::MPrim::Sub;
      break;
    case lcalc::LPrim::Mul:
      Op = mcalc::MPrim::Mul;
      break;
    }
    MVar I1 = MC.freshInt();
    MVar I2 = MC.freshInt();
    return MC.letBang(
        I1, *Lhs,
        MC.letBang(I2, *Rhs,
                   MC.prim(Op, mcalc::MAtom::var(I1),
                           mcalc::MAtom::var(I2))));
  }

  case Expr::ExprKind::Con: {
    // C_CON: ⟦I#[e]⟧ = let! i = t in I#[i] — constructors are strict.
    const auto *C = lcalc::cast<lcalc::ConExpr>(E);
    Result<const Term *> Payload = compile(Env, C->payload());
    if (!Payload)
      return Payload;
    MVar I = MC.freshInt();
    return MC.letBang(I, *Payload, MC.conVar(I));
  }

  case Expr::ExprKind::Case: {
    // C_CASE.
    const auto *C = lcalc::cast<lcalc::CaseExpr>(E);
    Result<const Term *> Scrut = compile(Env, C->scrut());
    if (!Scrut)
      return Scrut;
    MVar I = MC.freshInt();
    auto Saved = VarMap.find(C->binder());
    std::optional<MVar> Shadowed;
    if (Saved != VarMap.end())
      Shadowed = Saved->second;
    VarMap[C->binder()] = I;
    Env.pushTerm(C->binder(), LC.intHashTy());
    Result<const Term *> Body = compile(Env, C->body());
    Env.popTerm();
    if (Shadowed)
      VarMap[C->binder()] = *Shadowed;
    else
      VarMap.erase(C->binder());
    if (!Body)
      return Body;
    return MC.caseOf(*Scrut, I, *Body);
  }

  case Expr::ExprKind::TyLam: {
    // C_TLAM: erased; the context still needs the binding for kinding.
    const auto *L = lcalc::cast<lcalc::TyLamExpr>(E);
    Env.pushTypeVar(L->var(), L->varKind());
    Result<const Term *> Body = compile(Env, L->body());
    Env.popTypeVar();
    return Body;
  }
  case Expr::ExprKind::TyApp:
    // C_TAPP: erased.
    return compile(Env, lcalc::cast<lcalc::TyAppExpr>(E)->fn());
  case Expr::ExprKind::RepLam: {
    // C_RLAM: erased.
    const auto *L = lcalc::cast<lcalc::RepLamExpr>(E);
    Env.pushRepVar(L->repVar());
    Result<const Term *> Body = compile(Env, L->body());
    Env.popRepVar();
    return Body;
  }
  case Expr::ExprKind::RepApp:
    // C_RAPP: erased.
    return compile(Env, lcalc::cast<lcalc::RepAppExpr>(E)->fn());
  }
  assert(false && "unknown expr kind");
  return err("unknown expr kind");
}
