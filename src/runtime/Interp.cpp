//===- Interp.cpp - Instrumented evaluator for core programs --------------===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "runtime/Interp.h"

#include <limits>
#include <sstream>

using namespace levity;
using namespace levity::runtime;
using namespace levity::core;

void Interp::loadProgram(const CoreProgram &P) {
  // Mutually recursive top level: every binding is a lazy global thunk
  // evaluated in the global scope (lookup falls back to Globals).
  for (const TopBinding &B : P.Bindings) {
    Value *V = newValue();
    V->T = Value::Tag::Thunk;
    V->Suspended = B.Rhs;
    V->SuspendedEnv = nullptr;
    Globals[B.Name] = V;
  }
}

Value *Interp::lookup(const EnvNode *Env, Symbol Name) {
  for (const EnvNode *N = Env; N; N = N->Next)
    if (N->Name == Name)
      return N->V;
  auto It = Globals.find(Name);
  return It == Globals.end() ? nullptr : It->second;
}

const std::vector<bool> &Interp::fieldStrictness(const DataCon *DC) {
  auto It = StrictCache.find(DC);
  if (It != StrictCache.end())
    return It->second;
  std::vector<bool> Strict;
  CoreEnv Env;
  for (size_t I = 0; I != DC->univs().size(); ++I)
    Env.pushTypeVar(DC->univs()[I], DC->univKinds()[I]);
  for (const Type *F : DC->fields()) {
    Result<const Kind *> K = Checker.kindOf(Env, F);
    bool Unlifted = false;
    if (K && (*K)->isTypeOf()) {
      const RepTy *R = C.zonkRep((*K)->rep());
      Unlifted = !(R->tag() == RepTy::Tag::Atom &&
                   R->atom() == RepCtor::Lifted);
    }
    Strict.push_back(Unlifted);
  }
  return StrictCache.emplace(DC, std::move(Strict)).first->second;
}

Value *Interp::force(Value *V, InterpStats &S) {
  // Nested thunk chains are forced one link at a time; each link's body
  // runs on the iterative engine, so chain depth never consumes C++
  // stack. Used by display/inspection paths (show, asBoxedInt callers).
  while (V && V->T == Value::Tag::Thunk) {
    if (V->Forced) {
      V = V->Forced;
      continue;
    }
    if (V->BlackHole) {
      FailStatus = InterpStatus::RuntimeError;
      FailMessage = "<<loop>>";
      return nullptr;
    }
    V->BlackHole = true;
    ++S.ThunkForces;
    Value *Result = evalIn(V->Suspended, V->SuspendedEnv, S);
    if (!Result) {
      V->BlackHole = false; // Leave the thunk retryable (see evalIn).
      return nullptr;
    }
    noteUpdate(V, Result);
    V->Forced = Result;
    V->BlackHole = false;
    V = Result;
  }
  return V;
}

InterpResult Interp::eval(const Expr *E, uint64_t MaxSteps) {
  InterpResult R;
  FailStatus = InterpStatus::Value;
  FailMessage.clear();
  FuelLeft = MaxSteps;
  Value *V = evalIn(E, nullptr, R.Stats);
  // Retained cells at end of run — see InterpStats::PeakHeapCells. Both
  // pools are monotone within one run, so this is also the run's peak.
  R.Stats.PeakHeapCells = Pool.size() + EnvPool.size();
  R.Stats.PeakHeapBytes =
      Pool.size() * sizeof(Value) + EnvPool.size() * sizeof(EnvNode);
  if (!V) {
    R.Status = FailStatus == InterpStatus::Value ? InterpStatus::RuntimeError
                                                 : FailStatus;
    R.Message = FailMessage;
    return R;
  }
  R.Status = InterpStatus::Value;
  R.V = V;
  return R;
}

/// One suspended continuation of the iterative engine — what a recursive
/// evaluator would keep in a C++ stack frame. The engine alternates
/// between Eval mode (walk an expression) and Return mode (feed the
/// produced value to the innermost frame), so evaluation depth lives in a
/// heap-allocated vector instead of the C++ stack.
struct Interp::Frame {
  enum class K : uint8_t {
    Update,    ///< Write the produced value back into a forced thunk (V).
    AppFn,     ///< Have the function value; evaluate or thunk E's arg.
    AppArg,    ///< Have the strict argument; enter the saved function (V).
    AppEnter,  ///< Have the forced function; enter it on the saved arg (V).
    LetStrict, ///< Have the strict let's rhs; bind it and run E's body.
    CaseScrut, ///< Have the scrutinee; select one of E's alternatives.
    ConField,  ///< Have strict field Idx; keep building the box (V).
    PrimArg,   ///< Have primop argument Idx (arg 0 saved in V).
    TupleElem, ///< Have tuple element Idx; keep building the tuple (V).
    ErrorMsg   ///< Have the error message; abort with Bottom.
  };

  K Kind;
  const core::Expr *E = nullptr; ///< The node being continued.
  const EnvNode *Env = nullptr;  ///< Its environment.
  Value *V = nullptr;            ///< Frame-specific value slot.
  uint32_t Idx = 0;              ///< Next field/argument index.
};

Value *Interp::evalIn(const Expr *E, const EnvNode *Env, InterpStats &S) {
  std::vector<Frame> Stack;
  enum class Mode : uint8_t { Eval, Return };
  Mode M = Mode::Eval;
  Value *Ret = nullptr;

  // Failure unwinding. An error's message is evaluated under an ErrorMsg
  // frame; any failure (or inner bottom) propagating through one is
  // rewritten to the enclosing error's own bottom, exactly as the
  // recursive evaluator's unwinding did. Thunks that were black-holed by
  // abandoned Update frames are reset to unforced, so a long-lived
  // Executor can retry (e.g. with more fuel) without a spurious
  // "<<loop>>"; genuine loops still trip the black hole while their
  // frames are live.
  auto failed = [&]() -> Value * {
    bool UnderError = false;
    for (const Frame &F : Stack) {
      if (F.Kind == Frame::K::ErrorMsg)
        UnderError = true;
      else if (F.Kind == Frame::K::Update)
        F.V->BlackHole = false;
    }
    if (UnderError) {
      FailStatus = InterpStatus::Bottom;
      FailMessage = "error";
    }
    return nullptr;
  };
  auto fail = [&](InterpStatus St, std::string Msg) -> Value * {
    FailStatus = St;
    FailMessage = std::move(Msg);
    return failed();
  };

  // Enters a function value: forces it if it is a thunk (resuming the
  // application afterwards via AppEnter), then binds the argument and
  // tail-jumps into the body. Returns false on a non-function.
  auto enter = [&](Value *Fn, Value *Arg) -> bool {
    while (Fn->T == Value::Tag::Thunk && Fn->Forced)
      Fn = Fn->Forced;
    if (Fn->T == Value::Tag::Thunk) {
      if (Fn->BlackHole) {
        FailStatus = InterpStatus::RuntimeError;
        FailMessage = "<<loop>>";
        return false;
      }
      Fn->BlackHole = true;
      ++S.ThunkForces;
      Stack.push_back({Frame::K::AppEnter, nullptr, nullptr, Arg, 0});
      Stack.push_back({Frame::K::Update, nullptr, nullptr, Fn, 0});
      E = Fn->Suspended;
      Env = Fn->SuspendedEnv;
      M = Mode::Eval;
      return true;
    }
    if (Fn->T != Value::Tag::Closure) {
      FailStatus = InterpStatus::RuntimeError;
      FailMessage = "applying a non-function value";
      return false;
    }
    Env = extend(Fn->CapturedEnv, Fn->Lam->var(), Arg);
    E = Fn->Lam->body();
    M = Mode::Eval;
    return true;
  };

  // Builds a constructor box from field Idx on: thunks lazy fields
  // in-place, descends (via a ConField frame) into the next strict one,
  // and completes the box once every field is filled.
  auto buildCon = [&](const ConExpr *Con, const EnvNode *CEnv, Value *Box,
                      size_t I) {
    const std::vector<bool> &Strict = fieldStrictness(Con->dataCon());
    for (; I != Con->args().size(); ++I) {
      if (Strict[I]) {
        Stack.push_back({Frame::K::ConField, Con, CEnv, Box,
                         static_cast<uint32_t>(I)});
        E = Con->args()[I];
        Env = CEnv;
        M = Mode::Eval;
        return;
      }
      Box->Fields.push_back(makeThunk(Con->args()[I], CEnv, S));
    }
    ++S.BoxAllocs;
    Ret = Box;
    M = Mode::Return;
  };

  auto buildTuple = [&](const UnboxedTupleExpr *U, const EnvNode *UEnv,
                        Value *Tup, size_t I) {
    if (I != U->elems().size()) {
      Stack.push_back({Frame::K::TupleElem, U, UEnv, Tup,
                       static_cast<uint32_t>(I)});
      E = U->elems()[I];
      Env = UEnv;
      M = Mode::Eval;
      return;
    }
    ++S.TupleMoves;
    Ret = Tup;
    M = Mode::Return;
  };

  for (;;) {
    if (M == Mode::Return) {
      if (Stack.empty())
        return Ret;
      Frame F = Stack.back();
      Stack.pop_back();
      switch (F.Kind) {
      case Frame::K::Update:
        noteUpdate(F.V, Ret);
        F.V->Forced = Ret;
        F.V->BlackHole = false;
        continue; // Keep returning the same value.

      case Frame::K::AppFn: {
        const auto *A = cast<AppExpr>(F.E);
        if (A->strictArg()) {
          // Unlifted argument: call-by-value (an "integer register").
          Stack.push_back({Frame::K::AppArg, nullptr, nullptr, Ret, 0});
          E = A->arg();
          Env = F.Env;
          M = Mode::Eval;
          continue;
        }
        // Lifted argument: pass a pointer to a heap thunk.
        Value *Arg = makeThunk(A->arg(), F.Env, S);
        if (!enter(Ret, Arg))
          return failed();
        continue;
      }
      case Frame::K::AppArg:
        if (!enter(F.V, Ret))
          return failed();
        continue;
      case Frame::K::AppEnter:
        if (!enter(Ret, F.V))
          return failed();
        continue;

      case Frame::K::LetStrict: {
        const auto *L = cast<LetExpr>(F.E);
        Env = extend(F.Env, L->var(), Ret);
        E = L->body();
        M = Mode::Eval;
        continue;
      }

      case Frame::K::CaseScrut: {
        const auto *Cs = cast<CaseExpr>(F.E);
        Value *Scrut = Ret;
        const Alt *Taken = nullptr;
        const Alt *Default = nullptr;
        for (const Alt &A : Cs->alts()) {
          switch (A.Kind) {
          case Alt::AltKind::Default:
            Default = &A;
            break;
          case Alt::AltKind::ConPat:
            if (Scrut->T == Value::Tag::Con && Scrut->DC == A.Con)
              Taken = &A;
            break;
          case Alt::AltKind::LitPat:
            if (Scrut->T == Value::Tag::IntHash &&
                A.Lit.tag() == Literal::Tag::IntHash &&
                Scrut->I == A.Lit.intValue())
              Taken = &A;
            else if (Scrut->T == Value::Tag::DoubleHash &&
                     A.Lit.tag() == Literal::Tag::DoubleHash &&
                     Scrut->D == A.Lit.doubleValue())
              Taken = &A;
            break;
          case Alt::AltKind::TuplePat:
            if (Scrut->T == Value::Tag::Tuple)
              Taken = &A;
            break;
          }
          if (Taken)
            break;
        }
        if (!Taken)
          Taken = Default;
        if (!Taken)
          return fail(InterpStatus::RuntimeError,
                      "pattern-match failure in case");
        Env = F.Env;
        if (Taken->Kind == Alt::AltKind::ConPat ||
            Taken->Kind == Alt::AltKind::TuplePat) {
          for (size_t I = 0; I != Taken->Binders.size(); ++I)
            Env = extend(Env, Taken->Binders[I], Scrut->Fields[I]);
        }
        E = Taken->Rhs;
        M = Mode::Eval;
        continue;
      }

      case Frame::K::ConField:
        F.V->Fields.push_back(Ret);
        buildCon(cast<ConExpr>(F.E), F.Env, F.V, F.Idx + 1);
        continue;

      case Frame::K::PrimArg: {
        const auto *P = cast<PrimOpExpr>(F.E);
        if (F.Idx + 1 < P->args().size()) {
          Stack.push_back({Frame::K::PrimArg, P, F.Env, Ret, F.Idx + 1});
          E = P->args()[F.Idx + 1];
          Env = F.Env;
          M = Mode::Eval;
          continue;
        }
        Value *A0 = F.Idx == 0 ? Ret : F.V;
        Value *A1 = F.Idx == 0 ? nullptr : Ret;
        Ret = execPrim(P, A0, A1, S);
        if (!Ret)
          return failed();
        M = Mode::Return;
        continue;
      }

      case Frame::K::TupleElem:
        F.V->Fields.push_back(Ret);
        buildTuple(cast<UnboxedTupleExpr>(F.E), F.Env, F.V, F.Idx + 1);
        continue;

      case Frame::K::ErrorMsg:
        FailStatus = InterpStatus::Bottom;
        FailMessage = Ret->T == Value::Tag::Str
                          ? std::string(Ret->S.str())
                          : "error";
        return failed();
      }
      assert(false && "unknown frame kind");
      return nullptr;
    }

    if (FuelLeft == 0)
      return fail(InterpStatus::OutOfFuel, "step budget exhausted");
    --FuelLeft;
    ++S.EvalSteps;

    switch (E->tag()) {
    case Expr::Tag::Var: {
      Value *V = lookup(Env, cast<VarExpr>(E)->name());
      if (!V)
        return fail(InterpStatus::RuntimeError,
                    "unbound variable " +
                        std::string(cast<VarExpr>(E)->name().str()));
      while (V->T == Value::Tag::Thunk && V->Forced)
        V = V->Forced;
      if (V->T == Value::Tag::Thunk) {
        if (V->BlackHole)
          return fail(InterpStatus::RuntimeError, "<<loop>>");
        V->BlackHole = true;
        ++S.ThunkForces;
        Stack.push_back({Frame::K::Update, nullptr, nullptr, V, 0});
        E = V->Suspended;
        Env = V->SuspendedEnv;
        continue;
      }
      Ret = V;
      M = Mode::Return;
      continue;
    }

    case Expr::Tag::Lit: {
      const Literal &L = cast<LitExpr>(E)->lit();
      Value *V = newValue();
      switch (L.tag()) {
      case Literal::Tag::IntHash:
        V->T = Value::Tag::IntHash;
        V->I = L.intValue();
        break;
      case Literal::Tag::DoubleHash:
        V->T = Value::Tag::DoubleHash;
        V->D = L.doubleValue();
        break;
      case Literal::Tag::String:
        V->T = Value::Tag::Str;
        V->S = L.stringValue();
        break;
      }
      Ret = V;
      M = Mode::Return;
      continue;
    }

    case Expr::Tag::App:
      Stack.push_back({Frame::K::AppFn, E, Env, nullptr, 0});
      E = cast<AppExpr>(E)->fn();
      continue;

    case Expr::Tag::TyApp:
      // Erased.
      E = cast<TyAppExpr>(E)->fn();
      continue;
    case Expr::Tag::TyLam:
      // Erased (evaluation proceeds under Λ, as in L).
      E = cast<TyLamExpr>(E)->body();
      continue;

    case Expr::Tag::Lam: {
      const auto *L = cast<LamExpr>(E);
      ++S.ClosureAllocs;
      Value *V = newValue();
      V->T = Value::Tag::Closure;
      V->Lam = L;
      V->CapturedEnv = Env;
      Ret = V;
      M = Mode::Return;
      continue;
    }

    case Expr::Tag::Let: {
      const auto *L = cast<LetExpr>(E);
      if (L->strict()) {
        Stack.push_back({Frame::K::LetStrict, E, Env, nullptr, 0});
        E = L->rhs();
        continue;
      }
      Env = extend(Env, L->var(), makeThunk(L->rhs(), Env, S));
      E = L->body();
      continue;
    }

    case Expr::Tag::LetRec: {
      const auto *L = cast<LetRecExpr>(E);
      // Tie the knot: allocate thunks, extend, then point the thunks at
      // the extended environment.
      std::vector<Value *> Thunks;
      for (const RecBinding &B : L->bindings()) {
        (void)B;
        Thunks.push_back(makeThunk(nullptr, nullptr, S));
      }
      const EnvNode *NewEnv = Env;
      for (size_t I = 0; I != Thunks.size(); ++I)
        NewEnv = extend(NewEnv, L->bindings()[I].Var, Thunks[I]);
      for (size_t I = 0; I != Thunks.size(); ++I) {
        Thunks[I]->Suspended = L->bindings()[I].Rhs;
        Thunks[I]->SuspendedEnv = NewEnv;
      }
      Env = NewEnv;
      E = L->body();
      continue;
    }

    case Expr::Tag::Case:
      Stack.push_back({Frame::K::CaseScrut, E, Env, nullptr, 0});
      E = cast<CaseExpr>(E)->scrut();
      continue;

    case Expr::Tag::Con: {
      const auto *Con = cast<ConExpr>(E);
      Value *V = newValue();
      V->T = Value::Tag::Con;
      V->DC = Con->dataCon();
      V->Fields.reserve(Con->args().size());
      buildCon(Con, Env, V, 0);
      continue;
    }

    case Expr::Tag::Prim: {
      const auto *P = cast<PrimOpExpr>(E);
      if (P->args().empty()) {
        Ret = execPrim(P, nullptr, nullptr, S);
        if (!Ret)
          return failed();
        M = Mode::Return;
        continue;
      }
      Stack.push_back({Frame::K::PrimArg, E, Env, nullptr, 0});
      E = P->args()[0];
      continue;
    }

    case Expr::Tag::UnboxedTuple: {
      // No heap allocation: the fields travel in registers. Fields are
      // evaluated eagerly (see DESIGN.md on this simplification).
      const auto *U = cast<UnboxedTupleExpr>(E);
      Value *V = newValue();
      V->T = Value::Tag::Tuple;
      V->Fields.reserve(U->elems().size());
      buildTuple(U, Env, V, 0);
      continue;
    }

    case Expr::Tag::Error:
      Stack.push_back({Frame::K::ErrorMsg, E, Env, nullptr, 0});
      E = cast<ErrorExpr>(E)->message();
      continue;
    }
    assert(false && "unknown expr tag");
    return nullptr;
  }
}

Value *Interp::execPrim(const core::PrimOpExpr *P, Value *A0, Value *A1,
                        InterpStats &S) {
  ++S.PrimOps;
  Value *V = newValue();
  auto IntResult = [&](int64_t X) {
    V->T = Value::Tag::IntHash;
    V->I = X;
    return V;
  };
  auto DoubleResult = [&](double X) {
    V->T = Value::Tag::DoubleHash;
    V->D = X;
    return V;
  };
  switch (P->op()) {
  case PrimOp::AddI: return IntResult(A0->I + A1->I);
  case PrimOp::SubI: return IntResult(A0->I - A1->I);
  case PrimOp::MulI: return IntResult(A0->I * A1->I);
  case PrimOp::QuotI:
  case PrimOp::RemI:
    if (A1->I == 0) {
      FailStatus = InterpStatus::RuntimeError;
      FailMessage = "divide by zero";
      return nullptr;
    }
    // INT64_MIN / -1 overflows (and traps on x86); reject it like a
    // zero divisor instead of crashing the process.
    if (A0->I == std::numeric_limits<int64_t>::min() && A1->I == -1) {
      FailStatus = InterpStatus::RuntimeError;
      FailMessage = "integer overflow in division";
      return nullptr;
    }
    return IntResult(P->op() == PrimOp::QuotI ? A0->I / A1->I
                                              : A0->I % A1->I);
  case PrimOp::NegI: return IntResult(-A0->I);
  case PrimOp::LtI: return IntResult(A0->I < A1->I ? 1 : 0);
  case PrimOp::LeI: return IntResult(A0->I <= A1->I ? 1 : 0);
  case PrimOp::GtI: return IntResult(A0->I > A1->I ? 1 : 0);
  case PrimOp::GeI: return IntResult(A0->I >= A1->I ? 1 : 0);
  case PrimOp::EqI: return IntResult(A0->I == A1->I ? 1 : 0);
  case PrimOp::NeI: return IntResult(A0->I != A1->I ? 1 : 0);
  case PrimOp::AddD: return DoubleResult(A0->D + A1->D);
  case PrimOp::SubD: return DoubleResult(A0->D - A1->D);
  case PrimOp::MulD: return DoubleResult(A0->D * A1->D);
  case PrimOp::DivD: return DoubleResult(A0->D / A1->D);
  case PrimOp::NegD: return DoubleResult(-A0->D);
  case PrimOp::LtD: return IntResult(A0->D < A1->D ? 1 : 0);
  case PrimOp::EqD: return IntResult(A0->D == A1->D ? 1 : 0);
  case PrimOp::Int2Double:
    return DoubleResult(double(A0->I));
  case PrimOp::Double2Int:
    return IntResult(int64_t(A0->D));
  case PrimOp::IsTrue: {
    V->T = Value::Tag::Con;
    V->DC = A0->I != 0 ? C.trueCon() : C.falseCon();
    ++S.BoxAllocs;
    return V;
  }
  }
  FailStatus = InterpStatus::RuntimeError;
  FailMessage = "unknown primop";
  return nullptr;
}

std::optional<int64_t> Interp::asIntHash(const Value *V) {
  if (V && V->T == Value::Tag::IntHash)
    return V->I;
  return std::nullopt;
}

std::optional<double> Interp::asDoubleHash(const Value *V) {
  if (V && V->T == Value::Tag::DoubleHash)
    return V->D;
  return std::nullopt;
}

std::optional<int64_t> Interp::asBoxedInt(const Value *V) {
  if (!V || V->T != Value::Tag::Con || V->Fields.size() != 1)
    return std::nullopt;
  const Value *F = V->Fields[0];
  if (F->T == Value::Tag::IntHash)
    return F->I;
  return std::nullopt;
}

std::optional<bool> Interp::asBool(const Value *V) {
  if (!V || V->T != Value::Tag::Con)
    return std::nullopt;
  if (V->DC == C.trueCon())
    return true;
  if (V->DC == C.falseCon())
    return false;
  return std::nullopt;
}

std::string Interp::show(const Value *V) {
  if (!V)
    return "<error>";
  std::ostringstream OS;
  switch (V->T) {
  case Value::Tag::IntHash:
    OS << V->I << "#";
    break;
  case Value::Tag::DoubleHash:
    OS << V->D << "##";
    break;
  case Value::Tag::Str:
    OS << "\"" << V->S.str() << "\"";
    break;
  case Value::Tag::Con: {
    OS << V->DC->name().str();
    for (Value *F : V->Fields) {
      InterpStats Dummy;
      Value *Forced = force(F, Dummy);
      OS << " " << (Forced ? show(Forced) : "<bottom>");
    }
    break;
  }
  case Value::Tag::Closure:
    OS << "<closure>";
    break;
  case Value::Tag::Tuple: {
    OS << "(#";
    bool First = true;
    for (Value *F : V->Fields) {
      if (!First)
        OS << ",";
      First = false;
      OS << " " << show(F);
    }
    OS << " #)";
    break;
  }
  case Value::Tag::Thunk:
    OS << "<thunk>";
    break;
  }
  return OS.str();
}
