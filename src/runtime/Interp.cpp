//===- Interp.cpp - Instrumented evaluator for core programs --------------===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "runtime/Interp.h"

#include <sstream>

using namespace levity;
using namespace levity::runtime;
using namespace levity::core;

void Interp::loadProgram(const CoreProgram &P) {
  // Mutually recursive top level: every binding is a lazy global thunk
  // evaluated in the global scope (lookup falls back to Globals).
  for (const TopBinding &B : P.Bindings) {
    Value *V = newValue();
    V->T = Value::Tag::Thunk;
    V->Suspended = B.Rhs;
    V->SuspendedEnv = nullptr;
    Globals[B.Name] = V;
  }
}

Value *Interp::lookup(const EnvNode *Env, Symbol Name) {
  for (const EnvNode *N = Env; N; N = N->Next)
    if (N->Name == Name)
      return N->V;
  auto It = Globals.find(Name);
  return It == Globals.end() ? nullptr : It->second;
}

const std::vector<bool> &Interp::fieldStrictness(const DataCon *DC) {
  auto It = StrictCache.find(DC);
  if (It != StrictCache.end())
    return It->second;
  std::vector<bool> Strict;
  CoreEnv Env;
  for (size_t I = 0; I != DC->univs().size(); ++I)
    Env.pushTypeVar(DC->univs()[I], DC->univKinds()[I]);
  for (const Type *F : DC->fields()) {
    Result<const Kind *> K = Checker.kindOf(Env, F);
    bool Unlifted = false;
    if (K && (*K)->isTypeOf()) {
      const RepTy *R = C.zonkRep((*K)->rep());
      Unlifted = !(R->tag() == RepTy::Tag::Atom &&
                   R->atom() == RepCtor::Lifted);
    }
    Strict.push_back(Unlifted);
  }
  return StrictCache.emplace(DC, std::move(Strict)).first->second;
}

Value *Interp::force(Value *V, InterpStats &S) {
  while (V && V->T == Value::Tag::Thunk) {
    if (V->Forced) {
      V = V->Forced;
      continue;
    }
    if (V->BlackHole) {
      FailStatus = InterpStatus::RuntimeError;
      FailMessage = "<<loop>>";
      return nullptr;
    }
    V->BlackHole = true;
    ++S.ThunkForces;
    Value *Result = evalIn(V->Suspended, V->SuspendedEnv, S);
    if (!Result)
      return nullptr;
    V->Forced = Result;
    V->BlackHole = false;
    V = Result;
  }
  return V;
}

Value *Interp::apply(Value *Fn, Value *Arg, InterpStats &S) {
  Fn = force(Fn, S);
  if (!Fn)
    return nullptr;
  if (Fn->T != Value::Tag::Closure) {
    FailStatus = InterpStatus::RuntimeError;
    FailMessage = "applying a non-function value";
    return nullptr;
  }
  const EnvNode *Env = extend(Fn->CapturedEnv, Fn->Lam->var(), Arg);
  return evalIn(Fn->Lam->body(), Env, S);
}

InterpResult Interp::eval(const Expr *E, uint64_t MaxSteps) {
  InterpResult R;
  FailStatus = InterpStatus::Value;
  FailMessage.clear();
  FuelLeft = MaxSteps;
  Value *V = evalIn(E, nullptr, R.Stats);
  if (!V) {
    R.Status = FailStatus == InterpStatus::Value ? InterpStatus::RuntimeError
                                                 : FailStatus;
    R.Message = FailMessage;
    return R;
  }
  R.Status = InterpStatus::Value;
  R.V = V;
  return R;
}

Value *Interp::evalIn(const Expr *E, const EnvNode *Env, InterpStats &S) {
  // Iterative on tail positions; recursive elsewhere.
  for (;;) {
    if (FuelLeft == 0) {
      FailStatus = InterpStatus::OutOfFuel;
      FailMessage = "step budget exhausted";
      return nullptr;
    }
    --FuelLeft;
    ++S.EvalSteps;

    switch (E->tag()) {
    case Expr::Tag::Var: {
      Value *V = lookup(Env, cast<VarExpr>(E)->name());
      if (!V) {
        FailStatus = InterpStatus::RuntimeError;
        FailMessage = "unbound variable " +
                      std::string(cast<VarExpr>(E)->name().str());
        return nullptr;
      }
      return force(V, S);
    }

    case Expr::Tag::Lit: {
      const Literal &L = cast<LitExpr>(E)->lit();
      Value *V = newValue();
      switch (L.tag()) {
      case Literal::Tag::IntHash:
        V->T = Value::Tag::IntHash;
        V->I = L.intValue();
        break;
      case Literal::Tag::DoubleHash:
        V->T = Value::Tag::DoubleHash;
        V->D = L.doubleValue();
        break;
      case Literal::Tag::String:
        V->T = Value::Tag::Str;
        V->S = L.stringValue();
        break;
      }
      return V;
    }

    case Expr::Tag::App: {
      const auto *A = cast<AppExpr>(E);
      Value *Fn = evalIn(A->fn(), Env, S);
      if (!Fn)
        return nullptr;
      Value *Arg;
      if (A->strictArg()) {
        // Unlifted argument: call-by-value (an "integer register").
        Arg = evalIn(A->arg(), Env, S);
      } else {
        // Lifted argument: pass a pointer to a heap thunk.
        Arg = makeThunk(A->arg(), Env, S);
      }
      if (!Arg)
        return nullptr;
      if (Fn->T != Value::Tag::Closure) {
        Fn = force(Fn, S);
        if (!Fn)
          return nullptr;
      }
      if (Fn->T != Value::Tag::Closure) {
        FailStatus = InterpStatus::RuntimeError;
        FailMessage = "applying a non-function value";
        return nullptr;
      }
      Env = extend(Fn->CapturedEnv, Fn->Lam->var(), Arg);
      E = Fn->Lam->body();
      continue; // tail call
    }

    case Expr::Tag::TyApp:
      // Erased.
      E = cast<TyAppExpr>(E)->fn();
      continue;
    case Expr::Tag::TyLam:
      // Erased (evaluation proceeds under Λ, as in L).
      E = cast<TyLamExpr>(E)->body();
      continue;

    case Expr::Tag::Lam: {
      const auto *L = cast<LamExpr>(E);
      ++S.ClosureAllocs;
      Value *V = newValue();
      V->T = Value::Tag::Closure;
      V->Lam = L;
      V->CapturedEnv = Env;
      return V;
    }

    case Expr::Tag::Let: {
      const auto *L = cast<LetExpr>(E);
      Value *Rhs;
      if (L->strict()) {
        Rhs = evalIn(L->rhs(), Env, S);
        if (!Rhs)
          return nullptr;
      } else {
        Rhs = makeThunk(L->rhs(), Env, S);
      }
      Env = extend(Env, L->var(), Rhs);
      E = L->body();
      continue;
    }

    case Expr::Tag::LetRec: {
      const auto *L = cast<LetRecExpr>(E);
      // Tie the knot: allocate thunks, extend, then point the thunks at
      // the extended environment.
      std::vector<Value *> Thunks;
      for (const RecBinding &B : L->bindings()) {
        (void)B;
        Thunks.push_back(makeThunk(nullptr, nullptr, S));
      }
      const EnvNode *NewEnv = Env;
      for (size_t I = 0; I != Thunks.size(); ++I)
        NewEnv = extend(NewEnv, L->bindings()[I].Var, Thunks[I]);
      for (size_t I = 0; I != Thunks.size(); ++I) {
        Thunks[I]->Suspended = L->bindings()[I].Rhs;
        Thunks[I]->SuspendedEnv = NewEnv;
      }
      Env = NewEnv;
      E = L->body();
      continue;
    }

    case Expr::Tag::Case: {
      const auto *Cs = cast<CaseExpr>(E);
      Value *Scrut = evalIn(Cs->scrut(), Env, S);
      if (!Scrut)
        return nullptr;
      const Alt *Taken = nullptr;
      const Alt *Default = nullptr;
      for (const Alt &A : Cs->alts()) {
        switch (A.Kind) {
        case Alt::AltKind::Default:
          Default = &A;
          break;
        case Alt::AltKind::ConPat:
          if (Scrut->T == Value::Tag::Con && Scrut->DC == A.Con)
            Taken = &A;
          break;
        case Alt::AltKind::LitPat:
          if (Scrut->T == Value::Tag::IntHash &&
              A.Lit.tag() == Literal::Tag::IntHash &&
              Scrut->I == A.Lit.intValue())
            Taken = &A;
          else if (Scrut->T == Value::Tag::DoubleHash &&
                   A.Lit.tag() == Literal::Tag::DoubleHash &&
                   Scrut->D == A.Lit.doubleValue())
            Taken = &A;
          break;
        case Alt::AltKind::TuplePat:
          if (Scrut->T == Value::Tag::Tuple)
            Taken = &A;
          break;
        }
        if (Taken)
          break;
      }
      if (!Taken)
        Taken = Default;
      if (!Taken) {
        FailStatus = InterpStatus::RuntimeError;
        FailMessage = "pattern-match failure in case";
        return nullptr;
      }
      if (Taken->Kind == Alt::AltKind::ConPat ||
          Taken->Kind == Alt::AltKind::TuplePat) {
        for (size_t I = 0; I != Taken->Binders.size(); ++I)
          Env = extend(Env, Taken->Binders[I], Scrut->Fields[I]);
      }
      E = Taken->Rhs;
      continue;
    }

    case Expr::Tag::Con: {
      const auto *Con = cast<ConExpr>(E);
      const std::vector<bool> &Strict = fieldStrictness(Con->dataCon());
      Value *V = newValue();
      V->T = Value::Tag::Con;
      V->DC = Con->dataCon();
      V->Fields.reserve(Con->args().size());
      for (size_t I = 0; I != Con->args().size(); ++I) {
        Value *F;
        if (Strict[I]) {
          F = evalIn(Con->args()[I], Env, S);
          if (!F)
            return nullptr;
        } else {
          F = makeThunk(Con->args()[I], Env, S);
        }
        V->Fields.push_back(F);
      }
      ++S.BoxAllocs;
      return V;
    }

    case Expr::Tag::Prim: {
      const auto *P = cast<PrimOpExpr>(E);
      Value *Args[2] = {nullptr, nullptr};
      for (size_t I = 0; I != P->args().size(); ++I) {
        Args[I] = evalIn(P->args()[I], Env, S);
        if (!Args[I])
          return nullptr;
      }
      ++S.PrimOps;
      Value *V = newValue();
      auto IntResult = [&](int64_t X) {
        V->T = Value::Tag::IntHash;
        V->I = X;
        return V;
      };
      auto DoubleResult = [&](double X) {
        V->T = Value::Tag::DoubleHash;
        V->D = X;
        return V;
      };
      switch (P->op()) {
      case PrimOp::AddI: return IntResult(Args[0]->I + Args[1]->I);
      case PrimOp::SubI: return IntResult(Args[0]->I - Args[1]->I);
      case PrimOp::MulI: return IntResult(Args[0]->I * Args[1]->I);
      case PrimOp::QuotI:
      case PrimOp::RemI:
        if (Args[1]->I == 0) {
          FailStatus = InterpStatus::RuntimeError;
          FailMessage = "divide by zero";
          return nullptr;
        }
        return IntResult(P->op() == PrimOp::QuotI
                             ? Args[0]->I / Args[1]->I
                             : Args[0]->I % Args[1]->I);
      case PrimOp::NegI: return IntResult(-Args[0]->I);
      case PrimOp::LtI: return IntResult(Args[0]->I < Args[1]->I ? 1 : 0);
      case PrimOp::LeI: return IntResult(Args[0]->I <= Args[1]->I ? 1 : 0);
      case PrimOp::GtI: return IntResult(Args[0]->I > Args[1]->I ? 1 : 0);
      case PrimOp::GeI: return IntResult(Args[0]->I >= Args[1]->I ? 1 : 0);
      case PrimOp::EqI: return IntResult(Args[0]->I == Args[1]->I ? 1 : 0);
      case PrimOp::NeI: return IntResult(Args[0]->I != Args[1]->I ? 1 : 0);
      case PrimOp::AddD: return DoubleResult(Args[0]->D + Args[1]->D);
      case PrimOp::SubD: return DoubleResult(Args[0]->D - Args[1]->D);
      case PrimOp::MulD: return DoubleResult(Args[0]->D * Args[1]->D);
      case PrimOp::DivD: return DoubleResult(Args[0]->D / Args[1]->D);
      case PrimOp::NegD: return DoubleResult(-Args[0]->D);
      case PrimOp::LtD: return IntResult(Args[0]->D < Args[1]->D ? 1 : 0);
      case PrimOp::EqD: return IntResult(Args[0]->D == Args[1]->D ? 1 : 0);
      case PrimOp::Int2Double:
        return DoubleResult(double(Args[0]->I));
      case PrimOp::Double2Int:
        return IntResult(int64_t(Args[0]->D));
      case PrimOp::IsTrue: {
        V->T = Value::Tag::Con;
        V->DC = Args[0]->I != 0 ? C.trueCon() : C.falseCon();
        ++S.BoxAllocs;
        return V;
      }
      }
      FailStatus = InterpStatus::RuntimeError;
      FailMessage = "unknown primop";
      return nullptr;
    }

    case Expr::Tag::UnboxedTuple: {
      // No heap allocation: the fields travel in registers. Fields are
      // evaluated eagerly (see DESIGN.md on this simplification).
      const auto *U = cast<UnboxedTupleExpr>(E);
      Value *V = newValue();
      V->T = Value::Tag::Tuple;
      V->Fields.reserve(U->elems().size());
      for (const Expr *El : U->elems()) {
        Value *F = evalIn(El, Env, S);
        if (!F)
          return nullptr;
        V->Fields.push_back(F);
      }
      ++S.TupleMoves;
      return V;
    }

    case Expr::Tag::Error: {
      const auto *Err = cast<ErrorExpr>(E);
      Value *Msg = evalIn(Err->message(), Env, S);
      FailStatus = InterpStatus::Bottom;
      FailMessage =
          Msg && Msg->T == Value::Tag::Str
              ? std::string(Msg->S.str())
              : "error";
      return nullptr;
    }
    }
    assert(false && "unknown expr tag");
    return nullptr;
  }
}

std::optional<int64_t> Interp::asIntHash(const Value *V) {
  if (V && V->T == Value::Tag::IntHash)
    return V->I;
  return std::nullopt;
}

std::optional<double> Interp::asDoubleHash(const Value *V) {
  if (V && V->T == Value::Tag::DoubleHash)
    return V->D;
  return std::nullopt;
}

std::optional<int64_t> Interp::asBoxedInt(const Value *V) {
  if (!V || V->T != Value::Tag::Con || V->Fields.size() != 1)
    return std::nullopt;
  const Value *F = V->Fields[0];
  if (F->T == Value::Tag::IntHash)
    return F->I;
  return std::nullopt;
}

std::optional<bool> Interp::asBool(const Value *V) {
  if (!V || V->T != Value::Tag::Con)
    return std::nullopt;
  if (V->DC == C.trueCon())
    return true;
  if (V->DC == C.falseCon())
    return false;
  return std::nullopt;
}

std::string Interp::show(const Value *V) {
  if (!V)
    return "<error>";
  std::ostringstream OS;
  switch (V->T) {
  case Value::Tag::IntHash:
    OS << V->I << "#";
    break;
  case Value::Tag::DoubleHash:
    OS << V->D << "##";
    break;
  case Value::Tag::Str:
    OS << "\"" << V->S.str() << "\"";
    break;
  case Value::Tag::Con: {
    OS << V->DC->name().str();
    for (Value *F : V->Fields) {
      InterpStats Dummy;
      Value *Forced = force(F, Dummy);
      OS << " " << (Forced ? show(Forced) : "<bottom>");
    }
    break;
  }
  case Value::Tag::Closure:
    OS << "<closure>";
    break;
  case Value::Tag::Tuple: {
    OS << "(#";
    bool First = true;
    for (Value *F : V->Fields) {
      if (!First)
        OS << ",";
      First = false;
      OS << " " << show(F);
    }
    OS << " #)";
    break;
  }
  case Value::Tag::Thunk:
    OS << "<thunk>";
    break;
  }
  return OS.str();
}
