//===- Interp.h - Instrumented evaluator for core programs ------*- C++ -*-===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A big-step, environment-based evaluator for core programs with an
/// explicit *cost model*: thunk allocations, thunk forces, constructor
/// (box) allocations, closure allocations, and primop executions are all
/// counted. Strictness is driven by the kinds recorded at elaboration
/// time — lifted binders get thunks, unlifted binders are evaluated
/// eagerly — so the counters reproduce the boxed-versus-unboxed cost
/// shapes of Sections 2.1, 2.3 and 7.3 deterministically, independent of
/// wall-clock noise.
///
/// Type and rep abstraction/application are fully erased at runtime, as
/// levity polymorphism requires (Section 4.3: "the compiled code remains
/// the same as it always was").
///
/// The evaluator is fully iterative: an explicit frame stack replaces C++
/// recursion, so not only tail-recursive loops (sumTo#) but also deeply
/// nested thunk chains — the boxed sumTo's 20000-deep accumulator — run
/// in constant C++ stack. Deep programs end in OutOfFuel, never a stack
/// overflow.
///
/// One Interp is single-threaded mutable state (value pool, environments,
/// memoized global thunks, fuel); concurrent execution uses one Interp per
/// thread over a shared immutable program (see driver::Executor).
///
//===----------------------------------------------------------------------===//

#ifndef LEVITY_RUNTIME_INTERP_H
#define LEVITY_RUNTIME_INTERP_H

#include "core/CoreContext.h"
#include "core/Program.h"
#include "core/TypeCheck.h"

#include <deque>
#include <optional>
#include <string>
#include <unordered_map>

namespace levity {
namespace runtime {

struct EnvNode;

/// A runtime value (or thunk). Pool-allocated by the Interp; never freed
/// individually.
struct Value {
  enum class Tag : uint8_t {
    IntHash,    ///< Unboxed machine integer (an "integer register").
    DoubleHash, ///< Unboxed double (a "float register").
    Str,        ///< String constant.
    Con,        ///< Constructor value (heap box).
    Closure,    ///< Function value (heap closure).
    Tuple,      ///< Unboxed tuple: values in several registers, no box.
    Thunk       ///< Suspended computation (heap thunk).
  };

  Tag T;
  int64_t I = 0;
  double D = 0;
  Symbol S;

  // Con / Tuple.
  const core::DataCon *DC = nullptr;
  std::vector<Value *> Fields;

  // Closure.
  const core::LamExpr *Lam = nullptr;
  const EnvNode *CapturedEnv = nullptr;

  // Thunk.
  const core::Expr *Suspended = nullptr;
  const EnvNode *SuspendedEnv = nullptr;
  Value *Forced = nullptr;
  bool BlackHole = false;

  /// Run epoch this value was allocated in (see Interp::beginRunEpoch).
  /// Values minted outside any epoch — global thunks from loadProgram —
  /// carry epoch 0 and are never reclaimed.
  uint64_t Epoch = 0;
};

/// A persistent environment (closures share tails).
struct EnvNode {
  Symbol Name;
  Value *V;
  const EnvNode *Next;
};

/// Deterministic cost counters (the machine-cost side of every bench).
struct InterpStats {
  uint64_t EvalSteps = 0;     ///< Expression nodes evaluated.
  uint64_t ThunkAllocs = 0;   ///< Lazy bindings allocated.
  uint64_t ThunkForces = 0;   ///< Thunks entered.
  uint64_t BoxAllocs = 0;     ///< Constructor cells allocated.
  uint64_t ClosureAllocs = 0; ///< Function closures allocated.
  uint64_t PrimOps = 0;       ///< Primitive operations executed.
  uint64_t TupleMoves = 0;    ///< Unboxed tuples constructed (register
                              ///< moves, no allocation).
  /// Pool cells (Values + EnvNodes) live at the end of the run — the
  /// retained-memory meter. Under the driver's run epochs this plateaus
  /// once every global the workload touches has been forced; without
  /// epochs it is the interpreter's monotone high-water mark.
  uint64_t PeakHeapCells = 0;
  /// PeakHeapCells in bytes (cells weighted by their C++ object size).
  uint64_t PeakHeapBytes = 0;

  /// Total heap traffic: what a GC would see.
  uint64_t heapAllocations() const {
    return ThunkAllocs + BoxAllocs + ClosureAllocs;
  }
};

enum class InterpStatus : uint8_t {
  Value,
  Bottom,       ///< error was called.
  RuntimeError, ///< <<loop>>, division by zero, pattern-match failure.
  OutOfFuel
};

struct InterpResult {
  InterpStatus Status;
  Value *V = nullptr;
  std::string Message; ///< error/RuntimeError payload.
  InterpStats Stats;
};

/// Evaluates core programs.
class Interp {
public:
  explicit Interp(core::CoreContext &C) : C(C), Checker(C) {}

  /// Installs top-level bindings (mutually recursive: each is a thunk
  /// that can see all the others).
  void loadProgram(const core::CoreProgram &P);

  /// Evaluates an expression to WHNF under the loaded program.
  InterpResult eval(const core::Expr *E, uint64_t MaxSteps = 200000000);

  //===--------------------------------------------------------------------===//
  // Run epochs — the pool-reclamation contract (driver::Executor)
  //===--------------------------------------------------------------------===//
  //
  // The value/env pools are bump regions: nothing is freed individually.
  // A *run epoch* brackets one run so the run's cells can be reclaimed
  // wholesale: beginRunEpoch() marks the pool high-water points, and
  // endRunEpoch() truncates both pools back to the mark — unless the run
  // wrote a pointer from an older value into this epoch's region (a
  // global thunk forced for the first time stores its Forced result),
  // in which case the whole epoch is *promoted* (kept) instead. Steady
  // state — every global the workload touches already forced — promotes
  // nothing, so long-lived Executors plateau instead of growing per run.
  //
  // Safety: the only old→new pointer writes the evaluator performs are
  // thunk updates (Value::Forced); both update sites flag the promotion.
  // Caller contract: everything reachable from the run's InterpResult
  // (display strings, scalars) must be extracted before endRunEpoch —
  // truncation invalidates the run's Value pointers.

  /// Pool high-water marks at beginRunEpoch time (opaque to callers).
  struct RunEpochMark {
    size_t PoolSize = 0;
    size_t EnvPoolSize = 0;
  };

  /// Starts a run epoch: values allocated from here on belong to it.
  RunEpochMark beginRunEpoch() {
    ++CurEpoch;
    EpochPromoted = false;
    return {Pool.size(), EnvPool.size()};
  }

  /// Ends the epoch begun by the matching beginRunEpoch: reclaims the
  /// run's cells, or keeps them all when the run was promoted.
  void endRunEpoch(RunEpochMark M) {
    if (EpochPromoted)
      return;
    Pool.resize(M.PoolSize);
    EnvPool.resize(M.EnvPoolSize);
  }

  /// Cells (Values + EnvNodes) currently held by the pools.
  size_t liveCells() const { return Pool.size() + EnvPool.size(); }

  /// Convenience accessors for test/bench assertions.
  static std::optional<int64_t> asIntHash(const Value *V);
  static std::optional<double> asDoubleHash(const Value *V);
  /// Reads a boxed Int (forces the I# field if needed — fields of I# are
  /// unlifted so they are already values).
  std::optional<int64_t> asBoxedInt(const Value *V);
  std::optional<bool> asBool(const Value *V);
  std::string show(const Value *V);

private:
  Value *newValue() {
    Pool.emplace_back();
    Pool.back().Epoch = CurEpoch;
    return &Pool.back();
  }
  const EnvNode *extend(const EnvNode *Env, Symbol Name, Value *V) {
    EnvPool.push_back({Name, V, Env});
    return &EnvPool.back();
  }
  Value *lookup(const EnvNode *Env, Symbol Name);

  Value *makeThunk(const core::Expr *E, const EnvNode *Env,
                   InterpStats &S) {
    ++S.ThunkAllocs;
    Value *V = newValue();
    V->T = Value::Tag::Thunk;
    V->Suspended = E;
    V->SuspendedEnv = Env;
    return V;
  }

  /// Whether a data-constructor field is unlifted (strict).
  const std::vector<bool> &fieldStrictness(const core::DataCon *DC);

  /// One suspended continuation of the iterative engine (what a recursive
  /// evaluator would keep in a C++ stack frame).
  struct Frame;

  /// The iterative evaluator; returns nullptr on Bottom/RuntimeError with
  /// Fail* set. Constant C++ stack depth regardless of program shape.
  Value *evalIn(const core::Expr *E, const EnvNode *Env, InterpStats &S);
  /// Forces \p V to WHNF (iteratively). Used by show()/display paths.
  Value *force(Value *V, InterpStats &S);
  /// Executes one primop on already-evaluated arguments.
  Value *execPrim(const core::PrimOpExpr *P, Value *A0, Value *A1,
                  InterpStats &S);

  core::CoreContext &C;
  core::CoreChecker Checker;
  std::deque<Value> Pool;
  std::deque<EnvNode> EnvPool;
  std::unordered_map<Symbol, Value *, SymbolHash> Globals;
  std::unordered_map<const core::DataCon *, std::vector<bool>> StrictCache;

  // Failure channel (no exceptions).
  InterpStatus FailStatus = InterpStatus::Value;
  std::string FailMessage;
  uint64_t FuelLeft = 0;

  // Run-epoch state (see beginRunEpoch). Epoch 0 = outside any epoch.
  uint64_t CurEpoch = 0;
  /// Set when this epoch wrote an old→new pointer (first-force thunk
  /// update on a pre-epoch value): endRunEpoch must keep the region.
  bool EpochPromoted = false;

  /// Flags the epoch promoted when a thunk update stores a this-epoch
  /// result into a pre-epoch value. Called at both update sites.
  void noteUpdate(const Value *Target, const Value *Result) {
    if (Target->Epoch != CurEpoch && Result->Epoch == CurEpoch)
      EpochPromoted = true;
  }
};

} // namespace runtime
} // namespace levity

#endif // LEVITY_RUNTIME_INTERP_H
