//===- Samples.cpp - The paper's example programs as core IR --------------===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "runtime/Samples.h"

using namespace levity;
using namespace levity::runtime;
using namespace levity::core;

const DataCon *runtime::pairDataCon(CoreContext &C) {
  Symbol Name = C.sym("MkPair");
  if (const DataCon *DC = C.lookupDataCon(Name))
    return DC;
  TyCon *PairTC = C.makeTyCon(C.sym("Pair"), C.typeKind(), C.liftedRep());
  return C.makeDataCon(Name, PairTC, {}, {}, {C.intTy(), C.intTy()});
}

namespace {

/// case <scrut:Int> of { I# <binder> -> <rhs> }, at result type \p ResTy.
const Expr *caseInt(CoreContext &C, const Expr *Scrut, Symbol Binder,
                    const Type *ResTy, const Expr *Rhs) {
  Alt A;
  A.Kind = Alt::AltKind::ConPat;
  A.Con = C.iHashCon();
  A.Binders = C.arena().copyArray({Binder});
  A.Rhs = Rhs;
  return C.caseOf(Scrut, ResTy, {&A, 1});
}

/// I# e (boxing).
const Expr *box(CoreContext &C, const Expr *E) {
  return C.conApp(C.iHashCon(), {}, {&E, 1});
}

} // namespace

TopBinding runtime::buildPlusInt(CoreContext &C) {
  // plusInt = \a:Int. \b:Int. case a of I# x ->
  //             case b of I# y -> I# (x +# y)
  Symbol A = C.sym("a"), B = C.sym("b"), X = C.sym("x"), Y = C.sym("y");
  const Expr *Sum =
      C.primOp(PrimOp::AddI, {C.var(X), C.var(Y)});
  const Expr *Body = caseInt(
      C, C.var(A), X, C.intTy(),
      caseInt(C, C.var(B), Y, C.intTy(), box(C, Sum)));
  const Expr *Fn = C.lam(A, C.intTy(), C.lam(B, C.intTy(), Body));
  const Type *Ty = C.funTy(C.intTy(), C.funTy(C.intTy(), C.intTy()));
  return {C.sym("plusInt"), Ty, Fn};
}

TopBinding runtime::buildMinusInt(CoreContext &C) {
  Symbol A = C.sym("a"), B = C.sym("b"), X = C.sym("x"), Y = C.sym("y");
  const Expr *Diff =
      C.primOp(PrimOp::SubI, {C.var(X), C.var(Y)});
  const Expr *Body = caseInt(
      C, C.var(A), X, C.intTy(),
      caseInt(C, C.var(B), Y, C.intTy(), box(C, Diff)));
  const Expr *Fn = C.lam(A, C.intTy(), C.lam(B, C.intTy(), Body));
  const Type *Ty = C.funTy(C.intTy(), C.funTy(C.intTy(), C.intTy()));
  return {C.sym("minusInt"), Ty, Fn};
}

TopBinding runtime::buildSumToBoxed(CoreContext &C) {
  // sumTo = \acc:Int. \n:Int. case n of I# n# ->
  //   case n# of { 0# -> acc
  //              ; _  -> sumTo (plusInt acc n) (minusInt n (I# 1#)) }
  Symbol Acc = C.sym("acc"), N = C.sym("n"), NH = C.sym("n#");
  const Type *IntT = C.intTy();

  const Expr *Recurse = C.app(
      C.app(C.var(C.sym("sumTo")),
            C.app(C.app(C.var(C.sym("plusInt")), C.var(Acc), false),
                  C.var(N), false),
            false),
      C.app(C.app(C.var(C.sym("minusInt")), C.var(N), false),
            box(C, C.litInt(1)), false),
      false);

  Alt Zero;
  Zero.Kind = Alt::AltKind::LitPat;
  Zero.Lit = Literal::intHash(0);
  Zero.Rhs = C.var(Acc);
  Alt Other;
  Other.Kind = Alt::AltKind::Default;
  Other.Rhs = Recurse;
  Alt Alts[2] = {Zero, Other};
  const Expr *Inner = C.caseOf(C.var(NH), IntT, Alts);

  const Expr *Body = caseInt(C, C.var(N), NH, IntT, Inner);
  const Expr *Fn = C.lam(Acc, IntT, C.lam(N, IntT, Body));
  return {C.sym("sumTo"), C.funTy(IntT, C.funTy(IntT, IntT)), Fn};
}

TopBinding runtime::buildSumToUnboxed(CoreContext &C) {
  // sumTo# = \acc:Int#. \n:Int#.
  //   case n of { 0# -> acc; _ -> sumTo# (acc +# n) (n -# 1#) }
  Symbol Acc = C.sym("acc#"), N = C.sym("nn#");
  const Type *IH = C.intHashTy();

  const Expr *Recurse = C.app(
      C.app(C.var(C.sym("sumTo#")),
            C.primOp(PrimOp::AddI, {C.var(Acc), C.var(N)}), true),
      C.primOp(PrimOp::SubI, {C.var(N), C.litInt(1)}), true);

  Alt Zero;
  Zero.Kind = Alt::AltKind::LitPat;
  Zero.Lit = Literal::intHash(0);
  Zero.Rhs = C.var(Acc);
  Alt Other;
  Other.Kind = Alt::AltKind::Default;
  Other.Rhs = Recurse;
  Alt Alts[2] = {Zero, Other};
  const Expr *Body = C.caseOf(C.var(N), IH, Alts);

  const Expr *Fn = C.lam(Acc, IH, C.lam(N, IH, Body));
  return {C.sym("sumTo#"), C.funTy(IH, C.funTy(IH, IH)), Fn};
}

TopBinding runtime::buildSumToDouble(CoreContext &C) {
  // sumToD# = \acc:Double#. \n:Double#.
  //   case (n ==## 0.0##) of { 1# -> acc
  //                          ; _ -> sumToD# (acc +## n) (n -## 1.0##) }
  Symbol Acc = C.sym("accD#"), N = C.sym("nD#");
  const Type *DH = C.doubleHashTy();

  const Expr *Recurse = C.app(
      C.app(C.var(C.sym("sumToD#")),
            C.primOp(PrimOp::AddD, {C.var(Acc), C.var(N)}), true),
      C.primOp(PrimOp::SubD, {C.var(N), C.litDouble(1.0)}), true);

  Alt IsZero;
  IsZero.Kind = Alt::AltKind::LitPat;
  IsZero.Lit = Literal::intHash(1);
  IsZero.Rhs = C.var(Acc);
  Alt Other;
  Other.Kind = Alt::AltKind::Default;
  Other.Rhs = Recurse;
  Alt Alts[2] = {IsZero, Other};
  const Expr *Body = C.caseOf(
      C.primOp(PrimOp::EqD, {C.var(N), C.litDouble(0.0)}), DH, Alts);

  const Expr *Fn = C.lam(Acc, DH, C.lam(N, DH, Body));
  return {C.sym("sumToD#"), C.funTy(DH, C.funTy(DH, DH)), Fn};
}

TopBinding runtime::buildDivModUnboxed(CoreContext &C) {
  // divMod# = \a:Int#. \b:Int#. (# quotInt# a b, remInt# a b #)
  Symbol A = C.sym("dmA#"), B = C.sym("dmB#");
  const Type *IH = C.intHashTy();
  const Expr *Quot = C.primOp(PrimOp::QuotI, {C.var(A), C.var(B)});
  const Expr *Rem = C.primOp(PrimOp::RemI, {C.var(A), C.var(B)});
  const Expr *Elems[2] = {Quot, Rem};
  const Expr *Tuple = C.unboxedTuple(Elems);
  const Expr *Fn = C.lam(A, IH, C.lam(B, IH, Tuple));
  const Type *TupleTy = C.unboxedTupleTy({IH, IH});
  return {C.sym("divMod#"), C.funTy(IH, C.funTy(IH, TupleTy)), Fn};
}

TopBinding runtime::buildDivModBoxed(CoreContext &C) {
  // divModBoxed = \a:Int. \b:Int. case a of I# x -> case b of I# y ->
  //   MkPair (I# (quotInt# x y)) (I# (remInt# x y))
  const DataCon *MkPair = pairDataCon(C);
  Symbol A = C.sym("dmA"), B = C.sym("dmB"), X = C.sym("dmX"),
         Y = C.sym("dmY");
  const Type *IntT = C.intTy();
  const Type *PairT = C.conTy(MkPair->parent());

  const Expr *Quot =
      box(C, C.primOp(PrimOp::QuotI, {C.var(X), C.var(Y)}));
  const Expr *Rem = box(C, C.primOp(PrimOp::RemI, {C.var(X), C.var(Y)}));
  const Expr *Args[2] = {Quot, Rem};
  const Expr *Mk = C.conApp(MkPair, {}, Args);

  const Expr *Body = caseInt(C, C.var(A), X, PairT,
                             caseInt(C, C.var(B), Y, PairT, Mk));
  const Expr *Fn = C.lam(A, IntT, C.lam(B, IntT, Body));
  return {C.sym("divModBoxed"), C.funTy(IntT, C.funTy(IntT, PairT)), Fn};
}

CoreProgram runtime::buildSampleProgram(CoreContext &C) {
  CoreProgram P;
  P.Bindings.push_back(buildPlusInt(C));
  P.Bindings.push_back(buildMinusInt(C));
  P.Bindings.push_back(buildSumToBoxed(C));
  P.Bindings.push_back(buildSumToUnboxed(C));
  P.Bindings.push_back(buildSumToDouble(C));
  P.Bindings.push_back(buildDivModUnboxed(C));
  P.Bindings.push_back(buildDivModBoxed(C));
  return P;
}

const Expr *runtime::callSumToBoxed(CoreContext &C, int64_t N) {
  return C.app(C.app(C.var(C.sym("sumTo")), box(C, C.litInt(0)), false),
               box(C, C.litInt(N)), false);
}

const Expr *runtime::callSumToUnboxed(CoreContext &C, int64_t N) {
  return C.app(C.app(C.var(C.sym("sumTo#")), C.litInt(0), true),
               C.litInt(N), true);
}

const Expr *runtime::callSumToDouble(CoreContext &C, double N) {
  return C.app(C.app(C.var(C.sym("sumToD#")), C.litDouble(0.0), true),
               C.litDouble(N), true);
}

const Expr *runtime::callDivModUnboxed(CoreContext &C, int64_t A,
                                       int64_t B) {
  // case divMod# a b of (# q, r #) -> q *# 1000# +# r
  const Expr *Call =
      C.app(C.app(C.var(C.sym("divMod#")), C.litInt(A), true),
            C.litInt(B), true);
  Symbol Q = C.sym("q#"), R = C.sym("r#");
  Alt TupleAlt;
  TupleAlt.Kind = Alt::AltKind::TuplePat;
  TupleAlt.Binders = C.arena().copyArray({Q, R});
  TupleAlt.Rhs = C.primOp(
      PrimOp::AddI,
      {C.primOp(PrimOp::MulI, {C.var(Q), C.litInt(1000)}), C.var(R)});
  return C.caseOf(Call, C.intHashTy(), {&TupleAlt, 1});
}

const Expr *runtime::callDivModBoxed(CoreContext &C, int64_t A, int64_t B) {
  // case divModBoxed (I# a) (I# b) of MkPair q r ->
  //   case q of I# q# -> case r of I# r# -> q# *# 1000# +# r#
  const DataCon *MkPair = pairDataCon(C);
  const Expr *Call = C.app(
      C.app(C.var(C.sym("divModBoxed")), box(C, C.litInt(A)), false),
      box(C, C.litInt(B)), false);
  Symbol Q = C.sym("q"), R = C.sym("r"), QH = C.sym("qh#"),
         RH = C.sym("rh#");
  const Expr *Sum = C.primOp(
      PrimOp::AddI,
      {C.primOp(PrimOp::MulI, {C.var(QH), C.litInt(1000)}), C.var(RH)});
  const Expr *Inner =
      caseInt(C, C.var(Q), QH, C.intHashTy(),
              caseInt(C, C.var(R), RH, C.intHashTy(), Sum));
  Alt PairAlt;
  PairAlt.Kind = Alt::AltKind::ConPat;
  PairAlt.Con = MkPair;
  PairAlt.Binders = C.arena().copyArray({Q, R});
  PairAlt.Rhs = Inner;
  return C.caseOf(Call, C.intHashTy(), {&PairAlt, 1});
}
