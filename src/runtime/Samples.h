//===- Samples.h - The paper's example programs as core IR ------*- C++ -*-===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builders for the programs the paper uses as running examples, in core
/// IR form. Shared by unit tests, benchmarks (E1/E3/E8) and the example
/// executables:
///
///   * sumTo   — Section 2.1's boxed loop (thunks + boxes per iteration);
///   * sumTo#  — Section 2.1's unboxed loop (registers only);
///   * sumToD# — the Double# variant (float registers);
///   * divMod  — Section 2.3's multi-return, boxed pair vs unboxed tuple;
///   * plusInt — Section 2.1's unbox/rebox pattern.
///
//===----------------------------------------------------------------------===//

#ifndef LEVITY_RUNTIME_SAMPLES_H
#define LEVITY_RUNTIME_SAMPLES_H

#include "core/CoreContext.h"
#include "core/Program.h"

namespace levity {
namespace runtime {

/// Builds the boxed-pair type `data Pair = MkPair Int Int` in \p C (used
/// by the boxed divMod variant). Idempotent per context.
const core::DataCon *pairDataCon(core::CoreContext &C);

/// plusInt, minusInt :: Int -> Int -> Int (Section 2.1's unbox/rebox).
core::TopBinding buildPlusInt(core::CoreContext &C);
core::TopBinding buildMinusInt(core::CoreContext &C);

/// sumTo :: Int -> Int -> Int, the boxed loop. Requires plusInt/minusInt.
core::TopBinding buildSumToBoxed(core::CoreContext &C);

/// sumTo# :: Int# -> Int# -> Int#, the unboxed loop.
core::TopBinding buildSumToUnboxed(core::CoreContext &C);

/// sumToD# :: Double# -> Double# -> Double# (floating registers).
core::TopBinding buildSumToDouble(core::CoreContext &C);

/// divMod# :: Int# -> Int# -> (# Int#, Int# #): unboxed multi-return.
core::TopBinding buildDivModUnboxed(core::CoreContext &C);

/// divModBoxed :: Int -> Int -> Pair: heap-allocating multi-return.
core::TopBinding buildDivModBoxed(core::CoreContext &C);

/// A complete program with all of the above.
core::CoreProgram buildSampleProgram(core::CoreContext &C);

/// Convenience: the expression `sumTo (I# 0#) (I# n#)`.
const core::Expr *callSumToBoxed(core::CoreContext &C, int64_t N);
/// Convenience: the expression `sumTo# 0# n#`.
const core::Expr *callSumToUnboxed(core::CoreContext &C, int64_t N);
/// Convenience: `sumToD# 0.0## n##`.
const core::Expr *callSumToDouble(core::CoreContext &C, double N);
/// Convenience: `case divMod# a# b# of (# q, r #) -> q *# 1000# +# r`.
const core::Expr *callDivModUnboxed(core::CoreContext &C, int64_t A,
                                    int64_t B);
/// Convenience: boxed analogue returning q*1000+r as Int#.
const core::Expr *callDivModBoxed(core::CoreContext &C, int64_t A,
                                  int64_t B);

} // namespace runtime
} // namespace levity

#endif // LEVITY_RUNTIME_SAMPLES_H
