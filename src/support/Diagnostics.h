//===- Diagnostics.h - Diagnostic collection --------------------*- C++ -*-===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small diagnostics engine. Checkers and the surface-language pipeline
/// report problems here instead of throwing; callers inspect the engine
/// after a pass. Messages follow the style "lowercase start, no trailing
/// period". Each diagnostic carries an optional source location and a
/// machine-readable code so tests can assert on the *reason* a program was
/// rejected (e.g. the two levity restrictions of Section 5.1).
///
//===----------------------------------------------------------------------===//

#ifndef LEVITY_SUPPORT_DIAGNOSTICS_H
#define LEVITY_SUPPORT_DIAGNOSTICS_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace levity {

/// A position in surface source text (1-based; 0 means "unknown").
struct SourceLoc {
  uint32_t Line = 0;
  uint32_t Col = 0;

  bool isValid() const { return Line != 0; }
  friend bool operator==(SourceLoc A, SourceLoc B) {
    return A.Line == B.Line && A.Col == B.Col;
  }
};

/// Machine-readable diagnostic categories.
enum class DiagCode : uint8_t {
  None,
  LexError,
  ParseError,
  ScopeError,
  KindError,
  TypeError,
  OccursCheck,
  // The two restrictions of Section 5.1, checked post-inference:
  LevityPolymorphicBinder,
  LevityPolymorphicArgument,
  // Legacy sub-kinding baseline diagnostics (Section 3.2):
  SubKindError,
  InstantiationError,
  AmbiguousType,
  MissingInstance,
  DuplicateDefinition,
  ArityError,
  Internal,
};

/// Renders \p Code as a short stable mnemonic (for test assertions).
std::string_view diagCodeName(DiagCode Code);

enum class Severity : uint8_t { Note, Warning, Error };

struct Diagnostic {
  Severity Sev = Severity::Error;
  DiagCode Code = DiagCode::None;
  SourceLoc Loc;
  std::string Message;
};

/// Collects diagnostics for one pipeline run.
class DiagnosticEngine {
public:
  void error(DiagCode Code, std::string Message, SourceLoc Loc = {}) {
    Diags.push_back({Severity::Error, Code, Loc, std::move(Message)});
    ++NumErrors;
  }

  void warning(DiagCode Code, std::string Message, SourceLoc Loc = {}) {
    Diags.push_back({Severity::Warning, Code, Loc, std::move(Message)});
  }

  void note(std::string Message, SourceLoc Loc = {}) {
    Diags.push_back({Severity::Note, DiagCode::None, Loc, std::move(Message)});
  }

  bool hasErrors() const { return NumErrors != 0; }
  size_t numErrors() const { return NumErrors; }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// \returns true if any error diagnostic carries \p Code.
  bool hasError(DiagCode Code) const {
    for (const Diagnostic &D : Diags)
      if (D.Sev == Severity::Error && D.Code == Code)
        return true;
    return false;
  }

  /// Formats all diagnostics, one per line, for human consumption.
  std::string str() const;

  void clear() {
    Diags.clear();
    NumErrors = 0;
  }

  /// \returns the number of diagnostics recorded (for speculation marks).
  size_t size() const { return Diags.size(); }

  /// Rolls back to the first \p Count diagnostics. Used by the parser
  /// when speculative parses fail and are retried another way.
  void truncate(size_t Count) {
    if (Count >= Diags.size())
      return;
    Diags.resize(Count);
    NumErrors = 0;
    for (const Diagnostic &D : Diags)
      if (D.Sev == Severity::Error)
        ++NumErrors;
  }

private:
  std::vector<Diagnostic> Diags;
  size_t NumErrors = 0;
};

} // namespace levity

#endif // LEVITY_SUPPORT_DIAGNOSTICS_H
