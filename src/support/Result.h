//===- Result.h - Error-or-value return type --------------------*- C++ -*-===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Result<T>: a value or an error message. The library does not use
/// exceptions; checkers that can fail locally return Result and larger
/// passes accumulate into DiagnosticEngine.
///
//===----------------------------------------------------------------------===//

#ifndef LEVITY_SUPPORT_RESULT_H
#define LEVITY_SUPPORT_RESULT_H

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace levity {

/// Tag type for constructing a failed Result.
struct Err {
  std::string Message;
};

/// Makes a failed result with \p Message.
inline Err err(std::string Message) { return Err{std::move(Message)}; }

/// A value of type T or an error message.
template <typename T> class Result {
public:
  Result(T Value) : Storage(std::in_place_index<0>, std::move(Value)) {}
  Result(Err E) : Storage(std::in_place_index<1>, std::move(E.Message)) {}

  bool ok() const { return Storage.index() == 0; }
  explicit operator bool() const { return ok(); }

  T &value() {
    assert(ok() && "accessing value of failed Result");
    return std::get<0>(Storage);
  }
  const T &value() const {
    assert(ok() && "accessing value of failed Result");
    return std::get<0>(Storage);
  }

  const std::string &error() const {
    assert(!ok() && "accessing error of successful Result");
    return std::get<1>(Storage);
  }

  T &operator*() { return value(); }
  const T &operator*() const { return value(); }
  T *operator->() { return &value(); }
  const T *operator->() const { return &value(); }

private:
  std::variant<T, std::string> Storage;
};

} // namespace levity

#endif // LEVITY_SUPPORT_RESULT_H
