//===- FileOps.h - Crash-safe file primitives -------------------*- C++ -*-===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The small set of filesystem primitives the on-disk artifact store
/// (driver/ArtifactStore.h) is built on:
///
///   * writeFileAtomic — write to a temp file in the target directory,
///     fsync, then atomically rename over the destination. Readers never
///     observe a half-written file; a crash leaves either the old file or
///     the new one, never a torn mix.
///   * FileLock — an RAII advisory writer lock (POSIX flock / open lock
///     file). Cooperating processes serialize store writes through it;
///     readers never take it (rename is the publication point).
///   * readFileBinary / ensureDirectories / removeFile — thin
///     Result-returning wrappers used by the store.
///
/// Everything here is process- and thread-safe in the way the store
/// needs: distinct FileLock objects on one path exclude each other both
/// across processes (flock) and within one (the lock is on the open file
/// description, which each FileLock owns privately).
///
/// All POSIX paths are signal-hardened: open/read/write/fsync/flock
/// retry on EINTR, so a profiler tick or harness signal landing
/// mid-syscall never surfaces as a spurious store failure (close is
/// called exactly once — its post-EINTR state is unspecified).
///
//===----------------------------------------------------------------------===//

#ifndef LEVITY_SUPPORT_FILEOPS_H
#define LEVITY_SUPPORT_FILEOPS_H

#include "support/Result.h"

#include <string>
#include <string_view>

namespace levity {
namespace support {

/// Reads the whole file at \p Path as bytes. Fails (with a descriptive
/// message) when the file is missing or unreadable.
Result<std::string> readFileBinary(const std::string &Path);

/// Atomically replaces \p Path with \p Bytes: the data goes to a unique
/// temp file in the same directory (same filesystem, so rename cannot
/// degrade to copy), is flushed, then renamed over \p Path. On failure
/// the temp file is removed and \p Path is untouched.
Result<bool> writeFileAtomic(const std::string &Path, std::string_view Bytes);

/// mkdir -p. Succeeds when the directory already exists.
Result<bool> ensureDirectories(const std::string &Path);

/// Removes \p Path if present; returns whether a file was removed.
/// Missing files are not an error (concurrent eviction is expected).
bool removeFile(const std::string &Path);

/// An RAII advisory lock on a dedicated lock file. Construction creates
/// (if needed) and flock()s \p LockPath exclusively, blocking until the
/// lock is granted; destruction releases it. locked() reports whether
/// the lock was acquired — on platforms or filesystems without flock the
/// lock degrades to "not held" and callers fall back to atomic-rename
/// publication alone (still crash-safe, last writer wins).
class FileLock {
public:
  explicit FileLock(const std::string &LockPath);
  ~FileLock();
  FileLock(const FileLock &) = delete;
  FileLock &operator=(const FileLock &) = delete;

  /// True when the exclusive advisory lock is actually held.
  bool locked() const { return Fd >= 0; }

private:
  int Fd = -1;
};

} // namespace support
} // namespace levity

#endif // LEVITY_SUPPORT_FILEOPS_H
