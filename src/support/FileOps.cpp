//===- FileOps.cpp - Crash-safe file primitives ---------------------------===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "support/FileOps.h"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <system_error>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>
#define LEVITY_HAVE_FLOCK 1
#endif

using namespace levity;
using namespace levity::support;

namespace fs = std::filesystem;

#if defined(LEVITY_HAVE_FLOCK)
namespace {

// POSIX I/O with EINTR retries: a signal (profiler tick, SIGCHLD from a
// harness, a debugger attach) landing mid-syscall must never surface as
// a store read/write failure. close() is deliberately called once —
// after EINTR its fd state is unspecified, and retrying can close a
// descriptor another thread just opened.

int openRetry(const char *Path, int Flags, mode_t Mode = 0) {
  int Fd;
  do {
    Fd = ::open(Path, Flags, Mode);
  } while (Fd < 0 && errno == EINTR);
  return Fd;
}

bool readAllFd(int Fd, std::string &Out) {
  char Buf[1 << 16];
  for (;;) {
    ssize_t N;
    do {
      N = ::read(Fd, Buf, sizeof(Buf));
    } while (N < 0 && errno == EINTR);
    if (N < 0)
      return false;
    if (N == 0)
      return true;
    Out.append(Buf, static_cast<size_t>(N));
  }
}

bool writeAllFd(int Fd, std::string_view Bytes) {
  while (!Bytes.empty()) {
    ssize_t N = ::write(Fd, Bytes.data(), Bytes.size());
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Bytes.remove_prefix(static_cast<size_t>(N));
  }
  return true;
}

int fsyncRetry(int Fd) {
  int Rc;
  do {
    Rc = ::fsync(Fd);
  } while (Rc != 0 && errno == EINTR);
  return Rc;
}

} // namespace
#endif // LEVITY_HAVE_FLOCK

Result<std::string> support::readFileBinary(const std::string &Path) {
#if defined(LEVITY_HAVE_FLOCK)
  int Fd = openRetry(Path.c_str(), O_RDONLY | O_CLOEXEC);
  if (Fd < 0)
    return err("cannot open '" + Path + "' for reading: " +
               std::strerror(errno));
  std::string Bytes;
  bool Ok = readAllFd(Fd, Bytes);
  int ReadErrno = errno;
  ::close(Fd);
  if (!Ok)
    return err("read error on '" + Path + "': " +
               std::strerror(ReadErrno));
  return Bytes;
#else
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return err("cannot open '" + Path + "' for reading");
  std::string Bytes((std::istreambuf_iterator<char>(In)),
                    std::istreambuf_iterator<char>());
  if (In.bad())
    return err("read error on '" + Path + "'");
  return Bytes;
#endif
}

Result<bool> support::ensureDirectories(const std::string &Path) {
  std::error_code EC;
  fs::create_directories(Path, EC);
  if (EC && !fs::is_directory(Path))
    return err("cannot create directory '" + Path + "': " + EC.message());
  return true;
}

bool support::removeFile(const std::string &Path) {
  std::error_code EC;
  return fs::remove(Path, EC) && !EC;
}

Result<bool> support::writeFileAtomic(const std::string &Path,
                                      std::string_view Bytes) {
  fs::path Target(Path);
  fs::path Dir = Target.parent_path();
  if (!Dir.empty())
    if (Result<bool> R = ensureDirectories(Dir.string()); !R)
      return R;

  // Unique within and across processes: a per-process tag + a
  // process-local counter. On POSIX the tag is the pid; elsewhere a
  // startup timestamp stands in (collisions are then merely
  // astronomically unlikely rather than impossible — and that path also
  // lacks flock, so ArtifactStore's writer-exclusion degrades to
  // last-writer-wins there).
  static std::atomic<uint64_t> TmpCounter{0};
  uint64_t Seq = TmpCounter.fetch_add(1, std::memory_order_relaxed);
#if defined(__unix__) || defined(__APPLE__)
  uint64_t Pid = static_cast<uint64_t>(::getpid());
#else
  static const uint64_t ProcessTag = static_cast<uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
  uint64_t Pid = ProcessTag;
#endif
  fs::path Tmp = Target;
  Tmp += ".tmp." + std::to_string(Pid) + "." + std::to_string(Seq);

#if defined(LEVITY_HAVE_FLOCK)
  {
    int Fd = openRetry(Tmp.c_str(),
                       O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (Fd < 0)
      return err("cannot open temp file '" + Tmp.string() +
                 "' for writing: " + std::strerror(errno));
    bool Ok = writeAllFd(Fd, Bytes);
    // Flush the data to stable storage before publishing the name, so a
    // crash after the rename cannot surface an empty (but named)
    // artifact.
    Ok = Ok && fsyncRetry(Fd) == 0;
    int WriteErrno = errno;
    ::close(Fd);
    if (!Ok) {
      removeFile(Tmp.string());
      return err("write error on temp file '" + Tmp.string() + "': " +
                 std::strerror(WriteErrno));
    }
  }
#else
  {
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    if (!Out)
      return err("cannot open temp file '" + Tmp.string() + "' for writing");
    Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
    Out.flush();
    if (!Out) {
      removeFile(Tmp.string());
      return err("write error on temp file '" + Tmp.string() + "'");
    }
  }
#endif

  std::error_code EC;
  fs::rename(Tmp, Target, EC); // POSIX rename: atomic replacement.
  if (EC) {
    removeFile(Tmp.string());
    return err("cannot rename '" + Tmp.string() + "' over '" + Path +
               "': " + EC.message());
  }
  return true;
}

FileLock::FileLock(const std::string &LockPath) {
#if defined(LEVITY_HAVE_FLOCK)
  Fd = openRetry(LockPath.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
  if (Fd < 0)
    return;
  // flock blocks until granted, so a signal interrupting the wait is
  // routine — retry rather than degrade to an unlocked write.
  int Rc;
  do {
    Rc = ::flock(Fd, LOCK_EX);
  } while (Rc != 0 && errno == EINTR);
  if (Rc != 0) {
    ::close(Fd);
    Fd = -1;
  }
#else
  (void)LockPath; // Degrade: atomic rename alone still publishes safely.
#endif
}

FileLock::~FileLock() {
#if defined(LEVITY_HAVE_FLOCK)
  if (Fd >= 0) {
    ::flock(Fd, LOCK_UN);
    ::close(Fd);
  }
#endif
}
