//===- Symbol.h - Interned identifiers --------------------------*- C++ -*-===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interned identifiers. A Symbol is a cheap value type (one pointer) with
/// O(1) equality and hashing; the backing strings live in a SymbolTable's
/// arena. Names in every calculus (term variables, type variables, rep
/// variables, constructors) are Symbols.
///
//===----------------------------------------------------------------------===//

#ifndef LEVITY_SUPPORT_SYMBOL_H
#define LEVITY_SUPPORT_SYMBOL_H

#include "support/Arena.h"

#include <cassert>
#include <cstring>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace levity {

class SymbolTable;

/// An interned identifier; equality is pointer equality.
class Symbol {
public:
  Symbol() = default;

  std::string_view str() const {
    assert(Data && "querying the empty symbol");
    return {Data, Len};
  }

  bool valid() const { return Data != nullptr; }

  friend bool operator==(Symbol A, Symbol B) { return A.Data == B.Data; }
  friend bool operator!=(Symbol A, Symbol B) { return A.Data != B.Data; }
  /// A stable, deterministic order (interning order), suitable for sorted
  /// output. Not lexicographic.
  friend bool operator<(Symbol A, Symbol B) { return A.Seq < B.Seq; }

  size_t hash() const { return std::hash<const void *>()(Data); }

private:
  friend class SymbolTable;
  Symbol(const char *Data, uint32_t Len, uint32_t Seq)
      : Data(Data), Len(Len), Seq(Seq) {}

  const char *Data = nullptr;
  uint32_t Len = 0;
  uint32_t Seq = 0;
};

struct SymbolHash {
  size_t operator()(Symbol S) const { return S.hash(); }
};

/// Owns interned identifier strings and hands out Symbols. Internally
/// synchronized: interning and freshening may be called from many threads
/// (e.g. concurrent abstract-machine runs sharing one context's name
/// supply). Symbols themselves are immutable values and need no locking.
class SymbolTable {
public:
  SymbolTable() = default;
  SymbolTable(const SymbolTable &) = delete;
  SymbolTable &operator=(const SymbolTable &) = delete;

  /// Interns \p Name, returning the unique Symbol for it.
  Symbol intern(std::string_view Name) {
    std::lock_guard<std::mutex> Lock(Mutex);
    return internLocked(Name);
  }

  /// Interns a name guaranteed distinct from every symbol interned so far,
  /// derived from \p Base (e.g. "x" -> "x'3"). Used by capture-avoiding
  /// substitution and the ANF compiler's fresh-variable supply.
  Symbol fresh(std::string_view Base) {
    std::lock_guard<std::mutex> Lock(Mutex);
    std::string Candidate(Base);
    while (Map.count(Candidate))
      Candidate = std::string(Base) + "'" + std::to_string(FreshCounter++);
    return internLocked(Candidate);
  }

  size_t size() const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return Map.size();
  }

private:
  Symbol internLocked(std::string_view Name) {
    auto It = Map.find(Name);
    if (It != Map.end())
      return It->second;
    char *Mem = static_cast<char *>(Strings.allocate(Name.size() + 1, 1));
    std::memcpy(Mem, Name.data(), Name.size());
    Mem[Name.size()] = '\0';
    Symbol S(Mem, static_cast<uint32_t>(Name.size()),
             static_cast<uint32_t>(Map.size()));
    Map.emplace(std::string_view(Mem, Name.size()), S);
    return S;
  }

  mutable std::mutex Mutex;
  Arena Strings;
  std::unordered_map<std::string_view, Symbol> Map;
  uint64_t FreshCounter = 0;
};

} // namespace levity

#endif // LEVITY_SUPPORT_SYMBOL_H
