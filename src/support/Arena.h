//===- Arena.h - Bump-pointer arena allocator -------------------*- C++ -*-===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A simple bump-pointer arena. All AST nodes in the calculi live in arenas
/// owned by their context objects; nodes are immutable after construction
/// and never individually freed. Objects allocated here must be trivially
/// destructible (variable-length payloads are stored as arena-copied arrays
/// viewed through std::span).
///
/// Allocation is internally synchronized (one mutex around the shared
/// bump pointer), so many threads may allocate from one arena
/// concurrently — each allocate() call returns a block that is private to
/// its caller until published. That is what lets several
/// driver::Executors share one immutable Compilation while the abstract
/// machine allocates fresh terms during runs; concurrent allocations do
/// serialize on the lock. Published nodes are never moved or freed, so
/// readers need no locking.
///
//===----------------------------------------------------------------------===//

#ifndef LEVITY_SUPPORT_ARENA_H
#define LEVITY_SUPPORT_ARENA_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

namespace levity {

/// A bump-pointer allocator with geometrically growing slabs.
class Arena {
public:
  Arena() = default;
  Arena(const Arena &) = delete;
  Arena &operator=(const Arena &) = delete;

  /// Allocates \p Size bytes aligned to \p Align. Thread-safe; the
  /// returned block is private to the caller until it publishes it.
  void *allocate(size_t Size, size_t Align) {
    assert((Align & (Align - 1)) == 0 && "alignment must be a power of two");
    std::lock_guard<std::mutex> Lock(Mutex);
    uintptr_t P = reinterpret_cast<uintptr_t>(Cur);
    uintptr_t Aligned = (P + Align - 1) & ~(Align - 1);
    if (Aligned + Size > reinterpret_cast<uintptr_t>(End)) {
      growSlab(Size + Align);
      P = reinterpret_cast<uintptr_t>(Cur);
      Aligned = (P + Align - 1) & ~(Align - 1);
    }
    Cur = reinterpret_cast<char *>(Aligned + Size);
    ++NumAllocations;
    BytesUsed += Size;
    return reinterpret_cast<void *>(Aligned);
  }

  /// Constructs a \p T in the arena. T must be trivially destructible.
  template <typename T, typename... Args> T *create(Args &&...A) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena objects are never destroyed");
    void *Mem = allocate(sizeof(T), alignof(T));
    return new (Mem) T(std::forward<Args>(A)...);
  }

  /// Copies \p Elems into the arena, returning a stable span view.
  template <typename T> std::span<const T> copyArray(std::span<const T> Elems) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena arrays are never destroyed");
    if (Elems.empty())
      return {};
    void *Mem = allocate(sizeof(T) * Elems.size(), alignof(T));
    T *Out = static_cast<T *>(Mem);
    for (size_t I = 0, E = Elems.size(); I != E; ++I)
      new (Out + I) T(Elems[I]);
    return {Out, Elems.size()};
  }

  template <typename T>
  std::span<const T> copyArray(const std::vector<T> &Elems) {
    return copyArray(std::span<const T>(Elems.data(), Elems.size()));
  }

  template <typename T>
  std::span<const T> copyArray(std::initializer_list<T> Elems) {
    return copyArray(std::span<const T>(Elems.begin(), Elems.size()));
  }

  /// \returns total bytes reserved across all slabs.
  size_t bytesReserved() const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return BytesReserved;
  }

  /// \returns cumulative payload bytes handed out since construction or
  /// the last reset() (excludes alignment padding and slab slack). The
  /// run-scoped heap meter: monotone between resets, so a delta of two
  /// samples bounds one run's live allocation.
  size_t bytesUsed() const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return BytesUsed;
  }

  /// \returns the number of allocations served.
  size_t numAllocations() const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return NumAllocations;
  }

  /// Rewinds the arena to empty, *reusing* the largest slab instead of
  /// returning memory to the OS — the per-run reset point for run-scoped
  /// arenas (driver::Executor). Every pointer previously handed out is
  /// invalidated; callers must ensure no node allocated here survives
  /// the reset. Smaller slabs are freed so a one-off spike does not pin
  /// its peak forever; steady-state resets are a pointer rewind plus one
  /// vector pop loop. NumAllocations stays monotonic (it is a ledger,
  /// not a liveness count).
  void reset() {
    std::lock_guard<std::mutex> Lock(Mutex);
    if (Slabs.empty()) {
      BytesUsed = 0;
      return;
    }
    size_t Largest = 0;
    for (size_t I = 1, E = Slabs.size(); I != E; ++I)
      if (Slabs[I].Size > Slabs[Largest].Size)
        Largest = I;
    Slab Keep = std::move(Slabs[Largest]);
    Slabs.clear();
    Cur = Keep.Mem.get();
    End = Cur + Keep.Size;
    BytesReserved = Keep.Size;
    BytesUsed = 0;
    Slabs.push_back(std::move(Keep));
  }

private:
  void growSlab(size_t MinSize) {
    size_t SlabSize = Slabs.empty() ? 4096 : Slabs.back().Size * 2;
    if (SlabSize < MinSize)
      SlabSize = MinSize * 2;
    auto Mem = std::make_unique<char[]>(SlabSize);
    Cur = Mem.get();
    End = Cur + SlabSize;
    BytesReserved += SlabSize;
    Slabs.push_back({std::move(Mem), SlabSize});
  }

  struct Slab {
    std::unique_ptr<char[]> Mem;
    size_t Size;
  };

  mutable std::mutex Mutex;
  std::vector<Slab> Slabs;
  char *Cur = nullptr;
  char *End = nullptr;
  size_t BytesReserved = 0;
  size_t BytesUsed = 0;
  size_t NumAllocations = 0;
};

} // namespace levity

#endif // LEVITY_SUPPORT_ARENA_H
