//===- Diagnostics.cpp - Diagnostic collection ----------------------------===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"

#include <sstream>

using namespace levity;

std::string_view levity::diagCodeName(DiagCode Code) {
  switch (Code) {
  case DiagCode::None:
    return "none";
  case DiagCode::LexError:
    return "lex-error";
  case DiagCode::ParseError:
    return "parse-error";
  case DiagCode::ScopeError:
    return "scope-error";
  case DiagCode::KindError:
    return "kind-error";
  case DiagCode::TypeError:
    return "type-error";
  case DiagCode::OccursCheck:
    return "occurs-check";
  case DiagCode::LevityPolymorphicBinder:
    return "levity-polymorphic-binder";
  case DiagCode::LevityPolymorphicArgument:
    return "levity-polymorphic-argument";
  case DiagCode::SubKindError:
    return "sub-kind-error";
  case DiagCode::InstantiationError:
    return "instantiation-error";
  case DiagCode::AmbiguousType:
    return "ambiguous-type";
  case DiagCode::MissingInstance:
    return "missing-instance";
  case DiagCode::DuplicateDefinition:
    return "duplicate-definition";
  case DiagCode::ArityError:
    return "arity-error";
  case DiagCode::Internal:
    return "internal";
  }
  return "unknown";
}

std::string DiagnosticEngine::str() const {
  std::ostringstream OS;
  for (const Diagnostic &D : Diags) {
    switch (D.Sev) {
    case Severity::Note:
      OS << "note";
      break;
    case Severity::Warning:
      OS << "warning";
      break;
    case Severity::Error:
      OS << "error";
      break;
    }
    if (D.Loc.isValid())
      OS << " at " << D.Loc.Line << ":" << D.Loc.Col;
    if (D.Code != DiagCode::None)
      OS << " [" << diagCodeName(D.Code) << "]";
    OS << ": " << D.Message << "\n";
  }
  return OS.str();
}
