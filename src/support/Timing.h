//===- Timing.h - Wall-clock measurement helper -----------------*- C++ -*-===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one implementation of "milliseconds since a steady_clock start",
/// shared by every driver component that reports stage or run timings.
///
//===----------------------------------------------------------------------===//

#ifndef LEVITY_SUPPORT_TIMING_H
#define LEVITY_SUPPORT_TIMING_H

#include <chrono>

namespace levity {
namespace support {

/// Wall-clock milliseconds elapsed since \p Start.
inline double millisSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - Start)
      .count();
}

} // namespace support
} // namespace levity

#endif // LEVITY_SUPPORT_TIMING_H
