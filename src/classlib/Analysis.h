//===- Analysis.h - Recomputing Section 8.1's 34-of-76 ----------*- C++ -*-===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives the Section 8.1 experiment (E9): for every class in the
/// catalog, attempt to give the class variable the kind TYPE ν (ν a
/// fresh rep metavariable) and re-kind its method signatures with the
/// Section 5.2 unifier. The class is levity-generalizable iff ν stays
/// unconstrained. Also validates the six already-generalized functions.
///
//===----------------------------------------------------------------------===//

#ifndef LEVITY_CLASSLIB_ANALYSIS_H
#define LEVITY_CLASSLIB_ANALYSIS_H

#include <string>
#include <vector>

namespace levity {
namespace classlib {

struct ClassVerdict {
  std::string Name;
  std::string Module;
  bool FromBootLibrary = false;
  bool ValueKinded = false;   ///< Class variable has a value kind.
  bool Generalizable = false; ///< ν unconstrained after re-kinding.
  std::string Reason;         ///< Why not, when not generalizable.
};

struct AnalysisReport {
  std::vector<ClassVerdict> Verdicts;
  size_t NumClasses = 0;
  size_t NumGeneralizable = 0;
  size_t NumConstructorClasses = 0;

  /// Six generalized functions (name, elaborated type) — empty on error.
  std::vector<std::pair<std::string, std::string>> GeneralizedFunctions;

  /// Wall-clock per analysis stage, in run order (the driver renders
  /// these through its standard timing report — Session::analyzeCatalog).
  struct Stage {
    std::string Name;
    double Millis = 0;
  };
  std::vector<Stage> Stages;

  /// Diagnostics from the run, for debugging.
  std::string Log;
};

/// Runs the whole Section 8.1 analysis. Deterministic and self-contained.
AnalysisReport runClassAnalysis();

/// Renders the report as the paper-style table.
std::string formatReport(const AnalysisReport &R);

} // namespace classlib
} // namespace levity

#endif // LEVITY_CLASSLIB_ANALYSIS_H
