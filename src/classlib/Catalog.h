//===- Catalog.h - The base/ghc-prim class catalog (Section 8.1) -*- C++ -*-===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A machine-readable reconstruction of the 76 type classes of GHC 8.0's
/// `base` and `ghc-prim` (plus boot libraries where the exact roster of
/// the paper's count was not recoverable — marked in the entries), in the
/// surface language. Section 8.1 reports that 34 of the 76 can be
/// levity-generalized; classlib recomputes that split with the Section
/// 5.2 kind-inference machinery instead of transcribing it.
///
/// Method sets are *minimal complete definitions*: methods with default
/// implementations in base are omitted, following the generalization
/// methodology of GHC ticket #12708 (defaulted methods would move out of
/// the class or be re-implemented; they do not gate generalizability).
///
//===----------------------------------------------------------------------===//

#ifndef LEVITY_CLASSLIB_CATALOG_H
#define LEVITY_CLASSLIB_CATALOG_H

#include <string_view>
#include <vector>

namespace levity {
namespace classlib {

/// Supporting (mostly opaque) data types the signatures mention.
std::string_view preludeSource();

/// The class catalog, as one surface-language module.
std::string_view catalogSource();

/// Per-class metadata.
struct CatalogEntry {
  std::string_view Name;
  std::string_view Module;  ///< Where it lives in base/ghc-prim/boot.
  bool FromBootLibrary;     ///< true = boot-library stand-in (see file
                            ///< comment), not base/ghc-prim proper.
};

const std::vector<CatalogEntry> &catalogEntries();

/// The six already-generalized functions of Section 8.1, as a surface
/// module whose signatures declare levity polymorphism: error,
/// errorWithoutStackTrace, undefined (⊥), oneShot, runRW (our State#-free
/// analogue), and ($) (builtin; re-exported wrapper here).
std::string_view generalizedFunctionsSource();

} // namespace classlib
} // namespace levity

#endif // LEVITY_CLASSLIB_CATALOG_H
