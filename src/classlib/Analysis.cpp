//===- Analysis.cpp - Recomputing Section 8.1's 34-of-76 ------------------===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "classlib/Analysis.h"
#include "classlib/Catalog.h"

#include "surface/Elaborate.h"
#include "surface/Parser.h"

#include <chrono>
#include <sstream>
#include <type_traits>

using namespace levity;
using namespace levity::classlib;
using namespace levity::surface;

namespace {

/// Appends a timing stage covering the execution of \p Fn.
template <typename FnT>
auto timed(AnalysisReport &Report, const char *Name, FnT Fn) {
  auto Start = std::chrono::steady_clock::now();
  auto Finish = [&] {
    Report.Stages.push_back(
        {Name, std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - Start)
                   .count()});
  };
  if constexpr (std::is_void_v<decltype(Fn())>) {
    Fn();
    Finish();
  } else {
    auto R = Fn();
    Finish();
    return R;
  }
}

} // namespace

AnalysisReport classlib::runClassAnalysis() {
  AnalysisReport Report;

  core::CoreContext C;
  DiagnosticEngine Diags;
  Elaborator Elab(C, Diags);

  // Load the supporting data types and the class declarations.
  std::string Source =
      std::string(preludeSource()) + std::string(catalogSource());
  Lexer L(Source, Diags);
  Parser P(L.lexAll(), Diags);
  SModule M = P.parseModule();
  std::optional<ElabOutput> Out =
      timed(Report, "elaborate-catalog", [&] { return Elab.run(M); });
  if (!Out) {
    Report.Log = "catalog failed to elaborate:\n" + Diags.str();
    return Report;
  }

  // Analyze each class declaration against the catalog metadata.
  timed(Report, "analyze-classes", [&] {
    const std::vector<CatalogEntry> &Entries = catalogEntries();
    for (const SDecl &D : M.Decls) {
      if (D.T != SDecl::Tag::Class)
        continue;
      ClassVerdict V;
      V.Name = D.Class.Name;
      for (const CatalogEntry &E : Entries)
        if (E.Name == D.Class.Name) {
          V.Module = std::string(E.Module);
          V.FromBootLibrary = E.FromBootLibrary;
        }
      size_t DiagMark = Diags.size();
      Elaborator::GeneralizabilityResult R = Elab.analyzeClass(D.Class);
      Diags.truncate(DiagMark); // analysis probes are not user errors
      V.ValueKinded = R.ValueKinded;
      V.Generalizable = R.Generalizable;
      V.Reason = R.Reason;
      if (!V.ValueKinded)
        ++Report.NumConstructorClasses;
      if (V.Generalizable)
        ++Report.NumGeneralizable;
      Report.Verdicts.push_back(std::move(V));
    }
    Report.NumClasses = Report.Verdicts.size();
  });

  // The six generalized functions: elaborate and record their types.
  timed(Report, "generalized-fns", [&] {
    core::CoreContext C2;
    DiagnosticEngine D2;
    Elaborator E2(C2, D2);
    Lexer L2(generalizedFunctionsSource(), D2);
    Parser P2(L2.lexAll(), D2);
    SModule M2 = P2.parseModule();
    std::optional<ElabOutput> Out2 = E2.run(M2);
    if (!Out2) {
      Report.Log += "generalized functions failed:\n" + D2.str();
    } else {
      const char *Names[] = {"errorWithoutStackTrace", "undefined",
                             "oneShot", "runRW", "dollarAgain",
                             "errorAgain"};
      for (const char *N : Names)
        if (const core::Type *T = E2.globalType(N))
          Report.GeneralizedFunctions.push_back({N, T->str()});
    }
  });

  return Report;
}

std::string classlib::formatReport(const AnalysisReport &R) {
  std::ostringstream OS;
  OS << "=== Section 8.1: levity-generalizable classes ===\n";
  OS << "class                     verdict      reason\n";
  OS << "------------------------- ------------ ------------------------\n";
  for (const ClassVerdict &V : R.Verdicts) {
    std::string Verdict = !V.ValueKinded ? "ctor-class"
                          : V.Generalizable ? "GENERALIZE"
                                            : "keep Type";
    OS << V.Name;
    for (size_t I = V.Name.size(); I < 26; ++I)
      OS << ' ';
    OS << Verdict;
    for (size_t I = Verdict.size(); I < 13; ++I)
      OS << ' ';
    OS << (V.Generalizable ? std::string(V.Module) : V.Reason) << "\n";
  }
  OS << "\nTotals: " << R.NumGeneralizable << " of " << R.NumClasses
     << " classes levity-generalizable (paper reports 34 of 76); "
     << R.NumConstructorClasses << " constructor classes.\n";
  OS << "\n=== Section 8.1: already-generalized functions ===\n";
  for (const auto &[Name, Ty] : R.GeneralizedFunctions)
    OS << "  " << Name << " :: " << Ty << "\n";
  return OS.str();
}
