//===- Catalog.cpp - The base/ghc-prim class catalog (Section 8.1) --------===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "classlib/Catalog.h"

using namespace levity;
using namespace levity::classlib;

std::string_view classlib::preludeSource() {
  return R"(
-- Opaque/supporting types for the catalog signatures. `data T a` with no
-- constructors declares an abstract lifted type.
data Integer ;
data Word ;
data Char ;
data Float ;
data Ordering = LT | EQ | GT ;
data Rational ;
data IO a ;
data Ptr a ;
data FunPtr a ;
data Maybe a = Nothing | Just a ;
data Either a b = Left a | Right b ;
data NonEmpty a ;
data Proxy a ;
data SomeException ;
data TypeRep ;
data Constr ;
data DataType ;
data ShowS ;
data ReadS a ;
data ReadPrec a ;
data FieldFormatter ;
data ModifierParser ;
data Handle ;
data IOBuffer ;
data BufferState ;
data DeviceType ;
data SeekMode ;
data Put ;
data Get a ;
data Q a ;
data Exp ;
data Doc ;
data GRep a ;
)";
}

std::string_view classlib::catalogSource() {
  // One declaration per class; minimal-complete-definition method sets.
  // Constructor classes carry explicit arrow kinds.
  return R"(
-- ghc-prim / GHC.Classes ------------------------------------------------
class Eq a where { (==) :: a -> a -> Bool } ;
class Eq a => Ord a where { compare :: a -> a -> Ordering } ;
class Coercible a where { coerce :: a -> b } ;
class IP a where { ip :: a } ;

-- Prelude numeric tower --------------------------------------------------
class Num a where {
  (+) :: a -> a -> a ; (-) :: a -> a -> a ; (*) :: a -> a -> a ;
  negate :: a -> a ; abs :: a -> a ; signum :: a -> a ;
  fromInteger :: Integer -> a } ;
class Real a where { toRational :: a -> Rational } ;
class Integral a where {
  quotRem :: a -> a -> (a, a) ; toInteger :: a -> Integer } ;
class Fractional a where {
  fromRational :: Rational -> a ; recip :: a -> a } ;
class Floating a where {
  pi :: a ; exp :: a -> a ; log :: a -> a ; sin :: a -> a ;
  cos :: a -> a ; asin :: a -> a ; acos :: a -> a ; atan :: a -> a ;
  sinh :: a -> a ; cosh :: a -> a ; asinh :: a -> a ; acosh :: a -> a ;
  atanh :: a -> a } ;
class RealFrac a where { properFraction :: a -> (b, a) } ;
class RealFloat a where {
  floatRadix :: a -> Integer ; floatDigits :: a -> Int ;
  floatRange :: a -> (Int, Int) ; decodeFloat :: a -> (Integer, Int) ;
  encodeFloat :: Integer -> Int -> a ; isNaN :: a -> Bool ;
  isInfinite :: a -> Bool ; isDenormalized :: a -> Bool ;
  isNegativeZero :: a -> Bool ; isIEEE :: a -> Bool } ;

-- Enum / Bounded ---------------------------------------------------------
class Enum a where { toEnum :: Int -> a ; fromEnum :: a -> Int } ;
class Bounded a where { minBound :: a ; maxBound :: a } ;

-- Semigroup / Monoid (base 4.9) -------------------------------------------
class Semigroup a where { (<>) :: a -> a -> a } ;
class Monoid a where { mempty :: a ; mappend :: a -> a -> a } ;

-- Show / Read --------------------------------------------------------------
class Show a where { showsPrec :: Int -> a -> ShowS } ;
class Read a where { readsPrec :: Int -> ReadS a } ;

-- Constructor classes ------------------------------------------------------
class Functor (f :: Type -> Type) where {
  fmap :: (a -> b) -> f a -> f b } ;
class Applicative (f :: Type -> Type) where {
  pure :: a -> f a ; (<*>) :: f (a -> b) -> f a -> f b } ;
class Monad (m :: Type -> Type) where {
  return :: a -> m a ; (>>=) :: m a -> (a -> m b) -> m b } ;
class MonadFail (m :: Type -> Type) where { fail :: String -> m a } ;
class MonadFix (m :: Type -> Type) where { mfix :: (a -> m a) -> m a } ;
class MonadZip (m :: Type -> Type) where {
  mzip :: m a -> m b -> m (Pair a b) } ;
class MonadIO (m :: Type -> Type) where { liftIO :: IO a -> m a } ;
class Alternative (f :: Type -> Type) where {
  empty :: f a ; (<|>) :: f a -> f a -> f a } ;
class MonadPlus (m :: Type -> Type) where {
  mzero :: m a ; mplus :: m a -> m a -> m a } ;
class Foldable (t :: Type -> Type) where {
  foldr :: (a -> b -> b) -> b -> t a -> b } ;
class Traversable (t :: Type -> Type) where {
  traverse :: (a -> IO b) -> t a -> IO (t b) } ;

-- Data.Functor.Classes (base 4.9) ------------------------------------------
class Eq1 (f :: Type -> Type) where {
  liftEq :: (a -> b -> Bool) -> f a -> f b -> Bool } ;
class Ord1 (f :: Type -> Type) where {
  liftCompare :: (a -> b -> Ordering) -> f a -> f b -> Ordering } ;
class Show1 (f :: Type -> Type) where {
  liftShowsPrec :: (Int -> a -> ShowS) -> Int -> f a -> ShowS } ;
class Read1 (f :: Type -> Type) where {
  liftReadsPrec :: (Int -> ReadS a) -> Int -> ReadS (f a) } ;
class Eq2 (f :: Type -> Type -> Type) where {
  liftEq2 :: (a -> b -> Bool) -> (c -> d -> Bool) -> f a c -> f b d -> Bool } ;
class Ord2 (f :: Type -> Type -> Type) where {
  liftCompare2 :: (a -> b -> Ordering) -> (c -> d -> Ordering) -> f a c -> f b d -> Ordering } ;
class Show2 (f :: Type -> Type -> Type) where {
  liftShowsPrec2 :: (Int -> a -> ShowS) -> (Int -> b -> ShowS) -> Int -> f a b -> ShowS } ;
class Read2 (f :: Type -> Type -> Type) where {
  liftReadsPrec2 :: (Int -> ReadS a) -> (Int -> ReadS b) -> Int -> ReadS (f a b) } ;

-- Arrows and categories ------------------------------------------------------
class Category (cat :: Type -> Type -> Type) where {
  id :: cat a a ; (.) :: cat b c -> cat a b -> cat a c } ;
class Arrow (a :: Type -> Type -> Type) where {
  arr :: (b -> c) -> a b c ; first :: a b c -> a (Pair b d) (Pair c d) } ;
class ArrowZero (a :: Type -> Type -> Type) where { zeroArrow :: a b c } ;
class ArrowPlus (a :: Type -> Type -> Type) where {
  (<+>) :: a b c -> a b c -> a b c } ;
class ArrowChoice (a :: Type -> Type -> Type) where {
  left :: a b c -> a (Either b d) (Either c d) } ;
class ArrowApply (a :: Type -> Type -> Type) where {
  app :: a (Pair (a b c) b) c } ;
class ArrowLoop (a :: Type -> Type -> Type) where {
  loop :: a (Pair b d) (Pair c d) -> a b c } ;
class Bifunctor (p :: Type -> Type -> Type) where {
  bimap :: (a -> b) -> (c -> d) -> p a c -> p b d } ;

-- Indexing, bits, storage ------------------------------------------------------
class Ix a where {
  range :: (a, a) -> [a] ; index :: (a, a) -> a -> Int ;
  inRange :: (a, a) -> a -> Bool } ;
class Bits a where {
  (.&.) :: a -> a -> a ; (.|.) :: a -> a -> a ; xor :: a -> a -> a ;
  complement :: a -> a ; shift :: a -> Int -> a ; rotate :: a -> Int -> a ;
  bitSize :: a -> Int ; isSigned :: a -> Bool ; testBit :: a -> Int -> Bool ;
  bit :: Int -> a ; popCount :: a -> Int } ;
class FiniteBits a where { finiteBitSize :: a -> Int } ;
class Storable a where {
  sizeOf :: a -> Int ; alignment :: a -> Int ;
  peek :: Ptr a -> IO a ; poke :: Ptr a -> a -> IO Unit } ;

-- Strings, lists, labels ---------------------------------------------------------
class IsString a where { fromString :: String -> a } ;
class IsList a where { fromList :: [b] -> a ; toList :: a -> [b] } ;
class IsLabel a where { fromLabel :: a } ;

-- Exceptions ----------------------------------------------------------------------
class Exception a where {
  toException :: a -> SomeException ;
  fromException :: SomeException -> Maybe a } ;

-- Reflection / generics ---------------------------------------------------------------
class Typeable a where { typeRep :: Proxy a -> TypeRep } ;
class Data a where {
  toConstr :: a -> Constr ; dataTypeOf :: a -> DataType ;
  gunfold :: Constr -> Maybe a } ;
class Generic a where { from :: a -> GRep a ; to :: GRep a -> a } ;
class Generic1 (f :: Type -> Type) where {
  from1 :: f a -> GRep (f a) } ;
class Datatype a where { datatypeName :: Proxy a -> String } ;
class Constructor a where { conName :: Proxy a -> String } ;
class Selector a where { selName :: Proxy a -> String } ;
class KnownNat a where { natVal :: Proxy a -> Integer } ;
class KnownSymbol a where { symbolVal :: Proxy a -> String } ;
class TestEquality (f :: Type -> Type) where {
  testEquality :: f a -> f b -> Maybe Bool } ;
class TestCoercion (f :: Type -> Type) where {
  testCoercion :: f a -> f b -> Maybe Bool } ;

-- Printf -----------------------------------------------------------------------------
class PrintfType a where { spr :: String -> a } ;
class HPrintfType a where { hspr :: Handle -> String -> a } ;
class PrintfArg a where { formatArg :: a -> FieldFormatter ;
                          parseFormat :: a -> ModifierParser } ;
class IsChar a where { toChar :: a -> Char ; fromChar :: Char -> a } ;

-- Fixed-point resolution ----------------------------------------------------------------
class HasResolution a where { resolution :: Proxy a -> Integer } ;

-- GHC.IO.Device / BufferedIO (base-internal, exported) -------------------------------------
class IODevice a where {
  ready :: a -> Bool -> Int -> IO Bool ; close :: a -> IO Unit ;
  devType :: a -> IO DeviceType } ;
class RawIO a where {
  read :: a -> Int -> IO Int ; write :: a -> Int -> IO Unit } ;
class BufferedIO a where {
  newBuffer :: a -> BufferState -> IO IOBuffer ;
  fillReadBuffer :: a -> IOBuffer -> IO IOBuffer } ;

-- Boot-library stand-ins (see Catalog.h: exact base/ghc-prim roster of the
-- paper's 76 was not recoverable; these ship with GHC) ---------------------------------------
class NFData a where { rnf :: a -> Unit } ;
class MonadTrans (t :: (Type -> Type) -> Type -> Type) where {
  lift :: IO a -> t IO a } ;
class Binary a where { put :: a -> Put ; get :: Get a } ;
class Lift a where { liftQ :: a -> Q Exp } ;
class Ppr a where { ppr :: a -> Doc } ;
)";
}

const std::vector<CatalogEntry> &classlib::catalogEntries() {
  static const std::vector<CatalogEntry> Entries = {
      {"Eq", "GHC.Classes", false},
      {"Ord", "GHC.Classes", false},
      {"Coercible", "GHC.Types (magic)", false},
      {"IP", "GHC.Classes", false},
      {"Num", "GHC.Num", false},
      {"Real", "GHC.Real", false},
      {"Integral", "GHC.Real", false},
      {"Fractional", "GHC.Real", false},
      {"Floating", "GHC.Float", false},
      {"RealFrac", "GHC.Real", false},
      {"RealFloat", "GHC.Float", false},
      {"Enum", "GHC.Enum", false},
      {"Bounded", "GHC.Enum", false},
      {"Semigroup", "Data.Semigroup", false},
      {"Monoid", "GHC.Base", false},
      {"Show", "GHC.Show", false},
      {"Read", "GHC.Read", false},
      {"Functor", "GHC.Base", false},
      {"Applicative", "GHC.Base", false},
      {"Monad", "GHC.Base", false},
      {"MonadFail", "Control.Monad.Fail", false},
      {"MonadFix", "Control.Monad.Fix", false},
      {"MonadZip", "Control.Monad.Zip", false},
      {"MonadIO", "Control.Monad.IO.Class", false},
      {"Alternative", "GHC.Base", false},
      {"MonadPlus", "GHC.Base", false},
      {"Foldable", "Data.Foldable", false},
      {"Traversable", "Data.Traversable", false},
      {"Eq1", "Data.Functor.Classes", false},
      {"Ord1", "Data.Functor.Classes", false},
      {"Show1", "Data.Functor.Classes", false},
      {"Read1", "Data.Functor.Classes", false},
      {"Eq2", "Data.Functor.Classes", false},
      {"Ord2", "Data.Functor.Classes", false},
      {"Show2", "Data.Functor.Classes", false},
      {"Read2", "Data.Functor.Classes", false},
      {"Category", "Control.Category", false},
      {"Arrow", "Control.Arrow", false},
      {"ArrowZero", "Control.Arrow", false},
      {"ArrowPlus", "Control.Arrow", false},
      {"ArrowChoice", "Control.Arrow", false},
      {"ArrowApply", "Control.Arrow", false},
      {"ArrowLoop", "Control.Arrow", false},
      {"Bifunctor", "Data.Bifunctor", false},
      {"Ix", "GHC.Arr", false},
      {"Bits", "Data.Bits", false},
      {"FiniteBits", "Data.Bits", false},
      {"Storable", "Foreign.Storable", false},
      {"IsString", "Data.String", false},
      {"IsList", "GHC.Exts", false},
      {"IsLabel", "GHC.OverloadedLabels", false},
      {"Exception", "Control.Exception", false},
      {"Typeable", "Data.Typeable", false},
      {"Data", "Data.Data", false},
      {"Generic", "GHC.Generics", false},
      {"Generic1", "GHC.Generics", false},
      {"Datatype", "GHC.Generics", false},
      {"Constructor", "GHC.Generics", false},
      {"Selector", "GHC.Generics", false},
      {"KnownNat", "GHC.TypeLits", false},
      {"KnownSymbol", "GHC.TypeLits", false},
      {"TestEquality", "Data.Type.Equality", false},
      {"TestCoercion", "Data.Type.Coercion", false},
      {"PrintfType", "Text.Printf", false},
      {"HPrintfType", "Text.Printf", false},
      {"PrintfArg", "Text.Printf", false},
      {"IsChar", "Text.Printf", false},
      {"HasResolution", "Data.Fixed", false},
      {"IODevice", "GHC.IO.Device", false},
      {"RawIO", "GHC.IO.Device", false},
      {"BufferedIO", "GHC.IO.BufferedIO", false},
      {"NFData", "Control.DeepSeq (boot)", true},
      {"MonadTrans", "Control.Monad.Trans.Class (boot)", true},
      {"Binary", "Data.Binary (boot)", true},
      {"Lift", "Language.Haskell.TH.Syntax (boot)", true},
      {"Ppr", "Language.Haskell.TH.Ppr (boot)", true},
  };
  return Entries;
}

std::string_view classlib::generalizedFunctionsSource() {
  // Section 8.1's six functions, with their levity-polymorphic
  // signatures declared (checked, not inferred — Section 5.2). `error`
  // and ($) are builtins; the wrappers re-state their generalized types.
  // runRW uses Unit in place of State# RealWorld.
  return R"(
errorWithoutStackTrace :: forall r (a :: TYPE r). String -> a ;
errorWithoutStackTrace s = error s ;

undefined :: forall r (a :: TYPE r). a ;
undefined = error "Prelude.undefined" ;

oneShot :: forall r1 r2 (a :: TYPE r1) (b :: TYPE r2). (a -> b) -> a -> b ;
oneShot f = f ;

runRW :: forall r (o :: TYPE r). (Unit -> o) -> o ;
runRW f = f Unit ;

dollarAgain :: forall r (a :: Type) (b :: TYPE r). (a -> b) -> a -> b ;
dollarAgain f x = f $ x ;

errorAgain :: forall r (a :: TYPE r). String -> a ;
errorAgain s = error s ;
)";
}
