//===- LevityCheck.cpp - The Section 5.1 restrictions as a pass -----------===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "core/LevityCheck.h"

using namespace levity;
using namespace levity::core;

bool LevityChecker::check(CoreEnv &Env, const Expr *E) {
  size_t Before = Diags.numErrors();
  walk(Env, E);
  return Diags.numErrors() == Before;
}

void LevityChecker::checkBinder(CoreEnv &Env, Symbol Var,
                                const Type *VarTy) {
  Result<const Kind *> K = Checker.kindOf(Env, VarTy);
  if (!K) {
    Diags.error(DiagCode::Internal,
                "cannot kind binder type: " + K.error());
    return;
  }
  if (!Checker.isConcreteValueKind(*K))
    Diags.error(DiagCode::LevityPolymorphicBinder,
                "levity-polymorphic binder: " + std::string(Var.str()) +
                    " :: " + C.zonkType(VarTy)->str() + " has kind " +
                    C.zonkKind(*K)->str() +
                    ", which does not determine a representation");
}

void LevityChecker::checkArgument(CoreEnv &Env, const Expr *Arg) {
  Result<const Type *> T = Checker.typeOf(Env, Arg);
  if (!T) {
    Diags.error(DiagCode::Internal,
                "cannot type application argument: " + T.error());
    return;
  }
  Result<const Kind *> K = Checker.kindOf(Env, *T);
  if (!K) {
    Diags.error(DiagCode::Internal,
                "cannot kind argument type: " + K.error());
    return;
  }
  if (!Checker.isConcreteValueKind(*K))
    Diags.error(DiagCode::LevityPolymorphicArgument,
                "levity-polymorphic function argument: " + Arg->str() +
                    " :: " + C.zonkType(*T)->str() + " has kind " +
                    C.zonkKind(*K)->str() +
                    ", which does not determine a calling convention");
}

void LevityChecker::walk(CoreEnv &Env, const Expr *E) {
  switch (E->tag()) {
  case Expr::Tag::Var:
  case Expr::Tag::Lit:
    return;
  case Expr::Tag::App: {
    const auto *A = cast<AppExpr>(E);
    walk(Env, A->fn());
    checkArgument(Env, A->arg());
    walk(Env, A->arg());
    return;
  }
  case Expr::Tag::TyApp:
    walk(Env, cast<TyAppExpr>(E)->fn());
    return;
  case Expr::Tag::Lam: {
    const auto *L = cast<LamExpr>(E);
    checkBinder(Env, L->var(), L->varType());
    Env.pushTerm(L->var(), L->varType());
    walk(Env, L->body());
    Env.popTerm();
    return;
  }
  case Expr::Tag::TyLam: {
    const auto *L = cast<TyLamExpr>(E);
    Env.pushTypeVar(L->var(), L->varKind());
    walk(Env, L->body());
    Env.popTypeVar();
    return;
  }
  case Expr::Tag::Let: {
    const auto *L = cast<LetExpr>(E);
    checkBinder(Env, L->var(), L->varType());
    walk(Env, L->rhs());
    Env.pushTerm(L->var(), L->varType());
    walk(Env, L->body());
    Env.popTerm();
    return;
  }
  case Expr::Tag::LetRec: {
    const auto *L = cast<LetRecExpr>(E);
    for (const RecBinding &B : L->bindings()) {
      checkBinder(Env, B.Var, B.VarTy);
      Env.pushTerm(B.Var, B.VarTy);
    }
    for (const RecBinding &B : L->bindings())
      walk(Env, B.Rhs);
    walk(Env, L->body());
    Env.popTerms(L->bindings().size());
    return;
  }
  case Expr::Tag::Case: {
    const auto *Cs = cast<CaseExpr>(E);
    walk(Env, Cs->scrut());
    Result<const Type *> ScrutTy = Checker.typeOf(Env, Cs->scrut());
    for (const Alt &A : Cs->alts()) {
      size_t Pushed = 0;
      if (A.Kind == Alt::AltKind::ConPat && ScrutTy) {
        const Type *Head = C.zonkType(*ScrutTy);
        std::vector<const Type *> TyArgs;
        while (const auto *App = dyn_cast<AppType>(Head)) {
          TyArgs.insert(TyArgs.begin(), App->arg());
          Head = App->fn();
        }
        for (size_t I = 0; I != A.Binders.size(); ++I) {
          const Type *FieldTy = A.Con->fields()[I];
          for (size_t U = 0; U != A.Con->univs().size() &&
                             U != TyArgs.size();
               ++U)
            FieldTy = substType(C, FieldTy, A.Con->univs()[U], TyArgs[U]);
          checkBinder(Env, A.Binders[I], FieldTy);
          Env.pushTerm(A.Binders[I], FieldTy);
          ++Pushed;
        }
      } else if (A.Kind == Alt::AltKind::TuplePat && ScrutTy) {
        if (const auto *UT =
                dyn_cast<UnboxedTupleType>(C.zonkType(*ScrutTy))) {
          for (size_t I = 0; I != A.Binders.size() &&
                             I != UT->elems().size();
               ++I) {
            checkBinder(Env, A.Binders[I], UT->elems()[I]);
            Env.pushTerm(A.Binders[I], UT->elems()[I]);
            ++Pushed;
          }
        }
      }
      walk(Env, A.Rhs);
      Env.popTerms(Pushed);
    }
    return;
  }
  case Expr::Tag::Con: {
    // Constructor arguments are stored in the constructed value: they are
    // "moves" too, and their fields' kinds are concrete by construction
    // of the datatype; still check the argument expressions recursively.
    const auto *Con = cast<ConExpr>(E);
    for (const Expr *A : Con->args()) {
      checkArgument(Env, A);
      walk(Env, A);
    }
    return;
  }
  case Expr::Tag::Prim: {
    const auto *P = cast<PrimOpExpr>(E);
    for (const Expr *A : P->args()) {
      checkArgument(Env, A);
      walk(Env, A);
    }
    return;
  }
  case Expr::Tag::UnboxedTuple: {
    const auto *U = cast<UnboxedTupleExpr>(E);
    for (const Expr *El : U->elems()) {
      checkArgument(Env, El);
      walk(Env, El);
    }
    return;
  }
  case Expr::Tag::Error:
    // error's *result* may be levity-polymorphic — that is the whole
    // point (Section 3.3); only its message argument is a value move,
    // and String is concrete.
    walk(Env, cast<ErrorExpr>(E)->message());
    return;
  }
}
