//===- TypeOps.cpp - Equality, substitution, printing for core types ------===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "core/CoreContext.h"

#include <sstream>
#include <unordered_map>
#include <unordered_set>

using namespace levity;
using namespace levity::core;

//===----------------------------------------------------------------------===//
// Printing
//===----------------------------------------------------------------------===//

std::string RepTy::str() const {
  switch (T) {
  case Tag::Var:
    return std::string(Name.str());
  case Tag::Meta:
    return "ν" + std::to_string(Id);
  case Tag::Atom:
    switch (Ctor) {
    case RepCtor::Lifted: return "LiftedRep";
    case RepCtor::Unlifted: return "UnliftedRep";
    case RepCtor::Int: return "IntRep";
    case RepCtor::Int8: return "Int8Rep";
    case RepCtor::Int16: return "Int16Rep";
    case RepCtor::Int32: return "Int32Rep";
    case RepCtor::Int64: return "Int64Rep";
    case RepCtor::Word: return "WordRep";
    case RepCtor::Float: return "FloatRep";
    case RepCtor::Double: return "DoubleRep";
    case RepCtor::Addr: return "AddrRep";
    default: return "?";
    }
  case Tag::Tuple:
  case Tag::Sum: {
    std::ostringstream OS;
    OS << (T == Tag::Tuple ? "TupleRep" : "SumRep") << " '[";
    bool First = true;
    for (const RepTy *E : Elems) {
      if (!First)
        OS << ", ";
      First = false;
      OS << E->str();
    }
    OS << "]";
    return OS.str();
  }
  }
  return "?";
}

std::string Kind::str() const {
  switch (T) {
  case Tag::Rep:
    return "Rep";
  case Tag::TypeOf:
    if (R->tag() == RepTy::Tag::Atom && R->atom() == RepCtor::Lifted)
      return "Type";
    return "TYPE " + R->str();
  case Tag::Arrow: {
    std::string P = Param->str();
    if (Param->isArrow())
      P = "(" + P + ")";
    return P + " -> " + Result->str();
  }
  }
  return "?";
}

namespace {

enum Prec { PrecTop = 0, PrecFun = 1, PrecApp = 2, PrecAtom = 3 };

void printType(std::ostringstream &OS, const Type *T, int P) {
  switch (T->tag()) {
  case Type::Tag::Con:
    OS << cast<ConType>(T)->tycon()->name().str();
    return;
  case Type::Tag::Var:
    OS << cast<VarType>(T)->name().str();
    return;
  case Type::Tag::Meta:
    OS << "μ" << cast<MetaType>(T)->id();
    return;
  case Type::Tag::RepLift:
    OS << "'" << cast<RepLiftType>(T)->rep()->str();
    return;
  case Type::Tag::App: {
    const auto *A = cast<AppType>(T);
    if (P > PrecApp)
      OS << "(";
    printType(OS, A->fn(), PrecApp);
    OS << " ";
    printType(OS, A->arg(), PrecAtom);
    if (P > PrecApp)
      OS << ")";
    return;
  }
  case Type::Tag::Fun: {
    const auto *F = cast<FunType>(T);
    if (P > PrecFun)
      OS << "(";
    printType(OS, F->param(), PrecFun + 1);
    OS << " -> ";
    printType(OS, F->result(), PrecFun);
    if (P > PrecFun)
      OS << ")";
    return;
  }
  case Type::Tag::ForAll: {
    const auto *F = cast<ForAllType>(T);
    if (P > PrecTop)
      OS << "(";
    OS << "forall (" << F->var().str() << " :: " << F->varKind()->str()
       << "). ";
    printType(OS, F->body(), PrecTop);
    if (P > PrecTop)
      OS << ")";
    return;
  }
  case Type::Tag::UnboxedTuple: {
    const auto *U = cast<UnboxedTupleType>(T);
    OS << "(# ";
    bool First = true;
    for (const Type *E : U->elems()) {
      if (!First)
        OS << ", ";
      First = false;
      printType(OS, E, PrecTop);
    }
    OS << " #)";
    return;
  }
  }
}

} // namespace

std::string Type::str() const {
  std::ostringstream OS;
  printType(OS, this, PrecTop);
  return OS.str();
}

//===----------------------------------------------------------------------===//
// Equality (alpha-aware; call on zonked structures)
//===----------------------------------------------------------------------===//

namespace {

struct TyAlphaEnv {
  std::unordered_map<Symbol, Symbol, SymbolHash> AtoB;
  std::unordered_map<Symbol, Symbol, SymbolHash> BtoA;

  void bind(Symbol A, Symbol B) {
    AtoB[A] = B;
    BtoA[B] = A;
  }

  bool varsEqual(Symbol A, Symbol B) const {
    auto ItA = AtoB.find(A);
    auto ItB = BtoA.find(B);
    if (ItA == AtoB.end() && ItB == BtoA.end())
      return A == B;
    if (ItA == AtoB.end() || ItB == BtoA.end())
      return false;
    return ItA->second == B && ItB->second == A;
  }
};

bool repEqualIn(const RepTy *A, const RepTy *B, const TyAlphaEnv &Env) {
  if (A->tag() != B->tag())
    return false;
  switch (A->tag()) {
  case RepTy::Tag::Var:
    return Env.varsEqual(A->varName(), B->varName());
  case RepTy::Tag::Meta:
    return A->metaId() == B->metaId();
  case RepTy::Tag::Atom:
    return A->atom() == B->atom();
  case RepTy::Tag::Tuple:
  case RepTy::Tag::Sum: {
    if (A->elems().size() != B->elems().size())
      return false;
    for (size_t I = 0; I != A->elems().size(); ++I)
      if (!repEqualIn(A->elems()[I], B->elems()[I], Env))
        return false;
    return true;
  }
  }
  return false;
}

bool kindEqualIn(const Kind *A, const Kind *B, const TyAlphaEnv &Env) {
  if (A->tag() != B->tag())
    return false;
  switch (A->tag()) {
  case Kind::Tag::Rep:
    return true;
  case Kind::Tag::TypeOf:
    return repEqualIn(A->rep(), B->rep(), Env);
  case Kind::Tag::Arrow:
    return kindEqualIn(A->param(), B->param(), Env) &&
           kindEqualIn(A->result(), B->result(), Env);
  }
  return false;
}

bool typeEqualIn(const Type *A, const Type *B, TyAlphaEnv &Env) {
  if (A->tag() != B->tag())
    return false;
  switch (A->tag()) {
  case Type::Tag::Con:
    return cast<ConType>(A)->tycon() == cast<ConType>(B)->tycon();
  case Type::Tag::Var:
    return Env.varsEqual(cast<VarType>(A)->name(),
                         cast<VarType>(B)->name());
  case Type::Tag::Meta:
    return cast<MetaType>(A)->id() == cast<MetaType>(B)->id();
  case Type::Tag::RepLift:
    return repEqualIn(cast<RepLiftType>(A)->rep(),
                      cast<RepLiftType>(B)->rep(), Env);
  case Type::Tag::App: {
    const auto *AA = cast<AppType>(A);
    const auto *BA = cast<AppType>(B);
    return typeEqualIn(AA->fn(), BA->fn(), Env) &&
           typeEqualIn(AA->arg(), BA->arg(), Env);
  }
  case Type::Tag::Fun: {
    const auto *AF = cast<FunType>(A);
    const auto *BF = cast<FunType>(B);
    return typeEqualIn(AF->param(), BF->param(), Env) &&
           typeEqualIn(AF->result(), BF->result(), Env);
  }
  case Type::Tag::ForAll: {
    const auto *AF = cast<ForAllType>(A);
    const auto *BF = cast<ForAllType>(B);
    if (!kindEqualIn(AF->varKind(), BF->varKind(), Env))
      return false;
    TyAlphaEnv Inner = Env;
    Inner.bind(AF->var(), BF->var());
    return typeEqualIn(AF->body(), BF->body(), Inner);
  }
  case Type::Tag::UnboxedTuple: {
    const auto *AU = cast<UnboxedTupleType>(A);
    const auto *BU = cast<UnboxedTupleType>(B);
    if (AU->elems().size() != BU->elems().size())
      return false;
    for (size_t I = 0; I != AU->elems().size(); ++I)
      if (!typeEqualIn(AU->elems()[I], BU->elems()[I], Env))
        return false;
    return true;
  }
  }
  return false;
}

} // namespace

bool core::repEqual(const RepTy *A, const RepTy *B) {
  TyAlphaEnv Env;
  return repEqualIn(A, B, Env);
}

bool core::kindEqual(const Kind *A, const Kind *B) {
  TyAlphaEnv Env;
  return kindEqualIn(A, B, Env);
}

bool core::typeEqual(const Type *A, const Type *B) {
  if (A == B)
    return true;
  TyAlphaEnv Env;
  return typeEqualIn(A, B, Env);
}

//===----------------------------------------------------------------------===//
// Substitution
//===----------------------------------------------------------------------===//

const RepTy *core::substRepInRep(CoreContext &C, const RepTy *R, Symbol Var,
                                 const RepTy *Replacement) {
  switch (R->tag()) {
  case RepTy::Tag::Var:
    return R->varName() == Var ? Replacement : R;
  case RepTy::Tag::Meta:
  case RepTy::Tag::Atom:
    return R;
  case RepTy::Tag::Tuple:
  case RepTy::Tag::Sum: {
    std::vector<const RepTy *> Elems;
    bool Changed = false;
    for (const RepTy *E : R->elems()) {
      const RepTy *S = substRepInRep(C, E, Var, Replacement);
      Changed |= (S != E);
      Elems.push_back(S);
    }
    if (!Changed)
      return R;
    return R->tag() == RepTy::Tag::Tuple ? C.repTuple(Elems)
                                         : C.repSum(Elems);
  }
  }
  assert(false && "unknown rep tag");
  return R;
}

namespace {

const Kind *substRepInKind(CoreContext &C, const Kind *K, Symbol Var,
                           const RepTy *Replacement) {
  switch (K->tag()) {
  case Kind::Tag::Rep:
    return K;
  case Kind::Tag::TypeOf: {
    const RepTy *R = substRepInRep(C, K->rep(), Var, Replacement);
    return R == K->rep() ? K : C.kindTYPE(R);
  }
  case Kind::Tag::Arrow: {
    const Kind *P = substRepInKind(C, K->param(), Var, Replacement);
    const Kind *R = substRepInKind(C, K->result(), Var, Replacement);
    if (P == K->param() && R == K->result())
      return K;
    return C.kindArrow(P, R);
  }
  }
  assert(false && "unknown kind tag");
  return K;
}

} // namespace

const RepTy *core::typeAsRep(CoreContext &C, const Type *T) {
  T = C.zonkType(T);
  switch (T->tag()) {
  case Type::Tag::RepLift:
    return cast<RepLiftType>(T)->rep();
  case Type::Tag::Var: {
    const auto *V = cast<VarType>(T);
    if (V->kind()->isRep())
      return C.repVar(V->name());
    return nullptr;
  }
  default:
    return nullptr;
  }
}

const Type *core::substType(CoreContext &C, const Type *T, Symbol Var,
                            const Type *Replacement) {
  // When the variable stands for a rep (kind Rep), occurrences live inside
  // kinds; compute the rep view of the replacement once.
  const RepTy *RepReplacement = typeAsRep(C, Replacement);

  switch (T->tag()) {
  case Type::Tag::Con:
  case Type::Tag::Meta:
    return T;
  case Type::Tag::Var: {
    const auto *V = cast<VarType>(T);
    if (V->name() == Var)
      return Replacement;
    if (RepReplacement) {
      const Kind *K = substRepInKind(C, V->kind(), Var, RepReplacement);
      if (K != V->kind())
        return C.varTy(V->name(), K);
    }
    return T;
  }
  case Type::Tag::RepLift: {
    if (!RepReplacement)
      return T;
    const auto *R = cast<RepLiftType>(T);
    const RepTy *S = substRepInRep(C, R->rep(), Var, RepReplacement);
    return S == R->rep() ? T : C.repLiftTy(S);
  }
  case Type::Tag::App: {
    const auto *A = cast<AppType>(T);
    const Type *F = substType(C, A->fn(), Var, Replacement);
    const Type *X = substType(C, A->arg(), Var, Replacement);
    if (F == A->fn() && X == A->arg())
      return T;
    return C.appTy(F, X);
  }
  case Type::Tag::Fun: {
    const auto *F = cast<FunType>(T);
    const Type *P = substType(C, F->param(), Var, Replacement);
    const Type *R = substType(C, F->result(), Var, Replacement);
    if (P == F->param() && R == F->result())
      return T;
    return C.funTy(P, R);
  }
  case Type::Tag::UnboxedTuple: {
    const auto *U = cast<UnboxedTupleType>(T);
    std::vector<const Type *> Elems;
    bool Changed = false;
    for (const Type *E : U->elems()) {
      const Type *S = substType(C, E, Var, Replacement);
      Changed |= (S != E);
      Elems.push_back(S);
    }
    if (!Changed)
      return T;
    return C.unboxedTupleTy(Elems);
  }
  case Type::Tag::ForAll: {
    const auto *F = cast<ForAllType>(T);
    const Kind *K =
        RepReplacement
            ? substRepInKind(C, F->varKind(), Var, RepReplacement)
            : F->varKind();
    if (F->var() == Var)
      return K == F->varKind() ? T : C.forAllTy(F->var(), K, F->body());
    // Capture check: if the binder occurs free in the replacement,
    // freshen it.
    std::vector<std::pair<Symbol, const Kind *>> FV;
    freeTypeVars(Replacement, FV);
    Symbol Bound = F->var();
    const Type *Body = F->body();
    for (const auto &[Name, VK] : FV) {
      if (Name != Bound)
        continue;
      Symbol Fresh = C.symbols().fresh(Bound.str());
      Body = substType(C, Body, Bound, C.varTy(Fresh, K));
      Bound = Fresh;
      break;
    }
    const Type *NewBody = substType(C, Body, Var, Replacement);
    if (Bound == F->var() && K == F->varKind() && NewBody == F->body())
      return T;
    return C.forAllTy(Bound, K, NewBody);
  }
  }
  assert(false && "unknown type tag");
  return T;
}

//===----------------------------------------------------------------------===//
// Free variables and metas
//===----------------------------------------------------------------------===//

namespace {

void freeVarsRep(const RepTy *R, std::unordered_set<Symbol, SymbolHash>
                 &Bound, std::vector<std::pair<Symbol, const Kind *>> &Out,
                 CoreContext *C);

void freeVarsKind(const Kind *K, std::unordered_set<Symbol, SymbolHash>
                  &Bound, std::vector<std::pair<Symbol, const Kind *>> &Out,
                  CoreContext *C) {
  switch (K->tag()) {
  case Kind::Tag::Rep:
    return;
  case Kind::Tag::TypeOf:
    freeVarsRep(K->rep(), Bound, Out, C);
    return;
  case Kind::Tag::Arrow:
    freeVarsKind(K->param(), Bound, Out, C);
    freeVarsKind(K->result(), Bound, Out, C);
    return;
  }
}

void freeVarsRep(const RepTy *R, std::unordered_set<Symbol, SymbolHash>
                 &Bound, std::vector<std::pair<Symbol, const Kind *>> &Out,
                 CoreContext *C) {
  switch (R->tag()) {
  case RepTy::Tag::Var:
    if (!Bound.count(R->varName()))
      Out.push_back({R->varName(), nullptr});
    return;
  case RepTy::Tag::Meta:
  case RepTy::Tag::Atom:
    return;
  case RepTy::Tag::Tuple:
  case RepTy::Tag::Sum:
    for (const RepTy *E : R->elems())
      freeVarsRep(E, Bound, Out, C);
    return;
  }
}

void freeVarsType(const Type *T, std::unordered_set<Symbol, SymbolHash>
                  &Bound, std::vector<std::pair<Symbol, const Kind *>> &Out,
                  CoreContext *C) {
  switch (T->tag()) {
  case Type::Tag::Con:
  case Type::Tag::Meta:
    return;
  case Type::Tag::Var: {
    const auto *V = cast<VarType>(T);
    freeVarsKind(V->kind(), Bound, Out, C);
    if (!Bound.count(V->name()))
      Out.push_back({V->name(), V->kind()});
    return;
  }
  case Type::Tag::RepLift:
    freeVarsRep(cast<RepLiftType>(T)->rep(), Bound, Out, C);
    return;
  case Type::Tag::App: {
    const auto *A = cast<AppType>(T);
    freeVarsType(A->fn(), Bound, Out, C);
    freeVarsType(A->arg(), Bound, Out, C);
    return;
  }
  case Type::Tag::Fun: {
    const auto *F = cast<FunType>(T);
    freeVarsType(F->param(), Bound, Out, C);
    freeVarsType(F->result(), Bound, Out, C);
    return;
  }
  case Type::Tag::ForAll: {
    const auto *F = cast<ForAllType>(T);
    freeVarsKind(F->varKind(), Bound, Out, C);
    bool Inserted = Bound.insert(F->var()).second;
    freeVarsType(F->body(), Bound, Out, C);
    if (Inserted)
      Bound.erase(F->var());
    return;
  }
  case Type::Tag::UnboxedTuple:
    for (const Type *E : cast<UnboxedTupleType>(T)->elems())
      freeVarsType(E, Bound, Out, C);
    return;
  }
}

void collectMetasRep(CoreContext &C, const RepTy *R, MetaSet &Out) {
  R = C.zonkRep(R);
  switch (R->tag()) {
  case RepTy::Tag::Meta:
    Out.RepMetaIds.push_back(R->metaId());
    return;
  case RepTy::Tag::Var:
  case RepTy::Tag::Atom:
    return;
  case RepTy::Tag::Tuple:
  case RepTy::Tag::Sum:
    for (const RepTy *E : R->elems())
      collectMetasRep(C, E, Out);
    return;
  }
}

void collectMetasKind(CoreContext &C, const Kind *K, MetaSet &Out) {
  switch (K->tag()) {
  case Kind::Tag::Rep:
    return;
  case Kind::Tag::TypeOf:
    collectMetasRep(C, K->rep(), Out);
    return;
  case Kind::Tag::Arrow:
    collectMetasKind(C, K->param(), Out);
    collectMetasKind(C, K->result(), Out);
    return;
  }
}

} // namespace

void core::freeTypeVars(const Type *T,
                        std::vector<std::pair<Symbol, const Kind *>> &Out) {
  std::unordered_set<Symbol, SymbolHash> Bound;
  freeVarsType(T, Bound, Out, nullptr);
}

void core::collectMetas(CoreContext &C, const Type *T, MetaSet &Out) {
  T = C.zonkType(T);
  switch (T->tag()) {
  case Type::Tag::Con:
    return;
  case Type::Tag::Meta: {
    const auto *M = cast<MetaType>(T);
    Out.TypeMetaIds.push_back(M->id());
    if (const Kind *K = C.typeMetaCell(M->id()).MetaKind)
      collectMetasKind(C, K, Out);
    return;
  }
  case Type::Tag::Var:
    collectMetasKind(C, cast<VarType>(T)->kind(), Out);
    return;
  case Type::Tag::RepLift:
    collectMetasRep(C, cast<RepLiftType>(T)->rep(), Out);
    return;
  case Type::Tag::App: {
    const auto *A = cast<AppType>(T);
    collectMetas(C, A->fn(), Out);
    collectMetas(C, A->arg(), Out);
    return;
  }
  case Type::Tag::Fun: {
    const auto *F = cast<FunType>(T);
    collectMetas(C, F->param(), Out);
    collectMetas(C, F->result(), Out);
    return;
  }
  case Type::Tag::ForAll: {
    const auto *F = cast<ForAllType>(T);
    collectMetasKind(C, F->varKind(), Out);
    collectMetas(C, F->body(), Out);
    return;
  }
  case Type::Tag::UnboxedTuple:
    for (const Type *E : cast<UnboxedTupleType>(T)->elems())
      collectMetas(C, E, Out);
    return;
  }
}

//===----------------------------------------------------------------------===//
// Literal / expression printing
//===----------------------------------------------------------------------===//

std::string Literal::str() const {
  switch (T) {
  case Tag::IntHash:
    return std::to_string(I) + "#";
  case Tag::DoubleHash:
    return std::to_string(D) + "##";
  case Tag::String:
    return "\"" + std::string(S.str()) + "\"";
  }
  return "?";
}

namespace {

void printExpr(std::ostringstream &OS, const Expr *E, int P) {
  switch (E->tag()) {
  case Expr::Tag::Var:
    OS << cast<VarExpr>(E)->name().str();
    return;
  case Expr::Tag::Lit:
    OS << cast<LitExpr>(E)->lit().str();
    return;
  case Expr::Tag::App: {
    const auto *A = cast<AppExpr>(E);
    if (P > PrecApp)
      OS << "(";
    printExpr(OS, A->fn(), PrecApp);
    OS << " ";
    printExpr(OS, A->arg(), PrecAtom);
    if (P > PrecApp)
      OS << ")";
    return;
  }
  case Expr::Tag::TyApp: {
    const auto *A = cast<TyAppExpr>(E);
    if (P > PrecApp)
      OS << "(";
    printExpr(OS, A->fn(), PrecApp);
    OS << " @(" << A->tyArg()->str() << ")";
    if (P > PrecApp)
      OS << ")";
    return;
  }
  case Expr::Tag::Lam: {
    const auto *L = cast<LamExpr>(E);
    if (P > PrecTop)
      OS << "(";
    OS << "\\(" << L->var().str() << " :: " << L->varType()->str()
       << ") -> ";
    printExpr(OS, L->body(), PrecTop);
    if (P > PrecTop)
      OS << ")";
    return;
  }
  case Expr::Tag::TyLam: {
    const auto *L = cast<TyLamExpr>(E);
    if (P > PrecTop)
      OS << "(";
    OS << "/\\(" << L->var().str() << " :: " << L->varKind()->str()
       << ") -> ";
    printExpr(OS, L->body(), PrecTop);
    if (P > PrecTop)
      OS << ")";
    return;
  }
  case Expr::Tag::Let: {
    const auto *L = cast<LetExpr>(E);
    if (P > PrecTop)
      OS << "(";
    OS << (L->strict() ? "let! " : "let ") << L->var().str() << " = ";
    printExpr(OS, L->rhs(), PrecApp);
    OS << " in ";
    printExpr(OS, L->body(), PrecTop);
    if (P > PrecTop)
      OS << ")";
    return;
  }
  case Expr::Tag::LetRec: {
    const auto *L = cast<LetRecExpr>(E);
    if (P > PrecTop)
      OS << "(";
    OS << "letrec ";
    bool First = true;
    for (const RecBinding &B : L->bindings()) {
      if (!First)
        OS << "; ";
      First = false;
      OS << B.Var.str() << " = ";
      printExpr(OS, B.Rhs, PrecApp);
    }
    OS << " in ";
    printExpr(OS, L->body(), PrecTop);
    if (P > PrecTop)
      OS << ")";
    return;
  }
  case Expr::Tag::Case: {
    const auto *C = cast<CaseExpr>(E);
    if (P > PrecTop)
      OS << "(";
    OS << "case ";
    printExpr(OS, C->scrut(), PrecTop);
    OS << " of {";
    bool First = true;
    for (const Alt &A : C->alts()) {
      if (!First)
        OS << ";";
      First = false;
      OS << " ";
      switch (A.Kind) {
      case Alt::AltKind::ConPat:
        OS << A.Con->name().str();
        for (Symbol B : A.Binders)
          OS << " " << B.str();
        break;
      case Alt::AltKind::LitPat:
        OS << A.Lit.str();
        break;
      case Alt::AltKind::TuplePat: {
        OS << "(#";
        bool F2 = true;
        for (Symbol B : A.Binders) {
          if (!F2)
            OS << ",";
          F2 = false;
          OS << " " << B.str();
        }
        OS << " #)";
        break;
      }
      case Alt::AltKind::Default:
        OS << "_";
        break;
      }
      OS << " -> ";
      printExpr(OS, A.Rhs, PrecTop);
    }
    OS << " }";
    if (P > PrecTop)
      OS << ")";
    return;
  }
  case Expr::Tag::Con: {
    const auto *C = cast<ConExpr>(E);
    if (P > PrecApp && (!C->args().empty() || !C->tyArgs().empty()))
      OS << "(";
    OS << C->dataCon()->name().str();
    for (const Expr *A : C->args()) {
      OS << " ";
      printExpr(OS, A, PrecAtom);
    }
    if (P > PrecApp && (!C->args().empty() || !C->tyArgs().empty()))
      OS << ")";
    return;
  }
  case Expr::Tag::Prim: {
    const auto *Pr = cast<PrimOpExpr>(E);
    if (P > PrecApp)
      OS << "(";
    OS << primOpName(Pr->op());
    for (const Expr *A : Pr->args()) {
      OS << " ";
      printExpr(OS, A, PrecAtom);
    }
    if (P > PrecApp)
      OS << ")";
    return;
  }
  case Expr::Tag::UnboxedTuple: {
    const auto *U = cast<UnboxedTupleExpr>(E);
    OS << "(# ";
    bool First = true;
    for (const Expr *El : U->elems()) {
      if (!First)
        OS << ", ";
      First = false;
      printExpr(OS, El, PrecTop);
    }
    OS << " #)";
    return;
  }
  case Expr::Tag::Error: {
    const auto *Err = cast<ErrorExpr>(E);
    if (P > PrecApp)
      OS << "(";
    OS << "error @" << Err->atRep()->str() << " @(" << Err->atType()->str()
       << ") ";
    printExpr(OS, Err->message(), PrecAtom);
    if (P > PrecApp)
      OS << ")";
    return;
  }
  }
}

} // namespace

std::string Expr::str() const {
  std::ostringstream OS;
  printExpr(OS, this, PrecTop);
  return OS.str();
}
