//===- Type.h - Core types with rep-polymorphic kinds -----------*- C++ -*-===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The type language of the generalized core IR (the pipeline's analogue
/// of GHC Core restricted to what the paper's claims need):
///
/// \code
///   τ ::= T | τ₁ τ₂ | τ₁ → τ₂ | a | μ | ∀a:κ. τ | (# τ, ..., τ #) | 'ρ
/// \endcode
///
/// `'ρ` embeds a RepTy as a *type of kind Rep* (the DataKinds promotion of
/// Section 4.1); ∀ binds type variables of any kind, so `∀(r::Rep). …` is
/// levity polymorphism with no new quantifier form. Unboxed tuples are a
/// dedicated constructor whose kind computes a TupleRep from the field
/// kinds (Section 4.2).
///
//===----------------------------------------------------------------------===//

#ifndef LEVITY_CORE_TYPE_H
#define LEVITY_CORE_TYPE_H

#include "core/Kind.h"

#include <span>
#include <string>
#include <vector>

namespace levity {
namespace core {

class TyCon;
class DataCon;

/// τ — a core type.
class Type {
public:
  enum class Tag : uint8_t {
    Con,          ///< A type constructor reference T (unapplied).
    App,          ///< τ₁ τ₂ (constructor or variable application).
    Fun,          ///< τ₁ → τ₂; kind TYPE LiftedRep regardless of sides.
    Var,          ///< A type variable a (its kind is carried inline).
    Meta,         ///< A type unification variable μ.
    ForAll,       ///< ∀a:κ. τ.
    UnboxedTuple, ///< (# τ, ..., τ #).
    RepLift       ///< 'ρ — a RepTy used as a type of kind Rep.
  };

  Tag tag() const { return T; }
  std::string str() const;

protected:
  explicit Type(Tag T) : T(T) {}

private:
  Tag T;
};

class ConType : public Type {
public:
  explicit ConType(const TyCon *Con) : Type(Tag::Con), Con(Con) {}

  const TyCon *tycon() const { return Con; }

  static bool classof(const Type *T) { return T->tag() == Tag::Con; }

private:
  const TyCon *Con;
};

class AppType : public Type {
public:
  AppType(const Type *Fn, const Type *Arg)
      : Type(Tag::App), Fn(Fn), Arg(Arg) {}

  const Type *fn() const { return Fn; }
  const Type *arg() const { return Arg; }

  static bool classof(const Type *T) { return T->tag() == Tag::App; }

private:
  const Type *Fn;
  const Type *Arg;
};

class FunType : public Type {
public:
  FunType(const Type *Param, const Type *Result)
      : Type(Tag::Fun), Param(Param), Result(Result) {}

  const Type *param() const { return Param; }
  const Type *result() const { return Result; }

  static bool classof(const Type *T) { return T->tag() == Tag::Fun; }

private:
  const Type *Param;
  const Type *Result;
};

class VarType : public Type {
public:
  VarType(Symbol Name, const Kind *K) : Type(Tag::Var), Name(Name), K(K) {}

  Symbol name() const { return Name; }
  const Kind *kind() const { return K; }

  static bool classof(const Type *T) { return T->tag() == Tag::Var; }

private:
  Symbol Name;
  const Kind *K;
};

/// A type metavariable; its solution/kind live in the inference engine's
/// meta store (infer/Unify.h).
class MetaType : public Type {
public:
  explicit MetaType(uint32_t Id) : Type(Tag::Meta), Id(Id) {}

  uint32_t id() const { return Id; }

  static bool classof(const Type *T) { return T->tag() == Tag::Meta; }

private:
  uint32_t Id;
};

class ForAllType : public Type {
public:
  ForAllType(Symbol Var, const Kind *VarKind, const Type *Body)
      : Type(Tag::ForAll), Var(Var), VarKind(VarKind), Body(Body) {}

  Symbol var() const { return Var; }
  const Kind *varKind() const { return VarKind; }
  const Type *body() const { return Body; }

  static bool classof(const Type *T) { return T->tag() == Tag::ForAll; }

private:
  Symbol Var;
  const Kind *VarKind;
  const Type *Body;
};

class UnboxedTupleType : public Type {
public:
  std::span<const Type *const> elems() const { return Elems; }

  static bool classof(const Type *T) {
    return T->tag() == Tag::UnboxedTuple;
  }

private:
  friend class CoreContext;

  /// Only the node stores \p Elems — no copy is made here — so the span
  /// must point into storage that outlives the type. Construction is
  /// therefore restricted to CoreContext::unboxedTupleTy, which interns
  /// the element array in the context's arena first; a public constructor
  /// invited spans over stack temporaries that dangled after return.
  explicit UnboxedTupleType(std::span<const Type *const> Elems)
      : Type(Tag::UnboxedTuple), Elems(Elems) {}

  std::span<const Type *const> Elems;
};

/// 'ρ — a rep promoted to the type level (kind Rep).
class RepLiftType : public Type {
public:
  explicit RepLiftType(const RepTy *R) : Type(Tag::RepLift), R(R) {}

  const RepTy *rep() const { return R; }

  static bool classof(const Type *T) { return T->tag() == Tag::RepLift; }

private:
  const RepTy *R;
};

template <typename To, typename From> bool isa(const From *Node) {
  return To::classof(Node);
}

template <typename To, typename From> const To *cast(const From *Node) {
  assert(isa<To>(Node) && "cast to incompatible node kind");
  return static_cast<const To *>(Node);
}

template <typename To, typename From> const To *dyn_cast(const From *Node) {
  return isa<To>(Node) ? static_cast<const To *>(Node) : nullptr;
}

//===----------------------------------------------------------------------===//
// Type constructors and data constructors
//===----------------------------------------------------------------------===//

/// A type constructor: name, kind, and (for algebraic types) data
/// constructors. The *representation* of a saturated application is
/// ResultRep: LiftedRep for ordinary data, a primitive rep for builtin
/// unboxed types (Int# :: TYPE IntRep).
class TyCon {
public:
  TyCon(Symbol Name, const Kind *K, const RepTy *ResultRep)
      : Name(Name), K(K), ResultRep(ResultRep) {}

  Symbol name() const { return Name; }
  const Kind *kind() const { return K; }
  const RepTy *resultRep() const { return ResultRep; }

  const std::vector<const DataCon *> &dataCons() const { return DataCons; }
  void addDataCon(const DataCon *DC) { DataCons.push_back(DC); }

  /// \returns true if this tycon has value constructors (algebraic).
  bool isAlgebraic() const { return !DataCons.empty(); }

private:
  Symbol Name;
  const Kind *K;
  const RepTy *ResultRep;
  std::vector<const DataCon *> DataCons;
};

/// A data constructor, e.g. I# :: Int# -> Int. Universals are the parent
/// tycon's parameters; field types may mention them.
class DataCon {
public:
  DataCon(Symbol Name, const TyCon *Parent, std::vector<Symbol> Univs,
          std::vector<const Kind *> UnivKinds,
          std::vector<const Type *> Fields, unsigned Tag)
      : Name(Name), Parent(Parent), Univs(std::move(Univs)),
        UnivKinds(std::move(UnivKinds)), Fields(std::move(Fields)),
        ConTag(Tag) {}

  Symbol name() const { return Name; }
  const TyCon *parent() const { return Parent; }
  const std::vector<Symbol> &univs() const { return Univs; }
  const std::vector<const Kind *> &univKinds() const { return UnivKinds; }
  const std::vector<const Type *> &fields() const { return Fields; }
  unsigned tag() const { return ConTag; }
  size_t arity() const { return Fields.size(); }

private:
  Symbol Name;
  const TyCon *Parent;
  std::vector<Symbol> Univs;
  std::vector<const Kind *> UnivKinds;
  std::vector<const Type *> Fields;
  unsigned ConTag;
};

} // namespace core
} // namespace levity

#endif // LEVITY_CORE_TYPE_H
