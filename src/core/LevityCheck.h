//===- LevityCheck.h - The Section 5.1 restrictions as a pass ---*- C++ -*-===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two levity-polymorphism restrictions of Section 5.1, as a
/// standalone pass over core:
///
///   1. *No levity-polymorphic binders.* Every bound term variable must
///      have a type whose kind is TYPE ρ with ρ fully concrete.
///   2. *No levity-polymorphic function arguments.* Every application
///      argument likewise.
///
/// GHC runs this check in the desugarer, after type inference has solved
/// all unification variables (Section 8.2 explains why: the checks need
/// zonked types, and the type checker cannot run them early). This pass
/// plays that role: it zonks as it walks and reports failures through a
/// DiagnosticEngine with dedicated codes so callers can distinguish the
/// two restrictions (e.g. the abs1/abs2 pair of Section 7.3).
///
//===----------------------------------------------------------------------===//

#ifndef LEVITY_CORE_LEVITYCHECK_H
#define LEVITY_CORE_LEVITYCHECK_H

#include "core/TypeCheck.h"
#include "support/Diagnostics.h"

namespace levity {
namespace core {

/// Checks the Section 5.1 restrictions over a core expression. Reports
/// all violations (not just the first).
class LevityChecker {
public:
  LevityChecker(CoreContext &C, DiagnosticEngine &Diags)
      : C(C), Checker(C), Diags(Diags) {}

  /// Walks \p E, emitting LevityPolymorphicBinder /
  /// LevityPolymorphicArgument diagnostics. \returns true if clean.
  bool check(CoreEnv &Env, const Expr *E);

private:
  void checkBinder(CoreEnv &Env, Symbol Var, const Type *VarTy);
  void checkArgument(CoreEnv &Env, const Expr *Arg);
  void walk(CoreEnv &Env, const Expr *E);

  CoreContext &C;
  CoreChecker Checker;
  DiagnosticEngine &Diags;
};

} // namespace core
} // namespace levity

#endif // LEVITY_CORE_LEVITYCHECK_H
