//===- Kind.h - Kinds with runtime-representation payloads ------*- C++ -*-===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The kind language of Section 4, generalizing L's two-point kind system
/// to the full design GHC 8 shipped:
///
/// \code
///   ρ (RepTy) ::= r | ν | LiftedRep | UnliftedRep | IntRep | ...
///               | TupleRep [ρ...] | SumRep [ρ...]
///   κ (Kind)  ::= TYPE ρ | Rep | κ₁ → κ₂
/// \endcode
///
/// `TYPE :: Rep -> Type` is the only primitive; `Type` is the synonym
/// `TYPE LiftedRep` (CoreContext::typeKind()). Rep variables are ordinary
/// type variables of kind `Rep` (the promoted data type), and rep
/// *metavariables* (ν) are the unification variables that Section 5.2's
/// inference story introduces — they are defaulted to LiftedRep, never
/// generalized.
///
//===----------------------------------------------------------------------===//

#ifndef LEVITY_CORE_KIND_H
#define LEVITY_CORE_KIND_H

#include "rep/Rep.h"
#include "support/Arena.h"
#include "support/Symbol.h"

#include <cassert>
#include <string>

namespace levity {
namespace core {

/// ρ — a (possibly open) runtime-representation type. Concrete reps
/// correspond 1:1 to rep::Rep values; variables and metavariables make the
/// algebra open for levity polymorphism and inference.
class RepTy {
public:
  enum class Tag : uint8_t {
    Var,  ///< A rep variable r (bound by a ∀ of kind Rep).
    Meta, ///< A unification variable ν (Section 5.2).
    Atom, ///< LiftedRep, UnliftedRep, IntRep, ... (non-compound).
    Tuple,///< TupleRep '[ρ...].
    Sum   ///< SumRep '[ρ...].
  };

  Tag tag() const { return T; }

  Symbol varName() const {
    assert(T == Tag::Var);
    return Name;
  }
  uint32_t metaId() const {
    assert(T == Tag::Meta);
    return Id;
  }
  RepCtor atom() const {
    assert(T == Tag::Atom);
    return Ctor;
  }
  std::span<const RepTy *const> elems() const {
    assert(T == Tag::Tuple || T == Tag::Sum);
    return Elems;
  }

  std::string str() const;

private:
  friend class CoreContext;
  RepTy(Tag T, Symbol Name, uint32_t Id, RepCtor Ctor,
        std::span<const RepTy *const> Elems)
      : T(T), Name(Name), Id(Id), Ctor(Ctor), Elems(Elems) {}

  Tag T;
  Symbol Name;
  uint32_t Id = 0;
  RepCtor Ctor = RepCtor::Lifted;
  std::span<const RepTy *const> Elems;
};

/// κ — a kind.
class Kind {
public:
  enum class Tag : uint8_t {
    TypeOf, ///< TYPE ρ — the kind of types that classify values.
    Rep,    ///< The kind of runtime representations (r :: Rep).
    Arrow   ///< κ₁ → κ₂ — type constructors.
  };

  Tag tag() const { return T; }

  const RepTy *rep() const {
    assert(T == Tag::TypeOf);
    return R;
  }
  const Kind *param() const {
    assert(T == Tag::Arrow);
    return Param;
  }
  const Kind *result() const {
    assert(T == Tag::Arrow);
    return Result;
  }

  bool isTypeOf() const { return T == Tag::TypeOf; }
  bool isRep() const { return T == Tag::Rep; }
  bool isArrow() const { return T == Tag::Arrow; }

  std::string str() const;

private:
  friend class CoreContext;
  Kind(Tag T, const RepTy *R, const Kind *Param, const Kind *Result)
      : T(T), R(R), Param(Param), Result(Result) {}

  Tag T;
  const RepTy *R;
  const Kind *Param;
  const Kind *Result;
};

} // namespace core
} // namespace levity

#endif // LEVITY_CORE_KIND_H
