//===- TypeCheck.h - Kinding and linting for core IR ------------*- C++ -*-===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Kind computation for core types (the generalized Figure 3 type-validity
/// judgment) and a Core-Lint-style expression checker. Lint verifies
/// *typing* only; the two levity restrictions of Section 5.1 are a
/// separate pass (LevityCheck.h), mirroring GHC's desugarer-time check
/// (Section 8.2) so tests can build levity-polymorphic core and watch the
/// right pass reject it.
///
//===----------------------------------------------------------------------===//

#ifndef LEVITY_CORE_TYPECHECK_H
#define LEVITY_CORE_TYPECHECK_H

#include "core/CoreContext.h"
#include "support/Result.h"

#include <unordered_map>

namespace levity {
namespace core {

/// Scoped environments for kinding/typing.
class CoreEnv {
public:
  void pushTypeVar(Symbol Name, const Kind *K) {
    TypeVars.push_back({Name, K});
  }
  void popTypeVar() { TypeVars.pop_back(); }

  const Kind *lookupTypeVar(Symbol Name) const {
    for (auto It = TypeVars.rbegin(), E = TypeVars.rend(); It != E; ++It)
      if (It->first == Name)
        return It->second;
    return nullptr;
  }

  void pushTerm(Symbol Name, const Type *Ty) { Terms.push_back({Name, Ty}); }
  void popTerm() { Terms.pop_back(); }
  void popTerms(size_t N) { Terms.resize(Terms.size() - N); }

  const Type *lookupTerm(Symbol Name) const {
    for (auto It = Terms.rbegin(), E = Terms.rend(); It != E; ++It)
      if (It->first == Name)
        return It->second;
    return nullptr;
  }

  /// Top-level globals (error handled specially; user program bindings).
  void addGlobal(Symbol Name, const Type *Ty) { Globals[Name] = Ty; }
  const Type *lookupGlobal(Symbol Name) const {
    auto It = Globals.find(Name);
    return It == Globals.end() ? nullptr : It->second;
  }

private:
  std::vector<std::pair<Symbol, const Kind *>> TypeVars;
  std::vector<std::pair<Symbol, const Type *>> Terms;
  std::unordered_map<Symbol, const Type *, SymbolHash> Globals;
};

/// Kinding and expression linting.
class CoreChecker {
public:
  explicit CoreChecker(CoreContext &C) : C(C) {}

  /// Computes the kind of \p T. Types are zonked on the way in, so
  /// solved metas never leak.
  Result<const Kind *> kindOf(CoreEnv &Env, const Type *T);

  /// Lints \p E, returning its type. Var lookups consult locals, then
  /// globals.
  Result<const Type *> typeOf(CoreEnv &Env, const Expr *E);

  /// \returns true when \p K is TYPE ρ with ρ fully concrete — the
  /// "kind is fixed and free of any type variables" condition of
  /// Section 5.1 (note 9: arrow kinds etc. are fine; this predicate is
  /// for binder/argument kinds specifically).
  bool isConcreteValueKind(const Kind *K);

  /// Disables the App strictness-bit consistency check (used by the
  /// elaborator's post-inference fix-up pass, which runs typeOf while
  /// the bits are still provisional).
  void setCheckStrictnessBits(bool On) { CheckStrictnessBits = On; }

private:
  CoreContext &C;
  bool CheckStrictnessBits = true;
};

} // namespace core
} // namespace levity

#endif // LEVITY_CORE_TYPECHECK_H
