//===- CoreContext.cpp - Ownership and factories for core IR --------------===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "core/CoreContext.h"

using namespace levity;
using namespace levity::core;

CoreContext::CoreContext() {
  // Primitive unboxed tycons: Int# :: TYPE IntRep, etc.
  IntHashTC = makeTyCon(sym("Int#"), kindTYPE(intRep()), intRep());
  WordHashTC = makeTyCon(sym("Word#"), kindTYPE(wordRep()), wordRep());
  FloatHashTC = makeTyCon(sym("Float#"), kindTYPE(floatRep()), floatRep());
  DoubleHashTC =
      makeTyCon(sym("Double#"), kindTYPE(doubleRep()), doubleRep());
  // String: opaque, boxed, lifted (stands in for [Char]).
  StringTC = makeTyCon(sym("String"), typeKind(), liftedRep());

  // data Int = I# Int# — an ordinary algebraic data type (Section 2.1).
  IntTC = makeTyCon(sym("Int"), typeKind(), liftedRep());
  IHashDC = makeDataCon(sym("I#"), IntTC, {}, {}, {conTy(IntHashTC)});

  // data Double = D# Double#.
  DoubleTC = makeTyCon(sym("Double"), typeKind(), liftedRep());
  DHashDC = makeDataCon(sym("D#"), DoubleTC, {}, {}, {conTy(DoubleHashTC)});

  // data Bool = False | True.
  BoolTC = makeTyCon(sym("Bool"), typeKind(), liftedRep());
  FalseDC = makeDataCon(sym("False"), BoolTC, {}, {}, {});
  TrueDC = makeDataCon(sym("True"), BoolTC, {}, {}, {});

  // data Unit = Unit.
  UnitTC = makeTyCon(sym("Unit"), typeKind(), liftedRep());
  UnitDC = makeDataCon(sym("Unit"), UnitTC, {}, {}, {});

  // Materialize every lazily-cached singleton now, while the context is
  // still private to one thread. After compilation a context may be read
  // (and allocated into) by many Executors concurrently; these caches
  // must never be first-written then.
  for (size_t I = 0; I <= size_t(RepCtor::Addr); ++I)
    (void)repAtom(RepCtor(I));
  (void)repKind();
  (void)errorType();
}

//===----------------------------------------------------------------------===//
// Reps
//===----------------------------------------------------------------------===//

const RepTy *CoreContext::repAtom(RepCtor Ctor) {
  assert(Ctor != RepCtor::Tuple && Ctor != RepCtor::Sum);
  size_t I = size_t(Ctor);
  if (!RepAtoms[I])
    RepAtoms[I] =
        Mem.create<RepTy>(RepTy(RepTy::Tag::Atom, Symbol(), 0, Ctor, {}));
  return RepAtoms[I];
}

const RepTy *CoreContext::repVar(Symbol Name) {
  return Mem.create<RepTy>(
      RepTy(RepTy::Tag::Var, Name, 0, RepCtor::Lifted, {}));
}

const RepTy *CoreContext::repTuple(std::span<const RepTy *const> Elems) {
  return Mem.create<RepTy>(RepTy(RepTy::Tag::Tuple, Symbol(), 0,
                                 RepCtor::Tuple, Mem.copyArray(Elems)));
}

const RepTy *CoreContext::repSum(std::span<const RepTy *const> Elems) {
  return Mem.create<RepTy>(RepTy(RepTy::Tag::Sum, Symbol(), 0, RepCtor::Sum,
                                 Mem.copyArray(Elems)));
}

const Type *CoreContext::unboxedTupleTy(std::span<const Type *const> Elems) {
  // Intern the element array first: the node stores only a span, and the
  // caller's buffer is typically a local vector that dies with its scope.
  // The private constructor keeps this the sole construction path.
  std::span<const Type *const> Interned = Mem.copyArray(Elems);
  void *P = Mem.allocate(sizeof(UnboxedTupleType), alignof(UnboxedTupleType));
  return new (P) UnboxedTupleType(Interned);
}

const RepTy *CoreContext::freshRepMeta() {
  uint32_t Id = static_cast<uint32_t>(RepMetas.size());
  RepMetas.push_back({});
  return Mem.create<RepTy>(
      RepTy(RepTy::Tag::Meta, Symbol(), Id, RepCtor::Lifted, {}));
}

const RepTy *CoreContext::zonkRep(const RepTy *R) {
  switch (R->tag()) {
  case RepTy::Tag::Var:
  case RepTy::Tag::Atom:
    return R;
  case RepTy::Tag::Meta: {
    const RepMetaCell &Cell = RepMetas[R->metaId()];
    if (!Cell.Solution)
      return R;
    return zonkRep(Cell.Solution);
  }
  case RepTy::Tag::Tuple:
  case RepTy::Tag::Sum: {
    std::vector<const RepTy *> Elems;
    bool Changed = false;
    for (const RepTy *E : R->elems()) {
      const RepTy *Z = zonkRep(E);
      Changed |= (Z != E);
      Elems.push_back(Z);
    }
    if (!Changed)
      return R;
    return R->tag() == RepTy::Tag::Tuple ? repTuple(Elems) : repSum(Elems);
  }
  }
  assert(false && "unknown rep tag");
  return R;
}

const Rep *CoreContext::concreteRep(const RepTy *R, RepContext &RC) {
  R = zonkRep(R);
  switch (R->tag()) {
  case RepTy::Tag::Var:
  case RepTy::Tag::Meta:
    return nullptr;
  case RepTy::Tag::Atom:
    return RC.atom(R->atom());
  case RepTy::Tag::Tuple:
  case RepTy::Tag::Sum: {
    std::vector<const Rep *> Elems;
    for (const RepTy *E : R->elems()) {
      const Rep *C = concreteRep(E, RC);
      if (!C)
        return nullptr;
      Elems.push_back(C);
    }
    return R->tag() == RepTy::Tag::Tuple ? RC.tuple(Elems) : RC.sum(Elems);
  }
  }
  assert(false && "unknown rep tag");
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Kinds
//===----------------------------------------------------------------------===//

const Kind *CoreContext::kindTYPE(const RepTy *R) {
  return Mem.create<Kind>(Kind(Kind::Tag::TypeOf, R, nullptr, nullptr));
}

const Kind *CoreContext::repKind() {
  if (!RepKindSingleton)
    RepKindSingleton =
        Mem.create<Kind>(Kind(Kind::Tag::Rep, nullptr, nullptr, nullptr));
  return RepKindSingleton;
}

const Kind *CoreContext::kindArrow(const Kind *Param, const Kind *Result) {
  return Mem.create<Kind>(Kind(Kind::Tag::Arrow, nullptr, Param, Result));
}

const Kind *CoreContext::zonkKind(const Kind *K) {
  switch (K->tag()) {
  case Kind::Tag::Rep:
    return K;
  case Kind::Tag::TypeOf: {
    const RepTy *Z = zonkRep(K->rep());
    return Z == K->rep() ? K : kindTYPE(Z);
  }
  case Kind::Tag::Arrow: {
    const Kind *P = zonkKind(K->param());
    const Kind *R = zonkKind(K->result());
    if (P == K->param() && R == K->result())
      return K;
    return kindArrow(P, R);
  }
  }
  assert(false && "unknown kind tag");
  return K;
}

//===----------------------------------------------------------------------===//
// Types
//===----------------------------------------------------------------------===//

const Type *CoreContext::appTys(const Type *Fn,
                                std::span<const Type *const> Args) {
  const Type *T = Fn;
  for (const Type *A : Args)
    T = appTy(T, A);
  return T;
}

const Type *CoreContext::funTys(std::span<const Type *const> Params,
                                const Type *Res) {
  const Type *T = Res;
  for (size_t I = Params.size(); I != 0; --I)
    T = funTy(Params[I - 1], T);
  return T;
}

const Type *CoreContext::freshTypeMeta(const Kind *K) {
  uint32_t Id = static_cast<uint32_t>(TypeMetas.size());
  TypeMetas.push_back({nullptr, K});
  return Mem.create<MetaType>(Id);
}

const Type *CoreContext::zonkType(const Type *T) {
  switch (T->tag()) {
  case Type::Tag::Con:
    return T;
  case Type::Tag::Var: {
    const auto *V = cast<VarType>(T);
    const Kind *K = zonkKind(V->kind());
    return K == V->kind() ? T : varTy(V->name(), K);
  }
  case Type::Tag::Meta: {
    const TypeMetaCell &Cell = TypeMetas[cast<MetaType>(T)->id()];
    if (!Cell.Solution)
      return T;
    return zonkType(Cell.Solution);
  }
  case Type::Tag::App: {
    const auto *A = cast<AppType>(T);
    const Type *F = zonkType(A->fn());
    const Type *X = zonkType(A->arg());
    if (F == A->fn() && X == A->arg())
      return T;
    return appTy(F, X);
  }
  case Type::Tag::Fun: {
    const auto *F = cast<FunType>(T);
    const Type *P = zonkType(F->param());
    const Type *R = zonkType(F->result());
    if (P == F->param() && R == F->result())
      return T;
    return funTy(P, R);
  }
  case Type::Tag::ForAll: {
    const auto *F = cast<ForAllType>(T);
    const Kind *K = zonkKind(F->varKind());
    const Type *B = zonkType(F->body());
    if (K == F->varKind() && B == F->body())
      return T;
    return forAllTy(F->var(), K, B);
  }
  case Type::Tag::UnboxedTuple: {
    const auto *U = cast<UnboxedTupleType>(T);
    std::vector<const Type *> Elems;
    bool Changed = false;
    for (const Type *E : U->elems()) {
      const Type *Z = zonkType(E);
      Changed |= (Z != E);
      Elems.push_back(Z);
    }
    if (!Changed)
      return T;
    return unboxedTupleTy(Elems);
  }
  case Type::Tag::RepLift: {
    const auto *R = cast<RepLiftType>(T);
    const RepTy *Z = zonkRep(R->rep());
    return Z == R->rep() ? T : repLiftTy(Z);
  }
  }
  assert(false && "unknown type tag");
  return T;
}

//===----------------------------------------------------------------------===//
// TyCons / DataCons
//===----------------------------------------------------------------------===//

TyCon *CoreContext::makeTyCon(Symbol Name, const Kind *K,
                              const RepTy *ResultRep) {
  TyCons.push_back(std::make_unique<TyCon>(Name, K, ResultRep));
  return TyCons.back().get();
}

const DataCon *CoreContext::makeDataCon(Symbol Name, TyCon *Parent,
                                        std::vector<Symbol> Univs,
                                        std::vector<const Kind *> UnivKinds,
                                        std::vector<const Type *> Fields) {
  unsigned Tag = static_cast<unsigned>(Parent->dataCons().size());
  DataCons.push_back(std::make_unique<DataCon>(Name, Parent,
                                               std::move(Univs),
                                               std::move(UnivKinds),
                                               std::move(Fields), Tag));
  Parent->addDataCon(DataCons.back().get());
  return DataCons.back().get();
}

TyCon *CoreContext::lookupTyCon(Symbol Name) const {
  for (const auto &TC : TyCons)
    if (TC->name() == Name)
      return TC.get();
  return nullptr;
}

const DataCon *CoreContext::lookupDataCon(Symbol Name) const {
  for (const auto &DC : DataCons)
    if (DC->name() == Name)
      return DC.get();
  return nullptr;
}

const Type *CoreContext::errorType() {
  if (ErrorTypeCache)
    return ErrorTypeCache;
  Symbol R = sym("r");
  Symbol A = sym("a");
  const Kind *KA = kindTYPE(repVar(R));
  ErrorTypeCache = forAllTy(
      R, repKind(),
      forAllTy(A, KA, funTy(stringTy(), varTy(A, KA))));
  return ErrorTypeCache;
}

//===----------------------------------------------------------------------===//
// Primop types
//===----------------------------------------------------------------------===//

const Type *CoreContext::primOpType(PrimOp Op) {
  const Type *IH = intHashTy();
  const Type *DH = doubleHashTy();
  switch (Op) {
  case PrimOp::AddI:
  case PrimOp::SubI:
  case PrimOp::MulI:
  case PrimOp::QuotI:
  case PrimOp::RemI:
    return funTy(IH, funTy(IH, IH));
  case PrimOp::NegI:
    return funTy(IH, IH);
  case PrimOp::LtI:
  case PrimOp::LeI:
  case PrimOp::GtI:
  case PrimOp::GeI:
  case PrimOp::EqI:
  case PrimOp::NeI:
    return funTy(IH, funTy(IH, IH));
  case PrimOp::AddD:
  case PrimOp::SubD:
  case PrimOp::MulD:
  case PrimOp::DivD:
    return funTy(DH, funTy(DH, DH));
  case PrimOp::NegD:
    return funTy(DH, DH);
  case PrimOp::LtD:
  case PrimOp::EqD:
    return funTy(DH, funTy(DH, IH));
  case PrimOp::Int2Double:
    return funTy(IH, DH);
  case PrimOp::Double2Int:
    return funTy(DH, IH);
  case PrimOp::IsTrue:
    return funTy(IH, boolTy());
  }
  assert(false && "unknown primop");
  return nullptr;
}

std::string_view core::primOpName(PrimOp Op) {
  switch (Op) {
  case PrimOp::AddI: return "+#";
  case PrimOp::SubI: return "-#";
  case PrimOp::MulI: return "*#";
  case PrimOp::QuotI: return "quotInt#";
  case PrimOp::RemI: return "remInt#";
  case PrimOp::NegI: return "negateInt#";
  case PrimOp::LtI: return "<#";
  case PrimOp::LeI: return "<=#";
  case PrimOp::GtI: return ">#";
  case PrimOp::GeI: return ">=#";
  case PrimOp::EqI: return "==#";
  case PrimOp::NeI: return "/=#";
  case PrimOp::AddD: return "+##";
  case PrimOp::SubD: return "-##";
  case PrimOp::MulD: return "*##";
  case PrimOp::DivD: return "/##";
  case PrimOp::NegD: return "negateDouble#";
  case PrimOp::LtD: return "<##";
  case PrimOp::EqD: return "==##";
  case PrimOp::Int2Double: return "int2Double#";
  case PrimOp::Double2Int: return "double2Int#";
  case PrimOp::IsTrue: return "isTrue#";
  }
  return "?";
}

unsigned core::primOpArity(PrimOp Op) {
  switch (Op) {
  case PrimOp::NegI:
  case PrimOp::NegD:
  case PrimOp::Int2Double:
  case PrimOp::Double2Int:
  case PrimOp::IsTrue:
    return 1;
  default:
    return 2;
  }
}
