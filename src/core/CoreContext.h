//===- CoreContext.h - Ownership and factories for core IR ------*- C++ -*-===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Owns every core kind, rep, type, expression, tycon and datacon, plus
/// the metavariable stores used by inference (Section 5.2's mutable cells;
/// zonking resolves them — Section 8.2 discusses why that is needed).
/// Also defines the built-in environment: the primitive unboxed types, the
/// boxed wrappers `data Int = I# Int#` etc. (Section 2.1: "GHC does not
/// treat them specially"), and `error`'s levity-polymorphic type.
///
//===----------------------------------------------------------------------===//

#ifndef LEVITY_CORE_CORECONTEXT_H
#define LEVITY_CORE_CORECONTEXT_H

#include "core/Expr.h"
#include "core/Kind.h"
#include "core/Type.h"

#include <memory>
#include <optional>
#include <vector>

namespace levity {
namespace core {

/// A type metavariable cell (μ). Solution is written once by unification.
struct TypeMetaCell {
  const Type *Solution = nullptr;
  const Kind *MetaKind = nullptr;
};

/// A rep metavariable cell (ν). Unsolved cells default to LiftedRep at
/// generalization time (Section 5.2: "we never infer levity
/// polymorphism").
struct RepMetaCell {
  const RepTy *Solution = nullptr;
};

class CoreContext {
public:
  CoreContext();
  CoreContext(const CoreContext &) = delete;
  CoreContext &operator=(const CoreContext &) = delete;

  SymbolTable &symbols() { return Symbols; }
  Symbol sym(std::string_view Name) { return Symbols.intern(Name); }

  //===------------------------------------------------------------------===//
  // Reps
  //===------------------------------------------------------------------===//

  const RepTy *repAtom(RepCtor Ctor);
  const RepTy *liftedRep() { return repAtom(RepCtor::Lifted); }
  const RepTy *unliftedRep() { return repAtom(RepCtor::Unlifted); }
  const RepTy *intRep() { return repAtom(RepCtor::Int); }
  const RepTy *wordRep() { return repAtom(RepCtor::Word); }
  const RepTy *floatRep() { return repAtom(RepCtor::Float); }
  const RepTy *doubleRep() { return repAtom(RepCtor::Double); }
  const RepTy *addrRep() { return repAtom(RepCtor::Addr); }
  const RepTy *repVar(Symbol Name);
  const RepTy *repTuple(std::span<const RepTy *const> Elems);
  const RepTy *repTuple(std::initializer_list<const RepTy *> Elems) {
    return repTuple(
        std::span<const RepTy *const>(Elems.begin(), Elems.size()));
  }
  const RepTy *repSum(std::span<const RepTy *const> Elems);

  /// Allocates a fresh rep metavariable ν.
  const RepTy *freshRepMeta();

  /// Resolves meta solutions hereditarily; result mentions only unsolved
  /// metas, vars, and atoms.
  const RepTy *zonkRep(const RepTy *R);

  /// \returns the closed rep::Rep for \p R if it is fully concrete after
  /// zonking, else nullptr. This is the bridge from kinds to calling
  /// conventions (Section 4).
  const Rep *concreteRep(const RepTy *R, RepContext &RC);

  RepMetaCell &repMetaCell(uint32_t Id) { return RepMetas[Id]; }
  size_t numRepMetas() const { return RepMetas.size(); }

  //===------------------------------------------------------------------===//
  // Kinds
  //===------------------------------------------------------------------===//

  const Kind *kindTYPE(const RepTy *R);
  const Kind *typeKind() { return kindTYPE(liftedRep()); } ///< Type.
  const Kind *repKind();                                   ///< Rep.
  const Kind *kindArrow(const Kind *Param, const Kind *Result);

  const Kind *zonkKind(const Kind *K);

  //===------------------------------------------------------------------===//
  // Types
  //===------------------------------------------------------------------===//

  const Type *conTy(const TyCon *TC) { return Mem.create<ConType>(TC); }
  const Type *appTy(const Type *Fn, const Type *Arg) {
    return Mem.create<AppType>(Fn, Arg);
  }
  /// Saturated application T τ₁ … τₙ.
  const Type *appTys(const Type *Fn, std::span<const Type *const> Args);
  const Type *funTy(const Type *Param, const Type *Result) {
    return Mem.create<FunType>(Param, Result);
  }
  /// σ₁ → σ₂ → … → τ.
  const Type *funTys(std::span<const Type *const> Params, const Type *Res);
  const Type *varTy(Symbol Name, const Kind *K) {
    return Mem.create<VarType>(Name, K);
  }
  const Type *forAllTy(Symbol Var, const Kind *K, const Type *Body) {
    return Mem.create<ForAllType>(Var, K, Body);
  }
  /// Arena-interns \p Elems before building the node; the caller's array
  /// may die freely (UnboxedTupleType itself never owns storage).
  const Type *unboxedTupleTy(std::span<const Type *const> Elems);
  const Type *unboxedTupleTy(std::initializer_list<const Type *> Elems) {
    return unboxedTupleTy(
        std::span<const Type *const>(Elems.begin(), Elems.size()));
  }
  const Type *repLiftTy(const RepTy *R) {
    return Mem.create<RepLiftType>(R);
  }

  /// Allocates a fresh type metavariable μ of kind \p K (invent a rep meta
  /// for K when following Section 5.2's α :: TYPE ν recipe).
  const Type *freshTypeMeta(const Kind *K);
  TypeMetaCell &typeMetaCell(uint32_t Id) { return TypeMetas[Id]; }
  size_t numTypeMetas() const { return TypeMetas.size(); }

  const Type *zonkType(const Type *T);

  //===------------------------------------------------------------------===//
  // TyCons / DataCons
  //===------------------------------------------------------------------===//

  TyCon *makeTyCon(Symbol Name, const Kind *K, const RepTy *ResultRep);
  const DataCon *makeDataCon(Symbol Name, TyCon *Parent,
                             std::vector<Symbol> Univs,
                             std::vector<const Kind *> UnivKinds,
                             std::vector<const Type *> Fields);

  TyCon *lookupTyCon(Symbol Name) const;
  const DataCon *lookupDataCon(Symbol Name) const;

  // Builtins.
  TyCon *intHashTyCon() const { return IntHashTC; }
  TyCon *wordHashTyCon() const { return WordHashTC; }
  TyCon *floatHashTyCon() const { return FloatHashTC; }
  TyCon *doubleHashTyCon() const { return DoubleHashTC; }
  TyCon *stringTyCon() const { return StringTC; }
  TyCon *intTyCon() const { return IntTC; }
  TyCon *doubleTyCon() const { return DoubleTC; }
  TyCon *boolTyCon() const { return BoolTC; }
  TyCon *unitTyCon() const { return UnitTC; }

  const DataCon *iHashCon() const { return IHashDC; } ///< I# :: Int# -> Int
  const DataCon *dHashCon() const { return DHashDC; } ///< D# :: Double#->Double
  const DataCon *trueCon() const { return TrueDC; }
  const DataCon *falseCon() const { return FalseDC; }
  const DataCon *unitCon() const { return UnitDC; }

  const Type *intHashTy() { return conTy(IntHashTC); }
  const Type *doubleHashTy() { return conTy(DoubleHashTC); }
  const Type *floatHashTy() { return conTy(FloatHashTC); }
  const Type *wordHashTy() { return conTy(WordHashTC); }
  const Type *stringTy() { return conTy(StringTC); }
  const Type *intTy() { return conTy(IntTC); }
  const Type *doubleTy() { return conTy(DoubleTC); }
  const Type *boolTy() { return conTy(BoolTC); }
  const Type *unitTy() { return conTy(UnitTC); }

  /// error :: ∀(r::Rep). ∀(a::TYPE r). String → a (Section 4.3).
  const Type *errorType();

  //===------------------------------------------------------------------===//
  // Expressions (factories defined in Expr.h's node types)
  //===------------------------------------------------------------------===//

  const Expr *var(Symbol Name) { return Mem.create<VarExpr>(Name); }
  const Expr *litInt(int64_t V) {
    return Mem.create<LitExpr>(Literal::intHash(V));
  }
  const Expr *litDouble(double V) {
    return Mem.create<LitExpr>(Literal::doubleHash(V));
  }
  const Expr *litString(Symbol S) {
    return Mem.create<LitExpr>(Literal::string(S));
  }
  const Expr *app(const Expr *Fn, const Expr *Arg, bool StrictArg) {
    return Mem.create<AppExpr>(Fn, Arg, StrictArg);
  }
  const Expr *tyApp(const Expr *Fn, const Type *Arg) {
    return Mem.create<TyAppExpr>(Fn, Arg);
  }
  const Expr *lam(Symbol Var, const Type *VarTy, const Expr *Body) {
    return Mem.create<LamExpr>(Var, VarTy, Body);
  }
  const Expr *tyLam(Symbol Var, const Kind *K, const Expr *Body) {
    return Mem.create<TyLamExpr>(Var, K, Body);
  }
  const Expr *let(Symbol Var, const Type *VarTy, const Expr *Rhs,
                  const Expr *Body, bool Strict) {
    return Mem.create<LetExpr>(Var, VarTy, Rhs, Body, Strict);
  }
  const Expr *letRec(std::span<const RecBinding> Binds, const Expr *Body) {
    return Mem.create<LetRecExpr>(Mem.copyArray(Binds), Body);
  }
  const Expr *caseOf(const Expr *Scrut, const Type *ResultTy,
                     std::span<const Alt> Alts) {
    return Mem.create<CaseExpr>(Scrut, ResultTy, Mem.copyArray(Alts));
  }
  const Expr *conApp(const DataCon *DC, std::span<const Type *const> TyArgs,
                     std::span<const Expr *const> Args) {
    return Mem.create<ConExpr>(DC, Mem.copyArray(TyArgs),
                               Mem.copyArray(Args));
  }
  const Expr *primOp(PrimOp Op, std::span<const Expr *const> Args) {
    return Mem.create<PrimOpExpr>(Op, Mem.copyArray(Args));
  }
  const Expr *primOp(PrimOp Op, std::initializer_list<const Expr *> Args) {
    return primOp(Op, std::span<const Expr *const>(Args.begin(),
                                                   Args.size()));
  }
  const Expr *unboxedTuple(std::span<const Expr *const> Elems) {
    return Mem.create<UnboxedTupleExpr>(Mem.copyArray(Elems));
  }
  const Expr *errorExpr(const Type *AtTy, const RepTy *AtRep,
                        const Expr *Message) {
    return Mem.create<ErrorExpr>(AtTy, AtRep, Message);
  }

  /// The type of a primop (monomorphic for all but error, which has its
  /// own node).
  const Type *primOpType(PrimOp Op);

  std::span<const Alt> copyAlts(std::span<const Alt> Alts) {
    return Mem.copyArray(Alts);
  }

  Arena &arena() { return Mem; }

private:
  Arena Mem;
  SymbolTable Symbols;

  const RepTy *RepAtoms[size_t(RepCtor::Addr) + 1] = {};
  const Kind *RepKindSingleton = nullptr;

  std::vector<TypeMetaCell> TypeMetas;
  std::vector<RepMetaCell> RepMetas;

  std::vector<std::unique_ptr<TyCon>> TyCons;
  std::vector<std::unique_ptr<DataCon>> DataCons;

  TyCon *IntHashTC = nullptr, *WordHashTC = nullptr, *FloatHashTC = nullptr,
        *DoubleHashTC = nullptr, *StringTC = nullptr, *IntTC = nullptr,
        *DoubleTC = nullptr, *BoolTC = nullptr, *UnitTC = nullptr;
  const DataCon *IHashDC = nullptr, *DHashDC = nullptr, *TrueDC = nullptr,
                *FalseDC = nullptr, *UnitDC = nullptr;
  const Type *ErrorTypeCache = nullptr;
};

//===----------------------------------------------------------------------===//
// Structural operations
//===----------------------------------------------------------------------===//

/// Alpha-aware structural equality (call on zonked types).
bool typeEqual(const Type *A, const Type *B);
bool kindEqual(const Kind *A, const Kind *B);
bool repEqual(const RepTy *A, const RepTy *B);

/// Capture-avoiding τ[Replacement/Var]. When Var has kind Rep, occurrences
/// inside RepTys (i.e. inside kinds) are substituted as well.
const Type *substType(CoreContext &C, const Type *T, Symbol Var,
                      const Type *Replacement);

/// ρ[Replacement/Var] at the rep level.
const RepTy *substRepInRep(CoreContext &C, const RepTy *R, Symbol Var,
                           const RepTy *Replacement);

/// \returns the RepTy view of a type of kind Rep (VarType -> rep var,
/// RepLiftType -> payload, MetaType of kind Rep -> that meta's rep view);
/// nullptr if \p T is not a rep-kinded type.
const RepTy *typeAsRep(CoreContext &C, const Type *T);

/// Collects the free type variables (including rep variables) of \p T.
void freeTypeVars(const Type *T,
                  std::vector<std::pair<Symbol, const Kind *>> &Out);

/// Collects unsolved metas (type and rep ids) appearing in \p T.
struct MetaSet {
  std::vector<uint32_t> TypeMetaIds;
  std::vector<uint32_t> RepMetaIds;
};
void collectMetas(CoreContext &C, const Type *T, MetaSet &Out);

} // namespace core
} // namespace levity

#endif // LEVITY_CORE_CORECONTEXT_H
