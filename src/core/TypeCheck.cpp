//===- TypeCheck.cpp - Kinding and linting for core IR --------------------===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "core/TypeCheck.h"

using namespace levity;
using namespace levity::core;

bool CoreChecker::isConcreteValueKind(const Kind *K) {
  K = C.zonkKind(K);
  if (!K->isTypeOf())
    return false;
  // Concrete = no rep variables or metas anywhere in the rep tree.
  struct {
    CoreContext &C;
    bool concrete(const RepTy *R) {
      switch (R->tag()) {
      case RepTy::Tag::Var:
      case RepTy::Tag::Meta:
        return false;
      case RepTy::Tag::Atom:
        return true;
      case RepTy::Tag::Tuple:
      case RepTy::Tag::Sum:
        for (const RepTy *E : R->elems())
          if (!concrete(E))
            return false;
        return true;
      }
      return false;
    }
  } Walk{C};
  return Walk.concrete(K->rep());
}

Result<const Kind *> CoreChecker::kindOf(CoreEnv &Env, const Type *T) {
  T = C.zonkType(T);
  switch (T->tag()) {
  case Type::Tag::Con:
    return cast<ConType>(T)->tycon()->kind();
  case Type::Tag::Var: {
    const auto *V = cast<VarType>(T);
    // Bound occurrences carry their kinds inline; when an environment
    // binding exists it must agree (catches ill-scoped construction).
    if (const Kind *K = Env.lookupTypeVar(V->name())) {
      if (!kindEqual(C.zonkKind(K), C.zonkKind(V->kind())))
        return err("kind mismatch for type variable " +
                   std::string(V->name().str()) + ": bound at " +
                   K->str() + ", used at " + V->kind()->str());
    }
    return V->kind();
  }
  case Type::Tag::Meta:
    return C.typeMetaCell(cast<MetaType>(T)->id()).MetaKind;
  case Type::Tag::RepLift:
    return C.repKind();
  case Type::Tag::App: {
    const auto *A = cast<AppType>(T);
    Result<const Kind *> FnK = kindOf(Env, A->fn());
    if (!FnK)
      return FnK;
    const Kind *K = C.zonkKind(*FnK);
    if (!K->isArrow())
      return err("applying type of non-arrow kind " + K->str() + ": " +
                 A->fn()->str());
    Result<const Kind *> ArgK = kindOf(Env, A->arg());
    if (!ArgK)
      return ArgK;
    if (!kindEqual(C.zonkKind(K->param()), C.zonkKind(*ArgK)))
      return err("kind mismatch in type application " + T->str() +
                 ": expected " + K->param()->str() + ", got " +
                 (*ArgK)->str());
    return K->result();
  }
  case Type::Tag::Fun: {
    // (->) :: ∀r1 r2. TYPE r1 -> TYPE r2 -> Type (Section 4.3): both
    // sides must classify values, at *any* rep; the arrow is lifted.
    const auto *F = cast<FunType>(T);
    Result<const Kind *> PK = kindOf(Env, F->param());
    if (!PK)
      return PK;
    if (!C.zonkKind(*PK)->isTypeOf())
      return err("function parameter has non-value kind " + (*PK)->str() +
                 ": " + F->param()->str());
    Result<const Kind *> RK = kindOf(Env, F->result());
    if (!RK)
      return RK;
    if (!C.zonkKind(*RK)->isTypeOf())
      return err("function result has non-value kind " + (*RK)->str() +
                 ": " + F->result()->str());
    return C.typeKind();
  }
  case Type::Tag::ForAll: {
    // Kind of the body (erasure), with the T_ALLREP-style escape check:
    // the bound variable must not occur in the body's kind.
    const auto *F = cast<ForAllType>(T);
    Env.pushTypeVar(F->var(), F->varKind());
    Result<const Kind *> BK = kindOf(Env, F->body());
    Env.popTypeVar();
    if (!BK)
      return BK;
    const Kind *K = C.zonkKind(*BK);
    struct {
      Symbol Var;
      bool mentions(const RepTy *R) {
        switch (R->tag()) {
        case RepTy::Tag::Var:
          return R->varName() == Var;
        case RepTy::Tag::Meta:
        case RepTy::Tag::Atom:
          return false;
        case RepTy::Tag::Tuple:
        case RepTy::Tag::Sum:
          for (const RepTy *E : R->elems())
            if (mentions(E))
              return true;
          return false;
        }
        return false;
      }
      bool mentionsKind(const Kind *K) {
        switch (K->tag()) {
        case Kind::Tag::Rep:
          return false;
        case Kind::Tag::TypeOf:
          return mentions(K->rep());
        case Kind::Tag::Arrow:
          return mentionsKind(K->param()) || mentionsKind(K->result());
        }
        return false;
      }
    } Esc{F->var()};
    if (Esc.mentionsKind(K))
      return err("kind of forall body mentions the bound variable " +
                 std::string(F->var().str()) + " (cannot erase): " +
                 K->str());
    return K;
  }
  case Type::Tag::UnboxedTuple: {
    // (# τ₁, …, τₙ #) :: TYPE (TupleRep '[ρ₁, …, ρₙ]) (Section 4.2).
    const auto *U = cast<UnboxedTupleType>(T);
    std::vector<const RepTy *> Reps;
    for (const Type *E : U->elems()) {
      Result<const Kind *> EK = kindOf(Env, E);
      if (!EK)
        return EK;
      const Kind *K = C.zonkKind(*EK);
      if (!K->isTypeOf())
        return err("unboxed tuple field has non-value kind " + K->str() +
                   ": " + E->str());
      Reps.push_back(K->rep());
    }
    return C.kindTYPE(C.repTuple(Reps));
  }
  }
  assert(false && "unknown type tag");
  return err("unknown type tag");
}

Result<const Type *> CoreChecker::typeOf(CoreEnv &Env, const Expr *E) {
  switch (E->tag()) {
  case Expr::Tag::Var: {
    const auto *V = cast<VarExpr>(E);
    if (const Type *T = Env.lookupTerm(V->name()))
      return C.zonkType(T);
    if (const Type *T = Env.lookupGlobal(V->name()))
      return C.zonkType(T);
    return err("variable not in scope: " + std::string(V->name().str()));
  }
  case Expr::Tag::Lit: {
    const Literal &L = cast<LitExpr>(E)->lit();
    switch (L.tag()) {
    case Literal::Tag::IntHash:
      return C.intHashTy();
    case Literal::Tag::DoubleHash:
      return C.doubleHashTy();
    case Literal::Tag::String:
      return C.stringTy();
    }
    return err("unknown literal");
  }
  case Expr::Tag::App: {
    const auto *A = cast<AppExpr>(E);
    Result<const Type *> FnTy = typeOf(Env, A->fn());
    if (!FnTy)
      return FnTy;
    const auto *F = dyn_cast<FunType>(C.zonkType(*FnTy));
    if (!F)
      return err("applying non-function of type " + (*FnTy)->str());
    Result<const Type *> ArgTy = typeOf(Env, A->arg());
    if (!ArgTy)
      return ArgTy;
    if (!typeEqual(C.zonkType(F->param()), C.zonkType(*ArgTy)))
      return err("argument type mismatch: expected " + F->param()->str() +
                 ", got " + (*ArgTy)->str());
    // Consistency of the strictness bit with the argument kind, when the
    // kind is concrete (levity-polymorphic cases are LevityCheck's job).
    Result<const Kind *> AK = kindOf(Env, F->param());
    if (CheckStrictnessBits && AK && isConcreteValueKind(*AK)) {
      const RepTy *R = C.zonkRep((*AK)->rep());
      bool Unlifted = !(R->tag() == RepTy::Tag::Atom &&
                        R->atom() == RepCtor::Lifted);
      if (Unlifted != A->strictArg())
        return err("strictness bit disagrees with argument kind " +
                   (*AK)->str() + " in " + E->str());
    }
    return F->result();
  }
  case Expr::Tag::TyApp: {
    const auto *A = cast<TyAppExpr>(E);
    Result<const Type *> FnTy = typeOf(Env, A->fn());
    if (!FnTy)
      return FnTy;
    const auto *F = dyn_cast<ForAllType>(C.zonkType(*FnTy));
    if (!F)
      return err("type-applying non-polymorphic expression of type " +
                 (*FnTy)->str());
    Result<const Kind *> AK = kindOf(Env, A->tyArg());
    if (!AK)
      return err(AK.error());
    if (!kindEqual(C.zonkKind(F->varKind()), C.zonkKind(*AK)))
      return err("kind mismatch in type application: expected " +
                 F->varKind()->str() + ", got " + (*AK)->str());
    return substType(C, F->body(), F->var(), C.zonkType(A->tyArg()));
  }
  case Expr::Tag::Lam: {
    const auto *L = cast<LamExpr>(E);
    Result<const Kind *> BK = kindOf(Env, L->varType());
    if (!BK)
      return err(BK.error());
    if (!C.zonkKind(*BK)->isTypeOf())
      return err("lambda binder has non-value kind " + (*BK)->str());
    Env.pushTerm(L->var(), L->varType());
    Result<const Type *> BodyTy = typeOf(Env, L->body());
    Env.popTerm();
    if (!BodyTy)
      return BodyTy;
    return C.funTy(C.zonkType(L->varType()), *BodyTy);
  }
  case Expr::Tag::TyLam: {
    const auto *L = cast<TyLamExpr>(E);
    Env.pushTypeVar(L->var(), L->varKind());
    Result<const Type *> BodyTy = typeOf(Env, L->body());
    Env.popTypeVar();
    if (!BodyTy)
      return BodyTy;
    return C.forAllTy(L->var(), L->varKind(), *BodyTy);
  }
  case Expr::Tag::Let: {
    const auto *L = cast<LetExpr>(E);
    Result<const Type *> RhsTy = typeOf(Env, L->rhs());
    if (!RhsTy)
      return RhsTy;
    if (!typeEqual(C.zonkType(L->varType()), C.zonkType(*RhsTy)))
      return err("let annotation mismatch: " + L->varType()->str() +
                 " vs " + (*RhsTy)->str());
    Env.pushTerm(L->var(), L->varType());
    Result<const Type *> BodyTy = typeOf(Env, L->body());
    Env.popTerm();
    return BodyTy;
  }
  case Expr::Tag::LetRec: {
    const auto *L = cast<LetRecExpr>(E);
    for (const RecBinding &B : L->bindings())
      Env.pushTerm(B.Var, B.VarTy);
    for (const RecBinding &B : L->bindings()) {
      Result<const Type *> RhsTy = typeOf(Env, B.Rhs);
      if (!RhsTy) {
        Env.popTerms(L->bindings().size());
        return RhsTy;
      }
      if (!typeEqual(C.zonkType(B.VarTy), C.zonkType(*RhsTy))) {
        Env.popTerms(L->bindings().size());
        return err("letrec annotation mismatch for " +
                   std::string(B.Var.str()));
      }
      // Recursive binders must be lifted (a thunk ties the knot).
      CoreEnv KEnv;
      Result<const Kind *> BK = kindOf(KEnv, B.VarTy);
      if (BK && C.zonkKind(*BK)->isTypeOf()) {
        const RepTy *R = C.zonkRep(C.zonkKind(*BK)->rep());
        if (!(R->tag() == RepTy::Tag::Atom &&
              R->atom() == RepCtor::Lifted)) {
          Env.popTerms(L->bindings().size());
          return err("recursive binder " + std::string(B.Var.str()) +
                     " has unlifted type " + B.VarTy->str());
        }
      }
    }
    Result<const Type *> BodyTy = typeOf(Env, L->body());
    Env.popTerms(L->bindings().size());
    return BodyTy;
  }
  case Expr::Tag::Case: {
    const auto *Cs = cast<CaseExpr>(E);
    Result<const Type *> ScrutTy = typeOf(Env, Cs->scrut());
    if (!ScrutTy)
      return ScrutTy;
    const Type *ST = C.zonkType(*ScrutTy);
    if (Cs->alts().empty())
      return err("case with no alternatives");

    for (const Alt &A : Cs->alts()) {
      size_t Pushed = 0;
      switch (A.Kind) {
      case Alt::AltKind::ConPat: {
        // Scrutinee must be the constructor's parent applied to args.
        const Type *Head = ST;
        std::vector<const Type *> TyArgs;
        while (const auto *App = dyn_cast<AppType>(Head)) {
          TyArgs.insert(TyArgs.begin(), App->arg());
          Head = App->fn();
        }
        const auto *Con = dyn_cast<ConType>(Head);
        if (!Con || Con->tycon() != A.Con->parent())
          return err("constructor " + std::string(A.Con->name().str()) +
                     " does not match scrutinee type " + ST->str());
        if (A.Binders.size() != A.Con->arity())
          return err("constructor pattern arity mismatch for " +
                     std::string(A.Con->name().str()));
        // Instantiate field types with the scrutinee's type arguments.
        for (size_t I = 0; I != A.Binders.size(); ++I) {
          const Type *FieldTy = A.Con->fields()[I];
          for (size_t U = 0; U != A.Con->univs().size() &&
                             U != TyArgs.size();
               ++U)
            FieldTy = substType(C, FieldTy, A.Con->univs()[U], TyArgs[U]);
          Env.pushTerm(A.Binders[I], FieldTy);
          ++Pushed;
        }
        break;
      }
      case Alt::AltKind::LitPat:
        break;
      case Alt::AltKind::TuplePat: {
        const auto *UT = dyn_cast<UnboxedTupleType>(ST);
        if (!UT)
          return err("unboxed tuple pattern against type " + ST->str());
        if (A.Binders.size() != UT->elems().size())
          return err("unboxed tuple pattern arity mismatch");
        for (size_t I = 0; I != A.Binders.size(); ++I) {
          Env.pushTerm(A.Binders[I], UT->elems()[I]);
          ++Pushed;
        }
        break;
      }
      case Alt::AltKind::Default:
        break;
      }
      Result<const Type *> RhsTy = typeOf(Env, A.Rhs);
      Env.popTerms(Pushed);
      if (!RhsTy)
        return RhsTy;
      if (!typeEqual(C.zonkType(Cs->resultType()), C.zonkType(*RhsTy)))
        return err("case alternative type mismatch: annotated " +
                   Cs->resultType()->str() + ", alt has " +
                   (*RhsTy)->str());
    }
    return Cs->resultType();
  }
  case Expr::Tag::Con: {
    const auto *Con = cast<ConExpr>(E);
    const DataCon *DC = Con->dataCon();
    if (Con->tyArgs().size() != DC->univs().size())
      return err("constructor type-argument arity mismatch for " +
                 std::string(DC->name().str()));
    if (Con->args().size() != DC->arity())
      return err("constructor argument arity mismatch for " +
                 std::string(DC->name().str()));
    for (size_t I = 0; I != Con->args().size(); ++I) {
      const Type *FieldTy = DC->fields()[I];
      for (size_t U = 0; U != DC->univs().size(); ++U)
        FieldTy = substType(C, FieldTy, DC->univs()[U], Con->tyArgs()[U]);
      Result<const Type *> ArgTy = typeOf(Env, Con->args()[I]);
      if (!ArgTy)
        return ArgTy;
      if (!typeEqual(C.zonkType(FieldTy), C.zonkType(*ArgTy)))
        return err("constructor field type mismatch in " +
                   std::string(DC->name().str()) + ": expected " +
                   FieldTy->str() + ", got " + (*ArgTy)->str());
    }
    const Type *T = C.conTy(const_cast<TyCon *>(DC->parent()));
    return C.appTys(T, Con->tyArgs());
  }
  case Expr::Tag::Prim: {
    const auto *P = cast<PrimOpExpr>(E);
    const Type *OpTy = C.primOpType(P->op());
    if (P->args().size() != primOpArity(P->op()))
      return err("primop arity mismatch for " +
                 std::string(primOpName(P->op())));
    for (const Expr *A : P->args()) {
      const auto *F = cast<FunType>(OpTy);
      Result<const Type *> ArgTy = typeOf(Env, A);
      if (!ArgTy)
        return ArgTy;
      if (!typeEqual(C.zonkType(F->param()), C.zonkType(*ArgTy)))
        return err("primop argument type mismatch for " +
                   std::string(primOpName(P->op())) + ": expected " +
                   F->param()->str() + ", got " + (*ArgTy)->str());
      OpTy = F->result();
    }
    return OpTy;
  }
  case Expr::Tag::UnboxedTuple: {
    const auto *U = cast<UnboxedTupleExpr>(E);
    std::vector<const Type *> Elems;
    for (const Expr *El : U->elems()) {
      Result<const Type *> T = typeOf(Env, El);
      if (!T)
        return T;
      Elems.push_back(C.zonkType(*T));
    }
    return C.unboxedTupleTy(Elems);
  }
  case Expr::Tag::Error: {
    const auto *Err = cast<ErrorExpr>(E);
    Result<const Type *> MsgTy = typeOf(Env, Err->message());
    if (!MsgTy)
      return MsgTy;
    if (!typeEqual(C.zonkType(*MsgTy), C.stringTy()))
      return err("error message must be a String, got " + (*MsgTy)->str());
    // The node must be instantiated consistently: atType :: TYPE atRep.
    Result<const Kind *> AK = kindOf(Env, Err->atType());
    if (!AK)
      return err(AK.error());
    const Kind *K = C.zonkKind(*AK);
    if (!K->isTypeOf() || !repEqual(C.zonkRep(K->rep()),
                                    C.zonkRep(Err->atRep())))
      return err("error instantiation mismatch: type " +
                 Err->atType()->str() + " :: " + K->str() +
                 " but rep argument is " + Err->atRep()->str());
    return Err->atType();
  }
  }
  assert(false && "unknown expr tag");
  return err("unknown expr tag");
}
