//===- Program.h - Top-level core programs ----------------------*- C++ -*-===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A core program: an ordered set of mutually recursive top-level
/// bindings (the output of surface elaboration, the input of the levity
/// checker and the interpreter).
///
//===----------------------------------------------------------------------===//

#ifndef LEVITY_CORE_PROGRAM_H
#define LEVITY_CORE_PROGRAM_H

#include "core/Expr.h"

#include <vector>

namespace levity {
namespace core {

struct TopBinding {
  Symbol Name;
  const Type *Ty;
  const Expr *Rhs;
};

struct CoreProgram {
  std::vector<TopBinding> Bindings;

  const TopBinding *find(Symbol Name) const {
    for (const TopBinding &B : Bindings)
      if (B.Name == Name)
        return &B;
    return nullptr;
  }
};

} // namespace core
} // namespace levity

#endif // LEVITY_CORE_PROGRAM_H
