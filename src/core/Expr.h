//===- Expr.h - Core expressions --------------------------------*- C++ -*-===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The expression language of the generalized core IR: System F with
/// datatypes, literals of several reps, let/letrec, case, primops,
/// unboxed tuples, and a levity-polymorphic `error`. Applications and
/// lets carry a *strictness bit* derived from the binder/argument kind at
/// elaboration time — this is "kinds are calling conventions" made
/// operational, and it is exactly what the LevityCheck pass validates.
///
//===----------------------------------------------------------------------===//

#ifndef LEVITY_CORE_EXPR_H
#define LEVITY_CORE_EXPR_H

#include "core/Type.h"

#include <cstdint>
#include <span>
#include <string>

namespace levity {
namespace core {

//===----------------------------------------------------------------------===//
// Literals and primops
//===----------------------------------------------------------------------===//

/// An unboxed literal (42# :: Int#, 3.14## :: Double#) or a string
/// constant (the argument of error; String is an opaque lifted builtin).
class Literal {
public:
  enum class Tag : uint8_t { IntHash, DoubleHash, String };

  static Literal intHash(int64_t V) {
    Literal L;
    L.T = Tag::IntHash;
    L.I = V;
    return L;
  }
  static Literal doubleHash(double V) {
    Literal L;
    L.T = Tag::DoubleHash;
    L.D = V;
    return L;
  }
  static Literal string(Symbol S) {
    Literal L;
    L.T = Tag::String;
    L.S = S;
    return L;
  }

  Tag tag() const { return T; }
  int64_t intValue() const {
    assert(T == Tag::IntHash);
    return I;
  }
  double doubleValue() const {
    assert(T == Tag::DoubleHash);
    return D;
  }
  Symbol stringValue() const {
    assert(T == Tag::String);
    return S;
  }

  std::string str() const;

private:
  Tag T = Tag::IntHash;
  int64_t I = 0;
  double D = 0;
  Symbol S;
};

/// Built-in operations over unboxed values. Comparisons return Int#
/// (0 or 1), as in GHC; IsTrue converts to Bool.
enum class PrimOp : uint8_t {
  // Int# arithmetic.
  AddI, SubI, MulI, QuotI, RemI, NegI,
  // Int# comparisons (result Int#).
  LtI, LeI, GtI, GeI, EqI, NeI,
  // Double# arithmetic.
  AddD, SubD, MulD, DivD, NegD,
  // Double# comparisons (result Int#).
  LtD, EqD,
  // Conversions.
  Int2Double, Double2Int,
  // Int# 0/1 to Bool.
  IsTrue
};

std::string_view primOpName(PrimOp Op);
unsigned primOpArity(PrimOp Op);

/// Number of PrimOp values; folded into the artifact pipeline
/// fingerprint (driver/Serialize.h) because the on-disk CORE section
/// encodes primops by their numeric value — a new primop must
/// invalidate stale stores.
inline constexpr unsigned NumPrimOps = unsigned(PrimOp::IsTrue) + 1;

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

class Expr {
public:
  enum class Tag : uint8_t {
    Var,
    Lit,
    App,
    TyApp,
    Lam,
    TyLam,
    Let,
    LetRec,
    Case,
    Con,
    Prim,
    UnboxedTuple,
    Error
  };

  Tag tag() const { return T; }
  std::string str() const;

protected:
  explicit Expr(Tag T) : T(T) {}

private:
  Tag T;
};

class VarExpr : public Expr {
public:
  explicit VarExpr(Symbol Name) : Expr(Tag::Var), Name(Name) {}
  Symbol name() const { return Name; }
  static bool classof(const Expr *E) { return E->tag() == Tag::Var; }

private:
  Symbol Name;
};

class LitExpr : public Expr {
public:
  explicit LitExpr(Literal L) : Expr(Tag::Lit), L(L) {}
  const Literal &lit() const { return L; }
  static bool classof(const Expr *E) { return E->tag() == Tag::Lit; }

private:
  Literal L;
};

/// Application. StrictArg records whether the argument's kind is unlifted
/// (call-by-value) — set at construction from the argument type's kind.
class AppExpr : public Expr {
public:
  AppExpr(const Expr *Fn, const Expr *Arg, bool StrictArg)
      : Expr(Tag::App), Fn(Fn), Arg(Arg), StrictArg(StrictArg) {}

  const Expr *fn() const { return Fn; }
  const Expr *arg() const { return Arg; }
  bool strictArg() const { return StrictArg; }
  /// Elaboration may not know the argument kind until metavariables are
  /// solved; the post-inference fix-up pass rewrites the bit in place.
  void setStrictArg(bool Strict) const { StrictArg = Strict; }

  static bool classof(const Expr *E) { return E->tag() == Tag::App; }

private:
  const Expr *Fn;
  const Expr *Arg;
  mutable bool StrictArg;
};

class TyAppExpr : public Expr {
public:
  TyAppExpr(const Expr *Fn, const Type *Arg)
      : Expr(Tag::TyApp), Fn(Fn), TyArg(Arg) {}

  const Expr *fn() const { return Fn; }
  const Type *tyArg() const { return TyArg; }

  static bool classof(const Expr *E) { return E->tag() == Tag::TyApp; }

private:
  const Expr *Fn;
  const Type *TyArg;
};

class LamExpr : public Expr {
public:
  LamExpr(Symbol Var, const Type *VarTy, const Expr *Body)
      : Expr(Tag::Lam), Var(Var), VarTy(VarTy), Body(Body) {}

  Symbol var() const { return Var; }
  const Type *varType() const { return VarTy; }
  const Expr *body() const { return Body; }

  static bool classof(const Expr *E) { return E->tag() == Tag::Lam; }

private:
  Symbol Var;
  const Type *VarTy;
  const Expr *Body;
};

class TyLamExpr : public Expr {
public:
  TyLamExpr(Symbol Var, const Kind *K, const Expr *Body)
      : Expr(Tag::TyLam), Var(Var), K(K), Body(Body) {}

  Symbol var() const { return Var; }
  const Kind *varKind() const { return K; }
  const Expr *body() const { return Body; }

  static bool classof(const Expr *E) { return E->tag() == Tag::TyLam; }

private:
  Symbol Var;
  const Kind *K;
  const Expr *Body;
};

/// Non-recursive let. Strict mirrors the binder kind (unlifted binders
/// must be strict; a lazy binding of an unlifted value has nowhere to put
/// a thunk).
class LetExpr : public Expr {
public:
  LetExpr(Symbol Var, const Type *VarTy, const Expr *Rhs, const Expr *Body,
          bool Strict)
      : Expr(Tag::Let), Var(Var), VarTy(VarTy), Rhs(Rhs), Body(Body),
        Strict(Strict) {}

  Symbol var() const { return Var; }
  const Type *varType() const { return VarTy; }
  const Expr *rhs() const { return Rhs; }
  const Expr *body() const { return Body; }
  bool strict() const { return Strict; }
  /// See AppExpr::setStrictArg.
  void setStrict(bool S) const { Strict = S; }

  static bool classof(const Expr *E) { return E->tag() == Tag::Let; }

private:
  Symbol Var;
  const Type *VarTy;
  const Expr *Rhs;
  const Expr *Body;
  mutable bool Strict;
};

struct RecBinding {
  Symbol Var;
  const Type *VarTy;
  const Expr *Rhs;
};

/// Recursive let; all binders must be lifted (thunks tie the knot).
class LetRecExpr : public Expr {
public:
  LetRecExpr(std::span<const RecBinding> Binds, const Expr *Body)
      : Expr(Tag::LetRec), Binds(Binds), Body(Body) {}

  std::span<const RecBinding> bindings() const { return Binds; }
  const Expr *body() const { return Body; }

  static bool classof(const Expr *E) { return E->tag() == Tag::LetRec; }

private:
  std::span<const RecBinding> Binds;
  const Expr *Body;
};

/// One case alternative.
struct Alt {
  enum class AltKind : uint8_t {
    ConPat,   ///< K x₁ … xₙ →
    LitPat,   ///< n# →
    TuplePat, ///< (# x₁, …, xₙ #) →
    Default   ///< _ →
  };

  AltKind Kind;
  const DataCon *Con = nullptr;        ///< ConPat.
  std::span<const Symbol> Binders;     ///< ConPat / TuplePat.
  Literal Lit;                         ///< LitPat.
  const Expr *Rhs = nullptr;
};

/// Case: forces the scrutinee to WHNF and branches. ResultTy annotates the
/// alternatives' common type (simplifies checking, as in GHC Core).
class CaseExpr : public Expr {
public:
  CaseExpr(const Expr *Scrut, const Type *ResultTy, std::span<const Alt>
           Alts)
      : Expr(Tag::Case), Scrut(Scrut), ResultTy(ResultTy), Alts(Alts) {}

  const Expr *scrut() const { return Scrut; }
  const Type *resultType() const { return ResultTy; }
  std::span<const Alt> alts() const { return Alts; }

  static bool classof(const Expr *E) { return E->tag() == Tag::Case; }

private:
  const Expr *Scrut;
  const Type *ResultTy;
  std::span<const Alt> Alts;
};

/// Saturated data-constructor application K @τ₁…@τₘ e₁…eₙ.
class ConExpr : public Expr {
public:
  ConExpr(const DataCon *DC, std::span<const Type *const> TyArgs,
          std::span<const Expr *const> Args)
      : Expr(Tag::Con), DC(DC), TyArgs(TyArgs), Args(Args) {}

  const DataCon *dataCon() const { return DC; }
  std::span<const Type *const> tyArgs() const { return TyArgs; }
  std::span<const Expr *const> args() const { return Args; }

  static bool classof(const Expr *E) { return E->tag() == Tag::Con; }

private:
  const DataCon *DC;
  std::span<const Type *const> TyArgs;
  std::span<const Expr *const> Args;
};

/// Saturated primop application.
class PrimOpExpr : public Expr {
public:
  PrimOpExpr(PrimOp Op, std::span<const Expr *const> Args)
      : Expr(Tag::Prim), Op(Op), Args(Args) {}

  PrimOp op() const { return Op; }
  std::span<const Expr *const> args() const { return Args; }

  static bool classof(const Expr *E) { return E->tag() == Tag::Prim; }

private:
  PrimOp Op;
  std::span<const Expr *const> Args;
};

/// (# e₁, …, eₙ #) — erased at runtime into n register values.
class UnboxedTupleExpr : public Expr {
public:
  explicit UnboxedTupleExpr(std::span<const Expr *const> Elems)
      : Expr(Tag::UnboxedTuple), Elems(Elems) {}

  std::span<const Expr *const> elems() const { return Elems; }

  static bool classof(const Expr *E) {
    return E->tag() == Tag::UnboxedTuple;
  }

private:
  std::span<const Expr *const> Elems;
};

/// error @ρ @τ msg — instantiated at result type τ :: TYPE ρ. Keeping the
/// instantiation explicit on the node lets the levity checker confirm the
/// *use* is fine even though error's own type is levity-polymorphic
/// (Section 3.3 / 4.3).
class ErrorExpr : public Expr {
public:
  ErrorExpr(const Type *AtTy, const RepTy *AtRep, const Expr *Message)
      : Expr(Tag::Error), AtTy(AtTy), AtRep(AtRep), Message(Message) {}

  const Type *atType() const { return AtTy; }
  const RepTy *atRep() const { return AtRep; }
  const Expr *message() const { return Message; }

  static bool classof(const Expr *E) { return E->tag() == Tag::Error; }

private:
  const Type *AtTy;
  const RepTy *AtRep;
  const Expr *Message;
};

} // namespace core
} // namespace levity

#endif // LEVITY_CORE_EXPR_H
