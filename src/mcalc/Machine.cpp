//===- Machine.cpp - The M abstract machine (Figure 6) --------------------===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "mcalc/Machine.h"

using namespace levity;
using namespace levity::mcalc;

MachineResult Machine::run(const Term *T, uint64_t MaxSteps) {
  return runWithHeap(T, {}, MaxSteps);
}

MachineResult Machine::runWithHeap(const Term *T, HeapMap InitialHeap,
                                   uint64_t MaxSteps) {
  MachineResult R;
  MachineStats &S = R.Stats;

  const Term *Cur = T;
  std::vector<Frame> Stack;
  HeapMap H = std::move(InitialHeap);

  auto Stuck = [&](std::string Reason) {
    R.Status = MachineOutcome::Stuck;
    R.StuckReason = std::move(Reason);
    R.Value = Cur;
    R.FinalHeap = std::move(H);
    return R;
  };

  for (; S.Steps != MaxSteps; ++S.Steps) {
    S.MaxStackDepth = std::max(S.MaxStackDepth, Stack.size());
    S.MaxHeapSize = std::max(S.MaxHeapSize, H.size());

    if (isValue(Cur)) {
      // Lower group of Figure 6: dispatch on the top of the stack.
      if (Stack.empty()) {
        R.Status = MachineOutcome::Value;
        R.Value = Cur;
        R.FinalHeap = std::move(H);
        return R;
      }
      Frame F = Stack.back();
      Stack.pop_back();
      switch (F.Kind) {
      case Frame::FrameKind::AppPtr: {
        // PPOP: ⟨λp1.t1; App(p2),S; H⟩ → ⟨t1[p2/p1]; S; H⟩.
        const auto *L = dyn_cast<LamTerm>(Cur);
        if (!L)
          return Stuck("App(p) against a non-lambda value");
        if (!L->param().isPtr())
          return Stuck("calling-convention mismatch: pointer argument "
                       "for an integer-register parameter");
        ++S.BetaPtr;
        Cur = substVar(Ctx, L->body(), L->param(), F.Var);
        continue;
      }
      case Frame::FrameKind::AppLit: {
        // IPOP: ⟨λi.t1; App(n),S; H⟩ → ⟨t1[n/i]; S; H⟩.
        const auto *L = dyn_cast<LamTerm>(Cur);
        if (!L)
          return Stuck("App(n) against a non-lambda value");
        if (!L->param().isInt())
          return Stuck("calling-convention mismatch: integer argument "
                       "for a pointer-register parameter");
        ++S.BetaInt;
        Cur = substLit(Ctx, L->body(), L->param(), F.Lit);
        continue;
      }
      case Frame::FrameKind::Force:
        // FCE: ⟨w; Force(p),S; H⟩ → ⟨w; S; p↦w,H⟩ — thunk update.
        ++S.ThunkUpdates;
        H[F.Var.Name] = Cur;
        continue;
      case Frame::FrameKind::Let: {
        // ILET: ⟨n; Let(i,t),S; H⟩ → ⟨t[n/i]; S; H⟩.
        const auto *Lit = dyn_cast<LitTerm>(Cur);
        if (!Lit || !F.Var.isInt())
          return Stuck("let! continuation expects an integer literal");
        Cur = substLit(Ctx, F.Body, F.Var, Lit->value());
        continue;
      }
      case Frame::FrameKind::Case: {
        // IMAT: ⟨I#[n]; Case(i,t),S; H⟩ → ⟨t[n/i]; S; H⟩.
        const auto *Con = dyn_cast<ConLitTerm>(Cur);
        if (!Con || !F.Var.isInt())
          return Stuck("case continuation expects I#[n]");
        Cur = substLit(Ctx, F.Body, F.Var, Con->value());
        continue;
      }
      }
      return Stuck("unknown frame");
    }

    // Upper group of Figure 6: dispatch on the expression.
    switch (Cur->kind()) {
    case Term::TermKind::AppVar: {
      const auto *A = cast<AppVarTerm>(Cur);
      // PAPP: push the (pointer) argument; lazy — it is not evaluated.
      if (!A->arg().isPtr())
        return Stuck("application to an unresolved integer variable");
      Stack.push_back({Frame::FrameKind::AppPtr, A->arg(), 0, nullptr});
      Cur = A->fn();
      continue;
    }
    case Term::TermKind::AppLit: {
      // IAPP: push the literal argument (already a value).
      const auto *A = cast<AppLitTerm>(Cur);
      Stack.push_back({Frame::FrameKind::AppLit, MVar(), A->lit(), nullptr});
      Cur = A->fn();
      continue;
    }
    case Term::TermKind::Var: {
      const auto *V = cast<VarTerm>(Cur);
      if (!V->var().isPtr())
        return Stuck("unresolved integer variable " + V->var().str());
      auto It = H.find(V->var().Name);
      if (It == H.end())
        return Stuck("dangling heap pointer " + V->var().str());
      if (isValue(It->second)) {
        // VAL: simple lookup.
        ++S.VarLookups;
        Cur = It->second;
        continue;
      }
      // EVAL: black-hole the thunk and evaluate it; FCE writes back.
      ++S.ThunkEvals;
      Cur = It->second;
      H.erase(It);
      Stack.push_back({Frame::FrameKind::Force, V->var(), 0, nullptr});
      continue;
    }
    case Term::TermKind::Let: {
      // LET: allocate a thunk. The binder is freshened into a new heap
      // address so that re-entrant code allocates distinct cells.
      const auto *L = cast<LetTerm>(Cur);
      ++S.Allocations;
      MVar Addr = Ctx.freshPtr();
      H.emplace(Addr.Name, L->rhs());
      Cur = substVar(Ctx, L->body(), L->binder(), Addr);
      continue;
    }
    case Term::TermKind::LetBang: {
      // SLET: evaluate the right-hand side now.
      const auto *L = cast<LetBangTerm>(Cur);
      ++S.StrictLets;
      Stack.push_back(
          {Frame::FrameKind::Let, L->binder(), 0, L->body()});
      Cur = L->rhs();
      continue;
    }
    case Term::TermKind::Case: {
      // CASE.
      const auto *C = cast<CaseTerm>(Cur);
      ++S.Cases;
      Stack.push_back(
          {Frame::FrameKind::Case, C->binder(), 0, C->body()});
      Cur = C->scrut();
      continue;
    }
    case Term::TermKind::Prim: {
      // PRIM: ⟨n1 ⊕# n2; S; H⟩ → ⟨n; S; H⟩ — both operands must have
      // been resolved to literals by ILET/IPOP substitution.
      const auto *P = cast<PrimTerm>(Cur);
      if (!P->lhs().IsLit || !P->rhs().IsLit)
        return Stuck("unresolved integer variable in primop");
      ++S.Prims;
      Cur = Ctx.lit(evalMPrim(P->op(), P->lhs().Lit, P->rhs().Lit));
      continue;
    }
    case Term::TermKind::Error:
      // ERR: abort the machine.
      R.Status = MachineOutcome::Bottom;
      R.FinalHeap = std::move(H);
      return R;
    case Term::TermKind::ConVar:
      return Stuck("I#[y] with unresolved variable " +
                   cast<ConVarTerm>(Cur)->var().str());
    case Term::TermKind::Lam:
    case Term::TermKind::ConLit:
    case Term::TermKind::Lit:
      assert(false && "values handled above");
      return Stuck("internal: value fell through");
    }
  }

  R.Status = MachineOutcome::OutOfFuel;
  R.Value = Cur;
  R.FinalHeap = std::move(H);
  return R;
}
