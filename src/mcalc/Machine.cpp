//===- Machine.cpp - The M abstract machine (Figure 6) --------------------===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "mcalc/Machine.h"

#include <limits>

using namespace levity;
using namespace levity::mcalc;

namespace {

/// Restricts \p H to the cells transitively reachable from \p Root. A
/// variable *occurrence* anywhere in a term (argument atoms, lambda
/// bodies, constructor fields) counts as a reference — a safe
/// over-approximation of free variables, and exact for heap addresses:
/// the machine mints them fresh, so a heap address is never shadowed by
/// a binder. Symbols that name no heap cell (lambda binders from the
/// compiled program) simply miss the map.
HeapMap pruneToReachable(const Term *Root, HeapMap H) {
  if (H.empty())
    return H;
  HeapMap Kept;
  std::vector<const Term *> Work{Root};
  auto Ref = [&](MVar V) {
    if (!V.isPtr())
      return;
    auto It = H.find(V.Name);
    if (It == H.end())
      return;
    Work.push_back(It->second);
    Kept.emplace(It->first, It->second);
    H.erase(It);
  };
  while (!Work.empty()) {
    const Term *T = Work.back();
    Work.pop_back();
    if (!T)
      continue;
    switch (T->kind()) {
    case Term::TermKind::AppVar: {
      const auto *A = cast<AppVarTerm>(T);
      Ref(A->arg());
      Work.push_back(A->fn());
      break;
    }
    case Term::TermKind::AppLit:
      Work.push_back(cast<AppLitTerm>(T)->fn());
      break;
    case Term::TermKind::AppDbl:
      Work.push_back(cast<AppDblTerm>(T)->fn());
      break;
    case Term::TermKind::Lam:
      Work.push_back(cast<LamTerm>(T)->body());
      break;
    case Term::TermKind::Var:
      Ref(cast<VarTerm>(T)->var());
      break;
    case Term::TermKind::Let: {
      const auto *L = cast<LetTerm>(T);
      Work.push_back(L->rhs());
      Work.push_back(L->body());
      break;
    }
    case Term::TermKind::LetBang: {
      const auto *L = cast<LetBangTerm>(T);
      Work.push_back(L->rhs());
      Work.push_back(L->body());
      break;
    }
    case Term::TermKind::LetRec: {
      const auto *L = cast<LetRecTerm>(T);
      Work.push_back(L->rhs());
      Work.push_back(L->body());
      break;
    }
    case Term::TermKind::Case: {
      const auto *C = cast<CaseTerm>(T);
      Work.push_back(C->scrut());
      Work.push_back(C->body());
      break;
    }
    case Term::TermKind::If0: {
      const auto *I = cast<If0Term>(T);
      Work.push_back(I->scrut());
      Work.push_back(I->thenBranch());
      Work.push_back(I->elseBranch());
      break;
    }
    case Term::TermKind::Switch: {
      const auto *Sw = cast<SwitchTerm>(T);
      Work.push_back(Sw->scrut());
      for (const MAlt &A : Sw->alts())
        Work.push_back(A.Body);
      Work.push_back(Sw->defaultBody());
      break;
    }
    case Term::TermKind::Prim: {
      const auto *P = cast<PrimTerm>(T);
      if (!P->lhs().IsLit)
        Ref(P->lhs().Var);
      if (!P->rhs().IsLit)
        Ref(P->rhs().Var);
      break;
    }
    case Term::TermKind::ConVar:
      Ref(cast<ConVarTerm>(T)->var());
      break;
    case Term::TermKind::Con:
      for (const MAtom &A : cast<ConTerm>(T)->args())
        if (!A.IsLit)
          Ref(A.Var);
      break;
    case Term::TermKind::Error:
    case Term::TermKind::ConLit:
    case Term::TermKind::Lit:
    case Term::TermKind::DLit:
      break;
    }
  }
  return Kept;
}

} // namespace

MachineResult Machine::run(const Term *T, uint64_t MaxSteps) {
  return runWithHeap(T, {}, MaxSteps);
}

MachineResult Machine::runWithHeap(const Term *T, HeapMap InitialHeap,
                                   uint64_t MaxSteps) {
  MachineResult R;
  MachineStats &S = R.Stats;

  const Term *Cur = T;
  std::vector<Frame> Stack;
  HeapMap H = std::move(InitialHeap);

  // Substitution and heap cells all come from Ctx's arena, which is
  // monotone between resets — the end-of-run delta of bytesUsed() *is*
  // this run's peak. Exact when the context is not shared by concurrent
  // runs (the driver's per-Executor run context); an upper bound
  // otherwise.
  const size_t ArenaStart = Ctx.arena().bytesUsed();
  auto RecordPeak = [&] {
    size_t Now = Ctx.arena().bytesUsed();
    S.PeakHeapBytes = Now >= ArenaStart ? Now - ArenaStart : 0;
  };

  auto Stuck = [&](std::string Reason) {
    R.Status = MachineOutcome::Stuck;
    R.StuckReason = std::move(Reason);
    R.Value = Cur;
    R.FinalHeap = std::move(H);
    RecordPeak();
    return R;
  };

  for (; S.Steps != MaxSteps; ++S.Steps) {
    S.MaxStackDepth = std::max(S.MaxStackDepth, Stack.size());
    S.MaxHeapSize = std::max(S.MaxHeapSize, H.size());

    if (isValue(Cur)) {
      // Lower group of Figure 6: dispatch on the top of the stack.
      if (Stack.empty()) {
        R.Status = MachineOutcome::Value;
        R.Value = Cur;
        // Keep only the cells the result can actually name: the
        // snapshot exists for observational probing (anf/Joinability),
        // not to pin the whole run's heap alive.
        R.FinalHeap = pruneToReachable(Cur, std::move(H));
        RecordPeak();
        return R;
      }
      Frame F = Stack.back();
      Stack.pop_back();
      switch (F.Kind) {
      case Frame::FrameKind::AppPtr: {
        // PPOP: ⟨λp1.t1; App(p2),S; H⟩ → ⟨t1[p2/p1]; S; H⟩.
        const auto *L = dyn_cast<LamTerm>(Cur);
        if (!L)
          return Stuck("App(p) against a non-lambda value");
        if (!L->param().isPtr())
          return Stuck("calling-convention mismatch: pointer argument "
                       "for an integer-register parameter");
        ++S.BetaPtr;
        Cur = substVar(Ctx, L->body(), L->param(), F.Var);
        continue;
      }
      case Frame::FrameKind::AppLit: {
        // IPOP: ⟨λi.t1; App(n),S; H⟩ → ⟨t1[n/i]; S; H⟩.
        const auto *L = dyn_cast<LamTerm>(Cur);
        if (!L)
          return Stuck("App(n) against a non-lambda value");
        if (!L->param().isInt())
          return Stuck("calling-convention mismatch: integer argument "
                       "for a non-integer-register parameter");
        ++S.BetaInt;
        Cur = substLit(Ctx, L->body(), L->param(), F.Lit);
        continue;
      }
      case Frame::FrameKind::AppDbl: {
        // DPOP: ⟨λf.t1; App(d),S; H⟩ → ⟨t1[d/f]; S; H⟩.
        const auto *L = dyn_cast<LamTerm>(Cur);
        if (!L)
          return Stuck("App(d) against a non-lambda value");
        if (!L->param().isDbl())
          return Stuck("calling-convention mismatch: double argument "
                       "for a non-double-register parameter");
        ++S.BetaDbl;
        Cur = substDbl(Ctx, L->body(), L->param(), F.DblLit);
        continue;
      }
      case Frame::FrameKind::Force:
        // FCE: ⟨w; Force(p),S; H⟩ → ⟨w; S; p↦w,H⟩ — thunk update.
        ++S.ThunkUpdates;
        if (Cur->kind() == Term::TermKind::Con)
          ++S.ConAllocs;
        H[F.Var.Name] = Cur;
        continue;
      case Frame::FrameKind::Let: {
        // ILET: ⟨n; Let(i,t),S; H⟩ → ⟨t[n/i]; S; H⟩, and its double
        // counterpart DLET: ⟨d; Let(f,t),S; H⟩ → ⟨t[d/f]; S; H⟩.
        if (F.Var.isInt()) {
          const auto *Lit = dyn_cast<LitTerm>(Cur);
          if (!Lit)
            return Stuck("let! continuation expects an integer literal");
          Cur = substLit(Ctx, F.Body, F.Var, Lit->value());
          continue;
        }
        if (F.Var.isDbl()) {
          const auto *Lit = dyn_cast<DLitTerm>(Cur);
          if (!Lit)
            return Stuck("let! continuation expects a double literal");
          Cur = substDbl(Ctx, F.Body, F.Var, Lit->value());
          continue;
        }
        return Stuck("let! continuation over a pointer binder");
      }
      case Frame::FrameKind::Case: {
        // IMAT: ⟨I#[n]; Case(i,t),S; H⟩ → ⟨t[n/i]; S; H⟩.
        const auto *Con = dyn_cast<ConLitTerm>(Cur);
        if (!Con || !F.Var.isInt())
          return Stuck("case continuation expects I#[n]");
        Cur = substLit(Ctx, F.Body, F.Var, Con->value());
        continue;
      }
      case Frame::FrameKind::If0: {
        // IF0: ⟨n; If0(t2,t3),S; H⟩ → ⟨t2; S; H⟩ when n = 0, ⟨t3; S; H⟩
        // otherwise.
        const auto *Lit = dyn_cast<LitTerm>(Cur);
        if (!Lit)
          return Stuck("if0 scrutinee is not an integer literal");
        ++S.Branches;
        Cur = Lit->value() == 0 ? F.Body : F.Body2;
        continue;
      }
      case Frame::FrameKind::Switch: {
        // SWITCHk: ⟨w; Switch(alts,def),S; H⟩ → the matching
        // alternative's body with the constructor's fields bound, or the
        // default. Dispatches on CON tags (I#[n] counts as tag 0 of the
        // built-in Int), Int# literals, and Double# literals.
        const SwitchTerm *Sw = F.Sw;
        const MAlt *Hit = nullptr;
        if (const auto *Con = dyn_cast<ConTerm>(Cur)) {
          for (const MAlt &A : Sw->alts())
            if (A.Pat == MAlt::PatKind::Con && A.Tag == Con->tag()) {
              Hit = &A;
              break;
            }
          if (Hit) {
            if (Hit->Binders.size() != Con->args().size())
              return Stuck("switch alternative arity mismatch");
            ++S.Branches;
            const Term *Body = Hit->Body;
            for (size_t I = 0; I != Hit->Binders.size(); ++I) {
              const MAtom &A = Con->args()[I];
              MVar B = Hit->Binders[I];
              if (!A.IsLit) {
                if (A.Var.Sort != B.Sort)
                  return Stuck("switch binder register-class mismatch");
                Body = substVar(Ctx, Body, B, A.Var);
              } else if (A.IsDbl) {
                if (!B.isDbl())
                  return Stuck("switch binder register-class mismatch");
                Body = substDbl(Ctx, Body, B, A.DblLit);
              } else {
                if (!B.isInt())
                  return Stuck("switch binder register-class mismatch");
                Body = substLit(Ctx, Body, B, A.Lit);
              }
            }
            Cur = Body;
            continue;
          }
        } else if (const auto *Box = dyn_cast<ConLitTerm>(Cur)) {
          // I#[n]: tag 0 of Int, one strict Int# field.
          for (const MAlt &A : Sw->alts())
            if (A.Pat == MAlt::PatKind::Con && A.Tag == 0) {
              Hit = &A;
              break;
            }
          if (Hit) {
            if (Hit->Binders.size() != 1 || !Hit->Binders[0].isInt())
              return Stuck("switch alternative arity mismatch");
            ++S.Branches;
            Cur = substLit(Ctx, Hit->Body, Hit->Binders[0], Box->value());
            continue;
          }
        } else if (const auto *Lit = dyn_cast<LitTerm>(Cur)) {
          for (const MAlt &A : Sw->alts())
            if (A.Pat == MAlt::PatKind::Int && A.IntVal == Lit->value()) {
              Hit = &A;
              break;
            }
          if (Hit) {
            ++S.Branches;
            Cur = Hit->Body;
            continue;
          }
        } else if (const auto *DLit = dyn_cast<DLitTerm>(Cur)) {
          for (const MAlt &A : Sw->alts())
            if (A.Pat == MAlt::PatKind::Dbl && A.DblVal == DLit->value()) {
              Hit = &A;
              break;
            }
          if (Hit) {
            ++S.Branches;
            Cur = Hit->Body;
            continue;
          }
        } else if (!Sw->alts().empty()) {
          return Stuck("switch scrutinee value matches no pattern sort");
        }
        if (Sw->defaultBody()) {
          ++S.Branches;
          Cur = Sw->defaultBody();
          continue;
        }
        return Stuck("no matching switch alternative");
      }
      }
      return Stuck("unknown frame");
    }

    // Upper group of Figure 6: dispatch on the expression.
    switch (Cur->kind()) {
    case Term::TermKind::AppVar: {
      const auto *A = cast<AppVarTerm>(Cur);
      // PAPP: push the (pointer) argument; lazy — it is not evaluated.
      if (!A->arg().isPtr())
        return Stuck("application to an unresolved unboxed variable");
      Stack.push_back(
          {Frame::FrameKind::AppPtr, A->arg(), 0, 0, nullptr, nullptr});
      Cur = A->fn();
      continue;
    }
    case Term::TermKind::AppLit: {
      // IAPP: push the literal argument (already a value).
      const auto *A = cast<AppLitTerm>(Cur);
      Stack.push_back(
          {Frame::FrameKind::AppLit, MVar(), A->lit(), 0, nullptr, nullptr});
      Cur = A->fn();
      continue;
    }
    case Term::TermKind::AppDbl: {
      // DAPP: push the double-literal argument (already a value).
      const auto *A = cast<AppDblTerm>(Cur);
      Stack.push_back(
          {Frame::FrameKind::AppDbl, MVar(), 0, A->lit(), nullptr, nullptr});
      Cur = A->fn();
      continue;
    }
    case Term::TermKind::Var: {
      const auto *V = cast<VarTerm>(Cur);
      if (!V->var().isPtr())
        return Stuck("unresolved unboxed variable " + V->var().str());
      auto It = H.find(V->var().Name);
      if (It == H.end())
        return Stuck("dangling heap pointer " + V->var().str());
      if (isValue(It->second)) {
        // VAL: simple lookup.
        ++S.VarLookups;
        Cur = It->second;
        continue;
      }
      // EVAL: black-hole the thunk and evaluate it; FCE writes back.
      ++S.ThunkEvals;
      Cur = It->second;
      H.erase(It);
      Stack.push_back(
          {Frame::FrameKind::Force, V->var(), 0, 0, nullptr, nullptr});
      continue;
    }
    case Term::TermKind::Let: {
      // LET: allocate a thunk. The binder is freshened into a new heap
      // address so that re-entrant code allocates distinct cells.
      const auto *L = cast<LetTerm>(Cur);
      ++S.Allocations;
      if (L->rhs()->kind() == Term::TermKind::Con)
        ++S.ConAllocs;
      MVar Addr = Ctx.freshPtr();
      H.emplace(Addr.Name, L->rhs());
      Cur = substVar(Ctx, L->body(), L->binder(), Addr);
      continue;
    }
    case Term::TermKind::LetBang: {
      // SLET: evaluate the right-hand side now.
      const auto *L = cast<LetBangTerm>(Cur);
      ++S.StrictLets;
      Stack.push_back(
          {Frame::FrameKind::Let, L->binder(), 0, 0, L->body(), nullptr});
      Cur = L->rhs();
      continue;
    }
    case Term::TermKind::LetRec: {
      // RECLET: allocate the knot. The binder is freshened into a new
      // heap address which is substituted into *both* the stored thunk
      // and the body, so the thunk can reach itself.
      const auto *L = cast<LetRecTerm>(Cur);
      ++S.Allocations;
      ++S.Knots;
      if (L->rhs()->kind() == Term::TermKind::Con)
        ++S.ConAllocs;
      MVar Addr = Ctx.freshPtr();
      H.emplace(Addr.Name, substVar(Ctx, L->rhs(), L->binder(), Addr));
      Cur = substVar(Ctx, L->body(), L->binder(), Addr);
      continue;
    }
    case Term::TermKind::Case: {
      // CASE.
      const auto *C = cast<CaseTerm>(Cur);
      ++S.Cases;
      Stack.push_back(
          {Frame::FrameKind::Case, C->binder(), 0, 0, C->body(), nullptr});
      Cur = C->scrut();
      continue;
    }
    case Term::TermKind::If0: {
      // IF0: evaluate the integer scrutinee, then branch.
      const auto *I = cast<If0Term>(Cur);
      Stack.push_back({Frame::FrameKind::If0, MVar(), 0, 0,
                       I->thenBranch(), I->elseBranch()});
      Cur = I->scrut();
      continue;
    }
    case Term::TermKind::Switch: {
      // SWITCH: evaluate the scrutinee, then dispatch (SWITCHk).
      const auto *Sw = cast<SwitchTerm>(Cur);
      ++S.Switches;
      Stack.push_back(
          {Frame::FrameKind::Switch, MVar(), 0, 0, nullptr, nullptr, Sw});
      Cur = Sw->scrut();
      continue;
    }
    case Term::TermKind::Prim: {
      // PRIM: ⟨a1 ⊕# a2; S; H⟩ → ⟨w; S; H⟩ — both operands must have
      // been resolved to literals by ILET/IPOP (or DLET/DPOP)
      // substitution.
      const auto *P = cast<PrimTerm>(Cur);
      if (!P->lhs().IsLit || !P->rhs().IsLit)
        return Stuck("unresolved unboxed variable in primop");
      ++S.Prims;
      if (mPrimTakesDouble(P->op())) {
        if (!P->lhs().IsDbl || !P->rhs().IsDbl)
          return Stuck("integer atom in a double primop");
        if (mPrimReturnsDouble(P->op()))
          Cur = Ctx.dlit(
              evalMPrimDD(P->op(), P->lhs().DblLit, P->rhs().DblLit));
        else
          Cur = Ctx.lit(
              evalMPrimDI(P->op(), P->lhs().DblLit, P->rhs().DblLit));
        continue;
      }
      if (P->lhs().IsDbl || P->rhs().IsDbl)
        return Stuck("double atom in an integer primop");
      if (P->op() == MPrim::Quot || P->op() == MPrim::Rem) {
        if (P->rhs().Lit == 0)
          return Stuck("divide by zero");
        // INT64_MIN / -1 overflows (and traps on x86); reject it like a
        // zero divisor instead of crashing the process.
        if (P->lhs().Lit == std::numeric_limits<int64_t>::min() &&
            P->rhs().Lit == -1)
          return Stuck("integer overflow in division");
      }
      Cur = Ctx.lit(evalMPrim(P->op(), P->lhs().Lit, P->rhs().Lit));
      continue;
    }
    case Term::TermKind::Error:
      // ERR: abort the machine, surfacing the error's message.
      R.Status = MachineOutcome::Bottom;
      if (Symbol Msg = cast<ErrorTerm>(Cur)->message(); Msg.valid())
        R.ErrorMessage = std::string(Msg.str());
      R.FinalHeap = std::move(H);
      RecordPeak();
      return R;
    case Term::TermKind::ConVar:
      return Stuck("I#[y] with unresolved variable " +
                   cast<ConVarTerm>(Cur)->var().str());
    case Term::TermKind::Con:
      // A non-value CON still has an unresolved unboxed field atom.
      return Stuck("CON with an unresolved unboxed field atom");
    case Term::TermKind::Lam:
    case Term::TermKind::ConLit:
    case Term::TermKind::Lit:
    case Term::TermKind::DLit:
      assert(false && "values handled above");
      return Stuck("internal: value fell through");
    }
  }

  R.Status = MachineOutcome::OutOfFuel;
  R.Value = Cur;
  R.FinalHeap = std::move(H);
  RecordPeak();
  return R;
}
