//===- Syntax.cpp - The M language of Section 6.2 -------------------------===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "mcalc/Syntax.h"

#include <sstream>

using namespace levity;
using namespace levity::mcalc;

namespace {

enum Prec { PrecTop = 0, PrecApp = 1, PrecAtom = 2 };

void printTerm(std::ostringstream &OS, const Term *T, int Prec) {
  switch (T->kind()) {
  case Term::TermKind::Var:
    OS << cast<VarTerm>(T)->var().str();
    return;
  case Term::TermKind::Lit:
    OS << cast<LitTerm>(T)->value();
    return;
  case Term::TermKind::DLit:
    OS << cast<DLitTerm>(T)->value() << "##";
    return;
  case Term::TermKind::Error:
    OS << "error";
    return;
  case Term::TermKind::ConVar:
    OS << "I#[" << cast<ConVarTerm>(T)->var().str() << "]";
    return;
  case Term::TermKind::ConLit:
    OS << "I#[" << cast<ConLitTerm>(T)->value() << "]";
    return;
  case Term::TermKind::AppVar: {
    const auto *A = cast<AppVarTerm>(T);
    if (Prec > PrecApp)
      OS << "(";
    printTerm(OS, A->fn(), PrecApp);
    OS << " " << A->arg().str();
    if (Prec > PrecApp)
      OS << ")";
    return;
  }
  case Term::TermKind::AppLit: {
    const auto *A = cast<AppLitTerm>(T);
    if (Prec > PrecApp)
      OS << "(";
    printTerm(OS, A->fn(), PrecApp);
    OS << " " << A->lit();
    if (Prec > PrecApp)
      OS << ")";
    return;
  }
  case Term::TermKind::AppDbl: {
    const auto *A = cast<AppDblTerm>(T);
    if (Prec > PrecApp)
      OS << "(";
    printTerm(OS, A->fn(), PrecApp);
    OS << " " << A->lit() << "##";
    if (Prec > PrecApp)
      OS << ")";
    return;
  }
  case Term::TermKind::Lam: {
    const auto *L = cast<LamTerm>(T);
    if (Prec > PrecTop)
      OS << "(";
    OS << "\\" << L->param().str() << ". ";
    printTerm(OS, L->body(), PrecTop);
    if (Prec > PrecTop)
      OS << ")";
    return;
  }
  case Term::TermKind::Let: {
    const auto *L = cast<LetTerm>(T);
    if (Prec > PrecTop)
      OS << "(";
    OS << "let " << L->binder().str() << " = ";
    printTerm(OS, L->rhs(), PrecApp);
    OS << " in ";
    printTerm(OS, L->body(), PrecTop);
    if (Prec > PrecTop)
      OS << ")";
    return;
  }
  case Term::TermKind::LetBang: {
    const auto *L = cast<LetBangTerm>(T);
    if (Prec > PrecTop)
      OS << "(";
    OS << "let! " << L->binder().str() << " = ";
    printTerm(OS, L->rhs(), PrecApp);
    OS << " in ";
    printTerm(OS, L->body(), PrecTop);
    if (Prec > PrecTop)
      OS << ")";
    return;
  }
  case Term::TermKind::LetRec: {
    const auto *L = cast<LetRecTerm>(T);
    if (Prec > PrecTop)
      OS << "(";
    OS << "letrec " << L->binder().str() << " = ";
    printTerm(OS, L->rhs(), PrecApp);
    OS << " in ";
    printTerm(OS, L->body(), PrecTop);
    if (Prec > PrecTop)
      OS << ")";
    return;
  }
  case Term::TermKind::Case: {
    const auto *C = cast<CaseTerm>(T);
    if (Prec > PrecTop)
      OS << "(";
    OS << "case ";
    printTerm(OS, C->scrut(), PrecTop);
    OS << " of I#[" << C->binder().str() << "] -> ";
    printTerm(OS, C->body(), PrecTop);
    if (Prec > PrecTop)
      OS << ")";
    return;
  }
  case Term::TermKind::If0: {
    const auto *I = cast<If0Term>(T);
    if (Prec > PrecTop)
      OS << "(";
    OS << "if0 ";
    printTerm(OS, I->scrut(), PrecApp);
    OS << " then ";
    printTerm(OS, I->thenBranch(), PrecTop);
    OS << " else ";
    printTerm(OS, I->elseBranch(), PrecTop);
    if (Prec > PrecTop)
      OS << ")";
    return;
  }
  case Term::TermKind::Prim: {
    const auto *P = cast<PrimTerm>(T);
    if (Prec > PrecTop)
      OS << "(";
    OS << P->lhs().str() << " " << mPrimName(P->op()) << " "
       << P->rhs().str();
    if (Prec > PrecTop)
      OS << ")";
    return;
  }
  case Term::TermKind::Con: {
    const auto *C = cast<ConTerm>(T);
    OS << "CON " << C->tag() << " [";
    bool First = true;
    for (const MAtom &A : C->args()) {
      if (!First)
        OS << ", ";
      First = false;
      OS << A.str();
    }
    OS << "]";
    return;
  }
  case Term::TermKind::Switch: {
    const auto *S = cast<SwitchTerm>(T);
    if (Prec > PrecTop)
      OS << "(";
    OS << "switch ";
    printTerm(OS, S->scrut(), PrecApp);
    OS << " of { ";
    bool First = true;
    for (const MAlt &A : S->alts()) {
      if (!First)
        OS << " ; ";
      First = false;
      switch (A.Pat) {
      case MAlt::PatKind::Con: {
        OS << "CON " << A.Tag;
        OS << " [";
        bool FirstB = true;
        for (MVar B : A.Binders) {
          if (!FirstB)
            OS << ", ";
          FirstB = false;
          OS << B.str();
        }
        OS << "]";
        break;
      }
      case MAlt::PatKind::Int:
        OS << A.IntVal;
        break;
      case MAlt::PatKind::Dbl:
        OS << A.DblVal << "##";
        break;
      }
      OS << " -> ";
      printTerm(OS, A.Body, PrecTop);
    }
    if (S->defaultBody()) {
      if (!First)
        OS << " ; ";
      OS << "_ -> ";
      printTerm(OS, S->defaultBody(), PrecTop);
    }
    OS << " }";
    if (Prec > PrecTop)
      OS << ")";
    return;
  }
  }
}

} // namespace

std::string Term::str() const {
  std::ostringstream OS;
  printTerm(OS, this, PrecTop);
  return OS.str();
}

std::string_view mcalc::mPrimName(MPrim Op) {
  switch (Op) {
  case MPrim::Add:
    return "+#";
  case MPrim::Sub:
    return "-#";
  case MPrim::Mul:
    return "*#";
  case MPrim::Quot:
    return "quot#";
  case MPrim::Rem:
    return "rem#";
  case MPrim::Lt:
    return "<#";
  case MPrim::Le:
    return "<=#";
  case MPrim::Gt:
    return ">#";
  case MPrim::Ge:
    return ">=#";
  case MPrim::Eq:
    return "==#";
  case MPrim::Ne:
    return "/=#";
  case MPrim::DAdd:
    return "+##";
  case MPrim::DSub:
    return "-##";
  case MPrim::DMul:
    return "*##";
  case MPrim::DDiv:
    return "/##";
  case MPrim::DLt:
    return "<##";
  case MPrim::DLe:
    return "<=##";
  case MPrim::DGt:
    return ">##";
  case MPrim::DGe:
    return ">=##";
  case MPrim::DEq:
    return "==##";
  case MPrim::DNe:
    return "/=##";
  }
  assert(false && "unknown primop");
  return "?#";
}

bool mcalc::mPrimTakesDouble(MPrim Op) {
  switch (Op) {
  case MPrim::DAdd:
  case MPrim::DSub:
  case MPrim::DMul:
  case MPrim::DDiv:
  case MPrim::DLt:
  case MPrim::DLe:
  case MPrim::DGt:
  case MPrim::DGe:
  case MPrim::DEq:
  case MPrim::DNe:
    return true;
  default:
    return false;
  }
}

bool mcalc::mPrimReturnsDouble(MPrim Op) {
  switch (Op) {
  case MPrim::DAdd:
  case MPrim::DSub:
  case MPrim::DMul:
  case MPrim::DDiv:
    return true;
  default:
    return false;
  }
}

int64_t mcalc::evalMPrim(MPrim Op, int64_t Lhs, int64_t Rhs) {
  switch (Op) {
  case MPrim::Add:
    return Lhs + Rhs;
  case MPrim::Sub:
    return Lhs - Rhs;
  case MPrim::Mul:
    return Lhs * Rhs;
  case MPrim::Quot:
    // The machine's PRIM rule goes Stuck on a zero divisor before
    // evaluating; a zero here is a caller bug.
    assert(Rhs != 0 && "quot# by zero must be rejected by the caller");
    return Lhs / Rhs;
  case MPrim::Rem:
    assert(Rhs != 0 && "rem# by zero must be rejected by the caller");
    return Lhs % Rhs;
  case MPrim::Lt:
    return Lhs < Rhs ? 1 : 0;
  case MPrim::Le:
    return Lhs <= Rhs ? 1 : 0;
  case MPrim::Gt:
    return Lhs > Rhs ? 1 : 0;
  case MPrim::Ge:
    return Lhs >= Rhs ? 1 : 0;
  case MPrim::Eq:
    return Lhs == Rhs ? 1 : 0;
  case MPrim::Ne:
    return Lhs != Rhs ? 1 : 0;
  default:
    break;
  }
  assert(false && "not an integer primop");
  return 0;
}

double mcalc::evalMPrimDD(MPrim Op, double Lhs, double Rhs) {
  switch (Op) {
  case MPrim::DAdd:
    return Lhs + Rhs;
  case MPrim::DSub:
    return Lhs - Rhs;
  case MPrim::DMul:
    return Lhs * Rhs;
  case MPrim::DDiv:
    return Lhs / Rhs;
  default:
    break;
  }
  assert(false && "not a double-result primop");
  return 0;
}

int64_t mcalc::evalMPrimDI(MPrim Op, double Lhs, double Rhs) {
  switch (Op) {
  case MPrim::DLt:
    return Lhs < Rhs ? 1 : 0;
  case MPrim::DLe:
    return Lhs <= Rhs ? 1 : 0;
  case MPrim::DGt:
    return Lhs > Rhs ? 1 : 0;
  case MPrim::DGe:
    return Lhs >= Rhs ? 1 : 0;
  case MPrim::DEq:
    return Lhs == Rhs ? 1 : 0;
  case MPrim::DNe:
    return Lhs != Rhs ? 1 : 0;
  default:
    break;
  }
  assert(false && "not a double comparison");
  return 0;
}

bool mcalc::isValue(const Term *T) {
  switch (T->kind()) {
  case Term::TermKind::Lam:
  case Term::TermKind::ConLit:
  case Term::TermKind::Lit:
  case Term::TermKind::DLit:
    return true;
  case Term::TermKind::Con:
    // A constructor is a value once every unboxed field atom has been
    // resolved to a literal; pointer atoms are heap addresses (LET
    // substitution installs them, like lazy application arguments).
    for (const MAtom &A : cast<ConTerm>(T)->args())
      if (!A.IsLit && !A.Var.isPtr())
        return false;
    return true;
  default:
    return false;
  }
}

const Term *mcalc::substVar(MContext &Ctx, const Term *T, MVar Var,
                            MVar Replacement) {
  assert(Var.Sort == Replacement.Sort && "substitution changes widths");
  switch (T->kind()) {
  case Term::TermKind::Var:
    return cast<VarTerm>(T)->var() == Var ? Ctx.var(Replacement) : T;
  case Term::TermKind::Lit:
  case Term::TermKind::DLit:
  case Term::TermKind::ConLit:
  case Term::TermKind::Error:
    return T;
  case Term::TermKind::ConVar: {
    const auto *C = cast<ConVarTerm>(T);
    return C->var() == Var ? Ctx.conVar(Replacement) : T;
  }
  case Term::TermKind::AppVar: {
    const auto *A = cast<AppVarTerm>(T);
    const Term *Fn = substVar(Ctx, A->fn(), Var, Replacement);
    MVar Arg = A->arg() == Var ? Replacement : A->arg();
    if (Fn == A->fn() && Arg == A->arg())
      return T;
    return Ctx.appVar(Fn, Arg);
  }
  case Term::TermKind::AppLit: {
    const auto *A = cast<AppLitTerm>(T);
    const Term *Fn = substVar(Ctx, A->fn(), Var, Replacement);
    if (Fn == A->fn())
      return T;
    return Ctx.appLit(Fn, A->lit());
  }
  case Term::TermKind::AppDbl: {
    const auto *A = cast<AppDblTerm>(T);
    const Term *Fn = substVar(Ctx, A->fn(), Var, Replacement);
    if (Fn == A->fn())
      return T;
    return Ctx.appDbl(Fn, A->lit());
  }
  case Term::TermKind::Lam: {
    const auto *L = cast<LamTerm>(T);
    if (L->param() == Var)
      return T; // shadowed
    if (L->param() == Replacement) {
      // Freshen to avoid capturing the replacement variable.
      MVar Fresh = Ctx.freshLike(L->param());
      const Term *Renamed = substVar(Ctx, L->body(), L->param(), Fresh);
      return Ctx.lam(Fresh, substVar(Ctx, Renamed, Var, Replacement));
    }
    const Term *Body = substVar(Ctx, L->body(), Var, Replacement);
    if (Body == L->body())
      return T;
    return Ctx.lam(L->param(), Body);
  }
  case Term::TermKind::Let:
  case Term::TermKind::LetBang: {
    bool Strict = T->kind() == Term::TermKind::LetBang;
    MVar Binder = Strict ? cast<LetBangTerm>(T)->binder()
                         : cast<LetTerm>(T)->binder();
    const Term *Rhs =
        Strict ? cast<LetBangTerm>(T)->rhs() : cast<LetTerm>(T)->rhs();
    const Term *Body =
        Strict ? cast<LetBangTerm>(T)->body() : cast<LetTerm>(T)->body();
    const Term *NewRhs = substVar(Ctx, Rhs, Var, Replacement);
    if (Binder == Var) {
      if (NewRhs == Rhs)
        return T;
      return Strict ? Ctx.letBang(Binder, NewRhs, Body)
                    : Ctx.let(Binder, NewRhs, Body);
    }
    if (Binder == Replacement) {
      MVar Fresh = Ctx.freshLike(Binder);
      const Term *Renamed = substVar(Ctx, Body, Binder, Fresh);
      const Term *NewBody = substVar(Ctx, Renamed, Var, Replacement);
      return Strict ? Ctx.letBang(Fresh, NewRhs, NewBody)
                    : Ctx.let(Fresh, NewRhs, NewBody);
    }
    const Term *NewBody = substVar(Ctx, Body, Var, Replacement);
    if (NewRhs == Rhs && NewBody == Body)
      return T;
    return Strict ? Ctx.letBang(Binder, NewRhs, NewBody)
                  : Ctx.let(Binder, NewRhs, NewBody);
  }
  case Term::TermKind::LetRec: {
    // The binder scopes over *both* the right-hand side and the body.
    const auto *L = cast<LetRecTerm>(T);
    if (L->binder() == Var)
      return T; // fully shadowed
    if (L->binder() == Replacement) {
      MVar Fresh = Ctx.freshLike(L->binder());
      const Term *RenRhs = substVar(Ctx, L->rhs(), L->binder(), Fresh);
      const Term *RenBody = substVar(Ctx, L->body(), L->binder(), Fresh);
      return Ctx.letRec(Fresh, substVar(Ctx, RenRhs, Var, Replacement),
                        substVar(Ctx, RenBody, Var, Replacement));
    }
    const Term *NewRhs = substVar(Ctx, L->rhs(), Var, Replacement);
    const Term *NewBody = substVar(Ctx, L->body(), Var, Replacement);
    if (NewRhs == L->rhs() && NewBody == L->body())
      return T;
    return Ctx.letRec(L->binder(), NewRhs, NewBody);
  }
  case Term::TermKind::If0: {
    const auto *I = cast<If0Term>(T);
    const Term *Scrut = substVar(Ctx, I->scrut(), Var, Replacement);
    const Term *Then = substVar(Ctx, I->thenBranch(), Var, Replacement);
    const Term *Else = substVar(Ctx, I->elseBranch(), Var, Replacement);
    if (Scrut == I->scrut() && Then == I->thenBranch() &&
        Else == I->elseBranch())
      return T;
    return Ctx.if0(Scrut, Then, Else);
  }
  case Term::TermKind::Prim: {
    // Primop atoms are unboxed variables; term-variable substitution
    // moves variables of the same sort.
    const auto *P = cast<PrimTerm>(T);
    MAtom Lhs = P->lhs(), Rhs = P->rhs();
    bool Changed = false;
    if (!Lhs.IsLit && Lhs.Var == Var) {
      Lhs = MAtom::var(Replacement);
      Changed = true;
    }
    if (!Rhs.IsLit && Rhs.Var == Var) {
      Rhs = MAtom::var(Replacement);
      Changed = true;
    }
    return Changed ? Ctx.prim(P->op(), Lhs, Rhs) : T;
  }
  case Term::TermKind::Case: {
    const auto *C = cast<CaseTerm>(T);
    const Term *Scrut = substVar(Ctx, C->scrut(), Var, Replacement);
    if (C->binder() == Var) {
      if (Scrut == C->scrut())
        return T;
      return Ctx.caseOf(Scrut, C->binder(), C->body());
    }
    if (C->binder() == Replacement) {
      MVar Fresh = Ctx.freshLike(C->binder());
      const Term *Renamed = substVar(Ctx, C->body(), C->binder(), Fresh);
      return Ctx.caseOf(Scrut, Fresh,
                        substVar(Ctx, Renamed, Var, Replacement));
    }
    const Term *Body = substVar(Ctx, C->body(), Var, Replacement);
    if (Scrut == C->scrut() && Body == C->body())
      return T;
    return Ctx.caseOf(Scrut, C->binder(), Body);
  }
  case Term::TermKind::Con: {
    const auto *C = cast<ConTerm>(T);
    std::vector<MAtom> Args(C->args().begin(), C->args().end());
    bool Changed = false;
    for (MAtom &A : Args) {
      if (!A.IsLit && A.Var == Var) {
        A = MAtom::anyVar(Replacement);
        Changed = true;
      }
    }
    return Changed ? Ctx.con(C->tag(), Args) : T;
  }
  case Term::TermKind::Switch: {
    const auto *S = cast<SwitchTerm>(T);
    const Term *Scrut = substVar(Ctx, S->scrut(), Var, Replacement);
    bool Changed = Scrut != S->scrut();
    std::vector<MAlt> Alts(S->alts().begin(), S->alts().end());
    // Keeps renamed binder arrays alive until switchOf copies them into
    // the arena.
    std::vector<std::vector<MVar>> Renames;
    for (MAlt &A : Alts) {
      bool Shadowed = false;
      for (MVar B : A.Binders)
        Shadowed |= B == Var;
      if (Shadowed)
        continue;
      // Freshen any binder equal to the replacement to avoid capture.
      std::vector<MVar> Binders(A.Binders.begin(), A.Binders.end());
      const Term *Body = A.Body;
      bool Renamed = false;
      for (MVar &B : Binders) {
        if (!(B == Replacement))
          continue;
        MVar Fresh = Ctx.freshLike(B);
        Body = substVar(Ctx, Body, B, Fresh);
        B = Fresh;
        Renamed = true;
      }
      const Term *NewBody = substVar(Ctx, Body, Var, Replacement);
      if (!Renamed && NewBody == A.Body)
        continue;
      if (Renamed) {
        Renames.push_back(std::move(Binders));
        A.Binders = std::span<const MVar>(Renames.back().data(),
                                          Renames.back().size());
      }
      A.Body = NewBody;
      Changed = true;
    }
    const Term *Def = S->defaultBody();
    if (Def) {
      const Term *NewDef = substVar(Ctx, Def, Var, Replacement);
      Changed |= NewDef != Def;
      Def = NewDef;
    }
    if (!Changed)
      return T;
    return Ctx.switchOf(Scrut, Alts, Def);
  }
  }
  assert(false && "unknown term kind");
  return T;
}

const Term *mcalc::substLit(MContext &Ctx, const Term *T, MVar Var,
                            int64_t Lit) {
  assert(Var.isInt() && "only integer variables carry literals");
  switch (T->kind()) {
  case Term::TermKind::Var:
    return cast<VarTerm>(T)->var() == Var ? Ctx.lit(Lit) : T;
  case Term::TermKind::Lit:
  case Term::TermKind::DLit:
  case Term::TermKind::ConLit:
  case Term::TermKind::Error:
    return T;
  case Term::TermKind::ConVar: {
    const auto *C = cast<ConVarTerm>(T);
    return C->var() == Var ? Ctx.conLit(Lit) : T;
  }
  case Term::TermKind::AppVar: {
    const auto *A = cast<AppVarTerm>(T);
    const Term *Fn = substLit(Ctx, A->fn(), Var, Lit);
    if (A->arg() == Var)
      return Ctx.appLit(Fn, Lit); // t i becomes t n
    if (Fn == A->fn())
      return T;
    return Ctx.appVar(Fn, A->arg());
  }
  case Term::TermKind::AppLit: {
    const auto *A = cast<AppLitTerm>(T);
    const Term *Fn = substLit(Ctx, A->fn(), Var, Lit);
    if (Fn == A->fn())
      return T;
    return Ctx.appLit(Fn, A->lit());
  }
  case Term::TermKind::AppDbl: {
    const auto *A = cast<AppDblTerm>(T);
    const Term *Fn = substLit(Ctx, A->fn(), Var, Lit);
    if (Fn == A->fn())
      return T;
    return Ctx.appDbl(Fn, A->lit());
  }
  case Term::TermKind::Lam: {
    const auto *L = cast<LamTerm>(T);
    if (L->param() == Var)
      return T; // shadowed
    const Term *Body = substLit(Ctx, L->body(), Var, Lit);
    if (Body == L->body())
      return T;
    return Ctx.lam(L->param(), Body);
  }
  case Term::TermKind::Let:
  case Term::TermKind::LetBang: {
    bool Strict = T->kind() == Term::TermKind::LetBang;
    MVar Binder = Strict ? cast<LetBangTerm>(T)->binder()
                         : cast<LetTerm>(T)->binder();
    const Term *Rhs =
        Strict ? cast<LetBangTerm>(T)->rhs() : cast<LetTerm>(T)->rhs();
    const Term *Body =
        Strict ? cast<LetBangTerm>(T)->body() : cast<LetTerm>(T)->body();
    const Term *NewRhs = substLit(Ctx, Rhs, Var, Lit);
    const Term *NewBody =
        Binder == Var ? Body : substLit(Ctx, Body, Var, Lit);
    if (NewRhs == Rhs && NewBody == Body)
      return T;
    return Strict ? Ctx.letBang(Binder, NewRhs, NewBody)
                  : Ctx.let(Binder, NewRhs, NewBody);
  }
  case Term::TermKind::LetRec: {
    // A pointer binder never equals an integer variable; recurse freely.
    const auto *L = cast<LetRecTerm>(T);
    const Term *NewRhs = substLit(Ctx, L->rhs(), Var, Lit);
    const Term *NewBody = substLit(Ctx, L->body(), Var, Lit);
    if (NewRhs == L->rhs() && NewBody == L->body())
      return T;
    return Ctx.letRec(L->binder(), NewRhs, NewBody);
  }
  case Term::TermKind::If0: {
    const auto *I = cast<If0Term>(T);
    const Term *Scrut = substLit(Ctx, I->scrut(), Var, Lit);
    const Term *Then = substLit(Ctx, I->thenBranch(), Var, Lit);
    const Term *Else = substLit(Ctx, I->elseBranch(), Var, Lit);
    if (Scrut == I->scrut() && Then == I->thenBranch() &&
        Else == I->elseBranch())
      return T;
    return Ctx.if0(Scrut, Then, Else);
  }
  case Term::TermKind::Case: {
    const auto *C = cast<CaseTerm>(T);
    const Term *Scrut = substLit(Ctx, C->scrut(), Var, Lit);
    const Term *Body =
        C->binder() == Var ? C->body() : substLit(Ctx, C->body(), Var, Lit);
    if (Scrut == C->scrut() && Body == C->body())
      return T;
    return Ctx.caseOf(Scrut, C->binder(), Body);
  }
  case Term::TermKind::Prim: {
    // i ⊕# j becomes n ⊕# j (ILET/IPOP write integer registers).
    const auto *P = cast<PrimTerm>(T);
    MAtom Lhs = P->lhs(), Rhs = P->rhs();
    bool Changed = false;
    if (!Lhs.IsLit && Lhs.Var == Var) {
      Lhs = MAtom::lit(Lit);
      Changed = true;
    }
    if (!Rhs.IsLit && Rhs.Var == Var) {
      Rhs = MAtom::lit(Lit);
      Changed = true;
    }
    return Changed ? Ctx.prim(P->op(), Lhs, Rhs) : T;
  }
  case Term::TermKind::Con: {
    // CON k [.. i ..] becomes CON k [.. n ..].
    const auto *C = cast<ConTerm>(T);
    std::vector<MAtom> Args(C->args().begin(), C->args().end());
    bool Changed = false;
    for (MAtom &A : Args) {
      if (!A.IsLit && A.Var == Var) {
        A = MAtom::lit(Lit);
        Changed = true;
      }
    }
    return Changed ? Ctx.con(C->tag(), Args) : T;
  }
  case Term::TermKind::Switch: {
    const auto *S = cast<SwitchTerm>(T);
    const Term *Scrut = substLit(Ctx, S->scrut(), Var, Lit);
    bool Changed = Scrut != S->scrut();
    std::vector<MAlt> Alts(S->alts().begin(), S->alts().end());
    for (MAlt &A : Alts) {
      bool Shadowed = false;
      for (MVar B : A.Binders)
        Shadowed |= B == Var;
      if (Shadowed)
        continue;
      const Term *NewBody = substLit(Ctx, A.Body, Var, Lit);
      Changed |= NewBody != A.Body;
      A.Body = NewBody;
    }
    const Term *Def = S->defaultBody();
    if (Def) {
      const Term *NewDef = substLit(Ctx, Def, Var, Lit);
      Changed |= NewDef != Def;
      Def = NewDef;
    }
    if (!Changed)
      return T;
    return Ctx.switchOf(Scrut, Alts, Def);
  }
  }
  assert(false && "unknown term kind");
  return T;
}

const Term *mcalc::substDbl(MContext &Ctx, const Term *T, MVar Var,
                            double Lit) {
  assert(Var.isDbl() && "only double variables carry double literals");
  switch (T->kind()) {
  case Term::TermKind::Var:
    return cast<VarTerm>(T)->var() == Var ? Ctx.dlit(Lit) : T;
  case Term::TermKind::Lit:
  case Term::TermKind::DLit:
  case Term::TermKind::ConLit:
  case Term::TermKind::ConVar: // I# payloads are Int#; no double inside.
  case Term::TermKind::Error:
    return T;
  case Term::TermKind::AppVar: {
    const auto *A = cast<AppVarTerm>(T);
    const Term *Fn = substDbl(Ctx, A->fn(), Var, Lit);
    if (A->arg() == Var)
      return Ctx.appDbl(Fn, Lit); // t f becomes t d
    if (Fn == A->fn())
      return T;
    return Ctx.appVar(Fn, A->arg());
  }
  case Term::TermKind::AppLit: {
    const auto *A = cast<AppLitTerm>(T);
    const Term *Fn = substDbl(Ctx, A->fn(), Var, Lit);
    if (Fn == A->fn())
      return T;
    return Ctx.appLit(Fn, A->lit());
  }
  case Term::TermKind::AppDbl: {
    const auto *A = cast<AppDblTerm>(T);
    const Term *Fn = substDbl(Ctx, A->fn(), Var, Lit);
    if (Fn == A->fn())
      return T;
    return Ctx.appDbl(Fn, A->lit());
  }
  case Term::TermKind::Lam: {
    const auto *L = cast<LamTerm>(T);
    if (L->param() == Var)
      return T; // shadowed
    const Term *Body = substDbl(Ctx, L->body(), Var, Lit);
    if (Body == L->body())
      return T;
    return Ctx.lam(L->param(), Body);
  }
  case Term::TermKind::Let:
  case Term::TermKind::LetBang: {
    bool Strict = T->kind() == Term::TermKind::LetBang;
    MVar Binder = Strict ? cast<LetBangTerm>(T)->binder()
                         : cast<LetTerm>(T)->binder();
    const Term *Rhs =
        Strict ? cast<LetBangTerm>(T)->rhs() : cast<LetTerm>(T)->rhs();
    const Term *Body =
        Strict ? cast<LetBangTerm>(T)->body() : cast<LetTerm>(T)->body();
    const Term *NewRhs = substDbl(Ctx, Rhs, Var, Lit);
    const Term *NewBody =
        Binder == Var ? Body : substDbl(Ctx, Body, Var, Lit);
    if (NewRhs == Rhs && NewBody == Body)
      return T;
    return Strict ? Ctx.letBang(Binder, NewRhs, NewBody)
                  : Ctx.let(Binder, NewRhs, NewBody);
  }
  case Term::TermKind::LetRec: {
    const auto *L = cast<LetRecTerm>(T);
    const Term *NewRhs = substDbl(Ctx, L->rhs(), Var, Lit);
    const Term *NewBody = substDbl(Ctx, L->body(), Var, Lit);
    if (NewRhs == L->rhs() && NewBody == L->body())
      return T;
    return Ctx.letRec(L->binder(), NewRhs, NewBody);
  }
  case Term::TermKind::If0: {
    const auto *I = cast<If0Term>(T);
    const Term *Scrut = substDbl(Ctx, I->scrut(), Var, Lit);
    const Term *Then = substDbl(Ctx, I->thenBranch(), Var, Lit);
    const Term *Else = substDbl(Ctx, I->elseBranch(), Var, Lit);
    if (Scrut == I->scrut() && Then == I->thenBranch() &&
        Else == I->elseBranch())
      return T;
    return Ctx.if0(Scrut, Then, Else);
  }
  case Term::TermKind::Case: {
    const auto *C = cast<CaseTerm>(T);
    const Term *Scrut = substDbl(Ctx, C->scrut(), Var, Lit);
    const Term *Body =
        C->binder() == Var ? C->body() : substDbl(Ctx, C->body(), Var, Lit);
    if (Scrut == C->scrut() && Body == C->body())
      return T;
    return Ctx.caseOf(Scrut, C->binder(), Body);
  }
  case Term::TermKind::Prim: {
    // f ⊕## a becomes d ⊕## a (DLET/DPOP write double registers).
    const auto *P = cast<PrimTerm>(T);
    MAtom Lhs = P->lhs(), Rhs = P->rhs();
    bool Changed = false;
    if (!Lhs.IsLit && Lhs.Var == Var) {
      Lhs = MAtom::dlit(Lit);
      Changed = true;
    }
    if (!Rhs.IsLit && Rhs.Var == Var) {
      Rhs = MAtom::dlit(Lit);
      Changed = true;
    }
    return Changed ? Ctx.prim(P->op(), Lhs, Rhs) : T;
  }
  case Term::TermKind::Con: {
    // CON k [.. f ..] becomes CON k [.. d ..].
    const auto *C = cast<ConTerm>(T);
    std::vector<MAtom> Args(C->args().begin(), C->args().end());
    bool Changed = false;
    for (MAtom &A : Args) {
      if (!A.IsLit && A.Var == Var) {
        A = MAtom::dlit(Lit);
        Changed = true;
      }
    }
    return Changed ? Ctx.con(C->tag(), Args) : T;
  }
  case Term::TermKind::Switch: {
    const auto *S = cast<SwitchTerm>(T);
    const Term *Scrut = substDbl(Ctx, S->scrut(), Var, Lit);
    bool Changed = Scrut != S->scrut();
    std::vector<MAlt> Alts(S->alts().begin(), S->alts().end());
    for (MAlt &A : Alts) {
      bool Shadowed = false;
      for (MVar B : A.Binders)
        Shadowed |= B == Var;
      if (Shadowed)
        continue;
      const Term *NewBody = substDbl(Ctx, A.Body, Var, Lit);
      Changed |= NewBody != A.Body;
      A.Body = NewBody;
    }
    const Term *Def = S->defaultBody();
    if (Def) {
      const Term *NewDef = substDbl(Ctx, Def, Var, Lit);
      Changed |= NewDef != Def;
      Def = NewDef;
    }
    if (!Changed)
      return T;
    return Ctx.switchOf(Scrut, Alts, Def);
  }
  }
  assert(false && "unknown term kind");
  return T;
}
