//===- Syntax.h - The M language of Section 6.2 (Figure 5) ------*- C++ -*-===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Abstract syntax for M, the paper's A-normal-form target language
/// (Figure 5), plus the executable extensions mirroring L's:
///
/// \code
///   y ::= p | i | f                   pointer / integer / double variables
///   a ::= y | n | d                   atoms
///   t ::= t y | t n | t d | λy.t | y | let p = t1 in t2
///       | let! y = t1 in t2 | letrec p = t1 in t2
///       | case t1 of I#[y] → t2 | if0 t1 then t2 else t3 | error
///       | I#[y] | I#[n] | n | d | a1 ⊕# a2
///       | CON k [a1, …, an] | switch t of { alt; …; _ → t }
///   alt ::= CON k [y1, …, yn] → t | n → t | d → t
///   w ::= λy.t | I#[n] | n | d | CON k [a̅]   values
/// \endcode
///
/// `CON k [a̅]` is the n-ary tagged constructor node: field atoms are
/// heap pointers (for boxed fields) or unboxed literals once resolved
/// by ILET/IPOP/DLET/DPOP substitution. `switch` is the tag-dispatch
/// branch every source-level case compiles to (rules SWITCH/SWITCHk);
/// it also dispatches on Int#/Double# literal scrutinees, subsuming the
/// old lowering of literal cases to if0 chains. The one-field boxed Int
/// keeps its compact I#[y]/I#[n] forms.
///
/// M is representation-monomorphic: every variable is *exactly one* of a
/// pointer variable (register class P), an integer variable (register
/// class I), or a double variable (register class D) — the metavariable
/// sorts of the paper plus the second unboxed sort the driver's widened
/// fragment carries. Functions are called only on variables or literals
/// (ANF), so every data movement has a known width. `letrec` is the
/// heap-tied knot L's `fix` compiles to: the thunk's body sees its own
/// heap address.
///
//===----------------------------------------------------------------------===//

#ifndef LEVITY_MCALC_SYNTAX_H
#define LEVITY_MCALC_SYNTAX_H

#include "support/Arena.h"
#include "support/Symbol.h"

#include <atomic>
#include <cassert>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace levity {
namespace mcalc {

/// The sorts of M variables: each corresponds to a machine register
/// class, so substitution always moves data of known width (Section 6.2).
///
/// The numeric values are **stable on-disk tags**: they appear verbatim in
/// serialized `.levc` artifacts (driver/Serialize.h, docs/ARTIFACT_FORMAT.md).
/// Never renumber an existing sort; append new sorts at the end and bump
/// the artifact pipeline fingerprint.
enum class VarSort : uint8_t {
  Ptr = 0, ///< p — points to a heap object (thunk or value).
  Int = 1, ///< i — holds an unboxed machine integer.
  Dbl = 2  ///< f — holds an unboxed double in a float register.
};

/// Number of VarSort values; folded into the artifact fingerprint so a
/// new register class invalidates stale stores.
inline constexpr unsigned NumVarSorts = 3;

/// y — a sorted variable.
struct MVar {
  Symbol Name;
  VarSort Sort = VarSort::Ptr;

  bool isPtr() const { return Sort == VarSort::Ptr; }
  bool isInt() const { return Sort == VarSort::Int; }
  bool isDbl() const { return Sort == VarSort::Dbl; }

  friend bool operator==(const MVar &A, const MVar &B) {
    return A.Name == B.Name && A.Sort == B.Sort;
  }
  friend bool operator!=(const MVar &A, const MVar &B) { return !(A == B); }

  std::string str() const { return std::string(Name.str()); }
};

/// t — an M term.
class Term {
public:
  /// The numeric values are **stable on-disk tags**: each serialized M
  /// node in a `.levc` artifact starts with its TermKind byte
  /// (driver/Serialize.h, docs/ARTIFACT_FORMAT.md). Never renumber an
  /// existing kind; append new kinds at the end and bump the artifact
  /// pipeline fingerprint.
  enum class TermKind : uint8_t {
    AppVar = 0,  ///< t y
    AppLit = 1,  ///< t n
    AppDbl = 2,  ///< t d (a double literal argument)
    Lam = 3,     ///< λy.t
    Var = 4,     ///< y
    Let = 5,     ///< let p = t1 in t2   (lazy: allocates a thunk)
    LetBang = 6, ///< let! y = t1 in t2  (strict: evaluates t1 first)
    LetRec = 7,  ///< letrec p = t1 in t2 (knot: t1 sees its own address)
    Case = 8,    ///< case t1 of I#[y] → t2
    If0 = 9,     ///< if0 t1 then t2 else t3 (branch on an integer)
    Error = 10,  ///< error
    ConVar = 11, ///< I#[y]
    ConLit = 12, ///< I#[n]
    Lit = 13,    ///< n
    DLit = 14,   ///< d (an unboxed double literal)
    Prim = 15,   ///< a1 ⊕# a2 over unboxed atoms (variables or literals)
    Con = 16,    ///< CON k [a1, …, an] — n-ary tagged constructor
    Switch = 17  ///< switch t of { alt; …; _ → t } — tag dispatch
  };

  /// Number of TermKind values; folded into the artifact fingerprint so a
  /// new node kind invalidates stale stores.
  static constexpr unsigned NumTermKinds = 18;

  TermKind kind() const { return Kind; }

  std::string str() const;

protected:
  explicit Term(TermKind Kind) : Kind(Kind) {}

private:
  TermKind Kind;
};

class AppVarTerm : public Term {
public:
  AppVarTerm(const Term *Fn, MVar Arg)
      : Term(TermKind::AppVar), Fn(Fn), Arg(Arg) {}

  const Term *fn() const { return Fn; }
  MVar arg() const { return Arg; }

  static bool classof(const Term *T) { return T->kind() == TermKind::AppVar; }

private:
  const Term *Fn;
  MVar Arg;
};

class AppLitTerm : public Term {
public:
  AppLitTerm(const Term *Fn, int64_t Lit)
      : Term(TermKind::AppLit), Fn(Fn), Lit(Lit) {}

  const Term *fn() const { return Fn; }
  int64_t lit() const { return Lit; }

  static bool classof(const Term *T) { return T->kind() == TermKind::AppLit; }

private:
  const Term *Fn;
  int64_t Lit;
};

/// t d — application to a double literal (already a value, like t n).
class AppDblTerm : public Term {
public:
  AppDblTerm(const Term *Fn, double Lit)
      : Term(TermKind::AppDbl), Fn(Fn), Lit(Lit) {}

  const Term *fn() const { return Fn; }
  double lit() const { return Lit; }

  static bool classof(const Term *T) { return T->kind() == TermKind::AppDbl; }

private:
  const Term *Fn;
  double Lit;
};

class LamTerm : public Term {
public:
  LamTerm(MVar Param, const Term *Body)
      : Term(TermKind::Lam), Param(Param), Body(Body) {}

  MVar param() const { return Param; }
  const Term *body() const { return Body; }

  static bool classof(const Term *T) { return T->kind() == TermKind::Lam; }

private:
  MVar Param;
  const Term *Body;
};

class VarTerm : public Term {
public:
  explicit VarTerm(MVar V) : Term(TermKind::Var), V(V) {}

  MVar var() const { return V; }

  static bool classof(const Term *T) { return T->kind() == TermKind::Var; }

private:
  MVar V;
};

/// let p = t1 in t2 — lazy; the machine allocates a thunk for t1.
class LetTerm : public Term {
public:
  LetTerm(MVar Binder, const Term *Rhs, const Term *Body)
      : Term(TermKind::Let), Binder(Binder), Rhs(Rhs), Body(Body) {
    assert(Binder.isPtr() && "lazy let binds a pointer variable");
  }

  MVar binder() const { return Binder; }
  const Term *rhs() const { return Rhs; }
  const Term *body() const { return Body; }

  static bool classof(const Term *T) { return T->kind() == TermKind::Let; }

private:
  MVar Binder;
  const Term *Rhs;
  const Term *Body;
};

/// let! y = t1 in t2 — strict; the machine evaluates t1 before t2.
class LetBangTerm : public Term {
public:
  LetBangTerm(MVar Binder, const Term *Rhs, const Term *Body)
      : Term(TermKind::LetBang), Binder(Binder), Rhs(Rhs), Body(Body) {}

  MVar binder() const { return Binder; }
  const Term *rhs() const { return Rhs; }
  const Term *body() const { return Body; }

  static bool classof(const Term *T) {
    return T->kind() == TermKind::LetBang;
  }

private:
  MVar Binder;
  const Term *Rhs;
  const Term *Body;
};

/// letrec p = t1 in t2 — allocates a heap cell whose stored thunk may
/// reference its own address (the knot recursion compiles to).
class LetRecTerm : public Term {
public:
  LetRecTerm(MVar Binder, const Term *Rhs, const Term *Body)
      : Term(TermKind::LetRec), Binder(Binder), Rhs(Rhs), Body(Body) {
    assert(Binder.isPtr() && "letrec binds a pointer variable");
  }

  MVar binder() const { return Binder; }
  const Term *rhs() const { return Rhs; }
  const Term *body() const { return Body; }

  static bool classof(const Term *T) {
    return T->kind() == TermKind::LetRec;
  }

private:
  MVar Binder;
  const Term *Rhs;
  const Term *Body;
};

class CaseTerm : public Term {
public:
  CaseTerm(const Term *Scrut, MVar Binder, const Term *Body)
      : Term(TermKind::Case), Scrut(Scrut), Binder(Binder), Body(Body) {}

  const Term *scrut() const { return Scrut; }
  MVar binder() const { return Binder; }
  const Term *body() const { return Body; }

  static bool classof(const Term *T) { return T->kind() == TermKind::Case; }

private:
  const Term *Scrut;
  MVar Binder;
  const Term *Body;
};

/// if0 t1 then t2 else t3 — evaluates t1 to an integer literal and takes
/// the then-branch when it is 0, the else-branch otherwise.
class If0Term : public Term {
public:
  If0Term(const Term *Scrut, const Term *Then, const Term *Else)
      : Term(TermKind::If0), Scrut(Scrut), Then(Then), Else(Else) {}

  const Term *scrut() const { return Scrut; }
  const Term *thenBranch() const { return Then; }
  const Term *elseBranch() const { return Else; }

  static bool classof(const Term *T) { return T->kind() == TermKind::If0; }

private:
  const Term *Scrut;
  const Term *Then;
  const Term *Else;
};

class ErrorTerm : public Term {
public:
  ErrorTerm() : Term(TermKind::Error) {}
  explicit ErrorTerm(Symbol Msg) : Term(TermKind::Error), Msg(Msg) {}

  /// Invalid when the error carries no message (see lcalc::ErrorExpr).
  Symbol message() const { return Msg; }

  static bool classof(const Term *T) { return T->kind() == TermKind::Error; }

private:
  Symbol Msg;
};

class ConVarTerm : public Term {
public:
  explicit ConVarTerm(MVar V) : Term(TermKind::ConVar), V(V) {}

  MVar var() const { return V; }

  static bool classof(const Term *T) { return T->kind() == TermKind::ConVar; }

private:
  MVar V;
};

class ConLitTerm : public Term {
public:
  explicit ConLitTerm(int64_t Value) : Term(TermKind::ConLit), Value(Value) {}

  int64_t value() const { return Value; }

  static bool classof(const Term *T) { return T->kind() == TermKind::ConLit; }

private:
  int64_t Value;
};

class LitTerm : public Term {
public:
  explicit LitTerm(int64_t Value) : Term(TermKind::Lit), Value(Value) {}

  int64_t value() const { return Value; }

  static bool classof(const Term *T) { return T->kind() == TermKind::Lit; }

private:
  int64_t Value;
};

/// d — an unboxed double literal value.
class DLitTerm : public Term {
public:
  explicit DLitTerm(double Value) : Term(TermKind::DLit), Value(Value) {}

  double value() const { return Value; }

  static bool classof(const Term *T) { return T->kind() == TermKind::DLit; }

private:
  double Value;
};

/// ⊕# — binary unboxed primops, mirroring lcalc::LPrim (same layout:
/// Int# arithmetic/comparisons, then Double# arithmetic/comparisons).
/// Operands are restricted to *atoms* (unboxed variables or literals) so
/// the ANF discipline — every data movement has a known width — is
/// preserved.
///
/// The numeric values are **stable on-disk tags** (see TermKind): never
/// renumber an existing op; append new ops at the end and bump the
/// artifact pipeline fingerprint.
enum class MPrim : uint8_t {
  Add = 0, Sub = 1, Mul = 2, Quot = 3, Rem = 4,
  Lt = 5, Le = 6, Gt = 7, Ge = 8, Eq = 9, Ne = 10,
  DAdd = 11, DSub = 12, DMul = 13, DDiv = 14,
  DLt = 15, DLe = 16, DGt = 17, DGe = 18, DEq = 19, DNe = 20
};

/// Number of MPrim values; folded into the artifact fingerprint so a new
/// primop invalidates stale stores.
inline constexpr unsigned NumMPrims = 21;

std::string_view mPrimName(MPrim Op);
bool mPrimTakesDouble(MPrim Op);
bool mPrimReturnsDouble(MPrim Op);
int64_t evalMPrim(MPrim Op, int64_t Lhs, int64_t Rhs);
double evalMPrimDD(MPrim Op, double Lhs, double Rhs);
int64_t evalMPrimDI(MPrim Op, double Lhs, double Rhs);

/// An unboxed-register atom: i, f, n, or d. ILET/IPOP (and their double
/// counterparts) substitution turns the variable forms into the literal
/// forms.
struct MAtom {
  bool IsLit = false;
  bool IsDbl = false;  ///< Selects the double payload/sort.
  MVar Var;            ///< Unboxed variable when !IsLit.
  int64_t Lit = 0;     ///< Integer literal payload when IsLit && !IsDbl.
  double DblLit = 0;   ///< Double literal payload when IsLit && IsDbl.

  static MAtom var(MVar V) {
    assert((V.isInt() || V.isDbl()) &&
           "primop atoms live in unboxed registers");
    MAtom A;
    A.Var = V;
    A.IsDbl = V.isDbl();
    return A;
  }
  /// An atom of any register class — constructor fields may be heap
  /// pointers (primop atoms must stay unboxed; use var()).
  static MAtom anyVar(MVar V) {
    MAtom A;
    A.Var = V;
    A.IsDbl = V.isDbl();
    return A;
  }
  static MAtom lit(int64_t N) {
    MAtom A;
    A.IsLit = true;
    A.Lit = N;
    return A;
  }
  static MAtom dlit(double D) {
    MAtom A;
    A.IsLit = true;
    A.IsDbl = true;
    A.DblLit = D;
    return A;
  }

  std::string str() const {
    if (!IsLit)
      return Var.str();
    return IsDbl ? std::to_string(DblLit) : std::to_string(Lit);
  }
};

/// a1 ⊕# a2 — reducible once both atoms are literals (rule PRIM).
class PrimTerm : public Term {
public:
  PrimTerm(MPrim Op, MAtom Lhs, MAtom Rhs)
      : Term(TermKind::Prim), Op(Op), Lhs(Lhs), Rhs(Rhs) {}

  MPrim op() const { return Op; }
  MAtom lhs() const { return Lhs; }
  MAtom rhs() const { return Rhs; }

  static bool classof(const Term *T) { return T->kind() == TermKind::Prim; }

private:
  MPrim Op;
  MAtom Lhs;
  MAtom Rhs;
};

/// CON k [a1, …, an] — a saturated n-ary constructor with tag k. Field
/// atoms are pointer variables (heap addresses once LET substitution has
/// run) for boxed fields and unboxed variables/literals for Int#/Double#
/// fields. A value once every unboxed atom is a literal (rule SWITCHk
/// consumes it). The boxed-Int constructor I# keeps its compact
/// ConVar/ConLit forms; CON carries every other data type.
class ConTerm : public Term {
public:
  ConTerm(uint32_t Tag, std::span<const MAtom> Args)
      : Term(TermKind::Con), ConTag(Tag), Args(Args) {}

  uint32_t tag() const { return ConTag; }
  std::span<const MAtom> args() const { return Args; }

  static bool classof(const Term *T) { return T->kind() == TermKind::Con; }

private:
  uint32_t ConTag;
  std::span<const MAtom> Args;
};

/// One alternative of a switch: a constructor-tag pattern with one
/// binder per field, or an Int#/Double# literal pattern. The numeric
/// PatKind values are **stable on-disk tags** (see TermKind).
struct MAlt {
  enum class PatKind : uint8_t {
    Con = 0, ///< CON Tag [Binders] → Body.
    Int = 1, ///< IntVal → Body.
    Dbl = 2  ///< DblVal → Body.
  };
  static constexpr unsigned NumPatKinds = 3;

  PatKind Pat = PatKind::Con;
  uint32_t Tag = 0;
  int64_t IntVal = 0;
  double DblVal = 0;
  std::span<const MVar> Binders; ///< Con: one per field, sorted like it.
  const Term *Body = nullptr;
};

/// switch t of { alt; …; _ → t_def } — evaluates the scrutinee, then
/// dispatches on its constructor tag or literal value (rules
/// SWITCH/SWITCHk). Default may be null when the constructor
/// alternatives are exhaustive.
class SwitchTerm : public Term {
public:
  SwitchTerm(const Term *Scrut, std::span<const MAlt> Alts,
             const Term *Default)
      : Term(TermKind::Switch), Scrut(Scrut), Alts(Alts),
        Default(Default) {}

  const Term *scrut() const { return Scrut; }
  std::span<const MAlt> alts() const { return Alts; }
  const Term *defaultBody() const { return Default; }

  static bool classof(const Term *T) {
    return T->kind() == TermKind::Switch;
  }

private:
  const Term *Scrut;
  std::span<const MAlt> Alts;
  const Term *Default;
};

template <typename To, typename From> bool isa(const From *Node) {
  return To::classof(Node);
}

template <typename To, typename From> const To *cast(const From *Node) {
  assert(isa<To>(Node) && "cast to incompatible node kind");
  return static_cast<const To *>(Node);
}

template <typename To, typename From> const To *dyn_cast(const From *Node) {
  return isa<To>(Node) ? static_cast<const To *>(Node) : nullptr;
}

/// Owns all M terms; the only way to make nodes.
class MContext {
public:
  MContext() = default;
  MContext(const MContext &) = delete;
  MContext &operator=(const MContext &) = delete;

  SymbolTable &symbols() { return Symbols; }

  /// Makes a fresh pointer variable (p0, p1, ...).
  MVar freshPtr() {
    return {Symbols.intern("p" + std::to_string(Counter++)), VarSort::Ptr};
  }
  /// Makes a fresh integer variable (i0, i1, ...).
  MVar freshInt() {
    return {Symbols.intern("i" + std::to_string(Counter++)), VarSort::Int};
  }
  /// Makes a fresh double variable (f0, f1, ...).
  MVar freshDbl() {
    return {Symbols.intern("f" + std::to_string(Counter++)), VarSort::Dbl};
  }
  /// The current fresh-name counter. Serialized into `.levc` artifacts so
  /// a hydrating context can reserveNames() past every name the original
  /// lowering minted.
  uint64_t nameCounter() const {
    return Counter.load(std::memory_order_relaxed);
  }
  /// Advances the fresh-name counter to at least \p N. Deserialized terms
  /// contain p/i/f names minted by the *original* context's counter; the
  /// machine mints heap addresses from *this* counter at run time, so the
  /// hydrated context must skip the already-used range or a runtime
  /// address could collide with a stored binder.
  void reserveNames(uint64_t N) {
    uint64_t Cur = Counter.load(std::memory_order_relaxed);
    while (Cur < N &&
           !Counter.compare_exchange_weak(Cur, N, std::memory_order_relaxed))
      ;
  }

  /// Makes a fresh variable of the same sort as \p Like.
  MVar freshLike(MVar Like) {
    switch (Like.Sort) {
    case VarSort::Ptr:
      return freshPtr();
    case VarSort::Int:
      return freshInt();
    case VarSort::Dbl:
      return freshDbl();
    }
    return freshPtr();
  }

  const Term *appVar(const Term *Fn, MVar Arg) {
    return Mem.create<AppVarTerm>(Fn, Arg);
  }
  const Term *appLit(const Term *Fn, int64_t Lit) {
    return Mem.create<AppLitTerm>(Fn, Lit);
  }
  const Term *appDbl(const Term *Fn, double Lit) {
    return Mem.create<AppDblTerm>(Fn, Lit);
  }
  const Term *lam(MVar Param, const Term *Body) {
    return Mem.create<LamTerm>(Param, Body);
  }
  const Term *var(MVar V) { return Mem.create<VarTerm>(V); }
  const Term *let(MVar Binder, const Term *Rhs, const Term *Body) {
    return Mem.create<LetTerm>(Binder, Rhs, Body);
  }
  const Term *letBang(MVar Binder, const Term *Rhs, const Term *Body) {
    return Mem.create<LetBangTerm>(Binder, Rhs, Body);
  }
  const Term *letRec(MVar Binder, const Term *Rhs, const Term *Body) {
    return Mem.create<LetRecTerm>(Binder, Rhs, Body);
  }
  const Term *caseOf(const Term *Scrut, MVar Binder, const Term *Body) {
    return Mem.create<CaseTerm>(Scrut, Binder, Body);
  }
  const Term *if0(const Term *Scrut, const Term *Then, const Term *Else) {
    return Mem.create<If0Term>(Scrut, Then, Else);
  }
  const Term *error() { return Mem.create<ErrorTerm>(); }
  const Term *error(Symbol Msg) { return Mem.create<ErrorTerm>(Msg); }
  const Term *conVar(MVar V) { return Mem.create<ConVarTerm>(V); }
  const Term *conLit(int64_t Value) { return Mem.create<ConLitTerm>(Value); }
  /// CON Tag [Args...] — the n-ary tagged constructor node.
  const Term *con(uint32_t Tag, std::span<const MAtom> Args) {
    return Mem.create<ConTerm>(Tag, Mem.copyArray(Args));
  }
  /// switch Scrut of { Alts...; _ -> Default } (Default may be null
  /// when the alternatives are exhaustive). Alt binder arrays are
  /// copied into the arena.
  const Term *switchOf(const Term *Scrut, std::span<const MAlt> Alts,
                       const Term *Default) {
    std::vector<MAlt> Copied(Alts.begin(), Alts.end());
    for (MAlt &A : Copied)
      A.Binders = Mem.copyArray(A.Binders);
    return Mem.create<SwitchTerm>(Scrut, Mem.copyArray(Copied), Default);
  }
  const Term *lit(int64_t Value) { return Mem.create<LitTerm>(Value); }
  const Term *dlit(double Value) { return Mem.create<DLitTerm>(Value); }
  const Term *prim(MPrim Op, MAtom Lhs, MAtom Rhs) {
    return Mem.create<PrimTerm>(Op, Lhs, Rhs);
  }

  Arena &arena() { return Mem; }

  /// Rewinds this context to "empty" for reuse as a *run-scoped* term
  /// arena (driver::Executor keeps one MContext per executor and resets
  /// it between machine runs). Invalidates every Term allocated here —
  /// only call once nothing from the previous run is reachable (the
  /// driver copies result scalars/strings out of MachineResult first).
  ///
  /// The fresh-name counter restarts at 0, which is safe even though a
  /// compiled term (owned by a *different* MContext) may bind "p0" too:
  /// Symbol equality is per-table pointer identity, so a name interned
  /// in this context's table can never collide with one interned in the
  /// compile-time context's table. The SymbolTable itself is *not*
  /// reset: interned "p/i/fN" strings plateau at the widest run's name
  /// count and are reused verbatim by every later run.
  void resetRunState() {
    Mem.reset();
    Counter.store(0, std::memory_order_relaxed);
  }

private:
  Arena Mem;
  SymbolTable Symbols;
  /// Atomic: concurrent Machine runs share this name supply.
  std::atomic<uint64_t> Counter{0};
};

/// \returns true for values w ::= λy.t | I#[n] | n | d (Figure 5).
bool isValue(const Term *T);

/// Capture-avoiding t[Replacement/Var] where the replacement is a variable
/// of the same sort (PPOP). Substituting into I#[y] keeps the form.
const Term *substVar(MContext &Ctx, const Term *T, MVar Var, MVar
                     Replacement);

/// Capture-avoiding t[n/i] where i is an integer variable (IPOP, ILET,
/// IMAT). Substituting into I#[i] yields I#[n]; into `t i` yields `t n`.
const Term *substLit(MContext &Ctx, const Term *T, MVar Var, int64_t Lit);

/// Capture-avoiding t[d/f] where f is a double variable (DPOP, DLET).
/// Substituting into `t f` yields `t d`.
const Term *substDbl(MContext &Ctx, const Term *T, MVar Var, double Lit);

} // namespace mcalc
} // namespace levity

#endif // LEVITY_MCALC_SYNTAX_H
